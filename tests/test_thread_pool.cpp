#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "common/thread_pool.hpp"

namespace bnsgcn::common {
namespace {

// Restores the calling thread's kernel budget on scope exit so tests can't
// leak an oversubscribed setting into each other.
struct ScopedOpsThreads {
  explicit ScopedOpsThreads(int k) : saved(ops_threads()) {
    set_ops_threads(k);
  }
  ~ScopedOpsThreads() { set_ops_threads(saved); }
  int saved;
};

using Blocks = std::vector<std::pair<std::int64_t, std::int64_t>>;

Blocks record_blocks(std::int64_t n, std::int64_t block, int threads) {
  Blocks got;
  std::mutex mu;
  ThreadPool::instance().parallel_for(
      n, block, threads, [&](std::int64_t b0, std::int64_t b1) {
        std::lock_guard<std::mutex> lock(mu);
        got.emplace_back(b0, b1);
      });
  std::sort(got.begin(), got.end());
  return got;
}

TEST(ThreadPool, InstanceIsProcessWideAndLazy) {
  ThreadPool& a = ThreadPool::instance();
  ThreadPool& b = ThreadPool::instance();
  EXPECT_EQ(&a, &b);
}

TEST(ThreadPool, SpawnsHelpersOnDemand) {
  ThreadPool& pool = ThreadPool::instance();
  // A K-lane call needs K-1 helpers; the pool only grows, so after this
  // call at least 3 workers exist regardless of what ran before.
  pool.parallel_for(256, 1, 4, [](std::int64_t, std::int64_t) {});
  EXPECT_GE(pool.workers(), 3);
  EXPECT_LE(pool.workers(), ThreadPool::kMaxWorkers);
}

TEST(ThreadPool, BlockGeometryIsAFunctionOfShapeAlone) {
  // The determinism contract: blocks are [i*block, min((i+1)*block, n))
  // for every thread count — thread count and claim order never change
  // the partition, only which lane runs which block.
  for (const std::int64_t n : {1, 7, 64, 65, 200, 1000}) {
    for (const std::int64_t block : {1, 3, 64}) {
      Blocks expect;
      for (std::int64_t i0 = 0; i0 < n; i0 += block)
        expect.emplace_back(i0, std::min<std::int64_t>(i0 + block, n));
      for (const int k : {1, 2, 3, 7}) {
        EXPECT_EQ(record_blocks(n, block, k), expect)
            << "n=" << n << " block=" << block << " threads=" << k;
      }
    }
  }
}

TEST(ThreadPool, EveryIndexVisitedExactlyOnce) {
  constexpr std::int64_t kN = 4096;
  std::vector<std::atomic<int>> hits(kN);
  ThreadPool::instance().parallel_for(
      kN, 5, 7, [&](std::int64_t b0, std::int64_t b1) {
        for (std::int64_t i = b0; i < b1; ++i)
          hits[static_cast<std::size_t>(i)].fetch_add(1);
      });
  for (std::int64_t i = 0; i < kN; ++i)
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
}

TEST(ThreadPool, EmptyRangeRunsNothing) {
  std::atomic<int> calls{0};
  ThreadPool::instance().parallel_for(
      0, 8, 4, [&](std::int64_t, std::int64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, WorkerExceptionReachesTheCaller) {
  std::atomic<int> ran{0};
  try {
    ThreadPool::instance().parallel_for(
        100, 1, 4, [&](std::int64_t b0, std::int64_t) {
          ran.fetch_add(1);
          if (b0 == 41) throw std::runtime_error("lane failure");
        });
    FAIL() << "expected the lane's exception to be rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "lane failure");
  }
  // No block is abandoned: lanes drain the remaining blocks before the
  // rethrow, so the output region is never half-finished.
  EXPECT_EQ(ran.load(), 100);
  // And the pool stays usable afterwards.
  std::atomic<std::int64_t> sum{0};
  ThreadPool::instance().parallel_for(
      10, 1, 4, [&](std::int64_t b0, std::int64_t) { sum.fetch_add(b0); });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPool, NestedCallsRunInlineInsteadOfDeadlocking) {
  // A pooled kernel may call another pooled kernel (e.g. a layer calling
  // two ops back to back inside a fold). Worker lanes must run the inner
  // parallel_for inline — enqueueing to their own pool would deadlock.
  constexpr std::int64_t kOuter = 12;
  std::vector<std::int64_t> inner_sums(kOuter, 0);
  ThreadPool::instance().parallel_for(
      kOuter, 1, 4, [&](std::int64_t b0, std::int64_t) {
        std::int64_t local = 0;
        ThreadPool::instance().parallel_for(
            100, 7, 4,
            [&](std::int64_t i0, std::int64_t i1) {
              // Inline = serial on this lane, so unsynchronized writes to
              // `local` are safe; TSAN holds this test to that claim.
              for (std::int64_t i = i0; i < i1; ++i) local += i;
            });
        inner_sums[static_cast<std::size_t>(b0)] = local;
      });
  for (const std::int64_t s : inner_sums) EXPECT_EQ(s, 4950);
}

TEST(ThreadPool, OnWorkerThreadDistinguishesLanes) {
  EXPECT_FALSE(ThreadPool::on_worker_thread());
  std::atomic<int> worker_lanes{0};
  std::atomic<bool> timed_out{false};
  ThreadPool::instance().parallel_for(
      64, 1, 4, [&](std::int64_t, std::int64_t) {
        if (ThreadPool::on_worker_thread()) {
          worker_lanes.fetch_add(1);
          return;
        }
        // The caller's lane: on a single-core box it can otherwise drain
        // every block before a helper is even scheduled, so hold this
        // block until one helper has demonstrably run (bounded wait).
        for (int spin = 0; worker_lanes.load() == 0 && spin < 10000; ++spin)
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        if (worker_lanes.load() == 0) timed_out.store(true);
      });
  EXPECT_FALSE(timed_out.load()) << "no pool worker ever ran a block";
  EXPECT_GT(worker_lanes.load(), 0);
  EXPECT_FALSE(ThreadPool::on_worker_thread());
}

TEST(ThreadPool, OpsThreadsIsPerThreadAndClamped) {
  EXPECT_GE(ops_threads(), 1);
  {
    ScopedOpsThreads guard(5);
    EXPECT_EQ(ops_threads(), 5);
    set_ops_threads(0);
    EXPECT_EQ(ops_threads(), 1);
    set_ops_threads(-3);
    EXPECT_EQ(ops_threads(), 1);
  }
}

TEST(ThreadPool, ClampRankThreadsEnforcesTheCoreBudget) {
  // P ranks × K lanes must fit in the hardware budget: K_eff =
  // min(requested, max(1, hw / nranks)).
  EXPECT_EQ(clamp_rank_threads(8, 2, 8), 4);
  EXPECT_EQ(clamp_rank_threads(8, 4, 8), 2);
  EXPECT_EQ(clamp_rank_threads(8, 3, 8), 2);  // floor(8/3)
  EXPECT_EQ(clamp_rank_threads(8, 16, 8), 1); // more ranks than cores
  EXPECT_EQ(clamp_rank_threads(2, 2, 8), 2);  // request below the cap
  EXPECT_EQ(clamp_rank_threads(1, 1, 8), 1);
  EXPECT_EQ(clamp_rank_threads(0, 2, 8), 1);  // degenerate request
  EXPECT_EQ(clamp_rank_threads(4, 1, 1), 1);  // single-core box
  // hardware=0 detects; whatever the box, the result is a valid budget.
  const int detected = clamp_rank_threads(4, 2);
  EXPECT_GE(detected, 1);
  EXPECT_LE(detected, 4);
}

TEST(ThreadPool, ForBlocksHonorsThisThreadsBudget) {
  // for_blocks is the kernel entry point: serial at budget 1, pooled
  // above — with identical block geometry either way.
  Blocks serial, pooled;
  {
    ScopedOpsThreads guard(1);
    for_blocks(100, 7, [&](std::int64_t b0, std::int64_t b1) {
      serial.emplace_back(b0, b1);
    });
  }
  {
    ScopedOpsThreads guard(4);
    std::mutex mu;
    for_blocks(100, 7, [&](std::int64_t b0, std::int64_t b1) {
      std::lock_guard<std::mutex> lock(mu);
      pooled.emplace_back(b0, b1);
    });
  }
  std::sort(pooled.begin(), pooled.end());
  EXPECT_EQ(serial, pooled);
}

} // namespace
} // namespace bnsgcn::common
