// Quickstart: generate a small clustered graph, partition it, and train a
// 2-layer GraphSAGE model with BNS-GCN (boundary sampling rate p = 0.1)
// through the unified entry point bnsgcn::api::run.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "api/run.hpp"

int main() {
  using namespace bnsgcn;

  // One RunConfig describes the whole run: dataset, partitioning, method,
  // model and sampling. Swap `dataset.custom` for `dataset.preset` to use
  // a registered workload ("reddit", "products", "yelp", "papers").
  api::RunConfig cfg;

  // 1. A dataset: 5k nodes, 8 communities, features that correlate with
  //    the label (swap in your own Dataset via api::run(ds, cfg)).
  SyntheticSpec spec;
  spec.n = 5000;
  spec.m = 60000;
  spec.communities = 8;
  spec.num_classes = 8;
  spec.feat_dim = 32;
  spec.seed = 42;
  cfg.dataset.custom = spec;

  // 2. Partition with the METIS-like min-communication-volume partitioner.
  cfg.partition.kind = api::PartitionSpec::Kind::kMetis;
  cfg.partition.nparts = 4;

  // 3. Method + model: BNS-GCN, 2-layer GraphSAGE, boundary sampling 0.1.
  cfg.method = api::Method::kBns;
  cfg.trainer.num_layers = 2;
  cfg.trainer.hidden = 64;
  cfg.trainer.dropout = 0.3f;
  cfg.trainer.lr = 0.01f;
  cfg.trainer.epochs = 60;
  cfg.trainer.sample_rate = 0.1f;
  cfg.trainer.eval_every = 20;

  // 4. Stream eval rows as they happen (per-epoch observer hook).
  cfg.trainer.observer = [](const core::EpochSnapshot& snap) {
    if (snap.eval != nullptr)
      std::printf("epoch %3d  loss %.4f  val %.2f%%  test %.2f%%\n",
                  snap.epoch, snap.train_loss, 100.0 * snap.eval->val,
                  100.0 * snap.eval->test);
  };

  // 5. Train (one thread per partition, in-process fabric).
  const api::RunReport result = api::run(cfg);

  const auto epoch = result.mean_epoch();
  std::printf("\nfinal test accuracy: %.2f%%\n", 100.0 * result.final_test);
  std::printf("mean epoch: compute %.4fs, comm %.4fs (sim), reduce %.4fs "
              "(sim), sample %.4fs\n",
              epoch.compute_s, epoch.comm_s, epoch.reduce_s, epoch.sample_s);
  std::printf("feature traffic per epoch: %.2f MB\n",
              static_cast<double>(epoch.feature_bytes) / (1024.0 * 1024.0));
  return 0;
}
