#include <gtest/gtest.h>

#include <thread>

#include "core/boundary_sampler.hpp"
#include "core/epoch_planner.hpp"
#include "graph/generators.hpp"
#include "nn/layer.hpp"

namespace bnsgcn {
namespace {

using core::BoundarySampler;
using core::build_local_graphs;
using core::EpochDraw;
using core::EpochPlan;
using core::EpochPlanner;
using core::SamplingVariant;

std::vector<core::LocalGraph> two_part_graph(NodeId n, EdgeId m,
                                             std::uint64_t seed) {
  Rng rng(seed);
  const Csr g = gen::erdos_renyi(n, m, rng);
  const auto part = random_partition(n, 2, rng);
  return build_local_graphs(g, part);
}

/// Run one sampler per rank concurrently; returns each rank's plan.
std::vector<EpochPlan> sample_together(
    std::vector<BoundarySampler>& samplers, comm::Fabric& fabric, int tag) {
  std::vector<EpochPlan> plans(samplers.size());
  std::vector<std::thread> threads;
  for (std::size_t r = 0; r < samplers.size(); ++r) {
    threads.emplace_back([&, r] {
      plans[r] = samplers[r].sample_epoch(
          fabric.endpoint(static_cast<PartId>(r)), tag);
    });
  }
  for (auto& t : threads) t.join();
  return plans;
}

void expect_plans_equal(const EpochPlan& a, const EpochPlan& b) {
  EXPECT_EQ(a.n_kept_halo, b.n_kept_halo);
  EXPECT_EQ(a.kept_halo_idx, b.kept_halo_idx);
  EXPECT_EQ(a.adj.offsets, b.adj.offsets);
  EXPECT_EQ(a.adj.nbrs, b.adj.nbrs);
  EXPECT_EQ(a.adj.edge_scale, b.adj.edge_scale);
  EXPECT_EQ(a.send_rows, b.send_rows);
  EXPECT_EQ(a.recv_slots, b.recv_slots);
  EXPECT_EQ(a.dropped_edges, b.dropped_edges);
  EXPECT_FLOAT_EQ(a.halo_scale, b.halo_scale);
}

/// The legacy enum path and explicit planner injection must produce
/// bit-identical plans for the same seeds: the enum now only names the
/// planner the factory builds.
class PlannerEquivalence
    : public ::testing::TestWithParam<SamplingVariant> {};

TEST_P(PlannerEquivalence, VariantMatchesInjectedPlanner) {
  const SamplingVariant variant = GetParam();
  const auto lgs = two_part_graph(600, 6000, 5);
  const float rate = 0.4f;

  comm::Fabric fabric_enum(2), fabric_planner(2);
  std::vector<BoundarySampler> via_enum, via_planner;
  for (PartId r = 0; r < 2; ++r) {
    const auto s = static_cast<std::size_t>(r);
    BoundarySampler::Options opts;
    opts.variant = variant;
    opts.rate = rate;
    opts.seed = 100 + static_cast<std::uint64_t>(r);
    via_enum.emplace_back(lgs[s], opts);
    via_planner.emplace_back(
        lgs[s],
        core::make_planner(variant,
                           {.rate = rate, .unbiased_scaling = true}),
        opts);
  }
  for (int epoch = 0; epoch < 4; ++epoch) {
    const auto plans_enum = sample_together(via_enum, fabric_enum, epoch);
    const auto plans_injected =
        sample_together(via_planner, fabric_planner, epoch);
    for (std::size_t r = 0; r < 2; ++r)
      expect_plans_equal(plans_enum[r], plans_injected[r]);
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, PlannerEquivalence,
                         ::testing::Values(SamplingVariant::kBns,
                                           SamplingVariant::kBoundaryEdge,
                                           SamplingVariant::kDropEdge));

TEST(EpochPlanner, BnsDrawSemantics) {
  const auto lgs = two_part_graph(800, 8000, 7);
  const core::BnsPlanner planner({.rate = 0.5f, .unbiased_scaling = true});
  Rng rng(9);
  const EpochDraw draw = planner.draw(lgs[0], rng);
  EXPECT_EQ(draw.halo_kept.size(),
            static_cast<std::size_t>(lgs[0].n_halo()));
  EXPECT_FALSE(draw.edge_kept.has_value());  // node-level strategy
  EXPECT_FLOAT_EQ(draw.halo_scale, 2.0f);
  EXPECT_FLOAT_EQ(draw.halo_edge_scale, 1.0f);
  EXPECT_FLOAT_EQ(draw.inner_edge_scale, 1.0f);
}

TEST(EpochPlanner, BnsUnscaledDrawHasUnitHaloScale) {
  const auto lgs = two_part_graph(400, 3000, 8);
  const core::BnsPlanner planner({.rate = 0.5f, .unbiased_scaling = false});
  Rng rng(10);
  EXPECT_FLOAT_EQ(planner.draw(lgs[0], rng).halo_scale, 1.0f);
}

TEST(EpochPlanner, BoundaryEdgeKeepsHaloNodeIffAnArcSurvives) {
  const auto lgs = two_part_graph(800, 8000, 11);
  const core::BoundaryEdgePlanner planner(
      {.rate = 0.3f, .unbiased_scaling = true});
  Rng rng(12);
  const EpochDraw draw = planner.draw(lgs[0], rng);
  ASSERT_TRUE(draw.edge_kept.has_value());
  EXPECT_FLOAT_EQ(draw.halo_scale, 1.0f);  // edge strategies scale arcs
  EXPECT_FLOAT_EQ(draw.inner_edge_scale, 1.0f);
  EXPECT_NEAR(draw.halo_edge_scale, 1.0f / 0.3f, 1e-5f);
  // Inner arcs are untouched; a halo node is kept iff one of its incident
  // arcs survived.
  std::vector<char> has_arc(static_cast<std::size_t>(lgs[0].n_halo()), 0);
  for (std::size_t e = 0; e < lgs[0].adj.nbrs.size(); ++e) {
    const NodeId u = lgs[0].adj.nbrs[e];
    if (u < lgs[0].n_inner()) {
      EXPECT_TRUE((*draw.edge_kept)[e]);
    } else if ((*draw.edge_kept)[e]) {
      has_arc[static_cast<std::size_t>(u - lgs[0].n_inner())] = 1;
    }
  }
  EXPECT_EQ(draw.halo_kept, has_arc);
}

TEST(EpochPlanner, DropEdgeScalesInnerArcsToo) {
  const auto lgs = two_part_graph(800, 8000, 13);
  const core::DropEdgePlanner planner(
      {.rate = 0.5f, .unbiased_scaling = true});
  Rng rng(14);
  const EpochDraw draw = planner.draw(lgs[0], rng);
  ASSERT_TRUE(draw.edge_kept.has_value());
  EXPECT_FLOAT_EQ(draw.inner_edge_scale, 2.0f);
  EXPECT_FLOAT_EQ(draw.halo_edge_scale, 2.0f);
  // Some inner arcs must be dropped at q=0.5 on a graph this size.
  std::size_t dropped_inner = 0;
  for (std::size_t e = 0; e < lgs[0].adj.nbrs.size(); ++e)
    if (lgs[0].adj.nbrs[e] < lgs[0].n_inner() && !(*draw.edge_kept)[e])
      ++dropped_inner;
  EXPECT_GT(dropped_inner, 0u);
}

/// A custom strategy plugs into BoundarySampler without touching the
/// library: keep exactly the even halo indices.
class EvenHaloPlanner final : public EpochPlanner {
 public:
  [[nodiscard]] const char* name() const override { return "even-halo"; }
  [[nodiscard]] EpochDraw draw(const core::LocalGraph& lg,
                               Rng&) const override {
    EpochDraw d;
    d.halo_kept.resize(static_cast<std::size_t>(lg.n_halo()));
    for (NodeId h = 0; h < lg.n_halo(); ++h)
      d.halo_kept[static_cast<std::size_t>(h)] = (h % 2 == 0) ? 1 : 0;
    return d;
  }
};

TEST(EpochPlanner, CustomPlannerInjection) {
  const auto lgs = two_part_graph(600, 6000, 15);
  comm::Fabric fabric(2);
  std::vector<BoundarySampler> samplers;
  for (PartId r = 0; r < 2; ++r) {
    BoundarySampler::Options opts;
    opts.seed = 30 + static_cast<std::uint64_t>(r);
    samplers.emplace_back(lgs[static_cast<std::size_t>(r)],
                          std::make_unique<EvenHaloPlanner>(), opts);
  }
  const auto plans = sample_together(samplers, fabric, 0);
  for (std::size_t r = 0; r < 2; ++r) {
    const auto& lg = lgs[r];
    EXPECT_EQ(plans[r].n_kept_halo, (lg.n_halo() + 1) / 2);
    for (const NodeId h : plans[r].kept_halo_idx) EXPECT_EQ(h % 2, 0);
    EXPECT_EQ(samplers[r].planner().name(), std::string("even-halo"));
  }
  // Deterministic draw → the negotiated exchange stays consistent.
  EXPECT_EQ(plans[0].send_rows[1].size(), plans[1].recv_slots[0].size());
  EXPECT_EQ(plans[1].send_rows[0].size(), plans[0].recv_slots[1].size());
}

} // namespace
} // namespace bnsgcn
