#pragma once

#include <span>
#include <vector>

#include "comm/fabric.hpp"
#include "common/stopwatch.hpp"
#include "core/boundary_sampler.hpp"
#include "core/halo_cache.hpp"
#include "nn/layer.hpp"
#include "tensor/matrix.hpp"

namespace bnsgcn::core {

// ---- Pipelined (split-phase) exchange -------------------------------------
// One in-flight boundary exchange: sends are posted eagerly, receives into a
// completion set; the caller computes the halo-independent phase and folds
// the payloads afterwards. The fold always applies peers in ascending index
// order (deterministic reduction): blocking waits for everything right after
// posting, bulk waits at fold time, stream polls the set and applies each
// peer the moment it and every earlier peer have landed — the fold itself
// sits at the same point of the schedule with the same order in every mode,
// so all three execute the identical fp instruction stream.
//
// This machinery is shared verbatim by the trainer (core/trainer.cpp) and
// the forward-only serving engine (core/inference.cpp): the serving path
// reuses the exact post/fold/cache code, which is what makes served logits
// bit-identical to the training-forward oracle (docs/ARCHITECTURE.md §10).

struct PendingExchange {
  std::vector<comm::Request> sends;  // complete on posting (eager)
  std::vector<PartId> peers;         // peer of recvs.at(k)
  comm::RequestSet recvs;
  double sim_s = 0.0;   // simulated wire time of the whole exchange
  double tail_s = 0.0;  // slowest single recv-peer message (sim)
  // Halo-cache state of this exchange: when `layer` names a cached
  // channel, cache_steps[k] is peer k's recv-side classification (fixed
  // at post time, so it is independent of arrival order — the
  // determinism anchor of the whole cache).
  int layer = -1;
  bool cached = false;
  std::vector<CacheStep> cache_steps;
  // Measured-timing capture (socket fabrics; also tracked on the mailbox
  // where it is simply unused). The Stopwatch starts when the exchange is
  // posted; span is frozen at the last receive completion — right after
  // the wait in blocking mode, inside the fold driver otherwise.
  Stopwatch clock;
  double meas_span_s = 0.0;  // post -> last receive completion
  double wait_s = 0.0;       // portion of the span spent blocked in waits
};

// ---- Streaming fold engine ------------------------------------------------
// The heart of OverlapMode::kStream: make progress on the completion set
// and hand each peer's slab to the layer (or the scatter-add) the moment
// it AND every lower-indexed peer have landed. Buffer-then-apply-in-order
// is what keeps the reduction deterministic: out-of-order arrivals sit
// completed in their Request slot (the wire buffer — see comm::Request)
// until their turn, so the numeric fold order is identical to a bulk
// wait_all, while the fold *work* of early peers overlaps the transfers
// still in flight. poll() is the nonblocking pass the trainer runs
// between F1 chunks (folds interleave mid-F1); drain() completes the
// remainder with wait_any progress.
//
// Accounting follows the schedule, not the in-process mailboxes (whose
// eager delivery reflects thread-scheduling skew, not wire time — the
// same convention PR 2 used for the bulk window): under the simulated
// wire, the fold of peer k runs while the transfers of peers k+1.. are
// still on the wire, so every fold except the last peer's widens the
// overlap window. window_s() reports that measured extra window —
// always 0 for bulk/blocking, whose wait_all precedes the first apply.

class FoldDriver {
 public:
  FoldDriver(PendingExchange& px, bool stream)
      : px_(px), stream_(stream),
        arrived_(px.recvs.size(), stream ? 0 : 1) {}

  /// Nonblocking progress pass: mark what landed, apply every ready
  /// in-order peer through `apply(k, payload)`. No-op outside stream
  /// mode (bulk/blocking apply only at drain time).
  template <typename ApplyFn>
  void poll(ApplyFn&& apply, Accumulator& compute_acc) {
    if (!stream_ || next_ >= arrived_.size()) return;
    ready_.clear();
    (void)px_.recvs.poll(ready_);
    for (const std::size_t i : ready_) arrived_[i] = 1;
    freeze_span();
    apply_ready(apply, compute_acc);
  }

  /// Block until every peer has been applied.
  template <typename ApplyFn>
  void drain(ApplyFn&& apply, Accumulator& compute_acc) {
    if (!stream_) {
      Stopwatch w;
      px_.recvs.wait_all();
      px_.wait_s += w.elapsed_s();
      freeze_span();
    }
    apply_ready(apply, compute_acc);
    while (next_ < arrived_.size()) {
      ready_.clear();
      Stopwatch w;
      (void)px_.recvs.wait_any(ready_);
      px_.wait_s += w.elapsed_s();
      for (const std::size_t i : ready_) arrived_[i] = 1;
      freeze_span();
      apply_ready(apply, compute_acc);
    }
    freeze_span();
  }

  /// Stream window: fold seconds of every peer but the last (the folds
  /// that ran while at least one later transfer was still in flight).
  [[nodiscard]] double window_s() const { return window_s_; }

 private:
  /// Measured span ends at the last receive completion; record it the
  /// first time the set drains empty (later passes are no-ops).
  void freeze_span() {
    if (px_.meas_span_s == 0.0 && px_.recvs.all_done())
      px_.meas_span_s = px_.clock.elapsed_s();
  }

  template <typename ApplyFn>
  void apply_ready(ApplyFn& apply, Accumulator& compute_acc) {
    const std::size_t n = arrived_.size();
    while (next_ < n && arrived_[next_]) {
      comm::Wire msg = px_.recvs.at(next_).take_payload();
      Stopwatch sw;
      {
        ScopedTimer t(compute_acc);
        apply(next_, std::move(msg));
      }
      if (stream_ && next_ + 1 < n) window_s_ += sw.elapsed_s();
      ++next_;
    }
  }

  PendingExchange& px_;
  bool stream_;
  std::vector<char> arrived_; // landed, possibly not yet applied
  std::vector<std::size_t> ready_;
  std::size_t next_ = 0;      // first peer not yet applied
  double window_s_ = 0.0;
};

/// One rank's boundary-exchange engine: owns the post/fold pair of the
/// split-phase protocol, the blocking assembled forms built on it, and the
/// per-(layer, peer) halo-cache state (docs/ARCHITECTURE.md §9). Extracted
/// from the trainer's RankWorker so the forward half is shared — verbatim,
/// same fp instruction stream — with the serving engine; the backward half
/// is training-only but lives here because it is the mirror of the same
/// payload layout.
class HaloExchanger {
 public:
  struct Options {
    comm::CostModel cost;
    /// Halo cache (TrainerConfig::cache_mb semantics): per (peer, layer,
    /// direction) row budget in MiB; 0 disables. Layer 0 always caches
    /// when enabled, deeper layers only under a positive staleness bound.
    std::int64_t cache_mb = 0;
    int cache_staleness = 0;
    int num_layers = 0;
    std::int64_t feat_dim = 0;  // layer-0 row width
    std::int64_t hidden = 0;    // deeper-layer row width
  };

  HaloExchanger(comm::Endpoint& ep, const Options& opts);

  /// Halo-cache epoch context: the directories age entries by epoch index
  /// (the serving engine passes the request-batch index), and the per-epoch
  /// hit/miss/bytes-saved counters reset here.
  void begin_epoch(int epoch);
  [[nodiscard]] std::int64_t cache_hits() const { return ep_cache_hits_; }
  [[nodiscard]] std::int64_t cache_misses() const { return ep_cache_misses_; }
  [[nodiscard]] std::int64_t bytes_saved() const { return ep_bytes_saved_; }

  /// Cached layers: layer 0 whenever the cache is on (its rows are
  /// epoch-invariant), deeper layers only under a positive staleness
  /// bound. Backward exchanges carry gradients — never cached.
  [[nodiscard]] bool cache_enabled(int layer) const {
    return layer >= 0 && static_cast<std::size_t>(layer) < cache_.size() &&
           !cache_[static_cast<std::size_t>(layer)].empty();
  }

  /// Post the forward exchange: isend this layer's sampled rows of
  /// h_inner (misses only on a cached channel), irecv the halo rows each
  /// owner will push to us. Per-peer byte totals are accumulated while
  /// posting — with the cache on, the message count is unchanged (every
  /// peer still gets one frame, possibly empty) but miss-only payloads
  /// shrink both the simulated exchange time and the straggler tail.
  /// `layer` is the halo-cache channel (-1 bypasses the cache —
  /// evaluation must not step the per-epoch directories).
  PendingExchange post_forward(const Matrix& h_inner, const EpochPlan& plan,
                               int tag, int layer);

  /// Post the backward exchange: send each owner its halo-gradient rows
  /// (scaled; slot s lives at row halo_row0 + s of `dsrc`), irecv the
  /// contributions peers computed for our inner rows.
  PendingExchange post_backward(const Matrix& dsrc, NodeId halo_row0,
                                const EpochPlan& plan, float scale, int tag);

  /// Complete the forward exchange: place each peer's rows into its
  /// compact halo slots of `dst` starting at row `halo_row0` (0 for a
  /// bare halo block, n_inner for an assembled [inner; halo] matrix),
  /// applying the 1/p scale. The fold buffer is distinct from the wire
  /// buffers — see comm::Request.
  void fold_forward(PendingExchange& px, const EpochPlan& plan, float scale,
                    Matrix& dst, NodeId halo_row0);

  /// Complete the backward exchange: scatter-add remote contributions into
  /// the inner-gradient block (same per-peer order as every other path).
  void fold_backward(PendingExchange& px, const EpochPlan& plan,
                     Matrix& dinner);

  /// Gather + send this layer's rows, receive the (scaled) halo block and
  /// return the assembled source-feature matrix [inner; halo]. Blocking
  /// form of the exchange, expressed through the same post/fold pair as
  /// the pipeline so the payload layout exists exactly once.
  Matrix exchange_forward(const Matrix& h_inner, NodeId n_inner,
                          const EpochPlan& plan, float scale, int tag,
                          int layer);

  /// Send halo-feature gradients back to their owners; returns the inner
  /// gradient block with remote contributions scatter-added. Blocking form
  /// of the backward exchange, same post/fold pair as the pipeline.
  Matrix exchange_backward(const Matrix& dfeats, NodeId n_inner,
                           const EpochPlan& plan, float scale, int tag);

  /// Forward fold: resolve the slab (cache-aware), scale it, and hand it
  /// to the layer's incremental protocol. Fold work is billed to the
  /// compute accumulator by the driver (it is compute the rank performs in
  /// every mode). Scaling happens on the assembled slab in the same
  /// element order as the uncached in-place scale, so the fp stream is
  /// unchanged by the cache.
  auto make_forward_fold(PendingExchange& px, const EpochPlan& plan,
                         nn::Layer& layer, float scale, std::int64_t d) {
    return [this, &px, &plan, &layer, scale, d](std::size_t k,
                                                comm::Wire msg) {
      const auto& slots =
          plan.recv_slots[static_cast<std::size_t>(px.peers[k])];
      const auto rows = slab_rows(px, plan, k, msg, d);
      if (scale != 1.0f)
        for (float& v : rows) v *= scale;
      layer.forward_halo_fold(plan.adj, slots, rows);
      ep_.release_floats(std::move(msg.floats));
    };
  }

  /// Backward fold: scatter-add the peer's gradient slab into the inner
  /// block, in fixed peer order (the accumulation order every mode shares
  /// — fp addition is not associative, so this is load-bearing). The
  /// backward direction is never cached, so the slab IS the wire payload.
  auto make_backward_fold(PendingExchange& px, const EpochPlan& plan,
                          Matrix& dinner) {
    return [this, &px, &plan, &dinner](std::size_t k, comm::Wire msg) {
      const std::int64_t d = dinner.cols();
      const auto& rows =
          plan.send_rows[static_cast<std::size_t>(px.peers[k])];
      BNSGCN_CHECK(msg.floats.size() ==
                   rows.size() * static_cast<std::size_t>(d));
      for (std::size_t t = 0; t < rows.size(); ++t) {
        float* dst = dinner.data() + static_cast<std::int64_t>(rows[t]) * d;
        const float* src = msg.floats.data() + t * static_cast<std::size_t>(d);
        for (std::int64_t c = 0; c < d; ++c) dst[c] += src[c];
      }
      ep_.release_floats(std::move(msg.floats));
    };
  }

 private:
  /// Simulated transfer time of one peer message of `bytes` payload bytes
  /// (one message: latency + bytes/bandwidth).
  [[nodiscard]] double msg_sim_s(std::int64_t bytes) const;

  /// max(tx, rx) wire occupancy of one exchange from its accumulated byte
  /// and message totals (same latency+bandwidth law as
  /// RankStats::sim_seconds; full duplex, so the directions overlap).
  [[nodiscard]] double duplex_sim_s(std::int64_t tx_bytes,
                                    std::int64_t tx_msgs,
                                    std::int64_t rx_bytes,
                                    std::int64_t rx_msgs) const;

  /// Staleness argument for a cached layer's directories: layer 0 never
  /// goes stale; deeper layers refresh after cache_staleness epochs.
  [[nodiscard]] int cache_max_age(int layer) const {
    return layer == 0 ? -1 : opt_.cache_staleness;
  }

  /// Resolve peer k's received message into this exchange's full row block
  /// (list order, unscaled): the wire payload itself on an uncached
  /// channel; on a cached one, hits materialize from the store and misses
  /// are consumed from the frame in order (kMissStore rows also refresh
  /// the store — raw wire bytes, so a later hit replays the identical
  /// values). Returns either msg.floats or the persistent fold scratch.
  std::span<float> slab_rows(PendingExchange& px, const EpochPlan& plan,
                             std::size_t k, comm::Wire& msg, std::int64_t d);

  comm::Endpoint& ep_;
  Options opt_;
  // Halo cache (docs/ARCHITECTURE.md §9). cache_[l] is empty when layer l
  // does not cache; otherwise one entry per peer. send_dir mirrors the
  // peer's recv_dir for the channel we send on; recv_dir classifies what
  // we receive, with `store` holding the raw (unscaled) wire rows of
  // hits, indexed by the directory's dense slot ids.
  struct LayerPeerCache {
    HaloCacheDir send_dir;
    HaloCacheDir recv_dir;
    std::vector<float> store;
  };
  std::vector<std::vector<LayerPeerCache>> cache_;
  std::vector<float> fold_scratch_; // cached-slab assembly, reused
  std::int64_t ep_cache_hits_ = 0;
  std::int64_t ep_cache_misses_ = 0;
  std::int64_t ep_bytes_saved_ = 0;
  int epoch_ = 0;
};

} // namespace bnsgcn::core
