#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "graph/csr.hpp"
#include "tensor/matrix.hpp"

namespace bnsgcn {

/// A node-classification dataset: graph + features + targets + split.
///
/// Single-label datasets (Reddit/ogbn-style) use `labels` and softmax CE;
/// multi-label datasets (Yelp-style) use `multilabels` (n × num_classes of
/// 0/1) and sigmoid BCE with micro-F1 as the metric, matching the paper's
/// evaluation protocol per dataset.
struct Dataset {
  std::string name;
  Csr graph;
  Matrix features;                 // n × feat_dim
  std::vector<int> labels;         // n (single-label) — empty if multilabel
  Matrix multilabels;              // n × num_classes — empty if single-label
  int num_classes = 0;
  bool multilabel = false;

  std::vector<NodeId> train_nodes;
  std::vector<NodeId> val_nodes;
  std::vector<NodeId> test_nodes;

  [[nodiscard]] NodeId num_nodes() const { return graph.n; }
  [[nodiscard]] std::int64_t feat_dim() const { return features.cols(); }

  /// Structural invariants (split disjointness/coverage, shapes).
  void validate() const;
};

/// Parameters of the synthetic dataset generator. The defaults are
/// overridden by the presets below to mimic each paper dataset's shape
/// (density, feature width, class count, label regime, split fractions) at
/// CPU-tractable scale — see DESIGN.md §1 for the substitution rationale.
struct SyntheticSpec {
  std::string name = "synthetic";
  NodeId n = 10'000;
  EdgeId m = 200'000;
  int communities = 16;       // also the class count
  int num_classes = 16;       // <= communities; classes map onto communities
  std::int64_t feat_dim = 64;
  double p_intra = 0.9;
  double degree_skew = 2.5;
  double feature_noise = 1.0; // stddev of per-node Gaussian noise
  double feature_signal = 1.0;// scale of the class mean vectors
  double label_noise = 0.02;  // fraction of nodes with a random label
  bool multilabel = false;
  int labels_per_node = 3;    // for multilabel: avg positive labels
  double train_frac = 0.66, val_frac = 0.10; // rest is test
  std::uint64_t seed = 1;
};

/// Build a dataset from the degree-corrected planted-partition generator:
/// community structure drives both edges and labels; features are
/// class-mean + Gaussian noise so neighbor aggregation is informative.
[[nodiscard]] Dataset make_synthetic(const SyntheticSpec& spec);

/// Presets mirroring Table 3 of the paper at reduced scale. `scale`
/// multiplies node/edge counts (1.0 = the default bench size).
[[nodiscard]] SyntheticSpec reddit_like(double scale = 1.0);   // dense, 41 classes
[[nodiscard]] SyntheticSpec products_like(double scale = 1.0); // sparse, 47 classes
[[nodiscard]] SyntheticSpec yelp_like(double scale = 1.0);     // multilabel, 100 classes
[[nodiscard]] SyntheticSpec papers_like(double scale = 1.0);   // large, 172 classes

} // namespace bnsgcn
