#include "partition/io.hpp"

#include <cstdint>
#include <fstream>

#include "common/binary_io.hpp"
#include "common/check.hpp"

namespace bnsgcn {

namespace {

constexpr std::uint32_t kPartMagic = 0x42475250; // "PRGB"
constexpr std::uint32_t kVersion = 1;

} // namespace

void save_partitioning(const Partitioning& p, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  BNSGCN_CHECK_MSG(static_cast<bool>(os), "cannot open " + path);
  io::write_pod(os, kPartMagic);
  io::write_pod(os, kVersion);
  io::write_pod(os, p.nparts);
  io::write_vec(os, p.owner);
  BNSGCN_CHECK_MSG(static_cast<bool>(os), "write failed: " + path);
}

Partitioning load_partitioning(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  BNSGCN_CHECK_MSG(static_cast<bool>(is), "cannot open " + path);
  BNSGCN_CHECK_MSG(io::read_pod<std::uint32_t>(is) == kPartMagic,
                   "bad magic");
  BNSGCN_CHECK_MSG(io::read_pod<std::uint32_t>(is) == kVersion,
                   "bad version");
  Partitioning p;
  p.nparts = io::read_pod<PartId>(is);
  p.owner = io::read_vec<PartId>(is);
  p.validate();
  return p;
}

} // namespace bnsgcn
