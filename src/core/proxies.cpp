#include "core/proxies.hpp"

#include <thread>

#include "common/stopwatch.hpp"
#include "nn/adam.hpp"
#include "nn/loss.hpp"
#include "nn/sage_layer.hpp"
#include "tensor/ops.hpp"

namespace bnsgcn::core {

TrainResult run_roc_proxy(const Dataset& ds, const Partitioning& part,
                          TrainerConfig cfg) {
  cfg.sample_rate = 1.0f;
  cfg.variant = SamplingVariant::kBns;
  cfg.simulate_host_swap = true;
  BnsTrainer trainer(ds, part, cfg);
  return trainer.train();
}

namespace {

using comm::TrafficClass;

/// Per-rank state for the broadcast trainer.
struct BcastRank {
  std::vector<NodeId> inner; // global ids (sorted)
  nn::BipartiteCsr adj;      // rows = inner nodes, sources = all global nodes
  std::vector<float> inv_deg;
  Matrix x_local;
  std::vector<int> labels;          // full global labels (shared copy)
  std::vector<NodeId> train_rows;   // global ids of local train nodes
};

} // namespace

TrainResult run_cagnet_proxy(const Dataset& ds, const Partitioning& part,
                             TrainerConfig cfg, int c) {
  BNSGCN_CHECK(c >= 1);
  const PartId m = part.nparts;
  comm::Fabric fabric(m, cfg.cost);
  const auto members = part.members();

  // Mark train membership once.
  std::vector<char> is_train(static_cast<std::size_t>(ds.num_nodes()), 0);
  for (const NodeId v : ds.train_nodes) is_train[static_cast<std::size_t>(v)] = 1;

  TrainResult result;
  result.train_loss.reserve(static_cast<std::size_t>(cfg.epochs));
  std::vector<double> compute_s(static_cast<std::size_t>(m));
  std::vector<double> comm_s(static_cast<std::size_t>(m));
  std::vector<double> reduce_s(static_cast<std::size_t>(m));
  std::vector<std::int64_t> bcast_rx(static_cast<std::size_t>(m));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(m));
  // TrainerConfig::overlap is a no-op here by design: every broadcast row
  // feeds every destination's aggregation, so the 1.5D exchange has no
  // halo-free compute to hide it behind (the knob stays safe, not useful).

  Stopwatch wall;
  // lint: allow(raw-thread) — rank runtime, one OS thread per simulated rank;
  // kernel-level parallelism inside each rank still goes through the pool.
  std::vector<std::thread> threads;
  for (PartId r = 0; r < m; ++r) {
    threads.emplace_back([&, r] {
      try {
        auto& ep = fabric.endpoint(r);
        BcastRank st;
        st.inner = members[static_cast<std::size_t>(r)];
        const NodeId n_in = static_cast<NodeId>(st.inner.size());

        // Global-source adjacency rows for this rank's inner nodes.
        st.adj.n_dst = n_in;
        st.adj.n_src = ds.num_nodes();
        st.adj.offsets.assign(static_cast<std::size_t>(n_in) + 1, 0);
        st.inv_deg.resize(static_cast<std::size_t>(n_in));
        for (NodeId i = 0; i < n_in; ++i) {
          const NodeId v = st.inner[static_cast<std::size_t>(i)];
          st.adj.offsets[static_cast<std::size_t>(i) + 1] =
              st.adj.offsets[static_cast<std::size_t>(i)] +
              ds.graph.degree(v);
          st.inv_deg[static_cast<std::size_t>(i)] =
              ds.graph.degree(v) > 0
                  ? 1.0f / static_cast<float>(ds.graph.degree(v))
                  : 0.0f;
        }
        st.adj.nbrs.reserve(static_cast<std::size_t>(st.adj.offsets.back()));
        for (const NodeId v : st.inner)
          for (const NodeId u : ds.graph.neighbors(v))
            st.adj.nbrs.push_back(u);

        st.x_local = slice_rows(ds.features, st.inner);
        std::vector<NodeId> train_rows;
        for (NodeId i = 0; i < n_in; ++i)
          if (is_train[static_cast<std::size_t>(
                  st.inner[static_cast<std::size_t>(i)])])
            train_rows.push_back(i);
        std::vector<int> labels_local;
        Matrix targets_local;
        if (ds.multilabel) {
          targets_local = slice_rows(ds.multilabels, st.inner);
        } else {
          labels_local.resize(static_cast<std::size_t>(n_in));
          for (NodeId i = 0; i < n_in; ++i)
            labels_local[static_cast<std::size_t>(i)] =
                ds.labels[static_cast<std::size_t>(
                    st.inner[static_cast<std::size_t>(i)])];
        }

        // Identical model replicas (same seed).
        Rng rng(cfg.seed);
        std::vector<std::unique_ptr<nn::Layer>> layers;
        for (int l = 0; l < cfg.num_layers; ++l) {
          const std::int64_t d_in = (l == 0) ? ds.feat_dim() : cfg.hidden;
          const std::int64_t d_out =
              (l == cfg.num_layers - 1) ? ds.num_classes : cfg.hidden;
          layers.push_back(std::make_unique<nn::SageLayer>(
              d_in, d_out,
              nn::SageLayer::Options{.relu = l != cfg.num_layers - 1,
                                     .dropout = 0.0f},
              rng));
        }
        std::vector<Matrix*> params, grads;
        for (auto& l : layers) {
          for (Matrix* p : l->params()) params.push_back(p);
          for (Matrix* g : l->grads()) grads.push_back(g);
        }
        nn::Adam adam(std::move(params), std::move(grads), {.lr = cfg.lr});

        const float inv_total =
            ds.multilabel
                ? 1.0f / (static_cast<float>(ds.train_nodes.size()) *
                          static_cast<float>(ds.num_classes))
                : 1.0f / static_cast<float>(ds.train_nodes.size());
        int tag = 0;

        /// Broadcast own rows of `local` and assemble the full matrix.
        const auto broadcast_assemble = [&](const Matrix& local) {
          const std::int64_t d = local.cols();
          Matrix full(ds.num_nodes(), d);
          for (PartId j = 0; j < m; ++j) {
            if (j == ep.rank()) continue;
            std::vector<float> payload(local.data(),
                                       local.data() + local.size());
            ep.send_floats(j, tag, std::move(payload),
                           TrafficClass::kBroadcast);
          }
          // own rows
          for (NodeId i = 0; i < n_in; ++i) {
            const float* s = local.data() + static_cast<std::int64_t>(i) * d;
            std::copy(s, s + d,
                      full.data() +
                          static_cast<std::int64_t>(
                              st.inner[static_cast<std::size_t>(i)]) * d);
          }
          for (PartId j = 0; j < m; ++j) {
            if (j == ep.rank()) continue;
            const auto payload =
                ep.recv_floats(j, tag, TrafficClass::kBroadcast);
            const auto& rows = members[static_cast<std::size_t>(j)];
            BNSGCN_CHECK(payload.size() ==
                         rows.size() * static_cast<std::size_t>(d));
            for (std::size_t t = 0; t < rows.size(); ++t) {
              std::copy(payload.data() + t * static_cast<std::size_t>(d),
                        payload.data() + (t + 1) * static_cast<std::size_t>(d),
                        full.data() +
                            static_cast<std::int64_t>(rows[t]) * d);
            }
          }
          ++tag;
          return full;
        };

        /// Reduce-scatter of a full-size gradient matrix: send each peer
        /// the rows it owns; accumulate received contributions into ours.
        const auto reduce_scatter = [&](const Matrix& dfull) {
          const std::int64_t d = dfull.cols();
          for (PartId j = 0; j < m; ++j) {
            if (j == ep.rank()) continue;
            const auto& rows = members[static_cast<std::size_t>(j)];
            std::vector<float> payload(rows.size() *
                                       static_cast<std::size_t>(d));
            for (std::size_t t = 0; t < rows.size(); ++t) {
              const float* s =
                  dfull.data() + static_cast<std::int64_t>(rows[t]) * d;
              std::copy(s, s + d,
                        payload.data() + t * static_cast<std::size_t>(d));
            }
            ep.send_floats(j, tag, std::move(payload),
                           TrafficClass::kBroadcast);
          }
          Matrix dlocal(n_in, d);
          for (NodeId i = 0; i < n_in; ++i) {
            const float* s =
                dfull.data() +
                static_cast<std::int64_t>(
                    st.inner[static_cast<std::size_t>(i)]) * d;
            std::copy(s, s + d,
                      dlocal.data() + static_cast<std::int64_t>(i) * d);
          }
          for (PartId j = 0; j < m; ++j) {
            if (j == ep.rank()) continue;
            const auto payload =
                ep.recv_floats(j, tag, TrafficClass::kBroadcast);
            BNSGCN_CHECK(payload.size() ==
                         st.inner.size() * static_cast<std::size_t>(d));
            for (std::size_t t = 0; t < st.inner.size(); ++t) {
              float* dst =
                  dlocal.data() + static_cast<std::int64_t>(t) * d;
              const float* src =
                  payload.data() + t * static_cast<std::size_t>(d);
              for (std::int64_t k = 0; k < d; ++k) dst[k] += src[k];
            }
          }
          ++tag;
          return dlocal;
        };

        Accumulator comp_acc;
        const comm::RankStats start_stats = ep.stats();
        for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
          // Forward: broadcast h, aggregate against the full matrix.
          std::vector<Matrix> h(static_cast<std::size_t>(cfg.num_layers) + 1);
          h[0] = st.x_local;
          for (int l = 0; l < cfg.num_layers; ++l) {
            Matrix full = broadcast_assemble(h[static_cast<std::size_t>(l)]);
            ScopedTimer t(comp_acc);
            h[static_cast<std::size_t>(l) + 1] =
                layers[static_cast<std::size_t>(l)]->forward(
                    st.adj, full, st.inv_deg, /*training=*/false);
          }
          Matrix dlogits;
          double local_loss = 0.0;
          {
            ScopedTimer t(comp_acc);
            const Matrix& logits = h[static_cast<std::size_t>(cfg.num_layers)];
            if (ds.multilabel) {
              local_loss = nn::sigmoid_bce(logits, targets_local, train_rows,
                                           inv_total, dlogits);
            } else {
              local_loss = nn::softmax_xent(logits, labels_local, train_rows,
                                            inv_total, dlogits);
            }
          }
          for (auto& l : layers) l->zero_grads();
          Matrix grad = std::move(dlogits);
          for (int l = cfg.num_layers - 1; l >= 0; --l) {
            Matrix dfull;
            {
              ScopedTimer t(comp_acc);
              dfull = layers[static_cast<std::size_t>(l)]->backward(
                  st.adj, grad, st.inv_deg);
            }
            if (l == 0) break;
            grad = reduce_scatter(dfull);
          }
          auto flat = nn::flatten_grads(layers);
          ep.allreduce_sum(flat, TrafficClass::kGradient);
          nn::apply_flat_grads(flat, layers);
          {
            ScopedTimer t(comp_acc);
            adam.step();
          }
          // Global mean loss (same convention as BnsTrainer: computed from
          // this epoch's forward, before the update). Only rank 0 appends,
          // after the join-free collective has synchronized every rank.
          const double loss_total = ep.allreduce_sum_scalar(local_loss);
          if (r == 0) result.train_loss.push_back(loss_total);
        }
        const comm::RankStats delta = [&] {
          comm::RankStats dd;
          const auto now = ep.stats();
          for (int cls = 0; cls < static_cast<int>(TrafficClass::kCount);
               ++cls) {
            dd.tx_bytes[cls] = now.tx_bytes[cls] - start_stats.tx_bytes[cls];
            dd.rx_bytes[cls] = now.rx_bytes[cls] - start_stats.rx_bytes[cls];
            dd.tx_msgs[cls] = now.tx_msgs[cls] - start_stats.tx_msgs[cls];
            dd.rx_msgs[cls] = now.rx_msgs[cls] - start_stats.rx_msgs[cls];
          }
          return dd;
        }();
        const auto ri = static_cast<std::size_t>(r);
        compute_s[ri] = comp_acc.seconds() / cfg.epochs;
        // The c-plane broadcast divides serialized transfer time by c.
        comm_s[ri] = delta.sim_seconds(TrafficClass::kBroadcast, cfg.cost) /
                     (static_cast<double>(c) * cfg.epochs);
        reduce_s[ri] =
            delta.sim_seconds(TrafficClass::kGradient, cfg.cost) / cfg.epochs;
        bcast_rx[ri] =
            delta.rx_bytes[static_cast<int>(TrafficClass::kBroadcast)] /
            cfg.epochs;
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& e : errors)
    if (e) std::rethrow_exception(e);

  EpochBreakdown eb;
  for (PartId r = 0; r < m; ++r) {
    const auto ri = static_cast<std::size_t>(r);
    eb.compute_s = std::max(eb.compute_s, compute_s[ri]);
    eb.comm_s = std::max(eb.comm_s, comm_s[ri]);
    eb.reduce_s = std::max(eb.reduce_s, reduce_s[ri]);
    eb.feature_bytes += bcast_rx[ri];
  }
  result.epochs.assign(static_cast<std::size_t>(cfg.epochs), eb);
  result.wall_time_s = wall.elapsed_s();
  return result;
}

} // namespace bnsgcn::core
