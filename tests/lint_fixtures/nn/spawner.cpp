// Fixture: raw thread primitives outside the deterministic pool.
#include <thread>

namespace fixture {

void spawn() {
  std::thread t([] {});
  t.join();
}

void nap() {
  std::this_thread::yield(); // must not fire: identifier-boundary check
}

void spawn_annotated() {
  // lint: allow(raw-thread) — fixture of an annotated rank runtime.
  std::thread t([] {});
  t.join();
}

} // namespace fixture
