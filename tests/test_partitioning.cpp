#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.hpp"
#include "partition/partitioning.hpp"

namespace bnsgcn {
namespace {

TEST(RandomPartition, CoversAllNodesBalanced) {
  Rng rng(1);
  const auto p = random_partition(1000, 8, rng);
  p.validate();
  EXPECT_EQ(p.nparts, 8);
  const auto members = p.members();
  for (const auto& part : members) {
    EXPECT_EQ(static_cast<NodeId>(part.size()), 125);
  }
}

TEST(RandomPartition, IsActuallyRandom) {
  Rng rng(2);
  const auto p = random_partition(10000, 4, rng);
  // Adjacent ids should rarely share a partition beyond the 1/4 baseline.
  int same = 0;
  for (NodeId v = 0; v + 1 < 10000; ++v)
    if (p.owner[static_cast<std::size_t>(v)] ==
        p.owner[static_cast<std::size_t>(v) + 1])
      ++same;
  EXPECT_NEAR(static_cast<double>(same) / 9999.0, 0.25, 0.03);
}

TEST(HashPartition, DeterministicAndCovering) {
  const auto a = hash_partition(5000, 7);
  const auto b = hash_partition(5000, 7);
  a.validate();
  EXPECT_EQ(a.owner, b.owner);
}

TEST(BfsPartition, BalancedAndLocal) {
  Rng rng(3);
  const Csr g = gen::grid(40, 40);
  const auto p = bfs_partition(g, 4, rng);
  p.validate();
  const auto members = p.members();
  for (const auto& part : members) {
    EXPECT_GE(static_cast<NodeId>(part.size()), 300);
    EXPECT_LE(static_cast<NodeId>(part.size()), 500);
  }
}

TEST(Partitioning, MembersRoundTrip) {
  Rng rng(4);
  const auto p = random_partition(100, 5, rng);
  const auto members = p.members();
  NodeId total = 0;
  for (PartId i = 0; i < 5; ++i) {
    for (const NodeId v : members[static_cast<std::size_t>(i)]) {
      EXPECT_EQ(p.owner[static_cast<std::size_t>(v)], i);
      ++total;
    }
  }
  EXPECT_EQ(total, 100);
}

TEST(Partitioning, ValidateCatchesEmptyPart) {
  Partitioning p;
  p.nparts = 3;
  p.owner = {0, 0, 1, 1}; // part 2 empty
  EXPECT_THROW(p.validate(), CheckError);
}

TEST(Partitioning, ValidateCatchesOutOfRange) {
  Partitioning p;
  p.nparts = 2;
  p.owner = {0, 1, 2};
  EXPECT_THROW(p.validate(), CheckError);
}

class PartitionerSweep : public ::testing::TestWithParam<PartId> {};

TEST_P(PartitionerSweep, AllPartitionersProduceValidAssignments) {
  const PartId m = GetParam();
  Rng rng(5);
  const Csr g = gen::erdos_renyi(600, 3000, rng);
  random_partition(g.n, m, rng).validate();
  hash_partition(g.n, m).validate();
  bfs_partition(g, m, rng).validate();
}

INSTANTIATE_TEST_SUITE_P(NumParts, PartitionerSweep,
                         ::testing::Values(1, 2, 3, 4, 8, 16));

} // namespace
} // namespace bnsgcn
