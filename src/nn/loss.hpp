#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "tensor/matrix.hpp"

namespace bnsgcn::nn {

/// Softmax cross-entropy over a row subset (the partition's inner train
/// nodes). `rows` are local row indices into `logits`; `labels[r]` is the
/// class of local row r (full local label array). The loss/gradients are
/// scaled by `inv_total` = 1 / (global train-node count) so that summing
/// per-rank losses (AllReduce) yields the global mean loss — this makes the
/// m-rank run exactly equivalent to single-process full-graph training.
///
/// Returns the (scaled) loss contribution; writes d(logits) into `dlogits`
/// (resized and zeroed; rows outside `rows` stay zero).
[[nodiscard]] double softmax_xent(const Matrix& logits,
                                  std::span<const int> labels,
                                  std::span<const NodeId> rows,
                                  float inv_total, Matrix& dlogits);

/// Sigmoid binary cross-entropy for multi-label targets (Yelp-style).
/// `targets` is (n_local, C) of {0,1}. Same scaling contract as above,
/// with inv_total = 1 / (global train count × C).
[[nodiscard]] double sigmoid_bce(const Matrix& logits, const Matrix& targets,
                                 std::span<const NodeId> rows,
                                 float inv_total, Matrix& dlogits);

/// Argmax-accuracy counts over a row subset: returns {#correct, #total}.
[[nodiscard]] std::pair<std::int64_t, std::int64_t> accuracy_counts(
    const Matrix& logits, std::span<const int> labels,
    std::span<const NodeId> rows);

/// Micro-F1 counts for multi-label prediction at threshold 0 on logits
/// (= probability 0.5): returns {tp, fp, fn}.
struct F1Counts {
  std::int64_t tp = 0, fp = 0, fn = 0;
  [[nodiscard]] double micro_f1() const {
    const double denom = static_cast<double>(2 * tp + fp + fn);
    return denom == 0.0 ? 0.0 : 2.0 * static_cast<double>(tp) / denom;
  }
};
[[nodiscard]] F1Counts f1_counts(const Matrix& logits, const Matrix& targets,
                                 std::span<const NodeId> rows);

} // namespace bnsgcn::nn
