#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace bnsgcn::json {

/// Minimal JSON document model: enough for machine-readable run artifacts
/// (RunReport serialization, bench --json output) without an external
/// dependency. Objects preserve insertion order so dump(parse(x)) is
/// stable. Numbers are doubles (exact for integers up to 2^53, which
/// covers every counter in this repo).
class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  using Array = std::vector<Value>;
  using Object = std::vector<std::pair<std::string, Value>>;

  Value() = default;
  Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  Value(double d) : kind_(Kind::kNumber), num_(d) {}
  Value(int i) : kind_(Kind::kNumber), num_(i) {}
  Value(std::int64_t i) : kind_(Kind::kNumber), num_(static_cast<double>(i)) {}
  Value(const char* s) : kind_(Kind::kString), str_(s) {}
  Value(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}

  [[nodiscard]] static Value array() {
    Value v;
    v.kind_ = Kind::kArray;
    return v;
  }
  [[nodiscard]] static Value object() {
    Value v;
    v.kind_ = Kind::kObject;
    return v;
  }

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }

  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] std::int64_t as_int64() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& items() const;
  [[nodiscard]] const Object& members() const;

  /// Object access; `get` returns nullptr when the key is absent.
  void set(std::string key, Value value);
  [[nodiscard]] const Value* get(std::string_view key) const;
  /// Object access that throws (CheckError) when the key is absent.
  [[nodiscard]] const Value& at(std::string_view key) const;

  /// Array append.
  void push_back(Value value);
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const Value& operator[](std::size_t i) const;

  /// Serialize. indent < 0 → compact one-line form; otherwise pretty-print
  /// with the given indent width.
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Parse a complete JSON document; throws CheckError on malformed input
  /// or trailing garbage.
  [[nodiscard]] static Value parse(std::string_view text);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

/// Write `value` to `path` (pretty-printed, trailing newline); throws
/// CheckError when the file cannot be written.
void write_file(const std::string& path, const Value& value);

} // namespace bnsgcn::json
