#pragma once

#include <string>
#include <vector>

namespace bnsgcn::lint {

// ---------------------------------------------------------------------------
// Determinism lint: repo-specific rules that turn the bit-exactness
// contracts of docs/ARCHITECTURE.md into machine checks. The engine is a
// comment/string-stripping line scanner, not a parser — rules are phrased
// so that a textual match is (conservatively) sufficient, and every
// legitimate exception is annotated in-source:
//
//   // lint: allow(<rule>) — <reason>
//
// on the violating line or the line directly above it. Exceptions are
// therefore always visible in a diff next to the code they excuse.
// ---------------------------------------------------------------------------

struct Finding {
  std::string file;    // path as reported (relative to the scanned root)
  int line = 0;        // 1-based
  std::string rule;    // rule id, e.g. "raw-thread"
  std::string message;
};

struct RuleInfo {
  std::string id;
  std::string summary;
};

/// The rule table (id + one-line summary), in reporting order.
[[nodiscard]] const std::vector<RuleInfo>& rules();

/// Lint one file. `rel` is the path relative to the scanned source root
/// with '/' separators (path-scoped rules key off it); `content` is the
/// raw file text.
[[nodiscard]] std::vector<Finding> lint_file(const std::string& rel,
                                             const std::string& content);

/// Recursively lint every .hpp/.h/.cpp/.cc under `root`. Findings report
/// paths relative to `root`. Files are visited in sorted path order so
/// output is stable. Throws CheckError-style std::runtime_error if root
/// does not exist.
[[nodiscard]] std::vector<Finding> lint_tree(const std::string& root);

} // namespace bnsgcn::lint
