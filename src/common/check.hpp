#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace bnsgcn {

/// Thrown on violated preconditions / internal invariants.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

} // namespace detail
} // namespace bnsgcn

/// Always-on invariant check (library is used by tests that rely on it firing
/// in release builds too).
#define BNSGCN_CHECK(expr)                                                 \
  do {                                                                     \
    if (!(expr))                                                           \
      ::bnsgcn::detail::check_failed(#expr, __FILE__, __LINE__, "");       \
  } while (false)

#define BNSGCN_CHECK_MSG(expr, msg)                                        \
  do {                                                                     \
    if (!(expr))                                                           \
      ::bnsgcn::detail::check_failed(#expr, __FILE__, __LINE__, (msg));    \
  } while (false)
