#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace bnsgcn::comm {

/// Which message backend carries a run's traffic. The mailbox is the
/// in-process deterministic test double; uds/tcp are real sockets driven
/// by the multi-process runtime (one OS process per rank).
enum class TransportKind { kMailbox = 0, kUds = 1, kTcp = 2 };

/// How a run's `overlap_s`/`comm_tail_s` were obtained: schedule-simulated
/// from the cost model (mailbox) or measured wall-clock (sockets).
enum class TimingSource { kSimulated = 0, kMeasured = 1 };

[[nodiscard]] const char* transport_kind_name(TransportKind k);
[[nodiscard]] TransportKind transport_kind_from_name(const std::string& name);

/// Thrown from blocking fabric calls when the fabric has been shut down
/// (a peer failed and closed its side, or shutdown() was called). Lets
/// surviving ranks unwind instead of hanging on a dead peer.
class ShutdownError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Payload kind of a Wire message. kFloats/kIds populate exactly one of
/// the two vectors; kHaloDelta — the halo cache's miss-only frame
/// (docs/ARCHITECTURE.md §9) — carries both: `ids` lists which positions
/// of the exchange's row list are actually present, `floats` their rows.
enum class WireKind : std::uint8_t { kFloats = 0, kIds = 1, kHaloDelta = 2 };

/// One tagged message as the transport moves it. `kind` says which payload
/// vectors are populated; `hold` is the mailbox delivery-shuffle counter
/// and is zero everywhere else.
struct Wire {
  int tag = 0;
  int hold = 0;
  WireKind kind = WireKind::kFloats;
  std::vector<float> floats;
  std::vector<NodeId> ids;
};

/// Message backend behind the Fabric/Endpoint API. A transport moves
/// payloads and synchronises ranks; all byte/time *accounting* stays in
/// Endpoint so every backend reports identical traffic for identical
/// schedules. Blocking calls for a rank must be made from the thread (or
/// process) owning that rank.
///
/// Determinism contract (required for cross-backend bit parity):
///  - per (from → to) pair, messages arrive in send order;
///  - allreduce_sum folds peer contributions in ascending rank order,
///    skipping self (self is the in-place base);
///  - scalar allreduces fold all contributions, self included, in
///    ascending rank order;
///  - allgather results are indexed by rank.
class Transport {
 public:
  virtual ~Transport() = default;

  [[nodiscard]] virtual PartId nranks() const = 0;
  /// True when this transport instance carries the given rank (the
  /// mailbox serves all ranks in one process; a socket transport serves
  /// exactly the rank whose process constructed it).
  [[nodiscard]] virtual bool serves(PartId rank) const = 0;
  [[nodiscard]] virtual TimingSource timing() const = 0;

  /// Tagged point-to-point. send never blocks indefinitely (eager
  /// deposit or queued write); recv blocks until a matching message
  /// arrives; try_recv is one nonblocking progress-and-probe pass.
  /// Blocking and probing calls throw ShutdownError once the fabric is
  /// shut down or the peer is gone.
  virtual void send(PartId from, PartId to, Wire msg) = 0;
  virtual bool try_recv(PartId rank, PartId from, int tag, Wire& out) = 0;
  [[nodiscard]] virtual Wire recv(PartId rank, PartId from, int tag) = 0;

  /// Collectives; every rank must enter each in the same order.
  virtual void barrier(PartId rank) = 0;
  virtual void allreduce_sum(PartId rank, std::span<float> data) = 0;
  [[nodiscard]] virtual double allreduce_sum_scalar(PartId rank,
                                                    double value) = 0;
  [[nodiscard]] virtual double allreduce_max_scalar(PartId rank,
                                                    double value) = 0;
  [[nodiscard]] virtual std::vector<std::vector<NodeId>> allgather_ids(
      PartId rank, std::vector<NodeId> ids) = 0;
  [[nodiscard]] virtual std::vector<std::vector<double>> allgather_doubles(
      PartId rank, const std::vector<double>& vals) = 0;

  /// Tear the fabric down from `rank`'s side: wake every blocked call
  /// with ShutdownError (mailbox) / close the sockets so peers' blocking
  /// reads error out (sockets). Idempotent; called by a failing rank so
  /// survivors unwind instead of deadlocking.
  virtual void shutdown(PartId rank) = 0;

  /// Test-only arrival-order shuffle; only the mailbox supports it.
  virtual void enable_delivery_shuffle(std::uint64_t seed, int max_hold);
};

} // namespace bnsgcn::comm
