#include "core/halo_exchange.hpp"

#include <algorithm>
#include <limits>

namespace bnsgcn::core {

using comm::TrafficClass;

HaloExchanger::HaloExchanger(comm::Endpoint& ep, const Options& opts)
    : ep_(ep), opt_(opts) {
  // Halo cache (docs/ARCHITECTURE.md §9): one send/recv directory pair
  // per (layer, peer). Layer 0 always caches when enabled (its input
  // features are epoch-invariant); deeper layers only under a positive
  // staleness bound. Capacity is rows per (peer, layer, direction) at
  // that layer's feature width. The recv-side row store grows lazily —
  // slots fill densely, so memory tracks actual use, not the budget.
  if (opt_.cache_mb > 0) {
    cache_.resize(static_cast<std::size_t>(opt_.num_layers));
    for (int l = 0; l < opt_.num_layers; ++l) {
      if (l > 0 && opt_.cache_staleness <= 0) continue;
      const std::int64_t d = (l == 0) ? opt_.feat_dim : opt_.hidden;
      const std::int64_t cap =
          opt_.cache_mb * (1 << 20) /
          (d * static_cast<std::int64_t>(sizeof(float)));
      auto& per_peer = cache_[static_cast<std::size_t>(l)];
      per_peer.resize(static_cast<std::size_t>(ep_.nranks()));
      for (auto& pc : per_peer) {
        pc.send_dir = HaloCacheDir(static_cast<NodeId>(
            std::min<std::int64_t>(cap, std::numeric_limits<NodeId>::max())));
        pc.recv_dir = HaloCacheDir(pc.send_dir.capacity());
      }
    }
  }
}

void HaloExchanger::begin_epoch(int epoch) {
  epoch_ = epoch;
  ep_cache_hits_ = 0;
  ep_cache_misses_ = 0;
  ep_bytes_saved_ = 0;
}

double HaloExchanger::msg_sim_s(std::int64_t bytes) const {
  return opt_.cost.latency_s +
         static_cast<double>(bytes) / opt_.cost.bytes_per_s;
}

double HaloExchanger::duplex_sim_s(std::int64_t tx_bytes, std::int64_t tx_msgs,
                                   std::int64_t rx_bytes,
                                   std::int64_t rx_msgs) const {
  const auto& cost = opt_.cost;
  const double tx = static_cast<double>(tx_msgs) * cost.latency_s +
                    static_cast<double>(tx_bytes) / cost.bytes_per_s;
  const double rx = static_cast<double>(rx_msgs) * cost.latency_s +
                    static_cast<double>(rx_bytes) / cost.bytes_per_s;
  return std::max(tx, rx);
}

PendingExchange HaloExchanger::post_forward(const Matrix& h_inner,
                                            const EpochPlan& plan, int tag,
                                            int layer) {
  const std::int64_t d = h_inner.cols();
  PendingExchange px;
  px.layer = layer;
  px.cached = cache_enabled(layer);
  std::int64_t tx_bytes = 0, rx_bytes = 0, tx_msgs = 0, rx_msgs = 0;
  for (PartId j = 0; j < ep_.nranks(); ++j) {
    const auto& rows = plan.send_rows[static_cast<std::size_t>(j)];
    if (rows.empty()) continue;
    ++tx_msgs;
    if (!px.cached) {
      auto payload =
          ep_.acquire_floats(rows.size() * static_cast<std::size_t>(d));
      for (std::size_t t = 0; t < rows.size(); ++t) {
        const float* s =
            h_inner.data() + static_cast<std::int64_t>(rows[t]) * d;
        std::copy(s, s + d,
                  payload.data() + t * static_cast<std::size_t>(d));
      }
      tx_bytes += static_cast<std::int64_t>(rows.size()) * d *
                  static_cast<std::int64_t>(sizeof(float));
      px.sends.push_back(ep_.isend_floats(j, tag, std::move(payload),
                                          TrafficClass::kFeature));
      continue;
    }
    // Cached channel: step the sender-side directory with the same
    // structural positions the receiver steps its own with, then ship
    // only the rows it classified as misses (index list + delta rows).
    auto& pc = cache_[static_cast<std::size_t>(layer)]
                     [static_cast<std::size_t>(j)];
    const CacheStep cs = pc.send_dir.step(
        plan.send_pos[static_cast<std::size_t>(j)], epoch_,
        cache_max_age(layer));
    std::vector<NodeId> present;
    present.reserve(static_cast<std::size_t>(cs.misses));
    for (std::size_t t = 0; t < rows.size(); ++t)
      if (cs.action[t] != CacheAction::kHit)
        present.push_back(static_cast<NodeId>(t));
    auto payload = ep_.acquire_floats(present.size() *
                                      static_cast<std::size_t>(d));
    for (std::size_t m = 0; m < present.size(); ++m) {
      const NodeId row = rows[static_cast<std::size_t>(present[m])];
      const float* s = h_inner.data() + static_cast<std::int64_t>(row) * d;
      std::copy(s, s + d, payload.data() + m * static_cast<std::size_t>(d));
    }
    tx_bytes += static_cast<std::int64_t>(payload.size() * sizeof(float)) +
                static_cast<std::int64_t>(present.size() * sizeof(NodeId));
    px.sends.push_back(ep_.isend_halo(j, tag, std::move(present),
                                      std::move(payload),
                                      TrafficClass::kFeature));
  }
  for (PartId j = 0; j < ep_.nranks(); ++j) {
    const auto& slots = plan.recv_slots[static_cast<std::size_t>(j)];
    if (slots.empty()) continue;
    px.peers.push_back(j);
    (void)px.recvs.add(ep_.irecv_floats(j, tag, TrafficClass::kFeature));
    ++rx_msgs;
    std::int64_t peer_bytes = static_cast<std::int64_t>(slots.size()) * d *
                              static_cast<std::int64_t>(sizeof(float));
    if (px.cached) {
      // Step the recv-side directory NOW (post time): the classification
      // must not depend on when the peer's frame lands.
      auto& pc = cache_[static_cast<std::size_t>(layer)]
                       [static_cast<std::size_t>(j)];
      CacheStep cs = pc.recv_dir.step(
          plan.recv_pos[static_cast<std::size_t>(j)], epoch_,
          cache_max_age(layer));
      peer_bytes =
          cs.misses * d * static_cast<std::int64_t>(sizeof(float)) +
          cs.misses * static_cast<std::int64_t>(sizeof(NodeId));
      ep_cache_hits_ += cs.hits;
      ep_cache_misses_ += cs.misses;
      ep_bytes_saved_ +=
          cs.hits * d * static_cast<std::int64_t>(sizeof(float));
      px.cache_steps.push_back(std::move(cs));
    }
    rx_bytes += peer_bytes;
    px.tail_s = std::max(px.tail_s, msg_sim_s(peer_bytes));
  }
  px.sim_s = duplex_sim_s(tx_bytes, tx_msgs, rx_bytes, rx_msgs);
  return px;
}

std::span<float> HaloExchanger::slab_rows(PendingExchange& px,
                                          const EpochPlan& plan, std::size_t k,
                                          comm::Wire& msg, std::int64_t d) {
  const auto j = static_cast<std::size_t>(px.peers[k]);
  const auto& slots = plan.recv_slots[j];
  if (!px.cached) {
    BNSGCN_CHECK(msg.floats.size() ==
                 slots.size() * static_cast<std::size_t>(d));
    return msg.floats;
  }
  auto& pc = cache_[static_cast<std::size_t>(px.layer)][j];
  const CacheStep& cs = px.cache_steps.at(k);
  fold_scratch_.resize(slots.size() * static_cast<std::size_t>(d));
  std::size_t next = 0;
  for (std::size_t t = 0; t < slots.size(); ++t) {
    float* dst = fold_scratch_.data() + t * static_cast<std::size_t>(d);
    if (cs.action[t] == CacheAction::kHit) {
      const float* src = pc.store.data() +
                         static_cast<std::size_t>(cs.slot[t]) *
                             static_cast<std::size_t>(d);
      std::copy(src, src + d, dst);
      continue;
    }
    // Divergence detector: the sender's directory must have classified
    // exactly the same positions as misses, in the same order.
    BNSGCN_CHECK_MSG(next < msg.ids.size() &&
                         msg.ids[next] == static_cast<NodeId>(t),
                     "halo cache directories diverged");
    const float* src =
        msg.floats.data() + next * static_cast<std::size_t>(d);
    if (cs.action[t] == CacheAction::kMissStore) {
      const auto need = (static_cast<std::size_t>(cs.slot[t]) + 1) *
                        static_cast<std::size_t>(d);
      if (pc.store.size() < need) pc.store.resize(need);
      std::copy(src, src + d,
                pc.store.data() + static_cast<std::size_t>(cs.slot[t]) *
                                      static_cast<std::size_t>(d));
    }
    std::copy(src, src + d, dst);
    ++next;
  }
  BNSGCN_CHECK_MSG(next == msg.ids.size() &&
                       next * static_cast<std::size_t>(d) ==
                           msg.floats.size(),
                   "halo delta frame size mismatch");
  return fold_scratch_;
}

void HaloExchanger::fold_forward(PendingExchange& px, const EpochPlan& plan,
                                 float scale, Matrix& dst, NodeId halo_row0) {
  const std::int64_t d = dst.cols();
  for (std::size_t k = 0; k < px.recvs.size(); ++k) {
    const auto& slots =
        plan.recv_slots[static_cast<std::size_t>(px.peers[k])];
    comm::Wire msg = px.recvs.at(k).take_payload();
    const auto rows = slab_rows(px, plan, k, msg, d);
    for (std::size_t t = 0; t < slots.size(); ++t) {
      float* out = dst.data() +
                   (static_cast<std::int64_t>(halo_row0) +
                    static_cast<std::int64_t>(slots[t])) * d;
      const float* src = rows.data() + t * static_cast<std::size_t>(d);
      for (std::int64_t c = 0; c < d; ++c) out[c] = scale * src[c];
    }
    ep_.release_floats(std::move(msg.floats));
  }
}

PendingExchange HaloExchanger::post_backward(const Matrix& dsrc,
                                             NodeId halo_row0,
                                             const EpochPlan& plan,
                                             float scale, int tag) {
  const std::int64_t d = dsrc.cols();
  PendingExchange px;
  std::int64_t tx_bytes = 0, rx_bytes = 0, tx_msgs = 0, rx_msgs = 0;
  for (PartId j = 0; j < ep_.nranks(); ++j) {
    const auto& slots = plan.recv_slots[static_cast<std::size_t>(j)];
    if (slots.empty()) continue;
    auto payload =
        ep_.acquire_floats(slots.size() * static_cast<std::size_t>(d));
    for (std::size_t t = 0; t < slots.size(); ++t) {
      const float* src = dsrc.data() +
                         (static_cast<std::int64_t>(halo_row0) +
                          static_cast<std::int64_t>(slots[t])) * d;
      float* dst = payload.data() + t * static_cast<std::size_t>(d);
      for (std::int64_t c = 0; c < d; ++c) dst[c] = scale * src[c];
    }
    tx_bytes += static_cast<std::int64_t>(slots.size()) * d *
                static_cast<std::int64_t>(sizeof(float));
    ++tx_msgs;
    px.sends.push_back(
        ep_.isend_floats(j, tag, std::move(payload), TrafficClass::kFeature));
  }
  for (PartId j = 0; j < ep_.nranks(); ++j) {
    const auto& rows = plan.send_rows[static_cast<std::size_t>(j)];
    if (rows.empty()) continue;
    px.peers.push_back(j);
    (void)px.recvs.add(ep_.irecv_floats(j, tag, TrafficClass::kFeature));
    const std::int64_t peer_bytes = static_cast<std::int64_t>(rows.size()) *
                                    d *
                                    static_cast<std::int64_t>(sizeof(float));
    rx_bytes += peer_bytes;
    ++rx_msgs;
    px.tail_s = std::max(px.tail_s, msg_sim_s(peer_bytes));
  }
  px.sim_s = duplex_sim_s(tx_bytes, tx_msgs, rx_bytes, rx_msgs);
  return px;
}

void HaloExchanger::fold_backward(PendingExchange& px, const EpochPlan& plan,
                                  Matrix& dinner) {
  const std::int64_t d = dinner.cols();
  for (std::size_t k = 0; k < px.recvs.size(); ++k) {
    const auto& rows = plan.send_rows[static_cast<std::size_t>(px.peers[k])];
    comm::Wire msg = px.recvs.at(k).take_payload();
    BNSGCN_CHECK(msg.floats.size() ==
                 rows.size() * static_cast<std::size_t>(d));
    for (std::size_t t = 0; t < rows.size(); ++t) {
      float* dst = dinner.data() + static_cast<std::int64_t>(rows[t]) * d;
      const float* src = msg.floats.data() + t * static_cast<std::size_t>(d);
      for (std::int64_t c = 0; c < d; ++c) dst[c] += src[c];
    }
    ep_.release_floats(std::move(msg.floats));
  }
}

Matrix HaloExchanger::exchange_forward(const Matrix& h_inner, NodeId n_inner,
                                       const EpochPlan& plan, float scale,
                                       int tag, int layer) {
  const std::int64_t d = h_inner.cols();
  Matrix feats(n_inner + plan.n_kept_halo, d);
  std::copy(h_inner.data(), h_inner.data() + h_inner.size(), feats.data());
  PendingExchange px = post_forward(h_inner, plan, tag, layer);
  fold_forward(px, plan, scale, feats, /*halo_row0=*/n_inner);
  return feats;
}

Matrix HaloExchanger::exchange_backward(const Matrix& dfeats, NodeId n_inner,
                                        const EpochPlan& plan, float scale,
                                        int tag) {
  const std::int64_t d = dfeats.cols();
  PendingExchange px =
      post_backward(dfeats, /*halo_row0=*/n_inner, plan, scale, tag);
  Matrix dh(n_inner, d);
  std::copy(dfeats.data(),
            dfeats.data() + static_cast<std::int64_t>(n_inner) * d, dh.data());
  fold_backward(px, plan, dh);
  return dh;
}

} // namespace bnsgcn::core
