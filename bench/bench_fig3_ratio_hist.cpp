// Figure 3: distribution of boundary/inner node ratios when a papers100M-
// class graph is split into 192 partitions. Expected shape: a wide
// distribution with a long right tail — the straggler partition needs
// several times more memory than the median one.

#include <algorithm>

#include "common.hpp"
#include "core/local_graph.hpp"

int main(int argc, char** argv) {
  using namespace bnsgcn;
  const auto opts = api::parse_bench_args(argc, argv);
  bench::print_banner("Figure 3", "boundary/inner ratio distribution, 192 parts");

  const auto pr = bench::load_preset("papers", opts.scale, opts);
  api::PartitionSpec pspec;
  pspec.nparts = 192;
  const auto part = api::cached_partition(pr.ds.graph, pspec);
  const auto stats = compute_stats(pr.ds.graph, *part);

  std::vector<double> ratios;
  for (PartId i = 0; i < 192; ++i) ratios.push_back(stats.ratio(i));
  std::sort(ratios.begin(), ratios.end());

  // Histogram over [0, max] in 16 buckets, rendered as ASCII bars.
  const double mx = ratios.back();
  constexpr int kBuckets = 16;
  std::vector<int> hist(kBuckets, 0);
  for (const double r : ratios) {
    const int b = std::min(kBuckets - 1,
                           static_cast<int>(r / (mx + 1e-9) * kBuckets));
    ++hist[static_cast<std::size_t>(b)];
  }
  std::printf("ratio histogram (%d partitions):\n", 192);
  for (int b = 0; b < kBuckets; ++b) {
    std::printf("[%5.2f,%5.2f) %4d ", mx * b / kBuckets,
                mx * (b + 1) / kBuckets, hist[static_cast<std::size_t>(b)]);
    for (int i = 0; i < hist[static_cast<std::size_t>(b)]; i += 2)
      std::printf("#");
    std::printf("\n");
  }
  const auto pct = [&](double q) {
    return ratios[static_cast<std::size_t>(q * (ratios.size() - 1))];
  };
  std::printf("\nmin %.2f  p25 %.2f  median %.2f  p75 %.2f  max %.2f\n",
              ratios.front(), pct(0.25), pct(0.5), pct(0.75), ratios.back());
  std::printf("straggler/median ratio: %.2fx (paper: straggler at ~8 vs bulk"
              " ≤ 3)\n", ratios.back() / pct(0.5));

  // Per-peer boundary-row counts: |recv_halo[i][j]| over every ordered peer
  // pair with traffic. This is exactly the working set the halo cache
  // (docs/ARCHITECTURE.md §9) holds per (peer, layer) directory, so its
  // distribution is the data-driven sizing input for RunConfig::comm
  // .cache_mb — a budget at the top quartile covers 75% of the channels
  // completely.
  const auto lgs = core::build_local_graphs(pr.ds.graph, *part);
  std::vector<std::int64_t> peer_rows;
  for (const auto& lg : lgs)
    for (const auto& halo : lg.recv_halo)
      if (!halo.empty())
        peer_rows.push_back(static_cast<std::int64_t>(halo.size()));
  std::sort(peer_rows.begin(), peer_rows.end());
  if (!peer_rows.empty()) {
    const double mx_rows = static_cast<double>(peer_rows.back());
    std::vector<int> rhist(kBuckets, 0);
    for (const std::int64_t r : peer_rows) {
      const int b = std::min(
          kBuckets - 1,
          static_cast<int>(static_cast<double>(r) / (mx_rows + 1e-9) *
                           kBuckets));
      ++rhist[static_cast<std::size_t>(b)];
    }
    std::printf("\nper-peer boundary-row histogram (%zu peer channels):\n",
                peer_rows.size());
    const int rmax =
        *std::max_element(rhist.begin(), rhist.end());
    for (int b = 0; b < kBuckets; ++b) {
      const int n = rhist[static_cast<std::size_t>(b)];
      std::printf("[%7.0f,%7.0f) %5d ", mx_rows * b / kBuckets,
                  mx_rows * (b + 1) / kBuckets, n);
      for (int i = 0; i < 40 * n / std::max(rmax, 1); ++i) std::printf("#");
      std::printf("\n");
    }
    const auto rpct = [&](double q) {
      return peer_rows[static_cast<std::size_t>(
          q * static_cast<double>(peer_rows.size() - 1))];
    };
    const std::int64_t d = pr.ds.feat_dim();
    const auto to_mb = [d](std::int64_t rows) {
      return (rows * d * static_cast<std::int64_t>(sizeof(float)) +
              (1 << 20) - 1) >> 20;
    };
    std::printf("\nrows/peer: min %lld  p25 %lld  median %lld  p75 %lld  "
                "max %lld\n",
                static_cast<long long>(peer_rows.front()),
                static_cast<long long>(rpct(0.25)),
                static_cast<long long>(rpct(0.5)),
                static_cast<long long>(rpct(0.75)),
                static_cast<long long>(peer_rows.back()));
    std::printf("suggested cache_mb at feat_dim=%lld: p75 -> %lld MiB/peer, "
                "max -> %lld MiB/peer\n",
                static_cast<long long>(d),
                static_cast<long long>(to_mb(rpct(0.75))),
                static_cast<long long>(to_mb(peer_rows.back())));
  }
  return 0;
}
