// Communication–computation overlap: blocking and overlapped training must
// be bit-identical (the knob moves only the wait point of the identical
// split-phase fp schedule — docs/ARCHITECTURE.md §4), the hidden time must
// be real and bounded by the exchange time, and the knob must be safe for
// every method/model, including the ones that fall back to blocking.

#include <gtest/gtest.h>

#include <cmath>

#include "api/run.hpp"
#include "baselines/minibatch.hpp"
#include "core/trainer.hpp"
#include "graph/dataset.hpp"
#include "partition/metis_like.hpp"

namespace bnsgcn {
namespace {

using core::BnsTrainer;
using core::ModelKind;
using core::SamplingVariant;
using core::TrainerConfig;

Dataset easy_dataset(std::uint64_t seed = 101, bool multilabel = false) {
  SyntheticSpec spec;
  spec.name = "overlap-test";
  spec.n = 1400;
  spec.m = 16000;
  spec.communities = 8;
  spec.num_classes = 8;
  spec.feat_dim = 16;
  spec.p_intra = 0.92;
  spec.feature_noise = 1.4;
  spec.multilabel = multilabel;
  spec.seed = seed;
  return make_synthetic(spec);
}

TrainerConfig base_config() {
  TrainerConfig cfg;
  cfg.num_layers = 3;  // >= 2 so the backward exchange runs too
  cfg.hidden = 32;
  cfg.dropout = 0.3f;  // exercises the RNG schedule across modes
  cfg.lr = 0.01f;
  cfg.epochs = 8;
  cfg.eval_every = 4;
  cfg.seed = 7;
  cfg.sample_rate = 0.5f;
  return cfg;
}

/// Train twice — blocking vs overlapped — and require bit-identical
/// results (losses, eval curve, byte counts).
void expect_modes_bit_identical(const Dataset& ds, const Partitioning& part,
                                TrainerConfig cfg) {
  cfg.overlap = false;
  const auto blocking = BnsTrainer(ds, part, cfg).train();
  cfg.overlap = true;
  const auto overlapped = BnsTrainer(ds, part, cfg).train();

  ASSERT_EQ(blocking.train_loss.size(), overlapped.train_loss.size());
  for (std::size_t e = 0; e < blocking.train_loss.size(); ++e)
    EXPECT_EQ(blocking.train_loss[e], overlapped.train_loss[e])
        << "epoch " << e;
  EXPECT_EQ(blocking.final_val, overlapped.final_val);
  EXPECT_EQ(blocking.final_test, overlapped.final_test);
  ASSERT_EQ(blocking.curve.size(), overlapped.curve.size());
  for (std::size_t i = 0; i < blocking.curve.size(); ++i) {
    EXPECT_EQ(blocking.curve[i].val, overlapped.curve[i].val);
    EXPECT_EQ(blocking.curve[i].test, overlapped.curve[i].test);
  }
  ASSERT_EQ(blocking.epochs.size(), overlapped.epochs.size());
  for (std::size_t i = 0; i < blocking.epochs.size(); ++i) {
    EXPECT_EQ(blocking.epochs[i].feature_bytes,
              overlapped.epochs[i].feature_bytes);
    EXPECT_EQ(blocking.epochs[i].comm_s, overlapped.epochs[i].comm_s);
    EXPECT_EQ(blocking.epochs[i].overlap_s, 0.0);
  }
}

TEST(Overlap, BlockingAndOverlappedAreBitIdenticalSage) {
  const Dataset ds = easy_dataset();
  const auto part = metis_like(ds.graph, 4);
  expect_modes_bit_identical(ds, part, base_config());
}

TEST(Overlap, BitIdenticalAcrossSampleRates) {
  const Dataset ds = easy_dataset(103);
  const auto part = metis_like(ds.graph, 3);
  for (const float p : {0.0f, 0.1f, 1.0f}) {
    auto cfg = base_config();
    cfg.epochs = 4;
    cfg.sample_rate = p;
    expect_modes_bit_identical(ds, part, cfg);
  }
}

TEST(Overlap, BitIdenticalForEdgeSamplingVariants) {
  // The edge-sampling plans carry per-edge scales through the split
  // kernels; parity must hold there too.
  const Dataset ds = easy_dataset(107);
  const auto part = metis_like(ds.graph, 3);
  for (const auto variant :
       {SamplingVariant::kBoundaryEdge, SamplingVariant::kDropEdge}) {
    auto cfg = base_config();
    cfg.epochs = 4;
    cfg.variant = variant;
    expect_modes_bit_identical(ds, part, cfg);
  }
}

TEST(Overlap, BitIdenticalMultilabel) {
  const Dataset ds = easy_dataset(109, /*multilabel=*/true);
  const auto part = metis_like(ds.graph, 3);
  auto cfg = base_config();
  cfg.epochs = 4;
  expect_modes_bit_identical(ds, part, cfg);
}

TEST(Overlap, HiddenTimeIsRealAndBounded) {
  const Dataset ds = easy_dataset(113);
  const auto part = metis_like(ds.graph, 4);
  auto cfg = base_config();
  cfg.overlap = true;
  const auto result = BnsTrainer(ds, part, cfg).train();
  double total_hidden = 0.0;
  for (const auto& e : result.epochs) {
    EXPECT_GE(e.overlap_s, 0.0);
    EXPECT_LE(e.overlap_s, e.comm_s + 1e-12); // never hides more than comm
    EXPECT_GE(e.total_s(), 0.0);
    total_hidden += e.overlap_s;
  }
  // With boundary traffic on every layer, some exchange time must be
  // hidden — this is the bench_overlap acceptance in miniature.
  EXPECT_GT(total_hidden, 0.0);
  const auto mean = result.mean_epoch();
  EXPECT_LT(mean.total_s(), mean.compute_s + mean.comm_s + mean.reduce_s +
                                mean.sample_s + mean.swap_s);
}

TEST(Overlap, GatFallsBackToBlockingSafely) {
  // GAT attention needs the whole neighbor set at once, so the trainer
  // must run the assembled path: identical results, zero hidden time.
  const Dataset ds = easy_dataset(127);
  const auto part = metis_like(ds.graph, 3);
  auto cfg = base_config();
  cfg.model = ModelKind::kGat;
  cfg.gat_heads = 2;
  cfg.epochs = 4;
  cfg.overlap = false;
  const auto blocking = BnsTrainer(ds, part, cfg).train();
  cfg.overlap = true;
  const auto overlapped = BnsTrainer(ds, part, cfg).train();
  ASSERT_EQ(blocking.train_loss.size(), overlapped.train_loss.size());
  for (std::size_t e = 0; e < blocking.train_loss.size(); ++e)
    EXPECT_EQ(blocking.train_loss[e], overlapped.train_loss[e]);
  for (const auto& e : overlapped.epochs) EXPECT_EQ(e.overlap_s, 0.0);
}

TEST(Overlap, ApiCommKnobReachesTheTrainer) {
  const Dataset ds = easy_dataset(131);
  api::RunConfig cfg;
  cfg.method = api::Method::kBns;
  cfg.trainer = base_config();
  cfg.trainer.epochs = 4;
  cfg.partition.nparts = 4;

  cfg.comm.overlap = false;
  const auto blocking = api::run(ds, cfg);
  cfg.comm.overlap = true;
  const auto overlapped = api::run(ds, cfg);

  EXPECT_EQ(blocking.train_loss, overlapped.train_loss);
  EXPECT_EQ(blocking.overlap_saved_s(), 0.0);
  EXPECT_GT(overlapped.overlap_saved_s(), 0.0);
  EXPECT_GT(overlapped.overlap_fraction(), 0.0);
  EXPECT_LE(overlapped.overlap_fraction(), 1.0);
  // The simulated epoch clock is exactly the blocking clock minus the
  // hidden time.
  const auto mean = overlapped.mean_epoch();
  EXPECT_NEAR(overlapped.epoch_time_s(),
              mean.compute_s + mean.comm_s + mean.reduce_s + mean.sample_s +
                  mean.swap_s - mean.overlap_s,
              1e-12);
}

TEST(Overlap, RocProxyAcceptsTheKnob) {
  const Dataset ds = easy_dataset(137);
  api::RunConfig cfg;
  cfg.method = api::Method::kRocProxy;
  cfg.trainer = base_config();
  cfg.trainer.epochs = 3;
  cfg.partition.nparts = 3;

  cfg.comm.overlap = false;
  const auto blocking = api::run(ds, cfg);
  cfg.comm.overlap = true;
  const auto overlapped = api::run(ds, cfg);
  // ROC runs through BnsTrainer (p=1): parity plus genuine hidden time.
  EXPECT_EQ(blocking.train_loss, overlapped.train_loss);
  EXPECT_GT(overlapped.overlap_saved_s(), 0.0);
}

TEST(Overlap, CagnetProxyIgnoresTheKnobAndTracksLoss) {
  const Dataset ds = easy_dataset(139);
  api::RunConfig cfg;
  cfg.method = api::Method::kCagnetProxy;
  cfg.trainer = base_config();
  cfg.trainer.epochs = 3;
  cfg.partition.nparts = 3;

  cfg.comm.overlap = false;
  const auto blocking = api::run(ds, cfg);
  cfg.comm.overlap = true;
  const auto overlapped = api::run(ds, cfg);

  // ROADMAP follow-up: the proxy now reports a loss per epoch, for every
  // knob setting, and the dense broadcast hides nothing (no-op fallback).
  ASSERT_EQ(blocking.train_loss.size(), 3u);
  ASSERT_EQ(overlapped.train_loss.size(), 3u);
  EXPECT_EQ(blocking.train_loss, overlapped.train_loss);
  for (const double l : blocking.train_loss) {
    EXPECT_TRUE(std::isfinite(l));
    EXPECT_GT(l, 0.0);
  }
  // Loss must actually decrease — it is a real training signal, not noise.
  EXPECT_LT(blocking.train_loss.back(), blocking.train_loss.front());
  EXPECT_EQ(overlapped.overlap_saved_s(), 0.0);
}

TEST(Overlap, SingleLayerAndSinglePartitionDegenerate) {
  // No backward exchange (L=1) and no boundary at all (m=1): the pipeline
  // must degrade gracefully with zero hidden time, not crash.
  const Dataset ds = easy_dataset(149);
  auto cfg = base_config();
  cfg.num_layers = 1;
  cfg.epochs = 3;
  cfg.overlap = true;
  const auto part1 = metis_like(ds.graph, 1);
  const auto single = BnsTrainer(ds, part1, cfg).train();
  for (const auto& e : single.epochs) EXPECT_EQ(e.overlap_s, 0.0);
  const auto part4 = metis_like(ds.graph, 4);
  const auto result = BnsTrainer(ds, part4, cfg).train();
  EXPECT_EQ(result.train_loss.size(), 3u);
}

TEST(Overlap, PhasedBlockingStillMatchesOracleAtP1) {
  // The split schedule reorders fp sums within a row; it must stay within
  // the same drift envelope of the single-process oracle as before.
  const Dataset ds = easy_dataset(151);
  TrainerConfig cfg = base_config();
  cfg.dropout = 0.0f;
  cfg.epochs = 8;
  cfg.eval_every = 0;
  cfg.sample_rate = 1.0f;
  const auto oracle = baselines::train_full_graph(ds, cfg);
  const auto part = metis_like(ds.graph, 4);
  for (const bool overlap : {false, true}) {
    cfg.overlap = overlap;
    const auto dist = BnsTrainer(ds, part, cfg).train();
    ASSERT_EQ(oracle.train_loss.size(), dist.train_loss.size());
    for (std::size_t e = 0; e < oracle.train_loss.size(); ++e)
      EXPECT_NEAR(dist.train_loss[e], oracle.train_loss[e],
                  5e-3 * std::max(1.0, std::abs(oracle.train_loss[e])))
          << "epoch " << e << " overlap=" << overlap;
  }
}

} // namespace
} // namespace bnsgcn
