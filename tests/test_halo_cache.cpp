// Halo-cache unit + integration coverage (docs/ARCHITECTURE.md §9):
//  - directory determinism: scripted step sequences pin exact actions,
//    slots and the least-(freq, position) eviction order;
//  - capacity boundaries: 0 (everything ships), exact fit, one row short;
//  - cold-vs-warm bit identity at staleness 0 across overlap modes, both
//    models, mailbox and UDS — the cache must be invisible to numerics;
//  - staleness > 0 on deeper layers: losses drift but stay bounded;
//  - config/breakdown JSON round trips and absent-key back-compat.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "api/run.hpp"
#include "api/serialize.hpp"
#include "core/halo_cache.hpp"
#include "partition/metis_like.hpp"

namespace bnsgcn {
namespace {

using core::CacheAction;
using core::CacheStep;
using core::HaloCacheDir;

std::vector<CacheAction> actions_of(const CacheStep& s) { return s.action; }

TEST(HaloCacheDir, ColdMissesStoreDenselyThenHit) {
  HaloCacheDir dir(/*capacity_rows=*/4);
  const std::vector<NodeId> pos = {0, 2, 5};
  const CacheStep cold = dir.step(pos, /*epoch=*/0, /*max_age=*/-1);
  EXPECT_EQ(actions_of(cold),
            (std::vector<CacheAction>{CacheAction::kMissStore,
                                      CacheAction::kMissStore,
                                      CacheAction::kMissStore}));
  EXPECT_EQ(cold.slot, (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(cold.hits, 0);
  EXPECT_EQ(cold.misses, 3);
  EXPECT_EQ(dir.size(), 3);

  const CacheStep warm = dir.step(pos, /*epoch=*/1, /*max_age=*/-1);
  EXPECT_EQ(actions_of(warm),
            (std::vector<CacheAction>{CacheAction::kHit, CacheAction::kHit,
                                      CacheAction::kHit}));
  EXPECT_EQ(warm.slot, (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(warm.hits, 3);
  EXPECT_EQ(warm.misses, 0);
}

TEST(HaloCacheDir, EvictionTakesLeastFrequentAndReusesItsSlot) {
  HaloCacheDir dir(/*capacity_rows=*/2);
  // Epochs 0-1 establish freq(0)=freq(1)=2 in slots 0 and 1.
  (void)dir.step(std::vector<NodeId>{0, 1}, 0, -1);
  (void)dir.step(std::vector<NodeId>{0, 1}, 1, -1);
  // Epoch 2: position 7 appears once (freq 1 < 2) — no eviction, ships.
  const CacheStep s2 = dir.step(std::vector<NodeId>{0, 7}, 2, -1);
  EXPECT_EQ(s2.action[0], CacheAction::kHit);
  EXPECT_EQ(s2.action[1], CacheAction::kMissSend);
  EXPECT_EQ(s2.slot[1], -1);
  // Epochs 3-5: position 7 keeps recurring; once its frequency strictly
  // exceeds the coldest resident (1, now at freq 2 vs 7's growing count),
  // it evicts 1 and inherits slot 1.
  (void)dir.step(std::vector<NodeId>{0, 7}, 3, -1);
  const CacheStep s4 = dir.step(std::vector<NodeId>{0, 7}, 4, -1);
  EXPECT_EQ(s4.action[1], CacheAction::kMissStore);
  EXPECT_EQ(s4.slot[1], 1); // victim's slot, not a fresh one
  EXPECT_EQ(dir.size(), 2);
  // And 1 now misses while 7 hits.
  const CacheStep s5 = dir.step(std::vector<NodeId>{1, 7}, 5, -1);
  EXPECT_EQ(s5.action[0], CacheAction::kMissSend);
  EXPECT_EQ(s5.action[1], CacheAction::kHit);
}

TEST(HaloCacheDir, EntriesTouchedThisStepAreNeverEvicted) {
  HaloCacheDir dir(/*capacity_rows=*/1);
  (void)dir.step(std::vector<NodeId>{3}, 0, -1); // 3 resident, freq 1
  // One step where 3 hits first and 9 would otherwise evict it: the
  // pin must hold even though freq(9) ties freq(3) after phase 1.
  const CacheStep s = dir.step(std::vector<NodeId>{3, 9}, 1, -1);
  EXPECT_EQ(s.action[0], CacheAction::kHit);
  EXPECT_EQ(s.action[1], CacheAction::kMissSend);
  const CacheStep s2 = dir.step(std::vector<NodeId>{3}, 2, -1);
  EXPECT_EQ(s2.action[0], CacheAction::kHit);
}

TEST(HaloCacheDir, CapacityBoundaries) {
  const std::vector<NodeId> pos = {0, 1, 2};
  // Zero capacity: pure pass-through, nothing ever stored.
  HaloCacheDir none(0);
  for (int e = 0; e < 3; ++e) {
    const CacheStep s = none.step(pos, e, -1);
    EXPECT_EQ(actions_of(s),
              (std::vector<CacheAction>{CacheAction::kMissSend,
                                        CacheAction::kMissSend,
                                        CacheAction::kMissSend}));
    EXPECT_EQ(none.size(), 0);
  }
  // Exact fit: every row resident from epoch 1 on.
  HaloCacheDir fit(3);
  (void)fit.step(pos, 0, -1);
  EXPECT_EQ(fit.step(pos, 1, -1).hits, 3);
  // One row short: exactly one position keeps shipping.
  HaloCacheDir tight(2);
  (void)tight.step(pos, 0, -1);
  const CacheStep s = tight.step(pos, 1, -1);
  EXPECT_EQ(s.hits, 2);
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.action[2], CacheAction::kMissSend);
}

TEST(HaloCacheDir, StalenessBoundRefreshesInPlace) {
  HaloCacheDir dir(4);
  const std::vector<NodeId> pos = {0, 1};
  (void)dir.step(pos, 0, /*max_age=*/1);
  EXPECT_EQ(dir.step(pos, 1, 1).hits, 2); // age 1 <= bound
  const CacheStep stale = dir.step(pos, 3, 1); // age 3 > bound
  EXPECT_EQ(actions_of(stale),
            (std::vector<CacheAction>{CacheAction::kMissStore,
                                      CacheAction::kMissStore}));
  EXPECT_EQ(stale.slot, (std::vector<NodeId>{0, 1})); // same slots, refreshed
  EXPECT_EQ(dir.step(pos, 4, 1).hits, 2);
}

// ---- Integration: the cache through the full trainer --------------------

Dataset cache_dataset(std::uint64_t seed = 61) {
  SyntheticSpec spec;
  spec.name = "halo-cache-test";
  spec.n = 800;
  spec.m = 8000;
  spec.communities = 4;
  spec.num_classes = 4;
  spec.feat_dim = 24;
  spec.p_intra = 0.9;
  spec.feature_noise = 1.0;
  spec.seed = seed;
  return make_synthetic(spec);
}

api::RunConfig cache_config(core::ModelKind model, core::OverlapMode mode,
                            NodeId chunk, std::int64_t cache_mb) {
  api::RunConfig cfg;
  cfg.method = api::Method::kBns;
  cfg.trainer.num_layers = 2;
  cfg.trainer.hidden = 16;
  cfg.trainer.epochs = 4;
  cfg.trainer.seed = 9;
  cfg.trainer.sample_rate = 1.0f;
  cfg.trainer.eval_every = 2;
  cfg.trainer.model = model;
  cfg.trainer.gat_heads = model == core::ModelKind::kGat ? 2 : 1;
  cfg.comm.overlap = mode;
  cfg.comm.inner_chunk_rows = chunk;
  cfg.comm.cache_mb = cache_mb;
  return cfg;
}

bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

void expect_same_numerics(const api::RunReport& a, const api::RunReport& b,
                          const std::string& what) {
  SCOPED_TRACE(what);
  ASSERT_EQ(a.train_loss.size(), b.train_loss.size());
  for (std::size_t i = 0; i < a.train_loss.size(); ++i)
    EXPECT_TRUE(bits_equal(a.train_loss[i], b.train_loss[i]))
        << "loss bits diverged at epoch " << i;
  EXPECT_TRUE(bits_equal(a.final_val, b.final_val));
  EXPECT_TRUE(bits_equal(a.final_test, b.final_test));
}

TEST(HaloCacheTrainer, Staleness0IsBitIdenticalAcrossModesAndModels) {
  const Dataset ds = cache_dataset();
  const auto part = metis_like(ds.graph, 4);
  for (const core::ModelKind model :
       {core::ModelKind::kSage, core::ModelKind::kGat}) {
    for (const auto& [mode, chunk] :
         {std::pair{core::OverlapMode::kBlocking, NodeId{0}},
          std::pair{core::OverlapMode::kBulk, NodeId{0}},
          std::pair{core::OverlapMode::kStream, NodeId{0}},
          std::pair{core::OverlapMode::kStream, NodeId{48}}}) {
      const std::string what =
          std::string(model == core::ModelKind::kGat ? "gat" : "sage") +
          " mode=" + std::to_string(static_cast<int>(mode)) +
          " chunk=" + std::to_string(chunk);
      const api::RunReport plain =
          api::run(ds, part, cache_config(model, mode, chunk, 0));
      const api::RunReport cached =
          api::run(ds, part, cache_config(model, mode, chunk, 8));
      expect_same_numerics(plain, cached, what);
      // The cache must actually engage: layer-0 rows repeat every epoch.
      EXPECT_GT(cached.cache_hit_rows(), 0) << what;
      EXPECT_GT(cached.cache_bytes_saved(), 0) << what;
      EXPECT_EQ(plain.cache_hit_rows(), 0) << what;
      // Warm epochs ship strictly fewer feature bytes.
      ASSERT_EQ(plain.epochs.size(), cached.epochs.size());
      for (std::size_t e = 1; e < plain.epochs.size(); ++e)
        EXPECT_LT(cached.epochs[e].feature_bytes,
                  plain.epochs[e].feature_bytes)
            << what << " epoch " << e;
    }
  }
}

TEST(HaloCacheTrainer, UdsMatchesMailboxWithCacheOn) {
  const Dataset ds = cache_dataset(67);
  const auto part = metis_like(ds.graph, 2);
  auto cfg = cache_config(core::ModelKind::kSage, core::OverlapMode::kStream,
                          0, 4);
  cfg.comm.transport = comm::TransportKind::kMailbox;
  const api::RunReport mbox = api::run(ds, part, cfg);
  cfg.comm.transport = comm::TransportKind::kUds;
  const api::RunReport sock = api::run(ds, part, cfg);
  expect_same_numerics(mbox, sock, "cached uds vs mailbox");
  ASSERT_EQ(mbox.epochs.size(), sock.epochs.size());
  for (std::size_t e = 0; e < mbox.epochs.size(); ++e) {
    EXPECT_EQ(mbox.epochs[e].feature_bytes, sock.epochs[e].feature_bytes);
    EXPECT_EQ(mbox.epochs[e].cache_hit_rows, sock.epochs[e].cache_hit_rows);
    EXPECT_EQ(mbox.epochs[e].bytes_saved, sock.epochs[e].bytes_saved);
  }
  EXPECT_GT(sock.cache_hit_rows(), 0);
}

TEST(HaloCacheTrainer, StalenessDriftStaysBounded) {
  // Deeper-layer caching under a staleness bound replays rows up to two
  // epochs old: losses legitimately drift off the exact run, but training
  // must stay sane — finite losses, same downward trend, and a loose
  // envelope against the exact run's final loss.
  const Dataset ds = cache_dataset(71);
  const auto part = metis_like(ds.graph, 4);
  auto exact = cache_config(core::ModelKind::kSage,
                            core::OverlapMode::kBlocking, 0, 0);
  exact.trainer.epochs = 8;
  auto stale = exact;
  stale.comm.cache_mb = 8;
  stale.comm.cache_staleness = 2;
  const api::RunReport base = api::run(ds, part, exact);
  const api::RunReport got = api::run(ds, part, stale);
  ASSERT_EQ(base.train_loss.size(), got.train_loss.size());
  for (const double l : got.train_loss) {
    EXPECT_TRUE(std::isfinite(l));
    EXPECT_GT(l, 0.0);
  }
  // Still learning: the stale run's final loss beats its own first epoch.
  EXPECT_LT(got.train_loss.back(), got.train_loss.front());
  // Loose drift envelope vs the exact trajectory.
  EXPECT_NEAR(got.train_loss.back(), base.train_loss.back(),
              0.5 * base.train_loss.front());
  // Deeper layers cached → hits beyond what layer 0 alone would produce.
  EXPECT_GT(got.cache_hit_rows(), 0);
}

// ---- JSON round trips ---------------------------------------------------

TEST(HaloCacheJson, ConfigRoundTripsAndAbsentKeysDisable) {
  api::RunConfig cfg;
  cfg.comm.cache_mb = 6;
  cfg.comm.cache_staleness = 1;
  cfg.trainer.cache_mb = 6;
  cfg.trainer.cache_staleness = 1;
  const api::RunConfig rt =
      api::run_config_from_json_string(api::to_json_string(cfg, 0));
  EXPECT_EQ(rt.comm.cache_mb, 6);
  EXPECT_EQ(rt.comm.cache_staleness, 1);
  EXPECT_EQ(rt.trainer.cache_mb, 6);
  EXPECT_EQ(rt.trainer.cache_staleness, 1);

  // Uncached configs don't even mention the keys (old artifacts stay
  // byte-identical), and configs written before the cache existed load
  // with it disabled.
  api::RunConfig plain;
  const std::string text = api::to_json_string(plain, 0);
  EXPECT_EQ(text.find("cache_mb"), std::string::npos);
  const api::RunConfig old = api::run_config_from_json_string(
      R"({"method":"bns","comm":{"overlap":"bulk"}})");
  EXPECT_EQ(old.comm.cache_mb, 0);
  EXPECT_EQ(old.comm.cache_staleness, 0);
  EXPECT_EQ(old.trainer.cache_mb, 0);
}

TEST(HaloCacheJson, BreakdownCountersRoundTripAndDefaultToZero) {
  core::EpochBreakdown eb;
  eb.compute_s = 1.0;
  eb.feature_bytes = 100;
  eb.cache_hit_rows = 42;
  eb.cache_miss_rows = 7;
  eb.bytes_saved = 4200;
  const core::EpochBreakdown rt =
      api::breakdown_from_json(api::to_json(eb));
  EXPECT_EQ(rt.cache_hit_rows, 42);
  EXPECT_EQ(rt.cache_miss_rows, 7);
  EXPECT_EQ(rt.bytes_saved, 4200);

  // All-zero counters: keys absent (old-artifact byte identity) and the
  // reader restores zeros.
  core::EpochBreakdown plain;
  plain.feature_bytes = 5;
  const std::string text = api::to_json(plain).dump(0);
  EXPECT_EQ(text.find("cache_hit_rows"), std::string::npos);
  const core::EpochBreakdown back =
      api::breakdown_from_json(json::Value::parse(text));
  EXPECT_EQ(back.cache_hit_rows, 0);
  EXPECT_EQ(back.bytes_saved, 0);
}

} // namespace
} // namespace bnsgcn
