#include "api/partition_cache.hpp"

#include <cstdio>
#include <filesystem>

#include "common/check.hpp"
#include "partition/io.hpp"

namespace bnsgcn::api {

namespace {

const char* kind_tag(PartitionSpec::Kind k) {
  switch (k) {
    case PartitionSpec::Kind::kMetis: return "metis";
    case PartitionSpec::Kind::kRandom: return "random";
    case PartitionSpec::Kind::kHash: return "hash";
    case PartitionSpec::Kind::kBfs: return "bfs";
  }
  return "unknown";
}

} // namespace

PartitionCache::PartitionCache(PartitionCacheConfig cfg)
    : cfg_(std::move(cfg)) {
  BNSGCN_CHECK_MSG(cfg_.capacity >= 1, "partition cache needs capacity >= 1");
}

std::string PartitionCache::key_string(const GraphFingerprint& fp,
                                       const PartitionSpec& spec) {
  const std::uint64_t seed =
      spec.kind == PartitionSpec::Kind::kHash ? 0 : spec.seed;
  char buf[96];
  std::snprintf(buf, sizeof(buf), "-v%u-%s-%d-%llu", kPartitionerVersion,
                kind_tag(spec.kind), spec.nparts,
                static_cast<unsigned long long>(seed));
  return fp.hex() + buf;
}

std::string PartitionCache::disk_path(const std::string& key) const {
  return cfg_.disk_dir + "/" + key + ".part";
}

bool PartitionCache::insert(const std::string& key,
                            std::shared_ptr<const Partitioning> part) {
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Racing duplicate of the same miss: both producers hold bit-identical
    // values, so replace in place and refresh — never emplace a second
    // node for the key (that would orphan the first and let its eventual
    // eviction erase the live index entry).
    it->second->second = std::move(part);
    lru_.splice(lru_.begin(), lru_, it->second);
    return false;
  }
  lru_.emplace_front(key, std::move(part));
  index_[key] = lru_.begin();
  if (lru_.size() > cfg_.capacity) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
    return true;
  }
  return false;
}

std::shared_ptr<const Partitioning> PartitionCache::get(
    const Csr& graph, const PartitionSpec& spec, PartitionCacheStats* delta) {
  PartitionCacheStats local; // exactly this lookup's outcome
  const auto done = [&](std::shared_ptr<const Partitioning> part) {
    if (delta != nullptr) *delta = local;
    return part;
  };
  if (!cfg_.enabled) {
    auto part =
        std::make_shared<const Partitioning>(make_partition(graph, spec));
    local.misses = 1;
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
    return done(std::move(part));
  }
  const std::string key = key_string(fingerprint(graph), spec);
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      ++stats_.hits;
      local.hits = 1;
      lru_.splice(lru_.begin(), lru_, it->second); // refresh LRU position
      return done(it->second->second);
    }
  }
  // Disk probe and (on miss) the partitioner run happen outside the lock:
  // both are slow, and concurrent getters of *different* keys should not
  // serialize. A racing duplicate compute of the same key is harmless —
  // both producers store bit-identical values and insert() dedups.
  if (!cfg_.disk_dir.empty()) {
    const std::string path = disk_path(key);
    if (std::filesystem::exists(path)) {
      try {
        auto part =
            std::make_shared<const Partitioning>(load_partitioning(path));
        // A fingerprint collision or a hand-edited file could still
        // deliver a partitioning of the wrong shape; fall through to a
        // fresh compute rather than train on it.
        if (part->nparts == spec.nparts &&
            part->num_nodes() == graph.n) {
          local.disk_hits = 1;
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.disk_hits;
          local.evictions = insert(key, part) ? 1 : 0;
          return done(std::move(part));
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr,
                     "partition cache: ignoring unreadable %s (%s)\n",
                     path.c_str(), e.what());
      }
    }
  }
  auto part = std::make_shared<const Partitioning>(make_partition(graph, spec));
  if (!cfg_.disk_dir.empty()) {
    // Best-effort: a read-only store must not fail the run it is
    // accelerating.
    try {
      std::filesystem::create_directories(cfg_.disk_dir);
      save_partitioning(*part, disk_path(key));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "partition cache: cannot persist to %s (%s)\n",
                   cfg_.disk_dir.c_str(), e.what());
    }
  }
  local.misses = 1;
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.misses;
  local.evictions = insert(key, part) ? 1 : 0;
  return done(std::move(part));
}

PartitionCacheStats PartitionCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void PartitionCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  stats_ = {};
}

void PartitionCache::reconfigure(PartitionCacheConfig cfg) {
  BNSGCN_CHECK_MSG(cfg.capacity >= 1, "partition cache needs capacity >= 1");
  std::lock_guard<std::mutex> lock(mu_);
  cfg_ = std::move(cfg);
  lru_.clear();
  index_.clear();
  stats_ = {};
}

namespace {

PartitionCache& mutable_global_cache() {
  static PartitionCache cache{PartitionCacheConfig{}};
  return cache;
}

} // namespace

PartitionCache& partition_cache() { return mutable_global_cache(); }

void configure_partition_cache(PartitionCacheConfig cfg) {
  mutable_global_cache().reconfigure(std::move(cfg));
}

std::shared_ptr<const Partitioning> cached_partition(
    const Csr& graph, const PartitionSpec& spec) {
  return partition_cache().get(graph, spec);
}

} // namespace bnsgcn::api
