#include "graph/csr.hpp"

#include <algorithm>

namespace bnsgcn {

bool Csr::has_edge(NodeId u, NodeId v) const {
  const auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

void Csr::validate() const {
  BNSGCN_CHECK(static_cast<NodeId>(offsets.size()) == n + 1);
  BNSGCN_CHECK(offsets.front() == 0);
  BNSGCN_CHECK(offsets.back() == static_cast<EdgeId>(nbrs.size()));
  for (NodeId v = 0; v < n; ++v) {
    BNSGCN_CHECK(offsets[static_cast<std::size_t>(v)] <=
                 offsets[static_cast<std::size_t>(v) + 1]);
    const auto nb = neighbors(v);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      BNSGCN_CHECK(nb[i] >= 0 && nb[i] < n);
      if (i > 0) BNSGCN_CHECK_MSG(nb[i - 1] < nb[i], "unsorted or duplicate");
    }
  }
}

void CooBuilder::add_edge(NodeId u, NodeId v) {
  BNSGCN_CHECK(u >= 0 && u < n_ && v >= 0 && v < n_);
  edges_.emplace_back(u, v);
}

Csr CooBuilder::build(const Options& opts) {
  std::vector<std::pair<NodeId, NodeId>> arcs;
  arcs.reserve(edges_.size() * (opts.symmetrize ? 2 : 1));
  for (const auto& [u, v] : edges_) {
    if (opts.drop_self_loops && u == v) continue;
    arcs.emplace_back(u, v);
    if (opts.symmetrize && u != v) arcs.emplace_back(v, u);
  }
  edges_.clear();
  edges_.shrink_to_fit();

  std::sort(arcs.begin(), arcs.end());
  arcs.erase(std::unique(arcs.begin(), arcs.end()), arcs.end());

  Csr g;
  g.n = n_;
  g.offsets.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (const auto& [u, v] : arcs) {
    (void)v;
    ++g.offsets[static_cast<std::size_t>(u) + 1];
  }
  for (std::size_t i = 1; i < g.offsets.size(); ++i)
    g.offsets[i] += g.offsets[i - 1];
  g.nbrs.resize(arcs.size());
  for (std::size_t i = 0; i < arcs.size(); ++i) g.nbrs[i] = arcs[i].second;
  return g;
}

InducedSubgraph induced_subgraph(const Csr& g, std::span<const NodeId> nodes) {
  std::vector<NodeId> global_to_local(static_cast<std::size_t>(g.n), -1);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    BNSGCN_CHECK(nodes[i] >= 0 && nodes[i] < g.n);
    BNSGCN_CHECK_MSG(global_to_local[static_cast<std::size_t>(nodes[i])] == -1,
                     "duplicate node in induced set");
    global_to_local[static_cast<std::size_t>(nodes[i])] =
        static_cast<NodeId>(i);
  }

  InducedSubgraph out;
  out.local_to_global.assign(nodes.begin(), nodes.end());
  Csr& sg = out.adj;
  sg.n = static_cast<NodeId>(nodes.size());
  sg.offsets.assign(nodes.size() + 1, 0);

  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (const NodeId u : g.neighbors(nodes[i])) {
      if (global_to_local[static_cast<std::size_t>(u)] >= 0)
        ++sg.offsets[i + 1];
    }
  }
  for (std::size_t i = 1; i < sg.offsets.size(); ++i)
    sg.offsets[i] += sg.offsets[i - 1];
  sg.nbrs.resize(static_cast<std::size_t>(sg.offsets.back()));
  std::vector<EdgeId> cursor(sg.offsets.begin(), sg.offsets.end() - 1);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (const NodeId u : g.neighbors(nodes[i])) {
      const NodeId lu = global_to_local[static_cast<std::size_t>(u)];
      if (lu >= 0) sg.nbrs[static_cast<std::size_t>(cursor[i]++)] = lu;
    }
  }
  // Neighbor lists inherit sortedness only if the local ids are monotone in
  // the global order, which `nodes` need not be — sort each list.
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    std::sort(sg.nbrs.begin() + static_cast<std::ptrdiff_t>(sg.offsets[i]),
              sg.nbrs.begin() + static_cast<std::ptrdiff_t>(sg.offsets[i + 1]));
  }
  return out;
}

} // namespace bnsgcn
