#include "comm/fabric.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "comm/mailbox_transport.hpp"
#include "common/check.hpp"

namespace bnsgcn::comm {

std::int64_t RankStats::total_tx_bytes() const {
  std::int64_t sum = 0;
  for (const auto b : tx_bytes) sum += b;
  return sum;
}

std::int64_t RankStats::total_rx_bytes() const {
  std::int64_t sum = 0;
  for (const auto b : rx_bytes) sum += b;
  return sum;
}

double RankStats::sim_seconds(TrafficClass cls, const CostModel& cost) const {
  const auto i = static_cast<int>(cls);
  const double tx = static_cast<double>(tx_msgs[i]) * cost.latency_s +
                    static_cast<double>(tx_bytes[i]) / cost.bytes_per_s;
  const double rx = static_cast<double>(rx_msgs[i]) * cost.latency_s +
                    static_cast<double>(rx_bytes[i]) / cost.bytes_per_s;
  return std::max(tx, rx);
}

Fabric::Fabric(PartId nranks, CostModel cost)
    : Fabric(std::make_unique<MailboxTransport>(nranks), cost) {}

Fabric::Fabric(std::unique_ptr<Transport> transport, CostModel cost)
    : transport_(std::move(transport)), cost_(cost) {
  BNSGCN_CHECK(transport_ != nullptr && transport_->nranks() >= 1);
  const PartId n = transport_->nranks();
  endpoints_.reserve(static_cast<std::size_t>(n));
  for (PartId r = 0; r < n; ++r)
    endpoints_.push_back(std::unique_ptr<Endpoint>(new Endpoint(*this, r)));
}

Endpoint& Fabric::endpoint(PartId rank) {
  BNSGCN_CHECK(rank >= 0 && rank < nranks());
  BNSGCN_CHECK_MSG(transport_->serves(rank),
                   "this process's transport does not carry the rank");
  return *endpoints_[static_cast<std::size_t>(rank)];
}

std::int64_t Fabric::total_rx_bytes(TrafficClass cls) const {
  std::int64_t sum = 0;
  for (const auto& ep : endpoints_)
    sum += ep->stats().rx_bytes[static_cast<int>(cls)];
  return sum;
}

void Fabric::reset_stats() {
  for (auto& ep : endpoints_) ep->stats().reset();
}

void Fabric::enable_delivery_shuffle(std::uint64_t seed, int max_hold) {
  transport_->enable_delivery_shuffle(seed, max_hold);
}

bool Request::test() {
  if (done()) return true;
  Endpoint& ep = *state_->owner;
  if (ep.transport().try_recv(ep.rank(), state_->from, state_->tag,
                              state_->payload)) {
    state_->done = true;
    ep.account_rx(state_->cls, state_->payload);
  }
  return done();
}

void Request::wait() {
  if (done()) return;
  Endpoint& ep = *state_->owner;
  state_->payload = ep.transport().recv(ep.rank(), state_->from, state_->tag);
  state_->done = true;
  ep.account_rx(state_->cls, state_->payload);
}

std::vector<float> Request::take_floats() {
  wait();
  BNSGCN_CHECK(state_ != nullptr);
  return std::move(state_->payload.floats);
}

std::vector<NodeId> Request::take_ids() {
  wait();
  BNSGCN_CHECK(state_ != nullptr);
  return std::move(state_->payload.ids);
}

Wire Request::take_payload() {
  wait();
  BNSGCN_CHECK(state_ != nullptr);
  return std::move(state_->payload);
}

void wait_all(std::span<Request> requests) {
  // First drain whatever already arrived without blocking, then block on
  // the stragglers — the usual Waitall progression.
  for (auto& r : requests) (void)r.test();
  for (auto& r : requests) r.wait();
}

std::size_t RequestSet::add(Request req) {
  const std::size_t idx = requests_.size();
  requests_.push_back(std::move(req));
  reported_.push_back(0);
  ++pending_;
  return idx;
}

std::size_t RequestSet::poll(std::vector<std::size_t>& completed) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < requests_.size(); ++i) {
    if (reported_[i]) continue;
    if (requests_[i].test()) {
      reported_[i] = 1;
      --pending_;
      completed.push_back(i);
      ++n;
    }
  }
  return n;
}

std::size_t RequestSet::wait_any(std::vector<std::size_t>& completed) {
  if (pending_ == 0) return 0;
  for (int empty_passes = 0;; ++empty_passes) {
    const std::size_t n = poll(completed);
    if (n > 0) return n;
    // Nothing landed this pass: let sender threads run. A condvar across
    // several mailboxes would need fabric-level plumbing, so this polls —
    // but a bare spin-yield would contend with the ranks still computing
    // (and inflate their measured compute on oversubscribed hosts), so
    // after a burst of empty passes back off to a real sleep. The socket
    // backend's try_recv blocks in poll(2) anyway, so the yield is only
    // ever hit on the mailbox.
    if (empty_passes < 64) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
}

void RequestSet::wait_all() {
  for (std::size_t i = 0; i < requests_.size(); ++i) {
    if (reported_[i]) continue;
    requests_[i].wait();
    reported_[i] = 1;
    --pending_;
  }
}

PartId Endpoint::nranks() const { return fabric_.nranks(); }

TimingSource Endpoint::timing() const { return fabric_.timing(); }

Transport& Endpoint::transport() { return *fabric_.transport_; }

void Endpoint::account_rx(TrafficClass cls, const Wire& msg) {
  const auto bytes =
      static_cast<std::int64_t>(msg.floats.size() * sizeof(float)) +
      static_cast<std::int64_t>(msg.ids.size() * sizeof(NodeId));
  stats_.rx_bytes[static_cast<int>(cls)] += bytes;
  ++stats_.rx_msgs[static_cast<int>(cls)];
}

void Endpoint::send_floats(PartId to, int tag, std::vector<float> payload,
                           TrafficClass cls) {
  BNSGCN_CHECK(to >= 0 && to < fabric_.nranks() && to != rank_);
  const auto bytes =
      static_cast<std::int64_t>(payload.size() * sizeof(float));
  stats_.tx_bytes[static_cast<int>(cls)] += bytes;
  ++stats_.tx_msgs[static_cast<int>(cls)];
  transport().send(rank_, to,
                   Wire{.tag = tag,
                        .hold = 0,
                        .kind = WireKind::kFloats,
                        .floats = std::move(payload),
                        .ids = {}});
}

std::vector<float> Endpoint::recv_floats(PartId from, int tag,
                                         TrafficClass cls) {
  BNSGCN_CHECK(from >= 0 && from < fabric_.nranks() && from != rank_);
  Wire msg = transport().recv(rank_, from, tag);
  account_rx(cls, msg);
  return std::move(msg.floats);
}

void Endpoint::send_ids(PartId to, int tag, std::vector<NodeId> payload,
                        TrafficClass cls) {
  BNSGCN_CHECK(to >= 0 && to < fabric_.nranks() && to != rank_);
  const auto bytes =
      static_cast<std::int64_t>(payload.size() * sizeof(NodeId));
  stats_.tx_bytes[static_cast<int>(cls)] += bytes;
  ++stats_.tx_msgs[static_cast<int>(cls)];
  transport().send(rank_, to,
                   Wire{.tag = tag,
                        .hold = 0,
                        .kind = WireKind::kIds,
                        .floats = {},
                        .ids = std::move(payload)});
}

std::vector<NodeId> Endpoint::recv_ids(PartId from, int tag,
                                       TrafficClass cls) {
  BNSGCN_CHECK(from >= 0 && from < fabric_.nranks() && from != rank_);
  Wire msg = transport().recv(rank_, from, tag);
  account_rx(cls, msg);
  return std::move(msg.ids);
}

Request Endpoint::isend_floats(PartId to, int tag, std::vector<float> payload,
                               TrafficClass cls) {
  // The backend deposit/queue never blocks indefinitely, so an
  // "immediate" send completes on posting; the Request exists for a
  // uniform wait_all over mixed batches.
  send_floats(to, tag, std::move(payload), cls);
  auto state = std::make_unique<Request::State>();
  state->done = true;
  return Request(std::move(state));
}

Request Endpoint::isend_ids(PartId to, int tag, std::vector<NodeId> payload,
                            TrafficClass cls) {
  send_ids(to, tag, std::move(payload), cls);
  auto state = std::make_unique<Request::State>();
  state->done = true;
  return Request(std::move(state));
}

Request Endpoint::isend_halo(PartId to, int tag, std::vector<NodeId> present,
                             std::vector<float> rows, TrafficClass cls) {
  BNSGCN_CHECK(to >= 0 && to < fabric_.nranks() && to != rank_);
  const auto bytes =
      static_cast<std::int64_t>(rows.size() * sizeof(float)) +
      static_cast<std::int64_t>(present.size() * sizeof(NodeId));
  stats_.tx_bytes[static_cast<int>(cls)] += bytes;
  ++stats_.tx_msgs[static_cast<int>(cls)];
  transport().send(rank_, to,
                   Wire{.tag = tag,
                        .hold = 0,
                        .kind = WireKind::kHaloDelta,
                        .floats = std::move(rows),
                        .ids = std::move(present)});
  auto state = std::make_unique<Request::State>();
  state->done = true;
  return Request(std::move(state));
}

std::vector<float> Endpoint::acquire_floats(std::size_t n) {
  if (!float_pool_.empty()) {
    std::vector<float> buf = std::move(float_pool_.back());
    float_pool_.pop_back();
    buf.resize(n);
    ++pool_stats_.hits;
    return buf;
  }
  ++pool_stats_.misses;
  return std::vector<float>(n);
}

void Endpoint::release_floats(std::vector<float> buf) {
  // Bounded so a pathological schedule cannot hoard memory; past the cap
  // the buffer just frees as before the pool existed.
  constexpr std::size_t kMaxPooled = 64;
  if (buf.capacity() == 0 || float_pool_.size() >= kMaxPooled) return;
  float_pool_.push_back(std::move(buf));
}

Request Endpoint::irecv_floats(PartId from, int tag, TrafficClass cls) {
  BNSGCN_CHECK(from >= 0 && from < fabric_.nranks() && from != rank_);
  auto state = std::make_unique<Request::State>();
  state->owner = this;
  state->from = from;
  state->tag = tag;
  state->cls = cls;
  return Request(std::move(state));
}

Request Endpoint::irecv_ids(PartId from, int tag, TrafficClass cls) {
  return irecv_floats(from, tag, cls); // same matching; payload kind differs
}

void Endpoint::barrier() { transport().barrier(rank_); }

void Endpoint::allreduce_sum(std::span<float> data, TrafficClass cls) {
  transport().allreduce_sum(rank_, data);
  // Ring-allreduce accounting: each rank moves 2*(n-1)/n of the payload.
  const auto n = fabric_.nranks();
  if (n > 1) {
    const auto payload = static_cast<std::int64_t>(
        2.0 * static_cast<double>(n - 1) / static_cast<double>(n) *
        static_cast<double>(data.size() * sizeof(float)));
    stats_.tx_bytes[static_cast<int>(cls)] += payload;
    stats_.rx_bytes[static_cast<int>(cls)] += payload;
    stats_.tx_msgs[static_cast<int>(cls)] += 2 * (n - 1);
    stats_.rx_msgs[static_cast<int>(cls)] += 2 * (n - 1);
  }
}

double Endpoint::allreduce_sum_scalar(double value) {
  return transport().allreduce_sum_scalar(rank_, value);
}

double Endpoint::allreduce_max_scalar(double value) {
  return transport().allreduce_max_scalar(rank_, value);
}

std::vector<std::vector<NodeId>> Endpoint::allgather_ids(
    std::vector<NodeId> ids, TrafficClass cls) {
  const auto own_bytes = static_cast<std::int64_t>(ids.size() * sizeof(NodeId));
  auto out = transport().allgather_ids(rank_, std::move(ids));
  std::int64_t rx = 0;
  for (PartId r = 0; r < fabric_.nranks(); ++r)
    if (r != rank_)
      rx += static_cast<std::int64_t>(out[static_cast<std::size_t>(r)].size() *
                                      sizeof(NodeId));
  const auto n = fabric_.nranks();
  stats_.tx_bytes[static_cast<int>(cls)] += own_bytes * (n - 1);
  stats_.rx_bytes[static_cast<int>(cls)] += rx;
  stats_.tx_msgs[static_cast<int>(cls)] += n - 1;
  stats_.rx_msgs[static_cast<int>(cls)] += n - 1;
  return out;
}

std::vector<std::vector<double>> Endpoint::allgather_doubles(
    std::vector<double> vals) {
  return transport().allgather_doubles(rank_, vals);
}

} // namespace bnsgcn::comm
