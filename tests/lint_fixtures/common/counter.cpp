// Fixture: unordered containers are fine outside ordering-sensitive paths.
#include <unordered_map>

namespace fixture {

int count_distinct(const int* p, int n) {
  std::unordered_map<int, int> freq; // common/ is not an ordering path
  for (int i = 0; i < n; ++i) ++freq[p[i]];
  return static_cast<int>(freq.size());
}

} // namespace fixture
