// Figure 4: full-graph training throughput (epochs/s) of BNS-GCN at
// p ∈ {1, 0.1, 0.01} vs the ROC and CAGNET (c=1,2) proxies, across
// partition counts, under the PCIe-class interconnect model.
// Expected shape: BNS-GCN(p=0.01) ≫ BNS-GCN(p=1) > CAGNET ≈ ROC; the gap
// widens with more partitions because boundary sets grow.

#include "core/proxies.hpp"

#include "common.hpp"

namespace {

using namespace bnsgcn;

void run_dataset(const char* title, const Dataset& ds,
                 core::TrainerConfig cfg, const std::vector<PartId>& parts) {
  std::printf("\n--- %s (n=%d, avg deg %.1f) ---\n", title, ds.num_nodes(),
              ds.graph.average_degree());
  std::printf("%-22s", "method \\ #partitions");
  for (const PartId m : parts) std::printf(" %10d", m);
  std::printf("\n");

  cfg.epochs = 5; // throughput measurement only
  const auto row = [&](const char* name, auto&& runner) {
    std::printf("%-22s", name);
    for (const PartId m : parts) {
      const auto part = metis_like(ds.graph, m);
      const double eps = runner(part);
      std::printf(" %10.2f", eps);
    }
    std::printf("  epochs/s\n");
  };

  row("ROC (swap proxy)", [&](const Partitioning& part) {
    return core::run_roc_proxy(ds, part, cfg).throughput_eps();
  });
  row("CAGNET proxy (c=1)", [&](const Partitioning& part) {
    return core::run_cagnet_proxy(ds, part, cfg, 1).throughput_eps();
  });
  row("CAGNET proxy (c=2)", [&](const Partitioning& part) {
    return core::run_cagnet_proxy(ds, part, cfg, 2).throughput_eps();
  });
  for (const float p : {1.0f, 0.1f, 0.01f}) {
    char name[64];
    std::snprintf(name, sizeof(name), "BNS-GCN (p=%.2f)", p);
    row(name, [&](const Partitioning& part) {
      auto c = cfg;
      c.sample_rate = p;
      return core::BnsTrainer(ds, part, c).train().throughput_eps();
    });
  }
}

} // namespace

int main() {
  using namespace bnsgcn;
  bench::print_banner("Figure 4", "throughput vs #partitions (simulated PCIe)");
  const double s = bench::bench_scale();

  {
    const Dataset ds = make_synthetic(reddit_like(0.5 * s));
    run_dataset("Reddit-like", ds, bench::reddit_config(), {2, 4, 8});
  }
  {
    const Dataset ds = make_synthetic(products_like(0.4 * s));
    run_dataset("ogbn-products-like", ds, bench::products_config(), {5, 8, 10});
  }
  {
    const Dataset ds = make_synthetic(yelp_like(0.5 * s));
    auto cfg = bench::yelp_config();
    run_dataset("Yelp-like", ds, cfg, {3, 6, 10});
  }
  std::printf("\npaper shape check: BNS(p=0.01) is ~9-16x ROC and ~9-14x "
              "CAGNET(c=2) on Reddit; p<1 scales with partitions.\n");
  return 0;
}
