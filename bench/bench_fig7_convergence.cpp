// Figures 7 & 9: test-score convergence curves for p ∈ {1, 0.1, 0.01, 0}.
// Expected shape: p=0.1/0.01 converge to the best score; p=1 can overfit
// (products-like has an 8% train split); p=0 converges worst and plateaus
// below the others.

#include "common.hpp"

namespace {

using namespace bnsgcn;

void run_dataset(const char* title, const Dataset& ds,
                 core::TrainerConfig cfg, PartId parts) {
  std::printf("\n--- %s (%d partitions) ---\n", title, parts);
  const auto part = metis_like(ds.graph, parts);
  cfg.eval_every = std::max(1, cfg.epochs / 12);

  std::printf("%-8s", "epoch");
  std::vector<std::vector<core::EvalPoint>> curves;
  for (const float p : {1.0f, 0.1f, 0.01f, 0.0f}) {
    auto c = cfg;
    c.sample_rate = p;
    curves.push_back(core::BnsTrainer(ds, part, c).train().curve);
    std::printf("  p=%-8.2f", p);
  }
  std::printf("(test score %%)\n");
  for (std::size_t i = 0; i < curves[0].size(); ++i) {
    std::printf("%-8d", curves[0][i].epoch);
    for (const auto& curve : curves)
      std::printf("  %-10.2f", 100.0 * curve[i].test);
    std::printf("\n");
  }
}

} // namespace

int main() {
  using namespace bnsgcn;
  bench::print_banner("Figures 7 & 9", "test-score convergence per p");
  const double s = bench::bench_scale();
  {
    const Dataset ds = make_synthetic(products_like(0.25 * s));
    auto cfg = bench::products_config();
    cfg.epochs = 100;
    run_dataset("ogbn-products-like", ds, cfg, 5);
  }
  {
    const Dataset ds = make_synthetic(reddit_like(0.4 * s));
    auto cfg = bench::reddit_config();
    cfg.epochs = 100;
    run_dataset("Reddit-like", ds, cfg, 4);
  }
  {
    const Dataset ds = make_synthetic(yelp_like(0.4 * s));
    auto cfg = bench::yelp_config();
    cfg.epochs = 100;
    run_dataset("Yelp-like (micro-F1)", ds, cfg, 6);
  }
  std::printf("\npaper shape check: 0<p<1 >= p=1 at convergence; p=0 worst "
              "throughout.\n");
  return 0;
}
