#pragma once

#include <string>
#include <vector>

#include "api/partition_cache.hpp"
#include "core/memory_model.hpp"
#include "core/trainer.hpp"

namespace bnsgcn::api {

/// The one result type of `bnsgcn::api::run`: subsumes the engine-level
/// core::TrainResult and the former baselines BaselineResult, so every
/// method — BNS-GCN, the partition-parallel proxies and the minibatch
/// samplers — reports through the same fields and the derived quantities
/// (throughput, sampler overhead, ...) are defined exactly once.
///
/// Semantics per method family:
///  - Partition-parallel methods fill the full EpochBreakdown (measured
///    compute + simulated comm/reduce/swap from exact byte counts) and the
///    Eq. 4 memory report.
///  - Minibatch baselines run single-process: their breakdown carries the
///    measured wall time split into compute_s and sample_s, with the comm
///    fields zero and `memory` empty.
struct RunReport {
  std::string method;   // registry name, e.g. "bns", "graph-saint"
  std::string dataset;  // dataset name ("" when unknown)

  std::vector<double> train_loss;          // one per epoch (global mean)
  std::vector<core::EvalPoint> curve;      // eval_every snapshots
  double final_val = 0.0;
  double final_test = 0.0;
  std::vector<core::EpochBreakdown> epochs;
  core::MemoryReport memory;               // empty for minibatch methods
  double wall_time_s = 0.0;                // measured end-to-end wall time
  /// What this run's partition lookup cost (delta of the global cache's
  /// counters around it): misses=1 means the partitioner actually ran,
  /// hits=1 or disk_hits=1 means it was served. All-zero for methods
  /// without a partition and for the explicit-Partitioning run overload.
  PartitionCacheStats partition_cache;

  /// Trained epoch count. Falls back to the breakdown count for custom
  /// methods that don't track losses.
  [[nodiscard]] int num_epochs() const {
    return static_cast<int>(train_loss.empty() ? epochs.size()
                                               : train_loss.size());
  }
  [[nodiscard]] core::EpochBreakdown mean_epoch() const {
    return core::mean_breakdown(epochs);
  }
  /// Mean per-epoch time under each method's own clock (simulated total
  /// for partition-parallel methods, measured wall for minibatch ones) —
  /// the Table 11 quantity.
  [[nodiscard]] double epoch_time_s() const { return mean_epoch().total_s(); }
  /// Measured wall time per epoch (rank threads genuinely run in parallel).
  [[nodiscard]] double wall_epoch_s() const {
    return num_epochs() > 0 ? wall_time_s / num_epochs() : 0.0;
  }
  /// Total time spent in the sampler — the Table 12 numerator.
  [[nodiscard]] double sample_time_s() const;
  /// Table 12 quantity: sampler time / total epoch time.
  [[nodiscard]] double sampler_overhead() const {
    return core::sampler_overhead(epochs);
  }
  /// Fig. 4 quantity: epochs per (simulated) second.
  [[nodiscard]] double throughput_eps() const {
    return core::throughput_eps(epochs);
  }
  /// Mean per-epoch exchange time hidden by communication–computation
  /// overlap (0 when RunConfig::comm.overlap is OverlapMode::kBlocking;
  /// the stream schedule widens it over bulk).
  [[nodiscard]] double overlap_saved_s() const {
    return mean_epoch().overlap_s;
  }
  /// Fraction of the mean epoch's exchange time the pipeline hid.
  [[nodiscard]] double overlap_fraction() const {
    const auto mean = mean_epoch();
    return mean.comm_s > 0.0 ? mean.overlap_s / mean.comm_s : 0.0;
  }
  /// Total training time under the method's own clock (Table 5): simulated
  /// epoch totals for partition-parallel methods, wall for minibatch.
  [[nodiscard]] double total_train_s() const;

  /// Halo-cache totals over all epochs (docs/ARCHITECTURE.md §9): boundary
  /// rows served from the receiver-side cache / shipped over the wire,
  /// summed across ranks. All zero when RunConfig::comm.cache_mb == 0.
  [[nodiscard]] std::int64_t cache_hit_rows() const {
    std::int64_t n = 0;
    for (const auto& e : epochs) n += e.cache_hit_rows;
    return n;
  }
  [[nodiscard]] std::int64_t cache_miss_rows() const {
    std::int64_t n = 0;
    for (const auto& e : epochs) n += e.cache_miss_rows;
    return n;
  }
  /// Gross feature bytes the cache kept off the wire (the index-list
  /// overhead of delta frames is already inside feature_bytes).
  [[nodiscard]] std::int64_t cache_bytes_saved() const {
    std::int64_t n = 0;
    for (const auto& e : epochs) n += e.bytes_saved;
    return n;
  }
  /// hits / (hits + misses) over the whole run; 0 with the cache off.
  [[nodiscard]] double cache_hit_rate() const {
    const std::int64_t total = cache_hit_rows() + cache_miss_rows();
    return total > 0 ? static_cast<double>(cache_hit_rows()) /
                           static_cast<double>(total)
                     : 0.0;
  }

  /// Wrap an engine-level result (field-for-field move; losses stay
  /// bit-identical, which the parity test in tests/test_api.cpp pins).
  [[nodiscard]] static RunReport from_train_result(core::TrainResult&& tr,
                                                   std::string method,
                                                   std::string dataset);
};

} // namespace bnsgcn::api
