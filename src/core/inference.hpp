#pragma once

#include <vector>

#include "comm/fabric.hpp"
#include "core/local_graph.hpp"
#include "core/trainer.hpp"
#include "graph/dataset.hpp"

namespace bnsgcn::core {

/// One serve run's request generator + loop parameters (api::ServeConfig is
/// the config-file spelling). Queries are global node ids drawn from a
/// single persistent stream seeded with `seed`: batch b serves queries
/// [b*batch_size, (b+1)*batch_size) of that flat stream, so two runs with
/// the same seed and the same total query count serve the identical queries
/// in the identical order regardless of how they are batched — the anchor
/// of the cross-batch-size determinism tests.
struct ServeOptions {
  int batch_size = 32;
  int num_batches = 8;
  std::uint64_t seed = 1;
  /// Keep the per-query logits rows in the result (the determinism tests'
  /// bitwise oracle). Off by default: predictions are always kept and are
  /// what a real client consumes.
  bool record_logits = false;
  /// Test-only: the named rank throws before batch 0's first exchange,
  /// exercising the serve-path shutdown (peers surface comm::ShutdownError
  /// instead of hanging mid-request-stream). -1 disables. Not serialized.
  int fail_rank = -1;
};

/// Per-request-batch accounting. latency_s is measured wall time on rank 0
/// from the batch's entry barrier to the assembled predictions; comm_s is
/// the exchange wire time under the cost model (max over ranks), and the
/// byte/cache counters sum over ranks — same conventions as
/// EpochBreakdown, so serve and train artifacts compare directly.
struct ServeBatchStats {
  double latency_s = 0.0;
  double comm_s = 0.0;
  std::int64_t feature_bytes = 0;
  std::int64_t control_bytes = 0;
  std::int64_t cache_hit_rows = 0;
  std::int64_t cache_miss_rows = 0;
  std::int64_t bytes_saved = 0;
};

/// Rank 0's view of a completed serve run (other ranks participated in the
/// collectives but hold empty curves, exactly like TrainResult).
struct ServeResult {
  std::vector<NodeId> queries;     // global ids, flat across batches
  std::vector<int> predictions;    // argmax class per query
  std::vector<float> logits;       // queries × num_classes, row-major;
                                   // empty unless ServeOptions::record_logits
  std::vector<ServeBatchStats> batches;
  int num_classes = 0;
  double wall_time_s = 0.0;
  comm::TimingSource timing = comm::TimingSource::kSimulated;
};

/// Forward-only serving over the partitioned graph (docs/ARCHITECTURE.md
/// §10): load a WeightSnapshot captured by training, put every layer in
/// inference mode (backward buffers freed), and answer query batches with
/// the exact split-phase forward the trainer runs — same HaloExchanger,
/// same FoldDriver, same fold order — so served logits are bit-identical
/// to a training-path forward of the same weights, across transports,
/// overlap modes and batch sizes.
///
/// Reuses TrainerConfig for the model/comm knobs (num_layers, hidden,
/// model, overlap, inner_chunk_rows, threads, cache_mb, cache_staleness,
/// cost); training-only fields (lr, epochs, dropout, sampling) are ignored
/// — serving always exchanges the full boundary set.
class InferenceEngine {
 public:
  /// `weights` must hold the stack's parameters flattened in params()
  /// order (what TrainerConfig::capture_weights produces); shapes are
  /// checked on load. ds/part/weights are borrowed for the engine's
  /// lifetime.
  InferenceEngine(const Dataset& ds, const Partitioning& part,
                  TrainerConfig cfg, const WeightSnapshot& weights);

  /// In-process serve: mailbox fabric, one thread per partition, same
  /// deadlock-free failure handling as BnsTrainer::train().
  [[nodiscard]] ServeResult serve(const ServeOptions& opts);

  /// One rank of the serve loop against an externally constructed fabric —
  /// the multi-process runtime's entry point (api::serve over sockets).
  [[nodiscard]] ServeResult serve_rank(comm::Fabric& fabric, PartId rank,
                                       const ServeOptions& opts);

  [[nodiscard]] const std::vector<LocalGraph>& local_graphs() const {
    return local_graphs_;
  }

 private:
  const Dataset& ds_;
  TrainerConfig cfg_;
  Partitioning part_;
  const WeightSnapshot& weights_;
  std::vector<LocalGraph> local_graphs_;
};

} // namespace bnsgcn::core
