// Hot-boundary feature cache (docs/ARCHITECTURE.md §9): per-peer caching
// of boundary rows, swept over partition counts {2, 4, 8, 16} × cache
// budgets, on a synthetic graph whose input width (feat_dim 128) dwarfs
// the hidden width (16) — the regime the cache exists for, since layer-0
// input features are epoch-invariant and dominate the exchange volume.
//
// Cache sizing is data-driven: the per-peer boundary-row histogram (the
// same quantity bench_fig3_ratio_hist prints) picks the top-quartile and
// max channel working sets, and the swept budgets are the MiB ceilings of
// those row counts at the input width.
//
// Enforced gates (nonzero exit on violation, all '!!'-marked):
//  - staleness 0 is bit-identical to the uncached run — losses compared
//    through the bit pattern — for {sage, gat} × {blocking, bulk, stream,
//    chunked-stream} at 4 partitions on the mailbox, and for a cached
//    UDS run against its mailbox twin at 2 partitions;
//  - at 8 partitions with the top-quartile budget, every warm epoch ships
//    <= 50% of the uncached run's feature bytes;
//  - cache_hit_rows and bytes_saved are nonzero wherever the cache is on.
// Every row lands in the JSON artifact with its config (bench_replay
// replays the cache counters bit-exactly on any transport).

#include "common.hpp"
#include "core/local_graph.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

namespace {

using namespace bnsgcn;

int g_failures = 0;

bool bits_equal(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(a[i]) !=
        std::bit_cast<std::uint64_t>(b[i]))
      return false;
  }
  return true;
}

SyntheticSpec cache_spec(double scale) {
  SyntheticSpec spec;
  spec.name = "cache-bench";
  spec.n = static_cast<NodeId>(4000 * scale);
  spec.m = static_cast<EdgeId>(40000 * scale);
  spec.communities = 8;
  spec.num_classes = 8;
  spec.feat_dim = 128; // wide input vs hidden 16: layer 0 dominates
  spec.p_intra = 0.88;
  spec.feature_noise = 1.0;
  spec.seed = 20260807;
  return spec;
}

api::RunConfig base_config(const SyntheticSpec& spec) {
  api::RunConfig cfg;
  cfg.method = api::Method::kBns;
  cfg.dataset.custom = spec; // replay-self-contained rows
  cfg.trainer.num_layers = 2;
  cfg.trainer.hidden = 16;
  cfg.trainer.epochs = 4; // 1 cold + 3 warm
  cfg.trainer.eval_every = 0;
  cfg.trainer.seed = 17;
  cfg.trainer.sample_rate = 1.0f;
  return cfg;
}

/// Top-quartile and max per-peer boundary-row counts at `nparts`,
/// converted to per-(peer, layer) MiB budgets at the input width.
struct Sizing {
  std::int64_t p75_rows = 0;
  std::int64_t max_rows = 0;
  std::int64_t p75_mb = 1;
  std::int64_t max_mb = 1;
};

Sizing size_from_histogram(const Dataset& ds, const Partitioning& part) {
  const auto lgs = core::build_local_graphs(ds.graph, part);
  std::vector<std::int64_t> rows;
  for (const auto& lg : lgs)
    for (const auto& halo : lg.recv_halo)
      if (!halo.empty())
        rows.push_back(static_cast<std::int64_t>(halo.size()));
  std::sort(rows.begin(), rows.end());
  Sizing s;
  if (rows.empty()) return s;
  s.p75_rows = rows[static_cast<std::size_t>(
      0.75 * static_cast<double>(rows.size() - 1))];
  s.max_rows = rows.back();
  const std::int64_t d = ds.feat_dim();
  const auto mb = [d](std::int64_t r) {
    return std::max<std::int64_t>(
        1, (r * d * static_cast<std::int64_t>(sizeof(float)) + (1 << 20) - 1) >>
               20);
  };
  s.p75_mb = mb(s.p75_rows);
  s.max_mb = mb(s.max_rows);
  return s;
}

void require(bool ok, const char* what) {
  if (!ok) {
    std::printf("  !! %s\n", what);
    ++g_failures;
  }
}

} // namespace

int main(int argc, char** argv) {
  using namespace bnsgcn;
  const auto opts = api::parse_bench_args(argc, argv);
  bench::print_banner("Cache",
                      "hot-boundary feature cache: hit rate, bytes saved, "
                      "tail deltas across partition counts x budgets");

  const SyntheticSpec spec = cache_spec(opts.scale);
  const Dataset ds = make_synthetic(spec);
  std::printf("graph: n=%d avg_deg=%.1f feat_dim=%lld hidden=16\n",
              ds.num_nodes(), ds.graph.average_degree(),
              static_cast<long long>(ds.feat_dim()));
  bench::ReportSink sink("Cache", opts);
  api::RunConfig base = base_config(spec);
  base.trainer.epochs = opts.epochs_or(4);
  base.comm.transport = opts.transport;

  const std::vector<PartId> parts =
      opts.parts.empty()
          ? std::vector<PartId>{2, 4, 8, 16}
          : std::vector<PartId>(opts.parts.begin(), opts.parts.end());

  std::printf("\n%-26s %9s %9s %8s %10s %10s %10s\n", "config", "hit rate",
              "saved MB", "warm rx%", "cold s/ep", "warm s/ep", "tail delta");
  for (const PartId m : parts) {
    base.partition.nparts = m;
    api::PartitionSpec pspec = base.partition;
    const auto part = api::cached_partition(ds.graph, pspec);
    const Sizing sz = size_from_histogram(ds, *part);
    std::printf("m=%-3d peer rows p75=%lld max=%lld -> budgets {%lld, %lld} "
                "MiB/peer\n",
                m, static_cast<long long>(sz.p75_rows),
                static_cast<long long>(sz.max_rows),
                static_cast<long long>(sz.p75_mb),
                static_cast<long long>(sz.max_mb));

    auto plain_cfg = base;
    plain_cfg.comm.cache_mb = 0;
    const api::RunReport plain =
        sink.run_streamed(bench::label("m=%d uncached", m), ds, plain_cfg);

    std::vector<std::int64_t> budgets = {sz.p75_mb};
    if (sz.max_mb != sz.p75_mb) budgets.push_back(sz.max_mb);
    for (const std::int64_t mb : budgets) {
      auto cfg = base;
      cfg.comm.cache_mb = mb;
      const api::RunReport got = sink.run_streamed(
          bench::label("m=%d cache=%lldmb", m, static_cast<long long>(mb)),
          ds, cfg);

      // Gate: the exact (staleness-0) cache is invisible to the numerics.
      require(bits_equal(plain.train_loss, got.train_loss),
              "losses diverge from the uncached run at staleness 0");
      require(got.cache_hit_rows() > 0, "cache_hit_rows is zero");
      require(got.cache_bytes_saved() > 0, "bytes_saved is zero");

      // Warm-epoch feature traffic vs the uncached run (epoch 0 is the
      // cold fill and legitimately matches the uncached volume plus the
      // index-list overhead).
      double warm_ratio = 0.0;
      int warm_n = 0;
      bool warm_halved = true;
      for (std::size_t e = 1; e < got.epochs.size(); ++e) {
        const double r =
            static_cast<double>(got.epochs[e].feature_bytes) /
            static_cast<double>(std::max<std::int64_t>(
                1, plain.epochs[e].feature_bytes));
        warm_ratio += r;
        ++warm_n;
        if (got.epochs[e].feature_bytes * 2 > plain.epochs[e].feature_bytes)
          warm_halved = false;
      }
      warm_ratio = warm_n > 0 ? warm_ratio / warm_n : 1.0;
      // Acceptance gate: >= 50% reduction on every warm epoch at the
      // 8-partition top-quartile point (and everywhere else here — the
      // budgets come from the histogram, so coverage is near-total).
      if (m == 8 && mb == sz.p75_mb)
        require(warm_halved,
                "warm epochs shipped > 50% of uncached feature bytes at "
                "m=8 with the top-quartile budget");

      std::printf("%-26s %8.1f%% %9.2f %7.1f%% %10.4f %10.4f %+10.4f\n",
                  bench::label("m=%d cache=%lldmb", m,
                               static_cast<long long>(mb))
                      .c_str(),
                  100.0 * got.cache_hit_rate(),
                  bench::mb(got.cache_bytes_saved()), 100.0 * warm_ratio,
                  plain.epoch_time_s(), got.epoch_time_s(),
                  got.mean_epoch().comm_tail_s -
                      plain.mean_epoch().comm_tail_s);
    }
  }

  // Mode × model bit-identity matrix at 4 partitions: the cache must be
  // invisible on every schedule, not just the blocking one.
  std::printf("\nbit-identity matrix (m=4, staleness 0):\n");
  {
    base.partition.nparts = 4;
    const struct {
      core::OverlapMode mode;
      NodeId chunk;
      const char* name;
    } kModes[] = {{core::OverlapMode::kBlocking, 0, "blocking"},
                  {core::OverlapMode::kBulk, 0, "bulk"},
                  {core::OverlapMode::kStream, 0, "stream"},
                  {core::OverlapMode::kStream, 96, "chunked"}};
    for (const core::ModelKind model :
         {core::ModelKind::kSage, core::ModelKind::kGat}) {
      const char* mname = model == core::ModelKind::kGat ? "gat" : "sage";
      for (const auto& md : kModes) {
        auto cfg = base;
        cfg.trainer.model = model;
        cfg.trainer.gat_heads = model == core::ModelKind::kGat ? 2 : 1;
        cfg.comm.overlap = md.mode;
        cfg.comm.inner_chunk_rows = md.chunk;
        cfg.comm.cache_mb = 0;
        const api::RunReport off = sink.run_streamed(
            bench::label("id m=4 %s %s uncached", mname, md.name), ds, cfg);
        cfg.comm.cache_mb = 4;
        const api::RunReport on = sink.run_streamed(
            bench::label("id m=4 %s %s cached", mname, md.name), ds, cfg);
        const bool ok = bits_equal(off.train_loss, on.train_loss) &&
                        std::bit_cast<std::uint64_t>(off.final_val) ==
                            std::bit_cast<std::uint64_t>(on.final_val);
        std::printf("  %-5s %-9s %s\n", mname, md.name,
                    ok ? "bit-identical" : "DIVERGED");
        require(ok, "cached run diverged in the mode/model matrix");
        require(on.cache_hit_rows() > 0,
                "cache idle in the mode/model matrix");
      }
    }
  }

  // Transport twin: a cached UDS run must match its mailbox twin bit for
  // bit — losses AND cache counters (the directories never consult the
  // transport).
  std::printf("\ntransport twin (m=2, cached, uds vs mailbox):\n");
  {
    base.partition.nparts = 2;
    auto cfg = base;
    cfg.comm.cache_mb = 4;
    cfg.comm.transport = comm::TransportKind::kMailbox;
    const api::RunReport mbox =
        sink.run_streamed("twin m=2 cached mailbox", ds, cfg);
    cfg.comm.transport = comm::TransportKind::kUds;
    const api::RunReport sock =
        sink.run_streamed("twin m=2 cached uds", ds, cfg);
    const bool ok = bits_equal(mbox.train_loss, sock.train_loss) &&
                    mbox.cache_hit_rows() == sock.cache_hit_rows() &&
                    mbox.cache_bytes_saved() == sock.cache_bytes_saved();
    std::printf("  %s (hits %lld, saved %.2f MB)\n",
                ok ? "bit-identical" : "DIVERGED",
                static_cast<long long>(sock.cache_hit_rows()),
                bench::mb(sock.cache_bytes_saved()));
    require(ok, "cached uds run diverged from its mailbox twin");
  }

  if (g_failures > 0) {
    std::printf("\nshape check FAILED: %d violation(s)\n", g_failures);
    return 1;
  }
  std::printf("\nshape check: staleness-0 cache bit-identical to uncached on "
              "every mode/model/transport row; warm epochs <= 50%% of "
              "uncached feature bytes at m=8 with the top-quartile budget; "
              "hit/saved counters nonzero wherever the cache is on.\n");
  return 0;
}
