#include "common/barrier.hpp"

#include "common/check.hpp"

namespace bnsgcn {

Barrier::Barrier(std::size_t parties) : parties_(parties) {
  BNSGCN_CHECK(parties > 0);
}

bool Barrier::arrive_and_wait() {
  std::unique_lock<std::mutex> lock(mu_);
  if (poisoned_) throw BarrierPoisoned();
  const std::size_t gen = generation_;
  if (++waiting_ == parties_) {
    waiting_ = 0;
    ++generation_;
    cv_.notify_all();
    return true;
  }
  cv_.wait(lock, [&] { return generation_ != gen || poisoned_; });
  if (generation_ == gen) throw BarrierPoisoned();
  return false;
}

void Barrier::poison() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    poisoned_ = true;
  }
  cv_.notify_all();
}

} // namespace bnsgcn
