#include <gtest/gtest.h>

#include "api/run.hpp"
#include "api/serialize.hpp"
#include "common/check.hpp"
#include "common/json.hpp"

namespace bnsgcn {
namespace {

api::RunReport sample_report() {
  api::RunReport r;
  r.method = "bns";
  r.dataset = "reddit-like \"scaled\"";  // exercises string escaping
  r.train_loss = {1.51234567890123, 0.75, 0.3333333333333333};
  r.curve.push_back({.epoch = 2, .val = 0.81, .test = 0.79,
                     .train_loss = 0.75});
  r.curve.push_back({.epoch = 3, .val = 0.9, .test = 0.88,
                     .train_loss = 0.3333333333333333});
  r.final_val = 0.9;
  r.final_test = 0.88;
  core::EpochBreakdown e;
  e.compute_s = 0.125;
  e.comm_s = 0.0625;
  e.reduce_s = 1e-9;
  e.sample_s = 0.001953125;
  e.swap_s = 0.0;
  e.feature_bytes = 123456789012345;  // > 2^32, < 2^53
  e.grad_bytes = 4096;
  e.control_bytes = 17;
  r.epochs = {e, e, e};
  r.memory.model_bytes = {1.5e6, 2.25e6};
  r.memory.full_bytes = {2000000, 3000000};
  r.wall_time_s = 0.4375;
  return r;
}

void expect_reports_equal(const api::RunReport& a, const api::RunReport& b) {
  EXPECT_EQ(a.method, b.method);
  EXPECT_EQ(a.dataset, b.dataset);
  EXPECT_EQ(a.train_loss, b.train_loss);
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_EQ(a.curve[i].epoch, b.curve[i].epoch);
    EXPECT_EQ(a.curve[i].val, b.curve[i].val);
    EXPECT_EQ(a.curve[i].test, b.curve[i].test);
    EXPECT_EQ(a.curve[i].train_loss, b.curve[i].train_loss);
  }
  EXPECT_EQ(a.final_val, b.final_val);
  EXPECT_EQ(a.final_test, b.final_test);
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (std::size_t i = 0; i < a.epochs.size(); ++i) {
    EXPECT_EQ(a.epochs[i].compute_s, b.epochs[i].compute_s);
    EXPECT_EQ(a.epochs[i].comm_s, b.epochs[i].comm_s);
    EXPECT_EQ(a.epochs[i].reduce_s, b.epochs[i].reduce_s);
    EXPECT_EQ(a.epochs[i].sample_s, b.epochs[i].sample_s);
    EXPECT_EQ(a.epochs[i].swap_s, b.epochs[i].swap_s);
    EXPECT_EQ(a.epochs[i].feature_bytes, b.epochs[i].feature_bytes);
    EXPECT_EQ(a.epochs[i].grad_bytes, b.epochs[i].grad_bytes);
    EXPECT_EQ(a.epochs[i].control_bytes, b.epochs[i].control_bytes);
  }
  EXPECT_EQ(a.memory.model_bytes, b.memory.model_bytes);
  EXPECT_EQ(a.memory.full_bytes, b.memory.full_bytes);
  EXPECT_EQ(a.wall_time_s, b.wall_time_s);
}

TEST(ReportJson, RoundTripIsExact) {
  const api::RunReport original = sample_report();
  const std::string text = api::to_json_string(original);
  const api::RunReport parsed = api::run_report_from_json_string(text);
  expect_reports_equal(original, parsed);
  // Derived quantities recompute identically from the parsed fields.
  EXPECT_EQ(original.throughput_eps(), parsed.throughput_eps());
  EXPECT_EQ(original.sampler_overhead(), parsed.sampler_overhead());
}

TEST(ReportJson, RoundTripOfRealRun) {
  api::RunConfig cfg;
  SyntheticSpec spec;
  spec.n = 500;
  spec.m = 4000;
  spec.communities = 4;
  spec.num_classes = 4;
  spec.feat_dim = 8;
  spec.seed = 21;
  cfg.dataset.custom = spec;
  cfg.partition.nparts = 2;
  cfg.trainer.num_layers = 2;
  cfg.trainer.hidden = 16;
  cfg.trainer.epochs = 4;
  cfg.trainer.sample_rate = 0.5f;
  cfg.trainer.eval_every = 2;
  const api::RunReport r = api::run(cfg);
  const api::RunReport parsed =
      api::run_report_from_json_string(api::to_json_string(r));
  expect_reports_equal(r, parsed);
}

TEST(ReportJson, CompactAndPrettyParseTheSame) {
  const api::RunReport original = sample_report();
  const auto compact =
      api::run_report_from_json_string(api::to_json_string(original, -1));
  const auto pretty =
      api::run_report_from_json_string(api::to_json_string(original, 4));
  expect_reports_equal(compact, pretty);
}

TEST(ReportJson, DerivedBlockPresent) {
  const json::Value v = api::to_json(sample_report());
  const json::Value* derived = v.get("derived");
  ASSERT_NE(derived, nullptr);
  EXPECT_GT(derived->at("throughput_eps").as_double(), 0.0);
  EXPECT_GT(derived->at("total_train_s").as_double(), 0.0);
}

TEST(Json, ParserRejectsGarbage) {
  EXPECT_THROW(json::Value::parse("{\"a\": }"), CheckError);
  EXPECT_THROW(json::Value::parse("[1, 2"), CheckError);
  EXPECT_THROW(json::Value::parse("{} trailing"), CheckError);
  EXPECT_THROW(json::Value::parse("nul"), CheckError);
}

TEST(Json, EscapesRoundTrip) {
  json::Value v = json::Value::object();
  v.set("k", "line\nbreak\ttab \"quote\" back\\slash \x01 control");
  const json::Value parsed = json::Value::parse(v.dump());
  EXPECT_EQ(parsed.at("k").as_string(), v.at("k").as_string());
}

} // namespace
} // namespace bnsgcn
