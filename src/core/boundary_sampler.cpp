#include "core/boundary_sampler.hpp"

#include <algorithm>

namespace bnsgcn::core {

namespace {

/// Range-check the rate *before* the delegating constructor hands it to
/// make_planner: an out-of-range rate must never reach a planner (whose
/// 1/rate scaling and Bernoulli draws assume [0, 1]).
const BoundarySampler::Options& validated(const BoundarySampler::Options& o) {
  BNSGCN_CHECK(o.rate >= 0.0f && o.rate <= 1.0f);
  return o;
}

} // namespace

BoundarySampler::BoundarySampler(const LocalGraph& lg, const Options& opts)
    : BoundarySampler(
          lg,
          make_planner(validated(opts).variant,
                       {.rate = opts.rate,
                        .unbiased_scaling = opts.unbiased_scaling}),
          opts) {}

BoundarySampler::BoundarySampler(const LocalGraph& lg,
                                 std::unique_ptr<EpochPlanner> planner,
                                 const Options& opts)
    : lg_(lg), opts_(opts), planner_(std::move(planner)), rng_(opts.seed) {
  BNSGCN_CHECK(planner_ != nullptr);
}

EpochPlan BoundarySampler::plan_from_draw(const EpochDraw& draw) {
  const NodeId n_in = lg_.n_inner();
  const NodeId n_halo = lg_.n_halo();
  const std::vector<char>& halo_kept = draw.halo_kept;
  const std::vector<char>* edge_kept =
      draw.edge_kept ? &*draw.edge_kept : nullptr;
  BNSGCN_CHECK(halo_kept.size() == static_cast<std::size_t>(n_halo));
  BNSGCN_CHECK(edge_kept == nullptr ||
               edge_kept->size() == lg_.adj.nbrs.size());

  EpochPlan plan;
  plan.halo_scale = draw.halo_scale;
  // Compact halo ids: kept halo nodes keep their relative order.
  std::vector<NodeId> compact(static_cast<std::size_t>(n_halo), -1);
  NodeId next = 0;
  for (NodeId h = 0; h < n_halo; ++h) {
    if (halo_kept[static_cast<std::size_t>(h)]) {
      compact[static_cast<std::size_t>(h)] = next++;
      plan.kept_halo_idx.push_back(h);
    }
  }
  plan.n_kept_halo = next;

  // Compacted adjacency. Edge scaling (1/q) applies only to strategies
  // that drop arcs; BNS scales whole received feature rows instead.
  nn::BipartiteCsr& adj = plan.adj;
  adj.n_dst = n_in;
  adj.n_src = n_in + plan.n_kept_halo;
  adj.offsets.assign(static_cast<std::size_t>(n_in) + 1, 0);
  adj.nbrs.reserve(lg_.adj.nbrs.size());
  const bool want_scale_vec = edge_kept != nullptr;
  if (want_scale_vec) adj.edge_scale.reserve(lg_.adj.nbrs.size());

  for (NodeId v = 0; v < n_in; ++v) {
    const auto begin = static_cast<std::size_t>(
        lg_.adj.offsets[static_cast<std::size_t>(v)]);
    const auto end = static_cast<std::size_t>(
        lg_.adj.offsets[static_cast<std::size_t>(v) + 1]);
    for (std::size_t e = begin; e < end; ++e) {
      const NodeId u = lg_.adj.nbrs[e];
      if (edge_kept != nullptr && !(*edge_kept)[e]) continue; // dropped edge
      if (u < n_in) {
        adj.nbrs.push_back(u);
        if (want_scale_vec) adj.edge_scale.push_back(draw.inner_edge_scale);
      } else {
        const NodeId slot = compact[static_cast<std::size_t>(u - n_in)];
        if (slot < 0) continue; // dropped halo node
        adj.nbrs.push_back(n_in + slot);
        if (want_scale_vec) adj.edge_scale.push_back(draw.halo_edge_scale);
      }
    }
    adj.offsets[static_cast<std::size_t>(v) + 1] =
        static_cast<EdgeId>(adj.nbrs.size());
  }
  plan.dropped_edges =
      static_cast<EdgeId>(lg_.adj.nbrs.size() - adj.nbrs.size());

  // Per-peer send/recv lists are filled by sample_epoch (they need the
  // negotiated kept positions); full_plan fills them structurally.
  plan.send_rows.resize(static_cast<std::size_t>(lg_.nparts));
  plan.recv_slots.resize(static_cast<std::size_t>(lg_.nparts));
  plan.send_pos.resize(static_cast<std::size_t>(lg_.nparts));
  plan.recv_pos.resize(static_cast<std::size_t>(lg_.nparts));
  for (PartId j = 0; j < lg_.nparts; ++j) {
    const auto& structural = lg_.recv_halo[static_cast<std::size_t>(j)];
    for (std::size_t t = 0; t < structural.size(); ++t) {
      const NodeId slot = compact[static_cast<std::size_t>(structural[t])];
      if (slot >= 0) {
        plan.recv_slots[static_cast<std::size_t>(j)].push_back(slot);
        plan.recv_pos[static_cast<std::size_t>(j)].push_back(
            static_cast<NodeId>(t));
      }
    }
  }
  return plan;
}

EpochPlan BoundarySampler::sample_epoch(comm::Endpoint& ep, int tag) {
  const EpochDraw draw = planner_->draw(lg_, rng_);
  EpochPlan plan = plan_from_draw(draw);

  // Algorithm 1 lines 6-7: tell each owner which of its rows we kept.
  // Both sides order the structural halo list identically (sorted by global
  // id), so positions index straight into the owner's send set.
  for (PartId j = 0; j < lg_.nparts; ++j) {
    const auto& structural = lg_.recv_halo[static_cast<std::size_t>(j)];
    if (structural.empty()) continue;
    std::vector<NodeId> kept_positions;
    kept_positions.reserve(structural.size());
    for (std::size_t t = 0; t < structural.size(); ++t) {
      if (draw.halo_kept[static_cast<std::size_t>(structural[t])])
        kept_positions.push_back(static_cast<NodeId>(t));
    }
    ep.send_ids(j, tag, std::move(kept_positions),
                comm::TrafficClass::kControl);
  }
  for (PartId j = 0; j < lg_.nparts; ++j) {
    const auto& our_rows = lg_.send_sets[static_cast<std::size_t>(j)];
    if (our_rows.empty()) continue;
    auto positions = ep.recv_ids(j, tag, comm::TrafficClass::kControl);
    auto& rows = plan.send_rows[static_cast<std::size_t>(j)];
    rows.reserve(positions.size());
    for (const NodeId t : positions) {
      BNSGCN_CHECK(t >= 0 &&
                   t < static_cast<NodeId>(our_rows.size()));
      rows.push_back(our_rows[static_cast<std::size_t>(t)]);
    }
    // The negotiated positions double as the sender-side cache key
    // (EpochPlan::send_pos) — identical to the receiver's recv_pos for
    // this pair, which is what keeps the two directories in lockstep.
    plan.send_pos[static_cast<std::size_t>(j)] = std::move(positions);
  }
  return plan;
}

EpochPlan BoundarySampler::empty_plan() {
  EpochDraw none;
  none.halo_kept.assign(static_cast<std::size_t>(lg_.n_halo()), 0);
  return plan_from_draw(none);
}

EpochPlan BoundarySampler::full_plan() const {
  EpochPlan plan;
  plan.adj = lg_.adj;
  plan.n_kept_halo = lg_.n_halo();
  plan.kept_halo_idx.resize(static_cast<std::size_t>(lg_.n_halo()));
  for (NodeId h = 0; h < lg_.n_halo(); ++h)
    plan.kept_halo_idx[static_cast<std::size_t>(h)] = h;
  plan.halo_scale = 1.0f;
  plan.send_rows = lg_.send_sets;
  plan.recv_slots = lg_.recv_halo; // slot == halo index when nothing dropped
  // Nothing dropped → every structural position is kept, in order.
  plan.send_pos.resize(static_cast<std::size_t>(lg_.nparts));
  plan.recv_pos.resize(static_cast<std::size_t>(lg_.nparts));
  for (PartId j = 0; j < lg_.nparts; ++j) {
    auto& sp = plan.send_pos[static_cast<std::size_t>(j)];
    sp.resize(lg_.send_sets[static_cast<std::size_t>(j)].size());
    for (std::size_t t = 0; t < sp.size(); ++t)
      sp[t] = static_cast<NodeId>(t);
    auto& rp = plan.recv_pos[static_cast<std::size_t>(j)];
    rp.resize(lg_.recv_halo[static_cast<std::size_t>(j)].size());
    for (std::size_t t = 0; t < rp.size(); ++t)
      rp[t] = static_cast<NodeId>(t);
  }
  plan.dropped_edges = 0;
  return plan;
}

} // namespace bnsgcn::core
