// Artifact replay checker: proof that bench artifacts are reproducible.
// Every bench row records the RunConfig that produced it (ReportSink::add
// with a config; schema in docs/BENCHMARKS.md), and every run is a pure
// function of its config — seeded RNG, deterministic partitioner, simulated
// interconnect — so re-running the config must reproduce the recorded
// deterministic metrics exactly. Measured wall/compute times are the only
// fields allowed to differ.
//
// Usage: bench_replay <artifact.json> [--rows <n>]
//   <artifact.json>  a --json artifact from any bench
//   --rows <n>       replay only the first n config-carrying rows
//                    (default: all)
//
// Exit code 0 when every replayed row matches; 1 on any mismatch (this is
// the ci/verify.sh replay gate); 2 on bad usage / unreadable artifact.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "api/run.hpp"
#include "api/serialize.hpp"
#include "common/json.hpp"

namespace {

using namespace bnsgcn;

/// Deterministic-field comparison between a recorded report and its
/// replay. Returns true on match; prints the first divergence otherwise.
bool matches(const api::RunReport& want, const api::RunReport& got) {
  const auto fail = [](const char* what) {
    std::printf("    mismatch: %s\n", what);
    return false;
  };
  if (got.method != want.method) return fail("method");
  if (got.dataset != want.dataset) return fail("dataset");
  if (got.train_loss != want.train_loss) return fail("train_loss sequence");
  if (got.final_val != want.final_val) return fail("final_val");
  if (got.final_test != want.final_test) return fail("final_test");
  if (got.curve.size() != want.curve.size()) return fail("curve length");
  for (std::size_t i = 0; i < want.curve.size(); ++i) {
    if (got.curve[i].epoch != want.curve[i].epoch ||
        got.curve[i].val != want.curve[i].val ||
        got.curve[i].test != want.curve[i].test)
      return fail("curve point");
  }
  if (got.epochs.size() != want.epochs.size()) return fail("epoch count");
  for (std::size_t i = 0; i < want.epochs.size(); ++i) {
    // Byte counts and the simulated times derived from them are exact
    // functions of the sampled exchange sets; measured compute_s (and the
    // wall clock) are scheduling noise and deliberately not compared.
    if (got.epochs[i].feature_bytes != want.epochs[i].feature_bytes)
      return fail("feature_bytes");
    if (got.epochs[i].grad_bytes != want.epochs[i].grad_bytes)
      return fail("grad_bytes");
    if (got.epochs[i].control_bytes != want.epochs[i].control_bytes)
      return fail("control_bytes");
    // Halo-cache counters are deterministic on every transport (the
    // directories step at post time from position lists); old artifacts
    // parse them as 0 and replay with the cache off, so they still match.
    if (got.epochs[i].cache_hit_rows != want.epochs[i].cache_hit_rows)
      return fail("cache_hit_rows");
    if (got.epochs[i].cache_miss_rows != want.epochs[i].cache_miss_rows)
      return fail("cache_miss_rows");
    if (got.epochs[i].bytes_saved != want.epochs[i].bytes_saved)
      return fail("bytes_saved");
    // Measured recordings (socket fabrics: timing_source == "measured")
    // carry wall-clock comm spans — scheduling noise, like compute_s — so
    // only simulated (CostModel-derived) times are bit-compared.
    if (want.epochs[i].timing == comm::TimingSource::kMeasured) continue;
    if (got.epochs[i].comm_s != want.epochs[i].comm_s)
      return fail("comm_s");
    // comm_tail_s is deterministic too, but artifacts written before the
    // field existed parse it as 0 — only compare when the recording has it.
    if (want.epochs[i].comm_tail_s != 0.0 &&
        got.epochs[i].comm_tail_s != want.epochs[i].comm_tail_s)
      return fail("comm_tail_s");
    if (got.epochs[i].reduce_s != want.epochs[i].reduce_s)
      return fail("reduce_s");
  }
  if (got.memory.full_bytes != want.memory.full_bytes)
    return fail("memory.full_bytes");
  return true;
}

} // namespace

int main(int argc, char** argv) {
  using namespace bnsgcn;
  int max_rows = -1;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rows") == 0 && i + 1 < argc) {
      char* end = nullptr;
      const long n = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || n < 1) {
        std::fprintf(stderr, "error: --rows needs a positive integer, got "
                             "'%s'\n", argv[i]);
        return 2;
      }
      max_rows = static_cast<int>(n);
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "usage: %s <artifact.json> [--rows <n>]\n",
                   argv[0]);
      return 2;
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr, "usage: %s <artifact.json> [--rows <n>]\n", argv[0]);
    return 2;
  }

  std::ifstream is(path);
  if (!is.good()) {
    std::fprintf(stderr, "error: cannot read %s\n", path);
    return 2;
  }
  std::ostringstream buf;
  buf << is.rdbuf();

  json::Value doc;
  try {
    doc = json::Value::parse(buf.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s is not valid JSON (%s)\n", path,
                 e.what());
    return 2;
  }

  const json::Value* runs = doc.get("runs");
  if (runs == nullptr || !runs->is_array()) {
    std::fprintf(stderr, "error: %s has no \"runs\" array\n", path);
    return 2;
  }

  std::printf("replaying %s (%zu rows)\n", path, runs->size());
  int replayed = 0, failed = 0, skipped = 0;
  for (std::size_t i = 0; i < runs->size(); ++i) {
    const json::Value& row = (*runs)[i];
    const json::Value* cfg_json = row.get("config");
    if (cfg_json == nullptr) {
      ++skipped; // pre-migration artifact row; nothing to replay from
      continue;
    }
    if (max_rows >= 0 && replayed >= max_rows) break;
    const std::string label =
        row.get("label") != nullptr ? row.at("label").as_string() : "(row)";
    try {
      const api::RunConfig cfg = api::run_config_from_json(*cfg_json);
      const api::RunReport want = api::run_report_from_json(row.at("report"));
      std::printf("  [%zu] %s ... ", i, label.c_str());
      std::fflush(stdout);
      const api::RunReport got = api::run(cfg);
      ++replayed;
      if (matches(want, got)) {
        std::printf("ok\n");
      } else {
        ++failed;
      }
    } catch (const std::exception& e) {
      std::printf("  [%zu] %s ... error: %s\n", i, label.c_str(), e.what());
      ++replayed;
      ++failed;
    }
  }
  std::printf("replayed %d row(s): %d ok, %d failed, %d without config\n",
              replayed, replayed - failed, failed, skipped);
  if (replayed == 0) {
    std::fprintf(stderr,
                 "error: no replayable rows (artifact predates config "
                 "recording?)\n");
    return 1;
  }
  return failed == 0 ? 0 : 1;
}
