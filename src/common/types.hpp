#pragma once

#include <cstdint>

namespace bnsgcn {

/// Node identifier. Graphs in this repo are bounded by the int32 range,
/// matching the id width used by DGL/METIS for the paper's datasets.
using NodeId = std::int32_t;

/// Edge identifier / edge counts. Edge counts can exceed 2^31 for the
/// papers100M-class presets, so they are 64-bit.
using EdgeId = std::int64_t;

/// Partition (rank) identifier.
using PartId = std::int32_t;

} // namespace bnsgcn
