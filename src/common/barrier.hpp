#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>

namespace bnsgcn {

/// Reusable N-party barrier (generation-counted).
///
/// std::barrier exists in C++20 but its completion-function typing makes it
/// awkward to store in containers; this minimal variant is sufficient and
/// lets the fabric own one barrier per logical sync point.
class Barrier {
 public:
  explicit Barrier(std::size_t parties);

  /// Blocks until all parties arrive. Returns true for exactly one caller
  /// per generation (the "serial" thread), mirroring pthread_barrier.
  bool arrive_and_wait();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::size_t parties_;
  std::size_t waiting_ = 0;
  std::size_t generation_ = 0;
};

} // namespace bnsgcn
