// Figure 5: epoch-time breakdown (computation / boundary communication /
// gradient allreduce) of BNS-GCN across p and partition counts, under the
// PCIe interconnect model.
// Expected shape: communication dominates at p=1 (up to ~2/3 of the epoch)
// and collapses by ~an order of magnitude at p=0.01; reduce time constant.

#include "common.hpp"

namespace {

using namespace bnsgcn;

void run_dataset(const char* title, const Dataset& ds,
                 core::TrainerConfig cfg, const std::vector<PartId>& parts) {
  std::printf("\n--- %s ---\n", title);
  std::printf("%-8s %-8s %12s %12s %12s %12s %10s\n", "parts", "p",
              "compute(s)", "comm(s)", "reduce(s)", "epoch(s)", "comm%");
  cfg.epochs = 5;
  for (const PartId m : parts) {
    const auto part = metis_like(ds.graph, m);
    for (const float p : {1.0f, 0.1f, 0.01f}) {
      auto c = cfg;
      c.sample_rate = p;
      const auto r = core::BnsTrainer(ds, part, c).train();
      const auto e = r.mean_epoch();
      std::printf("%-8d %-8.2f %12.4f %12.4f %12.4f %12.4f %9.1f%%\n", m, p,
                  e.compute_s, e.comm_s, e.reduce_s, e.total_s(),
                  100.0 * e.comm_s / e.total_s());
    }
  }
}

} // namespace

int main() {
  using namespace bnsgcn;
  bench::print_banner("Figure 5", "epoch time breakdown vs p (simulated PCIe)");
  const double s = bench::bench_scale();
  {
    const Dataset ds = make_synthetic(reddit_like(0.5 * s));
    run_dataset("Reddit-like", ds, bench::reddit_config(), {2, 4, 8});
  }
  {
    const Dataset ds = make_synthetic(products_like(0.4 * s));
    run_dataset("ogbn-products-like", ds, bench::products_config(),
                {5, 8, 10});
  }
  std::printf("\npaper shape check: comm dominates at p=1; p=0.01 cuts comm "
              "74-93%%.\n");
  return 0;
}
