#include "lint/determinism_lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace bnsgcn::lint {

namespace {

// ---------------------------------------------------------------- rule table

const char* kUnordered = "unordered-container";
const char* kRawClock = "raw-clock";
const char* kRawRandom = "raw-random";
const char* kRawThread = "raw-thread";
const char* kFloatAccum = "float-accum";
const char* kPragmaOnce = "pragma-once";
const char* kUsingStd = "using-namespace-std";

/// Directories (relative to the scanned root) whose files feed
/// serialization, reductions, or comm ordering: anything whose iteration
/// order could leak into bytes on a wire, bytes on disk, or a float
/// accumulation. Hash-container *lookup* is fine; owning one at all is
/// flagged so the exception — and the argument why its order is never
/// observed — lives next to the container as an allow annotation.
const char* kOrderingSensitivePrefixes[] = {
    "comm/", "tensor/", "nn/", "core/", "partition/", "graph/", "api/",
};

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         std::equal(prefix.begin(), prefix.end(), s.begin());
}

bool ordering_sensitive(const std::string& rel) {
  for (const char* p : kOrderingSensitivePrefixes)
    if (starts_with(rel, p)) return true;
  return false;
}

bool is_header(const std::string& rel) {
  return rel.ends_with(".hpp") || rel.ends_with(".h");
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Find `token` in `line` as a whole token: the char before must not be an
/// identifier char (so `std::thread` does not match inside an identifier)
/// and the char after must not be one either — unless the token ends in a
/// char that legitimately continues (callers pass tokens ending in '(' or
/// '_' to bypass the suffix check).
bool has_token(const std::string& line, const std::string& token,
               bool check_suffix = true) {
  std::size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    const bool pre_ok = pos == 0 || !ident_char(line[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool post_ok =
        !check_suffix || end >= line.size() || !ident_char(line[end]);
    if (pre_ok && post_ok) return true;
    pos += 1;
  }
  return false;
}

// ------------------------------------------------- comment/string stripping

/// Replace comments, string literals and char literals with spaces,
/// preserving newlines (and therefore line numbers). Handles // and block
/// comments, escape sequences, and the simple R"( ... )" raw-string form.
std::string sanitize(const std::string& src) {
  std::string out = src;
  enum class St { kCode, kLine, kBlock, kStr, kChr, kRaw };
  St st = St::kCode;
  std::string raw_close; // for raw strings: )delim"
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char nx = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (st) {
      case St::kCode:
        if (c == '/' && nx == '/') {
          st = St::kLine;
          out[i] = ' ';
        } else if (c == '/' && nx == '*') {
          st = St::kBlock;
          out[i] = ' ';
        } else if (c == 'R' && nx == '"' &&
                   (i == 0 || !ident_char(src[i - 1]))) {
          // R"delim( ... )delim"
          std::size_t p = i + 2;
          std::string delim;
          while (p < src.size() && src[p] != '(') delim += src[p++];
          raw_close = ")" + delim + "\"";
          st = St::kRaw;
          out[i] = ' ';
        } else if (c == '"') {
          st = St::kStr;
          out[i] = ' ';
        } else if (c == '\'') {
          st = St::kChr;
          out[i] = ' ';
        }
        break;
      case St::kLine:
        if (c == '\n') {
          st = St::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case St::kBlock:
        if (c == '*' && nx == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kStr:
        if (c == '\\' && nx != '\0') {
          out[i] = ' ';
          if (nx != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          out[i] = ' ';
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kChr:
        if (c == '\\' && nx != '\0') {
          out[i] = ' ';
          if (nx != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          out[i] = ' ';
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kRaw:
        if (src.compare(i, raw_close.size(), raw_close) == 0) {
          for (std::size_t k = 0; k < raw_close.size(); ++k)
            out[i + k] = ' ';
          i += raw_close.size() - 1;
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> split_lines(const std::string& s) {
  std::vector<std::string> lines;
  std::string cur;
  for (const char c : s) {
    if (c == '\n') {
      lines.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  lines.push_back(std::move(cur));
  return lines;
}

// -------------------------------------------------------- allow annotations

/// Collect `// lint: allow(<rule>)` annotations from the RAW lines (they
/// live in comments, which the sanitizer strips). Returns (line, rule)
/// pairs, 1-based.
std::set<std::pair<int, std::string>> collect_allows(
    const std::vector<std::string>& raw_lines) {
  std::set<std::pair<int, std::string>> allows;
  const std::string marker = "lint: allow(";
  const auto comment_only = [](const std::string& s) {
    const std::size_t i = s.find_first_not_of(" \t");
    return i != std::string::npos && s.compare(i, 2, "//") == 0;
  };
  for (std::size_t ln = 0; ln < raw_lines.size(); ++ln) {
    const std::string& line = raw_lines[ln];
    std::size_t pos = 0;
    while ((pos = line.find(marker, pos)) != std::string::npos) {
      const std::size_t open = pos + marker.size();
      const std::size_t close = line.find(')', open);
      if (close != std::string::npos) {
        const std::string rule = line.substr(open, close - open);
        allows.emplace(static_cast<int>(ln) + 1, rule);
        // An annotation opening a comment block covers the whole block and
        // the first code line after it, so multi-line justifications work.
        if (comment_only(line)) {
          std::size_t j = ln + 1;
          while (j < raw_lines.size() && comment_only(raw_lines[j])) {
            allows.emplace(static_cast<int>(j) + 1, rule);
            ++j;
          }
          if (j < raw_lines.size())
            allows.emplace(static_cast<int>(j) + 1, rule);
        }
      }
      pos = open;
    }
  }
  return allows;
}

bool allowed(const std::set<std::pair<int, std::string>>& allows, int line,
             const std::string& rule) {
  return allows.count({line, rule}) > 0 ||
         allows.count({line - 1, rule}) > 0;
}

// ----------------------------------------------- float-accum region tracking

/// Mark every line that is lexically inside the body of a
/// `common::for_blocks(...)` (or `for_blocks(...)`) call — the pooled
/// block-geometry helpers whose fixed block decomposition is what makes a
/// `+=` accumulation loop thread-count-invariant. Anything accumulating
/// outside such a region in tensor/ is a reduction the pool contract does
/// not cover.
std::vector<char> for_blocks_regions(const std::string& sanitized,
                                     std::size_t n_lines) {
  std::vector<char> in_region(n_lines + 2, 0);
  std::size_t line = 1;
  int depth = 0;          // brace depth inside an active region
  bool pending = false;   // saw for_blocks, waiting for its lambda '{'
  const std::string tok = "for_blocks";
  for (std::size_t i = 0; i < sanitized.size(); ++i) {
    const char c = sanitized[i];
    if (c == '\n') {
      ++line;
      continue;
    }
    if (depth == 0 && !pending && c == 'f' &&
        sanitized.compare(i, tok.size(), tok) == 0 &&
        (i == 0 || !ident_char(sanitized[i - 1])) &&
        (i + tok.size() >= sanitized.size() ||
         !ident_char(sanitized[i + tok.size()]))) {
      pending = true;
      i += tok.size() - 1;
      continue;
    }
    if (pending && c == '{') {
      pending = false;
      depth = 1;
      if (line < in_region.size()) in_region[line] = 1;
      continue;
    }
    if (depth > 0) {
      if (c == '{') ++depth;
      if (c == '}') --depth;
      if (line < in_region.size()) in_region[line] = 1;
    }
  }
  return in_region;
}

} // namespace

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> kRules = {
      {kUnordered,
       "no std::unordered_{map,set} in ordering-sensitive paths (comm, "
       "tensor, nn, core, partition, graph, api): iteration order feeds "
       "serialization / reductions / comm ordering"},
      {kRawClock,
       "no raw clock reads (steady_clock / system_clock / "
       "high_resolution_clock) outside common/stopwatch — time flows "
       "through common::Stopwatch only"},
      {kRawRandom,
       "no rand()/srand()/std::random_device/std::mt19937 outside "
       "common/rng — all randomness is seeded through common::Rng"},
      {kRawThread,
       "no raw std::thread/std::jthread/std::async outside "
       "common/thread_pool.cpp — kernel parallelism goes through the "
       "deterministic pool"},
      {kFloatAccum,
       "no += accumulation loops in tensor/ outside common::for_blocks "
       "regions — reductions must use the pooled fixed-block geometry"},
      {kPragmaOnce, "headers must start include guards with #pragma once"},
      {kUsingStd, "no `using namespace std`"},
  };
  return kRules;
}

std::vector<Finding> lint_file(const std::string& rel,
                               const std::string& content) {
  std::vector<Finding> out;
  const std::vector<std::string> raw_lines = split_lines(content);
  const std::string sanitized = sanitize(content);
  const std::vector<std::string> lines = split_lines(sanitized);
  const auto allows = collect_allows(raw_lines);

  auto report = [&](int line, const char* rule, std::string msg) {
    if (allowed(allows, line, rule)) return;
    out.push_back(Finding{rel, line, rule, std::move(msg)});
  };

  // --- pragma-once -------------------------------------------------------
  if (is_header(rel) && sanitized.find("#pragma once") == std::string::npos) {
    report(1, kPragmaOnce, "header lacks #pragma once");
  }

  const bool sensitive = ordering_sensitive(rel);
  const bool clock_home = starts_with(rel, "common/stopwatch");
  const bool rng_home = starts_with(rel, "common/rng");
  const bool pool_home = rel == "common/thread_pool.cpp";
  const bool tensor_file = starts_with(rel, "tensor/");

  const std::vector<char> accum_ok =
      tensor_file ? for_blocks_regions(sanitized, lines.size())
                  : std::vector<char>{};

  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    const int ln = static_cast<int>(i) + 1;
    if (line.empty()) continue;

    // --- using-namespace-std --------------------------------------------
    if (line.find("using namespace std") != std::string::npos &&
        has_token(line, "std")) {
      report(ln, kUsingStd, "`using namespace std` pollutes lookup");
    }

    // --- unordered-container --------------------------------------------
    if (sensitive && line.find("std::unordered_") != std::string::npos) {
      report(ln, kUnordered,
             "unordered container in an ordering-sensitive path; use a "
             "sorted structure, or annotate why its order is never "
             "observed");
    }

    // --- raw-clock -------------------------------------------------------
    if (!clock_home &&
        (has_token(line, "steady_clock", /*check_suffix=*/false) ||
         has_token(line, "system_clock", /*check_suffix=*/false) ||
         has_token(line, "high_resolution_clock", /*check_suffix=*/false))) {
      report(ln, kRawClock,
             "raw clock read; numeric paths must take time only through "
             "common::Stopwatch");
    }

    // --- raw-random ------------------------------------------------------
    if (!rng_home &&
        (has_token(line, "std::random_device", /*check_suffix=*/false) ||
         has_token(line, "std::mt19937", /*check_suffix=*/false) ||
         has_token(line, "srand", /*check_suffix=*/false) ||
         (has_token(line, "rand") && line.find("rand(") != std::string::npos &&
          line.find("srand(") == std::string::npos))) {
      report(ln, kRawRandom,
             "unseeded / global randomness; draw through common::Rng");
    }

    // --- raw-thread ------------------------------------------------------
    if (!pool_home &&
        (has_token(line, "std::thread", /*check_suffix=*/false) ||
         has_token(line, "std::jthread", /*check_suffix=*/false) ||
         has_token(line, "std::async", /*check_suffix=*/false))) {
      // `std::this_thread` never matches: the token comparison anchors at
      // "std::thread" whose preceding chars differ.
      report(ln, kRawThread,
             "raw thread primitive outside common/thread_pool.cpp; kernel "
             "parallelism must use the deterministic pool");
    }

    // --- float-accum -----------------------------------------------------
    if (tensor_file && line.find("+=") != std::string::npos &&
        !(i + 1 < accum_ok.size() && accum_ok[i + 1])) {
      report(ln, kFloatAccum,
             "accumulation outside a common::for_blocks region; new "
             "reductions in tensor/ must use the pooled block geometry (or "
             "annotate why the loop is element-independent)");
    }
  }
  return out;
}

std::vector<Finding> lint_tree(const std::string& root) {
  namespace fs = std::filesystem;
  const fs::path rootp(root);
  if (!fs::exists(rootp) || !fs::is_directory(rootp)) {
    throw std::runtime_error("lint root is not a directory: " + root);
  }
  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(rootp)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc")
      files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  std::vector<Finding> out;
  for (const fs::path& p : files) {
    std::ifstream in(p, std::ios::binary);
    if (!in) throw std::runtime_error("cannot read " + p.string());
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string rel = fs::relative(p, rootp).generic_string();
    auto findings = lint_file(rel, ss.str());
    out.insert(out.end(), std::make_move_iterator(findings.begin()),
               std::make_move_iterator(findings.end()));
  }
  return out;
}

} // namespace bnsgcn::lint
