// Community prediction on a Reddit-like graph (the paper's motivating
// workload): dense power-law graph, 41 communities. Compares vanilla
// partition parallelism (p=1) against BNS-GCN (p=0.1/0.01) on throughput,
// traffic, memory and accuracy — the whole paper in one program.

#include <cstdio>

#include "api/presets.hpp"
#include "api/run.hpp"
#include "partition/metis_like.hpp"
#include "partition/stats.hpp"

int main() {
  using namespace bnsgcn;

  api::DatasetSpec dspec;
  dspec.preset = "reddit";
  dspec.scale = 0.3;
  const Dataset ds = api::make_dataset(dspec);
  std::printf("Reddit-like: %d nodes, %lld arcs, avg degree %.1f\n",
              ds.num_nodes(), static_cast<long long>(ds.graph.num_arcs()),
              ds.graph.average_degree());

  const Partitioning part = metis_like(ds.graph, 8);
  const auto stats = compute_stats(ds.graph, part);
  std::printf("8-way METIS-like partition: comm volume %lld, max "
              "boundary/inner %.2f\n\n",
              static_cast<long long>(stats.total_volume), stats.max_ratio());

  api::RunConfig cfg;
  cfg.method = api::Method::kBns;
  cfg.trainer.num_layers = 4; // paper's Reddit model: 4 layers
  cfg.trainer.hidden = 64;
  cfg.trainer.dropout = 0.3f;
  cfg.trainer.lr = 0.01f;
  cfg.trainer.epochs = 90;

  std::printf("%-14s %10s %12s %12s %10s\n", "config", "acc %", "comm MB/ep",
              "mem red. %", "epochs/s");
  for (const float p : {1.0f, 0.3f, 0.1f}) {
    cfg.trainer.sample_rate = p;
    const api::RunReport r = api::run(ds, part, cfg);
    std::printf("BNS p=%-8.2f %10.2f %12.2f %12.1f %10.2f\n", p,
                100.0 * r.final_test,
                static_cast<double>(r.mean_epoch().feature_bytes) / 1048576.0,
                100.0 * r.memory.reduction_vs_full(), r.throughput_eps());
  }
  std::printf("\nBNS-GCN keeps the full-graph accuracy while cutting "
              "communication ~1/p.\n");
  return 0;
}
