// Table 8: efficiency improvement of BNS-GCN (p=0.1) on top of METIS vs
// random partitioning: throughput gain over p=1, memory ratio vs p=1, and
// the structural boundary-node counts.
// Expected shape: random partitioning has far more boundary nodes, so BNS
// buys it a *bigger* relative speedup and memory saving than METIS.

#include "common.hpp"

namespace {

using namespace bnsgcn;

void run_dataset(const char* title, const Dataset& ds,
                 core::TrainerConfig cfg, PartId parts) {
  cfg.epochs = 5;
  Rng rng(cfg.seed);
  std::printf("\n--- %s (%d partitions) ---\n", title, parts);
  std::printf("%-10s %14s %12s %16s\n", "partition", "throughput x",
              "memory x", "#boundary nodes");
  for (const bool metis : {true, false}) {
    const auto part = metis ? metis_like(ds.graph, parts)
                            : random_partition(ds.num_nodes(), parts, rng);
    const auto stats = compute_stats(ds.graph, part);
    auto c = cfg;
    c.sample_rate = 1.0f;
    const auto full = core::BnsTrainer(ds, part, c).train();
    c.sample_rate = 0.1f;
    const auto bns = core::BnsTrainer(ds, part, c).train();
    std::printf("%-10s %13.1fx %11.2fx %16lld\n", metis ? "METIS" : "Random",
                bns.throughput_eps() / full.throughput_eps(),
                bns.memory.max_model_bytes() /
                    static_cast<double>(full.memory.max_full_bytes()),
                static_cast<long long>(stats.total_volume));
  }
}

} // namespace

int main() {
  using namespace bnsgcn;
  bench::print_banner("Table 8",
                      "BNS-GCN (p=0.1) gains on METIS vs random partition");
  const double s = bench::bench_scale();
  {
    const Dataset ds = make_synthetic(reddit_like(0.4 * s));
    run_dataset("Reddit-like (8 partitions)", ds, bench::reddit_config(), 8);
  }
  {
    const Dataset ds = make_synthetic(products_like(0.3 * s));
    run_dataset("ogbn-products-like (10 partitions)", ds,
                bench::products_config(), 10);
  }
  {
    const Dataset ds = make_synthetic(yelp_like(0.4 * s));
    run_dataset("Yelp-like (10 partitions)", ds, bench::yelp_config(), 10);
  }
  std::printf("\npaper shape check: random partition has ~2-10x the boundary "
              "nodes and gains more from BNS.\n");
  return 0;
}
