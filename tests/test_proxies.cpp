#include <gtest/gtest.h>

#include "core/proxies.hpp"
#include "graph/dataset.hpp"
#include "partition/metis_like.hpp"

namespace bnsgcn {
namespace {

Dataset tiny_dataset() {
  SyntheticSpec spec;
  spec.n = 900;
  spec.m = 9000;
  spec.communities = 6;
  spec.num_classes = 6;
  spec.feat_dim = 16;
  spec.seed = 5;
  return make_synthetic(spec);
}

core::TrainerConfig proxy_config() {
  core::TrainerConfig cfg;
  cfg.num_layers = 2;
  cfg.hidden = 24;
  cfg.epochs = 4;
  cfg.seed = 3;
  return cfg;
}

TEST(Proxies, RocAddsSwapTraffic) {
  const Dataset ds = tiny_dataset();
  const auto part = metis_like(ds.graph, 3);
  const auto cfg = proxy_config();

  core::BnsTrainer plain(ds, part, cfg);
  const auto base = plain.train();
  const auto roc = core::run_roc_proxy(ds, part, cfg);

  // Same exchange volume, plus strictly positive swap time on top. Compare
  // only the simulated (deterministic) components: measured compute time is
  // scheduling noise at this scale.
  EXPECT_EQ(base.mean_epoch().feature_bytes, roc.mean_epoch().feature_bytes);
  EXPECT_GT(roc.mean_epoch().swap_s, 0.0);
  EXPECT_NEAR(base.mean_epoch().swap_s, 0.0, 1e-12);
  const auto sim = [](const core::EpochBreakdown& e) {
    return e.comm_s + e.reduce_s + e.swap_s;
  };
  EXPECT_GT(sim(roc.mean_epoch()), sim(base.mean_epoch()));
}

TEST(Proxies, CagnetBroadcastDominatesBnsTraffic) {
  // Fig. 4's mechanism: CAGNET moves (m-1)·n·d per layer; BNS moves only
  // boundary features.
  const Dataset ds = tiny_dataset();
  const auto part = metis_like(ds.graph, 3);
  const auto cfg = proxy_config();

  core::BnsTrainer plain(ds, part, cfg);
  const auto bns = plain.train();
  const auto cagnet = core::run_cagnet_proxy(ds, part, cfg, /*c=*/1);
  EXPECT_GT(cagnet.mean_epoch().feature_bytes,
            bns.mean_epoch().feature_bytes);
}

TEST(Proxies, CagnetC2HalvesBroadcastTime) {
  const Dataset ds = tiny_dataset();
  const auto part = metis_like(ds.graph, 3);
  const auto cfg = proxy_config();
  const auto c1 = core::run_cagnet_proxy(ds, part, cfg, 1);
  const auto c2 = core::run_cagnet_proxy(ds, part, cfg, 2);
  EXPECT_NEAR(c2.mean_epoch().comm_s, c1.mean_epoch().comm_s / 2.0,
              0.2 * c1.mean_epoch().comm_s);
}

TEST(Proxies, BnsComposesWithSwapTraining) {
  // Section 3.2: BNS "can be easily plugged into any partition-parallel
  // training method". Compose host-swap (ROC-style) training with p=0.1
  // sampling: swap traffic stays, boundary traffic shrinks, training works.
  const Dataset ds = tiny_dataset();
  const auto part = metis_like(ds.graph, 3);
  auto cfg = proxy_config();
  cfg.epochs = 20;
  cfg.simulate_host_swap = true;

  cfg.sample_rate = 1.0f;
  const auto full = core::BnsTrainer(ds, part, cfg).train();
  cfg.sample_rate = 0.1f;
  const auto sampled = core::BnsTrainer(ds, part, cfg).train();

  EXPECT_GT(sampled.mean_epoch().swap_s, 0.0);
  EXPECT_LT(sampled.mean_epoch().feature_bytes,
            full.mean_epoch().feature_bytes / 5);
  EXPECT_GT(sampled.final_test, 0.4);
}

TEST(Proxies, CagnetSupportsMultilabel) {
  SyntheticSpec spec;
  spec.n = 300;
  spec.m = 1500;
  spec.communities = 4;
  spec.num_classes = 4;
  spec.multilabel = true;
  const Dataset ds = make_synthetic(spec);
  const auto part = metis_like(ds.graph, 2);
  const auto result = core::run_cagnet_proxy(ds, part, proxy_config(), 1);
  EXPECT_GT(result.mean_epoch().feature_bytes, 0);
}

} // namespace
} // namespace bnsgcn
