// Table 11: per-epoch training time of the sampling-based methods vs
// BNS-GCN (8 partitions) on Reddit-like.
// Expected shape: BNS-GCN (even at p=1) beats minibatch methods per epoch;
// p=0.1/0.01 extend the lead to an order of magnitude.

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace bnsgcn;
  const auto opts = api::parse_bench_args(argc, argv);
  bench::print_banner("Table 11", "per-epoch train time vs samplers (Reddit)");
  bench::ReportSink sink("Table 11", opts);

  auto pr = bench::load_preset("reddit", 0.4 * opts.scale, opts);
  const Dataset& ds = pr.ds;
  pr.trainer.epochs = opts.epochs_or(5);
  pr.trainer.seed = 7;

  api::RunConfig bcfg = pr.config();
  bcfg.minibatch.batch_size = std::max<NodeId>(256, ds.num_nodes() / 12);
  bcfg.minibatch.batches_per_epoch = 6; // cover ~half the train set/epoch

  std::printf("%-26s %16s %10s\n", "method", "epoch time (s)", "speedup");
  double sage_time = 0.0;
  for (const api::Method m :
       {api::Method::kNeighborSampling, api::Method::kFastGcn,
        api::Method::kLadies, api::Method::kClusterGcn,
        api::Method::kGraphSaint}) {
    bcfg.method = m;
    const auto& info = api::method_info(m);
    const auto r = sink.add(bench::label("reddit %s", info.name.c_str()),
                            bcfg, api::run(ds, bcfg));
    // Measured wall per epoch for every row (same clock as the BNS rows
    // below), eval cost included, as in the paper's protocol.
    if (sage_time == 0.0) sage_time = r.wall_epoch_s();
    std::printf("%-26s %16.4f %9.1fx\n", info.display.c_str(),
                r.wall_epoch_s(), sage_time / r.wall_epoch_s());
  }

  api::RunConfig rcfg = pr.config(api::Method::kBns);
  rcfg.partition.nparts = 8; // partitioned once, cached across p
  for (const float p : {1.0f, 0.1f, 0.01f}) {
    rcfg.trainer.sample_rate = p;
    const auto r = sink.add(bench::label("reddit bns p=%.2f", p), rcfg,
                            api::run(ds, rcfg));
    // Wall epoch time: the 8 rank threads genuinely run in parallel here.
    const double t = r.wall_epoch_s();
    std::printf("BNS-GCN(%.2f)%14s %16.4f %9.1fx\n", p, "", t,
                sage_time / t);
  }
  std::printf("\npaper shape check: BNS rows fastest; speedup grows as p "
              "drops (paper: 8-41x vs GraphSAGE).\n");
  return 0;
}
