#pragma once

#include <deque>
#include <functional>
#include <string>
#include <string_view>

#include "api/partition_spec.hpp"
#include "api/presets.hpp"
#include "api/report.hpp"
#include "baselines/minibatch.hpp"
#include "core/trainer.hpp"
#include "partition/partitioning.hpp"

namespace bnsgcn::api {

/// Built-in training methods: the paper's method, the partition-parallel
/// proxies it is compared against (Fig. 4), and the five sampling-based
/// baselines (Tables 4/5/11/12). `kCustom` selects a runtime-registered
/// method by name (RunConfig::custom_method).
enum class Method {
  kBns,               // BNS-GCN (Algorithm 1); p=1 → vanilla partition par.
  kRocProxy,          // ROC-style host-swap training (Fig. 1b proxy)
  kCagnetProxy,       // CAGNET-style 1.5D broadcast (Fig. 1c proxy)
  kFullGraph,         // single-process full-graph training (oracle)
  kNeighborSampling,  // GraphSAGE (Hamilton et al. 2017)
  kFastGcn,           // layer sampling, global pool
  kLadies,            // layer sampling, neighbor-restricted pool
  kClusterGcn,        // subgraph sampling via METIS clusters
  kGraphSaint,        // subgraph sampling via degree-weighted node budget
  kCustom,
};

/// Communication-fabric knobs shared by the partition-parallel methods
/// (BNS, the ROC proxy, and — where applicable — the CAGNET proxy).
struct CommSpec {
  /// Boundary-exchange schedule (docs/ARCHITECTURE.md §4): blocking, bulk
  /// (one wait_all hidden behind the halo-independent compute phase) or
  /// stream (per-peer progressive folds via comm::RequestSet polling).
  /// Results are bit-identical across all three modes; only the simulated
  /// epoch time (EpochBreakdown::overlap_s) changes. Safe for every
  /// method: SAGE and GAT both run the phased schedule, the CAGNET dense
  /// broadcast ignores the knob, the minibatch baselines have no fabric
  /// to overlap. JSON spells modes "blocking" / "bulk" / "stream" and
  /// still accepts the legacy PR 2 bool (true → bulk).
  core::OverlapMode overlap = core::OverlapMode::kBlocking;

  /// Chunk size (destination rows) of the halo-independent forward phase:
  /// with a positive value the trainer polls the completion set between
  /// F1 row chunks, so stream-mode folds interleave mid-F1
  /// (TrainerConfig::inner_chunk_rows has the full story). 0 = unchunked.
  /// Results are bit-identical for every value. This api-level spelling
  /// wins over trainer.inner_chunk_rows when nonzero; JSON key
  /// "inner_chunk_rows".
  NodeId inner_chunk_rows = 0;

  /// Per-(peer, layer) halo-cache budget in MiB (docs/ARCHITECTURE.md §9):
  /// 0 (default) disables the cache; a positive value caches layer-0
  /// boundary rows (epoch-invariant input features) so warm epochs ship
  /// only an index list plus the rows the remote rank does not hold.
  /// Bit-identical losses at cache_staleness == 0, on every transport and
  /// overlap mode. JSON key "cache_mb", written only when nonzero.
  std::int64_t cache_mb = 0;

  /// Staleness bound (epochs) for caching layers above 0: their rows
  /// change every epoch, so a hit replays a row up to this many epochs
  /// old. 0 (default) = exact — only layer 0 caches. JSON key
  /// "cache_staleness", written only when the cache is enabled.
  int cache_staleness = 0;

  /// Fabric backend. kMailbox (default) trains every rank as a thread over
  /// the in-process deterministic fabric, with comm/overlap times simulated
  /// from byte counts. kUds / kTcp spawn one OS process per rank connected
  /// by a socket fabric (api/multiprocess.hpp): identical losses and byte
  /// counts — the schedule and fold orders are transport-invariant — but
  /// comm/overlap/tail/reduce become measured wall-clock
  /// (RunReport::timing_source == "measured"). Only Method::kBns routes to
  /// the multi-process runtime; JSON key "transport", values
  /// "mailbox" / "uds" / "tcp".
  comm::TransportKind transport = comm::TransportKind::kMailbox;
};

/// Everything one training run needs: what data, how it is partitioned,
/// which method, and the model/sampling/cost-model knobs. The single entry
/// point for every bench, example and test.
struct RunConfig {
  Method method = Method::kBns;
  std::string custom_method;  // registry name when method == kCustom

  DatasetSpec dataset;        // used by run(cfg); ignored by the overloads
                              // that take a prebuilt Dataset
  PartitionSpec partition;    // ignored by the overload taking a Partitioning

  /// Model, optimizer, sampling (rate/variant/scaling), epochs, eval
  /// cadence, seed, interconnect cost model and the per-epoch observer.
  core::TrainerConfig trainer;

  /// Fabric behavior (communication–computation overlap). Either this or
  /// trainer.overlap enables the pipelined exchange; this is the
  /// config-file-facing spelling.
  CommSpec comm;

  /// Sampler-specific knobs of the minibatch baselines; ignored by the
  /// partition-parallel methods.
  baselines::MinibatchConfig minibatch;

  /// CAGNET replication factor (kCagnetProxy only).
  int cagnet_c = 1;
};

/// A runnable method. `runner` receives the dataset, the partitioning
/// (nullptr for methods with needs_partition == false) and the full config.
struct MethodInfo {
  Method method = Method::kCustom;
  std::string name;     // canonical id, e.g. "bns", "graph-saint"
  std::string display;  // human label, e.g. "BNS-GCN"
  bool needs_partition = false;
  std::function<RunReport(const Dataset&, const Partitioning*,
                          const RunConfig&)>
      runner;
};

/// Built-in methods plus anything added via register_method. A deque so
/// registration never reallocates: references returned by method_info /
/// find_method stay valid for the process lifetime.
[[nodiscard]] const std::deque<MethodInfo>& method_registry();
[[nodiscard]] const MethodInfo& method_info(Method method);
[[nodiscard]] const MethodInfo* find_method(std::string_view name);
/// Additive extension point: new methods plug in without touching the
/// dispatch (name must be unique; method should be kCustom).
void register_method(MethodInfo info);

/// The method resolved from `cfg` (built-in or custom).
[[nodiscard]] const MethodInfo& resolve_method(const RunConfig& cfg);

/// The engine-level trainer config of a partition-parallel run: the api's
/// CommSpec folds into the TrainerConfig knobs the engine reads (overlap
/// mode, chunking). Shared with the multi-process runtime so both runtimes
/// resolve the config identically.
[[nodiscard]] core::TrainerConfig engine_config(const RunConfig& cfg);

/// Run `cfg` end to end: build the dataset from cfg.dataset, partition per
/// cfg.partition (when the method needs one), train, and return the
/// unified report. Partitioning goes through the process-global partition
/// cache (api/partition_cache.hpp): sweeping many configs over one
/// (graph, spec) pays for the partitioner once, and
/// RunReport::partition_cache records what this run hit.
[[nodiscard]] RunReport run(const RunConfig& cfg);

/// Same, over a prebuilt dataset (partition still built per cfg.partition,
/// through the cache).
[[nodiscard]] RunReport run(const Dataset& ds, const RunConfig& cfg);

/// Same, over a prebuilt dataset and partitioning — for callers that
/// construct partitionings outside the spec vocabulary. Bypasses the
/// partition cache (the caller owns `part`).
[[nodiscard]] RunReport run(const Dataset& ds, const Partitioning& part,
                            const RunConfig& cfg);

} // namespace bnsgcn::api
