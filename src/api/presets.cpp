#include "api/presets.hpp"

#include "common/check.hpp"

namespace bnsgcn::api {

namespace {

/// Per-dataset training configs mirroring Section 4's models at bench scale
/// (layer count kept, hidden width and epochs reduced with the graphs).
core::TrainerConfig reddit_trainer() {
  core::TrainerConfig cfg;
  cfg.num_layers = 4; // paper: 4 layers, 256 hidden
  cfg.hidden = 64;
  // Paper uses dropout 0.5; at 1/10 scale with 64 hidden units that much
  // regularization stalls early training, so the bench uses 0.3.
  cfg.dropout = 0.3f;
  cfg.lr = 0.01f;
  cfg.epochs = 60;
  cfg.seed = 41;
  return cfg;
}

core::TrainerConfig products_trainer() {
  core::TrainerConfig cfg;
  cfg.num_layers = 3; // paper: 3 layers, 128 hidden
  cfg.hidden = 64;
  cfg.dropout = 0.3f;
  cfg.lr = 0.003f;
  cfg.epochs = 60;
  cfg.seed = 47;
  return cfg;
}

core::TrainerConfig yelp_trainer() {
  core::TrainerConfig cfg;
  cfg.num_layers = 4; // paper: 4 layers, 512 hidden
  cfg.hidden = 64;
  cfg.dropout = 0.1f;
  // Paper uses lr 1e-3 over 3000 epochs; bench budgets are ~100 epochs, so
  // the rate is raised accordingly (sparse-positive BCE stays all-negative
  // far longer at 1e-3).
  cfg.lr = 0.01f;
  cfg.epochs = 60;
  cfg.seed = 100;
  return cfg;
}

core::TrainerConfig papers_trainer() {
  core::TrainerConfig cfg;
  cfg.num_layers = 3; // paper: 3 layers, 128 hidden
  cfg.hidden = 48;
  cfg.dropout = 0.5f;
  cfg.lr = 0.01f;
  cfg.epochs = 10;
  cfg.seed = 172;
  return cfg;
}

std::deque<DatasetPreset>& mutable_registry() {
  static std::deque<DatasetPreset> registry = {
      {"reddit", "Reddit-like: dense power-law graph, 41 communities",
       &reddit_like, reddit_trainer()},
      {"products", "ogbn-products-like: sparse co-purchase graph, 47 classes",
       &products_like, products_trainer()},
      {"yelp", "Yelp-like: sparse graph, 100 binary labels (micro-F1)",
       &yelp_like, yelp_trainer()},
      {"papers", "ogbn-papers100M-like: the large-graph preset, 172 classes",
       &papers_like, papers_trainer()},
  };
  return registry;
}

} // namespace

const std::deque<DatasetPreset>& dataset_registry() {
  return mutable_registry();
}

const DatasetPreset* find_dataset(std::string_view name) {
  for (const auto& preset : mutable_registry())
    if (preset.name == name) return &preset;
  return nullptr;
}

void register_dataset(DatasetPreset preset) {
  BNSGCN_CHECK_MSG(!preset.name.empty(), "dataset preset needs a name");
  BNSGCN_CHECK_MSG(find_dataset(preset.name) == nullptr,
                   "dataset preset already registered: " + preset.name);
  mutable_registry().push_back(std::move(preset));
}

core::TrainerConfig preset_trainer_config(std::string_view name) {
  const DatasetPreset* preset = find_dataset(name);
  BNSGCN_CHECK_MSG(preset != nullptr,
                   "unknown dataset preset: " + std::string(name));
  return preset->trainer;
}

Dataset make_dataset(const DatasetSpec& spec) {
  if (spec.custom) return make_synthetic(*spec.custom);
  const DatasetPreset* preset = find_dataset(spec.preset);
  BNSGCN_CHECK_MSG(preset != nullptr,
                   "unknown dataset preset: " + spec.preset);
  return make_synthetic(preset->make_spec(spec.scale));
}

} // namespace bnsgcn::api
