#include "api/report.hpp"

namespace bnsgcn::api {

double RunReport::sample_time_s() const {
  double total = 0.0;
  for (const auto& e : epochs) total += e.sample_s;
  return total;
}

double RunReport::total_train_s() const {
  double total = 0.0;
  for (const auto& e : epochs) total += e.total_s();
  return total;
}

RunReport RunReport::from_train_result(core::TrainResult&& tr,
                                       std::string method,
                                       std::string dataset) {
  RunReport r;
  r.method = std::move(method);
  r.dataset = std::move(dataset);
  r.train_loss = std::move(tr.train_loss);
  r.curve = std::move(tr.curve);
  r.final_val = tr.final_val;
  r.final_test = tr.final_test;
  r.epochs = std::move(tr.epochs);
  r.memory = std::move(tr.memory);
  r.wall_time_s = tr.wall_time_s;
  return r;
}

} // namespace bnsgcn::api
