#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/trainer.hpp"
#include "graph/dataset.hpp"
#include "nn/layer.hpp"

namespace bnsgcn::baselines {

/// Shared knobs of the sampling-based baselines (Section 2 families).
struct BaselineConfig {
  int num_layers = 2;
  std::int64_t hidden = 64;
  float dropout = 0.0f;
  float lr = 0.01f;
  int epochs = 50;
  int eval_every = 0;
  std::uint64_t seed = 1;

  NodeId batch_size = 1024;    // seed nodes per minibatch
  int batches_per_epoch = 8;   // minibatch steps per epoch

  int fanout = 10;             // GraphSAGE neighbor-sampling fanout
  NodeId layer_budget = 512;   // FastGCN/LADIES per-layer sample size
  int num_clusters = 32;       // ClusterGCN METIS clusters
  int clusters_per_batch = 2;
  NodeId saint_budget = 2000;  // GraphSAINT node budget per subgraph
};

struct BaselineResult {
  std::vector<double> train_loss; // per epoch (mean over batches)
  std::vector<core::EvalPoint> curve;
  double final_val = 0.0;
  double final_test = 0.0;
  double wall_time_s = 0.0;   // Table 5: total train time
  double epoch_time_s = 0.0;  // Table 11: mean per-epoch time
  double sample_time_s = 0.0; // Table 12: total time in the sampler

  [[nodiscard]] double sampler_overhead() const {
    return wall_time_s > 0.0 ? sample_time_s / wall_time_s : 0.0;
  }
};

/// Whole-graph adjacency in Layer form (n_dst == n_src == n, identity node
/// order so "self features first" holds trivially).
struct FullGraphContext {
  nn::BipartiteCsr adj;
  std::vector<float> inv_deg;
};
[[nodiscard]] FullGraphContext make_full_context(const Csr& g);

/// Full-graph inference with the given layers (dropout off); returns
/// {val metric, test metric} — accuracy or micro-F1 per the dataset.
[[nodiscard]] std::pair<double, double> evaluate_full(
    const Dataset& ds, const FullGraphContext& ctx,
    std::vector<std::unique_ptr<nn::Layer>>& layers);

/// One minibatch in layered (message-flow) form: level 0 holds the input
/// nodes, level L the output nodes; every level's node list starts with the
/// next level's destinations so Layer's "self rows first" layout holds.
/// Subgraph methods (ClusterGCN / GraphSAINT) use the degenerate form where
/// every level is the same node set.
struct Batch {
  std::vector<nn::BipartiteCsr> adjs;      // L entries (level l → l+1)
  std::vector<std::vector<float>> inv_deg; // L entries
  std::vector<NodeId> input_nodes;         // level-0 global ids
  std::vector<NodeId> output_nodes;        // level-L global ids
  std::vector<NodeId> loss_rows;           // rows of output carrying loss
};

/// Shared minibatch training loop: draws `batches_per_epoch` batches per
/// epoch from `next_batch`, trains with Adam, and evaluates by full-graph
/// inference (the standard protocol for sampling-based methods).
[[nodiscard]] BaselineResult run_minibatch_training(
    const Dataset& ds, const BaselineConfig& cfg,
    const std::function<Batch(Rng&)>& next_batch);

/// Single-process full-graph training (no partitioning, no sampling): the
/// test oracle for BnsTrainer(p=1) and the "full-graph accuracy" reference.
[[nodiscard]] BaselineResult train_full_graph(const Dataset& ds,
                                              const core::TrainerConfig& cfg);

/// GraphSAGE neighbor sampling (Hamilton et al. 2017).
[[nodiscard]] BaselineResult train_neighbor_sampling(
    const Dataset& ds, const BaselineConfig& cfg);

/// Layer sampling: FastGCN (global candidate pool) or LADIES (pool
/// restricted to the current layer's neighbor set), importance-weighted.
[[nodiscard]] BaselineResult train_layer_sampling(const Dataset& ds,
                                                  const BaselineConfig& cfg,
                                                  bool ladies);

/// ClusterGCN (Chiang et al. 2019): METIS clusters, random cluster unions.
[[nodiscard]] BaselineResult train_cluster_gcn(const Dataset& ds,
                                               const BaselineConfig& cfg);

/// GraphSAINT node sampler (Zeng et al. 2020), simplified: degree-weighted
/// node budget, induced subgraph, loss on contained train nodes.
[[nodiscard]] BaselineResult train_graph_saint(const Dataset& ds,
                                               const BaselineConfig& cfg);

} // namespace bnsgcn::baselines
