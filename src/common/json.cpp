#include "common/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/check.hpp"

namespace bnsgcn::json {

bool Value::as_bool() const {
  BNSGCN_CHECK_MSG(kind_ == Kind::kBool, "json: not a bool");
  return bool_;
}

double Value::as_double() const {
  BNSGCN_CHECK_MSG(kind_ == Kind::kNumber, "json: not a number");
  return num_;
}

std::int64_t Value::as_int64() const {
  BNSGCN_CHECK_MSG(kind_ == Kind::kNumber, "json: not a number");
  return static_cast<std::int64_t>(std::llround(num_));
}

const std::string& Value::as_string() const {
  BNSGCN_CHECK_MSG(kind_ == Kind::kString, "json: not a string");
  return str_;
}

const Value::Array& Value::items() const {
  BNSGCN_CHECK_MSG(kind_ == Kind::kArray, "json: not an array");
  return arr_;
}

const Value::Object& Value::members() const {
  BNSGCN_CHECK_MSG(kind_ == Kind::kObject, "json: not an object");
  return obj_;
}

void Value::set(std::string key, Value value) {
  BNSGCN_CHECK_MSG(kind_ == Kind::kObject, "json: not an object");
  for (auto& [k, v] : obj_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  obj_.emplace_back(std::move(key), std::move(value));
}

const Value* Value::get(std::string_view key) const {
  BNSGCN_CHECK_MSG(kind_ == Kind::kObject, "json: not an object");
  for (const auto& [k, v] : obj_)
    if (k == key) return &v;
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  const Value* v = get(key);
  BNSGCN_CHECK_MSG(v != nullptr, "json: missing key " + std::string(key));
  return *v;
}

void Value::push_back(Value value) {
  BNSGCN_CHECK_MSG(kind_ == Kind::kArray, "json: not an array");
  arr_.push_back(std::move(value));
}

std::size_t Value::size() const {
  if (kind_ == Kind::kArray) return arr_.size();
  if (kind_ == Kind::kObject) return obj_.size();
  BNSGCN_CHECK_MSG(false, "json: size() of a scalar");
  return 0;
}

const Value& Value::operator[](std::size_t i) const {
  BNSGCN_CHECK_MSG(kind_ == Kind::kArray, "json: not an array");
  BNSGCN_CHECK(i < arr_.size());
  return arr_[i];
}

namespace {

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_number(double d, std::string& out) {
  BNSGCN_CHECK_MSG(std::isfinite(d), "json: non-finite number");
  if (d == std::floor(d) && std::fabs(d) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(std::llround(d)));
    out += buf;
    return;
  }
  // %.17g round-trips doubles exactly.
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out += buf;
}

} // namespace

namespace {

void dump_impl(const Value& v, int indent, int depth, std::string& out);

void newline_pad(int indent, int depth, std::string& out) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

void dump_impl(const Value& v, int indent, int depth, std::string& out) {
  switch (v.kind()) {
    case Value::Kind::kNull: out += "null"; return;
    case Value::Kind::kBool: out += v.as_bool() ? "true" : "false"; return;
    case Value::Kind::kNumber: dump_number(v.as_double(), out); return;
    case Value::Kind::kString: dump_string(v.as_string(), out); return;
    case Value::Kind::kArray: {
      const auto& items = v.items();
      if (items.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (i > 0) out += ',';
        newline_pad(indent, depth + 1, out);
        dump_impl(items[i], indent, depth + 1, out);
      }
      newline_pad(indent, depth, out);
      out += ']';
      return;
    }
    case Value::Kind::kObject: {
      const auto& members = v.members();
      if (members.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      bool first = true;
      for (const auto& [k, val] : members) {
        if (!first) out += ',';
        first = false;
        newline_pad(indent, depth + 1, out);
        dump_string(k, out);
        out += indent < 0 ? ":" : ": ";
        dump_impl(val, indent, depth + 1, out);
      }
      newline_pad(indent, depth, out);
      out += '}';
      return;
    }
  }
}

} // namespace

std::string Value::dump(int indent) const {
  std::string out;
  dump_impl(*this, indent, 0, out);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    BNSGCN_CHECK_MSG(pos_ == text_.size(), "json: trailing garbage");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() {
    BNSGCN_CHECK_MSG(pos_ < text_.size(), "json: unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    BNSGCN_CHECK_MSG(pos_ < text_.size() && text_[pos_] == c,
                     std::string("json: expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Value(parse_string());
    if (consume_literal("true")) return Value(true);
    if (consume_literal("false")) return Value(false);
    if (consume_literal("null")) return Value();
    return parse_number();
  }

  Value parse_object() {
    expect('{');
    Value v = Value::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.set(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parse_array() {
    expect('[');
    Value v = Value::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      BNSGCN_CHECK_MSG(pos_ < text_.size(), "json: unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      BNSGCN_CHECK_MSG(pos_ < text_.size(), "json: unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          BNSGCN_CHECK_MSG(pos_ + 4 <= text_.size(), "json: bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else BNSGCN_CHECK_MSG(false, "json: bad \\u escape");
          }
          // Encode as UTF-8 (basic multilingual plane only; the writer
          // never emits surrogate pairs).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          BNSGCN_CHECK_MSG(false, "json: bad escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    BNSGCN_CHECK_MSG(pos_ > start, "json: invalid value");
    const std::string token(text_.substr(start, pos_ - start));
    std::size_t used = 0;
    double d = 0.0;
    try {
      d = std::stod(token, &used);
    } catch (const std::exception&) {
      BNSGCN_CHECK_MSG(false, "json: invalid number " + token);
    }
    BNSGCN_CHECK_MSG(used == token.size(), "json: invalid number " + token);
    return Value(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

} // namespace

Value Value::parse(std::string_view text) {
  return Parser(text).parse_document();
}

void write_file(const std::string& path, const Value& value) {
  std::ofstream out(path);
  BNSGCN_CHECK_MSG(out.good(), "cannot open for writing: " + path);
  out << value.dump(2) << '\n';
  BNSGCN_CHECK_MSG(out.good(), "write failed: " + path);
}

} // namespace bnsgcn::json
