// Multi-label business categorization on a Yelp-like graph: sparse graph,
// 50 binary labels per node, sigmoid-BCE training, micro-F1 evaluation —
// exercising the multi-label path of the public API end to end, with the
// convergence curve streamed by the per-epoch observer.

#include <cstdio>

#include "api/run.hpp"

int main() {
  using namespace bnsgcn;

  api::RunConfig cfg;
  cfg.dataset.preset = "yelp";
  cfg.dataset.scale = 0.3;
  cfg.partition.nparts = 6;
  cfg.method = api::Method::kBns;
  cfg.trainer.num_layers = 4; // paper's Yelp model: 4 layers
  cfg.trainer.hidden = 64;
  cfg.trainer.dropout = 0.1f;
  cfg.trainer.lr = 0.01f;
  cfg.trainer.epochs = 100;
  cfg.trainer.sample_rate = 0.1f;
  cfg.trainer.eval_every = 20;
  cfg.trainer.observer = [](const core::EpochSnapshot& snap) {
    if (snap.eval != nullptr)
      std::printf("epoch %3d  loss %.5f  val F1 %.2f%%  test F1 %.2f%%\n",
                  snap.epoch, snap.train_loss, 100.0 * snap.eval->val,
                  100.0 * snap.eval->test);
  };

  const api::RunReport result = api::run(cfg);
  std::printf("\n%s on %s: final test micro-F1 %.2f%% at p=%.2f with %d "
              "partitions\n",
              result.method.c_str(), result.dataset.c_str(),
              100.0 * result.final_test, cfg.trainer.sample_rate,
              cfg.partition.nparts);
  return 0;
}
