// Fixture: += accumulation outside the pooled for_blocks geometry.
namespace fixture {

float serial_sum(const float* p, long n) {
  float acc = 0.0f;
  for (long i = 0; i < n; ++i) acc += p[i];
  return acc;
}

void blocked_sum(const float* p, long n, float* out) {
  common::for_blocks(n, 64, [&](long b0, long b1) {
    for (long i = b0; i < b1; ++i) out[0] += p[i]; // pooled: no finding
  });
}

float annotated_sum(const float* p, long n) {
  float acc = 0.0f;
  // lint: allow(float-accum) — element-independent fixture loop.
  for (long i = 0; i < n; ++i) acc += p[i];
  return acc;
}

} // namespace fixture
