#include <gtest/gtest.h>

#include <cmath>

#include "nn/adam.hpp"

namespace bnsgcn {
namespace {

TEST(Adam, FirstStepMovesByLr) {
  // With bias correction, the first Adam step is ≈ lr * sign(grad).
  Matrix p(1, 2);
  p.at(0, 0) = 1.0f;
  p.at(0, 1) = -1.0f;
  Matrix g(1, 2);
  g.at(0, 0) = 0.5f;
  g.at(0, 1) = -2.0f;
  nn::Adam adam({&p}, {&g}, {.lr = 0.1f});
  adam.step();
  EXPECT_NEAR(p.at(0, 0), 1.0f - 0.1f, 1e-5f);
  EXPECT_NEAR(p.at(0, 1), -1.0f + 0.1f, 1e-5f);
}

TEST(Adam, ConvergesOnQuadratic) {
  // minimize f(x) = (x-3)^2 → grad = 2(x-3).
  Matrix x(1, 1);
  Matrix g(1, 1);
  nn::Adam adam({&x}, {&g}, {.lr = 0.05f});
  for (int i = 0; i < 2000; ++i) {
    g.at(0, 0) = 2.0f * (x.at(0, 0) - 3.0f);
    adam.step();
  }
  EXPECT_NEAR(x.at(0, 0), 3.0f, 1e-2f);
}

TEST(Adam, ConvergesOnRosenbrockish2d) {
  // A curved valley exercises the second-moment scaling.
  Matrix x(1, 2);
  x.at(0, 0) = -1.0f;
  x.at(0, 1) = 1.0f;
  Matrix g(1, 2);
  nn::Adam adam({&x}, {&g}, {.lr = 0.02f});
  for (int i = 0; i < 8000; ++i) {
    const float a = x.at(0, 0), b = x.at(0, 1);
    g.at(0, 0) = 2.0f * (a - 1.0f) + 4.0f * a * (a * a - b);
    g.at(0, 1) = 2.0f * (b - a * a);
    adam.step();
  }
  EXPECT_NEAR(x.at(0, 0), 1.0f, 0.05f);
  EXPECT_NEAR(x.at(0, 1), 1.0f, 0.05f);
}

TEST(Adam, ZeroGrads) {
  Matrix p(2, 2);
  Matrix g(2, 2, 5.0f);
  nn::Adam adam({&p}, {&g}, {});
  adam.zero_grads();
  for (const float v : g.flat()) EXPECT_EQ(v, 0.0f);
}

TEST(Adam, WeightDecayPullsTowardZero) {
  Matrix p(1, 1);
  p.at(0, 0) = 1.0f;
  Matrix g(1, 1); // zero task gradient
  nn::Adam adam({&p}, {&g}, {.lr = 0.01f, .weight_decay = 0.1f});
  for (int i = 0; i < 200; ++i) adam.step();
  EXPECT_LT(std::abs(p.at(0, 0)), 1.0f);
}

TEST(Adam, MismatchedSizesRejected) {
  Matrix p(1, 2);
  Matrix g(1, 2);
  EXPECT_THROW(nn::Adam({&p}, {&g, &g}, {}), CheckError);
}

TEST(Adam, MultipleParamGroups) {
  Matrix p1(1, 1), p2(2, 2);
  p1.at(0, 0) = 4.0f;
  Matrix g1(1, 1), g2(2, 2);
  nn::Adam adam({&p1, &p2}, {&g1, &g2}, {.lr = 0.1f});
  g1.at(0, 0) = 1.0f;
  g2.fill(1.0f);
  adam.step();
  EXPECT_LT(p1.at(0, 0), 4.0f);
  EXPECT_LT(p2.at(0, 0), 0.0f);
}

} // namespace
} // namespace bnsgcn
