#!/usr/bin/env bash
# Tier-1 verify: configure, build everything (library, 20 benches,
# 4 examples, 26 test binaries) and run the full test suite.
set -euo pipefail

cd "$(dirname "$0")/.."

GENERATOR=()
if command -v ninja >/dev/null 2>&1; then
  GENERATOR=(-G Ninja)
fi

cmake -B build -S . "${GENERATOR[@]}"
cmake --build build -j
ctest --test-dir build --output-on-failure -j "$(nproc)"
