#include "comm/socket_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/check.hpp"

namespace bnsgcn::comm {

namespace {

void put_u32(std::vector<std::uint8_t>& buf, std::uint32_t v) {
  const auto off = buf.size();
  buf.resize(off + sizeof(v));
  std::memcpy(buf.data() + off, &v, sizeof(v));
}

void put_u64(std::vector<std::uint8_t>& buf, std::uint64_t v) {
  const auto off = buf.size();
  buf.resize(off + sizeof(v));
  std::memcpy(buf.data() + off, &v, sizeof(v));
}

template <typename T>
T get_pod(const std::uint8_t* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  BNSGCN_CHECK(flags >= 0);
  BNSGCN_CHECK(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0);
}

/// Blocking write of exactly n bytes (bootstrap hello only).
void write_all(int fd, const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (n > 0) {
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      BNSGCN_CHECK_MSG(false, "bootstrap write failed");
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

/// Blocking read of exactly n bytes (bootstrap hello only).
void read_exact(int fd, void* data, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(data);
  while (n > 0) {
    const ssize_t r = ::recv(fd, p, n, 0);
    if (r < 0 && errno == EINTR) continue;
    BNSGCN_CHECK_MSG(r > 0, "bootstrap read failed (peer closed early)");
    p += r;
    n -= static_cast<std::size_t>(r);
  }
}

struct ParsedTcp {
  in_addr host{};
  std::uint16_t port = 0;
};

ParsedTcp parse_tcp_addr(const std::string& addr) {
  const auto colon = addr.rfind(':');
  BNSGCN_CHECK_MSG(colon != std::string::npos, "tcp address needs host:port");
  ParsedTcp out;
  const std::string host = addr.substr(0, colon);
  BNSGCN_CHECK_MSG(::inet_pton(AF_INET, host.c_str(), &out.host) == 1,
                   "bad tcp host: " + host);
  const std::string port = addr.substr(colon + 1);
  BNSGCN_CHECK_MSG(
      !port.empty() && port.size() <= 5 &&
          port.find_first_not_of("0123456789") == std::string::npos,
      "bad tcp port: " + port);
  int value = 0;
  for (const char c : port) value = value * 10 + (c - '0');
  BNSGCN_CHECK_MSG(value <= 65535, "tcp port out of range: " + port);
  out.port = static_cast<std::uint16_t>(value);
  return out;
}

int dial(const SocketEndpoints& eps, PartId to) {
  const std::string& addr = eps.addrs[static_cast<std::size_t>(to)];
  // The listener is bound before any rank starts, so a refused connect
  // can only be transient scheduling noise — retry briefly.
  for (int attempt = 0;; ++attempt) {
    int fd = -1;
    int rc = -1;
    if (eps.kind == TransportKind::kUds) {
      fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      BNSGCN_CHECK(fd >= 0);
      sockaddr_un sa{};
      sa.sun_family = AF_UNIX;
      BNSGCN_CHECK_MSG(addr.size() < sizeof(sa.sun_path),
                       "uds path too long: " + addr);
      std::strncpy(sa.sun_path, addr.c_str(), sizeof(sa.sun_path) - 1);
      rc = ::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
    } else {
      fd = ::socket(AF_INET, SOCK_STREAM, 0);
      BNSGCN_CHECK(fd >= 0);
      const ParsedTcp t = parse_tcp_addr(addr);
      sockaddr_in sa{};
      sa.sin_family = AF_INET;
      sa.sin_addr = t.host;
      sa.sin_port = htons(t.port);
      rc = ::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
    }
    if (rc == 0) return fd;
    const int err = errno;
    ::close(fd);
    BNSGCN_CHECK_MSG(
        (err == ECONNREFUSED || err == ENOENT || err == EAGAIN ||
         err == EINTR) && attempt < 5000,
        "connect to rank " + std::to_string(to) + " failed: " +
            std::strerror(err));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

} // namespace

std::vector<std::uint8_t> encode_frame(const Frame& f) {
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderBytes + f.payload.size());
  put_u32(out, kFrameMagic);
  put_u32(out, static_cast<std::uint32_t>(f.kind));
  put_u32(out, static_cast<std::uint32_t>(f.tag));
  put_u64(out, static_cast<std::uint64_t>(f.payload.size()));
  out.insert(out.end(), f.payload.begin(), f.payload.end());
  return out;
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t n) {
  buf_.insert(buf_.end(), data, data + n);
}

bool FrameDecoder::pop(Frame& out) {
  BNSGCN_REQUIRE(pos_ <= buf_.size(),
                 "decoder consumed past the end of its buffer");
  if (buf_.size() - pos_ < kFrameHeaderBytes) return false;
  const std::uint8_t* h = buf_.data() + pos_;
  const auto magic = get_pod<std::uint32_t>(h);
  BNSGCN_CHECK_MSG(magic == kFrameMagic, "corrupt frame header");
  const auto kind = get_pod<std::uint32_t>(h + 4);
  BNSGCN_CHECK_MSG(kind <= static_cast<std::uint32_t>(FrameKind::kHaloDelta),
                   "corrupt frame kind");
  const auto nbytes = get_pod<std::uint64_t>(h + 12);
  if (buf_.size() - pos_ < kFrameHeaderBytes + nbytes) return false;
  out.kind = static_cast<FrameKind>(kind);
  out.tag = static_cast<int>(get_pod<std::uint32_t>(h + 8));
  out.payload.assign(h + kFrameHeaderBytes,
                     h + kFrameHeaderBytes + nbytes);
  pos_ += kFrameHeaderBytes + static_cast<std::size_t>(nbytes);
  // Compact once the consumed prefix dominates, keeping feed() amortised.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  return true;
}

Frame wire_to_frame(const Wire& msg) {
  Frame f;
  f.tag = msg.tag;
  const std::size_t id_bytes = msg.ids.size() * sizeof(NodeId);
  const std::size_t float_bytes = msg.floats.size() * sizeof(float);
  switch (msg.kind) {
    case WireKind::kIds:
      f.kind = FrameKind::kIds;
      f.payload.resize(id_bytes);
      if (id_bytes > 0)
        std::memcpy(f.payload.data(), msg.ids.data(), id_bytes);
      break;
    case WireKind::kFloats:
      f.kind = FrameKind::kFloats;
      f.payload.resize(float_bytes);
      if (float_bytes > 0)
        std::memcpy(f.payload.data(), msg.floats.data(), float_bytes);
      break;
    case WireKind::kHaloDelta:
      // u64 index count, then the index list, then the rows — the only
      // frame carrying two payload vectors, so the count makes the split
      // explicit (the receiver must not infer it from the row width).
      f.kind = FrameKind::kHaloDelta;
      f.payload.reserve(sizeof(std::uint64_t) + id_bytes + float_bytes);
      put_u64(f.payload, static_cast<std::uint64_t>(msg.ids.size()));
      f.payload.resize(sizeof(std::uint64_t) + id_bytes + float_bytes);
      if (id_bytes > 0)
        std::memcpy(f.payload.data() + sizeof(std::uint64_t), msg.ids.data(),
                    id_bytes);
      if (float_bytes > 0)
        std::memcpy(f.payload.data() + sizeof(std::uint64_t) + id_bytes,
                    msg.floats.data(), float_bytes);
      break;
  }
  return f;
}

Wire frame_to_wire(Frame f) {
  Wire msg;
  msg.tag = f.tag;
  if (f.kind == FrameKind::kIds) {
    msg.kind = WireKind::kIds;
    msg.ids.resize(f.payload.size() / sizeof(NodeId));
    if (!f.payload.empty())
      std::memcpy(msg.ids.data(), f.payload.data(), f.payload.size());
  } else if (f.kind == FrameKind::kHaloDelta) {
    msg.kind = WireKind::kHaloDelta;
    BNSGCN_CHECK(f.payload.size() >= sizeof(std::uint64_t));
    const auto nids = get_pod<std::uint64_t>(f.payload.data());
    const std::size_t id_bytes =
        static_cast<std::size_t>(nids) * sizeof(NodeId);
    BNSGCN_CHECK(f.payload.size() >= sizeof(std::uint64_t) + id_bytes);
    const std::size_t float_bytes =
        f.payload.size() - sizeof(std::uint64_t) - id_bytes;
    msg.ids.resize(static_cast<std::size_t>(nids));
    msg.floats.resize(float_bytes / sizeof(float));
    if (id_bytes > 0)
      std::memcpy(msg.ids.data(), f.payload.data() + sizeof(std::uint64_t),
                  id_bytes);
    if (float_bytes > 0)
      std::memcpy(msg.floats.data(),
                  f.payload.data() + sizeof(std::uint64_t) + id_bytes,
                  float_bytes);
  } else {
    BNSGCN_CHECK(f.kind == FrameKind::kFloats);
    msg.kind = WireKind::kFloats;
    msg.floats.resize(f.payload.size() / sizeof(float));
    if (!f.payload.empty())
      std::memcpy(msg.floats.data(), f.payload.data(), f.payload.size());
  }
  return msg;
}

SocketTransport::SocketTransport(PartId rank, const SocketEndpoints& eps,
                                 int listen_fd)
    : rank_(rank),
      nranks_(static_cast<PartId>(eps.addrs.size())),
      eps_(eps) {
  BNSGCN_CHECK(nranks_ >= 1 && rank_ >= 0 && rank_ < nranks_);
  peers_.resize(static_cast<std::size_t>(nranks_));
  connect_all(listen_fd);
}

void SocketTransport::connect_all(int listen_fd) {
  // Dial every rank below us; each connection opens with our rank hello.
  for (PartId j = 0; j < rank_; ++j) {
    const int fd = dial(eps_, j);
    const auto hello = static_cast<std::uint32_t>(rank_);
    write_all(fd, &hello, sizeof(hello));
    peers_[static_cast<std::size_t>(j)].fd = fd;
  }
  // Accept every rank above us; their hello says which peer slot.
  for (PartId k = rank_ + 1; k < nranks_; ++k) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    BNSGCN_CHECK_MSG(fd >= 0, "accept failed during bootstrap");
    std::uint32_t hello = 0;
    read_exact(fd, &hello, sizeof(hello));
    const auto from = static_cast<PartId>(hello);
    BNSGCN_CHECK(from > rank_ && from < nranks_);
    BNSGCN_CHECK(peers_[static_cast<std::size_t>(from)].fd < 0);
    peers_[static_cast<std::size_t>(from)].fd = fd;
  }
  if (listen_fd >= 0) ::close(listen_fd);
  for (auto& p : peers_) {
    if (p.fd < 0) continue;
    set_nonblocking(p.fd);
    if (eps_.kind == TransportKind::kTcp) {
      const int one = 1;
      ::setsockopt(p.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
  }
}

SocketTransport::~SocketTransport() {
  // Graceful teardown: our final sends may still sit in the user-space
  // queue (a peer's collective ack, the last halo slab); push them out —
  // bounded, so a dead peer cannot wedge destruction — then close.
  try {
    // lint: allow(raw-clock) — teardown flush deadline; never observed by
    // numeric state, only bounds how long destruction may block.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    for (;;) {
      bool dirty = false;
      for (const auto& p : peers_)
        if (p.fd >= 0 && !p.eof && !p.sendq.empty()) dirty = true;
      if (!dirty || stopped_) break;
      // lint: allow(raw-clock) — same teardown deadline as above.
      if (std::chrono::steady_clock::now() > deadline) break;
      progress(50);
    }
  } catch (...) {
    // Teardown must not throw; unflushed bytes surface as the peer's
    // ShutdownError, which is the best available signal anyway.
  }
  for (auto& p : peers_) {
    if (p.fd >= 0) ::close(p.fd);
    p.fd = -1;
  }
}

void SocketTransport::check_alive() const {
  if (stopped_) throw ShutdownError("socket fabric shut down");
}

void SocketTransport::read_peer(Peer& p) {
  std::uint8_t buf[65536];
  for (;;) {
    const ssize_t n = ::recv(p.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      p.decoder.feed(buf, static_cast<std::size_t>(n));
      if (n < static_cast<ssize_t>(sizeof(buf))) break;
      continue;
    }
    if (n == 0) { // orderly peer close
      p.eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    p.eof = true; // hard error: treat as disconnect
    break;
  }
  Frame f;
  while (p.decoder.pop(f)) p.inbox.push_back(std::move(f));
}

void SocketTransport::flush_peer(Peer& p) {
  while (!p.sendq.empty()) {
    const auto& front = p.sendq.front();
    BNSGCN_REQUIRE(p.send_off < front.size(),
                   "send cursor at or past the frame end");
    const ssize_t w = ::send(p.fd, front.data() + p.send_off,
                             front.size() - p.send_off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      p.eof = true; // EPIPE etc: peer is gone, nothing more to write
      p.sendq.clear();
      p.send_off = 0;
      return;
    }
    p.send_off += static_cast<std::size_t>(w);
    if (p.send_off == front.size()) {
      p.sendq.pop_front();
      p.send_off = 0;
    }
  }
}

void SocketTransport::progress(int timeout_ms) {
  std::vector<pollfd> pfds;
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    Peer& p = peers_[i];
    if (p.fd < 0) continue;
    short events = 0;
    if (!p.eof) events |= POLLIN;
    if (!p.sendq.empty()) events |= POLLOUT;
    if (events == 0) continue;
    pfds.push_back(pollfd{.fd = p.fd, .events = events, .revents = 0});
    idx.push_back(i);
  }
  if (pfds.empty()) return;
  const int rc = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()),
                        timeout_ms);
  if (rc < 0) {
    BNSGCN_CHECK(errno == EINTR);
    return;
  }
  if (rc == 0) return;
  for (std::size_t k = 0; k < pfds.size(); ++k) {
    Peer& p = peers_[idx[k]];
    const short re = pfds[k].revents;
    if (re & (POLLIN | POLLHUP | POLLERR)) read_peer(p);
    if ((re & POLLOUT) && !p.eof) flush_peer(p);
  }
}

void SocketTransport::send_frame(PartId to, Frame f) {
  check_alive();
  BNSGCN_CHECK(to >= 0 && to < nranks_ && to != rank_);
  BNSGCN_REQUIRE(f.tag != -1, "tag -1 belongs to no tag space");
  Peer& p = peers_[static_cast<std::size_t>(to)];
  if (p.eof || p.fd < 0)
    throw ShutdownError("rank " + std::to_string(rank_) +
                        ": peer rank " + std::to_string(to) +
                        " disconnected");
  p.sendq.push_back(encode_frame(f));
  flush_peer(p); // opportunistic; leftovers drain in progress()
}

bool SocketTransport::take_from_inbox(Peer& p, int tag, Frame& out) {
  const auto it =
      std::find_if(p.inbox.begin(), p.inbox.end(),
                   [tag](const Frame& f) { return f.tag == tag; });
  if (it == p.inbox.end()) return false;
  out = std::move(*it);
  p.inbox.erase(it);
  return true;
}

Frame SocketTransport::recv_frame(PartId from, int tag) {
  BNSGCN_CHECK(from >= 0 && from < nranks_ && from != rank_);
  // Tag spaces: point-to-point tags are non-negative (trainer sequence),
  // collective tags are <= -2 (next_coll_tag); -1 matches neither.
  BNSGCN_REQUIRE(tag != -1, "tag -1 belongs to no tag space");
  Peer& p = peers_[static_cast<std::size_t>(from)];
  Frame out;
  for (;;) {
    check_alive();
    if (take_from_inbox(p, tag, out)) return out;
    if (p.eof)
      throw ShutdownError("rank " + std::to_string(rank_) +
                          ": peer rank " + std::to_string(from) +
                          " disconnected with receives outstanding");
    // Blocks until any peer has events; also flushes our pending writes,
    // so a blocking receive can never starve the sends a peer needs to
    // make matching traffic.
    progress(-1);
  }
}

void SocketTransport::send(PartId from, PartId to, Wire msg) {
  BNSGCN_CHECK(from == rank_);
  send_frame(to, wire_to_frame(msg));
}

bool SocketTransport::try_recv(PartId rank, PartId from, int tag, Wire& out) {
  check_alive();
  BNSGCN_CHECK(rank == rank_);
  BNSGCN_CHECK(from >= 0 && from < nranks_ && from != rank_);
  Peer& p = peers_[static_cast<std::size_t>(from)];
  Frame f;
  if (take_from_inbox(p, tag, f)) {
    out = frame_to_wire(std::move(f));
    return true;
  }
  progress(0);
  if (take_from_inbox(p, tag, f)) {
    out = frame_to_wire(std::move(f));
    return true;
  }
  if (p.eof)
    throw ShutdownError("rank " + std::to_string(rank_) + ": peer rank " +
                        std::to_string(from) +
                        " disconnected with receives outstanding");
  return false;
}

Wire SocketTransport::recv(PartId rank, PartId from, int tag) {
  BNSGCN_CHECK(rank == rank_);
  return frame_to_wire(recv_frame(from, tag));
}

void SocketTransport::barrier(PartId rank) {
  BNSGCN_CHECK(rank == rank_);
  const int tag = next_coll_tag();
  // Hub barrier on rank 0: gather a ping from everyone, then release
  // everyone. Two hops, no fan-in races, deterministic.
  if (rank_ == 0) {
    for (PartId j = 1; j < nranks_; ++j) (void)recv_frame(j, tag);
    for (PartId j = 1; j < nranks_; ++j)
      send_frame(j, Frame{.kind = FrameKind::kEmpty, .tag = tag, .payload = {}});
  } else {
    send_frame(0, Frame{.kind = FrameKind::kEmpty, .tag = tag, .payload = {}});
    (void)recv_frame(0, tag);
  }
}

void SocketTransport::allreduce_sum(PartId rank, std::span<float> data) {
  BNSGCN_CHECK(rank == rank_);
  const int tag = next_coll_tag();
  Frame f;
  f.kind = FrameKind::kFloats;
  f.tag = tag;
  f.payload.resize(data.size() * sizeof(float));
  if (!f.payload.empty())
    std::memcpy(f.payload.data(), data.data(), f.payload.size());
  for (PartId j = 0; j < nranks_; ++j)
    if (j != rank_) send_frame(j, f);
  // Fold peers in ascending rank order skipping self — identical
  // reduction order to the mailbox backend, so sums are bit-equal.
  for (PartId j = 0; j < nranks_; ++j) {
    if (j == rank_) continue;
    const Frame r = recv_frame(j, tag);
    BNSGCN_CHECK(r.payload.size() == data.size() * sizeof(float));
    const auto* other = reinterpret_cast<const float*>(r.payload.data());
    for (std::size_t i = 0; i < data.size(); ++i) data[i] += other[i];
  }
}

double SocketTransport::allreduce_sum_scalar(PartId rank, double value) {
  BNSGCN_CHECK(rank == rank_);
  const int tag = next_coll_tag();
  Frame f;
  f.kind = FrameKind::kDoubles;
  f.tag = tag;
  f.payload.resize(sizeof(double));
  std::memcpy(f.payload.data(), &value, sizeof(double));
  for (PartId j = 0; j < nranks_; ++j)
    if (j != rank_) send_frame(j, f);
  // Mirror the mailbox slot fold: every contribution lands in a
  // rank-indexed slot and the sum runs over slots in rank order, self
  // included — the addition order is identical on every rank.
  std::vector<double> slots(static_cast<std::size_t>(nranks_), 0.0);
  slots[static_cast<std::size_t>(rank_)] = value;
  for (PartId j = 0; j < nranks_; ++j) {
    if (j == rank_) continue;
    const Frame r = recv_frame(j, tag);
    BNSGCN_CHECK(r.payload.size() == sizeof(double));
    std::memcpy(&slots[static_cast<std::size_t>(j)], r.payload.data(),
                sizeof(double));
  }
  double sum = 0.0;
  for (const double v : slots) sum += v;
  return sum;
}

double SocketTransport::allreduce_max_scalar(PartId rank, double value) {
  BNSGCN_CHECK(rank == rank_);
  const int tag = next_coll_tag();
  Frame f;
  f.kind = FrameKind::kDoubles;
  f.tag = tag;
  f.payload.resize(sizeof(double));
  std::memcpy(f.payload.data(), &value, sizeof(double));
  for (PartId j = 0; j < nranks_; ++j)
    if (j != rank_) send_frame(j, f);
  std::vector<double> slots(static_cast<std::size_t>(nranks_), 0.0);
  slots[static_cast<std::size_t>(rank_)] = value;
  for (PartId j = 0; j < nranks_; ++j) {
    if (j == rank_) continue;
    const Frame r = recv_frame(j, tag);
    BNSGCN_CHECK(r.payload.size() == sizeof(double));
    std::memcpy(&slots[static_cast<std::size_t>(j)], r.payload.data(),
                sizeof(double));
  }
  double mx = slots[0];
  for (const double v : slots) mx = std::max(mx, v);
  return mx;
}

std::vector<std::vector<NodeId>> SocketTransport::allgather_ids(
    PartId rank, std::vector<NodeId> ids) {
  BNSGCN_CHECK(rank == rank_);
  const int tag = next_coll_tag();
  Frame f;
  f.kind = FrameKind::kIds;
  f.tag = tag;
  f.payload.resize(ids.size() * sizeof(NodeId));
  if (!f.payload.empty())
    std::memcpy(f.payload.data(), ids.data(), f.payload.size());
  for (PartId j = 0; j < nranks_; ++j)
    if (j != rank_) send_frame(j, f);
  std::vector<std::vector<NodeId>> out(static_cast<std::size_t>(nranks_));
  out[static_cast<std::size_t>(rank_)] = std::move(ids);
  for (PartId j = 0; j < nranks_; ++j) {
    if (j == rank_) continue;
    Frame r = recv_frame(j, tag);
    auto& slot = out[static_cast<std::size_t>(j)];
    slot.resize(r.payload.size() / sizeof(NodeId));
    if (!r.payload.empty())
      std::memcpy(slot.data(), r.payload.data(), r.payload.size());
  }
  return out;
}

std::vector<std::vector<double>> SocketTransport::allgather_doubles(
    PartId rank, const std::vector<double>& vals) {
  BNSGCN_CHECK(rank == rank_);
  const int tag = next_coll_tag();
  Frame f;
  f.kind = FrameKind::kDoubles;
  f.tag = tag;
  f.payload.resize(vals.size() * sizeof(double));
  if (!f.payload.empty())
    std::memcpy(f.payload.data(), vals.data(), f.payload.size());
  for (PartId j = 0; j < nranks_; ++j)
    if (j != rank_) send_frame(j, f);
  std::vector<std::vector<double>> out(static_cast<std::size_t>(nranks_));
  out[static_cast<std::size_t>(rank_)] = vals;
  for (PartId j = 0; j < nranks_; ++j) {
    if (j == rank_) continue;
    Frame r = recv_frame(j, tag);
    auto& slot = out[static_cast<std::size_t>(j)];
    slot.resize(r.payload.size() / sizeof(double));
    if (!r.payload.empty())
      std::memcpy(slot.data(), r.payload.data(), r.payload.size());
  }
  return out;
}

void SocketTransport::shutdown(PartId /*rank*/) {
  stopped_ = true;
  for (auto& p : peers_) {
    if (p.fd >= 0) ::close(p.fd);
    p.fd = -1;
    p.eof = true;
    p.sendq.clear();
    p.send_off = 0;
  }
}

} // namespace bnsgcn::comm
