#pragma once

#include <vector>

#include "tensor/matrix.hpp"

namespace bnsgcn::nn {

/// Adam optimizer over an explicit parameter/gradient list (the models keep
/// gradients next to the weights; the trainer allreduces gradients before
/// calling step(), as in Algorithm 1 lines 14-15).
class Adam {
 public:
  struct Options {
    float lr = 0.01f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float eps = 1e-8f;
    float weight_decay = 0.0f;
  };

  Adam(std::vector<Matrix*> params, std::vector<Matrix*> grads,
       const Options& opts);

  /// One Adam update using the current gradient values.
  void step();

  void zero_grads();

  [[nodiscard]] const Options& options() const { return opts_; }
  void set_lr(float lr) { opts_.lr = lr; }

 private:
  Options opts_;
  std::vector<Matrix*> params_;
  std::vector<Matrix*> grads_;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
  std::int64_t t_ = 0;
};

} // namespace bnsgcn::nn
