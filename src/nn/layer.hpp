#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "tensor/matrix.hpp"

namespace bnsgcn::nn {

/// Adjacency from `n_src` source rows to `n_dst` destination rows.
///
/// In partition-parallel training, destinations are a partition's inner
/// nodes (local ids [0, n_dst)) and sources are inner nodes followed by the
/// (sampled) halo (ids [n_dst, n_src)). Minibatch trainers use it for their
/// layered blocks as well.
struct BipartiteCsr {
  NodeId n_dst = 0;
  NodeId n_src = 0;
  std::vector<EdgeId> offsets; // size n_dst + 1
  std::vector<NodeId> nbrs;    // values in [0, n_src)
  /// Optional per-edge multiplier (same indexing as nbrs). Used by the
  /// edge-sampling baselines (DropEdge / BES, Table 9) to keep the mean
  /// estimator unbiased: kept edges carry weight 1/keep_rate. Empty = all 1.
  std::vector<float> edge_scale;

  [[nodiscard]] EdgeId num_edges() const {
    return offsets.empty() ? 0 : offsets.back();
  }
  [[nodiscard]] NodeId degree(NodeId dst) const {
    return static_cast<NodeId>(offsets[static_cast<std::size_t>(dst) + 1] -
                               offsets[static_cast<std::size_t>(dst)]);
  }
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId dst) const {
    return {nbrs.data() + offsets[static_cast<std::size_t>(dst)],
            static_cast<std::size_t>(degree(dst))};
  }
  void validate() const;
};

/// Mean neighbor aggregation (Eq. 1 with a mean aggregator):
///   out[v,:] = inv_deg[v] * sum_{u in adj(v)} src[u,:]
/// `inv_deg` is supplied by the caller because under boundary-node sampling
/// the normalizer stays 1/full_degree (unbiasedness; DESIGN.md §3), which
/// the adjacency alone cannot know.
void mean_aggregate(const BipartiteCsr& adj, const Matrix& src,
                    std::span<const float> inv_deg, Matrix& out);

/// Backward of mean_aggregate: dsrc[u,:] += inv_deg[v] * dout[v,:].
/// `dsrc` must be pre-sized to (n_src, d) and is accumulated into.
void mean_aggregate_backward(const BipartiteCsr& adj, const Matrix& dout,
                             std::span<const float> inv_deg, Matrix& dsrc);

/// A GCN layer with manual forward/backward. One instance per rank (weights
/// are replicated and kept in sync by gradient allreduce).
class Layer {
 public:
  virtual ~Layer() = default;

  /// feats: (n_src, d_in) — inner rows first, then halo rows.
  /// Returns (n_dst, d_out). Caches whatever backward needs.
  virtual Matrix forward(const BipartiteCsr& adj, const Matrix& feats,
                         std::span<const float> inv_deg, bool training) = 0;

  /// dout: (n_dst, d_out). Returns dfeats (n_src, d_in); accumulates
  /// parameter gradients internally.
  virtual Matrix backward(const BipartiteCsr& adj, const Matrix& dout,
                          std::span<const float> inv_deg) = 0;

  [[nodiscard]] virtual std::vector<Matrix*> params() = 0;
  [[nodiscard]] virtual std::vector<Matrix*> grads() = 0;
  void zero_grads();

  [[nodiscard]] std::int64_t d_in() const { return d_in_; }
  [[nodiscard]] std::int64_t d_out() const { return d_out_; }

  /// Total parameter count (for the allreduce buffer).
  [[nodiscard]] std::int64_t num_params();

 protected:
  Layer(std::int64_t d_in, std::int64_t d_out) : d_in_(d_in), d_out_(d_out) {}
  std::int64_t d_in_;
  std::int64_t d_out_;
};

/// Flatten all gradients of a layer stack into one buffer (the paper's
/// single AllReduce per iteration) and scatter a buffer back into weights.
[[nodiscard]] std::vector<float> flatten_grads(
    const std::vector<std::unique_ptr<Layer>>& layers);
void apply_flat_grads(std::span<const float> flat,
                      const std::vector<std::unique_ptr<Layer>>& layers);

} // namespace bnsgcn::nn
