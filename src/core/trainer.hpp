#pragma once

#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "comm/fabric.hpp"
#include "core/boundary_sampler.hpp"
#include "core/local_graph.hpp"
#include "core/memory_model.hpp"
#include "graph/dataset.hpp"

namespace bnsgcn::core {

enum class ModelKind { kSage, kGat };

/// How the boundary exchanges are scheduled against compute
/// (docs/ARCHITECTURE.md §4). All three modes execute the identical fp
/// schedule — per-peer folds applied in fixed peer order — so results are
/// bit-exact across modes; the knob only moves where the trainer waits:
///  - kBlocking: wait for every peer right after posting (no overlap).
///  - kBulk: one wait_all after the halo-independent compute phase; the
///    exchange hides behind that single phase (the PR 2 pipeline).
///  - kStream: poll the completion set (comm::RequestSet) and fold each
///    peer's slab the moment it — and every earlier peer — has landed, so
///    the fold of peer k also hides the transfer of peers k+1..; this is
///    what shaves the slow-peer tail at large partition counts.
/// Ordered by how much wire time each can hide.
enum class OverlapMode : int { kBlocking = 0, kBulk = 1, kStream = 2 };

/// Per-epoch timing/traffic breakdown (Fig. 5 / Table 6 quantities).
/// Times are bulk-synchronous: max over ranks per phase. `compute_s` is
/// measured wall time of the local math; comm/reduce/swap are simulated
/// from exact byte counts via the CostModel (DESIGN.md §1).
struct EpochBreakdown {
  double compute_s = 0.0;
  double comm_s = 0.0;    // boundary feature/gradient exchange
  double reduce_s = 0.0;  // model-gradient allreduce
  double sample_s = 0.0;  // sampler: draw + index negotiation + compaction
  double swap_s = 0.0;    // ROC proxy only
  /// Exchange time hidden behind in-flight compute when
  /// communication–computation overlap is on (TrainerConfig::overlap):
  /// per exchange, min(simulated transfer time, measured in-flight
  /// compute), summed over the epoch's forward+backward exchanges and
  /// taken as the min over ranks (a conservative lower bound on what the
  /// pipeline hides). In bulk mode the in-flight compute is the
  /// halo-independent phase alone; in stream mode it additionally counts
  /// the per-peer folds performed while later peers were still on the
  /// wire, so stream's window is a superset of bulk's. Every backward
  /// exchange's window further includes the cross-layer-deferred
  /// parameter-gradient phase of the layer above (Layer::backward_params),
  /// which the trainer executes while that exchange is in flight. Always
  /// 0 in blocking mode, and never exceeds comm_s.
  double overlap_s = 0.0;
  /// Per-peer straggler metric: each exchange's slowest single peer
  /// message (simulated transfer time), summed over the epoch's exchanges,
  /// max over ranks. Deterministic (a pure function of the sampled
  /// exchange sets), unlike overlap_s. This is the long tail the stream
  /// schedule exists to hide: a bulk wait_all cannot release any fold
  /// until the comm_tail_s straggler lands.
  double comm_tail_s = 0.0;
  std::int64_t feature_bytes = 0; // global rx over all ranks
  std::int64_t grad_bytes = 0;
  std::int64_t control_bytes = 0;
  /// Halo-cache accounting (TrainerConfig::cache_mb; all zero when the
  /// cache is off). Counted on the receiving side and summed over ranks:
  /// hit rows were served from the local store instead of the wire,
  /// miss rows actually travelled. bytes_saved is the gross feature-byte
  /// saving (hit rows × row bytes); the index-list overhead the delta
  /// frames add is accounted honestly inside feature_bytes, so
  /// feature_bytes + bytes_saved equals the uncached volume plus that
  /// overhead. Deterministic (a pure function of the sampled plans), so
  /// replay-compared like the byte counters above.
  std::int64_t cache_hit_rows = 0;
  std::int64_t cache_miss_rows = 0;
  std::int64_t bytes_saved = 0;
  /// Whether comm/overlap/tail/reduce above are simulated from byte counts
  /// via the CostModel (mailbox fabric) or measured wall-clock spans
  /// (socket fabrics). compute_s/sample_s are measured either way.
  comm::TimingSource timing = comm::TimingSource::kSimulated;

  [[nodiscard]] double total_s() const {
    return compute_s + (comm_s - overlap_s) + reduce_s + sample_s + swap_s;
  }
};

struct EvalPoint {
  int epoch = 0;
  double val = 0.0;  // accuracy or micro-F1 (dataset-dependent)
  double test = 0.0;
  double train_loss = 0.0;
};

/// Streamed to the configured observer after every finished epoch, so
/// callers (the api layer, benches) can emit rows live instead of
/// post-processing a result. `eval` is set only on epochs that evaluated.
struct EpochSnapshot {
  int epoch = 0;  // 1-based epoch that just finished
  double train_loss = 0.0;
  EpochBreakdown breakdown;
  const EvalPoint* eval = nullptr;  // valid for the callback's duration only
};

/// Invoked from the training loop (rank 0's thread under BnsTrainer) once
/// per epoch, in epoch order. Must not block on other ranks.
using EpochObserver = std::function<void(const EpochSnapshot&)>;

/// Derived run metrics, shared by every result type (core::TrainResult and
/// api::RunReport) so the definitions exist exactly once.
[[nodiscard]] EpochBreakdown mean_breakdown(
    std::span<const EpochBreakdown> epochs);
/// Table 12 quantity: mean sampler time / mean total epoch time.
[[nodiscard]] double sampler_overhead(std::span<const EpochBreakdown> epochs);
/// Fig. 4 quantity under the cost model: epochs per simulated second.
[[nodiscard]] double throughput_eps(std::span<const EpochBreakdown> epochs);

/// Trained parameters of a layer stack, flattened in params() order (the
/// order build_model constructs and Adam/allreduce traverse). Captured by
/// TrainerConfig::capture_weights at the end of training and loaded back by
/// the serving engine (core/inference.hpp) — weights are replicated and
/// allreduce-synced, so one rank's snapshot is the whole model.
struct WeightSnapshot {
  std::vector<Matrix> params;

  [[nodiscard]] bool empty() const { return params.empty(); }
};

/// Configuration of a partition-parallel training run (Algorithm 1).
struct TrainerConfig {
  int num_layers = 2;
  std::int64_t hidden = 64;
  ModelKind model = ModelKind::kSage;
  int gat_heads = 1;
  float dropout = 0.0f;
  float lr = 0.01f;
  int epochs = 100;

  /// Boundary sampling: p for kBns (p=1 → vanilla partition parallelism,
  /// p=0 → fully isolated training), edge keep-rate q for the ablations.
  float sample_rate = 1.0f;
  SamplingVariant variant = SamplingVariant::kBns;
  /// 1/p (or 1/q) unbiased rescaling of sampled contributions.
  bool unbiased_scaling = true;

  /// Evaluate val/test every k epochs (0 = final epoch only). Evaluation
  /// always uses the full, unsampled exchange.
  int eval_every = 0;

  std::uint64_t seed = 1;
  /// Compute-normalized PCIe model by default (see CostModel::scaled_pcie3).
  comm::CostModel cost = comm::CostModel::scaled_pcie3();

  /// Boundary-exchange schedule (docs/ARCHITECTURE.md §4): blocking, bulk
  /// (one wait_all hidden behind the halo-independent phase) or stream
  /// (per-peer progressive folds driven by comm::RequestSet). Training
  /// results are bit-identical across all three — every mode executes the
  /// same split fp schedule with folds applied in fixed peer order; the
  /// knob only moves the waits — so the effect is purely
  /// EpochBreakdown::overlap_s lowering the simulated epoch time. SAGE
  /// and GAT both run the phased schedule (GAT's per-head linear
  /// transforms are its halo-independent phase); the CAGNET proxy ignores
  /// the knob (a dense broadcast has no halo-free portion), so it is safe
  /// for every method.
  OverlapMode overlap = OverlapMode::kBlocking;

  /// Chunk size (destination rows) of the halo-independent forward phase
  /// F1. 0 = one chunk covering every row (the PR 4 behavior). With a
  /// positive chunk the trainer polls the completion set between chunks,
  /// so in stream mode peer folds interleave *mid-F1* instead of queueing
  /// until F1 returns — the finer the chunks, the earlier an early peer's
  /// fold starts hiding the transfers still in flight. Training results
  /// are bit-identical for every value (F1 is row-independent and the
  /// fold targets are disjoint from the chunk targets — see nn::Layer);
  /// the knob only moves the poll points. Ignored outside the phased
  /// path. RunConfig.comm.inner_chunk_rows is the config-file spelling.
  NodeId inner_chunk_rows = 0;

  /// Kernel worker threads per rank (common::ThreadPool lanes inside each
  /// rank's tensor kernels). Results are bit-identical for every value —
  /// the pool's fixed-block decomposition preserves each output element's
  /// accumulation order (docs/ARCHITECTURE.md §6) — so this is purely a
  /// wall-clock knob. Each rank clamps its effective value to
  /// common::clamp_rank_threads(threads, nranks): P ranks × K lanes never
  /// oversubscribe hardware_concurrency, in both the threaded-mailbox and
  /// forked-process runtimes. RunConfig.trainer.threads is the config-file
  /// spelling (serialized as "threads", absent → 1).
  int threads = 1;

  /// Hot-boundary feature cache (core/halo_cache.hpp): per (peer, layer)
  /// row budget in MiB for caching boundary rows the remote rank already
  /// holds. 0 (default) disables the cache entirely. When enabled,
  /// layer-0 input features — epoch-invariant — are sent once and then
  /// referenced by index; capacity-bounded, frequency-ordered eviction
  /// keeps the hot rows resident. With cache_staleness == 0 results are
  /// bit-identical to the uncached path across every overlap mode, model
  /// and transport (only layer 0 caches, and its rows never change).
  /// RunConfig.comm.cache_mb is the config-file spelling; serialized only
  /// when nonzero (absent → disabled back-compat).
  std::int64_t cache_mb = 0;

  /// Staleness bound for caching the deeper layers' activations (an
  /// accuracy-vs-bytes knob the paper doesn't explore): a cached hidden
  /// row may be reused for up to this many epochs before it is refreshed.
  /// 0 (default) = exact — only the epoch-invariant layer-0 features
  /// cache, training results are untouched. Ignored unless cache_mb > 0.
  int cache_staleness = 0;

  /// Test-only: skip the rank×thread hardware clamp and run exactly
  /// `threads` lanes even when that oversubscribes the machine. This is
  /// how the parity/fuzz/TSAN suites exercise real multithreading on
  /// single-core CI boxes. Not serialized.
  bool threads_oversubscribe = false;

  /// Test-only: when nonzero, the fabric holds each deposited message back
  /// for a seeded-pseudorandom number of nonblocking probes
  /// (comm::Fabric::enable_delivery_shuffle), scrambling the completion
  /// order the streaming poll loop observes. Training results must not
  /// change — the deterministic fold rule buffers arrivals and applies
  /// them in fixed peer order — which is exactly what the schedule-fuzz
  /// harness asserts. Not serialized.
  std::uint64_t fabric_shuffle_seed = 0;

  /// ROC proxy: stage each layer's inner activations through a host swap
  /// channel (kSwap traffic), reproducing Fig. 1(b)'s CPU-GPU swaps.
  bool simulate_host_swap = false;

  /// Test-only: the named rank throws just before epoch 0's first forward
  /// exchange, exercising the fabric's deadlock-free shutdown path (peers
  /// must surface comm::ShutdownError instead of hanging in a blocking
  /// wait on the dead rank's sends). -1 disables. Not serialized.
  int fail_rank = -1;

  /// Optional per-epoch callback (see EpochSnapshot).
  EpochObserver observer;

  /// When set, rank 0 copies the trained parameters here after the last
  /// epoch (see WeightSnapshot) — the handoff from api::run to api::serve.
  /// Not serialized.
  WeightSnapshot* capture_weights = nullptr;
};

struct TrainResult {
  std::vector<double> train_loss;          // one per epoch (global mean)
  std::vector<EvalPoint> curve;            // eval_every snapshots
  double final_val = 0.0;
  double final_test = 0.0;
  std::vector<EpochBreakdown> epochs;
  MemoryReport memory;
  double wall_time_s = 0.0;

  [[nodiscard]] EpochBreakdown mean_epoch() const {
    return mean_breakdown(epochs);
  }
  [[nodiscard]] double sampler_overhead() const {
    return core::sampler_overhead(epochs);
  }
  [[nodiscard]] double throughput_eps() const {
    return core::throughput_eps(epochs);
  }
};

/// Construct the configured layer stack (replicated per rank; all ranks and
/// the single-process oracle build bit-identical initial weights for a given
/// seed). Exposed so the baselines share the exact model definition.
[[nodiscard]] std::vector<std::unique_ptr<nn::Layer>> build_model(
    const TrainerConfig& cfg, std::int64_t feat_dim, int num_classes,
    PartId rank);

/// BNS-GCN: partition-parallel full-graph training with random boundary-node
/// sampling (the paper's core contribution, Algorithm 1). Runs one thread
/// per partition over an in-process Fabric.
class BnsTrainer {
 public:
  BnsTrainer(const Dataset& ds, const Partitioning& part, TrainerConfig cfg);

  [[nodiscard]] TrainResult train();

  /// Run exactly one rank of the training loop against an externally
  /// constructed fabric — the multi-process runtime's entry point, where
  /// each OS process owns one rank of a socket fabric. The in-process
  /// train() is a thin wrapper: a mailbox fabric plus one thread per rank
  /// calling this. Only rank 0's result carries the aggregated curves and
  /// breakdowns (the loop's collectives reduce onto rank 0, exactly as in
  /// the threaded path); other ranks return a result that participated in
  /// those collectives but holds only their local view.
  [[nodiscard]] TrainResult train_rank(comm::Fabric& fabric, PartId rank);

  [[nodiscard]] const std::vector<LocalGraph>& local_graphs() const {
    return local_graphs_;
  }

 private:
  /// Post-loop collective bookkeeping for one rank: allgather the kept-halo
  /// fractions and (on rank 0) attach the memory-model report.
  void finalize_rank(comm::Endpoint& ep, double mean_kept_halo,
                     TrainResult& result) const;

  const Dataset& ds_;
  TrainerConfig cfg_;
  Partitioning part_;
  std::vector<LocalGraph> local_graphs_;
};

} // namespace bnsgcn::core
