#pragma once

#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/trainer.hpp"
#include "graph/dataset.hpp"

namespace bnsgcn::api {

/// Library-level dataset registry entry: a synthetic-generator preset
/// mirroring one of the paper's Table 3 datasets, paired with the Section 4
/// training hyperparameters at bench scale. Benches, examples and tests
/// all draw from here instead of duplicating the numbers.
struct DatasetPreset {
  std::string name;         // "reddit", "products", "yelp", "papers"
  std::string description;
  SyntheticSpec (*make_spec)(double scale) = nullptr;
  core::TrainerConfig trainer;  // per-dataset model/optimizer config
};

/// Built-in presets plus anything added via register_dataset. A deque so
/// registration never invalidates references returned by find_dataset.
[[nodiscard]] const std::deque<DatasetPreset>& dataset_registry();
[[nodiscard]] const DatasetPreset* find_dataset(std::string_view name);
/// Additive extension point (e.g. a new workload in a bench).
void register_dataset(DatasetPreset preset);

/// The registered per-dataset TrainerConfig (throws on unknown name).
[[nodiscard]] core::TrainerConfig preset_trainer_config(std::string_view name);

/// What dataset a run is over: a registry preset at some scale, or an
/// explicit generator spec.
struct DatasetSpec {
  std::string preset;  // registry name; ignored when `custom` is set
  double scale = 1.0;  // preset size multiplier
  std::optional<SyntheticSpec> custom;
};

/// Materialize the spec (throws on unknown preset name).
[[nodiscard]] Dataset make_dataset(const DatasetSpec& spec);

} // namespace bnsgcn::api
