#include "comm/mailbox_transport.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace bnsgcn::comm {

MailboxTransport::MailboxTransport(PartId nranks)
    : nranks_(nranks),
      barrier_(static_cast<std::size_t>(nranks)),
      reduce_slots_(static_cast<std::size_t>(nranks)),
      scalar_slots_(static_cast<std::size_t>(nranks), 0.0),
      gather_slots_(static_cast<std::size_t>(nranks)),
      dgather_slots_(static_cast<std::size_t>(nranks)) {
  BNSGCN_CHECK(nranks >= 1);
  mailboxes_.resize(static_cast<std::size_t>(nranks) *
                    static_cast<std::size_t>(nranks));
  for (auto& box : mailboxes_) box = std::make_unique<Mailbox>();
}

void MailboxTransport::check_alive() const {
  if (stopped_.load(std::memory_order_relaxed))
    throw ShutdownError("mailbox fabric shut down");
}

void MailboxTransport::enable_delivery_shuffle(std::uint64_t seed,
                                               int max_hold) {
  BNSGCN_CHECK(max_hold >= 1);
  shuffle_ = true;
  shuffle_seed_ = seed;
  shuffle_max_hold_ = max_hold;
}

int MailboxTransport::hold_of(PartId from, PartId to, int tag) const {
  if (!shuffle_) return 0;
  // splitmix64 over the message's stable identity (seed, from, to, tag) —
  // deliberately not a deposit counter, whose value would depend on the
  // interleaving of concurrent sender threads and make a failing fuzz
  // seed irreproducible. Tags are the trainer's per-phase sequence, so
  // (from, to, tag) names each boundary message uniquely within a run.
  std::uint64_t z = shuffle_seed_ ^
                    (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                         from)) << 42) ^
                    (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                         to)) << 21) ^
                    static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag));
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= z >> 31;
  return static_cast<int>(z % static_cast<std::uint64_t>(shuffle_max_hold_));
}

void MailboxTransport::send(PartId from, PartId to, Wire msg) {
  check_alive();
  msg.hold = hold_of(from, to, msg.tag);
  auto& box = mailbox(from, to);
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.queue.push_back(std::move(msg));
  }
  box.cv.notify_all();
}

bool MailboxTransport::try_recv(PartId rank, PartId from, int tag, Wire& out) {
  check_alive();
  auto& box = mailbox(from, rank);
  std::lock_guard<std::mutex> lock(box.mu);
  const auto it = std::find_if(box.queue.begin(), box.queue.end(),
                               [tag](const Wire& m) { return m.tag == tag; });
  if (it == box.queue.end()) return false;
  if (it->hold > 0) { // delivery shuffle: not yet "arrived" for probes
    --it->hold;
    return false;
  }
  out = std::move(*it);
  box.queue.erase(it);
  return true;
}

Wire MailboxTransport::recv(PartId rank, PartId from, int tag) {
  auto& box = mailbox(from, rank);
  std::unique_lock<std::mutex> lock(box.mu);
  for (;;) {
    if (stopped_.load(std::memory_order_relaxed))
      throw ShutdownError("mailbox fabric shut down");
    const auto it =
        std::find_if(box.queue.begin(), box.queue.end(),
                     [tag](const Wire& m) { return m.tag == tag; });
    if (it != box.queue.end()) {
      Wire msg = std::move(*it);
      box.queue.erase(it);
      return msg;
    }
    box.cv.wait(lock);
  }
}

void MailboxTransport::barrier(PartId /*rank*/) {
  try {
    barrier_.arrive_and_wait();
  } catch (const BarrierPoisoned&) {
    throw ShutdownError("mailbox fabric shut down");
  }
}

void MailboxTransport::allreduce_sum(PartId rank, std::span<float> data) {
  auto& slot = reduce_slots_[static_cast<std::size_t>(rank)];
  slot.assign(data.begin(), data.end());
  barrier(rank);
  // Every rank reads all slots; writes finished before the barrier. The
  // fold runs in ascending rank order skipping self — the deterministic
  // reduction order every backend must reproduce.
  for (PartId r = 0; r < nranks_; ++r) {
    if (r == rank) continue;
    const auto& other = reduce_slots_[static_cast<std::size_t>(r)];
    BNSGCN_CHECK(other.size() == data.size());
    for (std::size_t i = 0; i < data.size(); ++i) data[i] += other[i];
  }
  barrier(rank); // protect slots from the next collective
}

double MailboxTransport::allreduce_sum_scalar(PartId rank, double value) {
  scalar_slots_[static_cast<std::size_t>(rank)] = value;
  barrier(rank);
  double sum = 0.0;
  for (const double v : scalar_slots_) sum += v;
  barrier(rank);
  return sum;
}

double MailboxTransport::allreduce_max_scalar(PartId rank, double value) {
  scalar_slots_[static_cast<std::size_t>(rank)] = value;
  barrier(rank);
  double mx = scalar_slots_[0];
  for (const double v : scalar_slots_) mx = std::max(mx, v);
  barrier(rank);
  return mx;
}

std::vector<std::vector<NodeId>> MailboxTransport::allgather_ids(
    PartId rank, std::vector<NodeId> ids) {
  gather_slots_[static_cast<std::size_t>(rank)] = std::move(ids);
  barrier(rank);
  std::vector<std::vector<NodeId>> out(static_cast<std::size_t>(nranks_));
  for (PartId r = 0; r < nranks_; ++r)
    out[static_cast<std::size_t>(r)] =
        gather_slots_[static_cast<std::size_t>(r)];
  barrier(rank);
  return out;
}

std::vector<std::vector<double>> MailboxTransport::allgather_doubles(
    PartId rank, const std::vector<double>& vals) {
  dgather_slots_[static_cast<std::size_t>(rank)] = vals;
  barrier(rank);
  std::vector<std::vector<double>> out(static_cast<std::size_t>(nranks_));
  for (PartId r = 0; r < nranks_; ++r)
    out[static_cast<std::size_t>(r)] =
        dgather_slots_[static_cast<std::size_t>(r)];
  barrier(rank);
  return out;
}

void MailboxTransport::shutdown(PartId /*rank*/) {
  stopped_.store(true, std::memory_order_relaxed);
  for (auto& box : mailboxes_) {
    // Take the lock so a waiter between its predicate check and cv.wait
    // cannot miss the wakeup.
    std::lock_guard<std::mutex> lock(box->mu);
    box->cv.notify_all();
  }
  barrier_.poison();
}

} // namespace bnsgcn::comm
