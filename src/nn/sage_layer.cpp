#include "nn/sage_layer.hpp"

#include "tensor/ops.hpp"

namespace bnsgcn::nn {

SageLayer::SageLayer(std::int64_t d_in, std::int64_t d_out,
                     const Options& opts, Rng& rng)
    : Layer(d_in, d_out), opts_(opts), w_(2 * d_in, d_out), b_(1, d_out),
      dw_(2 * d_in, d_out), db_(1, d_out), dropout_rng_(rng.next_u64()) {
  ops::glorot_init(w_, rng);
}

Matrix SageLayer::forward(const BipartiteCsr& adj, const Matrix& feats,
                          std::span<const float> inv_deg, bool training) {
  BNSGCN_CHECK(feats.cols() == d_in_);
  BNSGCN_CHECK(feats.rows() == adj.n_src);
  cached_training_ = training;

  Matrix z;
  mean_aggregate(adj, feats, inv_deg, z);

  // Self features are the first n_dst rows of feats by the local-id layout.
  Matrix self(adj.n_dst, d_in_);
  std::copy(feats.data(), feats.data() + adj.n_dst * d_in_, self.data());

  ops::concat_cols(z, self, u_cache_);

  Matrix out(adj.n_dst, d_out_);
  ops::gemm_nn(u_cache_, w_, out);
  ops::add_row_bias(out, b_);

  if (opts_.relu) {
    ops::relu_forward(out, relu_mask_);
  }
  if (training && opts_.dropout > 0.0f) {
    ops::dropout_forward(out, dropout_mask_, opts_.dropout, dropout_rng_);
  } else {
    dropout_mask_.resize(0, 0);
  }
  return out;
}

Matrix SageLayer::backward(const BipartiteCsr& adj, const Matrix& dout,
                           std::span<const float> inv_deg) {
  BNSGCN_CHECK(dout.rows() == adj.n_dst && dout.cols() == d_out_);
  Matrix g = dout; // own a mutable copy of the incoming gradient

  if (cached_training_ && !dropout_mask_.empty()) {
    ops::dropout_backward(g, dropout_mask_);
  }
  if (opts_.relu) {
    ops::relu_backward(g, relu_mask_);
  }

  // Parameter gradients (accumulated: trainer zeroes between iterations).
  ops::gemm_tn(u_cache_, g, dw_, 1.0f, 1.0f);
  ops::col_sum(g, db_);

  // dU = g · Wᵀ, split into the aggregation half and the self half.
  Matrix du(adj.n_dst, 2 * d_in_);
  ops::gemm_nt(g, w_, du);
  Matrix dz;
  Matrix dself;
  ops::split_cols(du, dz, dself, d_in_);

  Matrix dfeats(adj.n_src, d_in_);
  // Self contribution: inner rows only.
  for (NodeId v = 0; v < adj.n_dst; ++v) {
    float* t = dfeats.data() + static_cast<std::int64_t>(v) * d_in_;
    const float* s = dself.data() + static_cast<std::int64_t>(v) * d_in_;
    for (std::int64_t c = 0; c < d_in_; ++c) t[c] += s[c];
  }
  mean_aggregate_backward(adj, dz, inv_deg, dfeats);
  return dfeats;
}

} // namespace bnsgcn::nn
