#include <gtest/gtest.h>

#include "graph/dataset.hpp"

namespace bnsgcn {
namespace {

TEST(Dataset, SyntheticSingleLabelShape) {
  SyntheticSpec spec;
  spec.n = 2000;
  spec.m = 20000;
  spec.communities = 8;
  spec.num_classes = 8;
  spec.feat_dim = 16;
  const Dataset ds = make_synthetic(spec);
  ds.validate();
  EXPECT_EQ(ds.num_nodes(), 2000);
  EXPECT_EQ(ds.feat_dim(), 16);
  EXPECT_FALSE(ds.multilabel);
  EXPECT_EQ(static_cast<NodeId>(ds.labels.size()), 2000);
}

TEST(Dataset, SplitsPartitionAllNodes) {
  SyntheticSpec spec;
  spec.n = 1000;
  spec.m = 8000;
  spec.communities = 4;
  spec.num_classes = 4;
  const Dataset ds = make_synthetic(spec);
  EXPECT_EQ(ds.train_nodes.size() + ds.val_nodes.size() + ds.test_nodes.size(),
            1000u);
  EXPECT_NEAR(static_cast<double>(ds.train_nodes.size()), 660.0, 2.0);
}

TEST(Dataset, FeaturesCarryClassSignal) {
  // Mean feature distance between same-class node pairs should be smaller
  // than between different-class pairs.
  SyntheticSpec spec;
  spec.n = 1000;
  spec.m = 5000;
  spec.communities = 4;
  spec.num_classes = 4;
  spec.feat_dim = 32;
  spec.feature_noise = 0.5;
  spec.label_noise = 0.0;
  const Dataset ds = make_synthetic(spec);

  auto dist = [&](NodeId a, NodeId b) {
    double acc = 0.0;
    for (std::int64_t c = 0; c < ds.feat_dim(); ++c) {
      const double d = ds.features.at(a, c) - ds.features.at(b, c);
      acc += d * d;
    }
    return acc;
  };
  double same = 0.0, diff = 0.0;
  int same_n = 0, diff_n = 0;
  Rng rng(1);
  for (int i = 0; i < 4000; ++i) {
    const auto a = static_cast<NodeId>(rng.next_below(1000));
    const auto b = static_cast<NodeId>(rng.next_below(1000));
    if (a == b) continue;
    if (ds.labels[static_cast<std::size_t>(a)] ==
        ds.labels[static_cast<std::size_t>(b)]) {
      same += dist(a, b);
      ++same_n;
    } else {
      diff += dist(a, b);
      ++diff_n;
    }
  }
  ASSERT_GT(same_n, 10);
  ASSERT_GT(diff_n, 10);
  EXPECT_LT(same / same_n, 0.7 * diff / diff_n);
}

TEST(Dataset, MultilabelShape) {
  SyntheticSpec spec;
  spec.n = 500;
  spec.m = 3000;
  spec.communities = 10;
  spec.num_classes = 10;
  spec.multilabel = true;
  spec.labels_per_node = 3;
  const Dataset ds = make_synthetic(spec);
  ds.validate();
  EXPECT_TRUE(ds.multilabel);
  EXPECT_EQ(ds.multilabels.rows(), 500);
  EXPECT_EQ(ds.multilabels.cols(), 10);
  // Every node has at least its primary label.
  for (NodeId v = 0; v < 500; ++v) {
    float sum = 0.0f;
    for (std::int64_t c = 0; c < 10; ++c) sum += ds.multilabels.at(v, c);
    EXPECT_GE(sum, 1.0f);
  }
}

TEST(Dataset, DeterministicForSeed) {
  SyntheticSpec spec;
  spec.n = 300;
  spec.m = 1000;
  spec.communities = 4;
  spec.num_classes = 4;
  spec.seed = 9;
  const Dataset a = make_synthetic(spec);
  const Dataset b = make_synthetic(spec);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.graph.nbrs, b.graph.nbrs);
  EXPECT_EQ(a.train_nodes, b.train_nodes);
}

TEST(Dataset, PresetsConstruct) {
  // Scaled-down presets must build valid datasets quickly.
  for (const auto& spec :
       {reddit_like(0.05), products_like(0.02), yelp_like(0.03),
        papers_like(0.01)}) {
    const Dataset ds = make_synthetic(spec);
    ds.validate();
    EXPECT_GT(ds.num_nodes(), 100);
    EXPECT_GT(ds.graph.num_arcs(), 100);
  }
}

TEST(Dataset, PresetShapesMatchPaperTable3) {
  EXPECT_EQ(reddit_like().num_classes, 41);
  EXPECT_EQ(products_like().num_classes, 47);
  EXPECT_TRUE(yelp_like().multilabel);
  EXPECT_EQ(papers_like().num_classes, 172);
  // ogbn-products' tiny train fraction drives the Fig. 7 overfitting study.
  EXPECT_NEAR(products_like().train_frac, 0.08, 1e-9);
}

} // namespace
} // namespace bnsgcn
