#include "api/serialize.hpp"

namespace bnsgcn::api {

json::Value to_json(const core::EpochBreakdown& e) {
  json::Value v = json::Value::object();
  v.set("compute_s", e.compute_s);
  v.set("comm_s", e.comm_s);
  v.set("reduce_s", e.reduce_s);
  v.set("sample_s", e.sample_s);
  v.set("swap_s", e.swap_s);
  v.set("feature_bytes", e.feature_bytes);
  v.set("grad_bytes", e.grad_bytes);
  v.set("control_bytes", e.control_bytes);
  return v;
}

core::EpochBreakdown breakdown_from_json(const json::Value& v) {
  core::EpochBreakdown e;
  e.compute_s = v.at("compute_s").as_double();
  e.comm_s = v.at("comm_s").as_double();
  e.reduce_s = v.at("reduce_s").as_double();
  e.sample_s = v.at("sample_s").as_double();
  e.swap_s = v.at("swap_s").as_double();
  e.feature_bytes = v.at("feature_bytes").as_int64();
  e.grad_bytes = v.at("grad_bytes").as_int64();
  e.control_bytes = v.at("control_bytes").as_int64();
  return e;
}

json::Value to_json(const core::EvalPoint& p) {
  json::Value v = json::Value::object();
  v.set("epoch", p.epoch);
  v.set("val", p.val);
  v.set("test", p.test);
  v.set("train_loss", p.train_loss);
  return v;
}

core::EvalPoint eval_point_from_json(const json::Value& v) {
  core::EvalPoint p;
  p.epoch = static_cast<int>(v.at("epoch").as_int64());
  p.val = v.at("val").as_double();
  p.test = v.at("test").as_double();
  p.train_loss = v.at("train_loss").as_double();
  return p;
}

json::Value to_json(const core::MemoryReport& m) {
  json::Value v = json::Value::object();
  json::Value model = json::Value::array();
  for (const double b : m.model_bytes) model.push_back(b);
  json::Value full = json::Value::array();
  for (const std::int64_t b : m.full_bytes) full.push_back(b);
  v.set("model_bytes", std::move(model));
  v.set("full_bytes", std::move(full));
  return v;
}

core::MemoryReport memory_from_json(const json::Value& v) {
  core::MemoryReport m;
  for (const auto& b : v.at("model_bytes").items())
    m.model_bytes.push_back(b.as_double());
  for (const auto& b : v.at("full_bytes").items())
    m.full_bytes.push_back(b.as_int64());
  return m;
}

json::Value to_json(const RunReport& r) {
  json::Value v = json::Value::object();
  v.set("method", r.method);
  v.set("dataset", r.dataset);
  json::Value loss = json::Value::array();
  for (const double l : r.train_loss) loss.push_back(l);
  v.set("train_loss", std::move(loss));
  json::Value curve = json::Value::array();
  for (const auto& p : r.curve) curve.push_back(to_json(p));
  v.set("curve", std::move(curve));
  v.set("final_val", r.final_val);
  v.set("final_test", r.final_test);
  json::Value epochs = json::Value::array();
  for (const auto& e : r.epochs) epochs.push_back(to_json(e));
  v.set("epochs", std::move(epochs));
  v.set("memory", to_json(r.memory));
  v.set("wall_time_s", r.wall_time_s);
  // Derived headline numbers, for consumers that only want the summary.
  json::Value derived = json::Value::object();
  derived.set("throughput_eps", r.throughput_eps());
  derived.set("sampler_overhead", r.sampler_overhead());
  derived.set("epoch_time_s", r.epoch_time_s());
  derived.set("total_train_s", r.total_train_s());
  v.set("derived", std::move(derived));
  return v;
}

RunReport run_report_from_json(const json::Value& v) {
  RunReport r;
  r.method = v.at("method").as_string();
  r.dataset = v.at("dataset").as_string();
  for (const auto& l : v.at("train_loss").items())
    r.train_loss.push_back(l.as_double());
  for (const auto& p : v.at("curve").items())
    r.curve.push_back(eval_point_from_json(p));
  r.final_val = v.at("final_val").as_double();
  r.final_test = v.at("final_test").as_double();
  for (const auto& e : v.at("epochs").items())
    r.epochs.push_back(breakdown_from_json(e));
  r.memory = memory_from_json(v.at("memory"));
  r.wall_time_s = v.at("wall_time_s").as_double();
  // "derived" is intentionally not read back: it is recomputed from the
  // stored fields by the accessors.
  return r;
}

std::string to_json_string(const RunReport& r, int indent) {
  return to_json(r).dump(indent);
}

RunReport run_report_from_json_string(std::string_view text) {
  return run_report_from_json(json::Value::parse(text));
}

} // namespace bnsgcn::api
