#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "tensor/ops.hpp"

namespace bnsgcn {
namespace {

TEST(Ops, GemmNnSmall) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  Matrix c(2, 2);
  ops::gemm_nn(a, b, c);
  EXPECT_FLOAT_EQ(c.at(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 50.0f);
}

TEST(Ops, GemmNnAlphaBeta) {
  Matrix a{{1, 0}, {0, 1}};
  Matrix b{{2, 3}, {4, 5}};
  Matrix c{{1, 1}, {1, 1}};
  ops::gemm_nn(a, b, c, 2.0f, 1.0f);
  EXPECT_FLOAT_EQ(c.at(0, 0), 5.0f);  // 1 + 2*2
  EXPECT_FLOAT_EQ(c.at(1, 1), 11.0f); // 1 + 2*5
}

TEST(Ops, GemmNnRowsBitIdenticalToFullGemmForAnyChunking) {
  // The chunked-stream F1 relies on gemm_nn_rows producing the exact bits
  // of the fused gemm_nn for every row split (the k-accumulation order is
  // independent of row blocking). Check several chunkings, including ones
  // that straddle the 64-row m-block boundary.
  Rng rng(3);
  Matrix a(150, 33);
  Matrix b(33, 17);
  a.randomize_gaussian(rng, 1.0f);
  b.randomize_gaussian(rng, 1.0f);
  Matrix full(150, 17);
  ops::gemm_nn(a, b, full);
  for (const std::int64_t chunk : {1, 7, 64, 100, 150}) {
    Matrix c(150, 17);
    for (std::int64_t r0 = 0; r0 < 150; r0 += chunk)
      ops::gemm_nn_rows(a, b, c, r0, std::min<std::int64_t>(150, r0 + chunk));
    for (std::int64_t i = 0; i < full.size(); ++i)
      ASSERT_EQ(c.data()[i], full.data()[i]) << "chunk " << chunk;
  }
}

TEST(Ops, GemmNnRowsTouchesOnlyTheAddressedRange) {
  // Rows outside [r0, r1) must be untouched (the chunked forward writes
  // the inner prefix of a larger output), and beta applies to the range
  // only.
  Rng rng(4);
  Matrix a(10, 5), b(5, 4);
  a.randomize_gaussian(rng, 1.0f);
  b.randomize_gaussian(rng, 1.0f);
  Matrix c(10, 4);
  for (std::int64_t i = 0; i < c.size(); ++i) c.data()[i] = 9.0f;
  ops::gemm_nn_rows(a, b, c, 2, 5);
  Matrix full(10, 4);
  ops::gemm_nn(a, b, full);
  for (std::int64_t i = 0; i < 10; ++i) {
    for (std::int64_t j = 0; j < 4; ++j) {
      if (i >= 2 && i < 5) {
        EXPECT_EQ(c.at(i, j), full.at(i, j));
      } else {
        EXPECT_EQ(c.at(i, j), 9.0f) << "row " << i << " clobbered";
      }
    }
  }
  EXPECT_THROW(ops::gemm_nn_rows(a, b, c, 5, 2), CheckError);
  EXPECT_THROW(ops::gemm_nn_rows(a, b, c, 0, 11), CheckError);
}

TEST(Ops, AddRowBiasRowsMatchesFullOnRange) {
  Matrix x{{1, 2}, {3, 4}, {5, 6}};
  Matrix bias{{10, 20}};
  ops::add_row_bias_rows(x, bias, 1, 2);
  EXPECT_FLOAT_EQ(x.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(x.at(1, 0), 13.0f);
  EXPECT_FLOAT_EQ(x.at(1, 1), 24.0f);
  EXPECT_FLOAT_EQ(x.at(2, 1), 6.0f);
}

TEST(Ops, GemmTnMatchesExplicitTranspose) {
  Rng rng(1);
  Matrix a(7, 3);
  Matrix b(7, 5);
  a.randomize_gaussian(rng, 1.0f);
  b.randomize_gaussian(rng, 1.0f);
  Matrix c(3, 5);
  ops::gemm_tn(a, b, c);
  // reference: c[k][n] = sum_i a[i][k] * b[i][n]
  for (std::int64_t k = 0; k < 3; ++k) {
    for (std::int64_t n = 0; n < 5; ++n) {
      float ref = 0.0f;
      for (std::int64_t i = 0; i < 7; ++i) ref += a.at(i, k) * b.at(i, n);
      EXPECT_NEAR(c.at(k, n), ref, 1e-4f);
    }
  }
}

TEST(Ops, GemmNtMatchesExplicitTranspose) {
  Rng rng(2);
  Matrix a(4, 6);
  Matrix b(3, 6);
  a.randomize_gaussian(rng, 1.0f);
  b.randomize_gaussian(rng, 1.0f);
  Matrix c(4, 3);
  ops::gemm_nt(a, b, c);
  for (std::int64_t i = 0; i < 4; ++i) {
    for (std::int64_t j = 0; j < 3; ++j) {
      float ref = 0.0f;
      for (std::int64_t t = 0; t < 6; ++t) ref += a.at(i, t) * b.at(j, t);
      EXPECT_NEAR(c.at(i, j), ref, 1e-4f);
    }
  }
}

TEST(Ops, GemmShapeMismatchThrows) {
  Matrix a(2, 3), b(4, 2), c(2, 2);
  EXPECT_THROW(ops::gemm_nn(a, b, c), CheckError);
}

TEST(Ops, GemmAssociativityWithIdentity) {
  Rng rng(3);
  Matrix a(5, 5);
  a.randomize_gaussian(rng, 1.0f);
  Matrix eye(5, 5);
  for (int i = 0; i < 5; ++i) eye.at(i, i) = 1.0f;
  Matrix c(5, 5);
  ops::gemm_nn(a, eye, c);
  EXPECT_LT(ops::max_abs_diff(a, c), 1e-6f);
}

TEST(Ops, AddAndAxpy) {
  Matrix a{{1, 2}};
  Matrix b{{3, 4}};
  ops::add_inplace(a, b);
  EXPECT_FLOAT_EQ(a.at(0, 1), 6.0f);
  ops::axpy(0.5f, b, a);
  EXPECT_FLOAT_EQ(a.at(0, 0), 5.5f);
}

TEST(Ops, AddRowBias) {
  Matrix x{{1, 1}, {2, 2}};
  Matrix b{{10, 20}};
  ops::add_row_bias(x, b);
  EXPECT_FLOAT_EQ(x.at(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(x.at(1, 1), 22.0f);
}

TEST(Ops, ColSum) {
  Matrix g{{1, 2}, {3, 4}, {5, 6}};
  Matrix out(1, 2);
  ops::col_sum(g, out);
  EXPECT_FLOAT_EQ(out.at(0, 0), 9.0f);
  EXPECT_FLOAT_EQ(out.at(0, 1), 12.0f);
}

TEST(Ops, ReluForwardBackward) {
  Matrix x{{-1, 2}, {3, -4}};
  Matrix mask;
  ops::relu_forward(x, mask);
  EXPECT_FLOAT_EQ(x.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(x.at(0, 1), 2.0f);
  Matrix g{{5, 5}, {5, 5}};
  ops::relu_backward(g, mask);
  EXPECT_FLOAT_EQ(g.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(g.at(0, 1), 5.0f);
  EXPECT_FLOAT_EQ(g.at(1, 0), 5.0f);
  EXPECT_FLOAT_EQ(g.at(1, 1), 0.0f);
}

TEST(Ops, LeakyRelu) {
  Matrix x{{-2, 4}};
  Matrix mask;
  ops::leaky_relu_forward(x, mask, 0.1f);
  EXPECT_NEAR(x.at(0, 0), -0.2f, 1e-6f);
  EXPECT_FLOAT_EQ(x.at(0, 1), 4.0f);
  Matrix g{{1, 1}};
  ops::leaky_relu_backward(g, mask);
  EXPECT_NEAR(g.at(0, 0), 0.1f, 1e-6f);
  EXPECT_FLOAT_EQ(g.at(0, 1), 1.0f);
}

TEST(Ops, DropoutZeroRateIsIdentity) {
  Matrix x{{1, 2, 3}};
  Matrix mask;
  Rng rng(1);
  ops::dropout_forward(x, mask, 0.0f, rng);
  EXPECT_FLOAT_EQ(x.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(mask.at(0, 2), 1.0f);
}

TEST(Ops, DropoutIsUnbiased) {
  // E[dropout(x)] == x with inverted scaling.
  Rng rng(2);
  constexpr int kTrials = 20000;
  double sum = 0.0;
  for (int i = 0; i < kTrials; ++i) {
    Matrix x{{1.0f}};
    Matrix mask;
    ops::dropout_forward(x, mask, 0.4f, rng);
    sum += x.at(0, 0);
  }
  EXPECT_NEAR(sum / kTrials, 1.0, 0.02);
}

TEST(Ops, SoftmaxRows) {
  Matrix x{{0, 0}, {1000, 1000}}; // second row tests overflow safety
  ops::softmax_rows(x);
  EXPECT_NEAR(x.at(0, 0), 0.5f, 1e-6f);
  EXPECT_NEAR(x.at(1, 0), 0.5f, 1e-6f);
}

TEST(Ops, GatherRows) {
  Matrix src{{1, 1}, {2, 2}, {3, 3}};
  std::vector<NodeId> idx{2, 0};
  Matrix out;
  ops::gather_rows(src, idx, out);
  EXPECT_EQ(out.rows(), 2);
  EXPECT_FLOAT_EQ(out.at(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(out.at(1, 0), 1.0f);
}

TEST(Ops, ScatterAddRows) {
  Matrix src{{1, 1}, {2, 2}};
  Matrix dst(3, 2);
  std::vector<NodeId> idx{1, 1};
  ops::scatter_add_rows(src, idx, dst);
  EXPECT_FLOAT_EQ(dst.at(1, 0), 3.0f);
  EXPECT_FLOAT_EQ(dst.at(0, 0), 0.0f);
}

TEST(Ops, GatherScatterRoundTrip) {
  Rng rng(4);
  Matrix src(10, 5);
  src.randomize_gaussian(rng, 1.0f);
  std::vector<NodeId> idx{0, 3, 7, 9};
  Matrix picked;
  ops::gather_rows(src, idx, picked);
  Matrix back(10, 5);
  ops::scatter_add_rows(picked, idx, back);
  for (const NodeId i : idx)
    for (std::int64_t c = 0; c < 5; ++c)
      EXPECT_FLOAT_EQ(back.at(i, c), src.at(i, c));
}

TEST(Ops, ConcatAndSplitColsRoundTrip) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5}, {6}};
  Matrix cat;
  ops::concat_cols(a, b, cat);
  EXPECT_EQ(cat.cols(), 3);
  EXPECT_FLOAT_EQ(cat.at(1, 2), 6.0f);
  Matrix a2, b2;
  ops::split_cols(cat, a2, b2, 2);
  EXPECT_LT(ops::max_abs_diff(a, a2), 1e-7f);
  EXPECT_LT(ops::max_abs_diff(b, b2), 1e-7f);
}

TEST(Ops, FrobeniusNorm) {
  Matrix a{{3, 4}};
  EXPECT_NEAR(ops::frobenius_norm_sq(a), 25.0, 1e-9);
}

} // namespace
} // namespace bnsgcn
