// Figures 7 & 9: test-score convergence curves for p ∈ {1, 0.1, 0.01, 0}.
// Expected shape: p=0.1/0.01 converge to the best score; p=1 can overfit
// (products-like has an 8% train split); p=0 converges worst and plateaus
// below the others.

#include "common.hpp"

namespace {

using namespace bnsgcn;

void run_dataset(const char* title, const char* preset, double scale,
                 PartId parts, const api::BenchOptions& opts,
                 bench::ReportSink& sink) {
  const auto pr = bench::load_preset(preset, scale, opts);
  std::printf("\n--- %s (%d partitions) ---\n", title, parts);
  api::RunConfig rcfg = pr.config(api::Method::kBns);
  rcfg.partition.nparts = parts; // partitioned once, cached across p
  rcfg.trainer.epochs = opts.epochs_or(100);
  rcfg.trainer.eval_every = std::max(1, rcfg.trainer.epochs / 12);

  std::printf("%-8s", "epoch");
  std::vector<std::vector<core::EvalPoint>> curves;
  for (const float p : {1.0f, 0.1f, 0.01f, 0.0f}) {
    rcfg.trainer.sample_rate = p;
    curves.push_back(sink.add(bench::label("%s p=%.2f", preset, p), rcfg,
                              api::run(pr.ds, rcfg))
                         .curve);
    std::printf("  p=%-8.2f", p);
  }
  std::printf("(test score %%)\n");
  for (std::size_t i = 0; i < curves[0].size(); ++i) {
    std::printf("%-8d", curves[0][i].epoch);
    for (const auto& curve : curves)
      std::printf("  %-10.2f", 100.0 * curve[i].test);
    std::printf("\n");
  }
}

} // namespace

int main(int argc, char** argv) {
  using namespace bnsgcn;
  const auto opts = api::parse_bench_args(argc, argv);
  bench::print_banner("Figures 7 & 9", "test-score convergence per p");
  bench::ReportSink sink("Figures 7 & 9", opts);
  const double s = opts.scale;
  run_dataset("ogbn-products-like", "products", 0.25 * s, 5, opts, sink);
  run_dataset("Reddit-like", "reddit", 0.4 * s, 4, opts, sink);
  run_dataset("Yelp-like (micro-F1)", "yelp", 0.4 * s, 6, opts, sink);
  std::printf("\npaper shape check: 0<p<1 >= p=1 at convergence; p=0 worst "
              "throughout.\n");
  return 0;
}
