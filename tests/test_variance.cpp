#include <gtest/gtest.h>

#include "core/variance.hpp"
#include "graph/generators.hpp"
#include "partition/metis_like.hpp"

namespace bnsgcn {
namespace {

core::VarianceReport run_report(float p, std::uint64_t seed = 1,
                                int trials = 120) {
  Rng rng(seed);
  const Csr g = gen::erdos_renyi(800, 9000, rng);
  const auto part = metis_like(g, 4);
  Matrix x(g.n, 8);
  x.randomize_gaussian(rng, 1.0f);
  return core::measure_variance(g, x, part, /*part_id=*/0, p, trials, seed);
}

TEST(Variance, SetSizeOrdering) {
  const auto rep = run_report(0.2f);
  // B_i ⊆ N_i ⊆ V (the containment Table 2's argument rests on).
  EXPECT_LT(rep.boundary_size, rep.neighbor_size);
  EXPECT_LT(rep.neighbor_size, rep.global_size);
  EXPECT_GT(rep.budget, 0);
}

TEST(Variance, BnsHasSmallestVariance) {
  // Table 2: at a matched budget, Var(BNS) < Var(LADIES) < Var(FastGCN).
  const auto rep = run_report(0.2f, 3, 200);
  EXPECT_LT(rep.bns, rep.ladies_like);
  EXPECT_LT(rep.ladies_like, rep.fastgcn_like);
}

TEST(Variance, BnsBeatsNeighborSampling) {
  const auto rep = run_report(0.2f, 5, 200);
  EXPECT_LT(rep.bns, rep.sage_like);
}

TEST(Variance, FullRateIsExact) {
  const auto rep = run_report(1.0f, 7, 20);
  EXPECT_NEAR(rep.bns, 0.0, 1e-9);
  // The other families still sample at the matched budget and keep error.
  EXPECT_GT(rep.fastgcn_like, 0.0);
}

TEST(Variance, VarianceShrinksWithP) {
  const auto low = run_report(0.1f, 9, 200);
  const auto high = run_report(0.5f, 9, 200);
  EXPECT_GT(low.bns, high.bns);
}

TEST(Variance, RejectsBadArguments) {
  Rng rng(1);
  const Csr g = gen::erdos_renyi(50, 200, rng);
  const auto part = random_partition(g.n, 2, rng);
  Matrix x(g.n, 4);
  EXPECT_THROW((void)core::measure_variance(g, x, part, 0, 0.0f, 10, 1),
               CheckError);
  EXPECT_THROW((void)core::measure_variance(g, x, part, 0, 0.5f, 0, 1),
               CheckError);
}

} // namespace
} // namespace bnsgcn
