#pragma once

#include <chrono>

namespace bnsgcn {

/// Monotonic wall-clock stopwatch with pause/resume accumulation.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Seconds since construction or last reset().
  [[nodiscard]] double elapsed_s() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  void reset() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates time across multiple start/stop windows; used for the
/// per-phase epoch breakdown (compute / communication / reduce / sample).
class Accumulator {
 public:
  void start() { watch_.reset(); }
  void stop() { total_s_ += watch_.elapsed_s(); }
  void add(double seconds) { total_s_ += seconds; }
  void reset() { total_s_ = 0.0; }
  [[nodiscard]] double seconds() const { return total_s_; }

 private:
  Stopwatch watch_;
  double total_s_ = 0.0;
};

/// RAII guard adding the scope's duration to an Accumulator.
class ScopedTimer {
 public:
  explicit ScopedTimer(Accumulator& acc) : acc_(acc) { acc_.start(); }
  ~ScopedTimer() { acc_.stop(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Accumulator& acc_;
};

} // namespace bnsgcn
