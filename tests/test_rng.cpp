#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hpp"

namespace bnsgcn {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.next_below(17);
    EXPECT_LT(v, 17u);
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double g = rng.next_gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sq / kN, 1.0, 0.03);
}

TEST(Rng, BernoulliRate) {
  Rng rng(17);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Rng, NextIntBoundsInclusive) {
  Rng rng(23);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, SampleWithoutReplacement) {
  Rng rng(31);
  const auto s = rng.sample_without_replacement(100, 30);
  ASSERT_EQ(s.size(), 30u);
  std::set<NodeId> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (const NodeId v : s) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
  EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
}

TEST(Rng, SampleWithoutReplacementFull) {
  Rng rng(37);
  const auto s = rng.sample_without_replacement(10, 10);
  ASSERT_EQ(s.size(), 10u);
  for (NodeId i = 0; i < 10; ++i) EXPECT_EQ(s[static_cast<std::size_t>(i)], i);
}

TEST(Rng, SampleWithoutReplacementUniform) {
  // Each element of [0,10) should appear in a 5-of-10 sample ~half the time.
  Rng rng(41);
  std::vector<int> counts(10, 0);
  constexpr int kTrials = 20000;
  for (int t = 0; t < kTrials; ++t) {
    for (const NodeId v : rng.sample_without_replacement(10, 5))
      ++counts[static_cast<std::size_t>(v)];
  }
  for (const int c : counts)
    EXPECT_NEAR(static_cast<double>(c) / kTrials, 0.5, 0.02);
}

TEST(Rng, SplitStreamsIndependent) {
  Rng base(5);
  Rng a = base.split(0);
  Rng b = base.split(1);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitIsDeterministic) {
  Rng base1(5), base2(5);
  Rng a = base1.split(3);
  Rng b = base2.split(3);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

} // namespace
} // namespace bnsgcn
