#pragma once

#include <iosfwd>
#include <vector>

#include "graph/csr.hpp"
#include "partition/partitioning.hpp"

namespace bnsgcn {

/// The quantities the paper reports about a partitioning:
///  - per-partition inner / boundary node counts and their ratio (Table 1),
///  - the boundary/inner ratio distribution (Fig. 3),
///  - total communication volume, which equals the total number of boundary
///    nodes (Eq. 3), plus the classic edge cut for comparison with min-cut
///    partitioners (Section 3.2 discussion).
struct PartitionStats {
  std::vector<NodeId> inner_count;     // |V_i|
  std::vector<NodeId> boundary_count;  // |B_i| — remote nodes needed by part i
  std::vector<EdgeId> send_volume;     // Vol(G_i) = sum_v D(v), v in part i
  EdgeId edge_cut = 0;                 // edges crossing partitions (undirected)
  EdgeId total_volume = 0;             // Eq. 3: sum_i |B_i| == sum_i Vol(G_i)

  [[nodiscard]] double ratio(PartId i) const {
    return static_cast<double>(boundary_count[static_cast<std::size_t>(i)]) /
           static_cast<double>(inner_count[static_cast<std::size_t>(i)]);
  }
  [[nodiscard]] double max_ratio() const;
  [[nodiscard]] double mean_ratio() const;
};

[[nodiscard]] PartitionStats compute_stats(const Csr& g,
                                           const Partitioning& part);

/// Render a Table-1-style report (one line per partition).
void print_stats(std::ostream& os, const PartitionStats& stats);

} // namespace bnsgcn
