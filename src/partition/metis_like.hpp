#pragma once

#include "common/rng.hpp"
#include "partition/partitioning.hpp"

namespace bnsgcn {

/// Options for the multilevel partitioner.
struct MetisLikeOptions {
  /// Allowed node-count imbalance: max part size <= ceil(n/nparts)*(1+eps).
  /// The paper's Goal-2 (balanced computation) maps to balanced node counts
  /// for GraphSAGE whose compute is dominated by the update step (Eq. 2).
  double balance_eps = 0.05;
  /// Stop coarsening when the coarse graph has at most this many nodes per
  /// partition (coarsest graph size = coarsen_target * nparts).
  NodeId coarsen_target = 60;
  /// FM-style refinement sweeps per level.
  int refine_passes = 6;
  std::uint64_t seed = 0xB5u;
};

/// Multilevel graph partitioner in the style of METIS (Karypis & Kumar 98):
///   1. coarsen by randomized heavy-edge matching until the graph is small,
///   2. partition the coarsest graph by greedy seeded growing (best of
///      several seeds, scored by communication volume),
///   3. uncoarsen, refining at every level with greedy boundary moves that
///      reduce edge cut under the balance constraint.
///
/// The paper configures METIS with the *minimum communication volume*
/// objective (= minimum total boundary nodes, its Eq. 3). Cut and volume are
/// tightly correlated on the clustered graphs used here; we refine on cut
/// (cheaper gain updates) and select initial partitions by volume. See
/// PartitionStats for both metrics.
[[nodiscard]] Partitioning metis_like(const Csr& g, PartId nparts,
                                      const MetisLikeOptions& opts = {});

} // namespace bnsgcn
