#pragma once

#include "nn/layer.hpp"

namespace bnsgcn::nn {

/// GraphSAGE layer with a mean aggregator (the paper's Section 2 instance):
///   z_v = mean_{u in N(v)} h_u                      (Eq. 1)
///   h'_v = act(W · concat(z_v, h_v) + b)            (Eq. 2)
/// Optional ReLU and inverted dropout on the output (hidden layers); the
/// final layer emits raw logits.
class SageLayer final : public Layer {
 public:
  struct Options {
    bool relu = true;
    float dropout = 0.0f;
  };

  SageLayer(std::int64_t d_in, std::int64_t d_out, const Options& opts,
            Rng& rng);

  Matrix forward(const BipartiteCsr& adj, const Matrix& feats,
                 std::span<const float> inv_deg, bool training) override;
  Matrix backward(const BipartiteCsr& adj, const Matrix& dout,
                  std::span<const float> inv_deg) override;

  // Split-phase protocol (see Layer): the mean aggregator decomposes into
  // an inner-source partial sum (chunked by destination row — each row's
  // work is independent, so any chunking is bit-exact) plus per-peer halo
  // folds (streamed through the slot→dst reverse incidence as each slab
  // lands, into a separate accumulator combined at finish so folds may
  // interleave mid-F1), and the backward scatter into disjoint inner/halo
  // target halves, so SAGE supports full streaming overlap. Parameter
  // gradients live in backward_params (the cross-layer-deferred B3 phase).
  [[nodiscard]] bool supports_phased() const override { return true; }
  void forward_inner_begin(const BipartiteCsr& adj, const Matrix& inner_feats,
                           bool training) override;
  void forward_inner_chunk(const BipartiteCsr& adj, NodeId row0,
                           NodeId row1) override;
  void forward_halo_begin(const BipartiteCsr& adj,
                          const HaloIncidence& inc) override;
  void forward_halo_fold(const BipartiteCsr& adj,
                         std::span<const NodeId> slots,
                         std::span<const float> rows) override;
  [[nodiscard]] Matrix forward_halo_finish(
      const BipartiteCsr& adj, std::span<const float> inv_deg) override;
  [[nodiscard]] Matrix backward_halo(const BipartiteCsr& adj,
                                     const Matrix& dout,
                                     std::span<const float> inv_deg) override;
  [[nodiscard]] Matrix backward_inner(
      const BipartiteCsr& adj, std::span<const float> inv_deg) override;
  void backward_params(const BipartiteCsr& adj) override;

  std::vector<Matrix*> params() override { return {&w_, &b_}; }
  std::vector<Matrix*> grads() override { return {&dw_, &db_}; }

  /// RNG used for dropout masks; reseeded per rank by the trainer.
  void set_dropout_rng(Rng rng) { dropout_rng_ = rng; }

 protected:
  void release_training_state() override;

 private:
  Options opts_;
  Matrix w_;  // (2*d_in, d_out)
  Matrix b_;  // (1, d_out)
  Matrix dw_;
  Matrix db_;
  Rng dropout_rng_;

  // Forward caches for backward.
  Matrix u_cache_;       // (n_dst, 2*d_in) — concat(z, h_self)
  Matrix relu_mask_;
  Matrix dropout_mask_;
  bool cached_training_ = false;

  // Split-phase scratch (valid between the calls of a phase group).
  Matrix z_partial_;     // forward: unnormalized inner-source sums
  Matrix z_halo_;        // forward: folded halo sums — separate from
                         // z_partial_ so folds may land mid-F1 without
                         // perturbing the per-row order; combined at finish
  const HaloIncidence* halo_inc_ = nullptr; // trainer-owned, set per epoch
                                            // by forward_halo_begin
  Matrix self_cache_;    // forward: the inner feature block
  Matrix out_partial_;   // forward: self·W_self + b, built in phase F1
  Matrix w_half_;        // staging copy of one d_in-row half of w_
  Matrix dz_cache_;      // backward: aggregation-half gradient
  Matrix dself_cache_;   // backward: self-half gradient
  Matrix g_cache_;       // backward: post-activation gradient (for dw/db)
};

} // namespace bnsgcn::nn
