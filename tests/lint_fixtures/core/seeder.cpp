// Fixture: unseeded randomness outside common/rng.
#include <random>

namespace fixture {

unsigned draw() {
  std::random_device rd;
  return rd();
}

unsigned draw_fixed() {
  // lint: allow(raw-random) — one-off fixture entropy, not a training path.
  std::mt19937 gen(42);
  return static_cast<unsigned>(gen());
}

} // namespace fixture
