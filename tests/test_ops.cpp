#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>

#include "common/thread_pool.hpp"
#include "nn/layer.hpp"
#include "tensor/ops.hpp"

namespace bnsgcn {
namespace {

TEST(Ops, GemmNnSmall) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  Matrix c(2, 2);
  ops::gemm_nn(a, b, c);
  EXPECT_FLOAT_EQ(c.at(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 50.0f);
}

TEST(Ops, GemmNnAlphaBeta) {
  Matrix a{{1, 0}, {0, 1}};
  Matrix b{{2, 3}, {4, 5}};
  Matrix c{{1, 1}, {1, 1}};
  ops::gemm_nn(a, b, c, 2.0f, 1.0f);
  EXPECT_FLOAT_EQ(c.at(0, 0), 5.0f);  // 1 + 2*2
  EXPECT_FLOAT_EQ(c.at(1, 1), 11.0f); // 1 + 2*5
}

TEST(Ops, GemmNnRowsBitIdenticalToFullGemmForAnyChunking) {
  // The chunked-stream F1 relies on gemm_nn_rows producing the exact bits
  // of the fused gemm_nn for every row split (the k-accumulation order is
  // independent of row blocking). Check several chunkings, including ones
  // that straddle the 64-row m-block boundary.
  Rng rng(3);
  Matrix a(150, 33);
  Matrix b(33, 17);
  a.randomize_gaussian(rng, 1.0f);
  b.randomize_gaussian(rng, 1.0f);
  Matrix full(150, 17);
  ops::gemm_nn(a, b, full);
  for (const std::int64_t chunk : {1, 7, 64, 100, 150}) {
    Matrix c(150, 17);
    for (std::int64_t r0 = 0; r0 < 150; r0 += chunk)
      ops::gemm_nn_rows(a, b, c, r0, std::min<std::int64_t>(150, r0 + chunk));
    for (std::int64_t i = 0; i < full.size(); ++i)
      ASSERT_EQ(c.data()[i], full.data()[i]) << "chunk " << chunk;
  }
}

TEST(Ops, GemmNnRowsTouchesOnlyTheAddressedRange) {
  // Rows outside [r0, r1) must be untouched (the chunked forward writes
  // the inner prefix of a larger output), and beta applies to the range
  // only.
  Rng rng(4);
  Matrix a(10, 5), b(5, 4);
  a.randomize_gaussian(rng, 1.0f);
  b.randomize_gaussian(rng, 1.0f);
  Matrix c(10, 4);
  for (std::int64_t i = 0; i < c.size(); ++i) c.data()[i] = 9.0f;
  ops::gemm_nn_rows(a, b, c, 2, 5);
  Matrix full(10, 4);
  ops::gemm_nn(a, b, full);
  for (std::int64_t i = 0; i < 10; ++i) {
    for (std::int64_t j = 0; j < 4; ++j) {
      if (i >= 2 && i < 5) {
        EXPECT_EQ(c.at(i, j), full.at(i, j));
      } else {
        EXPECT_EQ(c.at(i, j), 9.0f) << "row " << i << " clobbered";
      }
    }
  }
  EXPECT_THROW(ops::gemm_nn_rows(a, b, c, 5, 2), CheckError);
  EXPECT_THROW(ops::gemm_nn_rows(a, b, c, 0, 11), CheckError);
}

TEST(Ops, AddRowBiasRowsMatchesFullOnRange) {
  Matrix x{{1, 2}, {3, 4}, {5, 6}};
  Matrix bias{{10, 20}};
  ops::add_row_bias_rows(x, bias, 1, 2);
  EXPECT_FLOAT_EQ(x.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(x.at(1, 0), 13.0f);
  EXPECT_FLOAT_EQ(x.at(1, 1), 24.0f);
  EXPECT_FLOAT_EQ(x.at(2, 1), 6.0f);
}

TEST(Ops, GemmTnMatchesExplicitTranspose) {
  Rng rng(1);
  Matrix a(7, 3);
  Matrix b(7, 5);
  a.randomize_gaussian(rng, 1.0f);
  b.randomize_gaussian(rng, 1.0f);
  Matrix c(3, 5);
  ops::gemm_tn(a, b, c);
  // reference: c[k][n] = sum_i a[i][k] * b[i][n]
  for (std::int64_t k = 0; k < 3; ++k) {
    for (std::int64_t n = 0; n < 5; ++n) {
      float ref = 0.0f;
      for (std::int64_t i = 0; i < 7; ++i) ref += a.at(i, k) * b.at(i, n);
      EXPECT_NEAR(c.at(k, n), ref, 1e-4f);
    }
  }
}

TEST(Ops, GemmNtMatchesExplicitTranspose) {
  Rng rng(2);
  Matrix a(4, 6);
  Matrix b(3, 6);
  a.randomize_gaussian(rng, 1.0f);
  b.randomize_gaussian(rng, 1.0f);
  Matrix c(4, 3);
  ops::gemm_nt(a, b, c);
  for (std::int64_t i = 0; i < 4; ++i) {
    for (std::int64_t j = 0; j < 3; ++j) {
      float ref = 0.0f;
      for (std::int64_t t = 0; t < 6; ++t) ref += a.at(i, t) * b.at(j, t);
      EXPECT_NEAR(c.at(i, j), ref, 1e-4f);
    }
  }
}

TEST(Ops, GemmShapeMismatchThrows) {
  Matrix a(2, 3), b(4, 2), c(2, 2);
  EXPECT_THROW(ops::gemm_nn(a, b, c), CheckError);
}

TEST(Ops, GemmAssociativityWithIdentity) {
  Rng rng(3);
  Matrix a(5, 5);
  a.randomize_gaussian(rng, 1.0f);
  Matrix eye(5, 5);
  for (int i = 0; i < 5; ++i) eye.at(i, i) = 1.0f;
  Matrix c(5, 5);
  ops::gemm_nn(a, eye, c);
  EXPECT_LT(ops::max_abs_diff(a, c), 1e-6f);
}

TEST(Ops, AddAndAxpy) {
  Matrix a{{1, 2}};
  Matrix b{{3, 4}};
  ops::add_inplace(a, b);
  EXPECT_FLOAT_EQ(a.at(0, 1), 6.0f);
  ops::axpy(0.5f, b, a);
  EXPECT_FLOAT_EQ(a.at(0, 0), 5.5f);
}

TEST(Ops, AddRowBias) {
  Matrix x{{1, 1}, {2, 2}};
  Matrix b{{10, 20}};
  ops::add_row_bias(x, b);
  EXPECT_FLOAT_EQ(x.at(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(x.at(1, 1), 22.0f);
}

TEST(Ops, ColSum) {
  Matrix g{{1, 2}, {3, 4}, {5, 6}};
  Matrix out(1, 2);
  ops::col_sum(g, out);
  EXPECT_FLOAT_EQ(out.at(0, 0), 9.0f);
  EXPECT_FLOAT_EQ(out.at(0, 1), 12.0f);
}

TEST(Ops, ReluForwardBackward) {
  Matrix x{{-1, 2}, {3, -4}};
  Matrix mask;
  ops::relu_forward(x, mask);
  EXPECT_FLOAT_EQ(x.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(x.at(0, 1), 2.0f);
  Matrix g{{5, 5}, {5, 5}};
  ops::relu_backward(g, mask);
  EXPECT_FLOAT_EQ(g.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(g.at(0, 1), 5.0f);
  EXPECT_FLOAT_EQ(g.at(1, 0), 5.0f);
  EXPECT_FLOAT_EQ(g.at(1, 1), 0.0f);
}

TEST(Ops, LeakyRelu) {
  Matrix x{{-2, 4}};
  Matrix mask;
  ops::leaky_relu_forward(x, mask, 0.1f);
  EXPECT_NEAR(x.at(0, 0), -0.2f, 1e-6f);
  EXPECT_FLOAT_EQ(x.at(0, 1), 4.0f);
  Matrix g{{1, 1}};
  ops::leaky_relu_backward(g, mask);
  EXPECT_NEAR(g.at(0, 0), 0.1f, 1e-6f);
  EXPECT_FLOAT_EQ(g.at(0, 1), 1.0f);
}

TEST(Ops, DropoutZeroRateIsIdentity) {
  Matrix x{{1, 2, 3}};
  Matrix mask;
  Rng rng(1);
  ops::dropout_forward(x, mask, 0.0f, rng);
  EXPECT_FLOAT_EQ(x.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(mask.at(0, 2), 1.0f);
}

TEST(Ops, DropoutIsUnbiased) {
  // E[dropout(x)] == x with inverted scaling.
  Rng rng(2);
  constexpr int kTrials = 20000;
  double sum = 0.0;
  for (int i = 0; i < kTrials; ++i) {
    Matrix x{{1.0f}};
    Matrix mask;
    ops::dropout_forward(x, mask, 0.4f, rng);
    sum += x.at(0, 0);
  }
  EXPECT_NEAR(sum / kTrials, 1.0, 0.02);
}

TEST(Ops, SoftmaxRows) {
  Matrix x{{0, 0}, {1000, 1000}}; // second row tests overflow safety
  ops::softmax_rows(x);
  EXPECT_NEAR(x.at(0, 0), 0.5f, 1e-6f);
  EXPECT_NEAR(x.at(1, 0), 0.5f, 1e-6f);
}

TEST(Ops, GatherRows) {
  Matrix src{{1, 1}, {2, 2}, {3, 3}};
  std::vector<NodeId> idx{2, 0};
  Matrix out;
  ops::gather_rows(src, idx, out);
  EXPECT_EQ(out.rows(), 2);
  EXPECT_FLOAT_EQ(out.at(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(out.at(1, 0), 1.0f);
}

TEST(Ops, ScatterAddRows) {
  Matrix src{{1, 1}, {2, 2}};
  Matrix dst(3, 2);
  std::vector<NodeId> idx{1, 1};
  ops::scatter_add_rows(src, idx, dst);
  EXPECT_FLOAT_EQ(dst.at(1, 0), 3.0f);
  EXPECT_FLOAT_EQ(dst.at(0, 0), 0.0f);
}

TEST(Ops, GatherScatterRoundTrip) {
  Rng rng(4);
  Matrix src(10, 5);
  src.randomize_gaussian(rng, 1.0f);
  std::vector<NodeId> idx{0, 3, 7, 9};
  Matrix picked;
  ops::gather_rows(src, idx, picked);
  Matrix back(10, 5);
  ops::scatter_add_rows(picked, idx, back);
  for (const NodeId i : idx)
    for (std::int64_t c = 0; c < 5; ++c)
      EXPECT_FLOAT_EQ(back.at(i, c), src.at(i, c));
}

TEST(Ops, ConcatAndSplitColsRoundTrip) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5}, {6}};
  Matrix cat;
  ops::concat_cols(a, b, cat);
  EXPECT_EQ(cat.cols(), 3);
  EXPECT_FLOAT_EQ(cat.at(1, 2), 6.0f);
  Matrix a2, b2;
  ops::split_cols(cat, a2, b2, 2);
  EXPECT_LT(ops::max_abs_diff(a, a2), 1e-7f);
  EXPECT_LT(ops::max_abs_diff(b, b2), 1e-7f);
}

TEST(Ops, FrobeniusNorm) {
  Matrix a{{3, 4}};
  EXPECT_NEAR(ops::frobenius_norm_sq(a), 25.0, 1e-9);
}

// ---------------------------------------------------------------------------
// Threads-axis parity matrix: every pooled kernel must be bit-identical to
// its K=1 scalar path for every thread count. The shapes are deliberately
// ragged — row/column counts that leave a tail block smaller than the
// 64-wide parallel grain — so the block decomposition's edge cases are in
// play, and K=7 exceeds this machine's cores, so lanes genuinely interleave.
// Comparison is through bit_cast: even a -0.0f vs +0.0f drift fails.
// ---------------------------------------------------------------------------

constexpr int kParityThreads[] = {1, 2, 3, 7};

void expect_bits_equal(const Matrix& got, const Matrix& want, int threads,
                       const char* what) {
  ASSERT_EQ(got.rows(), want.rows()) << what;
  ASSERT_EQ(got.cols(), want.cols()) << what;
  for (std::int64_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint32_t>(got.data()[i]),
              std::bit_cast<std::uint32_t>(want.data()[i]))
        << what << " diverges at flat index " << i << " with " << threads
        << " threads";
  }
}

/// Runs `fill` at K=1 and at each K in kParityThreads, comparing outputs
/// bitwise. `fill` must write its result into the passed matrix.
template <typename Fill>
void check_threads_parity(const char* what, Fill&& fill) {
  Matrix ref;
  common::set_ops_threads(1);
  fill(ref);
  for (const int k : kParityThreads) {
    Matrix got;
    common::set_ops_threads(k);
    fill(got);
    common::set_ops_threads(1);
    expect_bits_equal(got, ref, k, what);
  }
}

TEST(OpsThreadsParity, GemmNn) {
  Rng rng(11);
  Matrix a(201, 33), b(33, 17);
  a.randomize_gaussian(rng, 1.0f);
  b.randomize_gaussian(rng, 1.0f);
  // A few exact zeros so the av==0 skip is exercised under threading.
  a.data()[5] = 0.0f;
  a.data()[700] = -0.0f;
  check_threads_parity("gemm_nn", [&](Matrix& c) {
    c.resize(201, 17);
    ops::gemm_nn(a, b, c);
  });
  check_threads_parity("gemm_nn alpha/beta", [&](Matrix& c) {
    c.resize(201, 17);
    c.fill(0.5f);
    ops::gemm_nn(a, b, c, 0.7f, 2.0f);
  });
}

TEST(OpsThreadsParity, GemmNnRowsRangeSemantics) {
  // Under threading, gemm_nn_rows must still write rows [r0, r1) only and
  // produce the bits of the fused full-shape call on that range.
  Rng rng(12);
  Matrix a(180, 29), b(29, 13);
  a.randomize_gaussian(rng, 1.0f);
  b.randomize_gaussian(rng, 1.0f);
  Matrix full(180, 13);
  common::set_ops_threads(1);
  ops::gemm_nn(a, b, full);
  for (const int k : kParityThreads) {
    common::set_ops_threads(k);
    Matrix c(180, 13);
    for (std::int64_t i = 0; i < c.size(); ++i) c.data()[i] = 9.0f;
    ops::gemm_nn_rows(a, b, c, 30, 170);
    common::set_ops_threads(1);
    for (std::int64_t i = 0; i < 180; ++i) {
      for (std::int64_t j = 0; j < 13; ++j) {
        if (i >= 30 && i < 170) {
          ASSERT_EQ(std::bit_cast<std::uint32_t>(c.at(i, j)),
                    std::bit_cast<std::uint32_t>(full.at(i, j)))
              << "row " << i << " threads " << k;
        } else {
          ASSERT_EQ(c.at(i, j), 9.0f)
              << "row " << i << " clobbered with " << k << " threads";
        }
      }
    }
  }
}

TEST(OpsThreadsParity, GemmNnRowsChunkingTimesThreads) {
  // The chunked-stream F1 calls gemm_nn_rows with chunks as small as one
  // row; chunking and threading must compose bit-exactly.
  Rng rng(13);
  Matrix a(150, 33), b(33, 17);
  a.randomize_gaussian(rng, 1.0f);
  b.randomize_gaussian(rng, 1.0f);
  Matrix full(150, 17);
  common::set_ops_threads(1);
  ops::gemm_nn(a, b, full);
  for (const int k : kParityThreads) {
    for (const std::int64_t chunk : {1, 7, 64, 150}) {
      common::set_ops_threads(k);
      Matrix c(150, 17);
      for (std::int64_t r0 = 0; r0 < 150; r0 += chunk)
        ops::gemm_nn_rows(a, b, c, r0, std::min<std::int64_t>(150, r0 + chunk));
      common::set_ops_threads(1);
      expect_bits_equal(c, full, k, "gemm_nn_rows chunked");
    }
  }
}

TEST(OpsThreadsParity, GemmTn) {
  // k=150 splits the kk axis into 64+64+22; the i loop stays outermost in
  // every lane so each element's ascending-i accumulation (including the
  // av==0 skips) is the scalar kernel's.
  Rng rng(14);
  Matrix a(90, 150), b(90, 40);
  a.randomize_gaussian(rng, 1.0f);
  b.randomize_gaussian(rng, 1.0f);
  a.data()[40] = 0.0f;
  check_threads_parity("gemm_tn", [&](Matrix& c) {
    c.resize(150, 40);
    ops::gemm_tn(a, b, c);
  });
  check_threads_parity("gemm_tn beta=1 accumulate", [&](Matrix& c) {
    c.resize(150, 40);
    c.fill(0.25f);
    ops::gemm_tn(a, b, c, 1.0f, 1.0f);
  });
}

TEST(OpsThreadsParity, GemmNt) {
  Rng rng(15);
  Matrix a(201, 23), b(31, 23);
  a.randomize_gaussian(rng, 1.0f);
  b.randomize_gaussian(rng, 1.0f);
  check_threads_parity("gemm_nt", [&](Matrix& c) {
    c.resize(201, 31);
    ops::gemm_nt(a, b, c, 0.9f, 0.0f);
  });
}

TEST(OpsThreadsParity, GatherAndScatter) {
  Rng rng(16);
  Matrix src(50, 100);
  src.randomize_gaussian(rng, 1.0f);
  std::vector<NodeId> idx;
  for (int i = 0; i < 333; ++i)
    idx.push_back(static_cast<NodeId>((i * 17 + 3) % 50)); // repeats
  check_threads_parity("gather_rows", [&](Matrix& out) {
    ops::gather_rows(src, idx, out);
  });
  Matrix rows(static_cast<std::int64_t>(idx.size()), 100);
  rows.randomize_gaussian(rng, 1.0f);
  check_threads_parity("scatter_add_rows", [&](Matrix& dst) {
    dst.resize(50, 100);
    dst.fill(0.125f);
    ops::scatter_add_rows(rows, idx, dst);
  });
}

// Random bipartite graph with a ragged feature width and optional edge
// scales — the aggregate kernels' parity fixture.
nn::BipartiteCsr random_adj(Rng& rng, NodeId n_dst, NodeId n_src,
                            bool weighted) {
  nn::BipartiteCsr adj;
  adj.n_dst = n_dst;
  adj.n_src = n_src;
  adj.offsets.push_back(0);
  for (NodeId v = 0; v < n_dst; ++v) {
    const int deg = static_cast<int>(rng.next_u64() % 9); // some zero-degree
    for (int e = 0; e < deg; ++e)
      adj.nbrs.push_back(static_cast<NodeId>(rng.next_u64() %
                                             static_cast<std::uint64_t>(n_src)));
    adj.offsets.push_back(static_cast<EdgeId>(adj.nbrs.size()));
  }
  if (weighted) {
    for (std::size_t e = 0; e < adj.nbrs.size(); ++e)
      adj.edge_scale.push_back(0.5f + rng.next_float());
  }
  adj.validate();
  return adj;
}

std::vector<float> inv_degrees(const nn::BipartiteCsr& adj) {
  std::vector<float> inv(static_cast<std::size_t>(adj.n_dst), 0.0f);
  for (NodeId v = 0; v < adj.n_dst; ++v) {
    const auto deg = adj.offsets[static_cast<std::size_t>(v) + 1] -
                     adj.offsets[static_cast<std::size_t>(v)];
    if (deg > 0) inv[static_cast<std::size_t>(v)] = 1.0f / static_cast<float>(deg);
  }
  return inv;
}

TEST(OpsThreadsParity, MeanAggregateFamily) {
  for (const bool weighted : {false, true}) {
    Rng rng(weighted ? 18 : 17);
    const NodeId n_dst = 170, n_src = 140, n_lo = 110;
    const std::int64_t d = 100; // column tail of 36 under the 64 grain
    const auto adj = random_adj(rng, n_dst, n_src, weighted);
    const auto inv = inv_degrees(adj);
    Matrix src(n_src, d), inner(n_lo, d), dout(n_dst, d);
    src.randomize_gaussian(rng, 1.0f);
    inner.randomize_gaussian(rng, 1.0f);
    dout.randomize_gaussian(rng, 1.0f);

    check_threads_parity("mean_aggregate", [&](Matrix& out) {
      nn::mean_aggregate(adj, src, inv, out);
    });
    check_threads_parity("mean_aggregate_inner_rows", [&](Matrix& out) {
      out.resize(n_dst, d);
      out.zero();
      nn::mean_aggregate_inner_rows(adj, inner, 20, 160, out);
    });
    check_threads_parity("mean_aggregate_backward", [&](Matrix& dsrc) {
      dsrc.resize(n_src, d);
      dsrc.zero();
      nn::mean_aggregate_backward(adj, dout, inv, dsrc);
    });
    check_threads_parity("mean_aggregate_backward_halo", [&](Matrix& dhalo) {
      dhalo.resize(n_src - n_lo, d);
      dhalo.zero();
      nn::mean_aggregate_backward_halo(adj, dout, inv, n_lo, dhalo);
    });
    check_threads_parity("mean_aggregate_backward_inner", [&](Matrix& di) {
      di.resize(n_lo, d);
      di.zero();
      nn::mean_aggregate_backward_inner(adj, dout, inv, n_lo, di);
    });

    nn::HaloIncidence inc;
    inc.build(adj, n_lo);
    std::vector<NodeId> slots;
    for (NodeId s = 0; s < inc.n_halo; s += 2) slots.push_back(s);
    Matrix halo_rows(static_cast<std::int64_t>(slots.size()), d);
    halo_rows.randomize_gaussian(rng, 1.0f);
    const std::span<const float> rows_span(
        halo_rows.data(), static_cast<std::size_t>(halo_rows.size()));
    check_threads_parity("mean_aggregate_halo_fold", [&](Matrix& out) {
      out.resize(n_dst, d);
      out.fill(0.0625f);
      nn::mean_aggregate_halo_fold(inc, slots, rows_span, d, out);
    });
    check_threads_parity("mean_aggregate_finish", [&](Matrix& out) {
      out.resize(n_dst, d);
      out.fill(3.0f);
      nn::mean_aggregate_finish(inv, out);
    });
  }
}

} // namespace
} // namespace bnsgcn
