#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>

#include "common/alias_table.hpp"
#include "common/check.hpp"

namespace bnsgcn::gen {

Csr erdos_renyi(NodeId n, EdgeId m, Rng& rng) {
  BNSGCN_CHECK(n >= 2);
  CooBuilder b(n);
  b.reserve(static_cast<std::size_t>(m));
  for (EdgeId e = 0; e < m; ++e) {
    const auto u = static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(n)));
    auto v = static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (u == v) v = (v + 1) % n;
    b.add_edge(u, v);
  }
  return b.build();
}

Csr rmat(NodeId n, EdgeId m, Rng& rng, const RmatParams& p) {
  BNSGCN_CHECK(n >= 2);
  int levels = 0;
  while ((NodeId{1} << levels) < n) ++levels;
  CooBuilder b(n);
  b.reserve(static_cast<std::size_t>(m));
  const double d = 1.0 - p.a - p.b - p.c;
  BNSGCN_CHECK_MSG(d > 0.0, "rmat quadrant probs must sum to < 1");
  for (EdgeId e = 0; e < m; ++e) {
    NodeId u = 0, v = 0;
    for (int level = 0; level < levels; ++level) {
      const double r = rng.next_double();
      const NodeId bit = NodeId{1} << (levels - 1 - level);
      if (r < p.a) {
        // top-left: no bits set
      } else if (r < p.a + p.b) {
        v |= bit;
      } else if (r < p.a + p.b + p.c) {
        u |= bit;
      } else {
        u |= bit;
        v |= bit;
      }
    }
    // Trim overflow from the power-of-two rounding by folding.
    u = static_cast<NodeId>(u % n);
    v = static_cast<NodeId>(v % n);
    if (u != v) b.add_edge(u, v);
  }
  return b.build();
}

Csr barabasi_albert(NodeId n, NodeId attach, Rng& rng) {
  BNSGCN_CHECK(n > attach && attach >= 1);
  CooBuilder b(n);
  // Repeated-endpoint list implements preferential attachment in O(1).
  std::vector<NodeId> endpoints;
  endpoints.reserve(static_cast<std::size_t>(2 * n * attach));
  // Seed clique over the first attach+1 nodes.
  for (NodeId u = 0; u <= attach; ++u) {
    for (NodeId v = u + 1; v <= attach; ++v) {
      b.add_edge(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  for (NodeId v = attach + 1; v < n; ++v) {
    for (NodeId k = 0; k < attach; ++k) {
      const NodeId u = endpoints[static_cast<std::size_t>(
          rng.next_below(endpoints.size()))];
      if (u == v) continue;
      b.add_edge(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  return b.build();
}

PlantedPartition planted_partition(const PlantedPartitionParams& params,
                                   Rng& rng) {
  BNSGCN_CHECK(params.n >= params.communities && params.communities >= 1);
  BNSGCN_CHECK(params.p_intra >= 0.0 && params.p_intra <= 1.0);

  PlantedPartition out;
  out.community.resize(static_cast<std::size_t>(params.n));
  // Contiguous equal-size communities; the partitioners never see these
  // labels, so contiguity costs no generality.
  std::vector<std::vector<NodeId>> members(
      static_cast<std::size_t>(params.communities));
  for (NodeId v = 0; v < params.n; ++v) {
    const int c = static_cast<int>(
        (static_cast<std::int64_t>(v) * params.communities) / params.n);
    out.community[static_cast<std::size_t>(v)] = c;
    members[static_cast<std::size_t>(c)].push_back(v);
  }

  // Power-law node weights: Pareto(shape=skew) gives the heavy degree tail.
  std::vector<std::vector<double>> weights(members.size());
  for (std::size_t c = 0; c < members.size(); ++c) {
    weights[c].resize(members[c].size());
    for (auto& w : weights[c]) {
      const double u = std::max(rng.next_double(), 1e-12);
      w = std::pow(u, -1.0 / params.skew);
    }
  }
  std::vector<AliasTable> samplers;
  samplers.reserve(members.size());
  for (const auto& w : weights) samplers.emplace_back(w);

  CooBuilder b(params.n);
  b.reserve(static_cast<std::size_t>(params.m));
  const int k = params.communities;
  for (EdgeId e = 0; e < params.m; ++e) {
    const auto cu =
        static_cast<std::size_t>(rng.next_below(static_cast<std::uint64_t>(k)));
    std::size_t cv = cu;
    if (k > 1 && !rng.next_bool(params.p_intra)) {
      cv = static_cast<std::size_t>(
          rng.next_below(static_cast<std::uint64_t>(k - 1)));
      if (cv >= cu) ++cv;
    }
    const NodeId u = members[cu][static_cast<std::size_t>(
        samplers[cu].sample(rng))];
    const NodeId v = members[cv][static_cast<std::size_t>(
        samplers[cv].sample(rng))];
    if (u != v) b.add_edge(u, v);
  }
  out.graph = b.build();
  return out;
}

Csr ring(NodeId n) {
  BNSGCN_CHECK(n >= 3);
  CooBuilder b(n);
  for (NodeId v = 0; v < n; ++v) b.add_edge(v, (v + 1) % n);
  return b.build();
}

Csr star(NodeId n) {
  BNSGCN_CHECK(n >= 2);
  CooBuilder b(n);
  for (NodeId v = 1; v < n; ++v) b.add_edge(0, v);
  return b.build();
}

Csr grid(NodeId rows, NodeId cols) {
  BNSGCN_CHECK(rows >= 1 && cols >= 1);
  CooBuilder b(rows * cols);
  const auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return b.build();
}

} // namespace bnsgcn::gen
