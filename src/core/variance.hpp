#pragma once

#include "graph/csr.hpp"
#include "partition/partitioning.hpp"
#include "tensor/matrix.hpp"

namespace bnsgcn::core {

/// Empirical counterpart of the paper's Table 2: the feature-approximation
/// variance E‖ẑ − z‖²_F / |V_i| of one mean-aggregation layer on partition
/// `part_id`, under four sampling families at a matched sampling budget
/// (expected sampled-node count = p·|B_i|):
///  - BNS: keep each boundary node w.p. p, scale kept features by 1/p;
///  - LADIES-like layer sampling: draw s nodes from the *neighbor set* N_i
///    (all aggregation sources of V_i), inverse-probability weighted;
///  - FastGCN-like layer sampling: draw s nodes from the *global* node set;
///  - GraphSAGE-like neighbor sampling: per-node fanout k ≈ s/|V_i| drawn
///    with replacement from each node's neighbor list.
/// The paper's ordering Var(BNS) ≤ Var(LADIES) ≤ Var(FastGCN) follows from
/// B_i ⊆ N_i ⊆ V; this module verifies it numerically.
struct VarianceReport {
  double bns = 0.0;
  double ladies_like = 0.0;
  double fastgcn_like = 0.0;
  double sage_like = 0.0;
  NodeId budget = 0;        // expected sampled nodes per method
  NodeId boundary_size = 0; // |B_i|
  NodeId neighbor_size = 0; // |N_i|
  NodeId global_size = 0;   // |V|
};

[[nodiscard]] VarianceReport measure_variance(const Csr& g,
                                              const Matrix& features,
                                              const Partitioning& part,
                                              PartId part_id, float p,
                                              int trials, std::uint64_t seed);

} // namespace bnsgcn::core
