#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/check.hpp"
#include "graph/generators.hpp"
#include "partition/io.hpp"
#include "partition/metis_like.hpp"

namespace bnsgcn {
namespace {

std::string tmp_path(const char* name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

TEST(PartitionIo, RoundTripIsBitExact) {
  Rng rng(5);
  const Csr g = gen::erdos_renyi(800, 5000, rng);
  const Partitioning p = metis_like(g, 4);
  const std::string path = tmp_path("roundtrip.part");
  save_partitioning(p, path);
  const Partitioning loaded = load_partitioning(path);
  EXPECT_EQ(loaded.nparts, p.nparts);
  EXPECT_EQ(loaded.owner, p.owner);
}

TEST(PartitionIo, MissingFileThrows) {
  EXPECT_THROW((void)load_partitioning(tmp_path("does-not-exist.part")),
               CheckError);
}

TEST(PartitionIo, BadMagicThrows) {
  const std::string path = tmp_path("bad-magic.part");
  std::ofstream(path, std::ios::binary) << "this is not a partitioning";
  EXPECT_THROW((void)load_partitioning(path), CheckError);
}

TEST(PartitionIo, TruncatedFileThrows) {
  Rng rng(6);
  const Csr g = gen::erdos_renyi(300, 2000, rng);
  const Partitioning p = metis_like(g, 3);
  const std::string path = tmp_path("truncated.part");
  save_partitioning(p, path);
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full / 2);
  EXPECT_THROW((void)load_partitioning(path), CheckError);
}

TEST(PartitionIo, CorruptOwnerFailsValidation) {
  // An out-of-range owner id must be caught by validate() on load, not
  // silently handed to a trainer.
  Partitioning p;
  p.nparts = 2;
  p.owner = {0, 1, 0, 1};
  const std::string path = tmp_path("corrupt.part");
  save_partitioning(p, path);
  // Flip one owner byte to an invalid partition id.
  std::fstream f(path,
                 std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(-static_cast<std::streamoff>(sizeof(PartId)), std::ios::end);
  const PartId bad = 9;
  f.write(reinterpret_cast<const char*>(&bad), sizeof(bad));
  f.close();
  EXPECT_THROW((void)load_partitioning(path), CheckError);
}

} // namespace
} // namespace bnsgcn
