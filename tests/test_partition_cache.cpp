#include <gtest/gtest.h>

#include <filesystem>

#include "api/partition_cache.hpp"
#include "api/run.hpp"
#include "graph/generators.hpp"
#include "partition/metis_like.hpp"

namespace bnsgcn {
namespace {

Csr sample_graph(std::uint64_t seed = 1, NodeId n = 600, EdgeId m = 4000) {
  Rng rng(seed);
  return gen::erdos_renyi(n, m, rng);
}

api::PartitionSpec metis_spec(PartId nparts, std::uint64_t seed = 1) {
  return {.kind = api::PartitionSpec::Kind::kMetis,
          .nparts = nparts,
          .seed = seed};
}

std::string fresh_dir(const char* name) {
  const auto dir = std::filesystem::path(::testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  return dir.string();
}

TEST(PartitionCache, RepeatedGetHitsAndSharesTheObject) {
  api::PartitionCache cache;
  const Csr g = sample_graph();
  api::PartitionCacheStats lookup;
  const auto first = cache.get(g, metis_spec(4), &lookup);
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(lookup, (api::PartitionCacheStats{.misses = 1}));
  const auto second = cache.get(g, metis_spec(4), &lookup);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(lookup, (api::PartitionCacheStats{.hits = 1}));
  EXPECT_EQ(first.get(), second.get()); // literally the same object
  // And bit-identical to an uncached compute.
  EXPECT_EQ(first->owner, api::make_partition(g, metis_spec(4)).owner);
}

TEST(PartitionCache, EverySpecFieldKeys) {
  api::PartitionCache cache;
  const Csr g = sample_graph();
  (void)cache.get(g, metis_spec(4, 1));
  (void)cache.get(g, metis_spec(4, 2));   // different seed
  (void)cache.get(g, metis_spec(5, 1));   // different nparts
  api::PartitionSpec bfs = metis_spec(4, 1);
  bfs.kind = api::PartitionSpec::Kind::kBfs; // different kind
  (void)cache.get(g, bfs);
  EXPECT_EQ(cache.stats().misses, 4);
  EXPECT_EQ(cache.stats().hits, 0);
}

TEST(PartitionCache, MutatedGraphChangesTheKey) {
  api::PartitionCache cache;
  const Csr g = sample_graph(3);
  // kRandom partitioning only reads n, so a same-n structural mutation can
  // only miss if the *fingerprint* catches it — which is the point.
  api::PartitionSpec spec;
  spec.kind = api::PartitionSpec::Kind::kRandom;
  spec.nparts = 3;
  (void)cache.get(g, spec);
  Csr mutated = g;
  // Append one arc to the last node's list (keeps offsets monotone).
  mutated.nbrs.push_back(0);
  mutated.offsets.back()++;
  (void)cache.get(mutated, spec);
  EXPECT_EQ(cache.stats().misses, 2);
  EXPECT_EQ(cache.stats().hits, 0);
}

TEST(PartitionCache, LruEvictsTheColdestEntry) {
  api::PartitionCache cache(
      {.enabled = true, .capacity = 2, .disk_dir = ""});
  const Csr g = sample_graph(4);
  (void)cache.get(g, metis_spec(2));
  (void)cache.get(g, metis_spec(3));
  (void)cache.get(g, metis_spec(2)); // refresh 2 → 3 is now coldest
  (void)cache.get(g, metis_spec(4)); // evicts 3
  EXPECT_EQ(cache.stats().evictions, 1);
  (void)cache.get(g, metis_spec(2)); // still resident
  EXPECT_EQ(cache.stats().hits, 2);
  (void)cache.get(g, metis_spec(3)); // evicted → recomputed
  EXPECT_EQ(cache.stats().misses, 4);
}

TEST(PartitionCache, DiskStoreSurvivesAColdCache) {
  const std::string dir = fresh_dir("part-cache-disk");
  const Csr g = sample_graph(5);
  const auto spec = metis_spec(4, 9);

  api::PartitionCache warm({.enabled = true, .capacity = 8, .disk_dir = dir});
  const auto computed = warm.get(g, spec);
  EXPECT_EQ(warm.stats().misses, 1);

  // A different cache instance with the same dir models a new process.
  api::PartitionCache cold({.enabled = true, .capacity = 8, .disk_dir = dir});
  const auto loaded = cold.get(g, spec);
  EXPECT_EQ(cold.stats().disk_hits, 1);
  EXPECT_EQ(cold.stats().misses, 0);
  EXPECT_EQ(loaded->nparts, computed->nparts);
  EXPECT_EQ(loaded->owner, computed->owner); // bit-exact across the disk trip
  // And both identical to a fresh, uncached metis_like with the spec seed.
  MetisLikeOptions opts;
  opts.seed = spec.seed;
  EXPECT_EQ(loaded->owner, metis_like(g, spec.nparts, opts).owner);

  // Second get in the "new process" is now a memory hit.
  (void)cold.get(g, spec);
  EXPECT_EQ(cold.stats().hits, 1);
}

TEST(PartitionCache, DisabledCacheAlwaysComputes) {
  api::PartitionCache cache(
      {.enabled = false, .capacity = 8, .disk_dir = ""});
  const Csr g = sample_graph(6);
  const auto a = cache.get(g, metis_spec(3));
  const auto b = cache.get(g, metis_spec(3));
  EXPECT_EQ(cache.stats().misses, 2);
  EXPECT_EQ(cache.stats().hits, 0);
  EXPECT_NE(a.get(), b.get());      // distinct objects...
  EXPECT_EQ(a->owner, b->owner);    // ...same deterministic value
}

TEST(PartitionCache, KeyStringNamesEveryField) {
  const GraphFingerprint fp = fingerprint(sample_graph());
  const std::string key =
      api::PartitionCache::key_string(fp, metis_spec(8, 42));
  EXPECT_EQ(key, fp.hex() + "-v1-metis-8-42");
}

TEST(PartitionCache, HashSeedIsCanonicalized) {
  // hash_partition ignores the seed, so hash specs differing only in seed
  // must share one entry (a seed sweep over kHash is one partition, not N).
  api::PartitionCache cache;
  const Csr g = sample_graph(7);
  api::PartitionSpec spec;
  spec.kind = api::PartitionSpec::Kind::kHash;
  spec.nparts = 4;
  spec.seed = 1;
  (void)cache.get(g, spec);
  spec.seed = 2;
  (void)cache.get(g, spec);
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.stats().hits, 1);
}

// ---------------------------------------------------------------------------
// api::run integration (the acceptance criterion): a repeated run over the
// same (dataset, spec) does zero partitioning work and reports it.
// ---------------------------------------------------------------------------

TEST(PartitionCacheRun, RepeatedRunDoesZeroPartitioningWork) {
  api::configure_partition_cache({}); // fresh global cache
  SyntheticSpec spec;
  spec.n = 600;
  spec.m = 5000;
  spec.communities = 4;
  spec.num_classes = 4;
  spec.feat_dim = 8;
  spec.seed = 41;
  const Dataset ds = make_synthetic(spec);

  api::RunConfig cfg;
  cfg.method = api::Method::kBns;
  cfg.partition.nparts = 3;
  cfg.trainer.num_layers = 2;
  cfg.trainer.hidden = 16;
  cfg.trainer.epochs = 2;

  const api::RunReport first = api::run(ds, cfg);
  EXPECT_EQ(first.partition_cache.misses, 1);
  EXPECT_EQ(first.partition_cache.hits, 0);

  const api::RunReport second = api::run(ds, cfg);
  EXPECT_EQ(second.partition_cache.misses, 0); // zero partitioning work
  EXPECT_EQ(second.partition_cache.hits, 1);
  // Identical partition → identical training trajectory.
  EXPECT_EQ(first.train_loss, second.train_loss);

  // The cached partitioning itself is bit-identical to a fresh compute.
  const auto cached = api::cached_partition(ds.graph, cfg.partition);
  EXPECT_EQ(cached->owner, api::make_partition(ds.graph, cfg.partition).owner);

  // Methods without a partition never touch the cache.
  cfg.method = api::Method::kFullGraph;
  const api::RunReport full = api::run(ds, cfg);
  EXPECT_EQ(full.partition_cache, api::PartitionCacheStats{});
  api::configure_partition_cache({}); // leave no state for other tests
}

} // namespace
} // namespace bnsgcn
