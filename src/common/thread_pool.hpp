#pragma once

#include <cstdint>
#include <functional>

namespace bnsgcn::common {

// ---------------------------------------------------------------------------
// Process-wide worker pool for the tensor kernels.
//
// Determinism contract (docs/ARCHITECTURE.md §6, load-bearing for every
// parity/fuzz/replay gate in the repo): parallel_for splits [0, n) into
// FIXED-SIZE blocks whose geometry is a pure function of (n, block) —
// never of the thread count or of which worker happens to claim a block.
// A kernel built on it is bit-identical for every thread count as long as
//   (a) each block writes an output region disjoint from every other
//       block's, and
//   (b) the work inside one block runs in a fixed serial order.
// Every pooled kernel in tensor/ops.cpp and nn/layer.cpp satisfies both:
// each output element's accumulation order is the scalar kernel's order,
// computed entirely within one block. Dynamic block *claiming* (an atomic
// cursor, for load balance) is therefore safe: it moves blocks between
// threads, never work between blocks.
// ---------------------------------------------------------------------------

class ThreadPool {
 public:
  /// The process-wide pool. Created lazily on first use; fork-safe: a
  /// pthread_atfork child handler abandons the parent's pool (its worker
  /// threads do not survive fork(2)), so the first kernel in a forked rank
  /// process transparently builds a fresh one. The multi-process runtime
  /// (api::run_multiprocess) relies on this.
  [[nodiscard]] static ThreadPool& instance();

  /// Worker threads currently spawned. Grows on demand: a parallel_for
  /// asking for K lanes ensures K-1 workers exist (capped at kMaxWorkers);
  /// nothing is spawned until the first parallel call actually needs help.
  [[nodiscard]] int workers() const;

  /// Hardware core budget: std::thread::hardware_concurrency(), never
  /// below 1 (the standard allows a 0 "unknown" return).
  [[nodiscard]] static int hardware_budget();

  /// Run body(begin, end) for every block [i*block, min((i+1)*block, n))
  /// of [0, n), using the calling thread plus up to threads-1 pool
  /// workers. The caller participates (threads == 1, n <= block, or a
  /// nested call from inside a pool worker all degrade to a plain serial
  /// loop in ascending block order). Blocks are claimed from an atomic
  /// cursor; see the class comment for why that preserves bit-exactness.
  /// The first exception thrown by any block is rethrown on the calling
  /// thread after every block has finished (no block is abandoned
  /// mid-write).
  void parallel_for(std::int64_t n, std::int64_t block, int threads,
                    const std::function<void(std::int64_t, std::int64_t)>& body);

  /// True on a pool worker thread (the reentrancy guard parallel_for uses
  /// to run nested calls inline instead of deadlocking on its own pool).
  [[nodiscard]] static bool on_worker_thread();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Hard cap on spawned workers — a backstop for test configurations
  /// that deliberately oversubscribe, not a tuning knob.
  static constexpr int kMaxWorkers = 64;

 private:
  ThreadPool();
  ~ThreadPool();

  struct Impl;
  Impl* impl_;
};

// ---------------------------------------------------------------------------
// Per-thread kernel budget. The tensor kernels read this instead of taking
// a threads parameter: each trainer rank (a thread on the mailbox fabric,
// a whole process on a socket fabric) sets its budget once and every
// kernel it calls — directly or through the nn layers — inherits it.
// Results never depend on the value (see the determinism contract above);
// only wall-clock time does.
// ---------------------------------------------------------------------------

/// This thread's kernel budget (>= 1; 1 until set_ops_threads is called).
[[nodiscard]] int ops_threads();

/// Set this thread's kernel budget (values < 1 clamp to 1).
void set_ops_threads(int k);

/// The rank×thread sizing rule: the largest K such that `nranks` trainer
/// ranks running K kernel lanes each stay within the hardware budget —
/// min(requested, max(1, hardware / nranks)), with requested < 1 read as
/// 1. `hardware` == 0 means "detect" (ThreadPool::hardware_budget());
/// tests inject explicit budgets. Both runtimes apply the same rule: P
/// mailbox rank threads and P forked rank processes contend for the same
/// cores.
[[nodiscard]] int clamp_rank_threads(int requested, int nranks,
                                     int hardware = 0);

/// for_blocks: the kernel-side entry point. Serial fast path (no
/// std::function, no pool touch) when the budget is 1 or there is at most
/// one block; otherwise ThreadPool::parallel_for at this thread's
/// ops_threads() budget. `Body` is invoked as body(begin, end).
template <typename Body>
void for_blocks(std::int64_t n, std::int64_t block, Body&& body) {
  const int k = ops_threads();
  if (k <= 1 || n <= block || ThreadPool::on_worker_thread()) {
    for (std::int64_t i0 = 0; i0 < n; i0 += block)
      body(i0, i0 + block < n ? i0 + block : n);
    return;
  }
  ThreadPool::instance().parallel_for(n, block, k, body);
}

} // namespace bnsgcn::common
