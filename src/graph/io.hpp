#pragma once

#include <string>

#include "graph/dataset.hpp"

namespace bnsgcn {

/// Binary serialization for graphs and datasets (preprocessing — graph
/// generation and METIS partitioning — is meant to run once and be reused
/// across training runs, as in the paper's artifact).
///
/// Format: little-endian, a small magic/version header, then raw arrays.
/// Not portable across endianness; intended for local caching.

void save_csr(const Csr& g, const std::string& path);
[[nodiscard]] Csr load_csr(const std::string& path);

void save_dataset(const Dataset& ds, const std::string& path);
[[nodiscard]] Dataset load_dataset(const std::string& path);

} // namespace bnsgcn
