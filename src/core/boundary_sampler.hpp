#pragma once

#include <memory>

#include "comm/fabric.hpp"
#include "core/epoch_planner.hpp"
#include "core/local_graph.hpp"

namespace bnsgcn::core {

/// One epoch's sampled exchange plan (Algorithm 1 lines 4-7 materialized):
/// the compacted local adjacency plus, per peer, which inner rows to send
/// and which compact halo slots the received rows land in.
struct EpochPlan {
  nn::BipartiteCsr adj;      // n_src = n_inner + n_kept_halo (compacted)
  NodeId n_kept_halo = 0;
  /// Original halo index of each compact slot (monotone; inspection/tests).
  std::vector<NodeId> kept_halo_idx;
  float halo_scale = 1.0f;   // 1/p applied to received features (BNS only)
  std::vector<std::vector<NodeId>> send_rows;  // per peer: inner local rows
  std::vector<std::vector<NodeId>> recv_slots; // per peer: halo slot in
                                               // [0, n_kept_halo), ordered to
                                               // match the sender's rows
  /// Structural positions backing send_rows / recv_slots: element t of
  /// send_pos[j] is the index into LocalGraph::send_sets[j] whose row is
  /// send_rows[j][t] (and symmetrically recv_pos[j] indexes recv_halo[j]).
  /// Both sides sort their structural lists by global id, so position t
  /// names the SAME node on the sender and the receiver — the stable,
  /// epoch-invariant key the halo cache directories are stepped with
  /// (core/halo_cache.hpp). Already negotiated by sample_epoch's kControl
  /// exchange; recording it here adds zero traffic.
  std::vector<std::vector<NodeId>> send_pos;
  std::vector<std::vector<NodeId>> recv_pos;
  /// Dropped (arc) count vs the full local graph — reporting for Table 9.
  EdgeId dropped_edges = 0;
};

/// Per-rank boundary sampler. The per-epoch random draw is delegated to a
/// pluggable EpochPlanner strategy; this class owns what every strategy
/// shares — CSR compaction and the cross-rank index negotiation.
/// `sample_epoch` is a collective: every rank must call it in the same
/// epoch order because the kept-index lists are exchanged through the
/// fabric (Algorithm 1 line 6).
class BoundarySampler {
 public:
  struct Options {
    SamplingVariant variant = SamplingVariant::kBns;
    float rate = 1.0f;           // p (kBns) or edge keep-rate q (others)
    bool unbiased_scaling = true;// scale kept contributions by 1/rate
    std::uint64_t seed = 1;      // split per rank by the caller
  };

  /// Built-in strategies, selected by `opts.variant`.
  BoundarySampler(const LocalGraph& lg, const Options& opts);

  /// Custom strategy injection: any EpochPlanner, including ones defined
  /// outside this library. `opts.variant`/`rate`/`unbiased_scaling` are
  /// ignored (the planner owns them); `opts.seed` still seeds the draw.
  BoundarySampler(const LocalGraph& lg, std::unique_ptr<EpochPlanner> planner,
                  const Options& opts);

  /// Draw this epoch's plan and negotiate send/recv lists with all peers.
  /// `tag` must be identical across ranks for the same epoch and unique
  /// across exchanges (the trainer's phase counter).
  [[nodiscard]] EpochPlan sample_epoch(comm::Endpoint& ep, int tag);

  /// Unsampled plan (p=1): used for evaluation and as the fast path.
  /// Needs no negotiation, which is why vanilla partition parallelism has
  /// zero sampling overhead (Table 12, p=1 row).
  [[nodiscard]] EpochPlan full_plan() const;

  /// Fully isolated plan (p=0): every boundary node dropped, no exchange.
  [[nodiscard]] EpochPlan empty_plan();

  [[nodiscard]] const Options& options() const { return opts_; }
  [[nodiscard]] const EpochPlanner& planner() const { return *planner_; }

 private:
  [[nodiscard]] EpochPlan plan_from_draw(const EpochDraw& draw);

  const LocalGraph& lg_;
  Options opts_;
  std::unique_ptr<EpochPlanner> planner_;
  Rng rng_;
};

} // namespace bnsgcn::core
