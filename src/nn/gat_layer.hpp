#pragma once

#include "nn/layer.hpp"

namespace bnsgcn::nn {

/// Graph attention layer (Veličković et al. 2017), used by the paper's
/// Table 10 to show BNS-GCN generalizes beyond GraphSAGE.
///
/// Per head: e_vu = LeakyReLU(a_srcᵀ W h_u + a_dstᵀ W h_v) over u ∈ N(v)∪{v},
/// α = softmax(e), out_v = Σ_u α_vu W h_u; heads are concatenated.
///
/// Under boundary-node sampling the softmax renormalizes over the kept
/// neighbors, so no 1/p correction is applied (the estimator is the standard
/// subsampled-attention one; `inv_deg` is ignored).
class GatLayer final : public Layer {
 public:
  struct Options {
    int heads = 1;
    bool relu = true;      // activation on the concatenated output
    float dropout = 0.0f;
    float leaky_slope = 0.2f;
  };

  /// d_out must be divisible by heads; each head produces d_out/heads dims.
  GatLayer(std::int64_t d_in, std::int64_t d_out, const Options& opts,
           Rng& rng);

  Matrix forward(const BipartiteCsr& adj, const Matrix& feats,
                 std::span<const float> inv_deg, bool training) override;
  Matrix backward(const BipartiteCsr& adj, const Matrix& dout,
                  std::span<const float> inv_deg) override;

  // Split-phase protocol (see Layer). Attention itself needs the full
  // neighbor set at once, but the per-head linear transforms Wh and the
  // score projections are per-row: phase F1 transforms the inner block in
  // destination-row chunks (polls interleave between chunks), each
  // per-peer fold transforms that peer's halo slab the moment it lands —
  // inner chunks and halo folds write disjoint rows of wh/s_src, so their
  // interleaving is free — and only the attention softmax waits for the
  // finish call. The row-split GEMMs reproduce the fused forward
  // bit-for-bit (gemm_nn is row-independent), so neither the phased
  // schedule nor any chunk size changes GAT numerics. Backward: B1 runs
  // activation+attention backward and emits the halo-source input
  // gradients for the wire; B2 computes the inner input gradients while
  // the gradient exchange is in flight; B3 (backward_params, deferred by
  // the trainer into the next layer's exchange window) runs the fused dW
  // GEMM over the cached assembled feats.
  [[nodiscard]] bool supports_phased() const override { return true; }
  void forward_inner_begin(const BipartiteCsr& adj, const Matrix& inner_feats,
                           bool training) override;
  void forward_inner_chunk(const BipartiteCsr& adj, NodeId row0,
                           NodeId row1) override;
  void forward_halo_begin(const BipartiteCsr& adj,
                          const HaloIncidence& inc) override;
  void forward_halo_fold(const BipartiteCsr& adj,
                         std::span<const NodeId> slots,
                         std::span<const float> rows) override;
  [[nodiscard]] Matrix forward_halo_finish(
      const BipartiteCsr& adj, std::span<const float> inv_deg) override;
  [[nodiscard]] Matrix backward_halo(const BipartiteCsr& adj,
                                     const Matrix& dout,
                                     std::span<const float> inv_deg) override;
  [[nodiscard]] Matrix backward_inner(
      const BipartiteCsr& adj, std::span<const float> inv_deg) override;
  void backward_params(const BipartiteCsr& adj) override;

  std::vector<Matrix*> params() override;
  std::vector<Matrix*> grads() override;

  void set_dropout_rng(Rng rng) { dropout_rng_ = rng; }

 protected:
  void release_training_state() override;

 private:
  struct Head {
    Matrix w;      // (d_in, d_head)
    Matrix a_src;  // (d_head, 1)
    Matrix a_dst;  // (d_head, 1)
    Matrix dw, da_src, da_dst;

    // caches
    Matrix wh;                  // (n_src, d_head)
    std::vector<float> alpha;   // per (dst, nbr∪self) entry
    std::vector<float> slope;   // LeakyReLU derivative per entry
    std::vector<float> s_src;   // n_src
    std::vector<float> s_dst;   // n_dst
    Matrix dwh;                 // backward split: (n_src, d_head), B1→B2
  };

  /// Entry offset of dst v in the per-edge arrays (each dst owns deg+1
  /// slots, self last).
  [[nodiscard]] static std::size_t entry_offset(const BipartiteCsr& adj,
                                                NodeId v) {
    return static_cast<std::size_t>(
        adj.offsets[static_cast<std::size_t>(v)] + v);
  }

  /// The attention forward over fully-assembled per-head wh/s caches:
  /// shared by the fused forward and forward_halo_finish so the two paths
  /// are the same code (and therefore bitwise identical).
  [[nodiscard]] Matrix attention_forward(const BipartiteCsr& adj,
                                         bool training);
  /// The attention backward of head `hi` over the cached alpha/slope/wh:
  /// accumulates da_src/da_dst and the per-source dWh into `dwh` (pre-sized
  /// (n_src, d_head), zeroed). Shared by the fused backward and the B1
  /// phase so both paths are the same code.
  void attention_backward_head(const BipartiteCsr& adj, const Matrix& g,
                               std::size_t hi, Matrix& dwh);
  /// Fill s_src entries for wh rows [row0, row0+count).
  static void score_src_rows(Head& h, NodeId row0, NodeId count);
  /// Fill s_dst entries for wh rows [row0, row0+count) — shared by the
  /// fused forward and the chunked F1 so both paths are the same code.
  static void score_dst_rows(Head& h, NodeId row0, NodeId count);

  Options opts_;
  std::int64_t d_head_;
  std::vector<Head> heads_;
  Rng dropout_rng_;

  Matrix feats_cache_;
  Matrix relu_mask_;
  Matrix dropout_mask_;
  bool cached_training_ = false;
};

} // namespace bnsgcn::nn
