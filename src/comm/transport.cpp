#include "comm/transport.hpp"

#include "common/check.hpp"

namespace bnsgcn::comm {

const char* transport_kind_name(TransportKind k) {
  switch (k) {
    case TransportKind::kMailbox: return "mailbox";
    case TransportKind::kUds: return "uds";
    case TransportKind::kTcp: return "tcp";
  }
  return "mailbox";
}

TransportKind transport_kind_from_name(const std::string& name) {
  if (name == "mailbox") return TransportKind::kMailbox;
  if (name == "uds") return TransportKind::kUds;
  if (name == "tcp") return TransportKind::kTcp;
  BNSGCN_CHECK_MSG(false, "unknown transport: " + name);
  return TransportKind::kMailbox;
}

void Transport::enable_delivery_shuffle(std::uint64_t /*seed*/,
                                        int /*max_hold*/) {
  BNSGCN_CHECK_MSG(false,
                   "delivery shuffle is only supported by the mailbox "
                   "transport (it is a schedule-fuzz test hook)");
}

} // namespace bnsgcn::comm
