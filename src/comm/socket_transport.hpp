#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "comm/transport.hpp"

namespace bnsgcn::comm {

/// Rank → endpoint map for a socket fabric. For kUds each address is a
/// socket path; for kTcp it is "host:port" (IPv4 dotted quad). Index r is
/// the address rank r listens on during bootstrap.
struct SocketEndpoints {
  TransportKind kind = TransportKind::kUds;
  std::vector<std::string> addrs;
};

/// Payload kind carried by a frame. kEmpty frames are zero-byte control
/// messages (barrier ping/ack); kDoubles carry collective scalars.
/// kHaloDelta is the halo cache's miss-only frame: a u64 index count,
/// the NodeId index list, then the float rows (docs/ARCHITECTURE.md §9).
enum class FrameKind : std::uint32_t {
  kFloats = 0,
  kIds = 1,
  kDoubles = 2,
  kEmpty = 3,
  kHaloDelta = 4,
};

/// One length-prefixed message as it crosses a socket. The wire layout is
/// a 20-byte header — magic u32, kind u32, tag i32, payload-bytes u64,
/// all host-endian (same host for UDS; homogeneous hosts assumed for
/// TCP) — followed by the raw payload bytes.
struct Frame {
  FrameKind kind = FrameKind::kEmpty;
  int tag = 0;
  std::vector<std::uint8_t> payload;
};

inline constexpr std::uint32_t kFrameMagic = 0x424E5347; // "BNSG"
inline constexpr std::size_t kFrameHeaderBytes = 20;

/// Serialise a frame into header + payload, ready to write.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(const Frame& f);

/// Incremental frame parser over an arbitrary byte stream. feed() bytes
/// as they arrive (any split, down to one byte at a time); pop() yields
/// complete frames in order. Throws CheckError on a corrupt header.
class FrameDecoder {
 public:
  void feed(const std::uint8_t* data, std::size_t n);
  /// Extract the next complete frame; false when more bytes are needed.
  bool pop(Frame& out);
  /// Bytes buffered but not yet returned as frames.
  [[nodiscard]] std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0; // consumed prefix of buf_
};

/// Socket transport: carries exactly one rank per instance (one trainer
/// process or test thread), with one stream socket per peer. Sockets are
/// nonblocking; a poll(2)-driven progress loop drains reads into per-peer
/// tag-matched inboxes and flushes per-peer send queues, so Request::test
/// makes real progress and blocking receives also push pending writes
/// (no send/recv deadlock). Collectives are lockstep message exchanges on
/// a reserved negative-tag sequence, folding contributions in the same
/// deterministic rank order as the mailbox backend.
///
/// Bootstrap: every rank's listener is bound (and listening) before any
/// process starts, so connects cannot race; rank r then dials every rank
/// below it and accepts from every rank above it, each connection opening
/// with a 4-byte rank hello.
class SocketTransport final : public Transport {
 public:
  /// `listen_fd` is rank's pre-bound listening socket (ownership taken;
  /// closed once all peers above have connected).
  SocketTransport(PartId rank, const SocketEndpoints& eps, int listen_fd);
  ~SocketTransport() override;
  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  [[nodiscard]] PartId nranks() const override { return nranks_; }
  [[nodiscard]] bool serves(PartId rank) const override {
    return rank == rank_;
  }
  [[nodiscard]] TimingSource timing() const override {
    return TimingSource::kMeasured;
  }

  void send(PartId from, PartId to, Wire msg) override;
  bool try_recv(PartId rank, PartId from, int tag, Wire& out) override;
  [[nodiscard]] Wire recv(PartId rank, PartId from, int tag) override;

  void barrier(PartId rank) override;
  void allreduce_sum(PartId rank, std::span<float> data) override;
  [[nodiscard]] double allreduce_sum_scalar(PartId rank,
                                            double value) override;
  [[nodiscard]] double allreduce_max_scalar(PartId rank,
                                            double value) override;
  [[nodiscard]] std::vector<std::vector<NodeId>> allgather_ids(
      PartId rank, std::vector<NodeId> ids) override;
  [[nodiscard]] std::vector<std::vector<double>> allgather_doubles(
      PartId rank, const std::vector<double>& vals) override;

  void shutdown(PartId rank) override;

 private:
  struct Peer {
    int fd = -1;
    bool eof = false; // peer closed (or errored); reads are done
    std::deque<std::vector<std::uint8_t>> sendq;
    std::size_t send_off = 0; // bytes of sendq.front() already written
    FrameDecoder decoder;
    std::deque<Frame> inbox; // complete frames not yet matched
  };

  void connect_all(int listen_fd);
  /// One progress pass: poll(2) every live peer for readability (and
  /// writability while its queue is nonempty), drain reads into inboxes,
  /// flush writes. timeout_ms as poll(2): 0 = nonblocking, -1 = block
  /// until any event.
  void progress(int timeout_ms);
  void read_peer(Peer& p);
  void flush_peer(Peer& p);
  void send_frame(PartId to, Frame f);
  [[nodiscard]] Frame recv_frame(PartId from, int tag);
  bool take_from_inbox(Peer& p, int tag, Frame& out);
  [[nodiscard]] int next_coll_tag() { return -2 - (coll_seq_++); }
  void check_alive() const;

  PartId rank_;
  PartId nranks_;
  SocketEndpoints eps_;
  std::vector<Peer> peers_;
  int coll_seq_ = 0;
  bool stopped_ = false;
};

/// Convert between the Endpoint-level Wire and the socket Frame.
[[nodiscard]] Frame wire_to_frame(const Wire& msg);
[[nodiscard]] Wire frame_to_wire(Frame f);

} // namespace bnsgcn::comm
