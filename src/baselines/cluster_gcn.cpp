#include <algorithm>

#include "baselines/minibatch.hpp"
#include "partition/metis_like.hpp"

namespace bnsgcn::baselines {

namespace {

/// Turn an induced node set into the degenerate (src == dst) Batch used by
/// subgraph-sampling methods. Loss lands on the contained train nodes.
Batch subgraph_batch(const Dataset& ds, std::vector<NodeId> nodes,
                     int num_layers) {
  std::sort(nodes.begin(), nodes.end());
  const auto sub = induced_subgraph(ds.graph, nodes);

  Batch batch;
  nn::BipartiteCsr adj;
  adj.n_dst = sub.adj.n;
  adj.n_src = sub.adj.n;
  adj.offsets = sub.adj.offsets;
  adj.nbrs = sub.adj.nbrs;
  std::vector<float> inv(static_cast<std::size_t>(sub.adj.n), 0.0f);
  for (NodeId v = 0; v < sub.adj.n; ++v) {
    // ClusterGCN trains on the subgraph as-is: normalization uses the
    // *subgraph* degree (this is exactly its approximation error source).
    const NodeId d = sub.adj.degree(v);
    inv[static_cast<std::size_t>(v)] =
        d > 0 ? 1.0f / static_cast<float>(d) : 0.0f;
  }
  batch.adjs.assign(static_cast<std::size_t>(num_layers), adj);
  batch.inv_deg.assign(static_cast<std::size_t>(num_layers), inv);
  batch.input_nodes = sub.local_to_global;
  batch.output_nodes = sub.local_to_global;

  std::vector<char> is_train(static_cast<std::size_t>(ds.num_nodes()), 0);
  for (const NodeId v : ds.train_nodes)
    is_train[static_cast<std::size_t>(v)] = 1;
  for (std::size_t i = 0; i < sub.local_to_global.size(); ++i)
    if (is_train[static_cast<std::size_t>(sub.local_to_global[i])])
      batch.loss_rows.push_back(static_cast<NodeId>(i));
  return batch;
}

} // namespace

api::RunReport train_cluster_gcn(const Dataset& ds,
                                 const core::TrainerConfig& cfg,
                                 const MinibatchConfig& mb) {
  // One-time clustering (amortized, as in the original method).
  MetisLikeOptions mopts;
  mopts.seed = cfg.seed;
  const Partitioning clusters =
      metis_like(ds.graph, mb.num_clusters, mopts);
  const auto members = clusters.members();

  const auto next_batch = [&](Rng& rng) {
    // Random union of clusters (stochastic multiple partitions scheme).
    std::vector<NodeId> picked = rng.sample_without_replacement(
        mb.num_clusters, std::min(mb.clusters_per_batch, mb.num_clusters));
    std::vector<NodeId> nodes;
    for (const NodeId c : picked) {
      const auto& mem = members[static_cast<std::size_t>(c)];
      nodes.insert(nodes.end(), mem.begin(), mem.end());
    }
    return subgraph_batch(ds, std::move(nodes), cfg.num_layers);
  };

  auto report = run_minibatch_training(ds, cfg, mb, next_batch);
  report.method = "cluster-gcn";
  return report;
}

/// Shared by graph_saint.cpp.
Batch make_subgraph_batch(const Dataset& ds, std::vector<NodeId> nodes,
                          int num_layers) {
  return subgraph_batch(ds, std::move(nodes), num_layers);
}

} // namespace bnsgcn::baselines
