// BNS-GCN beyond GraphSAGE: training a 2-layer, 2-head GAT with boundary
// node sampling (the paper's Table 10 generality claim). Attention
// renormalizes over the sampled neighbors, so no 1/p correction is used.

#include <cstdio>

#include "api/presets.hpp"
#include "api/run.hpp"
#include "partition/metis_like.hpp"

int main() {
  using namespace bnsgcn;

  api::DatasetSpec dspec;
  dspec.preset = "products";
  dspec.scale = 0.15;
  const Dataset ds = api::make_dataset(dspec);
  std::printf("products-like: %d nodes, %lld arcs, %d classes\n\n",
              ds.num_nodes(), static_cast<long long>(ds.graph.num_arcs()),
              ds.num_classes);

  const Partitioning part = metis_like(ds.graph, 4);

  api::RunConfig cfg;
  cfg.method = api::Method::kBns;
  cfg.trainer.model = core::ModelKind::kGat;
  cfg.trainer.gat_heads = 2;
  cfg.trainer.num_layers = 2;
  cfg.trainer.hidden = 32;
  cfg.trainer.dropout = 0.3f;
  cfg.trainer.lr = 0.003f;
  cfg.trainer.epochs = 100;

  std::printf("%-16s %10s %14s\n", "config", "acc %", "epoch time (s)");
  for (const float p : {1.0f, 0.1f, 0.05f}) {
    cfg.trainer.sample_rate = p;
    const api::RunReport r = api::run(ds, part, cfg);
    std::printf("BNS-GAT p=%-6.2f %10.2f %14.4f\n", p, 100.0 * r.final_test,
                r.mean_epoch().total_s());
  }
  std::printf("\nGAT keeps accuracy under boundary sampling while epochs get "
              "faster.\n");
  return 0;
}
