// Communication–computation overlap: blocking, bulk and stream training
// must be bit-identical (the knob moves only the wait points of the
// identical split-phase fp schedule, with per-peer folds applied in fixed
// peer order — docs/ARCHITECTURE.md §4), the hidden time must be real and
// bounded by the exchange time, and the knob must be safe for every
// method/model. GAT runs the phased schedule too (per-head linear
// transforms as phase F1), so it no longer falls back to blocking.

#include <gtest/gtest.h>

#include <cmath>

#include "api/run.hpp"
#include "baselines/minibatch.hpp"
#include "core/trainer.hpp"
#include "graph/dataset.hpp"
#include "partition/metis_like.hpp"

namespace bnsgcn {
namespace {

using core::BnsTrainer;
using core::ModelKind;
using core::OverlapMode;
using core::SamplingVariant;
using core::TrainerConfig;

constexpr OverlapMode kAllModes[] = {OverlapMode::kBlocking,
                                     OverlapMode::kBulk,
                                     OverlapMode::kStream};

Dataset easy_dataset(std::uint64_t seed = 101, bool multilabel = false) {
  SyntheticSpec spec;
  spec.name = "overlap-test";
  spec.n = 1400;
  spec.m = 16000;
  spec.communities = 8;
  spec.num_classes = 8;
  spec.feat_dim = 16;
  spec.p_intra = 0.92;
  spec.feature_noise = 1.4;
  spec.multilabel = multilabel;
  spec.seed = seed;
  return make_synthetic(spec);
}

TrainerConfig base_config() {
  TrainerConfig cfg;
  cfg.num_layers = 3;  // >= 2 so the backward exchange runs too
  cfg.hidden = 32;
  cfg.dropout = 0.3f;  // exercises the RNG schedule across modes
  cfg.lr = 0.01f;
  cfg.epochs = 8;
  cfg.eval_every = 4;
  cfg.seed = 7;
  cfg.sample_rate = 0.5f;
  return cfg;
}

/// Train under every overlap mode and require bit-identical results
/// (losses, eval curve, byte counts) against the blocking run.
void expect_modes_bit_identical(const Dataset& ds, const Partitioning& part,
                                TrainerConfig cfg) {
  cfg.overlap = OverlapMode::kBlocking;
  const auto blocking = BnsTrainer(ds, part, cfg).train();
  for (const auto& e : blocking.epochs) EXPECT_EQ(e.overlap_s, 0.0);

  for (const OverlapMode mode : {OverlapMode::kBulk, OverlapMode::kStream}) {
    cfg.overlap = mode;
    const auto piped = BnsTrainer(ds, part, cfg).train();
    const auto tag = [mode](std::size_t i) {
      return std::string(mode == OverlapMode::kBulk ? "bulk" : "stream") +
             " epoch " + std::to_string(i);
    };
    ASSERT_EQ(blocking.train_loss.size(), piped.train_loss.size());
    for (std::size_t e = 0; e < blocking.train_loss.size(); ++e)
      EXPECT_EQ(blocking.train_loss[e], piped.train_loss[e]) << tag(e);
    EXPECT_EQ(blocking.final_val, piped.final_val);
    EXPECT_EQ(blocking.final_test, piped.final_test);
    ASSERT_EQ(blocking.curve.size(), piped.curve.size());
    for (std::size_t i = 0; i < blocking.curve.size(); ++i) {
      EXPECT_EQ(blocking.curve[i].val, piped.curve[i].val);
      EXPECT_EQ(blocking.curve[i].test, piped.curve[i].test);
    }
    ASSERT_EQ(blocking.epochs.size(), piped.epochs.size());
    for (std::size_t i = 0; i < blocking.epochs.size(); ++i) {
      EXPECT_EQ(blocking.epochs[i].feature_bytes,
                piped.epochs[i].feature_bytes) << tag(i);
      EXPECT_EQ(blocking.epochs[i].comm_s, piped.epochs[i].comm_s) << tag(i);
      // The per-peer tail is a pure function of the sampled exchange sets:
      // identical across modes, by construction.
      EXPECT_EQ(blocking.epochs[i].comm_tail_s, piped.epochs[i].comm_tail_s)
          << tag(i);
    }
  }
}

TEST(Overlap, AllModesBitIdenticalSage) {
  const Dataset ds = easy_dataset();
  const auto part = metis_like(ds.graph, 4);
  expect_modes_bit_identical(ds, part, base_config());
}

TEST(Overlap, AllModesBitIdenticalGat) {
  // GAT enters the phased protocol (per-head linear transforms as F1):
  // parity must hold for it exactly like for SAGE — no blocking fallback.
  const Dataset ds = easy_dataset(127);
  const auto part = metis_like(ds.graph, 4);
  auto cfg = base_config();
  cfg.model = ModelKind::kGat;
  cfg.gat_heads = 2;
  cfg.epochs = 4;
  expect_modes_bit_identical(ds, part, cfg);
}

TEST(Overlap, BitIdenticalAcrossSampleRates) {
  const Dataset ds = easy_dataset(103);
  const auto part = metis_like(ds.graph, 3);
  for (const float p : {0.0f, 0.1f, 1.0f}) {
    auto cfg = base_config();
    cfg.epochs = 4;
    cfg.sample_rate = p;
    expect_modes_bit_identical(ds, part, cfg);
  }
}

TEST(Overlap, BitIdenticalForEdgeSamplingVariants) {
  // The edge-sampling plans carry per-edge scales through the split
  // kernels (and the streaming fold's incidence); parity must hold there
  // too.
  const Dataset ds = easy_dataset(107);
  const auto part = metis_like(ds.graph, 3);
  for (const auto variant :
       {SamplingVariant::kBoundaryEdge, SamplingVariant::kDropEdge}) {
    auto cfg = base_config();
    cfg.epochs = 4;
    cfg.variant = variant;
    expect_modes_bit_identical(ds, part, cfg);
  }
}

TEST(Overlap, BitIdenticalMultilabel) {
  const Dataset ds = easy_dataset(109, /*multilabel=*/true);
  const auto part = metis_like(ds.graph, 3);
  auto cfg = base_config();
  cfg.epochs = 4;
  expect_modes_bit_identical(ds, part, cfg);
}

TEST(Overlap, ChunkedF1BitIdenticalAcrossChunkSizes) {
  // The F1 chunk size moves only the poll points (F1 is row-independent
  // and folds target disjoint buffers), so every chunking of every
  // schedule must train bit-identically to the unchunked blocking run —
  // for SAGE and GAT alike. Chunk 1 is the pathological
  // one-poll-per-row case; 1<<20 exceeds every partition (one chunk, but
  // through the chunked code path).
  const Dataset ds = easy_dataset(173);
  const auto part = metis_like(ds.graph, 4);
  for (const ModelKind model : {ModelKind::kSage, ModelKind::kGat}) {
    auto cfg = base_config();
    cfg.model = model;
    cfg.gat_heads = model == ModelKind::kGat ? 2 : 1;
    cfg.epochs = 3;
    cfg.overlap = OverlapMode::kBlocking;
    cfg.inner_chunk_rows = 0;
    const auto baseline = BnsTrainer(ds, part, cfg).train();
    for (const OverlapMode mode : kAllModes) {
      for (const NodeId chunk : {1, 19, 1 << 20}) {
        cfg.overlap = mode;
        cfg.inner_chunk_rows = chunk;
        const auto got = BnsTrainer(ds, part, cfg).train();
        EXPECT_EQ(baseline.train_loss, got.train_loss)
            << "model " << static_cast<int>(model) << " mode "
            << static_cast<int>(mode) << " chunk " << chunk;
        EXPECT_EQ(baseline.final_val, got.final_val);
        EXPECT_EQ(baseline.final_test, got.final_test);
      }
    }
  }
}

TEST(Overlap, HiddenTimeIsRealAndBounded) {
  const Dataset ds = easy_dataset(113);
  const auto part = metis_like(ds.graph, 4);
  for (const OverlapMode mode : {OverlapMode::kBulk, OverlapMode::kStream}) {
    auto cfg = base_config();
    cfg.overlap = mode;
    const auto result = BnsTrainer(ds, part, cfg).train();
    double total_hidden = 0.0;
    for (const auto& e : result.epochs) {
      EXPECT_GE(e.overlap_s, 0.0);
      EXPECT_LE(e.overlap_s, e.comm_s + 1e-12); // never hides more than comm
      EXPECT_GE(e.total_s(), 0.0);
      // The tail is one message of one exchange; comm_s covers them all.
      EXPECT_GT(e.comm_tail_s, 0.0);
      EXPECT_LE(e.comm_tail_s, e.comm_s + 1e-12);
      total_hidden += e.overlap_s;
    }
    // With boundary traffic on every layer, some exchange time must be
    // hidden — this is the bench_overlap acceptance in miniature.
    EXPECT_GT(total_hidden, 0.0);
    const auto mean = result.mean_epoch();
    EXPECT_LT(mean.total_s(), mean.compute_s + mean.comm_s + mean.reduce_s +
                                  mean.sample_s + mean.swap_s);
  }
}

TEST(Overlap, GatHidesExchangeTimeNow) {
  // The PR 2 fallback is gone: a GAT stack under bulk or stream overlap
  // must report genuinely hidden exchange time.
  const Dataset ds = easy_dataset(163);
  const auto part = metis_like(ds.graph, 4);
  auto cfg = base_config();
  cfg.model = ModelKind::kGat;
  cfg.gat_heads = 2;
  cfg.epochs = 4;
  for (const OverlapMode mode : {OverlapMode::kBulk, OverlapMode::kStream}) {
    cfg.overlap = mode;
    const auto result = BnsTrainer(ds, part, cfg).train();
    double total_hidden = 0.0;
    for (const auto& e : result.epochs) total_hidden += e.overlap_s;
    EXPECT_GT(total_hidden, 0.0);
  }
}

TEST(Overlap, ApiCommKnobReachesTheTrainer) {
  const Dataset ds = easy_dataset(131);
  api::RunConfig cfg;
  cfg.method = api::Method::kBns;
  cfg.trainer = base_config();
  cfg.trainer.epochs = 4;
  cfg.partition.nparts = 4;

  cfg.comm.overlap = OverlapMode::kBlocking;
  const auto blocking = api::run(ds, cfg);
  EXPECT_EQ(blocking.overlap_saved_s(), 0.0);

  for (const OverlapMode mode : {OverlapMode::kBulk, OverlapMode::kStream}) {
    cfg.comm.overlap = mode;
    const auto piped = api::run(ds, cfg);
    EXPECT_EQ(blocking.train_loss, piped.train_loss);
    EXPECT_GT(piped.overlap_saved_s(), 0.0);
    EXPECT_GT(piped.overlap_fraction(), 0.0);
    EXPECT_LE(piped.overlap_fraction(), 1.0);
    // The simulated epoch clock is exactly the blocking clock minus the
    // hidden time.
    const auto mean = piped.mean_epoch();
    EXPECT_NEAR(piped.epoch_time_s(),
                mean.compute_s + mean.comm_s + mean.reduce_s + mean.sample_s +
                    mean.swap_s - mean.overlap_s,
                1e-12);
  }
}

TEST(Overlap, EngineAndApiKnobsCombineToTheStrongerMode) {
  // Either spelling may ask for a schedule; the engine runs the more
  // aggressive of the two, so a config file can upgrade a coded default.
  const Dataset ds = easy_dataset(167);
  api::RunConfig cfg;
  cfg.method = api::Method::kBns;
  cfg.trainer = base_config();
  cfg.trainer.epochs = 3;
  cfg.partition.nparts = 3;
  cfg.trainer.overlap = OverlapMode::kStream;
  cfg.comm.overlap = OverlapMode::kBlocking;
  const auto report = api::run(ds, cfg);
  EXPECT_GT(report.overlap_saved_s(), 0.0);
}

TEST(Overlap, RocProxyAcceptsTheKnob) {
  const Dataset ds = easy_dataset(137);
  api::RunConfig cfg;
  cfg.method = api::Method::kRocProxy;
  cfg.trainer = base_config();
  cfg.trainer.epochs = 3;
  cfg.partition.nparts = 3;

  cfg.comm.overlap = OverlapMode::kBlocking;
  const auto blocking = api::run(ds, cfg);
  for (const OverlapMode mode : {OverlapMode::kBulk, OverlapMode::kStream}) {
    cfg.comm.overlap = mode;
    const auto piped = api::run(ds, cfg);
    // ROC runs through BnsTrainer (p=1): parity plus genuine hidden time.
    EXPECT_EQ(blocking.train_loss, piped.train_loss);
    EXPECT_GT(piped.overlap_saved_s(), 0.0);
  }
}

TEST(Overlap, CagnetProxyIgnoresTheKnobAndTracksLoss) {
  const Dataset ds = easy_dataset(139);
  api::RunConfig cfg;
  cfg.method = api::Method::kCagnetProxy;
  cfg.trainer = base_config();
  cfg.trainer.epochs = 3;
  cfg.partition.nparts = 3;

  cfg.comm.overlap = OverlapMode::kBlocking;
  const auto blocking = api::run(ds, cfg);
  for (const OverlapMode mode : {OverlapMode::kBulk, OverlapMode::kStream}) {
    cfg.comm.overlap = mode;
    const auto piped = api::run(ds, cfg);

    // The proxy reports a loss per epoch, for every knob setting, and the
    // dense broadcast hides nothing (no-op fallback).
    ASSERT_EQ(blocking.train_loss.size(), 3u);
    ASSERT_EQ(piped.train_loss.size(), 3u);
    EXPECT_EQ(blocking.train_loss, piped.train_loss);
    EXPECT_EQ(piped.overlap_saved_s(), 0.0);
  }
  for (const double l : blocking.train_loss) {
    EXPECT_TRUE(std::isfinite(l));
    EXPECT_GT(l, 0.0);
  }
  // Loss must actually decrease — it is a real training signal, not noise.
  EXPECT_LT(blocking.train_loss.back(), blocking.train_loss.front());
}

TEST(Overlap, SingleLayerAndSinglePartitionDegenerate) {
  // No backward exchange (L=1) and no boundary at all (m=1): every
  // schedule must degrade gracefully with zero hidden time, not crash or
  // deadlock in the poll loop.
  const Dataset ds = easy_dataset(149);
  for (const OverlapMode mode : kAllModes) {
    auto cfg = base_config();
    cfg.num_layers = 1;
    cfg.epochs = 3;
    cfg.overlap = mode;
    const auto part1 = metis_like(ds.graph, 1);
    const auto single = BnsTrainer(ds, part1, cfg).train();
    for (const auto& e : single.epochs) {
      EXPECT_EQ(e.overlap_s, 0.0);
      EXPECT_EQ(e.comm_tail_s, 0.0);
    }
    const auto part4 = metis_like(ds.graph, 4);
    const auto result = BnsTrainer(ds, part4, cfg).train();
    EXPECT_EQ(result.train_loss.size(), 3u);
  }
}

TEST(Overlap, PhasedBlockingStillMatchesOracleAtP1) {
  // The split schedule reorders fp sums within a row (inner terms first,
  // then halo terms in peer order); it must stay within the same drift
  // envelope of the single-process oracle as before.
  const Dataset ds = easy_dataset(151);
  TrainerConfig cfg = base_config();
  cfg.dropout = 0.0f;
  cfg.epochs = 8;
  cfg.eval_every = 0;
  cfg.sample_rate = 1.0f;
  const auto oracle = baselines::train_full_graph(ds, cfg);
  const auto part = metis_like(ds.graph, 4);
  for (const OverlapMode mode : kAllModes) {
    cfg.overlap = mode;
    const auto dist = BnsTrainer(ds, part, cfg).train();
    ASSERT_EQ(oracle.train_loss.size(), dist.train_loss.size());
    for (std::size_t e = 0; e < oracle.train_loss.size(); ++e)
      EXPECT_NEAR(dist.train_loss[e], oracle.train_loss[e],
                  5e-3 * std::max(1.0, std::abs(oracle.train_loss[e])))
          << "epoch " << e << " mode " << static_cast<int>(mode);
  }
}

TEST(Overlap, GatPhasedMatchesOracleAtP1) {
  // Same envelope for GAT: its phased schedule splits only row-independent
  // GEMMs, so the distributed run must track the oracle exactly as the
  // fused path did.
  const Dataset ds = easy_dataset(157);
  TrainerConfig cfg = base_config();
  cfg.model = ModelKind::kGat;
  cfg.gat_heads = 2;
  cfg.dropout = 0.0f;
  cfg.epochs = 6;
  cfg.eval_every = 0;
  cfg.sample_rate = 1.0f;
  const auto oracle = baselines::train_full_graph(ds, cfg);
  const auto part = metis_like(ds.graph, 4);
  for (const OverlapMode mode : kAllModes) {
    cfg.overlap = mode;
    const auto dist = BnsTrainer(ds, part, cfg).train();
    ASSERT_EQ(oracle.train_loss.size(), dist.train_loss.size());
    for (std::size_t e = 0; e < oracle.train_loss.size(); ++e)
      EXPECT_NEAR(dist.train_loss[e], oracle.train_loss[e],
                  5e-2 * std::max(1.0, std::abs(oracle.train_loss[e])))
          << "epoch " << e << " mode " << static_cast<int>(mode);
  }
}

} // namespace
} // namespace bnsgcn
