#include "core/epoch_planner.hpp"

#include <algorithm>

namespace bnsgcn::core {

namespace {

float inv_rate_or_one(const EpochPlanner::Options& opts) {
  return (opts.unbiased_scaling && opts.rate > 0.0f) ? 1.0f / opts.rate
                                                     : 1.0f;
}

} // namespace

EpochDraw BnsPlanner::draw(const LocalGraph& lg, Rng& rng) const {
  const NodeId n_halo = lg.n_halo();
  EpochDraw d;
  d.halo_kept.resize(static_cast<std::size_t>(n_halo));
  // Algorithm 1 line 4: keep each boundary node with probability p.
  for (NodeId h = 0; h < n_halo; ++h)
    d.halo_kept[static_cast<std::size_t>(h)] =
        rng.next_bool(opts_.rate) ? 1 : 0;
  d.halo_scale = inv_rate_or_one(opts_);
  return d;
}

EpochDraw BoundaryEdgePlanner::draw(const LocalGraph& lg, Rng& rng) const {
  EpochDraw d;
  d.halo_kept.assign(static_cast<std::size_t>(lg.n_halo()), 0);
  d.edge_kept.emplace(lg.adj.nbrs.size(), 1);
  // Keep each *boundary* arc with probability q; a halo node survives iff
  // at least one incident arc survives (Section 4.3).
  for (std::size_t e = 0; e < lg.adj.nbrs.size(); ++e) {
    const NodeId u = lg.adj.nbrs[e];
    if (u < lg.n_inner()) continue; // inner arcs untouched
    if (rng.next_bool(opts_.rate)) {
      d.halo_kept[static_cast<std::size_t>(u - lg.n_inner())] = 1;
    } else {
      (*d.edge_kept)[e] = 0;
    }
  }
  d.halo_edge_scale = inv_rate_or_one(opts_);
  return d;
}

EpochDraw DropEdgePlanner::draw(const LocalGraph& lg, Rng& rng) const {
  EpochDraw d;
  d.halo_kept.assign(static_cast<std::size_t>(lg.n_halo()), 0);
  d.edge_kept.emplace(lg.adj.nbrs.size(), 1);
  for (std::size_t e = 0; e < lg.adj.nbrs.size(); ++e) {
    if (!rng.next_bool(opts_.rate)) {
      (*d.edge_kept)[e] = 0;
      continue;
    }
    const NodeId u = lg.adj.nbrs[e];
    if (u >= lg.n_inner())
      d.halo_kept[static_cast<std::size_t>(u - lg.n_inner())] = 1;
  }
  d.halo_edge_scale = inv_rate_or_one(opts_);
  d.inner_edge_scale = d.halo_edge_scale;
  return d;
}

std::unique_ptr<EpochPlanner> make_planner(SamplingVariant variant,
                                           const EpochPlanner::Options& opts) {
  switch (variant) {
    case SamplingVariant::kBns:
      return std::make_unique<BnsPlanner>(opts);
    case SamplingVariant::kBoundaryEdge:
      return std::make_unique<BoundaryEdgePlanner>(opts);
    case SamplingVariant::kDropEdge:
      return std::make_unique<DropEdgePlanner>(opts);
  }
  BNSGCN_CHECK_MSG(false, "unknown sampling variant");
  return nullptr;
}

} // namespace bnsgcn::core
