#include "nn/layer.hpp"

#include "common/thread_pool.hpp"

namespace bnsgcn::nn {

namespace {

// Parallel grains, mirroring tensor/ops.cpp. Gather-shaped kernels (one
// writer per destination row) split the row axis; scatter-shaped kernels
// (source rows fan out to repeating destinations) split the feature axis so
// each lane owns disjoint columns while walking entries in the serial
// order. Either way each output element's accumulation order is the scalar
// kernel's — bit-identical for every thread count (common/thread_pool.hpp).
constexpr std::int64_t kRowBlock = 64;
constexpr std::int64_t kColBlock = 64;

} // namespace

void BipartiteCsr::validate() const {
  BNSGCN_CHECK(static_cast<NodeId>(offsets.size()) == n_dst + 1);
  BNSGCN_CHECK(offsets.front() == 0);
  BNSGCN_CHECK(offsets.back() == static_cast<EdgeId>(nbrs.size()));
  for (const NodeId u : nbrs) BNSGCN_CHECK(u >= 0 && u < n_src);
  for (std::size_t i = 1; i < offsets.size(); ++i)
    BNSGCN_CHECK(offsets[i - 1] <= offsets[i]);
  BNSGCN_CHECK(edge_scale.empty() || edge_scale.size() == nbrs.size());
}

void mean_aggregate(const BipartiteCsr& adj, const Matrix& src,
                    std::span<const float> inv_deg, Matrix& out) {
  BNSGCN_CHECK(src.rows() == adj.n_src);
  BNSGCN_CHECK(static_cast<NodeId>(inv_deg.size()) == adj.n_dst);
  const std::int64_t d = src.cols();
  out.resize(adj.n_dst, d);
  const bool weighted = !adj.edge_scale.empty();
  common::for_blocks(adj.n_dst, kRowBlock, [&](std::int64_t v0,
                                               std::int64_t v1) {
    for (NodeId v = static_cast<NodeId>(v0); v < static_cast<NodeId>(v1);
         ++v) {
      float* o = out.data() + static_cast<std::int64_t>(v) * d;
      const float w = inv_deg[static_cast<std::size_t>(v)];
      if (w == 0.0f) continue;
      const auto begin = static_cast<std::size_t>(
          adj.offsets[static_cast<std::size_t>(v)]);
      const auto end = static_cast<std::size_t>(
          adj.offsets[static_cast<std::size_t>(v) + 1]);
      for (std::size_t e = begin; e < end; ++e) {
        const NodeId u = adj.nbrs[e];
        const float es = weighted ? adj.edge_scale[e] : 1.0f;
        const float* s = src.data() + static_cast<std::int64_t>(u) * d;
        for (std::int64_t c = 0; c < d; ++c) o[c] += es * s[c];
      }
      for (std::int64_t c = 0; c < d; ++c) o[c] *= w;
    }
  });
}

void mean_aggregate_backward(const BipartiteCsr& adj, const Matrix& dout,
                             std::span<const float> inv_deg, Matrix& dsrc) {
  BNSGCN_CHECK(dout.rows() == adj.n_dst);
  BNSGCN_CHECK(dsrc.rows() == adj.n_src && dsrc.cols() == dout.cols());
  const std::int64_t d = dout.cols();
  const bool weighted = !adj.edge_scale.empty();
  // Scatter into dsrc: the same source row u appears under many v, so lanes
  // own disjoint column ranges and replay the full v/e walk.
  common::for_blocks(d, kColBlock, [&](std::int64_t c0, std::int64_t c1) {
    for (NodeId v = 0; v < adj.n_dst; ++v) {
      const float w = inv_deg[static_cast<std::size_t>(v)];
      if (w == 0.0f) continue;
      const float* g = dout.data() + static_cast<std::int64_t>(v) * d;
      const auto begin = static_cast<std::size_t>(
          adj.offsets[static_cast<std::size_t>(v)]);
      const auto end = static_cast<std::size_t>(
          adj.offsets[static_cast<std::size_t>(v) + 1]);
      for (std::size_t e = begin; e < end; ++e) {
        const NodeId u = adj.nbrs[e];
        const float wu = weighted ? w * adj.edge_scale[e] : w;
        float* t = dsrc.data() + static_cast<std::int64_t>(u) * d;
        for (std::int64_t c = c0; c < c1; ++c) t[c] += wu * g[c];
      }
    }
  });
}

void mean_aggregate_inner_rows(const BipartiteCsr& adj,
                               const Matrix& inner_src, NodeId row0,
                               NodeId row1, Matrix& out) {
  const NodeId n_lo = static_cast<NodeId>(inner_src.rows());
  BNSGCN_CHECK(n_lo <= adj.n_src);
  BNSGCN_CHECK(row0 >= 0 && row0 <= row1 && row1 <= adj.n_dst);
  BNSGCN_CHECK(out.rows() == adj.n_dst && out.cols() == inner_src.cols());
  const std::int64_t d = inner_src.cols();
  const bool weighted = !adj.edge_scale.empty();
  // Row blocks anchored at row0, so chunked-stream callers (chunks can be a
  // single row) see the same split they would inside one big call.
  common::for_blocks(row1 - row0, kRowBlock, [&](std::int64_t b0,
                                                 std::int64_t b1) {
    for (NodeId v = row0 + static_cast<NodeId>(b0);
         v < row0 + static_cast<NodeId>(b1); ++v) {
      float* o = out.data() + static_cast<std::int64_t>(v) * d;
      const auto begin = static_cast<std::size_t>(
          adj.offsets[static_cast<std::size_t>(v)]);
      const auto end = static_cast<std::size_t>(
          adj.offsets[static_cast<std::size_t>(v) + 1]);
      for (std::size_t e = begin; e < end; ++e) {
        const NodeId u = adj.nbrs[e];
        if (u >= n_lo) continue; // halo source: folded by the finish pass
        const float es = weighted ? adj.edge_scale[e] : 1.0f;
        const float* s = inner_src.data() + static_cast<std::int64_t>(u) * d;
        for (std::int64_t c = 0; c < d; ++c) o[c] += es * s[c];
      }
    }
  });
}

void HaloIncidence::build(const BipartiteCsr& adj, NodeId lo) {
  n_lo = lo;
  n_halo = adj.n_src - lo;
  BNSGCN_CHECK(n_halo >= 0);
  const bool weighted = !adj.edge_scale.empty();
  // Counting pass, then a fill pass — the standard CSR transpose, but only
  // over the halo-source entries.
  offsets.assign(static_cast<std::size_t>(n_halo) + 1, 0);
  for (std::size_t e = 0; e < adj.nbrs.size(); ++e) {
    const NodeId u = adj.nbrs[e];
    if (u >= lo) ++offsets[static_cast<std::size_t>(u - lo) + 1];
  }
  for (std::size_t s = 1; s < offsets.size(); ++s) offsets[s] += offsets[s - 1];
  dsts.assign(static_cast<std::size_t>(offsets.back()), 0);
  scales.assign(static_cast<std::size_t>(offsets.back()), 1.0f);
  std::vector<EdgeId> cursor(offsets.begin(), offsets.end() - 1);
  for (NodeId v = 0; v < adj.n_dst; ++v) {
    const auto begin = static_cast<std::size_t>(
        adj.offsets[static_cast<std::size_t>(v)]);
    const auto end = static_cast<std::size_t>(
        adj.offsets[static_cast<std::size_t>(v) + 1]);
    for (std::size_t e = begin; e < end; ++e) {
      const NodeId u = adj.nbrs[e];
      if (u < lo) continue;
      const auto at = static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(u - lo)]++);
      dsts[at] = v;
      if (weighted) scales[at] = adj.edge_scale[e];
    }
  }
}

void mean_aggregate_halo_fold(const HaloIncidence& inc,
                              std::span<const NodeId> slots,
                              std::span<const float> rows, std::int64_t d,
                              Matrix& out) {
  BNSGCN_CHECK(rows.size() == slots.size() * static_cast<std::size_t>(d));
  BNSGCN_CHECK(out.cols() == d);
  for (const NodeId s : slots) BNSGCN_CHECK(s >= 0 && s < inc.n_halo);
  // Different slots can hit the same destination row, so this is a scatter:
  // lanes split the feature axis, each replaying the slot/entry walk.
  common::for_blocks(d, kColBlock, [&](std::int64_t c0, std::int64_t c1) {
    for (std::size_t t = 0; t < slots.size(); ++t) {
      const NodeId s = slots[t];
      const float* row = rows.data() + t * static_cast<std::size_t>(d);
      const auto begin = static_cast<std::size_t>(
          inc.offsets[static_cast<std::size_t>(s)]);
      const auto end = static_cast<std::size_t>(
          inc.offsets[static_cast<std::size_t>(s) + 1]);
      for (std::size_t e = begin; e < end; ++e) {
        float* o = out.data() + static_cast<std::int64_t>(inc.dsts[e]) * d;
        const float es = inc.scales[e];
        for (std::int64_t c = c0; c < c1; ++c) o[c] += es * row[c];
      }
    }
  });
}

void mean_aggregate_finish(std::span<const float> inv_deg, Matrix& out) {
  BNSGCN_CHECK(static_cast<NodeId>(inv_deg.size()) == out.rows());
  const std::int64_t d = out.cols();
  common::for_blocks(out.rows(), kRowBlock, [&](std::int64_t v0,
                                                std::int64_t v1) {
    for (NodeId v = static_cast<NodeId>(v0); v < static_cast<NodeId>(v1);
         ++v) {
      float* o = out.data() + static_cast<std::int64_t>(v) * d;
      const float w = inv_deg[static_cast<std::size_t>(v)];
      if (w == 0.0f) { // mean_aggregate leaves such rows zero; match it
        for (std::int64_t c = 0; c < d; ++c) o[c] = 0.0f;
        continue;
      }
      for (std::int64_t c = 0; c < d; ++c) o[c] *= w;
    }
  });
}

void mean_aggregate_backward_halo(const BipartiteCsr& adj, const Matrix& dout,
                                  std::span<const float> inv_deg, NodeId n_lo,
                                  Matrix& dhalo) {
  BNSGCN_CHECK(dout.rows() == adj.n_dst);
  BNSGCN_CHECK(dhalo.rows() == adj.n_src - n_lo &&
               dhalo.cols() == dout.cols());
  const std::int64_t d = dout.cols();
  const bool weighted = !adj.edge_scale.empty();
  common::for_blocks(d, kColBlock, [&](std::int64_t c0, std::int64_t c1) {
    for (NodeId v = 0; v < adj.n_dst; ++v) {
      const float w = inv_deg[static_cast<std::size_t>(v)];
      if (w == 0.0f) continue;
      const float* g = dout.data() + static_cast<std::int64_t>(v) * d;
      const auto begin = static_cast<std::size_t>(
          adj.offsets[static_cast<std::size_t>(v)]);
      const auto end = static_cast<std::size_t>(
          adj.offsets[static_cast<std::size_t>(v) + 1]);
      for (std::size_t e = begin; e < end; ++e) {
        const NodeId u = adj.nbrs[e];
        if (u < n_lo) continue;
        const float wu = weighted ? w * adj.edge_scale[e] : w;
        float* t = dhalo.data() + static_cast<std::int64_t>(u - n_lo) * d;
        for (std::int64_t c = c0; c < c1; ++c) t[c] += wu * g[c];
      }
    }
  });
}

void mean_aggregate_backward_inner(const BipartiteCsr& adj, const Matrix& dout,
                                   std::span<const float> inv_deg, NodeId n_lo,
                                   Matrix& dinner) {
  BNSGCN_CHECK(dout.rows() == adj.n_dst);
  BNSGCN_CHECK(dinner.rows() == n_lo && dinner.cols() == dout.cols());
  const std::int64_t d = dout.cols();
  const bool weighted = !adj.edge_scale.empty();
  common::for_blocks(d, kColBlock, [&](std::int64_t c0, std::int64_t c1) {
    for (NodeId v = 0; v < adj.n_dst; ++v) {
      const float w = inv_deg[static_cast<std::size_t>(v)];
      if (w == 0.0f) continue;
      const float* g = dout.data() + static_cast<std::int64_t>(v) * d;
      const auto begin = static_cast<std::size_t>(
          adj.offsets[static_cast<std::size_t>(v)]);
      const auto end = static_cast<std::size_t>(
          adj.offsets[static_cast<std::size_t>(v) + 1]);
      for (std::size_t e = begin; e < end; ++e) {
        const NodeId u = adj.nbrs[e];
        if (u >= n_lo) continue;
        const float wu = weighted ? w * adj.edge_scale[e] : w;
        float* t = dinner.data() + static_cast<std::int64_t>(u) * d;
        for (std::int64_t c = c0; c < c1; ++c) t[c] += wu * g[c];
      }
    }
  });
}

void Layer::forward_inner_begin(const BipartiteCsr&, const Matrix&, bool) {
  BNSGCN_CHECK_MSG(false, "layer does not support phased forward");
}

void Layer::forward_inner_chunk(const BipartiteCsr&, NodeId, NodeId) {
  BNSGCN_CHECK_MSG(false, "layer does not support phased forward");
}

void Layer::forward_halo_begin(const BipartiteCsr&, const HaloIncidence&) {
  BNSGCN_CHECK_MSG(false, "layer does not support phased forward");
}

void Layer::forward_halo_fold(const BipartiteCsr&, std::span<const NodeId>,
                              std::span<const float>) {
  BNSGCN_CHECK_MSG(false, "layer does not support phased forward");
}

Matrix Layer::forward_halo_finish(const BipartiteCsr&,
                                  std::span<const float>) {
  BNSGCN_CHECK_MSG(false, "layer does not support phased forward");
  return {};
}

Matrix Layer::backward_halo(const BipartiteCsr&, const Matrix&,
                            std::span<const float>) {
  BNSGCN_CHECK_MSG(false, "layer does not support phased backward");
  return {};
}

Matrix Layer::backward_inner(const BipartiteCsr&, std::span<const float>) {
  BNSGCN_CHECK_MSG(false, "layer does not support phased backward");
  return {};
}

void Layer::backward_params(const BipartiteCsr&) {
  // Default: nothing deferred — a phased layer that accumulates its
  // parameter gradients inside backward_inner stays correct.
}

void Layer::zero_grads() {
  for (Matrix* g : grads()) g->zero();
}

std::int64_t Layer::num_params() {
  std::int64_t total = 0;
  for (const Matrix* p : params()) total += p->size();
  return total;
}

std::vector<float> flatten_grads(
    const std::vector<std::unique_ptr<Layer>>& layers) {
  std::int64_t total = 0;
  for (const auto& l : layers) total += l->num_params();
  std::vector<float> flat;
  flat.reserve(static_cast<std::size_t>(total));
  for (const auto& l : layers) {
    for (const Matrix* g : l->grads())
      flat.insert(flat.end(), g->data(), g->data() + g->size());
  }
  return flat;
}

void apply_flat_grads(std::span<const float> flat,
                      const std::vector<std::unique_ptr<Layer>>& layers) {
  std::size_t cursor = 0;
  for (const auto& l : layers) {
    for (Matrix* g : l->grads()) {
      BNSGCN_CHECK(cursor + static_cast<std::size_t>(g->size()) <= flat.size());
      std::copy(flat.begin() + static_cast<std::ptrdiff_t>(cursor),
                flat.begin() + static_cast<std::ptrdiff_t>(cursor) +
                    static_cast<std::ptrdiff_t>(g->size()),
                g->data());
      cursor += static_cast<std::size_t>(g->size());
    }
  }
  BNSGCN_CHECK(cursor == flat.size());
}

} // namespace bnsgcn::nn
