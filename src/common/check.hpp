#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace bnsgcn {

/// Thrown on violated preconditions / internal invariants.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

/// True in checked builds (-DBNSGCN_CHECKED=ON): the contract macro family
/// below compiles to real checks. In release builds it is false and the
/// contracts cost nothing — not even an evaluated condition. Use it with
/// `if constexpr` for contract blocks too large for a single expression
/// (e.g. a whole-structure audit).
#ifdef BNSGCN_CHECKED_BUILD
inline constexpr bool kCheckedBuild = true;
#else
inline constexpr bool kCheckedBuild = false;
#endif

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

[[noreturn]] inline void bounds_failed(const char* idx_expr,
                                       const char* n_expr, std::int64_t idx,
                                       std::int64_t n, const char* file,
                                       int line) {
  std::ostringstream os;
  os << "bounds check failed: " << idx_expr << " == " << idx
     << " not in [0, " << n_expr << " == " << n << ") at " << file << ":"
     << line;
  throw CheckError(os.str());
}

} // namespace detail
} // namespace bnsgcn

/// Always-on invariant check (library is used by tests that rely on it firing
/// in release builds too). Use for external input validation (wire frames,
/// files, user config) and cheap entry-point shape checks.
#define BNSGCN_CHECK(expr)                                                 \
  do {                                                                     \
    if (!(expr))                                                           \
      ::bnsgcn::detail::check_failed(#expr, __FILE__, __LINE__, "");       \
  } while (false)

#define BNSGCN_CHECK_MSG(expr, msg)                                        \
  do {                                                                     \
    if (!(expr))                                                           \
      ::bnsgcn::detail::check_failed(#expr, __FILE__, __LINE__, (msg));    \
  } while (false)

// ---------------------------------------------------------------------------
// Checked-build contract family. Compiled out entirely unless the build
// defines BNSGCN_CHECKED_BUILD (the `checked` preset; CI runs the ops,
// transport, trainer and schedule-fuzz suites under it). Use these for
// contracts that are too hot for release builds — per-element bounds in
// kernel inner loops, phase-protocol ordering, whole-structure audits —
// where BNSGCN_CHECK would tax the very paths the benchmarks measure.
//
//   BNSGCN_REQUIRE(expr, msg)  precondition / invariant with a message
//   BNSGCN_BOUNDS(idx, n)      0 <= idx < n (reports both values)
//   BNSGCN_SHAPE(expr, msg)    dimension-agreement contract (same expansion
//                              as REQUIRE; the distinct name documents what
//                              kind of contract was violated)
//
// In release builds the arguments are NOT evaluated — do not put side
// effects in contract expressions.
// ---------------------------------------------------------------------------

#ifdef BNSGCN_CHECKED_BUILD

#define BNSGCN_REQUIRE(expr, msg)                                          \
  do {                                                                     \
    if (!(expr))                                                           \
      ::bnsgcn::detail::check_failed(#expr, __FILE__, __LINE__, (msg));    \
  } while (false)

#define BNSGCN_BOUNDS(idx, n)                                              \
  do {                                                                     \
    const auto bnsgcn_bounds_idx_ = static_cast<std::int64_t>(idx);        \
    const auto bnsgcn_bounds_n_ = static_cast<std::int64_t>(n);            \
    if (bnsgcn_bounds_idx_ < 0 || bnsgcn_bounds_idx_ >= bnsgcn_bounds_n_)  \
      ::bnsgcn::detail::bounds_failed(#idx, #n, bnsgcn_bounds_idx_,        \
                                      bnsgcn_bounds_n_, __FILE__,          \
                                      __LINE__);                           \
  } while (false)

#define BNSGCN_SHAPE(expr, msg) BNSGCN_REQUIRE(expr, msg)

#else

#define BNSGCN_REQUIRE(expr, msg) \
  do {                            \
  } while (false)
#define BNSGCN_BOUNDS(idx, n) \
  do {                        \
  } while (false)
#define BNSGCN_SHAPE(expr, msg) \
  do {                          \
  } while (false)

#endif
