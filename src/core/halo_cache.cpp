#include "core/halo_cache.hpp"

#include "common/check.hpp"

namespace bnsgcn::core {

CacheStep HaloCacheDir::step(std::span<const NodeId> positions, int epoch,
                             int max_age) {
  ++step_id_;
  CacheStep out;
  out.action.reserve(positions.size());
  out.slot.reserve(positions.size());

  // Phase 1: bump the request frequency of every position, reordering
  // cached entries under their new count. Done before any classification
  // so eviction comparisons within this step see consistent frequencies.
  NodeId prev = -1;
  for (const NodeId p : positions) {
    BNSGCN_CHECK_MSG(p > prev, "cache step positions must strictly increase");
    prev = p;
    auto [fit, inserted] = freq_.try_emplace(p, 0);
    const auto eit = entries_.find(p);
    if (eit != entries_.end()) order_.erase({fit->second, p});
    ++fit->second;
    if (eit != entries_.end()) order_.insert({fit->second, p});
  }

  // Phase 2: classify in list order.
  for (const NodeId p : positions) {
    const std::int64_t f = freq_.at(p);
    const auto eit = entries_.find(p);
    if (eit != entries_.end()) {
      Entry& ent = eit->second;
      ent.last_step = step_id_;
      const bool fresh = max_age < 0 || epoch - ent.stored_epoch <= max_age;
      if (fresh) {
        out.action.push_back(CacheAction::kHit);
        ++out.hits;
      } else {
        ent.stored_epoch = epoch;  // refreshed in place, same slot
        out.action.push_back(CacheAction::kMissStore);
        ++out.misses;
      }
      out.slot.push_back(ent.slot);
      continue;
    }
    // Uncached position. While below capacity, slots fill densely (used
    // slots are exactly [0, size)); once full, evict the least-frequently
    // requested resident — but only on a strictly higher count, and never
    // one touched by this step (its slot is being read right now).
    if (static_cast<NodeId>(entries_.size()) < capacity_) {
      const auto s = static_cast<NodeId>(entries_.size());
      entries_.emplace(p, Entry{s, epoch, step_id_});
      order_.insert({f, p});
      out.action.push_back(CacheAction::kMissStore);
      out.slot.push_back(s);
      ++out.misses;
      continue;
    }
    bool stored = false;
    if (capacity_ > 0) {
      auto vit = order_.begin();
      while (vit != order_.end() &&
             entries_.at(vit->second).last_step == step_id_)
        ++vit;
      if (vit != order_.end() && vit->first < f) {
        const NodeId victim = vit->second;
        const NodeId s = entries_.at(victim).slot;
        order_.erase(vit);
        entries_.erase(victim);
        entries_.emplace(p, Entry{s, epoch, step_id_});
        order_.insert({f, p});
        out.action.push_back(CacheAction::kMissStore);
        out.slot.push_back(s);
        ++out.misses;
        stored = true;
      }
    }
    if (!stored) {
      out.action.push_back(CacheAction::kMissSend);
      out.slot.push_back(-1);
      ++out.misses;
    }
  }
  return out;
}

} // namespace bnsgcn::core
