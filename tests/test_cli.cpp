// Bench CLI parsing: try_parse_bench_args is the exit-free core of
// parse_bench_args, so rejection paths are testable without spawning a
// process. The non-finite cases pin the --scale fix: std::stod accepts
// "nan"/"inf", and "NaN <= 0" is false, so both used to sail through the
// positivity check and only blow up deep inside a run.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/cli.hpp"

namespace bnsgcn::api {
namespace {

std::optional<BenchOptions> parse(std::vector<std::string> args,
                                  std::string* error_out = nullptr) {
  std::string error;
  auto opts = try_parse_bench_args(args, error);
  if (error_out != nullptr) *error_out = error;
  return opts;
}

void expect_rejected(std::vector<std::string> args,
                     const std::string& error_substr) {
  std::string error;
  const auto opts = parse(args, &error);
  std::string joined;
  for (const auto& a : args) joined += a + ' ';
  SCOPED_TRACE(joined);
  EXPECT_FALSE(opts.has_value());
  EXPECT_NE(error.find(error_substr), std::string::npos) << error;
}

TEST(Cli, DefaultsWhenNoArgs) {
  const auto opts = parse({});
  ASSERT_TRUE(opts.has_value());
  EXPECT_EQ(opts->scale, 1.0);
  EXPECT_FALSE(opts->epochs.has_value());
  EXPECT_EQ(opts->epochs_or(7), 7);
  EXPECT_TRUE(opts->json_path.empty());
  EXPECT_TRUE(opts->part_cache_dir.empty());
  EXPECT_EQ(opts->transport, comm::TransportKind::kMailbox);
  EXPECT_TRUE(opts->parts.empty());
  EXPECT_EQ(opts->threads, 1);
}

TEST(Cli, FullSurfaceParses) {
  const auto opts = parse({"--scale", "2.5", "--epochs", "12", "--json",
                           "out.json", "--part-cache", "/tmp/pc",
                           "--transport", "uds", "--parts", "2,4,8",
                           "--threads", "3"});
  ASSERT_TRUE(opts.has_value());
  EXPECT_EQ(opts->scale, 2.5);
  ASSERT_TRUE(opts->epochs.has_value());
  EXPECT_EQ(*opts->epochs, 12);
  EXPECT_EQ(opts->epochs_or(7), 12);
  EXPECT_EQ(opts->json_path, "out.json");
  EXPECT_EQ(opts->part_cache_dir, "/tmp/pc");
  EXPECT_EQ(opts->transport, comm::TransportKind::kUds);
  EXPECT_EQ(opts->parts, (std::vector<int>{2, 4, 8}));
  EXPECT_EQ(opts->threads, 3);
}

TEST(Cli, TransportSpellings) {
  EXPECT_EQ(parse({"--transport", "mailbox"})->transport,
            comm::TransportKind::kMailbox);
  EXPECT_EQ(parse({"--transport", "tcp"})->transport,
            comm::TransportKind::kTcp);
  expect_rejected({"--transport", "carrier-pigeon"}, "--transport");
}

TEST(Cli, RejectsNonFiniteScale) {
  // The regression: each of these parses as a double, is not <= 0, and
  // previously produced a "valid" BenchOptions with a poisoned scale.
  expect_rejected({"--scale", "nan"}, "--scale");
  expect_rejected({"--scale", "NaN"}, "--scale");
  expect_rejected({"--scale", "inf"}, "--scale");
  expect_rejected({"--scale", "+inf"}, "--scale");
  expect_rejected({"--scale", "infinity"}, "--scale");
}

TEST(Cli, RejectsOutOfRangeOrMalformedValues) {
  expect_rejected({"--scale", "0"}, "--scale");
  expect_rejected({"--scale", "-1.5"}, "--scale");
  expect_rejected({"--scale", "2x"}, "--scale");
  expect_rejected({"--epochs", "0"}, "--epochs");
  expect_rejected({"--epochs", "-3"}, "--epochs");
  expect_rejected({"--epochs", "many"}, "--epochs");
  expect_rejected({"--threads", "0"}, "--threads");
  expect_rejected({"--threads", "-2"}, "--threads");
  expect_rejected({"--parts", "0"}, "--parts");
  expect_rejected({"--parts", "2,,4"}, "--parts");
  expect_rejected({"--parts", "2,4,"}, "--parts");
  expect_rejected({"--parts", ""}, "--parts");
  expect_rejected({"--part-cache", ""}, "--part-cache");
}

TEST(Cli, RejectsMissingValuesAndUnknownFlags) {
  expect_rejected({"--scale"}, "needs a value");
  expect_rejected({"--epochs"}, "needs a value");
  expect_rejected({"--json"}, "needs a value");
  expect_rejected({"--transport"}, "needs a value");
  expect_rejected({"--parts"}, "needs a value");
  expect_rejected({"--threads"}, "needs a value");
  expect_rejected({"--frobnicate"}, "unknown argument");
}

TEST(Cli, HelpIsSignalledViaErrorSentinel) {
  std::string error;
  EXPECT_FALSE(parse({"--help"}, &error).has_value());
  EXPECT_EQ(error, "help");
  EXPECT_FALSE(parse({"-h"}, &error).has_value());
  EXPECT_EQ(error, "help");
  // Usage text names every flag it parses.
  const std::string usage = bench_usage("bench_x");
  for (const char* flag : {"--scale", "--epochs", "--json", "--part-cache",
                           "--transport", "--parts", "--threads"})
    EXPECT_NE(usage.find(flag), std::string::npos) << flag;
}

} // namespace
} // namespace bnsgcn::api
