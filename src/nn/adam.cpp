#include "nn/adam.hpp"

#include <cmath>

#include "common/check.hpp"

namespace bnsgcn::nn {

Adam::Adam(std::vector<Matrix*> params, std::vector<Matrix*> grads,
           const Options& opts)
    : opts_(opts), params_(std::move(params)), grads_(std::move(grads)) {
  BNSGCN_CHECK(params_.size() == grads_.size());
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Matrix* p : params_) {
    m_.emplace_back(p->rows(), p->cols());
    v_.emplace_back(p->rows(), p->cols());
  }
}

void Adam::step() {
  ++t_;
  const auto t = static_cast<float>(t_);
  const float bias1 = 1.0f - std::pow(opts_.beta1, t);
  const float bias2 = 1.0f - std::pow(opts_.beta2, t);
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Matrix& p = *params_[i];
    const Matrix& g = *grads_[i];
    BNSGCN_CHECK(p.size() == g.size());
    Matrix& m = m_[i];
    Matrix& v = v_[i];
    float* pp = p.data();
    const float* pg = g.data();
    float* pm = m.data();
    float* pv = v.data();
    const std::int64_t n = p.size();
    for (std::int64_t j = 0; j < n; ++j) {
      float grad = pg[j] + opts_.weight_decay * pp[j];
      pm[j] = opts_.beta1 * pm[j] + (1.0f - opts_.beta1) * grad;
      pv[j] = opts_.beta2 * pv[j] + (1.0f - opts_.beta2) * grad * grad;
      const float mhat = pm[j] / bias1;
      const float vhat = pv[j] / bias2;
      pp[j] -= opts_.lr * mhat / (std::sqrt(vhat) + opts_.eps);
    }
  }
}

void Adam::zero_grads() {
  for (Matrix* g : grads_) g->zero();
}

} // namespace bnsgcn::nn
