#pragma once

#include <optional>
#include <string>
#include <vector>

#include "comm/transport.hpp"

namespace bnsgcn::api {

/// Shared command-line options of the bench binaries (replaces the old
/// undocumented BNSGCN_BENCH_SCALE environment variable):
///   --scale <x>       multiply dataset sizes (default 1.0; 2-4 approaches
///                     closer-to-paper shapes)
///   --epochs <n>      override every run's epoch count (smoke-testing knob)
///   --json <path>     also write the bench's runs as a JSON artifact
///   --part-cache <dir> persist computed partitionings to <dir> and reuse
///                     them across bench processes (partition cache disk
///                     store; the in-memory cache is always on)
///   --transport <t>   fabric backend: mailbox (in-process threads,
///                     simulated comm times — the default), uds or tcp
///                     (one OS process per rank, measured comm times)
///   --parts <list>    comma-separated partition counts to sweep (benches
///                     that sweep partition counts; others ignore it)
///   --threads <k>     kernel worker threads per rank (TrainerConfig::
///                     threads; each rank clamps to the P ranks × K threads
///                     hardware budget — see docs/BENCHMARKS.md). Results
///                     are bit-identical for every value.
struct BenchOptions {
  double scale = 1.0;
  std::optional<int> epochs;
  std::string json_path;        // empty = no artifact
  std::string part_cache_dir;   // empty = in-memory cache only
  comm::TransportKind transport = comm::TransportKind::kMailbox;
  std::vector<int> parts;       // empty = the bench's default sweep
  int threads = 1;              // kernel lanes per rank

  /// Epoch count for a bench section that defaults to `fallback`.
  [[nodiscard]] int epochs_or(int fallback) const {
    return epochs.value_or(fallback);
  }
};

/// Parse without side effects; returns nullopt and sets `error` on bad
/// input ("help" requested is reported as an error with the usage text).
[[nodiscard]] std::optional<BenchOptions> try_parse_bench_args(
    const std::vector<std::string>& args, std::string& error);

/// The usage text for the options above.
[[nodiscard]] std::string bench_usage(const std::string& argv0);

/// Bench-main convenience: parse argv; on --help print usage and exit(0),
/// on bad input print the error to stderr and exit(2). When --part-cache
/// was given, also points the global partition cache at that directory
/// (the one side effect — try_parse_bench_args has none).
[[nodiscard]] BenchOptions parse_bench_args(int argc, char** argv);

} // namespace bnsgcn::api
