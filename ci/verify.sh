#!/usr/bin/env bash
# Tier-1 verify: docs link check, then configure, build everything
# (library, benches, examples, test binaries) and run the full test
# suite — including test_overlap, the blocking/bulk/stream three-way
# bit-parity gate of the async fabric (run once more by name so a
# regression there is called out explicitly) — then a stream-mode
# bench_overlap smoke and the artifact replay gate.
set -euo pipefail

cd "$(dirname "$0")/.."

./ci/check_docs_links.sh

GENERATOR=()
if command -v ninja >/dev/null 2>&1; then
  GENERATOR=(-G Ninja)
fi

cmake -B build -S . "${GENERATOR[@]}"
cmake --build build -j
ctest --test-dir build --output-on-failure -j "$(nproc)"
ctest --test-dir build --output-on-failure -R test_overlap

# Transport gates, run once more by name so a socket-fabric regression is
# called out explicitly: framing/shutdown unit tests, then the
# cross-process parity suite (forked UDS/TCP rank processes must train
# bit-identically to the in-process mailbox and report measured timing).
ctest --test-dir build --output-on-failure -R test_transport
ctest --test-dir build --output-on-failure -R test_multiprocess

# Schedule-fuzz gate: first the pinned seed (the exact sweep CI has run
# before — any failure here is a regression, reproducible as printed),
# then a smoke sweep seeded from the commit SHA: every commit probes a
# fresh region of the schedule space, while any given commit is hermetic
# — the same tree always runs the same draws, so a red CI bisects to a
# commit, never to a calendar day. Divergences print the reproducing
# --fuzz-seed.
BNSGCN_FUZZ_SEED=20260729 BNSGCN_FUZZ_ITERS=8 ./build/tests/test_schedule_fuzz
SMOKE_SEED=$((16#$(git rev-parse --short=8 HEAD 2>/dev/null || echo 2bd5)))
./build/tests/test_schedule_fuzz --fuzz-seed="$SMOKE_SEED" --fuzz-iters=6

# Four-schedule smoke: bench_overlap runs blocking/bulk/stream/chunked-
# stream on every Fig. 4 config and exits non-zero when losses diverge
# bitwise across schedules or when stream OR chunked stream hides
# measurably less than bulk at >= 8 partitions — neither schedule can
# silently regress to blocking. Output stays in the log: the '!!' lines
# name the violating dataset/row on failure. The artifact feeds the
# chunked-stream replay gate below.
OVERLAP_ARTIFACT=build/overlap_gate_artifact.json
rm -f "$OVERLAP_ARTIFACT"
./build/bench/bench_overlap --scale 0.25 --epochs 3 --json "$OVERLAP_ARTIFACT"

# Multi-process UDS smoke: the same bench over the real socket fabric at
# 2 partitions — one forked OS process per rank, sockets under $TMPDIR
# (no fixed TCP ports; hermetic under parallel CI). Losses must stay
# bit-identical across schedules; comm columns are measured wall-clock,
# so the simulated overlap envelope is (correctly) not gated here.
./build/bench/bench_overlap --transport uds --parts 2 --scale 0.25 \
  --epochs 2 --json build/overlap_uds_smoke.json

# Chunked-stream replay gate: the first four rows of the overlap artifact
# are one config under all four schedules (chunked stream included);
# replaying them proves the chunk knob round-trips through the recorded
# RunConfig and reproduces the deterministic metrics exactly.
./build/bench/bench_replay "$OVERLAP_ARTIFACT" --rows 4

# Replay gate: every artifact row records its RunConfig; re-running one
# must reproduce the recorded deterministic metrics exactly
# (docs/BENCHMARKS.md "JSON artifact schema"). Record a small sweep, then
# replay its first row in a fresh process.
REPLAY_ARTIFACT=build/replay_gate_artifact.json
rm -f "$REPLAY_ARTIFACT"
./build/bench/bench_table13_choice_p --scale 0.2 --epochs 3 \
  --json "$REPLAY_ARTIFACT" > /dev/null
./build/bench/bench_replay "$REPLAY_ARTIFACT" --rows 1

# ThreadSanitizer leg: the kernel thread pool and everything layered on it
# must be race-free, not just bit-exact. A separate instrumented build runs
# the pool's own suite, the threads-axis kernel parity matrix, and the
# trainer (whose threads-parity test runs 3 ranks × 4 oversubscribed lanes
# — real interleaving even on a one-core runner). TSAN aborts with a
# nonzero exit on any report, so plain invocation is the gate.
cmake -B build-tsan -S . "${GENERATOR[@]}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DBNSGCN_TSAN=ON
cmake --build build-tsan -j --target test_thread_pool test_ops test_trainer
./build-tsan/tests/test_thread_pool
./build-tsan/tests/test_ops
./build-tsan/tests/test_trainer
