// BNS-GCN beyond GraphSAGE: training a 2-layer, 2-head GAT with boundary
// node sampling (the paper's Table 10 generality claim). Attention
// renormalizes over the sampled neighbors, so no 1/p correction is used.

#include <cstdio>

#include "core/trainer.hpp"
#include "graph/dataset.hpp"
#include "partition/metis_like.hpp"

int main() {
  using namespace bnsgcn;

  const Dataset ds = make_synthetic(products_like(0.15));
  std::printf("products-like: %d nodes, %lld arcs, %d classes\n\n",
              ds.num_nodes(), static_cast<long long>(ds.graph.num_arcs()),
              ds.num_classes);

  const Partitioning part = metis_like(ds.graph, 4);

  core::TrainerConfig cfg;
  cfg.model = core::ModelKind::kGat;
  cfg.gat_heads = 2;
  cfg.num_layers = 2;
  cfg.hidden = 32;
  cfg.dropout = 0.3f;
  cfg.lr = 0.003f;
  cfg.epochs = 100;

  std::printf("%-16s %10s %14s\n", "config", "acc %", "epoch time (s)");
  for (const float p : {1.0f, 0.1f, 0.05f}) {
    auto c = cfg;
    c.sample_rate = p;
    core::BnsTrainer trainer(ds, part, c);
    const auto r = trainer.train();
    std::printf("BNS-GAT p=%-6.2f %10.2f %14.4f\n", p, 100.0 * r.final_test,
                r.mean_epoch().total_s());
  }
  std::printf("\nGAT keeps accuracy under boundary sampling while epochs get "
              "faster.\n");
  return 0;
}
