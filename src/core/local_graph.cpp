#include "core/local_graph.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace bnsgcn::core {

void LocalGraph::validate() const {
  BNSGCN_CHECK(std::is_sorted(inner_global.begin(), inner_global.end()));
  BNSGCN_CHECK(std::is_sorted(halo_global.begin(), halo_global.end()));
  BNSGCN_CHECK(halo_owner.size() == halo_global.size());
  BNSGCN_CHECK(adj.n_dst == n_inner());
  BNSGCN_CHECK(adj.n_src == n_inner() + n_halo());
  adj.validate();
  BNSGCN_CHECK(static_cast<NodeId>(inv_full_degree.size()) == n_inner());
  BNSGCN_CHECK(static_cast<PartId>(send_sets.size()) == nparts);
  BNSGCN_CHECK(static_cast<PartId>(recv_halo.size()) == nparts);
  BNSGCN_CHECK(send_sets[static_cast<std::size_t>(part_id)].empty());
  BNSGCN_CHECK(recv_halo[static_cast<std::size_t>(part_id)].empty());
  // Every halo node appears in exactly one recv list, grouped by owner.
  std::size_t total = 0;
  for (PartId j = 0; j < nparts; ++j) {
    for (const NodeId h : recv_halo[static_cast<std::size_t>(j)]) {
      BNSGCN_CHECK(h >= 0 && h < n_halo());
      BNSGCN_CHECK(halo_owner[static_cast<std::size_t>(h)] == j);
      ++total;
    }
  }
  BNSGCN_CHECK(total == halo_global.size());
  if constexpr (kCheckedBuild) {
    // Send sets hold inner-local row ids, strictly increasing: they are
    // emitted in the peer's sorted halo_global order and the global→local
    // map is monotone within a part, so a regression here means the
    // exchange would slab rows in the wrong order.
    for (PartId j = 0; j < nparts; ++j) {
      const auto& s = send_sets[static_cast<std::size_t>(j)];
      for (std::size_t k = 0; k < s.size(); ++k) {
        BNSGCN_BOUNDS(s[k], n_inner());
        BNSGCN_REQUIRE(k == 0 || s[k - 1] < s[k],
                       "send set not strictly increasing");
      }
    }
  }
}

std::vector<LocalGraph> build_local_graphs(const Csr& g,
                                           const Partitioning& part) {
  BNSGCN_CHECK(part.num_nodes() == g.n);
  const PartId m = part.nparts;
  const auto members = part.members(); // sorted global ids per part

  // Global → inner-local id (valid only within the owner partition).
  std::vector<NodeId> inner_local(static_cast<std::size_t>(g.n), -1);
  for (PartId i = 0; i < m; ++i) {
    const auto& mem = members[static_cast<std::size_t>(i)];
    for (std::size_t k = 0; k < mem.size(); ++k)
      inner_local[static_cast<std::size_t>(mem[k])] = static_cast<NodeId>(k);
  }

  std::vector<LocalGraph> out(static_cast<std::size_t>(m));
  for (PartId i = 0; i < m; ++i) {
    LocalGraph& lg = out[static_cast<std::size_t>(i)];
    lg.part_id = i;
    lg.nparts = m;
    lg.inner_global = members[static_cast<std::size_t>(i)];
    lg.send_sets.resize(static_cast<std::size_t>(m));
    lg.recv_halo.resize(static_cast<std::size_t>(m));

    const NodeId n_in = lg.n_inner();

    // Collect halo: every remote neighbor of an inner node.
    std::vector<NodeId> halo;
    for (const NodeId v : lg.inner_global) {
      for (const NodeId u : g.neighbors(v)) {
        if (part.owner[static_cast<std::size_t>(u)] != i) halo.push_back(u);
      }
    }
    std::sort(halo.begin(), halo.end());
    halo.erase(std::unique(halo.begin(), halo.end()), halo.end());
    lg.halo_global = std::move(halo);

    lg.halo_owner.resize(lg.halo_global.size());
    for (std::size_t k = 0; k < lg.halo_global.size(); ++k) {
      const PartId owner =
          part.owner[static_cast<std::size_t>(lg.halo_global[k])];
      lg.halo_owner[k] = owner;
      lg.recv_halo[static_cast<std::size_t>(owner)].push_back(
          static_cast<NodeId>(k));
    }

    // Local adjacency: inner rows; neighbor ids remapped.
    lg.adj.n_dst = n_in;
    lg.adj.n_src = n_in + lg.n_halo();
    lg.adj.offsets.assign(static_cast<std::size_t>(n_in) + 1, 0);
    lg.inv_full_degree.resize(static_cast<std::size_t>(n_in));
    for (NodeId lv = 0; lv < n_in; ++lv) {
      const NodeId v = lg.inner_global[static_cast<std::size_t>(lv)];
      lg.adj.offsets[static_cast<std::size_t>(lv) + 1] =
          lg.adj.offsets[static_cast<std::size_t>(lv)] + g.degree(v);
      lg.inv_full_degree[static_cast<std::size_t>(lv)] =
          g.degree(v) > 0 ? 1.0f / static_cast<float>(g.degree(v)) : 0.0f;
    }
    lg.adj.nbrs.resize(static_cast<std::size_t>(lg.adj.offsets.back()));
    std::size_t cursor = 0;
    for (NodeId lv = 0; lv < n_in; ++lv) {
      const NodeId v = lg.inner_global[static_cast<std::size_t>(lv)];
      for (const NodeId u : g.neighbors(v)) {
        NodeId lu;
        if (part.owner[static_cast<std::size_t>(u)] == i) {
          lu = inner_local[static_cast<std::size_t>(u)];
        } else {
          const auto it = std::lower_bound(lg.halo_global.begin(),
                                           lg.halo_global.end(), u);
          lu = n_in + static_cast<NodeId>(it - lg.halo_global.begin());
        }
        lg.adj.nbrs[cursor++] = lu;
      }
    }
  }

  // Send sets: our inner nodes that appear in peer j's halo. Walk each
  // partition's halo lists once (keeps both sides sorted by global id).
  for (PartId j = 0; j < m; ++j) {
    const LocalGraph& needy = out[static_cast<std::size_t>(j)];
    for (std::size_t k = 0; k < needy.halo_global.size(); ++k) {
      const PartId owner = needy.halo_owner[k];
      LocalGraph& src = out[static_cast<std::size_t>(owner)];
      src.send_sets[static_cast<std::size_t>(j)].push_back(
          inner_local[static_cast<std::size_t>(needy.halo_global[k])]);
    }
  }
  for (auto& lg : out) lg.validate();
  if constexpr (kCheckedBuild) {
    // Cross-rank boundary consistency: rank i sends peer j exactly the rows
    // peer j expects to receive from i — the two sides of every exchange
    // edge must agree on the slab length or the fold misaligns.
    for (PartId i = 0; i < m; ++i) {
      for (PartId j = 0; j < m; ++j) {
        BNSGCN_SHAPE(
            out[static_cast<std::size_t>(i)]
                    .send_sets[static_cast<std::size_t>(j)]
                    .size() ==
                out[static_cast<std::size_t>(j)]
                    .recv_halo[static_cast<std::size_t>(i)]
                    .size(),
            "send/recv boundary sets disagree between ranks");
      }
    }
  }
  return out;
}

Matrix slice_rows(const Matrix& global, std::span<const NodeId> global_ids) {
  Matrix out(static_cast<std::int64_t>(global_ids.size()), global.cols());
  const std::int64_t d = global.cols();
  for (std::size_t k = 0; k < global_ids.size(); ++k) {
    const float* s =
        global.data() + static_cast<std::int64_t>(global_ids[k]) * d;
    std::copy(s, s + d, out.data() + static_cast<std::int64_t>(k) * d);
  }
  return out;
}

std::vector<NodeId> local_rows_of(const LocalGraph& lg,
                                  std::span<const NodeId> global_nodes) {
  std::vector<NodeId> rows;
  for (const NodeId v : global_nodes) {
    const auto it = std::lower_bound(lg.inner_global.begin(),
                                     lg.inner_global.end(), v);
    if (it != lg.inner_global.end() && *it == v)
      rows.push_back(static_cast<NodeId>(it - lg.inner_global.begin()));
  }
  return rows;
}

} // namespace bnsgcn::core
