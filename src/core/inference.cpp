#include "core/inference.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"
#include "core/boundary_sampler.hpp"
#include "core/halo_exchange.hpp"

namespace bnsgcn::core {

namespace {

using comm::TrafficClass;

/// Per-rank serving state and loop: the forward-only mirror of the
/// trainer's RankWorker. One instance per rank — a thread on the mailbox
/// fabric, a whole OS process on a socket fabric.
class ServeWorker {
 public:
  ServeWorker(const Dataset& ds, const TrainerConfig& cfg,
              const WeightSnapshot& weights, const LocalGraph& lg,
              comm::Endpoint& ep)
      : ds_(ds), cfg_(cfg), lg_(lg), ep_(ep) {
    common::set_ops_threads(
        cfg_.threads_oversubscribe
            ? cfg_.threads
            : common::clamp_rank_threads(cfg_.threads, ep_.nranks()));
    x_local_ = slice_rows(ds.features, lg_.inner_global);

    layers_ = build_model(cfg_, ds.feat_dim(), ds.num_classes, ep_.rank());
    // Load the snapshot: parameters travel flattened in params() order —
    // the same order the allreduce and Adam traverse, so the stack built
    // here holds bit-for-bit the trained weights.
    std::vector<Matrix*> params;
    for (auto& l : layers_)
      for (Matrix* p : l->params()) params.push_back(p);
    BNSGCN_CHECK_MSG(weights.params.size() == params.size(),
                     "weight snapshot does not match the configured stack: " +
                         std::to_string(weights.params.size()) + " tensors vs " +
                         std::to_string(params.size()));
    for (std::size_t i = 0; i < params.size(); ++i) {
      BNSGCN_CHECK_MSG(weights.params[i].rows() == params[i]->rows() &&
                           weights.params[i].cols() == params[i]->cols(),
                       "weight snapshot tensor " + std::to_string(i) +
                           " has mismatched shape");
      *params[i] = weights.params[i];
    }
    // Inference mode: maskless activations (identical values), backward
    // caches and gradient buffers freed.
    for (auto& l : layers_) l->set_inference(true);
    use_phased_ = std::all_of(
        layers_.begin(), layers_.end(),
        [](const auto& l) { return l->supports_phased(); });

    // Serving always exchanges the full boundary set (the unsampled plan —
    // queries are answered over the exact graph).
    BoundarySampler::Options so;
    so.seed = cfg_.seed;
    sampler_.emplace(lg_, so);
    full_plan_ = sampler_->full_plan();

    // Staleness is a training-only knob (bounded drift on *changing*
    // activations); weights are frozen here, so clamp it to 0 and keep
    // served bits unconditionally identical to the cache-off forward —
    // layer-0 rows, the batch-invariant bulk, still cache and hit.
    hx_.emplace(ep_, HaloExchanger::Options{.cost = cfg_.cost,
                                            .cache_mb = cfg_.cache_mb,
                                            .cache_staleness = 0,
                                            .num_layers = cfg_.num_layers,
                                            .feat_dim = ds.feat_dim(),
                                            .hidden = cfg_.hidden});
  }

  [[nodiscard]] ServeResult run(const ServeOptions& opts) {
    BNSGCN_CHECK(opts.batch_size >= 1 && opts.num_batches >= 0);
    ServeResult result;
    result.num_classes = ds_.num_classes;
    result.timing = ep_.timing();
    record_logits_ = opts.record_logits;
    Stopwatch wall;
    // Every rank draws the identical flat query stream (same seed, same
    // generator), so owners and rank 0 agree on the queries without any
    // extra wire traffic — and the stream is independent of batching.
    Rng query_rng(opts.seed ^ 0x5E47EFACEULL);
    const auto n_nodes = static_cast<std::uint64_t>(ds_.num_nodes());

    for (int b = 0; b < opts.num_batches; ++b) {
      // The batch index is the halo-cache epoch: layer-0 directories never
      // go stale (input features are immutable), deeper layers age across
      // request batches exactly as they age across training epochs.
      hx_->begin_epoch(b);
      std::vector<NodeId> queries(static_cast<std::size_t>(opts.batch_size));
      for (auto& q : queries)
        q = static_cast<NodeId>(query_rng.next_below(n_nodes));

      // Test-only fault injection (ServeOptions::fail_rank): die before
      // batch 0's entry barrier, leaving peers mid-request-stream — the
      // fabric's shutdown path must unwind them with ShutdownError.
      if (b == 0 && opts.fail_rank == ep_.rank())
        throw std::runtime_error("injected serve failure: rank " +
                                 std::to_string(ep_.rank()));

      // Latency is measured from a synchronized start: the barrier is the
      // request batch's arrival edge, and rank 0's clock stops once the
      // batch's predictions are assembled.
      ep_.barrier();
      const comm::RankStats before = ep_.stats();
      Stopwatch latency;

      const Matrix logits = forward_full_graph();
      gather_batch(queries, logits, result);
      ServeBatchStats stats;
      if (ep_.rank() == 0) stats.latency_s = latency.elapsed_s();

      // Byte/cache accounting rides an allgather after the latency clock
      // stopped, so the bookkeeping never pollutes the measurement. The
      // collective also keeps ranks batch-synchronous, so the per-batch
      // traffic deltas are unambiguous.
      const comm::RankStats delta = diff(ep_.stats(), before);
      const std::vector<double> local = {
          delta.sim_seconds(TrafficClass::kFeature, cfg_.cost),
          static_cast<double>(
              delta.rx_bytes[static_cast<int>(TrafficClass::kFeature)]),
          static_cast<double>(
              delta.rx_bytes[static_cast<int>(TrafficClass::kControl)]),
          static_cast<double>(hx_->cache_hits()),
          static_cast<double>(hx_->cache_misses()),
          static_cast<double>(hx_->bytes_saved())};
      const auto slots = ep_.allgather_doubles(local);
      if (ep_.rank() == 0) {
        double feature_rx = 0.0, control_rx = 0.0;
        double hits = 0.0, misses = 0.0, saved = 0.0;
        for (const auto& s : slots) {
          stats.comm_s = std::max(stats.comm_s, s[0]);
          feature_rx += s[1];
          control_rx += s[2];
          hits += s[3];
          misses += s[4];
          saved += s[5];
        }
        stats.feature_bytes = static_cast<std::int64_t>(feature_rx);
        stats.control_bytes = static_cast<std::int64_t>(control_rx);
        stats.cache_hit_rows = static_cast<std::int64_t>(hits);
        stats.cache_miss_rows = static_cast<std::int64_t>(misses);
        stats.bytes_saved = static_cast<std::int64_t>(saved);
        result.batches.push_back(stats);
      }
    }
    result.wall_time_s = wall.elapsed_s();
    return result;
  }

 private:
  int next_tag() { return tag_seq_++; }

  static comm::RankStats diff(const comm::RankStats& now,
                              const comm::RankStats& before) {
    comm::RankStats d;
    for (int c = 0; c < static_cast<int>(TrafficClass::kCount); ++c) {
      d.tx_bytes[c] = now.tx_bytes[c] - before.tx_bytes[c];
      d.rx_bytes[c] = now.rx_bytes[c] - before.rx_bytes[c];
      d.tx_msgs[c] = now.tx_msgs[c] - before.tx_msgs[c];
      d.rx_msgs[c] = now.rx_msgs[c] - before.rx_msgs[c];
    }
    return d;
  }

  /// One full-graph forward over the inner block — the trainer's phased
  /// schedule verbatim (post → halo-independent chunks with interleaved
  /// polls → in-order drain → finish), minus the breakdown plumbing. The
  /// shared HaloExchanger/FoldDriver path is what makes the output
  /// bit-identical to a training-path forward of the same weights.
  [[nodiscard]] Matrix forward_full_graph() {
    const EpochPlan& plan = full_plan_;
    const OverlapMode mode = cfg_.overlap;
    const bool stream = mode == OverlapMode::kStream;
    const int L = cfg_.num_layers;
    Accumulator compute_acc; // FoldDriver bookkeeping; unused further
    Matrix h = x_local_;
    for (int l = 0; l < L; ++l) {
      const int tag = next_tag();
      auto& layer = *layers_[static_cast<std::size_t>(l)];
      if (use_phased_) {
        PendingExchange px = hx_->post_forward(h, plan, tag, l);
        if (mode == OverlapMode::kBlocking) px.recvs.wait_all();
        layer.forward_inner_begin(plan.adj, h, /*training=*/false);
        if (!inc_built_) {
          halo_inc_.build(plan.adj, plan.adj.n_dst);
          inc_built_ = true;
        }
        layer.forward_halo_begin(plan.adj, halo_inc_);
        FoldDriver fold(px, stream);
        auto apply =
            hx_->make_forward_fold(px, plan, layer, /*scale=*/1.0f, h.cols());
        const NodeId n_dst = plan.adj.n_dst;
        const NodeId step =
            cfg_.inner_chunk_rows > 0 ? cfg_.inner_chunk_rows : n_dst;
        for (NodeId r0 = 0; r0 < n_dst; r0 += step) {
          const NodeId r1 = std::min<NodeId>(r0 + step, n_dst);
          layer.forward_inner_chunk(plan.adj, r0, r1);
          fold.poll(apply, compute_acc);
        }
        fold.drain(apply, compute_acc);
        h = layer.forward_halo_finish(plan.adj, lg_.inv_full_degree);
      } else {
        Matrix feats = hx_->exchange_forward(h, lg_.n_inner(), plan,
                                             /*scale=*/1.0f, tag, l);
        h = layer.forward(plan.adj, feats, lg_.inv_full_degree,
                          /*training=*/false);
      }
    }
    return h;
  }

  /// Route the batch's logits rows to rank 0 and assemble them in query
  /// order. Every rank knows the full query list (shared stream), so each
  /// owner ships (position, row) pairs over kControl and rank 0 folds the
  /// peers in ascending rank order — the same fixed-order convention as
  /// every other cross-rank path.
  void gather_batch(const std::vector<NodeId>& queries, const Matrix& logits,
                    ServeResult& result) {
    const std::int64_t c = logits.cols();
    std::vector<NodeId> owned_pos;
    std::vector<float> owned_rows;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const auto it = std::lower_bound(lg_.inner_global.begin(),
                                       lg_.inner_global.end(), queries[i]);
      if (it == lg_.inner_global.end() || *it != queries[i]) continue;
      const auto row = static_cast<std::int64_t>(
          std::distance(lg_.inner_global.begin(), it));
      owned_pos.push_back(static_cast<NodeId>(i));
      const float* src = logits.data() + row * c;
      owned_rows.insert(owned_rows.end(), src, src + c);
    }

    const int tag = next_tag();
    if (ep_.rank() != 0) {
      ep_.send_ids(0, tag, std::move(owned_pos), TrafficClass::kControl);
      ep_.send_floats(0, tag, std::move(owned_rows), TrafficClass::kControl);
      return;
    }

    Matrix batch_logits(static_cast<NodeId>(queries.size()), c);
    const auto place = [&](std::span<const NodeId> pos,
                           std::span<const float> rows) {
      BNSGCN_CHECK(rows.size() ==
                   pos.size() * static_cast<std::size_t>(c));
      for (std::size_t t = 0; t < pos.size(); ++t) {
        std::copy(rows.data() + t * static_cast<std::size_t>(c),
                  rows.data() + (t + 1) * static_cast<std::size_t>(c),
                  batch_logits.data() +
                      static_cast<std::int64_t>(pos[t]) * c);
      }
    };
    place(owned_pos, owned_rows);
    std::size_t placed = owned_pos.size();
    for (PartId p = 1; p < ep_.nranks(); ++p) {
      const auto pos = ep_.recv_ids(p, tag, TrafficClass::kControl);
      const auto rows = ep_.recv_floats(p, tag, TrafficClass::kControl);
      place(pos, rows);
      placed += pos.size();
    }
    BNSGCN_CHECK_MSG(placed == queries.size(),
                     "serve gather lost query rows: " +
                         std::to_string(placed) + " of " +
                         std::to_string(queries.size()));

    result.queries.insert(result.queries.end(), queries.begin(),
                          queries.end());
    for (NodeId q = 0; q < batch_logits.rows(); ++q) {
      const float* row = batch_logits.data() + static_cast<std::int64_t>(q) * c;
      int best = 0;
      for (std::int64_t k = 1; k < c; ++k)
        if (row[k] > row[best]) best = static_cast<int>(k);
      result.predictions.push_back(best);
    }
    if (record_logits_) {
      result.logits.insert(result.logits.end(), batch_logits.data(),
                           batch_logits.data() + batch_logits.size());
    }
  }

  const Dataset& ds_;
  const TrainerConfig& cfg_;
  const LocalGraph& lg_;
  comm::Endpoint& ep_;

  Matrix x_local_;
  std::vector<std::unique_ptr<nn::Layer>> layers_;
  std::optional<BoundarySampler> sampler_;
  EpochPlan full_plan_;
  std::optional<HaloExchanger> hx_;
  nn::HaloIncidence halo_inc_;
  bool inc_built_ = false;
  bool use_phased_ = false;
  bool record_logits_ = false;
  int tag_seq_ = 0;
};

} // namespace

InferenceEngine::InferenceEngine(const Dataset& ds, const Partitioning& part,
                                 TrainerConfig cfg,
                                 const WeightSnapshot& weights)
    : ds_(ds), cfg_(std::move(cfg)), part_(part), weights_(weights) {
  BNSGCN_CHECK(cfg_.num_layers >= 1);
  BNSGCN_CHECK_MSG(!weights_.empty(),
                   "api::serve needs a trained weight snapshot "
                   "(TrainerConfig::capture_weights)");
  local_graphs_ = build_local_graphs(ds.graph, part_);
}

ServeResult InferenceEngine::serve_rank(comm::Fabric& fabric, PartId rank,
                                        const ServeOptions& opts) {
  BNSGCN_CHECK(rank >= 0 && rank < part_.nparts &&
               fabric.nranks() == part_.nparts);
  ServeWorker worker(ds_, cfg_, weights_,
                     local_graphs_[static_cast<std::size_t>(rank)],
                     fabric.endpoint(rank));
  return worker.run(opts);
}

ServeResult InferenceEngine::serve(const ServeOptions& opts) {
  const PartId m = part_.nparts;
  comm::Fabric fabric(m, cfg_.cost);
  ServeResult result;

  Stopwatch wall;
  // lint: allow(raw-thread) — rank runtime, one OS thread per simulated
  // rank, mirroring BnsTrainer::train(); kernel-level parallelism inside
  // each rank still goes through the pool.
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(m));
  threads.reserve(static_cast<std::size_t>(m));
  for (PartId r = 0; r < m; ++r) {
    threads.emplace_back([&, r] {
      try {
        ServeResult local = serve_rank(fabric, r, opts);
        if (r == 0) result = std::move(local);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        // Tear the fabric down so peers blocked on this rank unwind with
        // ShutdownError instead of hanging mid-request-stream.
        fabric.shutdown(r);
      }
    });
  }
  for (auto& t : threads) t.join();
  // Rethrow the root cause: a ShutdownError is collateral of some other
  // rank's failure, so prefer any non-shutdown exception.
  std::exception_ptr first, root;
  for (const auto& e : errors) {
    if (!e) continue;
    if (!first) first = e;
    if (!root) {
      try {
        std::rethrow_exception(e);
      } catch (const comm::ShutdownError&) {
      } catch (...) {
        root = e;
      }
    }
  }
  if (root) std::rethrow_exception(root);
  if (first) std::rethrow_exception(first);
  result.wall_time_s = wall.elapsed_s();
  return result;
}

} // namespace bnsgcn::core
