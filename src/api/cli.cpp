#include "api/cli.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "api/partition_cache.hpp"

namespace bnsgcn::api {

namespace {

bool parse_double(const std::string& s, double& out) {
  try {
    std::size_t used = 0;
    out = std::stod(s, &used);
    // Reject non-finite values at the parse: stod happily produces
    // nan/inf, and "NaN <= 0" is false — so "--scale nan" used to pass
    // every range check and only blow up deep inside the run.
    return used == s.size() && std::isfinite(out);
  } catch (const std::exception&) {
    return false;
  }
}

bool parse_int(const std::string& s, int& out) {
  try {
    std::size_t used = 0;
    out = std::stoi(s, &used);
    return used == s.size();
  } catch (const std::exception&) {
    return false;
  }
}

} // namespace

std::string bench_usage(const std::string& argv0) {
  return "usage: " + argv0 +
         " [--scale <x>] [--epochs <n>] [--json <path>]"
         " [--part-cache <dir>] [--transport <t>] [--parts <list>]"
         " [--threads <k>]\n"
         "  --scale <x>   dataset size multiplier (default 1.0; 2-4 gives\n"
         "                closer-to-paper shapes, <1 is a quick smoke run)\n"
         "  --epochs <n>  override every run's epoch count\n"
         "  --json <path> write the bench's runs as a JSON artifact\n"
         "  --part-cache <dir> persist partitionings to <dir> and reuse\n"
         "                them across bench processes\n"
         "  --transport <t> fabric backend: mailbox (default; in-process\n"
         "                threads, simulated comm times), uds or tcp (one\n"
         "                process per rank, measured comm times)\n"
         "  --parts <list> comma-separated partition counts to sweep,\n"
         "                e.g. --parts 2,4 (benches without a partition\n"
         "                sweep ignore it)\n"
         "  --threads <k> kernel worker threads per rank (clamped so\n"
         "                ranks x threads never oversubscribes the\n"
         "                machine; results are bit-identical for every\n"
         "                value)\n";
}

std::optional<BenchOptions> try_parse_bench_args(
    const std::vector<std::string>& args, std::string& error) {
  BenchOptions opts;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto value = [&](const char* flag) -> const std::string* {
      if (i + 1 >= args.size()) {
        error = std::string(flag) + " needs a value";
        return nullptr;
      }
      return &args[++i];
    };
    if (arg == "--help" || arg == "-h") {
      error = "help";
      return std::nullopt;
    }
    if (arg == "--scale") {
      const std::string* v = value("--scale");
      if (v == nullptr) return std::nullopt;
      if (!parse_double(*v, opts.scale) || opts.scale <= 0.0) {
        error = "--scale needs a positive number, got '" + *v + "'";
        return std::nullopt;
      }
      continue;
    }
    if (arg == "--epochs") {
      const std::string* v = value("--epochs");
      if (v == nullptr) return std::nullopt;
      int n = 0;
      if (!parse_int(*v, n) || n < 1) {
        error = "--epochs needs a positive integer, got '" + *v + "'";
        return std::nullopt;
      }
      opts.epochs = n;
      continue;
    }
    if (arg == "--json") {
      const std::string* v = value("--json");
      if (v == nullptr) return std::nullopt;
      opts.json_path = *v;
      continue;
    }
    if (arg == "--part-cache") {
      const std::string* v = value("--part-cache");
      if (v == nullptr) return std::nullopt;
      if (v->empty()) {
        error = "--part-cache needs a directory";
        return std::nullopt;
      }
      opts.part_cache_dir = *v;
      continue;
    }
    if (arg == "--transport") {
      const std::string* v = value("--transport");
      if (v == nullptr) return std::nullopt;
      if (*v == "mailbox") {
        opts.transport = comm::TransportKind::kMailbox;
      } else if (*v == "uds") {
        opts.transport = comm::TransportKind::kUds;
      } else if (*v == "tcp") {
        opts.transport = comm::TransportKind::kTcp;
      } else {
        error = "--transport needs mailbox, uds or tcp, got '" + *v + "'";
        return std::nullopt;
      }
      continue;
    }
    if (arg == "--parts") {
      const std::string* v = value("--parts");
      if (v == nullptr) return std::nullopt;
      opts.parts.clear();
      std::size_t pos = 0;
      bool ok = !v->empty();
      while (ok && pos <= v->size()) {
        const std::size_t comma = v->find(',', pos);
        const std::string item =
            v->substr(pos, comma == std::string::npos ? std::string::npos
                                                      : comma - pos);
        int n = 0;
        if (!parse_int(item, n) || n < 1) {
          ok = false;
          break;
        }
        opts.parts.push_back(n);
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
      if (!ok) {
        error = "--parts needs comma-separated positive integers, got '" +
                *v + "'";
        return std::nullopt;
      }
      continue;
    }
    if (arg == "--threads") {
      const std::string* v = value("--threads");
      if (v == nullptr) return std::nullopt;
      if (!parse_int(*v, opts.threads) || opts.threads < 1) {
        error = "--threads needs a positive integer, got '" + *v + "'";
        return std::nullopt;
      }
      continue;
    }
    error = "unknown argument '" + arg + "'";
    return std::nullopt;
  }
  return opts;
}

BenchOptions parse_bench_args(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string error;
  const auto opts = try_parse_bench_args(args, error);
  if (opts) {
    if (!opts->part_cache_dir.empty()) {
      PartitionCacheConfig cache_cfg;
      cache_cfg.disk_dir = opts->part_cache_dir;
      configure_partition_cache(std::move(cache_cfg));
    }
    return *opts;
  }
  const std::string usage = bench_usage(argc > 0 ? argv[0] : "bench");
  if (error == "help") {
    std::printf("%s", usage.c_str());
    std::exit(0);
  }
  std::fprintf(stderr, "error: %s\n%s", error.c_str(), usage.c_str());
  std::exit(2);
}

} // namespace bnsgcn::api
