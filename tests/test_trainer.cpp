#include <gtest/gtest.h>

#include <cmath>

#include "baselines/minibatch.hpp"
#include "core/trainer.hpp"
#include "graph/dataset.hpp"
#include "partition/metis_like.hpp"

namespace bnsgcn {
namespace {

using core::BnsTrainer;
using core::ModelKind;
using core::SamplingVariant;
using core::TrainerConfig;

/// Small, well-separated synthetic dataset that a 2-layer GCN learns fast.
Dataset easy_dataset(std::uint64_t seed = 11, bool multilabel = false) {
  SyntheticSpec spec;
  spec.name = "test";
  spec.n = 1500;
  spec.m = 18000;
  spec.communities = 8;
  spec.num_classes = 8;
  spec.feat_dim = 16;
  spec.p_intra = 0.92;
  spec.feature_noise = 1.5;
  spec.multilabel = multilabel;
  spec.seed = seed;
  return make_synthetic(spec);
}

TrainerConfig base_config() {
  TrainerConfig cfg;
  cfg.num_layers = 2;
  cfg.hidden = 32;
  cfg.dropout = 0.0f;
  cfg.lr = 0.01f;
  cfg.epochs = 30;
  cfg.seed = 7;
  return cfg;
}

TEST(BnsTrainer, P1MatchesFullGraphOracle) {
  // The paper's correctness anchor: vanilla partition parallelism (p=1)
  // computes the same function as single-process full-graph training.
  const Dataset ds = easy_dataset();
  TrainerConfig cfg = base_config();
  cfg.epochs = 12;

  const auto oracle = baselines::train_full_graph(ds, cfg);

  Rng rng(1);
  const auto part = random_partition(ds.num_nodes(), 4, rng);
  cfg.sample_rate = 1.0f;
  BnsTrainer trainer(ds, part, cfg);
  const auto dist = trainer.train();

  ASSERT_EQ(oracle.train_loss.size(), dist.train_loss.size());
  for (std::size_t e = 0; e < oracle.train_loss.size(); ++e) {
    // fp32 reduction-order drift compounds over epochs; stays tiny here.
    EXPECT_NEAR(dist.train_loss[e], oracle.train_loss[e],
                5e-3 * std::max(1.0, std::abs(oracle.train_loss[e])))
        << "epoch " << e;
  }
  EXPECT_NEAR(dist.final_test, oracle.final_test, 0.02);
}

TEST(BnsTrainer, P1MatchesOracleAcrossPartitionCounts) {
  const Dataset ds = easy_dataset(13);
  TrainerConfig cfg = base_config();
  cfg.epochs = 6;
  const auto oracle = baselines::train_full_graph(ds, cfg);
  for (const PartId m : {2, 3, 8}) {
    Rng rng(static_cast<std::uint64_t>(m));
    const auto part = random_partition(ds.num_nodes(), m, rng);
    BnsTrainer trainer(ds, part, cfg);
    const auto dist = trainer.train();
    EXPECT_NEAR(dist.train_loss.back(), oracle.train_loss.back(), 2e-2)
        << m << " partitions";
  }
}

TEST(BnsTrainer, ConvergesWithSampling) {
  const Dataset ds = easy_dataset(17);
  TrainerConfig cfg = base_config();
  cfg.epochs = 40;
  cfg.sample_rate = 0.1f;
  const auto part = metis_like(ds.graph, 4);
  BnsTrainer trainer(ds, part, cfg);
  const auto result = trainer.train();
  // Loss must shrink and accuracy must far exceed chance (1/8).
  EXPECT_LT(result.train_loss.back(), 0.5 * result.train_loss.front());
  EXPECT_GT(result.final_test, 0.6);
}

TEST(BnsTrainer, IsolatedTrainingStillLearnsButCommunicatesNothing) {
  const Dataset ds = easy_dataset(19);
  TrainerConfig cfg = base_config();
  cfg.sample_rate = 0.0f;
  const auto part = metis_like(ds.graph, 4);
  BnsTrainer trainer(ds, part, cfg);
  const auto result = trainer.train();
  EXPECT_GT(result.final_test, 0.3); // learns something
  for (const auto& e : result.epochs) EXPECT_EQ(e.feature_bytes, 0);
}

TEST(BnsTrainer, SamplingReducesCommunicationProportionally) {
  const Dataset ds = easy_dataset(23);
  Rng rng(2);
  const auto part = random_partition(ds.num_nodes(), 4, rng);
  TrainerConfig cfg = base_config();
  cfg.epochs = 8;

  cfg.sample_rate = 1.0f;
  const auto full = BnsTrainer(ds, part, cfg).train();
  cfg.sample_rate = 0.1f;
  const auto sampled = BnsTrainer(ds, part, cfg).train();

  const double full_bytes =
      static_cast<double>(full.mean_epoch().feature_bytes);
  const double sampled_bytes =
      static_cast<double>(sampled.mean_epoch().feature_bytes);
  // Eq. 3: feature traffic scales with the kept boundary fraction.
  EXPECT_NEAR(sampled_bytes / full_bytes, 0.1, 0.03);
}

TEST(BnsTrainer, DeterministicForSeed) {
  const Dataset ds = easy_dataset(29);
  Rng rng(3);
  const auto part = random_partition(ds.num_nodes(), 3, rng);
  TrainerConfig cfg = base_config();
  cfg.epochs = 5;
  cfg.sample_rate = 0.3f;
  const auto a = BnsTrainer(ds, part, cfg).train();
  const auto b = BnsTrainer(ds, part, cfg).train();
  ASSERT_EQ(a.train_loss.size(), b.train_loss.size());
  for (std::size_t e = 0; e < a.train_loss.size(); ++e)
    EXPECT_DOUBLE_EQ(a.train_loss[e], b.train_loss[e]);
}

TEST(BnsTrainer, ThreadPoolLanesAreBitIdenticalToSerial) {
  // The kernel thread pool is a pure wall-clock knob: a run at 4 lanes per
  // rank (oversubscribed past the hardware clamp so the pool genuinely
  // multithreads even on a one-core CI box — this is also the TSAN leg's
  // trainer coverage) must reproduce the serial run's losses bit for bit.
  const Dataset ds = easy_dataset(29);
  Rng rng(3);
  const auto part = random_partition(ds.num_nodes(), 3, rng);
  TrainerConfig cfg = base_config();
  cfg.epochs = 4;
  cfg.sample_rate = 0.3f;
  cfg.dropout = 0.2f;
  cfg.eval_every = 2;
  const auto serial = BnsTrainer(ds, part, cfg).train();
  cfg.threads = 4;
  cfg.threads_oversubscribe = true;
  const auto pooled = BnsTrainer(ds, part, cfg).train();
  ASSERT_EQ(serial.train_loss.size(), pooled.train_loss.size());
  for (std::size_t e = 0; e < serial.train_loss.size(); ++e)
    EXPECT_EQ(serial.train_loss[e], pooled.train_loss[e]) << "epoch " << e;
  EXPECT_EQ(serial.final_val, pooled.final_val);
  EXPECT_EQ(serial.final_test, pooled.final_test);
}

TEST(BnsTrainer, DropoutTrainingConverges) {
  const Dataset ds = easy_dataset(31);
  TrainerConfig cfg = base_config();
  cfg.dropout = 0.3f;
  cfg.epochs = 40;
  cfg.sample_rate = 0.1f;
  const auto part = metis_like(ds.graph, 4);
  const auto result = BnsTrainer(ds, part, cfg).train();
  EXPECT_GT(result.final_test, 0.55);
}

TEST(BnsTrainer, MultilabelYelpStyle) {
  const Dataset ds = easy_dataset(37, /*multilabel=*/true);
  TrainerConfig cfg = base_config();
  cfg.epochs = 40;
  cfg.sample_rate = 0.1f;
  const auto part = metis_like(ds.graph, 3);
  const auto result = BnsTrainer(ds, part, cfg).train();
  // Micro-F1 well above the all-negative baseline.
  EXPECT_GT(result.final_test, 0.35);
}

TEST(BnsTrainer, GatModelTrains) {
  const Dataset ds = easy_dataset(41);
  TrainerConfig cfg = base_config();
  cfg.model = ModelKind::kGat;
  cfg.gat_heads = 2;
  cfg.epochs = 30;
  cfg.sample_rate = 0.1f;
  const auto part = metis_like(ds.graph, 3);
  const auto result = BnsTrainer(ds, part, cfg).train();
  EXPECT_GT(result.final_test, 0.5);
}

TEST(BnsTrainer, EdgeSamplingVariantsTrain) {
  const Dataset ds = easy_dataset(43);
  const auto part = metis_like(ds.graph, 3);
  for (const auto variant :
       {SamplingVariant::kBoundaryEdge, SamplingVariant::kDropEdge}) {
    TrainerConfig cfg = base_config();
    cfg.variant = variant;
    cfg.sample_rate = 0.5f;
    cfg.epochs = 30;
    const auto result = BnsTrainer(ds, part, cfg).train();
    EXPECT_GT(result.final_test, 0.5);
    EXPECT_GT(result.mean_epoch().feature_bytes, 0);
  }
}

TEST(BnsTrainer, BesCommunicatesMoreThanBnsAtMatchedRate) {
  // Table 9's core claim, as traffic: at the same drop rate, BES must
  // communicate more bytes than BNS because boundary nodes survive edge
  // drops.
  const Dataset ds = easy_dataset(47);
  Rng rng(4);
  const auto part = random_partition(ds.num_nodes(), 4, rng);
  TrainerConfig cfg = base_config();
  cfg.epochs = 6;
  cfg.sample_rate = 0.1f;

  cfg.variant = SamplingVariant::kBns;
  const auto bns = BnsTrainer(ds, part, cfg).train();
  cfg.variant = SamplingVariant::kBoundaryEdge;
  const auto bes = BnsTrainer(ds, part, cfg).train();
  EXPECT_GT(bes.mean_epoch().feature_bytes,
            2 * bns.mean_epoch().feature_bytes);
}

TEST(BnsTrainer, EvalCurveRecorded) {
  const Dataset ds = easy_dataset(53);
  TrainerConfig cfg = base_config();
  cfg.epochs = 10;
  cfg.eval_every = 2;
  const auto part = metis_like(ds.graph, 2);
  const auto result = BnsTrainer(ds, part, cfg).train();
  EXPECT_EQ(result.curve.size(), 5u);
  EXPECT_EQ(result.curve.back().epoch, 10);
  EXPECT_EQ(result.train_loss.size(), 10u);
  EXPECT_EQ(result.epochs.size(), 10u);
}

TEST(BnsTrainer, MemoryModelReflectsSampling) {
  const Dataset ds = easy_dataset(59);
  Rng rng(5);
  const auto part = random_partition(ds.num_nodes(), 4, rng);
  TrainerConfig cfg = base_config();
  cfg.epochs = 6;

  cfg.sample_rate = 1.0f;
  const auto full = BnsTrainer(ds, part, cfg).train();
  cfg.sample_rate = 0.01f;
  const auto sampled = BnsTrainer(ds, part, cfg).train();

  // At p=1, Eq. 4 with sampled counts equals the full-halo bound.
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_NEAR(full.memory.model_bytes[r],
                static_cast<double>(full.memory.full_bytes[r]),
                1.0);
  }
  EXPECT_GT(sampled.memory.reduction_vs_full(), 0.1);
  EXPECT_LT(sampled.memory.max_model_bytes(),
            full.memory.max_model_bytes());
}

TEST(BnsTrainer, SamplerOverheadIsSmall) {
  const Dataset ds = easy_dataset(61);
  const auto part = metis_like(ds.graph, 4);
  TrainerConfig cfg = base_config();
  cfg.epochs = 10;
  cfg.sample_rate = 0.1f;
  const auto result = BnsTrainer(ds, part, cfg).train();
  // Paper Table 12: 0-7%. Give slack for tiny-graph constant overheads.
  EXPECT_LT(result.sampler_overhead(), 0.25);

  cfg.sample_rate = 1.0f;
  const auto full = BnsTrainer(ds, part, cfg).train();
  EXPECT_NEAR(full.sampler_overhead(), 0.0, 1e-3);
}

TEST(BnsTrainer, SingleLayerModel) {
  const Dataset ds = easy_dataset(67);
  TrainerConfig cfg = base_config();
  cfg.num_layers = 1;
  cfg.epochs = 20;
  const auto part = metis_like(ds.graph, 2);
  const auto result = BnsTrainer(ds, part, cfg).train();
  EXPECT_GT(result.final_test, 0.4);
}

TEST(BnsTrainer, ThreeLayerModel) {
  const Dataset ds = easy_dataset(71);
  TrainerConfig cfg = base_config();
  cfg.num_layers = 3;
  cfg.epochs = 25;
  cfg.sample_rate = 0.2f;
  const auto part = metis_like(ds.graph, 3);
  const auto result = BnsTrainer(ds, part, cfg).train();
  EXPECT_GT(result.final_test, 0.5);
}

class SampleRateSweep : public ::testing::TestWithParam<float> {};

TEST_P(SampleRateSweep, AllRatesTrainToReasonableAccuracy) {
  const float p = GetParam();
  const Dataset ds = easy_dataset(73);
  TrainerConfig cfg = base_config();
  cfg.epochs = 30;
  cfg.sample_rate = p;
  const auto part = metis_like(ds.graph, 4);
  const auto result = BnsTrainer(ds, part, cfg).train();
  EXPECT_GT(result.final_test, 0.55) << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(Rates, SampleRateSweep,
                         ::testing::Values(0.01f, 0.1f, 0.5f, 1.0f));

} // namespace
} // namespace bnsgcn
