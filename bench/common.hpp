#pragma once

// Shared helpers for the experiment benches. Each bench binary regenerates
// one table or figure of the paper (see DESIGN.md §4 for the index and
// EXPERIMENTS.md for paper-vs-measured numbers).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/trainer.hpp"
#include "graph/dataset.hpp"
#include "partition/metis_like.hpp"
#include "partition/stats.hpp"

namespace bnsgcn::bench {

/// Global scale knob: BNSGCN_BENCH_SCALE multiplies dataset sizes (default
/// keeps every bench under ~a minute; set 2-4 for closer-to-paper shapes).
inline double bench_scale() {
  if (const char* s = std::getenv("BNSGCN_BENCH_SCALE")) {
    const double v = std::atof(s);
    if (v > 0.0) return v;
  }
  return 1.0;
}

inline void print_banner(const char* artifact, const char* description) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", artifact, description);
  std::printf("(synthetic datasets + simulated interconnect; see DESIGN.md)\n");
  std::printf("================================================================\n");
}

/// Per-dataset training configs mirroring Section 4's models at bench scale
/// (layer count kept, hidden width and epochs reduced with the graphs).
inline core::TrainerConfig reddit_config() {
  core::TrainerConfig cfg;
  cfg.num_layers = 4; // paper: 4 layers, 256 hidden
  cfg.hidden = 64;
  // Paper uses dropout 0.5; at 1/10 scale with 64 hidden units that much
  // regularization stalls early training, so the bench uses 0.3.
  cfg.dropout = 0.3f;
  cfg.lr = 0.01f;
  cfg.epochs = 60;
  cfg.seed = 41;
  return cfg;
}

inline core::TrainerConfig products_config() {
  core::TrainerConfig cfg;
  cfg.num_layers = 3; // paper: 3 layers, 128 hidden
  cfg.hidden = 64;
  cfg.dropout = 0.3f;
  cfg.lr = 0.003f;
  cfg.epochs = 60;
  cfg.seed = 47;
  return cfg;
}

inline core::TrainerConfig yelp_config() {
  core::TrainerConfig cfg;
  cfg.num_layers = 4; // paper: 4 layers, 512 hidden
  cfg.hidden = 64;
  cfg.dropout = 0.1f;
  // Paper uses lr 1e-3 over 3000 epochs; bench budgets are ~100 epochs, so
  // the rate is raised accordingly (sparse-positive BCE stays all-negative
  // far longer at 1e-3).
  cfg.lr = 0.01f;
  cfg.epochs = 60;
  cfg.seed = 100;
  return cfg;
}

inline core::TrainerConfig papers_config() {
  core::TrainerConfig cfg;
  cfg.num_layers = 3; // paper: 3 layers, 128 hidden
  cfg.hidden = 48;
  cfg.dropout = 0.5f;
  cfg.lr = 0.01f;
  cfg.epochs = 10;
  cfg.seed = 172;
  return cfg;
}

inline double mb(std::int64_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

} // namespace bnsgcn::bench
