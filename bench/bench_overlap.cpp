// Communication–computation overlap: blocking vs pipelined boundary
// exchange on the Figure 4 throughput configs. With RunConfig::comm.overlap
// on, each layer posts its sampled boundary sends asynchronously, computes
// the inner-only aggregation phase while the rows are in flight, and folds
// the halo contributions afterwards (docs/ARCHITECTURE.md §4). Training is
// bit-identical either way — the knob only changes how much exchange time
// EpochBreakdown::overlap_s hides — so the interesting columns are the
// simulated epoch times and the hidden fraction.
// Expected shape: overlapped epoch time strictly below blocking wherever
// there is boundary traffic (p > 0, m > 1); the absolute saving grows with
// the boundary volume, so p=1 hides more seconds than p=0.1 while p=0.1
// hides a larger *fraction* of its smaller compute-bound epochs.

#include "common.hpp"

namespace {

using namespace bnsgcn;

void run_dataset(const char* title, const char* preset, double scale,
                 const std::vector<PartId>& parts,
                 const api::BenchOptions& opts, bench::ReportSink& sink) {
  const auto pr = bench::load_preset(preset, scale);
  const Dataset& ds = pr.ds;
  std::printf("\n--- %s (n=%d, avg deg %.1f) ---\n", title, ds.num_nodes(),
              ds.graph.average_degree());
  // "saved" compares the overlapped run against its own blocking-equivalent
  // epoch (total_s + overlap_s): both modes execute the identical
  // instruction stream, so that difference is exactly the hidden exchange
  // time, free of run-to-run compute-measurement noise. The separately
  // measured blocking run is printed as context (and differs from the
  // equivalent only by that noise).
  std::printf("%-24s %10s %10s %9s %8s\n", "config", "block s/ep",
              "ovlp s/ep", "saved", "hidden");

  api::RunConfig base = pr.config(api::Method::kBns);
  base.trainer.epochs = opts.epochs_or(5); // throughput measurement only

  for (const PartId m : parts) {
    base.partition.nparts = m; // partitioned once, cached for all 4 runs
    for (const float p : {1.0f, 0.1f}) {
      auto cfg = base;
      cfg.trainer.sample_rate = p;

      cfg.comm.overlap = false;
      const auto blocking = sink.add(
          bench::label("%s m=%d p=%.2f blocking", preset, m, p), cfg,
          api::run(ds, cfg));

      cfg.comm.overlap = true;
      const auto overlapped = sink.add(
          bench::label("%s m=%d p=%.2f overlap", preset, m, p), cfg,
          api::run(ds, cfg));

      const double tb = blocking.epoch_time_s();
      const double to = overlapped.epoch_time_s();
      const double hidden = overlapped.overlap_saved_s();
      const double equiv = to + hidden; // this run, had it blocked
      std::printf("%-24s %10.4f %10.4f %8.2f%% %7.1f%%\n",
                  bench::label("m=%d p=%.2f", m, p).c_str(), tb, to,
                  equiv > 0.0 ? 100.0 * hidden / equiv : 0.0,
                  100.0 * overlapped.overlap_fraction());
    }
  }
}

} // namespace

int main(int argc, char** argv) {
  using namespace bnsgcn;
  const auto opts = api::parse_bench_args(argc, argv);
  bench::print_banner("Overlap",
                      "blocking vs pipelined boundary exchange (Fig. 4 configs)");
  bench::ReportSink sink("Overlap", opts);
  const double s = opts.scale;

  run_dataset("Reddit-like", "reddit", 0.5 * s, {2, 4, 8}, opts, sink);
  run_dataset("ogbn-products-like", "products", 0.4 * s, {5, 8, 10}, opts,
              sink);
  run_dataset("Yelp-like", "yelp", 0.5 * s, {3, 6, 10}, opts, sink);

  std::printf("\nshape check: every overlapped epoch time is below its "
              "blocking twin; losses are bit-identical between the two "
              "modes (pinned by tests/test_overlap.cpp).\n");
  return 0;
}
