#include "partition/stats.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>

#include "common/check.hpp"

namespace bnsgcn {

double PartitionStats::max_ratio() const {
  double mx = 0.0;
  for (std::size_t i = 0; i < inner_count.size(); ++i)
    mx = std::max(mx, ratio(static_cast<PartId>(i)));
  return mx;
}

double PartitionStats::mean_ratio() const {
  double sum = 0.0;
  for (std::size_t i = 0; i < inner_count.size(); ++i)
    sum += ratio(static_cast<PartId>(i));
  return sum / static_cast<double>(inner_count.size());
}

PartitionStats compute_stats(const Csr& g, const Partitioning& part) {
  BNSGCN_CHECK(part.num_nodes() == g.n);
  const PartId m = part.nparts;
  PartitionStats st;
  st.inner_count.assign(static_cast<std::size_t>(m), 0);
  st.boundary_count.assign(static_cast<std::size_t>(m), 0);
  st.send_volume.assign(static_cast<std::size_t>(m), 0);

  for (NodeId v = 0; v < g.n; ++v)
    ++st.inner_count[static_cast<std::size_t>(
        part.owner[static_cast<std::size_t>(v)])];

  // D(v): number of distinct remote partitions containing a neighbor of v.
  // boundary_count[i] accumulates |B_i| = |{v : owner(v) != i, v has a
  // neighbor in i}| — each (v, remote part) pair adds one to the remote
  // part's boundary set and one to the owner's send volume.
  std::vector<NodeId> seen(static_cast<std::size_t>(m), -1);
  for (NodeId v = 0; v < g.n; ++v) {
    const PartId pv = part.owner[static_cast<std::size_t>(v)];
    for (const NodeId u : g.neighbors(v)) {
      const PartId pu = part.owner[static_cast<std::size_t>(u)];
      if (u > v && pu != pv) ++st.edge_cut;
      if (pu != pv && seen[static_cast<std::size_t>(pu)] != v) {
        seen[static_cast<std::size_t>(pu)] = v;
        ++st.send_volume[static_cast<std::size_t>(pv)];
        ++st.boundary_count[static_cast<std::size_t>(pu)];
      }
    }
  }
  for (const EdgeId vol : st.send_volume) st.total_volume += vol;
  return st;
}

void print_stats(std::ostream& os, const PartitionStats& stats) {
  os << std::left << std::setw(18) << "Partition";
  for (std::size_t i = 0; i < stats.inner_count.size(); ++i)
    os << std::right << std::setw(9) << (i + 1);
  os << '\n' << std::left << std::setw(18) << "# Inner Nodes";
  for (const NodeId c : stats.inner_count)
    os << std::right << std::setw(9) << c;
  os << '\n' << std::left << std::setw(18) << "# Boundary Nodes";
  for (const NodeId c : stats.boundary_count)
    os << std::right << std::setw(9) << c;
  os << '\n' << std::left << std::setw(18) << "Boundary/Inner";
  os << std::fixed << std::setprecision(2);
  for (std::size_t i = 0; i < stats.inner_count.size(); ++i)
    os << std::right << std::setw(9) << stats.ratio(static_cast<PartId>(i));
  os << '\n'
     << "Edge cut: " << stats.edge_cut
     << "   Total comm volume (Eq. 3): " << stats.total_volume << '\n';
  os.unsetf(std::ios::fixed);
}

} // namespace bnsgcn
