#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace bnsgcn::nn {

double softmax_xent(const Matrix& logits, std::span<const int> labels,
                    std::span<const NodeId> rows, float inv_total,
                    Matrix& dlogits) {
  const std::int64_t c = logits.cols();
  dlogits.resize(logits.rows(), c);
  double loss = 0.0;
  std::vector<float> prob(static_cast<std::size_t>(c));
  for (const NodeId r : rows) {
    BNSGCN_CHECK(r >= 0 && r < logits.rows());
    const float* row = logits.data() + static_cast<std::int64_t>(r) * c;
    float mx = row[0];
    for (std::int64_t j = 1; j < c; ++j) mx = std::max(mx, row[j]);
    float sum = 0.0f;
    for (std::int64_t j = 0; j < c; ++j) {
      prob[static_cast<std::size_t>(j)] = std::exp(row[j] - mx);
      sum += prob[static_cast<std::size_t>(j)];
    }
    const float inv = 1.0f / sum;
    const int y = labels[static_cast<std::size_t>(r)];
    BNSGCN_CHECK(y >= 0 && y < c);
    float* grad = dlogits.data() + static_cast<std::int64_t>(r) * c;
    for (std::int64_t j = 0; j < c; ++j) {
      const float p = prob[static_cast<std::size_t>(j)] * inv;
      grad[j] = (p - (j == y ? 1.0f : 0.0f)) * inv_total;
    }
    const float py = prob[static_cast<std::size_t>(y)] * inv;
    loss -= std::log(std::max(py, 1e-30f)) * inv_total;
  }
  return loss;
}

double sigmoid_bce(const Matrix& logits, const Matrix& targets,
                   std::span<const NodeId> rows, float inv_total,
                   Matrix& dlogits) {
  BNSGCN_CHECK(logits.rows() == targets.rows() &&
               logits.cols() == targets.cols());
  const std::int64_t c = logits.cols();
  dlogits.resize(logits.rows(), c);
  double loss = 0.0;
  for (const NodeId r : rows) {
    const float* x = logits.data() + static_cast<std::int64_t>(r) * c;
    const float* t = targets.data() + static_cast<std::int64_t>(r) * c;
    float* grad = dlogits.data() + static_cast<std::int64_t>(r) * c;
    for (std::int64_t j = 0; j < c; ++j) {
      // Numerically stable BCE-with-logits:
      //   loss = max(x,0) - x*t + log(1 + exp(-|x|))
      const float xv = x[j];
      const float tv = t[j];
      loss += (std::max(xv, 0.0f) - xv * tv +
               std::log1p(std::exp(-std::abs(xv)))) *
              inv_total;
      const float sig = 1.0f / (1.0f + std::exp(-xv));
      grad[j] = (sig - tv) * inv_total;
    }
  }
  return loss;
}

std::pair<std::int64_t, std::int64_t> accuracy_counts(
    const Matrix& logits, std::span<const int> labels,
    std::span<const NodeId> rows) {
  std::int64_t correct = 0;
  const std::int64_t c = logits.cols();
  for (const NodeId r : rows) {
    const float* row = logits.data() + static_cast<std::int64_t>(r) * c;
    std::int64_t best = 0;
    for (std::int64_t j = 1; j < c; ++j)
      if (row[j] > row[best]) best = j;
    if (best == labels[static_cast<std::size_t>(r)]) ++correct;
  }
  return {correct, static_cast<std::int64_t>(rows.size())};
}

F1Counts f1_counts(const Matrix& logits, const Matrix& targets,
                   std::span<const NodeId> rows) {
  F1Counts out;
  const std::int64_t c = logits.cols();
  for (const NodeId r : rows) {
    const float* x = logits.data() + static_cast<std::int64_t>(r) * c;
    const float* t = targets.data() + static_cast<std::int64_t>(r) * c;
    for (std::int64_t j = 0; j < c; ++j) {
      const bool pred = x[j] > 0.0f;
      const bool truth = t[j] > 0.5f;
      if (pred && truth) ++out.tp;
      else if (pred && !truth) ++out.fp;
      else if (!pred && truth) ++out.fn;
    }
  }
  return out;
}

} // namespace bnsgcn::nn
