// Table 5: total training time and accuracy of BNS-GCN (10 partitions) vs
// sampling-based methods on ogbn-products.
// Expected shape: BNS p=0.1/0.01 trains faster than every minibatch method
// at equal-or-better accuracy (no per-batch sampling overhead, full-graph
// gradients).

#include "baselines/minibatch.hpp"

#include "common.hpp"

int main() {
  using namespace bnsgcn;
  bench::print_banner("Table 5",
                      "total train time + accuracy vs samplers (products)");

  const Dataset ds =
      make_synthetic(products_like(0.2 * bench::bench_scale()));
  auto cfg = bench::products_config();
  cfg.epochs = 80;

  baselines::BaselineConfig bcfg;
  bcfg.num_layers = cfg.num_layers;
  bcfg.hidden = cfg.hidden;
  bcfg.dropout = cfg.dropout;
  bcfg.lr = 0.01f;
  bcfg.epochs = cfg.epochs;
  bcfg.seed = cfg.seed;
  bcfg.batch_size = std::max<NodeId>(256, ds.num_nodes() / 16);
  bcfg.batches_per_epoch = 4;
  bcfg.clusters_per_batch = 6; // ClusterGCN needs decent per-epoch coverage

  std::printf("%-24s %16s %12s\n", "method", "train time (s)", "test acc %");
  const auto brow = [&](const char* name,
                        const baselines::BaselineResult& r) {
    std::printf("%-24s %16.2f %12.2f\n", name, r.wall_time_s,
                100.0 * r.final_test);
  };
  brow("ClusterGCN", baselines::train_cluster_gcn(ds, bcfg));
  brow("NeighborSampling", baselines::train_neighbor_sampling(ds, bcfg));
  brow("GraphSAINT", baselines::train_graph_saint(ds, bcfg));

  const auto part = metis_like(ds.graph, 10);
  for (const float p : {1.0f, 0.1f, 0.01f}) {
    auto c = cfg;
    c.sample_rate = p;
    const auto r = core::BnsTrainer(ds, part, c).train();
    // Simulated total (compute + modeled comm/reduce + sampling), so the
    // BNS rows carry their full interconnect cost just as the baselines
    // carry their full sampling cost.
    const double total = r.mean_epoch().total_s() * cfg.epochs;
    std::printf("BNS-GCN (p=%-4.2f)%8s %16.2f %12.2f\n", p, "", total,
                100.0 * r.final_test);
  }
  std::printf("\npaper shape check: BNS p=0.1 fastest at best accuracy "
              "(p=0.01 trades accuracy at this scale — see the ablation "
              "bench).\n");
  return 0;
}
