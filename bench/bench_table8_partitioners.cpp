// Table 8: efficiency improvement of BNS-GCN (p=0.1) on top of METIS vs
// random partitioning: throughput gain over p=1, memory ratio vs p=1, and
// the structural boundary-node counts.
// Expected shape: random partitioning has far more boundary nodes, so BNS
// buys it a *bigger* relative speedup and memory saving than METIS.

#include "common.hpp"

namespace {

using namespace bnsgcn;

void run_dataset(const char* title, const char* preset, double scale,
                 PartId parts, const api::BenchOptions& opts,
                 bench::ReportSink& sink) {
  const auto pr = bench::load_preset(preset, scale, opts);
  const Dataset& ds = pr.ds;
  api::RunConfig rcfg = pr.config(api::Method::kBns);
  rcfg.trainer.epochs = opts.epochs_or(5);
  std::printf("\n--- %s (%d partitions) ---\n", title, parts);
  std::printf("%-10s %14s %12s %16s\n", "partition", "throughput x",
              "memory x", "#boundary nodes");
  for (const bool metis : {true, false}) {
    api::PartitionSpec pspec;
    pspec.kind = metis ? api::PartitionSpec::Kind::kMetis
                       : api::PartitionSpec::Kind::kRandom;
    pspec.nparts = parts;
    pspec.seed = pr.trainer.seed;
    // The stats need the Partitioning itself; going through the cache
    // means the two api::run calls below hit instead of re-partitioning.
    const auto part = api::cached_partition(ds.graph, pspec);
    const auto stats = compute_stats(ds.graph, *part);
    const char* kind = metis ? "metis" : "random";
    rcfg.partition = pspec;
    rcfg.trainer.sample_rate = 1.0f;
    const auto full = sink.add(bench::label("%s %s p=1", preset, kind), rcfg,
                               api::run(ds, rcfg));
    rcfg.trainer.sample_rate = 0.1f;
    const auto bns = sink.add(bench::label("%s %s p=0.1", preset, kind), rcfg,
                              api::run(ds, rcfg));
    std::printf("%-10s %13.1fx %11.2fx %16lld\n", metis ? "METIS" : "Random",
                bns.throughput_eps() / full.throughput_eps(),
                bns.memory.max_model_bytes() /
                    static_cast<double>(full.memory.max_full_bytes()),
                static_cast<long long>(stats.total_volume));
  }
}

} // namespace

int main(int argc, char** argv) {
  using namespace bnsgcn;
  const auto opts = api::parse_bench_args(argc, argv);
  bench::print_banner("Table 8",
                      "BNS-GCN (p=0.1) gains on METIS vs random partition");
  bench::ReportSink sink("Table 8", opts);
  const double s = opts.scale;
  run_dataset("Reddit-like (8 partitions)", "reddit", 0.4 * s, 8, opts, sink);
  run_dataset("ogbn-products-like (10 partitions)", "products", 0.3 * s, 10,
              opts, sink);
  run_dataset("Yelp-like (10 partitions)", "yelp", 0.4 * s, 10, opts, sink);
  std::printf("\npaper shape check: random partition has ~2-10x the boundary "
              "nodes and gains more from BNS.\n");
  return 0;
}
