// Table 2: feature-approximation variance of BNS vs GraphSAGE-style,
// FastGCN-style and LADIES-style sampling at a matched budget.
// Expected shape: Var(BNS) < Var(LADIES) < Var(FastGCN), since
// B_i ⊆ N_i ⊆ V; neighbor sampling is worst at equal budget.

#include "core/variance.hpp"

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace bnsgcn;
  const auto opts = api::parse_bench_args(argc, argv);
  bench::print_banner("Table 2", "empirical feature-approximation variance");

  const auto pr = bench::load_preset("products", 0.2 * opts.scale, opts);
  const Dataset& ds = pr.ds;
  api::PartitionSpec pspec;
  pspec.nparts = 8;
  const auto part_ptr = api::cached_partition(ds.graph, pspec);
  const Partitioning& part = *part_ptr;

  std::printf("%-6s %10s %12s %12s %12s %12s\n", "p", "budget", "BNS",
              "LADIES", "FastGCN", "GraphSAGE");
  for (const float p : {0.01f, 0.1f, 0.5f}) {
    const auto rep =
        core::measure_variance(ds.graph, ds.features, part, 0, p,
                               /*trials=*/60, /*seed=*/7);
    std::printf("%-6.2f %10d %12.5f %12.5f %12.5f %12.5f\n", p, rep.budget,
                rep.bns, rep.ladies_like, rep.fastgcn_like, rep.sage_like);
  }
  const auto rep = core::measure_variance(ds.graph, ds.features, part, 0,
                                          0.1f, 60, 7);
  std::printf("\nset sizes: |B_i|=%d  |N_i|=%d  |V|=%d  (B ⊆ N ⊆ V)\n",
              rep.boundary_size, rep.neighbor_size, rep.global_size);
  return 0;
}
