#include <gtest/gtest.h>

#include "tensor/matrix.hpp"

namespace bnsgcn {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, ConstructZeroed) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  for (std::int64_t r = 0; r < 3; ++r)
    for (std::int64_t c = 0; c < 4; ++c) EXPECT_EQ(m.at(r, c), 0.0f);
}

TEST(Matrix, InitializerList) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.at(0, 0), 1.0f);
  EXPECT_EQ(m.at(1, 2), 6.0f);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1, 2}, {3}}), CheckError);
}

TEST(Matrix, CopyIsDeep) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b = a;
  b.at(0, 0) = 9;
  EXPECT_EQ(a.at(0, 0), 1.0f);
  EXPECT_EQ(b.at(0, 0), 9.0f);
}

TEST(Matrix, MoveTransfersAndEmpties) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b = std::move(a);
  EXPECT_EQ(b.at(1, 1), 4.0f);
  EXPECT_EQ(a.rows(), 0); // NOLINT(bugprone-use-after-move): spec'd behavior
}

TEST(Matrix, RowSpan) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  auto r1 = m.row(1);
  ASSERT_EQ(r1.size(), 3u);
  EXPECT_EQ(r1[0], 4.0f);
  r1[0] = 7.0f;
  EXPECT_EQ(m.at(1, 0), 7.0f);
}

TEST(Matrix, FillAndZero) {
  Matrix m(2, 2);
  m.fill(3.0f);
  EXPECT_EQ(m.at(1, 1), 3.0f);
  m.zero();
  EXPECT_EQ(m.at(1, 1), 0.0f);
}

TEST(Matrix, ReshapePreservesData) {
  Matrix m{{1, 2, 3, 4}};
  m.reshape(2, 2);
  EXPECT_EQ(m.at(1, 0), 3.0f);
  EXPECT_THROW(m.reshape(3, 2), CheckError);
}

TEST(Matrix, ResizeDiscards) {
  Matrix m{{1, 2}, {3, 4}};
  m.resize(1, 3);
  EXPECT_EQ(m.rows(), 1);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.at(0, 0), 0.0f);
}

TEST(Matrix, BytesAccounting) {
  Matrix m(10, 10);
  EXPECT_EQ(m.bytes(), 400);
}

TEST(MemoryTracker, TracksLiveAndPeak) {
  auto& tracker = MemoryTracker::instance();
  tracker.reset_peak();
  const std::int64_t base = tracker.live_bytes();
  {
    Matrix big(1000, 1000);
    EXPECT_GE(tracker.live_bytes(), base + big.bytes());
    EXPECT_GE(tracker.peak_bytes(), base + big.bytes());
  }
  EXPECT_LE(tracker.live_bytes(), base + 16);
  // Peak persists after the free.
  EXPECT_GE(tracker.peak_bytes(), base + 4'000'000);
}

TEST(Matrix, GaussianRandomize) {
  Matrix m(100, 100);
  Rng rng(1);
  m.randomize_gaussian(rng, 2.0f);
  double sum = 0.0, sq = 0.0;
  for (const float v : m.flat()) {
    sum += v;
    sq += static_cast<double>(v) * v;
  }
  const double n = static_cast<double>(m.size());
  EXPECT_NEAR(sum / n, 0.0, 0.1);
  EXPECT_NEAR(sq / n, 4.0, 0.2);
}

} // namespace
} // namespace bnsgcn
