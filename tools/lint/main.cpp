// lint_determinism — walk source trees and enforce the repo's determinism
// contracts as machine checks. Exit 0 when clean, 1 on violations, 2 on
// usage/IO errors. CI runs `lint_determinism src` (ci/verify.sh); the rule
// table is documented in docs/ARCHITECTURE.md §7.

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "lint/determinism_lint.hpp"

namespace {

void print_rules() {
  std::printf("determinism lint rules:\n");
  for (const auto& r : bnsgcn::lint::rules())
    std::printf("  %-20s %s\n", r.id.c_str(), r.summary.c_str());
  std::printf(
      "\nsuppress a single occurrence with a `// lint: allow(<rule>) — "
      "<reason>` annotation on the violating line or the line above.\n");
}

} // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      print_rules();
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      std::printf("usage: %s [--list-rules] <source-root>...\n", argv[0]);
      return 0;
    }
    roots.push_back(arg);
  }
  if (roots.empty()) {
    std::fprintf(stderr, "usage: %s [--list-rules] <source-root>...\n",
                 argv[0]);
    return 2;
  }

  int violations = 0;
  try {
    for (const std::string& root : roots) {
      const auto findings = bnsgcn::lint::lint_tree(root);
      for (const auto& f : findings) {
        std::printf("%s/%s:%d: [%s] %s\n", root.c_str(), f.file.c_str(),
                    f.line, f.rule.c_str(), f.message.c_str());
        ++violations;
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lint_determinism: %s\n", e.what());
    return 2;
  }
  if (violations > 0) {
    std::printf("lint_determinism: %d violation(s)\n", violations);
    return 1;
  }
  std::printf("lint_determinism: clean\n");
  return 0;
}
