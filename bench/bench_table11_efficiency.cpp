// Table 11: per-epoch training time of the sampling-based methods vs
// BNS-GCN (8 partitions) on Reddit-like.
// Expected shape: BNS-GCN (even at p=1) beats minibatch methods per epoch;
// p=0.1/0.01 extend the lead to an order of magnitude.

#include "baselines/minibatch.hpp"

#include "common.hpp"

int main() {
  using namespace bnsgcn;
  bench::print_banner("Table 11", "per-epoch train time vs samplers (Reddit)");

  const Dataset ds = make_synthetic(reddit_like(0.4 * bench::bench_scale()));
  auto cfg = bench::reddit_config();
  cfg.epochs = 5;

  baselines::BaselineConfig bcfg;
  bcfg.num_layers = cfg.num_layers;
  bcfg.hidden = cfg.hidden;
  bcfg.lr = 0.01f;
  bcfg.epochs = 5;
  bcfg.seed = 7;
  bcfg.batch_size = std::max<NodeId>(256, ds.num_nodes() / 12);
  bcfg.batches_per_epoch = 6; // cover ~half the train set per epoch

  std::printf("%-26s %16s %10s\n", "method", "epoch time (s)", "speedup");
  double sage_time = 0.0;
  const auto brow = [&](const char* name,
                        const baselines::BaselineResult& r) {
    if (sage_time == 0.0) sage_time = r.epoch_time_s;
    std::printf("%-26s %16.4f %9.1fx\n", name, r.epoch_time_s,
                sage_time / r.epoch_time_s);
  };
  brow("GraphSAGE", baselines::train_neighbor_sampling(ds, bcfg));
  brow("FastGCN", baselines::train_layer_sampling(ds, bcfg, false));
  brow("LADIES", baselines::train_layer_sampling(ds, bcfg, true));
  brow("ClusterGCN", baselines::train_cluster_gcn(ds, bcfg));
  brow("GraphSAINT", baselines::train_graph_saint(ds, bcfg));

  const auto part = metis_like(ds.graph, 8);
  for (const float p : {1.0f, 0.1f, 0.01f}) {
    auto c = cfg;
    c.sample_rate = p;
    const auto r = core::BnsTrainer(ds, part, c).train();
    // Wall epoch time: the 8 rank threads genuinely run in parallel here.
    const double t = r.wall_time_s / cfg.epochs;
    std::printf("BNS-GCN(%.2f)%14s %16.4f %9.1fx\n", p, "", t,
                sage_time / t);
  }
  std::printf("\npaper shape check: BNS rows fastest; speedup grows as p "
              "drops (paper: 8-41x vs GraphSAGE).\n");
  return 0;
}
