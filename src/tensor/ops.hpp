#pragma once

#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "tensor/matrix.hpp"

namespace bnsgcn::ops {

// ---------------------------------------------------------------------------
// GEMM family. All variants accumulate into a pre-shaped output:
//   C = alpha * op(A) * op(B) + beta * C
// Only the three shapes needed by the layers are provided; each is a blocked
// triple loop tuned for row-major operands (no transposed memory walks).
// ---------------------------------------------------------------------------

/// C[m,n] = alpha * A[m,k] * B[k,n] + beta * C
void gemm_nn(const Matrix& a, const Matrix& b, Matrix& c, float alpha = 1.0f,
             float beta = 0.0f);

/// Row-range gemm_nn: C[r,:] = alpha * A[r,:] * B + beta * C[r,:] for rows
/// r in [r0, r1) only; every other row of C is untouched. A and C may have
/// more rows than r1 (the chunked-stream forward runs over the inner-row
/// prefix of a [dst; halo]-shaped pair) — only the addressed range is read
/// or written, so chunked callers need no staging copies. Per-row results
/// are bit-identical to gemm_nn over the full shape: the k-accumulation
/// order is independent of the row blocking.
void gemm_nn_rows(const Matrix& a, const Matrix& b, Matrix& c,
                  std::int64_t r0, std::int64_t r1, float alpha = 1.0f,
                  float beta = 0.0f);

/// C[k,n] = alpha * A[m,k]^T * B[m,n] + beta * C   (weight gradients)
void gemm_tn(const Matrix& a, const Matrix& b, Matrix& c, float alpha = 1.0f,
             float beta = 0.0f);

/// C[m,k] = alpha * A[m,n] * B[k,n]^T + beta * C   (input gradients)
void gemm_nt(const Matrix& a, const Matrix& b, Matrix& c, float alpha = 1.0f,
             float beta = 0.0f);

// ---------------------------------------------------------------------------
// Elementwise / rowwise.
// ---------------------------------------------------------------------------

/// y += x (shapes must match).
void add_inplace(Matrix& y, const Matrix& x);

/// y = a*x + y (axpy over the flat buffer).
void axpy(float a, const Matrix& x, Matrix& y);

void scale_inplace(Matrix& y, float s);

/// out[r,:] = x[r,:] + bias[0,:] for every row.
void add_row_bias(Matrix& x, const Matrix& bias);

/// add_row_bias over rows [r0, r1) only (chunked-stream companion of
/// gemm_nn_rows).
void add_row_bias_rows(Matrix& x, const Matrix& bias, std::int64_t r0,
                       std::int64_t r1);

/// bias_grad[0,:] += column sums of grad.
void col_sum(const Matrix& grad, Matrix& out);

/// ReLU forward in place; mask receives 1/0 for backward.
void relu_forward(Matrix& x, Matrix& mask);

/// Maskless ReLU for forward-only (inference) passes: identical outputs,
/// no backward mask allocated.
void relu_forward(Matrix& x);

/// grad *= mask (backward through ReLU).
void relu_backward(Matrix& grad, const Matrix& mask);

/// LeakyReLU with slope (GAT attention) — returns activated copy semantics
/// via in-place transform; mask stores the effective slope per element.
void leaky_relu_forward(Matrix& x, Matrix& mask, float slope);
void leaky_relu_backward(Matrix& grad, const Matrix& mask);

/// Inverted dropout: zero with prob p, scale kept values by 1/(1-p).
/// mask holds the applied multiplier so backward is grad *= mask.
void dropout_forward(Matrix& x, Matrix& mask, float p, Rng& rng);
void dropout_backward(Matrix& grad, const Matrix& mask);

/// Numerically stable row-wise softmax (in place).
void softmax_rows(Matrix& x);

// ---------------------------------------------------------------------------
// Gather / scatter over row indices — the halo exchange primitives.
// ---------------------------------------------------------------------------

/// out[i,:] = src[idx[i],:]. out is resized to (idx.size(), src.cols()).
void gather_rows(const Matrix& src, std::span<const NodeId> idx, Matrix& out);

/// dst[idx[i],:] += src[i,:]
void scatter_add_rows(const Matrix& src, std::span<const NodeId> idx,
                      Matrix& dst);

/// Concatenate columns: out = [a | b].
void concat_cols(const Matrix& a, const Matrix& b, Matrix& out);

/// Split columns (backward of concat): a = out[:, :a_cols], b = rest.
void split_cols(const Matrix& out, Matrix& a, Matrix& b, std::int64_t a_cols);

// ---------------------------------------------------------------------------
// Init / comparison helpers.
// ---------------------------------------------------------------------------

/// Glorot/Xavier uniform-equivalent Gaussian init for a [fan_in, fan_out]
/// weight: stddev = sqrt(2 / (fan_in + fan_out)).
void glorot_init(Matrix& w, Rng& rng);

/// Max |a-b| over all elements; shapes must match.
[[nodiscard]] float max_abs_diff(const Matrix& a, const Matrix& b);

/// Frobenius norm squared.
[[nodiscard]] double frobenius_norm_sq(const Matrix& a);

} // namespace bnsgcn::ops
