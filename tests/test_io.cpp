#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "tensor/ops.hpp"

namespace bnsgcn {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Io, CsrRoundTrip) {
  Rng rng(1);
  const Csr g = gen::rmat(512, 4000, rng);
  const auto path = temp_path("bnsgcn_csr_test.bin");
  save_csr(g, path);
  const Csr loaded = load_csr(path);
  EXPECT_EQ(loaded.n, g.n);
  EXPECT_EQ(loaded.offsets, g.offsets);
  EXPECT_EQ(loaded.nbrs, g.nbrs);
  std::remove(path.c_str());
}

TEST(Io, DatasetRoundTripSingleLabel) {
  SyntheticSpec spec;
  spec.n = 400;
  spec.m = 2000;
  spec.communities = 4;
  spec.num_classes = 4;
  spec.feat_dim = 8;
  spec.seed = 2;
  const Dataset ds = make_synthetic(spec);
  const auto path = temp_path("bnsgcn_ds_test.bin");
  save_dataset(ds, path);
  const Dataset loaded = load_dataset(path);
  loaded.validate();
  EXPECT_EQ(loaded.name, ds.name);
  EXPECT_EQ(loaded.labels, ds.labels);
  EXPECT_EQ(loaded.train_nodes, ds.train_nodes);
  EXPECT_EQ(loaded.num_classes, 4);
  EXPECT_FALSE(loaded.multilabel);
  EXPECT_LT(ops::max_abs_diff(loaded.features, ds.features), 1e-9f);
  std::remove(path.c_str());
}

TEST(Io, DatasetRoundTripMultilabel) {
  SyntheticSpec spec;
  spec.n = 300;
  spec.m = 1500;
  spec.communities = 5;
  spec.num_classes = 5;
  spec.multilabel = true;
  spec.seed = 3;
  const Dataset ds = make_synthetic(spec);
  const auto path = temp_path("bnsgcn_dsml_test.bin");
  save_dataset(ds, path);
  const Dataset loaded = load_dataset(path);
  loaded.validate();
  EXPECT_TRUE(loaded.multilabel);
  EXPECT_LT(ops::max_abs_diff(loaded.multilabels, ds.multilabels), 1e-9f);
  std::remove(path.c_str());
}

TEST(Io, MissingFileThrows) {
  EXPECT_THROW(load_csr("/nonexistent/path/graph.bin"), CheckError);
  EXPECT_THROW(load_dataset("/nonexistent/path/ds.bin"), CheckError);
}

TEST(Io, WrongMagicRejected) {
  const auto path = temp_path("bnsgcn_badmagic.bin");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    const char junk[32] = "not a graph file at all";
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
  }
  EXPECT_THROW(load_csr(path), CheckError);
  std::remove(path.c_str());
}

TEST(Io, TruncatedFileRejected) {
  Rng rng(4);
  const Csr g = gen::ring(100);
  const auto path = temp_path("bnsgcn_trunc.bin");
  save_csr(g, path);
  std::filesystem::resize_file(path, 24); // cut mid-offsets
  EXPECT_THROW(load_csr(path), CheckError);
  std::remove(path.c_str());
}

} // namespace
} // namespace bnsgcn
