#pragma once

#include <vector>

#include "common/rng.hpp"
#include "graph/csr.hpp"

namespace bnsgcn::gen {

/// G(n, m) Erdős–Rényi: m undirected edges sampled uniformly.
[[nodiscard]] Csr erdos_renyi(NodeId n, EdgeId m, Rng& rng);

/// R-MAT (a,b,c,d) recursive-matrix generator — power-law, hub-heavy graphs
/// without community structure. n is rounded up to a power of two internally
/// and trimmed back.
struct RmatParams {
  double a = 0.57, b = 0.19, c = 0.19; // d = 1 - a - b - c
};
[[nodiscard]] Csr rmat(NodeId n, EdgeId m, Rng& rng, const RmatParams& p = {});

/// Barabási–Albert preferential attachment with `attach` edges per new node.
[[nodiscard]] Csr barabasi_albert(NodeId n, NodeId attach, Rng& rng);

/// Degree-corrected planted-partition model — the workhorse for dataset
/// synthesis. Nodes get a power-law weight (Pareto with `skew`); each of the
/// m edges picks "intra-community" with probability `p_intra`, then samples
/// both endpoints degree-proportionally within the chosen community pair.
///
/// This reproduces the two structural properties the paper's experiments
/// rely on: heavy-tailed degrees (boundary-node explosion, Table 1/Fig. 3)
/// and clusterability (METIS-like partitions align with communities).
struct PlantedPartitionParams {
  NodeId n = 10'000;
  EdgeId m = 200'000;      // undirected edge budget
  int communities = 8;
  double p_intra = 0.9;    // probability an edge stays inside a community
  double skew = 2.5;       // Pareto shape; smaller = heavier tail
};
struct PlantedPartition {
  Csr graph;
  std::vector<int> community; // size n
};
[[nodiscard]] PlantedPartition planted_partition(
    const PlantedPartitionParams& params, Rng& rng);

/// Ring over n nodes (tests).
[[nodiscard]] Csr ring(NodeId n);

/// Star: node 0 connected to all others (tests).
[[nodiscard]] Csr star(NodeId n);

/// 2D grid graph rows x cols (tests).
[[nodiscard]] Csr grid(NodeId rows, NodeId cols);

} // namespace bnsgcn::gen
