#!/usr/bin/env bash
# Docs link check: fail on relative markdown links that point at files
# which do not exist. Scans README.md and docs/*.md, ignoring fenced code
# blocks (``` ... ```) and inline code spans. External links
# (http/https/mailto) are out of scope — CI must not depend on the network.
set -euo pipefail

cd "$(dirname "$0")/.."

fail=0

for md in README.md docs/*.md; do
  [ -e "$md" ] || continue
  dir="$(dirname "$md")"
  # Strip fenced code blocks and inline code spans, then pull out inline
  # link targets: [text](target).
  targets=$(awk '/^[[:space:]]*```/ { fence = !fence; next } !fence' "$md" |
            sed 's/`[^`]*`//g' |
            grep -oE '\]\([^)]+\)' | sed -e 's/^](//' -e 's/)$//' || true)
  while IFS= read -r target; do
    [ -z "$target" ] && continue
    case "$target" in
      http://*|https://*|mailto:*) continue ;;
      *" "*) continue ;;    # not a path (prose caught by the regex)
    esac
    path="${target%%#*}"    # strip an anchor, keep the file part
    [ -z "$path" ] && continue  # pure in-page anchor: nothing to stat
    if [ ! -e "$dir/$path" ]; then
      echo "dead link in $md: ($target) -> missing $dir/$path" >&2
      fail=1
    fi
  done <<< "$targets"
done

if [ "$fail" -ne 0 ]; then
  echo "docs link check FAILED" >&2
  exit 1
fi
echo "docs link check OK"
