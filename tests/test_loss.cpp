#include <gtest/gtest.h>

#include <cmath>

#include "nn/loss.hpp"

namespace bnsgcn {
namespace {

TEST(SoftmaxXent, UniformLogits) {
  Matrix logits(1, 4); // all zeros → uniform distribution
  const std::vector<int> labels{2};
  const std::vector<NodeId> rows{0};
  Matrix dlogits;
  const double loss = nn::softmax_xent(logits, labels, rows, 1.0f, dlogits);
  EXPECT_NEAR(loss, std::log(4.0), 1e-5);
  EXPECT_NEAR(dlogits.at(0, 2), 0.25 - 1.0, 1e-5);
  EXPECT_NEAR(dlogits.at(0, 0), 0.25, 1e-5);
}

TEST(SoftmaxXent, ConfidentCorrectPrediction) {
  Matrix logits{{100.0f, 0.0f}};
  const std::vector<int> labels{0};
  const std::vector<NodeId> rows{0};
  Matrix dlogits;
  const double loss = nn::softmax_xent(logits, labels, rows, 1.0f, dlogits);
  EXPECT_NEAR(loss, 0.0, 1e-5);
  EXPECT_NEAR(dlogits.at(0, 0), 0.0, 1e-5);
}

TEST(SoftmaxXent, OnlySelectedRowsContribute) {
  Matrix logits(3, 2);
  logits.at(1, 0) = 5.0f;
  const std::vector<int> labels{0, 1, 0};
  const std::vector<NodeId> rows{0, 2}; // row 1 excluded
  Matrix dlogits;
  (void)nn::softmax_xent(logits, labels, rows, 1.0f, dlogits);
  EXPECT_FLOAT_EQ(dlogits.at(1, 0), 0.0f);
  EXPECT_FLOAT_EQ(dlogits.at(1, 1), 0.0f);
  EXPECT_NE(dlogits.at(0, 0), 0.0f);
}

TEST(SoftmaxXent, GradientMatchesFiniteDifference) {
  Rng rng(1);
  Matrix logits(4, 5);
  logits.randomize_gaussian(rng, 1.0f);
  const std::vector<int> labels{1, 4, 0, 2};
  const std::vector<NodeId> rows{0, 1, 3};
  Matrix dlogits;
  (void)nn::softmax_xent(logits, labels, rows, 0.5f, dlogits);

  constexpr float kEps = 1e-3f;
  for (std::int64_t i = 0; i < logits.size(); i += 2) {
    const float saved = logits.data()[i];
    Matrix scratch;
    logits.data()[i] = saved + kEps;
    const double up = nn::softmax_xent(logits, labels, rows, 0.5f, scratch);
    logits.data()[i] = saved - kEps;
    const double down = nn::softmax_xent(logits, labels, rows, 0.5f, scratch);
    logits.data()[i] = saved;
    EXPECT_NEAR(dlogits.data()[i], (up - down) / (2 * kEps), 2e-3);
  }
}

TEST(SoftmaxXent, ScalingContract) {
  // Loss with inv_total = 1/N equals mean over the N selected rows.
  Rng rng(2);
  Matrix logits(10, 3);
  logits.randomize_gaussian(rng, 1.0f);
  std::vector<int> labels(10);
  for (std::size_t i = 0; i < 10; ++i) labels[i] = static_cast<int>(i % 3);
  std::vector<NodeId> all_rows;
  for (NodeId r = 0; r < 10; ++r) all_rows.push_back(r);
  Matrix d1, d2;
  const double sum = nn::softmax_xent(logits, labels, all_rows, 1.0f, d1);
  const double mean = nn::softmax_xent(logits, labels, all_rows, 0.1f, d2);
  EXPECT_NEAR(mean, sum * 0.1, 1e-6);
}

TEST(SigmoidBce, HandComputedValues) {
  Matrix logits{{0.0f, 10.0f}};
  Matrix targets{{1.0f, 1.0f}};
  const std::vector<NodeId> rows{0};
  Matrix dlogits;
  const double loss = nn::sigmoid_bce(logits, targets, rows, 1.0f, dlogits);
  EXPECT_NEAR(loss, std::log(2.0) + std::log1p(std::exp(-10.0)), 1e-6);
  EXPECT_NEAR(dlogits.at(0, 0), -0.5f, 1e-6);
}

TEST(SigmoidBce, GradientMatchesFiniteDifference) {
  Rng rng(3);
  Matrix logits(3, 4);
  logits.randomize_gaussian(rng, 1.0f);
  Matrix targets(3, 4);
  for (std::int64_t i = 0; i < targets.size(); ++i)
    targets.data()[i] = (i % 3 == 0) ? 1.0f : 0.0f;
  const std::vector<NodeId> rows{0, 2};
  Matrix dlogits;
  (void)nn::sigmoid_bce(logits, targets, rows, 0.25f, dlogits);
  constexpr float kEps = 1e-3f;
  for (std::int64_t i = 0; i < logits.size(); i += 2) {
    const float saved = logits.data()[i];
    Matrix scratch;
    logits.data()[i] = saved + kEps;
    const double up = nn::sigmoid_bce(logits, targets, rows, 0.25f, scratch);
    logits.data()[i] = saved - kEps;
    const double down = nn::sigmoid_bce(logits, targets, rows, 0.25f, scratch);
    logits.data()[i] = saved;
    EXPECT_NEAR(dlogits.data()[i], (up - down) / (2 * kEps), 2e-3);
  }
}

TEST(Accuracy, CountsCorrect) {
  Matrix logits{{1, 0}, {0, 1}, {3, 2}};
  const std::vector<int> labels{0, 0, 0};
  const std::vector<NodeId> rows{0, 1, 2};
  const auto [correct, total] = nn::accuracy_counts(logits, labels, rows);
  EXPECT_EQ(correct, 2);
  EXPECT_EQ(total, 3);
}

TEST(F1, PerfectPrediction) {
  Matrix logits{{5.0f, -5.0f}};
  Matrix targets{{1.0f, 0.0f}};
  const std::vector<NodeId> rows{0};
  const auto counts = nn::f1_counts(logits, targets, rows);
  EXPECT_EQ(counts.tp, 1);
  EXPECT_EQ(counts.fp, 0);
  EXPECT_EQ(counts.fn, 0);
  EXPECT_DOUBLE_EQ(counts.micro_f1(), 1.0);
}

TEST(F1, MixedPrediction) {
  Matrix logits{{5.0f, 5.0f, -5.0f, -5.0f}};
  Matrix targets{{1.0f, 0.0f, 1.0f, 0.0f}};
  const std::vector<NodeId> rows{0};
  const auto counts = nn::f1_counts(logits, targets, rows);
  EXPECT_EQ(counts.tp, 1);
  EXPECT_EQ(counts.fp, 1);
  EXPECT_EQ(counts.fn, 1);
  EXPECT_NEAR(counts.micro_f1(), 0.5, 1e-12);
}

TEST(F1, EmptyIsZero) {
  nn::F1Counts c;
  EXPECT_DOUBLE_EQ(c.micro_f1(), 0.0);
}

} // namespace
} // namespace bnsgcn
