// Failure-injection and degenerate-topology tests across modules: the
// situations a downstream user will hit first (empty train split on a rank,
// isolated nodes, more partitions than communities, zero-size collectives).

#include <gtest/gtest.h>

#include <thread>

#include "baselines/minibatch.hpp"
#include "comm/fabric.hpp"
#include "core/trainer.hpp"
#include "graph/generators.hpp"
#include "partition/metis_like.hpp"

namespace bnsgcn {
namespace {

TEST(EdgeCases, PartitionWithoutTrainNodes) {
  // All train nodes live in the first half of the id space; a contiguous
  // partition leaves rank 1 with zero train rows. Its loss contribution is
  // zero but it must still participate in every collective.
  SyntheticSpec spec;
  spec.n = 600;
  spec.m = 4000;
  spec.communities = 4;
  spec.num_classes = 4;
  spec.feat_dim = 8;
  spec.seed = 5;
  Dataset ds = make_synthetic(spec);
  std::vector<NodeId> train, rest;
  for (const NodeId v : ds.train_nodes)
    (v < 300 ? train : rest).push_back(v);
  for (const NodeId v : rest) ds.test_nodes.push_back(v);
  ds.train_nodes = train;
  std::sort(ds.test_nodes.begin(), ds.test_nodes.end());
  ds.validate();

  Partitioning part;
  part.nparts = 2;
  part.owner.resize(600);
  for (NodeId v = 0; v < 600; ++v)
    part.owner[static_cast<std::size_t>(v)] = v < 300 ? 0 : 1;

  core::TrainerConfig cfg;
  cfg.num_layers = 2;
  cfg.hidden = 16;
  cfg.epochs = 10;
  cfg.sample_rate = 0.5f;
  const auto result = core::BnsTrainer(ds, part, cfg).train();
  // Two of the four classes have no training examples after the surgery,
  // so test accuracy is capped low; the point is that the trainless rank
  // participates in every collective and optimization still progresses.
  EXPECT_GT(result.final_test, 0.1);
  EXPECT_LT(result.train_loss.back(), result.train_loss.front());
}

TEST(EdgeCases, GraphWithIsolatedNodes) {
  // Isolated nodes have degree 0: aggregation must yield zero without
  // dividing by zero, and training must proceed.
  CooBuilder b(200);
  for (NodeId v = 0; v + 1 < 100; ++v) b.add_edge(v, v + 1); // half isolated
  Dataset ds;
  ds.name = "isolated";
  ds.graph = b.build();
  ds.num_classes = 2;
  ds.features.resize(200, 4);
  Rng rng(1);
  ds.features.randomize_gaussian(rng, 1.0f);
  ds.labels.resize(200);
  for (NodeId v = 0; v < 200; ++v) {
    ds.labels[static_cast<std::size_t>(v)] = v % 2;
    ds.features.at(v, 0) += (v % 2 == 0) ? 2.0f : -2.0f;
    if (v < 150)
      ds.train_nodes.push_back(v);
    else
      ds.test_nodes.push_back(v);
  }
  ds.validate();
  Rng prng(2);
  const auto part = random_partition(200, 2, prng);
  core::TrainerConfig cfg;
  cfg.num_layers = 2;
  cfg.hidden = 8;
  cfg.epochs = 30;
  const auto result = core::BnsTrainer(ds, part, cfg).train();
  EXPECT_GT(result.final_test, 0.7); // features alone separate the classes
}

TEST(EdgeCases, MorePartitionsThanCommunities) {
  Rng rng(3);
  gen::PlantedPartitionParams pp;
  pp.n = 800;
  pp.m = 6000;
  pp.communities = 3;
  const auto planted = gen::planted_partition(pp, rng);
  const auto part = metis_like(planted.graph, 12);
  part.validate();
}

TEST(EdgeCases, AllreduceZeroLength) {
  comm::Fabric fabric(3);
  std::vector<std::thread> threads;
  for (PartId r = 0; r < 3; ++r) {
    threads.emplace_back([&fabric, r] {
      std::vector<float> empty;
      fabric.endpoint(r).allreduce_sum(empty);
    });
  }
  for (auto& t : threads) t.join();
}

TEST(EdgeCases, SingleRankFabricCollectives) {
  comm::Fabric fabric(1);
  auto& ep = fabric.endpoint(0);
  std::vector<float> data{1.0f, 2.0f};
  ep.allreduce_sum(data);
  EXPECT_FLOAT_EQ(data[0], 1.0f);
  EXPECT_DOUBLE_EQ(ep.allreduce_sum_scalar(5.0), 5.0);
  const auto all = ep.allgather_ids({7, 8});
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0], (std::vector<NodeId>{7, 8}));
}

TEST(EdgeCases, TwoNodeTinyDatasetTrains) {
  // Smallest functional configuration: 2 partitions of a 10-node graph.
  CooBuilder b(10);
  for (NodeId v = 0; v + 1 < 10; ++v) b.add_edge(v, v + 1);
  Dataset ds;
  ds.name = "tiny";
  ds.graph = b.build();
  ds.num_classes = 2;
  ds.features.resize(10, 2);
  for (NodeId v = 0; v < 10; ++v) {
    ds.labels.push_back(v < 5 ? 0 : 1);
    ds.features.at(v, 0) = v < 5 ? 1.0f : -1.0f;
    if (v % 2 == 0)
      ds.train_nodes.push_back(v);
    else
      ds.test_nodes.push_back(v);
  }
  ds.validate();
  Partitioning part;
  part.nparts = 2;
  part.owner = {0, 0, 0, 0, 0, 1, 1, 1, 1, 1};
  core::TrainerConfig cfg;
  cfg.num_layers = 2;
  cfg.hidden = 4;
  cfg.epochs = 40;
  const auto result = core::BnsTrainer(ds, part, cfg).train();
  EXPECT_GT(result.final_test, 0.7);
}

TEST(EdgeCases, MinibatchWithBatchLargerThanTrainSet) {
  SyntheticSpec spec;
  spec.n = 300;
  spec.m = 2000;
  spec.communities = 3;
  spec.num_classes = 3;
  spec.feat_dim = 8;
  spec.train_frac = 0.1; // tiny train set
  spec.seed = 7;
  const Dataset ds = make_synthetic(spec);
  core::TrainerConfig cfg;
  cfg.num_layers = 2;
  cfg.hidden = 8;
  cfg.epochs = 5;
  baselines::MinibatchConfig mb;
  mb.batch_size = 10'000; // far larger than the train split
  mb.batches_per_epoch = 2;
  const auto result = baselines::train_neighbor_sampling(ds, cfg, mb);
  EXPECT_EQ(result.train_loss.size(), 5u);
}

TEST(EdgeCases, RngNextBelowOne) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(EdgeCases, DropEdgeRateOneKeepsEverything) {
  Rng rng(13);
  const Csr g = gen::erdos_renyi(200, 1500, rng);
  const auto part = random_partition(g.n, 2, rng);
  const auto lgs = core::build_local_graphs(g, part);
  comm::Fabric fabric(2);
  std::vector<core::BoundarySampler> samplers;
  for (PartId r = 0; r < 2; ++r)
    samplers.emplace_back(
        lgs[static_cast<std::size_t>(r)],
        core::BoundarySampler::Options{
            .variant = core::SamplingVariant::kDropEdge,
            .rate = 1.0f,
            .seed = 17ull + static_cast<std::uint64_t>(r)});
  std::vector<core::EpochPlan> plans(2);
  std::vector<std::thread> threads;
  for (PartId r = 0; r < 2; ++r)
    threads.emplace_back([&, r] {
      plans[static_cast<std::size_t>(r)] =
          samplers[static_cast<std::size_t>(r)].sample_epoch(
              fabric.endpoint(r), 0);
    });
  for (auto& t : threads) t.join();
  for (std::size_t r = 0; r < 2; ++r) {
    EXPECT_EQ(plans[r].dropped_edges, 0);
    EXPECT_EQ(plans[r].n_kept_halo, lgs[r].n_halo());
  }
}

} // namespace
} // namespace bnsgcn
