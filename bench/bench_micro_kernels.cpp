// Micro-benchmarks (google-benchmark) for the kernels the trainer spends
// its time in: GEMM, mean aggregation, boundary sampling/compaction, and
// the METIS-like partitioner.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "common/thread_pool.hpp"
#include "core/boundary_sampler.hpp"
#include "core/epoch_planner.hpp"
#include "core/local_graph.hpp"
#include "graph/generators.hpp"
#include "nn/layer.hpp"
#include "partition/metis_like.hpp"
#include "tensor/ops.hpp"

namespace {

using namespace bnsgcn;

void BM_GemmNN(benchmark::State& state) {
  const auto n = static_cast<std::int64_t>(state.range(0));
  Rng rng(1);
  Matrix a(n, 64), b(64, 64), c(n, 64);
  a.randomize_gaussian(rng, 1.0f);
  b.randomize_gaussian(rng, 1.0f);
  for (auto _ : state) {
    ops::gemm_nn(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * 64 * 64 * 2);
}
BENCHMARK(BM_GemmNN)->Arg(1024)->Arg(8192);

// The thread-pool sweep: the same kernels at K ∈ {1,2,4,8} lanes. K=1 rows
// are the before (bit-for-bit the scalar kernels — the serial fast path
// never touches the pool); higher-K rows the after. items_per_second is the
// comparison axis; outputs stay bit-identical across the whole sweep (the
// determinism contract in common/thread_pool.hpp), which test_ops pins.
void BM_GemmNNThreads(benchmark::State& state) {
  const auto n = static_cast<std::int64_t>(state.range(0));
  const auto k = static_cast<int>(state.range(1));
  common::set_ops_threads(k);
  Rng rng(1);
  Matrix a(n, 64), b(64, 64), c(n, 64);
  a.randomize_gaussian(rng, 1.0f);
  b.randomize_gaussian(rng, 1.0f);
  for (auto _ : state) {
    ops::gemm_nn(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  common::set_ops_threads(1);
  state.SetItemsProcessed(state.iterations() * n * 64 * 64 * 2);
}
BENCHMARK(BM_GemmNNThreads)
    ->ArgsProduct({{1024, 8192}, {1, 2, 4, 8}})
    ->ArgNames({"n", "threads"});

void BM_GemmTNThreads(benchmark::State& state) {
  const auto n = static_cast<std::int64_t>(state.range(0));
  const auto k = static_cast<int>(state.range(1));
  common::set_ops_threads(k);
  Rng rng(1);
  Matrix a(n, 256), b(n, 64), c(256, 64);
  a.randomize_gaussian(rng, 1.0f);
  b.randomize_gaussian(rng, 1.0f);
  for (auto _ : state) {
    ops::gemm_tn(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  common::set_ops_threads(1);
  state.SetItemsProcessed(state.iterations() * n * 256 * 64 * 2);
}
BENCHMARK(BM_GemmTNThreads)
    ->ArgsProduct({{8192}, {1, 2, 4, 8}})
    ->ArgNames({"n", "threads"});

// The chunked-stream F1 transform, two ways: the old staged path (copy each
// row chunk to a scratch block, full gemm_nn on the block, copy the result
// into place) vs the row-range kernel writing the output rows directly.
// Same FLOPs; the delta is pure staging-copy overhead.
void BM_GemmChunkedStaged(benchmark::State& state) {
  const auto n = static_cast<std::int64_t>(state.range(0));
  const std::int64_t chunk = 128;
  Rng rng(1);
  Matrix a(n, 64), b(64, 64), c(n, 64);
  a.randomize_gaussian(rng, 1.0f);
  b.randomize_gaussian(rng, 1.0f);
  for (auto _ : state) {
    for (std::int64_t r0 = 0; r0 < n; r0 += chunk) {
      const std::int64_t r1 = std::min(n, r0 + chunk);
      Matrix block(r1 - r0, 64), tmp(r1 - r0, 64);
      std::copy(a.data() + r0 * 64, a.data() + r1 * 64, block.data());
      ops::gemm_nn(block, b, tmp);
      std::copy(tmp.data(), tmp.data() + tmp.size(), c.data() + r0 * 64);
    }
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * 64 * 64 * 2);
}
BENCHMARK(BM_GemmChunkedStaged)->Arg(1024)->Arg(8192);

void BM_GemmChunkedRows(benchmark::State& state) {
  const auto n = static_cast<std::int64_t>(state.range(0));
  const std::int64_t chunk = 128;
  Rng rng(1);
  Matrix a(n, 64), b(64, 64), c(n, 64);
  a.randomize_gaussian(rng, 1.0f);
  b.randomize_gaussian(rng, 1.0f);
  for (auto _ : state) {
    for (std::int64_t r0 = 0; r0 < n; r0 += chunk) {
      ops::gemm_nn_rows(a, b, c, r0, std::min(n, r0 + chunk));
    }
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * 64 * 64 * 2);
}
BENCHMARK(BM_GemmChunkedRows)->Arg(1024)->Arg(8192);

void BM_MeanAggregate(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng rng(2);
  const Csr g = gen::rmat(n, static_cast<EdgeId>(n) * 16, rng);
  nn::BipartiteCsr adj;
  adj.n_dst = g.n;
  adj.n_src = g.n;
  adj.offsets = g.offsets;
  adj.nbrs = g.nbrs;
  std::vector<float> inv(static_cast<std::size_t>(g.n), 0.0f);
  for (NodeId v = 0; v < g.n; ++v)
    if (g.degree(v) > 0) inv[static_cast<std::size_t>(v)] = 1.0f / g.degree(v);
  Matrix src(g.n, 64), out;
  src.randomize_gaussian(rng, 1.0f);
  for (auto _ : state) {
    nn::mean_aggregate(adj, src, inv, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * g.num_arcs() * 64);
}
BENCHMARK(BM_MeanAggregate)->Arg(4096)->Arg(32768);

void BM_MeanAggregateThreads(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const auto k = static_cast<int>(state.range(1));
  common::set_ops_threads(k);
  Rng rng(2);
  const Csr g = gen::rmat(n, static_cast<EdgeId>(n) * 16, rng);
  nn::BipartiteCsr adj;
  adj.n_dst = g.n;
  adj.n_src = g.n;
  adj.offsets = g.offsets;
  adj.nbrs = g.nbrs;
  std::vector<float> inv(static_cast<std::size_t>(g.n), 0.0f);
  for (NodeId v = 0; v < g.n; ++v)
    if (g.degree(v) > 0) inv[static_cast<std::size_t>(v)] = 1.0f / g.degree(v);
  Matrix src(g.n, 64), out;
  src.randomize_gaussian(rng, 1.0f);
  for (auto _ : state) {
    nn::mean_aggregate(adj, src, inv, out);
    benchmark::DoNotOptimize(out.data());
  }
  common::set_ops_threads(1);
  state.SetItemsProcessed(state.iterations() * g.num_arcs() * 64);
}
BENCHMARK(BM_MeanAggregateThreads)
    ->ArgsProduct({{32768}, {1, 2, 4, 8}})
    ->ArgNames({"n", "threads"});

void BM_EpochPlannerDraw(benchmark::State& state) {
  // Strategy-only cost of one epoch's random draw (no compaction, no
  // negotiation) for the BNS planner.
  Rng rng(5);
  const Csr g = gen::rmat(16384, 200000, rng);
  const auto part = random_partition(g.n, 2, rng);
  const auto lgs = core::build_local_graphs(g, part);
  const core::BnsPlanner planner({.rate = 0.1f, .unbiased_scaling = true});
  Rng draw_rng(6);
  for (auto _ : state) {
    auto draw = planner.draw(lgs[0], draw_rng);
    benchmark::DoNotOptimize(draw.halo_kept.data());
  }
}
BENCHMARK(BM_EpochPlannerDraw);

void BM_BoundarySamplerCompaction(benchmark::State& state) {
  Rng rng(3);
  const Csr g = gen::rmat(16384, 200000, rng);
  const auto part = random_partition(g.n, 2, rng);
  const auto lgs = core::build_local_graphs(g, part);
  core::BoundarySampler sampler(
      lgs[0], {.variant = core::SamplingVariant::kBns, .rate = 0.1f});
  // Compaction only (the negotiation needs a fabric); empty_plan exercises
  // the same CSR-rebuild path at the maximum drop rate.
  for (auto _ : state) {
    auto plan = sampler.empty_plan();
    benchmark::DoNotOptimize(plan.adj.nbrs.data());
  }
}
BENCHMARK(BM_BoundarySamplerCompaction);

void BM_MetisLike(benchmark::State& state) {
  Rng rng(4);
  gen::PlantedPartitionParams pp;
  pp.n = static_cast<NodeId>(state.range(0));
  pp.m = static_cast<EdgeId>(pp.n) * 12;
  pp.communities = 8;
  const auto planted = gen::planted_partition(pp, rng);
  for (auto _ : state) {
    auto part = metis_like(planted.graph, 8);
    benchmark::DoNotOptimize(part.owner.data());
  }
}
BENCHMARK(BM_MetisLike)->Arg(8192)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
