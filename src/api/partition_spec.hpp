#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "graph/csr.hpp"
#include "partition/partitioning.hpp"

namespace bnsgcn::api {

/// How to partition the graph for partition-parallel methods. Every field
/// is part of the partition cache key: two specs that differ anywhere are
/// cached (and stored on disk) independently.
struct PartitionSpec {
  enum class Kind { kMetis, kRandom, kHash, kBfs } kind = Kind::kMetis;
  PartId nparts = 1;
  /// Seeds the partitioner's randomness (METIS-like matching/refinement,
  /// random assignment, BFS seed placement). kHash ignores it — and the
  /// partition cache canonicalizes it away for kHash, so hash specs that
  /// differ only in seed share one cache entry.
  std::uint64_t seed = 1;

  friend bool operator==(const PartitionSpec&,
                         const PartitionSpec&) = default;
};

/// Materialize a partitioning per the spec (always computes; the cached
/// path is api::cached_partition in api/partition_cache.hpp).
[[nodiscard]] Partitioning make_partition(const Csr& graph,
                                          const PartitionSpec& spec);

} // namespace bnsgcn::api
