// Table 1: number of boundary vs inner nodes per partition when the
// Reddit graph is split into 10 parts with METIS (min comm volume).
// Expected shape: balanced inner counts, boundary counts up to several
// times the inner count, highly imbalanced across partitions.

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace bnsgcn;
  const auto opts = api::parse_bench_args(argc, argv);
  bench::print_banner("Table 1", "boundary vs inner nodes, 10-way partition");

  const auto pr = bench::load_preset("reddit", opts.scale, opts);
  const Dataset& ds = pr.ds;
  std::printf("dataset: %s  n=%d  arcs=%lld  avg deg=%.1f\n\n",
              ds.name.c_str(), ds.num_nodes(),
              static_cast<long long>(ds.graph.num_arcs()),
              ds.graph.average_degree());

  api::PartitionSpec pspec;
  pspec.nparts = 10;
  const auto part = api::cached_partition(ds.graph, pspec);
  const auto stats = compute_stats(ds.graph, *part);

  std::printf("%-10s %12s %17s %18s\n", "Partition", "# Inner", "# Boundary",
              "Boundary/Inner");
  for (PartId i = 0; i < 10; ++i) {
    std::printf("%-10d %12d %17d %18.2f\n", i + 1,
                stats.inner_count[static_cast<std::size_t>(i)],
                stats.boundary_count[static_cast<std::size_t>(i)],
                stats.ratio(i));
  }
  std::printf("\nTotal comm volume (Eq. 3): %lld   Edge cut: %lld\n",
              static_cast<long long>(stats.total_volume),
              static_cast<long long>(stats.edge_cut));
  std::printf("Max boundary/inner ratio: %.2f  (paper reports up to 5.5x)\n",
              stats.max_ratio());
  return 0;
}
