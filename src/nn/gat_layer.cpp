#include "nn/gat_layer.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/ops.hpp"

namespace bnsgcn::nn {

GatLayer::GatLayer(std::int64_t d_in, std::int64_t d_out, const Options& opts,
                   Rng& rng)
    : Layer(d_in, d_out), opts_(opts), dropout_rng_(rng.next_u64()) {
  BNSGCN_CHECK(opts.heads >= 1 && d_out % opts.heads == 0);
  d_head_ = d_out / opts.heads;
  heads_.resize(static_cast<std::size_t>(opts.heads));
  for (auto& h : heads_) {
    h.w.resize(d_in, d_head_);
    ops::glorot_init(h.w, rng);
    h.a_src.resize(d_head_, 1);
    h.a_dst.resize(d_head_, 1);
    ops::glorot_init(h.a_src, rng);
    ops::glorot_init(h.a_dst, rng);
    h.dw.resize(d_in, d_head_);
    h.da_src.resize(d_head_, 1);
    h.da_dst.resize(d_head_, 1);
  }
}

std::vector<Matrix*> GatLayer::params() {
  std::vector<Matrix*> out;
  for (auto& h : heads_) {
    out.push_back(&h.w);
    out.push_back(&h.a_src);
    out.push_back(&h.a_dst);
  }
  return out;
}

std::vector<Matrix*> GatLayer::grads() {
  std::vector<Matrix*> out;
  for (auto& h : heads_) {
    out.push_back(&h.dw);
    out.push_back(&h.da_src);
    out.push_back(&h.da_dst);
  }
  return out;
}

void GatLayer::score_src_rows(Head& h, NodeId row0, NodeId count) {
  const std::int64_t dh = h.w.cols();
  for (NodeId u = row0; u < row0 + count; ++u) {
    const float* row = h.wh.data() + static_cast<std::int64_t>(u) * dh;
    float acc = 0.0f;
    for (std::int64_t c = 0; c < dh; ++c) acc += row[c] * h.a_src.data()[c];
    h.s_src[static_cast<std::size_t>(u)] = acc;
  }
}

void GatLayer::score_dst_rows(Head& h, NodeId row0, NodeId count) {
  const std::int64_t dh = h.w.cols();
  for (NodeId v = row0; v < row0 + count; ++v) {
    const float* row = h.wh.data() + static_cast<std::int64_t>(v) * dh;
    float acc = 0.0f;
    for (std::int64_t c = 0; c < dh; ++c) acc += row[c] * h.a_dst.data()[c];
    h.s_dst[static_cast<std::size_t>(v)] = acc;
  }
}

Matrix GatLayer::forward(const BipartiteCsr& adj, const Matrix& feats,
                         std::span<const float> inv_deg, bool training) {
  (void)inv_deg; // attention renormalizes; see class comment
  BNSGCN_CHECK(feats.cols() == d_in_ && feats.rows() == adj.n_src);
  cached_training_ = training;
  feats_cache_ = feats;

  for (auto& h : heads_) {
    h.wh.resize(adj.n_src, d_head_);
    ops::gemm_nn(feats, h.w, h.wh);
    h.s_src.assign(static_cast<std::size_t>(adj.n_src), 0.0f);
    score_src_rows(h, 0, adj.n_src);
    h.s_dst.assign(static_cast<std::size_t>(adj.n_dst), 0.0f);
    score_dst_rows(h, 0, adj.n_dst);
  }
  return attention_forward(adj, training);
}

Matrix GatLayer::attention_forward(const BipartiteCsr& adj, bool training) {
  const std::size_t n_entries =
      static_cast<std::size_t>(adj.num_edges()) +
      static_cast<std::size_t>(adj.n_dst);
  Matrix out(adj.n_dst, d_out_);

  for (std::size_t hi = 0; hi < heads_.size(); ++hi) {
    Head& h = heads_[hi];
    h.alpha.assign(n_entries, 0.0f);
    // The LeakyReLU slopes feed only the attention backward; inference
    // skips the whole per-entry array.
    if (!inference_) h.slope.assign(n_entries, 0.0f);

    for (NodeId v = 0; v < adj.n_dst; ++v) {
      const auto nb = adj.neighbors(v);
      const std::size_t base = entry_offset(adj, v);
      const std::size_t cnt = nb.size() + 1; // + self
      // scores
      float mx = -1e30f;
      for (std::size_t i = 0; i < cnt; ++i) {
        const NodeId u = (i < nb.size()) ? nb[i] : v;
        float e = h.s_src[static_cast<std::size_t>(u)] +
                  h.s_dst[static_cast<std::size_t>(v)];
        float slope = 1.0f;
        if (e <= 0.0f) {
          e *= opts_.leaky_slope;
          slope = opts_.leaky_slope;
        }
        if (!inference_) h.slope[base + i] = slope;
        h.alpha[base + i] = e;
        mx = std::max(mx, e);
      }
      // softmax
      float sum = 0.0f;
      for (std::size_t i = 0; i < cnt; ++i) {
        h.alpha[base + i] = std::exp(h.alpha[base + i] - mx);
        sum += h.alpha[base + i];
      }
      const float inv = 1.0f / sum;
      for (std::size_t i = 0; i < cnt; ++i) h.alpha[base + i] *= inv;
      // weighted combine
      float* o = out.data() + static_cast<std::int64_t>(v) * d_out_ +
                 static_cast<std::int64_t>(hi) * d_head_;
      for (std::size_t i = 0; i < cnt; ++i) {
        const NodeId u = (i < nb.size()) ? nb[i] : v;
        const float a = h.alpha[base + i];
        const float* s = h.wh.data() + static_cast<std::int64_t>(u) * d_head_;
        for (std::int64_t c = 0; c < d_head_; ++c) o[c] += a * s[c];
      }
    }
  }

  if (opts_.relu) {
    if (inference_) {
      ops::relu_forward(out);
    } else {
      ops::relu_forward(out, relu_mask_);
    }
  }
  if (training && opts_.dropout > 0.0f) {
    ops::dropout_forward(out, dropout_mask_, opts_.dropout, dropout_rng_);
  } else {
    dropout_mask_.resize(0, 0);
  }
  return out;
}

void GatLayer::forward_inner_begin(const BipartiteCsr& adj,
                                   const Matrix& inner_feats, bool training) {
  phase_check_.on_forward_begin(adj.n_dst);
  BNSGCN_CHECK(inner_feats.cols() == d_in_);
  BNSGCN_CHECK(inner_feats.rows() == adj.n_dst);
  cached_training_ = training;
  // Assemble the feats cache incrementally: inner block now, one peer slab
  // per fold. Backward then runs the fused dW GEMM over the identical
  // matrix the fused forward would have cached. The per-row transform and
  // score work runs in the chunks; inner chunks (rows < n_dst) and halo
  // folds (rows >= n_dst) touch disjoint rows of wh/s_src, so folds may
  // land at any point of the chunk loop.
  feats_cache_.resize(adj.n_src, d_in_);
  std::copy(inner_feats.data(), inner_feats.data() + inner_feats.size(),
            feats_cache_.data());
  for (auto& h : heads_) {
    h.wh.resize(adj.n_src, d_head_);
    h.s_src.assign(static_cast<std::size_t>(adj.n_src), 0.0f);
    h.s_dst.assign(static_cast<std::size_t>(adj.n_dst), 0.0f);
  }
}

void GatLayer::forward_inner_chunk(const BipartiteCsr& adj, NodeId row0,
                                   NodeId row1) {
  phase_check_.on_forward_chunk(row0, row1);
  BNSGCN_CHECK(row0 >= 0 && row0 <= row1 && row1 <= adj.n_dst);
  const NodeId cnt = row1 - row0;
  if (cnt == 0) return;
  // Row-range transform straight into each head's wh rows — no staging
  // copy per chunk, and bit-identical to the fused transform for every
  // chunking (gemm_nn_rows keeps the fixed per-row k-loop order).
  for (auto& h : heads_) {
    ops::gemm_nn_rows(feats_cache_, h.w, h.wh, row0, row1);
    score_src_rows(h, row0, cnt);
    score_dst_rows(h, row0, cnt);
  }
}

void GatLayer::forward_halo_begin(const BipartiteCsr&,
                                  const HaloIncidence&) {
  phase_check_.on_halo_begin();
  // The incidence is for aggregation-style folds; GAT's per-peer slabs go
  // straight through the per-head transform instead.
}

void GatLayer::forward_halo_fold(const BipartiteCsr& adj,
                                 std::span<const NodeId> slots,
                                 std::span<const float> rows) {
  phase_check_.on_halo_fold();
  BNSGCN_CHECK(rows.size() == slots.size() * static_cast<std::size_t>(d_in_));
  if (slots.empty()) return;
  // Stage the slab once (contiguous rows), push it through each head's W
  // — the halo share of the linear transform, done while later peers are
  // still in flight — and scatter rows to their halo positions.
  Matrix slab(static_cast<NodeId>(slots.size()), d_in_);
  std::copy(rows.begin(), rows.end(), slab.data());
  // The halo rows of feats_cache_ exist only for backward_params' fused
  // dW GEMM; the forward reads wh/s_src instead, so inference skips the
  // scatter (the forward output is untouched).
  if (!inference_) {
    for (std::size_t t = 0; t < slots.size(); ++t) {
      const NodeId u = adj.n_dst + slots[t];
      BNSGCN_CHECK(u >= adj.n_dst && u < adj.n_src);
      std::copy(rows.data() + t * static_cast<std::size_t>(d_in_),
                rows.data() + (t + 1) * static_cast<std::size_t>(d_in_),
                feats_cache_.data() + static_cast<std::int64_t>(u) * d_in_);
    }
  }
  for (auto& h : heads_) {
    Matrix tmp(slab.rows(), d_head_);
    ops::gemm_nn(slab, h.w, tmp);
    for (std::size_t t = 0; t < slots.size(); ++t) {
      const NodeId u = adj.n_dst + slots[t];
      std::copy(tmp.data() + static_cast<std::int64_t>(t) * d_head_,
                tmp.data() + static_cast<std::int64_t>(t + 1) * d_head_,
                h.wh.data() + static_cast<std::int64_t>(u) * d_head_);
      score_src_rows(h, u, 1);
    }
  }
}

Matrix GatLayer::forward_halo_finish(const BipartiteCsr& adj,
                                     std::span<const float> inv_deg) {
  phase_check_.on_halo_finish();
  (void)inv_deg; // attention renormalizes; see class comment
  return attention_forward(adj, cached_training_);
}

void GatLayer::release_training_state() {
  for (auto& h : heads_) {
    h.dw.resize(0, 0);
    h.da_src.resize(0, 0);
    h.da_dst.resize(0, 0);
    h.dwh.resize(0, 0);
    h.slope.clear();
    h.slope.shrink_to_fit();
  }
  relu_mask_.resize(0, 0);
  dropout_mask_.resize(0, 0);
}

Matrix GatLayer::backward(const BipartiteCsr& adj, const Matrix& dout,
                          std::span<const float> inv_deg) {
  (void)inv_deg;
  BNSGCN_CHECK(dout.rows() == adj.n_dst && dout.cols() == d_out_);
  Matrix g = dout;
  if (cached_training_ && !dropout_mask_.empty())
    ops::dropout_backward(g, dropout_mask_);
  if (opts_.relu) ops::relu_backward(g, relu_mask_);

  Matrix dfeats(adj.n_src, d_in_);

  for (std::size_t hi = 0; hi < heads_.size(); ++hi) {
    Head& h = heads_[hi];
    Matrix dwh(adj.n_src, d_head_);
    attention_backward_head(adj, g, hi, dwh);
    // Wh = feats·W → dW += featsᵀ·dWh; dfeats += dWh·Wᵀ
    ops::gemm_tn(feats_cache_, dwh, h.dw, 1.0f, 1.0f);
    ops::gemm_nt(dwh, h.w, dfeats, 1.0f, 1.0f);
  }
  return dfeats;
}

void GatLayer::attention_backward_head(const BipartiteCsr& adj,
                                       const Matrix& g, std::size_t hi,
                                       Matrix& dwh) {
  Head& h = heads_[hi];
  std::vector<float> ds_src(static_cast<std::size_t>(adj.n_src), 0.0f);
  std::vector<float> ds_dst(static_cast<std::size_t>(adj.n_dst), 0.0f);

  for (NodeId v = 0; v < adj.n_dst; ++v) {
    const auto nb = adj.neighbors(v);
    const std::size_t base = entry_offset(adj, v);
    const std::size_t cnt = nb.size() + 1;
    const float* gv = g.data() + static_cast<std::int64_t>(v) * d_out_ +
                      static_cast<std::int64_t>(hi) * d_head_;

    // dα_vu = <g_v, Wh_u>; also the α·g contribution to dWh_u.
    float dot_sum = 0.0f; // Σ_k α_vk dα_vk for softmax backward
    // First pass: compute dα and accumulate α-weighted dWh.
    // (store dα temporarily in a small stack buffer)
    std::vector<float> dalpha(cnt);
    for (std::size_t i = 0; i < cnt; ++i) {
      const NodeId u = (i < nb.size()) ? nb[i] : v;
      const float* whu =
          h.wh.data() + static_cast<std::int64_t>(u) * d_head_;
      float da = 0.0f;
      for (std::int64_t c = 0; c < d_head_; ++c) da += gv[c] * whu[c];
      dalpha[i] = da;
      dot_sum += h.alpha[base + i] * da;
      float* t = dwh.data() + static_cast<std::int64_t>(u) * d_head_;
      const float a = h.alpha[base + i];
      for (std::int64_t c = 0; c < d_head_; ++c) t[c] += a * gv[c];
    }
    // Softmax + LeakyReLU backward into the score sums.
    for (std::size_t i = 0; i < cnt; ++i) {
      const NodeId u = (i < nb.size()) ? nb[i] : v;
      const float de =
          h.alpha[base + i] * (dalpha[i] - dot_sum) * h.slope[base + i];
      ds_src[static_cast<std::size_t>(u)] += de;
      ds_dst[static_cast<std::size_t>(v)] += de;
    }
  }

  // s_src[u] = <Wh_u, a_src> → da_src = Whᵀ ds_src; dWh_u += ds_src[u]·a_src
  for (NodeId u = 0; u < adj.n_src; ++u) {
    const float d = ds_src[static_cast<std::size_t>(u)];
    if (d == 0.0f) continue;
    const float* whu = h.wh.data() + static_cast<std::int64_t>(u) * d_head_;
    float* t = dwh.data() + static_cast<std::int64_t>(u) * d_head_;
    for (std::int64_t c = 0; c < d_head_; ++c) {
      h.da_src.data()[c] += d * whu[c];
      t[c] += d * h.a_src.data()[c];
    }
  }
  for (NodeId v = 0; v < adj.n_dst; ++v) {
    const float d = ds_dst[static_cast<std::size_t>(v)];
    if (d == 0.0f) continue;
    const float* whv = h.wh.data() + static_cast<std::int64_t>(v) * d_head_;
    float* t = dwh.data() + static_cast<std::int64_t>(v) * d_head_;
    for (std::int64_t c = 0; c < d_head_; ++c) {
      h.da_dst.data()[c] += d * whv[c];
      t[c] += d * h.a_dst.data()[c];
    }
  }
}

Matrix GatLayer::backward_halo(const BipartiteCsr& adj, const Matrix& dout,
                               std::span<const float> inv_deg) {
  phase_check_.on_backward_halo();
  (void)inv_deg;
  BNSGCN_CHECK(dout.rows() == adj.n_dst && dout.cols() == d_out_);
  // Everything the wire needs runs before the gradient exchange is
  // posted: activation backward, the attention backward (dWh per head,
  // cached for B2), and the halo-source input gradients. The fused dW
  // GEMMs and the inner gradients wait for backward_inner — they feed
  // nothing until the epoch-end allreduce / the next layer down.
  Matrix g = dout;
  if (cached_training_ && !dropout_mask_.empty())
    ops::dropout_backward(g, dropout_mask_);
  if (opts_.relu) ops::relu_backward(g, relu_mask_);

  const NodeId n_halo = adj.n_src - adj.n_dst;
  Matrix dhalo(n_halo, d_in_);
  for (std::size_t hi = 0; hi < heads_.size(); ++hi) {
    Head& h = heads_[hi];
    h.dwh.resize(adj.n_src, d_head_); // zero-filled accumulation target
    attention_backward_head(adj, g, hi, h.dwh);
    if (n_halo == 0) continue;
    // The halo row range of dWh·Wᵀ, per head in order — bit-identical to
    // the fused gemm_nt's rows because each output row is independent.
    Matrix tmp(n_halo, d_head_);
    std::copy(h.dwh.data() + static_cast<std::int64_t>(adj.n_dst) * d_head_,
              h.dwh.data() + static_cast<std::int64_t>(adj.n_src) * d_head_,
              tmp.data());
    ops::gemm_nt(tmp, h.w, dhalo, 1.0f, 1.0f);
  }
  return dhalo;
}

Matrix GatLayer::backward_inner(const BipartiteCsr& adj,
                                std::span<const float> inv_deg) {
  phase_check_.on_backward_inner();
  (void)inv_deg;
  Matrix dinner(adj.n_dst, d_in_);
  for (auto& h : heads_) {
    Matrix tmp(adj.n_dst, d_head_);
    std::copy(h.dwh.data(),
              h.dwh.data() + static_cast<std::int64_t>(adj.n_dst) * d_head_,
              tmp.data());
    ops::gemm_nt(tmp, h.w, dinner, 1.0f, 1.0f);
  }
  return dinner;
}

void GatLayer::backward_params(const BipartiteCsr&) {
  phase_check_.on_backward_params();
  // Deferred B3: Wh = feats·W → dW += featsᵀ·dWh, over the assembled feats
  // cache — the identical fused GEMM, pushed by the trainer into the next
  // layer's exchange window (feats_cache_ and dwh survive until the next
  // forward; da_src/da_dst were already accumulated in B1).
  for (auto& h : heads_)
    ops::gemm_tn(feats_cache_, h.dwh, h.dw, 1.0f, 1.0f);
}

} // namespace bnsgcn::nn
