// Table 9: BNS-GCN vs edge-sampling ablations (DropEdge, Boundary Edge
// Sampling) at a *matched number of dropped edges*: per-epoch communication
// volume, epoch time, and test score.
// Expected shape: edge sampling barely cuts communication (many boundary
// edges share one boundary node), so BNS communicates ~5-10x less at the
// same edge-drop budget, with equal accuracy.

#include "common.hpp"

namespace {

using namespace bnsgcn;

/// Find the edge keep-rate q that drops (in expectation) as many edges as
/// BNS at rate p drops: BNS drops all arcs into dropped halo nodes.
float matched_edge_rate(const Dataset& ds, const Partitioning& part, float p,
                        bool boundary_only) {
  const auto lgs = core::build_local_graphs(ds.graph, part);
  double boundary_arcs = 0.0, total_arcs = 0.0;
  for (const auto& lg : lgs) {
    total_arcs += static_cast<double>(lg.adj.num_edges());
    for (const NodeId u : lg.adj.nbrs)
      if (u >= lg.n_inner()) boundary_arcs += 1.0;
  }
  // BNS(p) drops (1-p) of boundary arcs in expectation.
  const double dropped = (1.0 - p) * boundary_arcs;
  const double pool = boundary_only ? boundary_arcs : total_arcs;
  return static_cast<float>(1.0 - dropped / pool);
}

void run_dataset(const char* title, const char* preset, double scale,
                 PartId parts, const api::BenchOptions& opts,
                 bench::ReportSink& sink) {
  const auto pr = bench::load_preset(preset, scale, opts);
  const Dataset& ds = pr.ds;
  api::PartitionSpec pspec;
  pspec.nparts = parts;
  // matched_edge_rate needs the Partitioning itself; the cache then serves
  // the three training runs below without re-partitioning.
  const auto part = api::cached_partition(ds.graph, pspec);
  const float p = 0.1f;
  const float q_bes = matched_edge_rate(ds, *part, p, true);
  const float q_de = matched_edge_rate(ds, *part, p, false);
  std::printf("\n--- %s (%d partitions; matched edge drop: BES q=%.3f, "
              "DropEdge q=%.3f) ---\n", title, parts, q_bes, q_de);
  std::printf("%-12s %18s %14s %12s\n", "method", "epoch comm (MB)",
              "epoch time (s)", "score %");

  api::RunConfig rcfg = pr.config(api::Method::kBns);
  rcfg.partition = pspec;
  rcfg.trainer.epochs = opts.epochs_or(80);
  const auto row = [&](const char* name, core::SamplingVariant variant,
                       float rate) {
    rcfg.trainer.variant = variant;
    rcfg.trainer.sample_rate = rate;
    const auto r = sink.add(bench::label("%s %s q=%.3f", preset, name, rate),
                            rcfg, api::run(ds, rcfg));
    const auto e = r.mean_epoch();
    std::printf("%-12s %18.2f %14.4f %12.2f\n", name,
                bench::mb(e.feature_bytes), e.total_s(),
                100.0 * r.final_test);
  };
  row("DropEdge", core::SamplingVariant::kDropEdge, q_de);
  row("BES", core::SamplingVariant::kBoundaryEdge, q_bes);
  row("BNS-GCN", core::SamplingVariant::kBns, p);
}

} // namespace

int main(int argc, char** argv) {
  using namespace bnsgcn;
  const auto opts = api::parse_bench_args(argc, argv);
  bench::print_banner("Table 9", "BNS vs DropEdge vs BES at matched edge drop");
  bench::ReportSink sink("Table 9", opts);
  const double s = opts.scale;
  run_dataset("Reddit-like (2 partitions)", "reddit", 0.3 * s, 2, opts, sink);
  run_dataset("ogbn-products-like (5 partitions)", "products", 0.2 * s, 5,
              opts, sink);
  run_dataset("Yelp-like (3 partitions)", "yelp", 0.3 * s, 3, opts, sink);
  std::printf("\npaper shape check: DropEdge/BES pay 5-10x the communication "
              "of BNS for the same edge budget and similar score.\n");
  return 0;
}
