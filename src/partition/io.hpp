#pragma once

#include <string>

#include "partition/partitioning.hpp"

namespace bnsgcn {

/// Binary serialization for partitionings. Partitioning is the paper's
/// one-time preprocessing artifact (Algorithm 1 partitions once, then
/// trains many epochs; Table 12 amortizes the cost), so it is the natural
/// unit to persist and reuse across processes — the partition cache's
/// on-disk store is built on these two functions.
///
/// Format matches graph/io.hpp: little-endian magic/version header, then
/// nparts and the raw owner array. Round-trips bit-exactly; not portable
/// across endianness (local caching only).

void save_partitioning(const Partitioning& p, const std::string& path);

/// Loads and validates (every owner in range, every partition non-empty);
/// throws CheckError on missing/truncated/corrupt files.
[[nodiscard]] Partitioning load_partitioning(const std::string& path);

} // namespace bnsgcn
