// Table 10: epoch-time speedup of BNS-GCN on a 2-layer GAT (10 partitions).
// Expected shape: sampling helps GAT too (58%-106% speedups in the paper),
// less dramatically than GraphSAGE because attention adds compute.

#include "common.hpp"

namespace {

using namespace bnsgcn;

void run_dataset(const char* title, const Dataset& ds, std::uint64_t seed) {
  core::TrainerConfig cfg;
  cfg.model = core::ModelKind::kGat;
  cfg.gat_heads = 2;
  cfg.num_layers = 2;
  cfg.hidden = 32;
  cfg.epochs = 5;
  cfg.seed = seed;
  const auto part = metis_like(ds.graph, 10);

  std::printf("\n--- %s ---\n", title);
  double base = 0.0;
  for (const float p : {1.0f, 0.1f, 0.01f, 0.0f}) {
    auto c = cfg;
    c.sample_rate = p;
    const auto r = core::BnsTrainer(ds, part, c).train();
    const double t = r.mean_epoch().total_s();
    if (p == 1.0f) base = t;
    std::printf("BNS-GAT (p=%-4.2f)  epoch %8.4fs   speedup %5.2fx\n", p, t,
                base / t);
  }
}

} // namespace

int main() {
  using namespace bnsgcn;
  bench::print_banner("Table 10", "GAT epoch-time speedup under BNS");
  const double s = bench::bench_scale();
  run_dataset("Reddit-like", make_synthetic(reddit_like(0.25 * s)), 1);
  run_dataset("ogbn-products-like",
              make_synthetic(products_like(0.2 * s)), 2);
  run_dataset("Yelp-like", make_synthetic(yelp_like(0.25 * s)), 3);
  std::printf("\npaper shape check: speedups grow as p shrinks; ~1.5-2.2x "
              "from p=1 to p=0.\n");
  return 0;
}
