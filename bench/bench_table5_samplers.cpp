// Table 5: total training time and accuracy of BNS-GCN (10 partitions) vs
// sampling-based methods on ogbn-products.
// Expected shape: BNS p=0.1/0.01 trains faster than every minibatch method
// at equal-or-better accuracy (no per-batch sampling overhead, full-graph
// gradients).

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace bnsgcn;
  const auto opts = api::parse_bench_args(argc, argv);
  bench::print_banner("Table 5",
                      "total train time + accuracy vs samplers (products)");
  bench::ReportSink sink("Table 5", opts);

  auto pr = bench::load_preset("products", 0.2 * opts.scale, opts);
  const Dataset& ds = pr.ds;
  pr.trainer.epochs = opts.epochs_or(80);

  api::RunConfig bcfg = pr.config();
  bcfg.minibatch.batch_size = std::max<NodeId>(256, ds.num_nodes() / 16);
  bcfg.minibatch.batches_per_epoch = 4;
  bcfg.minibatch.clusters_per_batch = 6; // ClusterGCN needs decent coverage

  std::printf("%-24s %16s %12s\n", "method", "train time (s)", "test acc %");
  for (const api::Method m :
       {api::Method::kClusterGcn, api::Method::kNeighborSampling,
        api::Method::kGraphSaint}) {
    bcfg.method = m;
    const auto& info = api::method_info(m);
    const auto& r =
        sink.add(bench::label("products %s", info.name.c_str()), bcfg,
                 api::run(ds, bcfg));
    std::printf("%-24s %16.2f %12.2f\n", info.display.c_str(), r.wall_time_s,
                100.0 * r.final_test);
  }

  api::RunConfig rcfg = pr.config(api::Method::kBns);
  rcfg.partition.nparts = 10; // partitioned once, cached across p
  for (const float p : {1.0f, 0.1f, 0.01f}) {
    rcfg.trainer.sample_rate = p;
    const auto& r = sink.add(bench::label("products bns p=%.2f", p), rcfg,
                             api::run(ds, rcfg));
    // Simulated total (compute + modeled comm/reduce + sampling), so the
    // BNS rows carry their full interconnect cost just as the baselines
    // carry their full sampling cost.
    std::printf("BNS-GCN (p=%-4.2f)%8s %16.2f %12.2f\n", p, "",
                r.total_train_s(), 100.0 * r.final_test);
  }
  std::printf("\npaper shape check: BNS p=0.1 fastest at best accuracy "
              "(p=0.01 trades accuracy at this scale — see the ablation "
              "bench).\n");
  return 0;
}
