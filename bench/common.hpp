#pragma once

// Shared helpers for the experiment benches. Each bench binary regenerates
// one table or figure of the paper (see DESIGN.md §4 for the index and
// EXPERIMENTS.md for paper-vs-measured numbers).
//
// Every bench runs through the unified entry point bnsgcn::api::run and
// takes --scale / --epochs / --json (api::parse_bench_args); per-dataset
// hyperparameters come from the library-level registry (api/presets.hpp).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#if !defined(_WIN32)
#include <unistd.h>
#endif

#include "api/cli.hpp"
#include "api/partition_cache.hpp"
#include "api/presets.hpp"
#include "api/run.hpp"
#include "api/serialize.hpp"
#include "graph/dataset.hpp"
#include "partition/metis_like.hpp"
#include "partition/stats.hpp"

namespace bnsgcn::bench {

inline void print_banner(const char* artifact, const char* description) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", artifact, description);
  std::printf("(synthetic datasets + simulated interconnect; see DESIGN.md)\n");
  std::printf("================================================================\n");
}

inline double mb(std::int64_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

/// printf-style std::string, for run labels.
template <typename... Args>
[[nodiscard]] std::string label(const char* fmt, Args... args) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  return buf;
}

/// A registry dataset at bench scale together with its registered trainer
/// config — the starting point of most benches. Carries the DatasetSpec
/// `ds` was built from so every RunConfig the bench records names its
/// dataset exactly (the replayable-artifact contract, docs/BENCHMARKS.md).
struct PresetRun {
  api::DatasetSpec spec;
  Dataset ds;
  core::TrainerConfig trainer;

  /// A RunConfig pre-filled with this preset's dataset spec and trainer —
  /// partition/sampling knobs are the bench's to set. Runs built from it
  /// replay from the artifact alone via api::run_config_from_json.
  [[nodiscard]] api::RunConfig config(
      api::Method method = api::Method::kBns) const {
    api::RunConfig cfg;
    cfg.method = method;
    cfg.dataset = spec;
    cfg.trainer = trainer;
    return cfg;
  }
};

/// `opts` carries the cross-bench trainer knobs: every config built from
/// the returned PresetRun inherits --threads (recorded in artifact rows,
/// so replays run at the same lane count; results never depend on it).
inline PresetRun load_preset(const char* name, double scale,
                             const api::BenchOptions& opts) {
  api::DatasetSpec spec;
  spec.preset = name;
  spec.scale = scale;
  core::TrainerConfig trainer = api::preset_trainer_config(name);
  trainer.threads = opts.threads;
  return {spec, api::make_dataset(spec), std::move(trainer)};
}

/// Collects a bench's labeled runs and, when --json <path> was given,
/// writes them as one machine-readable artifact next to the printed table.
class ReportSink {
 public:
  ReportSink(const char* artifact, const api::BenchOptions& opts)
      : artifact_(artifact), opts_(opts) {
    // Fail fast on an unwritable path — before hours of runs, not after.
    // Append-mode probe: creates a missing file but never truncates an
    // existing artifact from a previous run.
    if (!opts_.json_path.empty()) {
      std::ofstream probe(opts_.json_path, std::ios::app);
      if (!probe.good()) {
        std::fprintf(stderr, "error: cannot open for writing: %s\n",
                     opts_.json_path.c_str());
        std::exit(2);
      }
    }
  }

  /// Record a run (no-op unless --json was given). Takes and returns the
  /// report by value so call sites can sink-and-use in one expression
  /// (binding the result to a const reference is safe).
  api::RunReport add(std::string label, api::RunReport report) {
    if (!opts_.json_path.empty())
      rows_.push_back(make_row(std::move(label), report, nullptr));
    return report;
  }

  /// Same, additionally recording the RunConfig that produced the report —
  /// the artifact row gains a "config" object (schema: docs/BENCHMARKS.md)
  /// so the run can be replayed via api::run_config_from_json.
  api::RunReport add(std::string label, const api::RunConfig& cfg,
                     api::RunReport report) {
    if (!opts_.json_path.empty())
      rows_.push_back(make_row(std::move(label), report, &cfg));
    return report;
  }

  /// True when stdout is an interactive terminal — the only place the
  /// carriage-return progress line makes sense (in a pipe or CI log the
  /// rewrites would concatenate into garbage, so streaming is skipped).
  [[nodiscard]] static bool stdout_is_tty() {
#if defined(_WIN32)
    return false;
#else
    static const bool tty = isatty(fileno(stdout)) != 0;
    return tty;
#endif
  }

  /// Wire a live per-epoch progress printer into cfg's Observer slot:
  /// "<label>: epoch k/N loss=…" rewritten in place on stdout while the
  /// run trains (TTY only), erased when it finishes. Long bench tables
  /// stream instead of going silent until the post-hoc print; any
  /// observer already set on the config keeps firing after the line.
  static void stream_progress(api::RunConfig& cfg, std::string label) {
    if (!stdout_is_tty()) return;
    const core::EpochObserver prior = cfg.trainer.observer;
    const int total = cfg.trainer.epochs;
    cfg.trainer.observer = [prior, total, label = std::move(label)](
                               const core::EpochSnapshot& s) {
      std::printf("\r  %-44s epoch %3d/%-3d loss %.4f", label.c_str(),
                  s.epoch, total, s.train_loss);
      std::fflush(stdout);
      if (prior) prior(s);
    };
  }

  /// Run `cfg` with stream_progress attached, then record the row exactly
  /// like add() (the recorded config keeps the caller's observer, so the
  /// artifact row replays as given).
  api::RunReport run_streamed(std::string label, api::RunConfig cfg) {
    return run_streamed_with(std::move(label), std::move(cfg),
                             [](const api::RunConfig& c) {
                               return api::run(c);
                             });
  }

  /// run_streamed over a prebuilt dataset (the sweep-loop form: the graph
  /// is built once, the partition comes from the cache).
  api::RunReport run_streamed(std::string label, const Dataset& ds,
                              api::RunConfig cfg) {
    return run_streamed_with(std::move(label), std::move(cfg),
                             [&ds](const api::RunConfig& c) {
                               return api::run(ds, c);
                             });
  }

  /// Write the artifact (called from the destructor; explicit form exists
  /// for benches that want to flush before printing a summary).
  void finish() {
    if (opts_.json_path.empty() || finished_) return;
    finished_ = true;
    json::Value doc = json::Value::object();
    doc.set("artifact", artifact_);
    doc.set("scale", opts_.scale);
    json::Value runs = json::Value::array();
    for (auto& row : rows_) runs.push_back(std::move(row));
    doc.set("runs", std::move(runs));
    try {
      json::write_file(opts_.json_path, doc);
      std::printf("\nwrote JSON artifact: %s (%zu runs)\n",
                  opts_.json_path.c_str(), rows_.size());
    } catch (const std::exception& e) {
      // Must not throw out of the destructor; the table already printed.
      std::fprintf(stderr, "error: %s\n", e.what());
    }
  }

  ~ReportSink() { finish(); }

 private:
  /// Shared body of the run_streamed overloads: attach the progress
  /// observer, run through `run_fn`, erase the progress line, record.
  template <typename RunFn>
  api::RunReport run_streamed_with(std::string label, api::RunConfig cfg,
                                   RunFn run_fn) {
    const core::EpochObserver prior = cfg.trainer.observer;
    stream_progress(cfg, label);
    api::RunReport report = run_fn(cfg);
    if (stdout_is_tty()) std::printf("\r%*s\r", 78, "");
    cfg.trainer.observer = prior;
    return add(std::move(label), cfg, std::move(report));
  }

  static json::Value make_row(std::string label, const api::RunReport& report,
                              const api::RunConfig* cfg) {
    json::Value row = json::Value::object();
    row.set("label", std::move(label));
    row.set("report", api::to_json(report));
    if (cfg != nullptr) row.set("config", api::to_json(*cfg));
    return row;
  }

  std::string artifact_;
  api::BenchOptions opts_;
  std::vector<json::Value> rows_;
  bool finished_ = false;
};

} // namespace bnsgcn::bench
