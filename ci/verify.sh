#!/usr/bin/env bash
# Tier-1 verify: docs link check, determinism lint, then configure, build
# everything (library, benches, examples, test binaries, tools) and run the
# full test suite — including test_overlap, the blocking/bulk/stream
# three-way bit-parity gate of the async fabric (run once more by name so a
# regression there is called out explicitly) — then a stream-mode
# bench_overlap smoke, the artifact replay gates, and the instrumented
# build matrix (checked contracts, TSan, ASan+LSan, UBSan).
set -euo pipefail

cd "$(dirname "$0")/.."

./ci/check_docs_links.sh

if command -v ninja >/dev/null 2>&1; then
  export CMAKE_GENERATOR=Ninja
fi

cmake -B build -S .
cmake --build build -j

# Determinism lint gate: the machine-checked half of the bit-exactness
# contract (docs/ARCHITECTURE.md §7). Zero violations on the tree; every
# legitimate exception carries an in-source `lint: allow(...)` annotation.
./build/tools/lint_determinism src

ctest --test-dir build --output-on-failure -j "$(nproc)"
ctest --test-dir build --output-on-failure -R test_overlap

# Transport gates, run once more by name so a socket-fabric regression is
# called out explicitly: framing/shutdown unit tests, then the
# cross-process parity suite (forked UDS/TCP rank processes must train
# bit-identically to the in-process mailbox and report measured timing).
ctest --test-dir build --output-on-failure -R test_transport
ctest --test-dir build --output-on-failure -R test_multiprocess

# Schedule-fuzz gate: first the pinned seed (the exact sweep CI has run
# before — any failure here is a regression, reproducible as printed),
# then a smoke sweep seeded from the commit SHA: every commit probes a
# fresh region of the schedule space, while any given commit is hermetic
# — the same tree always runs the same draws, so a red CI bisects to a
# commit, never to a calendar day. Divergences print the reproducing
# --fuzz-seed.
BNSGCN_FUZZ_SEED=20260729 BNSGCN_FUZZ_ITERS=8 ./build/tests/test_schedule_fuzz
SMOKE_SEED=$((16#$(git rev-parse --short=8 HEAD 2>/dev/null || echo 2bd5)))
./build/tests/test_schedule_fuzz --fuzz-seed="$SMOKE_SEED" --fuzz-iters=6

# Four-schedule smoke: bench_overlap runs blocking/bulk/stream/chunked-
# stream on every Fig. 4 config and exits non-zero when losses diverge
# bitwise across schedules or when stream OR chunked stream hides
# measurably less than bulk at >= 8 partitions — neither schedule can
# silently regress to blocking. Output stays in the log: the '!!' lines
# name the violating dataset/row on failure. The artifact feeds the
# chunked-stream replay gate below.
OVERLAP_ARTIFACT=build/overlap_gate_artifact.json
rm -f "$OVERLAP_ARTIFACT"
./build/bench/bench_overlap --scale 0.25 --epochs 3 --json "$OVERLAP_ARTIFACT"

# Multi-process UDS smoke: the same bench over the real socket fabric at
# 2 partitions — one forked OS process per rank, sockets under $TMPDIR
# (no fixed TCP ports; hermetic under parallel CI). Losses must stay
# bit-identical across schedules; comm columns are measured wall-clock,
# so the simulated overlap envelope is (correctly) not gated here.
./build/bench/bench_overlap --transport uds --parts 2 --scale 0.25 \
  --epochs 2 --json build/overlap_uds_smoke.json

# Chunked-stream replay gate: the first four rows of the overlap artifact
# are one config under all four schedules (chunked stream included);
# replaying them proves the chunk knob round-trips through the recorded
# RunConfig and reproduces the deterministic metrics exactly.
./build/bench/bench_replay "$OVERLAP_ARTIFACT" --rows 4

# Replay gate: every artifact row records its RunConfig; re-running one
# must reproduce the recorded deterministic metrics exactly
# (docs/BENCHMARKS.md "JSON artifact schema"). Record a small sweep, then
# replay its first row in a fresh process.
REPLAY_ARTIFACT=build/replay_gate_artifact.json
rm -f "$REPLAY_ARTIFACT"
./build/bench/bench_table13_choice_p --scale 0.2 --epochs 3 \
  --json "$REPLAY_ARTIFACT" > /dev/null
./build/bench/bench_replay "$REPLAY_ARTIFACT" --rows 1

# Halo-cache smoke: bench_cache sweeps partition counts x histogram-derived
# cache budgets and exits non-zero when a cached run's losses diverge
# bitwise from uncached at staleness=0, when the counters stay zero, or
# when the top-quartile budget fails to halve warm-epoch feature bytes at
# 8 partitions (docs/ARCHITECTURE.md §9). Replaying a warm-cache row from
# its artifact proves cache_mb/cache_staleness round-trip through the
# recorded RunConfig and the hit/miss/bytes-saved counters reproduce.
CACHE_ARTIFACT=build/cache_gate_artifact.json
rm -f "$CACHE_ARTIFACT"
./build/bench/bench_cache --scale 0.2 --json "$CACHE_ARTIFACT"
./build/bench/bench_replay "$CACHE_ARTIFACT" --rows 2

# Serving smoke: bench_serve over the forked UDS runtime at 2 partitions —
# its own gates exit non-zero if batch=32 serves below 2x the QPS of
# batch=1 at >= 4 partitions, if socket queries/predictions/logits diverge
# bitwise from the mailbox serve of the same config, or if a sweep point
# drops queries (docs/ARCHITECTURE.md §10). The explicit ctest rerun calls
# out a serve-determinism regression by name.
ctest --test-dir build --output-on-failure -R test_serve
./build/bench/bench_serve --transport uds --scale 0.25 --parts 2,4 \
  --json build/serve_smoke.json

# ---------------------------------------------------------------------------
# Instrumented build matrix. One line per leg: `preset|targets|extra`.
#   preset  — a CMakePresets.json configure preset (build dir build-$preset)
#   targets — build targets; those named test_* are then executed
#   extra   — optional shell command run after the tests (bench smokes)
# Adding a leg is one line here plus its preset.
#
#   checked — BNSGCN_REQUIRE/BOUNDS/SHAPE contracts compiled in: per-element
#             kernel bounds, the layer phase-protocol machine, comm framing
#             and partition boundary audits all verify on real workloads.
#   tsan    — the kernel thread pool and everything layered on it must be
#             race-free, not just bit-exact (test_trainer runs 3 ranks × 4
#             oversubscribed lanes — real interleaving on a one-core runner).
#   asan    — heap misuse and leaks (LeakSanitizer rides along on Linux).
#   ubsan   — -fno-sanitize-recover=all, so any UB report is the exit code.
#
# Instrumented runs are bounded: reduced fuzz iterations, --scale 0.2
# bench smokes. Each sanitizer aborts nonzero on a report, so plain
# invocation is the gate.
INSTRUMENTED_LEGS=(
  "checked|test_ops test_transport test_trainer test_schedule_fuzz bench_overlap|./build-checked/bench/bench_overlap --scale 0.2 --epochs 2 --json build-checked/overlap_smoke.json"
  "tsan|test_thread_pool test_ops test_trainer test_schedule_fuzz|"
  "asan|test_ops test_transport test_trainer test_serve test_schedule_fuzz bench_overlap|./build-asan/bench/bench_overlap --scale 0.2 --epochs 2 --json build-asan/overlap_smoke.json"
  "ubsan|test_ops test_transport test_trainer test_schedule_fuzz|"
)
for leg in "${INSTRUMENTED_LEGS[@]}"; do
  IFS='|' read -r preset targets extra <<< "$leg"
  echo "== instrumented leg: $preset =="
  cmake --preset "$preset"
  # shellcheck disable=SC2086 — targets is a deliberate word list
  cmake --build "build-$preset" -j --target $targets
  for t in $targets; do
    case "$t" in
      test_schedule_fuzz)
        BNSGCN_FUZZ_SEED=20260729 BNSGCN_FUZZ_ITERS=2 \
          "./build-$preset/tests/$t" ;;
      test_*)
        "./build-$preset/tests/$t" ;;
    esac
  done
  if [[ -n "$extra" ]]; then
    eval "$extra"
  fi
done
