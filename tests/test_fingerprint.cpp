#include <gtest/gtest.h>

#include "graph/fingerprint.hpp"
#include "graph/generators.hpp"

namespace bnsgcn {
namespace {

Csr sample_graph(std::uint64_t seed = 1, NodeId n = 500, EdgeId m = 3000) {
  Rng rng(seed);
  return gen::erdos_renyi(n, m, rng);
}

TEST(Fingerprint, DeterministicAndCopyStable) {
  const Csr g = sample_graph();
  const GraphFingerprint a = fingerprint(g);
  const GraphFingerprint b = fingerprint(g);
  EXPECT_EQ(a, b);
  const Csr copy = g; // value identity, not object identity
  EXPECT_EQ(fingerprint(copy), a);
}

TEST(Fingerprint, DifferentGraphsDiffer) {
  EXPECT_NE(fingerprint(sample_graph(1)), fingerprint(sample_graph(2)));
  EXPECT_NE(fingerprint(sample_graph(1, 500)),
            fingerprint(sample_graph(1, 501)));
}

TEST(Fingerprint, SingleEdgeMutationChangesIt) {
  const Csr g = sample_graph();
  CooBuilder b(g.n);
  bool skipped_one = false;
  for (NodeId v = 0; v < g.n; ++v) {
    for (const NodeId u : g.neighbors(v)) {
      if (u < v) continue; // each undirected edge once
      if (!skipped_one) {
        skipped_one = true; // drop exactly one edge
        continue;
      }
      b.add_edge(v, u);
    }
  }
  ASSERT_TRUE(skipped_one);
  EXPECT_NE(fingerprint(b.build()), fingerprint(g));
}

TEST(Fingerprint, NeighborOrderIsStructural) {
  // Same edge set built in a different insertion order: CooBuilder
  // canonicalizes (sort + dedup), so the fingerprint must agree.
  const Csr g = sample_graph(3, 200, 1000);
  CooBuilder fwd(g.n), rev(g.n);
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 0; v < g.n; ++v)
    for (const NodeId u : g.neighbors(v))
      if (u > v) edges.emplace_back(v, u);
  for (const auto& [v, u] : edges) fwd.add_edge(v, u);
  for (auto it = edges.rbegin(); it != edges.rend(); ++it)
    rev.add_edge(it->second, it->first);
  EXPECT_EQ(fingerprint(fwd.build()), fingerprint(rev.build()));
}

TEST(Fingerprint, EmptyAndTinyGraphs) {
  const Csr empty;
  EXPECT_EQ(fingerprint(empty), fingerprint(Csr{}));
  CooBuilder b(2);
  b.add_edge(0, 1);
  const Csr tiny = b.build();
  EXPECT_NE(fingerprint(tiny), fingerprint(empty));
}

TEST(Fingerprint, HexIs32LowercaseChars) {
  const GraphFingerprint fp = fingerprint(sample_graph());
  const std::string hex = fp.hex();
  ASSERT_EQ(hex.size(), 32u);
  for (const char c : hex)
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << hex;
  EXPECT_EQ(GraphFingerprint{}.hex(), std::string(32, '0'));
}

} // namespace
} // namespace bnsgcn
