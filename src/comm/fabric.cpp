#include "comm/fabric.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/check.hpp"

namespace bnsgcn::comm {

std::int64_t RankStats::total_tx_bytes() const {
  std::int64_t sum = 0;
  for (const auto b : tx_bytes) sum += b;
  return sum;
}

std::int64_t RankStats::total_rx_bytes() const {
  std::int64_t sum = 0;
  for (const auto b : rx_bytes) sum += b;
  return sum;
}

double RankStats::sim_seconds(TrafficClass cls, const CostModel& cost) const {
  const auto i = static_cast<int>(cls);
  const double tx = static_cast<double>(tx_msgs[i]) * cost.latency_s +
                    static_cast<double>(tx_bytes[i]) / cost.bytes_per_s;
  const double rx = static_cast<double>(rx_msgs[i]) * cost.latency_s +
                    static_cast<double>(rx_bytes[i]) / cost.bytes_per_s;
  return std::max(tx, rx);
}

Fabric::Fabric(PartId nranks, CostModel cost)
    : nranks_(nranks), cost_(cost),
      barrier_(static_cast<std::size_t>(nranks)),
      reduce_slots_(static_cast<std::size_t>(nranks)),
      scalar_slots_(static_cast<std::size_t>(nranks), 0.0),
      gather_slots_(static_cast<std::size_t>(nranks)) {
  BNSGCN_CHECK(nranks >= 1);
  mailboxes_.resize(static_cast<std::size_t>(nranks) *
                    static_cast<std::size_t>(nranks));
  for (auto& box : mailboxes_) box = std::make_unique<Mailbox>();
  endpoints_.reserve(static_cast<std::size_t>(nranks));
  for (PartId r = 0; r < nranks; ++r)
    endpoints_.push_back(std::unique_ptr<Endpoint>(new Endpoint(*this, r)));
}

Endpoint& Fabric::endpoint(PartId rank) {
  BNSGCN_CHECK(rank >= 0 && rank < nranks_);
  return *endpoints_[static_cast<std::size_t>(rank)];
}

std::int64_t Fabric::total_rx_bytes(TrafficClass cls) const {
  std::int64_t sum = 0;
  for (const auto& ep : endpoints_)
    sum += ep->stats().rx_bytes[static_cast<int>(cls)];
  return sum;
}

void Fabric::reset_stats() {
  for (auto& ep : endpoints_) ep->stats().reset();
}

void Fabric::enable_delivery_shuffle(std::uint64_t seed, int max_hold) {
  BNSGCN_CHECK(max_hold >= 1);
  shuffle_ = true;
  shuffle_seed_ = seed;
  shuffle_max_hold_ = max_hold;
}

int Fabric::hold_of(PartId from, PartId to, int tag) const {
  if (!shuffle_) return 0;
  // splitmix64 over the message's stable identity (seed, from, to, tag) —
  // deliberately not a deposit counter, whose value would depend on the
  // interleaving of concurrent sender threads and make a failing fuzz
  // seed irreproducible. Tags are the trainer's per-phase sequence, so
  // (from, to, tag) names each boundary message uniquely within a run.
  std::uint64_t z = shuffle_seed_ ^
                    (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                         from)) << 42) ^
                    (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                         to)) << 21) ^
                    static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag));
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= z >> 31;
  return static_cast<int>(z % static_cast<std::uint64_t>(shuffle_max_hold_));
}

Fabric::Message Fabric::take_matching(Mailbox& box, int tag) {
  std::unique_lock<std::mutex> lock(box.mu);
  for (;;) {
    const auto it =
        std::find_if(box.queue.begin(), box.queue.end(),
                     [tag](const Message& m) { return m.tag == tag; });
    if (it != box.queue.end()) {
      Message msg = std::move(*it);
      box.queue.erase(it);
      return msg;
    }
    box.cv.wait(lock);
  }
}

bool Fabric::try_take_matching(Mailbox& box, int tag, Message& out) {
  std::lock_guard<std::mutex> lock(box.mu);
  const auto it =
      std::find_if(box.queue.begin(), box.queue.end(),
                   [tag](const Message& m) { return m.tag == tag; });
  if (it == box.queue.end()) return false;
  if (it->hold > 0) { // delivery shuffle: not yet "arrived" for probes
    --it->hold;
    return false;
  }
  out = std::move(*it);
  box.queue.erase(it);
  return true;
}

bool Request::test() {
  if (done()) return true;
  if (state_->fabric->try_take_matching(*state_->box, state_->tag,
                                        state_->payload)) {
    state_->done = true;
  }
  return done();
}

void Request::wait() {
  if (done()) return;
  state_->payload =
      state_->fabric->take_matching(*state_->box, state_->tag);
  state_->done = true;
}

std::vector<float> Request::take_floats() {
  wait();
  BNSGCN_CHECK(state_ != nullptr);
  return std::move(state_->payload.floats);
}

std::vector<NodeId> Request::take_ids() {
  wait();
  BNSGCN_CHECK(state_ != nullptr);
  return std::move(state_->payload.ids);
}

void wait_all(std::span<Request> requests) {
  // First drain whatever already arrived without blocking, then block on
  // the stragglers — the usual Waitall progression.
  for (auto& r : requests) (void)r.test();
  for (auto& r : requests) r.wait();
}

std::size_t RequestSet::add(Request req) {
  const std::size_t idx = requests_.size();
  requests_.push_back(std::move(req));
  reported_.push_back(0);
  ++pending_;
  return idx;
}

std::size_t RequestSet::poll(std::vector<std::size_t>& completed) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < requests_.size(); ++i) {
    if (reported_[i]) continue;
    if (requests_[i].test()) {
      reported_[i] = 1;
      --pending_;
      completed.push_back(i);
      ++n;
    }
  }
  return n;
}

std::size_t RequestSet::wait_any(std::vector<std::size_t>& completed) {
  if (pending_ == 0) return 0;
  for (int empty_passes = 0;; ++empty_passes) {
    const std::size_t n = poll(completed);
    if (n > 0) return n;
    // Nothing landed this pass: let sender threads run. A condvar across
    // several mailboxes would need fabric-level plumbing, so this polls —
    // but a bare spin-yield would contend with the ranks still computing
    // (and inflate their measured compute on oversubscribed hosts), so
    // after a burst of empty passes back off to a real sleep.
    if (empty_passes < 64) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
}

void RequestSet::wait_all() {
  for (std::size_t i = 0; i < requests_.size(); ++i) {
    if (reported_[i]) continue;
    requests_[i].wait();
    reported_[i] = 1;
    --pending_;
  }
}

PartId Endpoint::nranks() const { return fabric_.nranks(); }

void Endpoint::send_floats(PartId to, int tag, std::vector<float> payload,
                           TrafficClass cls) {
  BNSGCN_CHECK(to >= 0 && to < fabric_.nranks() && to != rank_);
  const auto bytes =
      static_cast<std::int64_t>(payload.size() * sizeof(float));
  stats_.tx_bytes[static_cast<int>(cls)] += bytes;
  ++stats_.tx_msgs[static_cast<int>(cls)];
  auto& peer = fabric_.endpoint(to).stats_;
  // Receiver-side counters are written by the sender thread; the receiver
  // only reads them after a barrier, so plain writes would race with other
  // senders — guard with the mailbox lock below (same critical section).
  auto& box = fabric_.mailbox(rank_, to);
  {
    std::lock_guard<std::mutex> lock(box.mu);
    peer.rx_bytes[static_cast<int>(cls)] += bytes;
    ++peer.rx_msgs[static_cast<int>(cls)];
    box.queue.push_back(Fabric::Message{.tag = tag,
                                        .hold = fabric_.hold_of(rank_, to, tag),
                                        .floats = std::move(payload),
                                        .ids = {}});
  }
  box.cv.notify_all();
}

std::vector<float> Endpoint::recv_floats(PartId from, int tag,
                                         TrafficClass cls) {
  (void)cls; // rx accounting happens on the sender side under the box lock
  BNSGCN_CHECK(from >= 0 && from < fabric_.nranks() && from != rank_);
  auto msg = fabric_.take_matching(fabric_.mailbox(from, rank_), tag);
  return std::move(msg.floats);
}

void Endpoint::send_ids(PartId to, int tag, std::vector<NodeId> payload,
                        TrafficClass cls) {
  BNSGCN_CHECK(to >= 0 && to < fabric_.nranks() && to != rank_);
  const auto bytes =
      static_cast<std::int64_t>(payload.size() * sizeof(NodeId));
  stats_.tx_bytes[static_cast<int>(cls)] += bytes;
  ++stats_.tx_msgs[static_cast<int>(cls)];
  auto& peer = fabric_.endpoint(to).stats_;
  auto& box = fabric_.mailbox(rank_, to);
  {
    std::lock_guard<std::mutex> lock(box.mu);
    peer.rx_bytes[static_cast<int>(cls)] += bytes;
    ++peer.rx_msgs[static_cast<int>(cls)];
    box.queue.push_back(Fabric::Message{.tag = tag,
                                        .hold = fabric_.hold_of(rank_, to, tag),
                                        .floats = {},
                                        .ids = std::move(payload)});
  }
  box.cv.notify_all();
}

std::vector<NodeId> Endpoint::recv_ids(PartId from, int tag,
                                       TrafficClass cls) {
  (void)cls;
  BNSGCN_CHECK(from >= 0 && from < fabric_.nranks() && from != rank_);
  auto msg = fabric_.take_matching(fabric_.mailbox(from, rank_), tag);
  return std::move(msg.ids);
}

Request Endpoint::isend_floats(PartId to, int tag, std::vector<float> payload,
                               TrafficClass cls) {
  // The mailbox deposit never blocks, so an "immediate" send completes on
  // posting; the Request exists for a uniform wait_all over mixed batches.
  send_floats(to, tag, std::move(payload), cls);
  auto state = std::make_unique<Request::State>();
  state->done = true;
  return Request(std::move(state));
}

Request Endpoint::isend_ids(PartId to, int tag, std::vector<NodeId> payload,
                            TrafficClass cls) {
  send_ids(to, tag, std::move(payload), cls);
  auto state = std::make_unique<Request::State>();
  state->done = true;
  return Request(std::move(state));
}

Request Endpoint::irecv_floats(PartId from, int tag, TrafficClass cls) {
  (void)cls; // rx accounting happens on the sender side under the box lock
  BNSGCN_CHECK(from >= 0 && from < fabric_.nranks() && from != rank_);
  auto state = std::make_unique<Request::State>();
  state->fabric = &fabric_;
  state->box = &fabric_.mailbox(from, rank_);
  state->tag = tag;
  return Request(std::move(state));
}

Request Endpoint::irecv_ids(PartId from, int tag, TrafficClass cls) {
  return irecv_floats(from, tag, cls); // same matching; payload kind differs
}

void Endpoint::barrier() { fabric_.barrier_.arrive_and_wait(); }

void Endpoint::allreduce_sum(std::span<float> data, TrafficClass cls) {
  auto& slot = fabric_.reduce_slots_[static_cast<std::size_t>(rank_)];
  slot.assign(data.begin(), data.end());
  barrier();
  // Every rank reads all slots; writes finished before the barrier.
  for (PartId r = 0; r < fabric_.nranks(); ++r) {
    if (r == rank_) continue;
    const auto& other = fabric_.reduce_slots_[static_cast<std::size_t>(r)];
    BNSGCN_CHECK(other.size() == data.size());
    for (std::size_t i = 0; i < data.size(); ++i) data[i] += other[i];
  }
  // Ring-allreduce accounting: each rank moves 2*(n-1)/n of the payload.
  const auto n = fabric_.nranks();
  if (n > 1) {
    const auto payload = static_cast<std::int64_t>(
        2.0 * static_cast<double>(n - 1) / static_cast<double>(n) *
        static_cast<double>(data.size() * sizeof(float)));
    stats_.tx_bytes[static_cast<int>(cls)] += payload;
    stats_.rx_bytes[static_cast<int>(cls)] += payload;
    stats_.tx_msgs[static_cast<int>(cls)] += 2 * (n - 1);
    stats_.rx_msgs[static_cast<int>(cls)] += 2 * (n - 1);
  }
  barrier(); // protect slots from the next collective
}

double Endpoint::allreduce_sum_scalar(double value) {
  fabric_.scalar_slots_[static_cast<std::size_t>(rank_)] = value;
  barrier();
  double sum = 0.0;
  for (const double v : fabric_.scalar_slots_) sum += v;
  barrier();
  return sum;
}

double Endpoint::allreduce_max_scalar(double value) {
  fabric_.scalar_slots_[static_cast<std::size_t>(rank_)] = value;
  barrier();
  double mx = fabric_.scalar_slots_[0];
  for (const double v : fabric_.scalar_slots_) mx = std::max(mx, v);
  barrier();
  return mx;
}

std::vector<std::vector<NodeId>> Endpoint::allgather_ids(
    std::vector<NodeId> ids, TrafficClass cls) {
  const auto own_bytes = static_cast<std::int64_t>(ids.size() * sizeof(NodeId));
  fabric_.gather_slots_[static_cast<std::size_t>(rank_)] = std::move(ids);
  barrier();
  std::vector<std::vector<NodeId>> out(
      static_cast<std::size_t>(fabric_.nranks()));
  std::int64_t rx = 0;
  for (PartId r = 0; r < fabric_.nranks(); ++r) {
    out[static_cast<std::size_t>(r)] =
        fabric_.gather_slots_[static_cast<std::size_t>(r)];
    if (r != rank_)
      rx += static_cast<std::int64_t>(out[static_cast<std::size_t>(r)].size() *
                                      sizeof(NodeId));
  }
  const auto n = fabric_.nranks();
  stats_.tx_bytes[static_cast<int>(cls)] += own_bytes * (n - 1);
  stats_.rx_bytes[static_cast<int>(cls)] += rx;
  stats_.tx_msgs[static_cast<int>(cls)] += n - 1;
  stats_.rx_msgs[static_cast<int>(cls)] += n - 1;
  barrier();
  return out;
}

} // namespace bnsgcn::comm
