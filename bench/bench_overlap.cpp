// Communication–computation overlap: blocking vs bulk vs stream vs
// chunked-stream boundary exchange on the Figure 4 throughput configs, at
// partition counts {2, 4, 8, 16}. All four schedules execute the identical
// fp instruction stream (per-peer folds in fixed peer order, row-chunked
// F1 bit-exact by row independence — docs/ARCHITECTURE.md §4), so losses
// are bit-identical and the interesting columns are the simulated epoch
// times, the hidden exchange time, and the per-peer tail:
//  - "bulk" hides the exchange behind the single halo-independent compute
//    phase (one wait_all);
//  - "stream" additionally folds each peer the moment it lands, so early
//    folds hide the transfers of the peers still in flight;
//  - "chunked" is stream with F1 driven in row chunks
//    (comm.inner_chunk_rows) and the completion set polled between
//    chunks, so folds start mid-F1 instead of queueing until it returns;
//  - "tail" is EpochBreakdown::comm_tail_s — the slowest single peer
//    message per exchange, summed over the epoch. It is exactly the
//    serialization a bulk wait_all cannot touch: at m >= 8 partitions the
//    stream and chunked columns should hide at least as much as bulk on
//    every row. Because overlap_s is a measured min-over-ranks statistic
//    compared across independent runs, the enforced gate is the
//    half-of-bulk envelope (>= 0.5*bulk - 0.01) — loose enough for
//    scheduler noise, tight enough that a schedule regressing toward
//    blocking (hiding ~nothing) still fails.
// Expected shape: epoch time blocking >= bulk >= stream wherever there is
// boundary traffic; the stream-over-bulk gap widens with the partition
// count because more peers mean more fold work overlapping the tail.

#include "common.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>

namespace {

using namespace bnsgcn;

struct ModeRow {
  api::RunReport report;
  double overlap_s = 0.0;
};

int g_shape_failures = 0;

/// Exact bitwise equality of two loss curves. The schedule is
/// deterministic, so "equal" means equal down to the last mantissa bit —
/// compared through the bit pattern, not operator== on doubles: bitwise
/// equality is NaN-safe (a diverged run that produced the same NaN on two
/// schedules should not count as a divergence between them) and says
/// precisely what the parity claim says. The fuzz harness
/// (tests/test_schedule_fuzz.cpp) asserts the same predicate.
bool bits_equal(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(a[i]) !=
        std::bit_cast<std::uint64_t>(b[i]))
      return false;
  }
  return true;
}

void run_dataset(const char* title, const char* preset, double scale,
                 const std::vector<PartId>& parts,
                 const api::BenchOptions& opts, bench::ReportSink& sink) {
  const auto pr = bench::load_preset(preset, scale, opts);
  const Dataset& ds = pr.ds;
  std::printf("\n--- %s (n=%d, avg deg %.1f) ---\n", title, ds.num_nodes(),
              ds.graph.average_degree());
  // "hidden" columns compare each pipelined run against its own
  // blocking-equivalent epoch (total_s + overlap_s): all modes execute the
  // identical instruction stream, so that difference is exactly the hidden
  // exchange time, free of run-to-run compute-measurement noise. The
  // separately measured blocking run is printed as context.
  std::printf("%-14s %10s %9s %9s %9s %7s %7s %7s %9s\n", "config",
              "block s/ep", "bulk s/ep", "strm s/ep", "chnk s/ep", "bulk%",
              "strm%", "chnk%", "tail s/ep");

  api::RunConfig base = pr.config(api::Method::kBns);
  base.trainer.epochs = opts.epochs_or(5); // throughput measurement only
  base.comm.transport = opts.transport;
  // The overlap-envelope gates below compare simulated (CostModel) times,
  // which only the mailbox fabric produces; socket runs report measured
  // wall-clock spans whose run-to-run noise swamps the envelope.
  const bool simulated = opts.transport == comm::TransportKind::kMailbox;

  // The chunked column streams with F1 cut into 128-row chunks — small
  // enough that several polls land inside one layer at these scales, large
  // enough that the per-chunk staging stays amortized.
  const struct {
    core::OverlapMode mode;
    NodeId chunk;
    const char* name;
  } kModes[] = {{core::OverlapMode::kBlocking, 0, "blocking"},
                {core::OverlapMode::kBulk, 0, "bulk"},
                {core::OverlapMode::kStream, 0, "stream"},
                {core::OverlapMode::kStream, 128, "chunked"}};

  for (const PartId m : parts) {
    base.partition.nparts = m; // partitioned once, cached for all 8 runs
    for (const float p : {1.0f, 0.1f}) {
      auto cfg = base;
      cfg.trainer.sample_rate = p;

      ModeRow rows[4];
      for (int k = 0; k < 4; ++k) {
        cfg.comm.overlap = kModes[k].mode;
        cfg.comm.inner_chunk_rows = kModes[k].chunk;
        rows[k].report = sink.run_streamed(
            bench::label("%s m=%d p=%.2f %s", preset, m, p, kModes[k].name),
            ds, cfg);
        rows[k].overlap_s = rows[k].report.overlap_saved_s();
        // Every mode after the first must be a cache hit on the same
        // partition — the four-way comparison is only honest when all
        // modes train on identical local graphs.
        if (k > 0 && rows[k].report.partition_cache.misses != 0) {
          std::printf("  !! partition cache miss on a repeat mode\n");
          ++g_shape_failures;
        }
      }

      const auto& bulk = rows[1];
      const auto& strm = rows[2];
      const auto& chnk = rows[3];
      std::printf("%-14s %10.4f %9.4f %9.4f %9.4f %6.1f%% %6.1f%% %6.1f%% "
                  "%9.4f\n",
                  bench::label("m=%d p=%.2f", m, p).c_str(),
                  rows[0].report.epoch_time_s(), bulk.report.epoch_time_s(),
                  strm.report.epoch_time_s(), chnk.report.epoch_time_s(),
                  100.0 * bulk.report.overlap_fraction(),
                  100.0 * strm.report.overlap_fraction(),
                  100.0 * chnk.report.overlap_fraction(),
                  chnk.report.mean_epoch().comm_tail_s);

      // Shape checks. Bit-identical losses across modes and chunkings are
      // pinned by tests/test_overlap.cpp and the schedule-fuzz harness;
      // here we gate on the same bitwise predicate, then assert the
      // accounting shape: at m >= 8 partitions (the Fig. 4 regime this
      // bench exists for) the stream and chunked-stream schedules must
      // hide at least as much as bulk.
      for (int k = 1; k < 4; ++k) {
        if (!bits_equal(rows[0].report.train_loss,
                        rows[k].report.train_loss)) {
          std::printf("  !! losses diverge: %s vs blocking\n",
                      kModes[k].name);
          ++g_shape_failures;
        }
      }
      // Measurement tolerance: overlap_s is a min-over-ranks of measured
      // compute windows, compared here across two independent runs — on a
      // loaded (or single-core) box that extreme-value statistic wobbles
      // by tens of percent even though the schedule-based model orders
      // the modes deterministically. A real regression (stream degrading
      // toward blocking) loses the hiding wholesale — overlap_s collapses
      // to ~0 — which the half-of-bulk envelope still catches on every
      // row where bulk hides anything meaningful.
      if (simulated && m >= 8 && strm.overlap_s < 0.5 * bulk.overlap_s - 0.01) {
        std::printf("  !! stream hid far less than bulk "
                    "(%.6f < 0.5 * %.6f - 0.01)\n",
                    strm.overlap_s, bulk.overlap_s);
        ++g_shape_failures;
      }
      if (simulated && m >= 8 && chnk.overlap_s < 0.5 * bulk.overlap_s - 0.01) {
        std::printf("  !! chunked stream hid far less than bulk "
                    "(%.6f < 0.5 * %.6f - 0.01)\n",
                    chnk.overlap_s, bulk.overlap_s);
        ++g_shape_failures;
      }
    }
  }
}

} // namespace

int main(int argc, char** argv) {
  using namespace bnsgcn;
  const auto opts = api::parse_bench_args(argc, argv);
  bench::print_banner(
      "Overlap",
      "blocking vs bulk vs stream vs chunked-stream exchange (Fig. 4 "
      "configs)");
  std::printf("transport: %s (%s comm times)\n",
              comm::transport_kind_name(opts.transport),
              opts.transport == comm::TransportKind::kMailbox
                  ? "simulated"
                  : "measured wall-clock");
  bench::ReportSink sink("Overlap", opts);
  const double s = opts.scale;
  const std::vector<PartId> parts =
      opts.parts.empty()
          ? std::vector<PartId>{2, 4, 8, 16}
          : std::vector<PartId>(opts.parts.begin(), opts.parts.end());

  run_dataset("Reddit-like", "reddit", 0.5 * s, parts, opts, sink);
  run_dataset("ogbn-products-like", "products", 0.4 * s, parts, opts, sink);
  run_dataset("Yelp-like", "yelp", 0.5 * s, parts, opts, sink);

  if (g_shape_failures > 0) {
    std::printf("\nshape check FAILED: %d violation(s)\n", g_shape_failures);
    return 1;
  }
  if (opts.transport == comm::TransportKind::kMailbox) {
    std::printf("\nshape check: losses bit-identical across all four "
                "schedules on every row; at m >= 8 partitions stream and "
                "chunked stream each hid >= the half-of-bulk envelope on "
                "every row (the measurement-noise-tolerant stand-in for "
                "'hid >= bulk'; parity pinned by tests/test_overlap.cpp and "
                "tests/test_schedule_fuzz.cpp).\n");
  } else {
    std::printf("\nshape check: losses bit-identical across all four "
                "schedules on every row (comm columns are measured "
                "wall-clock on this transport, so the simulated overlap "
                "envelope is not gated).\n");
  }
  return 0;
}
