#pragma once

#include "api/run.hpp"

namespace bnsgcn::api {

/// Multi-process BNS-GCN runtime: fork one OS process per partition, each
/// running the unchanged core::BnsTrainer rank loop over a socket fabric
/// (cfg.comm.transport selects UDS or TCP; see comm/process_group.hpp for
/// the bootstrap). The trainer — dataset, partitioning, local graphs — is
/// built before forking, so children inherit it copy-on-write and nothing
/// is serialized on the way in; rank 0 streams its aggregated RunReport
/// back over a pipe as JSON (doubles round-trip bit-exactly at %.17g).
///
/// Losses and byte counts are bit-identical to the in-process mailbox run
/// of the same config; comm/overlap/tail/reduce times are measured
/// wall-clock instead of simulated (EpochBreakdown::timing == kMeasured).
///
/// Throws if any rank exits nonzero (the failing rank's message goes to
/// stderr; peers unwind via the fabric's shutdown path rather than
/// hanging).
[[nodiscard]] RunReport run_multiprocess(const Dataset& ds,
                                         const Partitioning& part,
                                         const RunConfig& cfg);

} // namespace bnsgcn::api
