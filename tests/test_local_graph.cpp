#include <gtest/gtest.h>

#include <set>

#include "core/local_graph.hpp"
#include "graph/generators.hpp"
#include "partition/metis_like.hpp"
#include "partition/stats.hpp"

namespace bnsgcn {
namespace {

using core::build_local_graphs;
using core::LocalGraph;

TEST(LocalGraph, HandBuiltPath) {
  // Path 0-1-2-3, split {0,1} | {2,3}.
  CooBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  const Csr g = b.build();
  Partitioning part;
  part.nparts = 2;
  part.owner = {0, 0, 1, 1};
  const auto lgs = build_local_graphs(g, part);
  ASSERT_EQ(lgs.size(), 2u);

  const LocalGraph& a = lgs[0];
  EXPECT_EQ(a.n_inner(), 2);
  EXPECT_EQ(a.n_halo(), 1);
  EXPECT_EQ(a.halo_global[0], 2);
  EXPECT_EQ(a.halo_owner[0], 1);
  // Node 1 (local 1) must be sent to partition 1.
  ASSERT_EQ(a.send_sets[1].size(), 1u);
  EXPECT_EQ(a.send_sets[1][0], 1);
  // adj: local 0 -> {1}; local 1 -> {0, halo 2}.
  EXPECT_EQ(a.adj.degree(0), 1);
  EXPECT_EQ(a.adj.degree(1), 2);
  EXPECT_FLOAT_EQ(a.inv_full_degree[1], 0.5f);

  const LocalGraph& c = lgs[1];
  EXPECT_EQ(c.n_inner(), 2);
  EXPECT_EQ(c.halo_global[0], 1);
  ASSERT_EQ(c.send_sets[0].size(), 1u);
  EXPECT_EQ(c.inner_global[static_cast<std::size_t>(c.send_sets[0][0])], 2);
}

TEST(LocalGraph, SendRecvSymmetry) {
  // What j sends to i must be exactly i's halo owned by j, in order.
  Rng rng(1);
  const Csr g = gen::erdos_renyi(800, 6000, rng);
  const auto part = random_partition(g.n, 5, rng);
  const auto lgs = build_local_graphs(g, part);
  for (PartId i = 0; i < 5; ++i) {
    for (PartId j = 0; j < 5; ++j) {
      if (i == j) continue;
      const auto& sender = lgs[static_cast<std::size_t>(j)];
      const auto& receiver = lgs[static_cast<std::size_t>(i)];
      const auto& sent_rows =
          sender.send_sets[static_cast<std::size_t>(i)];
      const auto& halo_idx =
          receiver.recv_halo[static_cast<std::size_t>(j)];
      ASSERT_EQ(sent_rows.size(), halo_idx.size());
      for (std::size_t t = 0; t < sent_rows.size(); ++t) {
        const NodeId sent_global =
            sender.inner_global[static_cast<std::size_t>(sent_rows[t])];
        const NodeId expected_global =
            receiver.halo_global[static_cast<std::size_t>(halo_idx[t])];
        EXPECT_EQ(sent_global, expected_global);
      }
    }
  }
}

TEST(LocalGraph, BoundaryCountsMatchPartitionStats) {
  Rng rng(2);
  const Csr g = gen::rmat(1024, 8000, rng);
  const auto part = random_partition(g.n, 4, rng);
  const auto stats = compute_stats(g, part);
  const auto lgs = build_local_graphs(g, part);
  for (PartId i = 0; i < 4; ++i) {
    EXPECT_EQ(lgs[static_cast<std::size_t>(i)].n_halo(),
              stats.boundary_count[static_cast<std::size_t>(i)]);
    EXPECT_EQ(lgs[static_cast<std::size_t>(i)].n_inner(),
              stats.inner_count[static_cast<std::size_t>(i)]);
  }
}

TEST(LocalGraph, AdjacencyPreservesAllEdges) {
  // Sum of local adjacency arcs == global arcs (each arc appears exactly
  // once, in its head's owner partition).
  Rng rng(3);
  const Csr g = gen::erdos_renyi(500, 3000, rng);
  const auto part = random_partition(g.n, 3, rng);
  const auto lgs = build_local_graphs(g, part);
  EdgeId total = 0;
  for (const auto& lg : lgs) total += lg.adj.num_edges();
  EXPECT_EQ(total, g.num_arcs());
}

TEST(LocalGraph, DegreesMatchGlobal) {
  Rng rng(4);
  const Csr g = gen::erdos_renyi(300, 2500, rng);
  const auto part = random_partition(g.n, 4, rng);
  const auto lgs = build_local_graphs(g, part);
  for (const auto& lg : lgs) {
    for (NodeId lv = 0; lv < lg.n_inner(); ++lv) {
      const NodeId v = lg.inner_global[static_cast<std::size_t>(lv)];
      EXPECT_EQ(lg.adj.degree(lv), g.degree(v));
      if (g.degree(v) > 0) {
        EXPECT_FLOAT_EQ(lg.inv_full_degree[static_cast<std::size_t>(lv)],
                        1.0f / static_cast<float>(g.degree(v)));
      }
    }
  }
}

TEST(LocalGraph, SinglePartitionHasNoHalo) {
  Rng rng(5);
  const Csr g = gen::erdos_renyi(200, 1000, rng);
  Partitioning part;
  part.nparts = 1;
  part.owner.assign(200, 0);
  const auto lgs = build_local_graphs(g, part);
  EXPECT_EQ(lgs[0].n_halo(), 0);
  EXPECT_EQ(lgs[0].adj.num_edges(), g.num_arcs());
}

TEST(LocalGraph, SliceRowsAndLocalRows) {
  Matrix global{{0, 0}, {1, 1}, {2, 2}, {3, 3}};
  const std::vector<NodeId> ids{3, 1};
  const Matrix sliced = core::slice_rows(global, ids);
  EXPECT_FLOAT_EQ(sliced.at(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(sliced.at(1, 0), 1.0f);

  CooBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const Csr g = b.build();
  Partitioning part;
  part.nparts = 2;
  part.owner = {0, 0, 1, 1};
  const auto lgs = build_local_graphs(g, part);
  const std::vector<NodeId> split{0, 2, 3};
  const auto rows0 = core::local_rows_of(lgs[0], split);
  const auto rows1 = core::local_rows_of(lgs[1], split);
  EXPECT_EQ(rows0, (std::vector<NodeId>{0}));
  EXPECT_EQ(rows1, (std::vector<NodeId>{0, 1}));
}

class LocalGraphSweep
    : public ::testing::TestWithParam<std::tuple<PartId, int>> {};

TEST_P(LocalGraphSweep, InvariantsAcrossPartitionersAndSizes) {
  const auto [m, which] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m) * 7 + static_cast<std::uint64_t>(which));
  const Csr g = gen::rmat(700, 5000, rng);
  Partitioning part;
  switch (which) {
    case 0: part = random_partition(g.n, m, rng); break;
    case 1: part = metis_like(g, m); break;
    default: part = bfs_partition(g, m, rng); break;
  }
  const auto lgs = build_local_graphs(g, part);
  // Every global node is inner in exactly one partition.
  std::vector<int> seen(static_cast<std::size_t>(g.n), 0);
  for (const auto& lg : lgs)
    for (const NodeId v : lg.inner_global) ++seen[static_cast<std::size_t>(v)];
  for (const int s : seen) EXPECT_EQ(s, 1);
  // Halo owners are never self; halo nodes exist in their owner's inner set.
  for (const auto& lg : lgs) {
    for (std::size_t k = 0; k < lg.halo_global.size(); ++k) {
      EXPECT_NE(lg.halo_owner[k], lg.part_id);
      const auto& owner_lg =
          lgs[static_cast<std::size_t>(lg.halo_owner[k])];
      EXPECT_TRUE(std::binary_search(owner_lg.inner_global.begin(),
                                     owner_lg.inner_global.end(),
                                     lg.halo_global[k]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LocalGraphSweep,
    ::testing::Combine(::testing::Values(2, 3, 6),
                       ::testing::Values(0, 1, 2)));

} // namespace
} // namespace bnsgcn
