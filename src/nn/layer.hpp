#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "tensor/matrix.hpp"

namespace bnsgcn::nn {

/// Adjacency from `n_src` source rows to `n_dst` destination rows.
///
/// In partition-parallel training, destinations are a partition's inner
/// nodes (local ids [0, n_dst)) and sources are inner nodes followed by the
/// (sampled) halo (ids [n_dst, n_src)). Minibatch trainers use it for their
/// layered blocks as well.
struct BipartiteCsr {
  NodeId n_dst = 0;
  NodeId n_src = 0;
  std::vector<EdgeId> offsets; // size n_dst + 1
  std::vector<NodeId> nbrs;    // values in [0, n_src)
  /// Optional per-edge multiplier (same indexing as nbrs). Used by the
  /// edge-sampling baselines (DropEdge / BES, Table 9) to keep the mean
  /// estimator unbiased: kept edges carry weight 1/keep_rate. Empty = all 1.
  std::vector<float> edge_scale;

  [[nodiscard]] EdgeId num_edges() const {
    return offsets.empty() ? 0 : offsets.back();
  }
  [[nodiscard]] NodeId degree(NodeId dst) const {
    return static_cast<NodeId>(offsets[static_cast<std::size_t>(dst) + 1] -
                               offsets[static_cast<std::size_t>(dst)]);
  }
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId dst) const {
    return {nbrs.data() + offsets[static_cast<std::size_t>(dst)],
            static_cast<std::size_t>(degree(dst))};
  }
  void validate() const;
};

/// Mean neighbor aggregation (Eq. 1 with a mean aggregator):
///   out[v,:] = inv_deg[v] * sum_{u in adj(v)} src[u,:]
/// `inv_deg` is supplied by the caller because under boundary-node sampling
/// the normalizer stays 1/full_degree (unbiasedness; DESIGN.md §3), which
/// the adjacency alone cannot know.
void mean_aggregate(const BipartiteCsr& adj, const Matrix& src,
                    std::span<const float> inv_deg, Matrix& out);

/// Backward of mean_aggregate: dsrc[u,:] += inv_deg[v] * dout[v,:].
/// `dsrc` must be pre-sized to (n_src, d) and is accumulated into.
void mean_aggregate_backward(const BipartiteCsr& adj, const Matrix& dout,
                             std::span<const float> inv_deg, Matrix& dsrc);

// ---------------------------------------------------------------------------
// Split-phase aggregation, for communication–computation overlap.
//
// The source block of a partition-parallel layer is [inner; halo]: rows
// below `n_lo` are locally owned, rows at and above it arrive over the
// fabric. The *_inner pass consumes only local sources and can therefore
// run while the halo rows are still in flight — in row chunks, so folds
// can interleave mid-pass; the halo folds accumulate into a buffer of
// their own, and the finish pass combines and normalizes:
//   finish == inv_deg ⊙ (sum_inner + sum_halo)
// Per destination row the summation order is: inner terms (adjacency
// order), then the halo sum (accumulated in (peer, slot, incidence)
// order) added as one term — independent of chunking and of *when* folds
// land relative to chunks, which is what keeps every schedule and every
// chunk size bit-identical. Relative to the interleaved single-pass
// mean_aggregate this reassociates the per-row sum (fp32 drift only).
// The backward splits are bitwise identical to mean_aggregate_backward
// because every scattered target receives its contributions in the same
// (dst, edge) order.
// ---------------------------------------------------------------------------

/// Phase 1, row-chunked: out[v,:] = sum over neighbors u <
/// inner_src.rows() of edge_scale * inner_src[u,:] (unnormalized), for
/// destinations [row0, row1) only, accumulated into a pre-sized, caller-
/// zeroed `out`. Per-row work is independent, so any chunking of
/// [0, n_dst) into ranges produces the bit-identical matrix — which is
/// what lets the trainer interleave RequestSet polls between chunks
/// without perturbing the fp schedule.
void mean_aggregate_inner_rows(const BipartiteCsr& adj,
                               const Matrix& inner_src, NodeId row0,
                               NodeId row1, Matrix& out);

/// Reverse incidence of the halo sources of a compacted adjacency: for
/// each halo slot s (source id n_lo + s), the (dst, edge_scale) entries
/// that reference it. This is what lets a consumer fold one peer's
/// received rows into the destination aggregate the moment the slab lands
/// (streaming fold) instead of waiting for the assembled halo block.
/// Built in O(n_dst + edges); entries of one slot keep adjacency order.
struct HaloIncidence {
  NodeId n_lo = 0;     // first halo source id; slots index from here
  NodeId n_halo = 0;   // number of halo slots
  std::vector<EdgeId> offsets;  // size n_halo + 1
  std::vector<NodeId> dsts;     // destination row of each entry
  std::vector<float> scales;    // edge_scale of each entry (1 when unweighted)

  void build(const BipartiteCsr& adj, NodeId n_lo);
};

/// Phase 2a (streaming fold): out[dst,:] += es * rows[t,:] for every
/// incidence entry of slot slots[t]. `rows` is one peer's halo slab
/// (slots.size() rows of width d, row-major, already 1/p-scaled by the
/// caller). Folding peers in a fixed order makes the per-destination
/// summation order deterministic: inner terms first
/// (mean_aggregate_inner_rows, adjacency order), then halo terms in
/// (peer, slot, incidence) order — identical across blocking, bulk and
/// stream schedules.
void mean_aggregate_halo_fold(const HaloIncidence& inc,
                              std::span<const NodeId> slots,
                              std::span<const float> rows, std::int64_t d,
                              Matrix& out);

/// Phase 2b: the mean normalization, applied once every fold landed:
/// out[v,:] *= inv_deg[v], with inv_deg == 0 rows forced to zero (the
/// convention mean_aggregate established for isolated destinations).
void mean_aggregate_finish(std::span<const float> inv_deg, Matrix& out);

/// Halo half of the backward scatter: dhalo[u - n_lo,:] += w * dout[v,:]
/// for sources u >= n_lo. dhalo must be pre-sized to (n_src - n_lo, d).
void mean_aggregate_backward_halo(const BipartiteCsr& adj, const Matrix& dout,
                                  std::span<const float> inv_deg, NodeId n_lo,
                                  Matrix& dhalo);

/// Inner half of the backward scatter: dinner[u,:] += w * dout[v,:] for
/// sources u < n_lo. dinner must be pre-sized to (n_lo, d).
void mean_aggregate_backward_inner(const BipartiteCsr& adj, const Matrix& dout,
                                   std::span<const float> inv_deg, NodeId n_lo,
                                   Matrix& dinner);

/// Checked-build monitor of the split-phase protocol documented on Layer
/// below. Each phased layer owns one and reports its phase entries; in
/// release builds every method is an early return the optimizer deletes.
/// Beyond the begin→chunk/fold→finish→backward ordering it also enforces
/// the chunk contract: disjoint ascending ranges covering exactly
/// [0, n_dst) by finish time. forward_inner_begin is accepted from the
/// post-finish state because a fused backward() (layer 0 of the backward
/// pipeline) never reports to the machine.
class PhaseChecker {
 public:
  void on_forward_begin(NodeId n_dst) {
    if constexpr (!kCheckedBuild) return;
    BNSGCN_REQUIRE(state_ == State::kIdle || state_ == State::kFwdDone,
                   "forward_inner_begin out of order");
    BNSGCN_REQUIRE(n_dst >= 0, "negative destination count");
    state_ = State::kFwdInner;
    n_dst_ = n_dst;
    next_row_ = 0;
  }
  void on_forward_chunk([[maybe_unused]] NodeId row0, NodeId row1) {
    if constexpr (!kCheckedBuild) return;
    BNSGCN_REQUIRE(state_ == State::kFwdInner || state_ == State::kFwdHalo,
                   "forward_inner_chunk outside the forward window");
    BNSGCN_REQUIRE(row0 == next_row_,
                   "chunks must cover [0, n_dst) in ascending contiguous "
                   "ranges");
    BNSGCN_REQUIRE(row0 <= row1 && row1 <= n_dst_, "chunk range out of range");
    next_row_ = row1;
  }
  void on_halo_begin() {
    if constexpr (!kCheckedBuild) return;
    BNSGCN_REQUIRE(state_ == State::kFwdInner,
                   "forward_halo_begin must follow forward_inner_begin, once");
    state_ = State::kFwdHalo;
  }
  void on_halo_fold() {
    if constexpr (!kCheckedBuild) return;
    BNSGCN_REQUIRE(state_ == State::kFwdHalo,
                   "forward_halo_fold before forward_halo_begin");
  }
  void on_halo_finish() {
    if constexpr (!kCheckedBuild) return;
    BNSGCN_REQUIRE(state_ == State::kFwdHalo,
                   "forward_halo_finish before forward_halo_begin");
    BNSGCN_REQUIRE(next_row_ == n_dst_,
                   "forward_halo_finish before the chunks covered [0, n_dst)");
    state_ = State::kFwdDone;
  }
  void on_backward_halo() {
    if constexpr (!kCheckedBuild) return;
    BNSGCN_REQUIRE(state_ == State::kFwdDone,
                   "backward_halo without a completed phased forward");
    state_ = State::kBwdHalo;
  }
  void on_backward_inner() {
    if constexpr (!kCheckedBuild) return;
    BNSGCN_REQUIRE(state_ == State::kBwdHalo,
                   "backward_inner must follow backward_halo");
    state_ = State::kBwdInner;
  }
  void on_backward_params() {
    if constexpr (!kCheckedBuild) return;
    BNSGCN_REQUIRE(state_ == State::kBwdInner,
                   "backward_params must settle a backward_inner exactly once");
    state_ = State::kIdle;
  }

 private:
  enum class State { kIdle, kFwdInner, kFwdHalo, kFwdDone, kBwdHalo, kBwdInner };
  State state_ = State::kIdle;
  NodeId n_dst_ = 0;
  NodeId next_row_ = 0;
};

/// A GCN layer with manual forward/backward. One instance per rank (weights
/// are replicated and kept in sync by gradient allreduce).
class Layer {
 public:
  virtual ~Layer() = default;

  /// feats: (n_src, d_in) — inner rows first, then halo rows.
  /// Returns (n_dst, d_out). Caches whatever backward needs.
  virtual Matrix forward(const BipartiteCsr& adj, const Matrix& feats,
                         std::span<const float> inv_deg, bool training) = 0;

  /// dout: (n_dst, d_out). Returns dfeats (n_src, d_in); accumulates
  /// parameter gradients internally.
  virtual Matrix backward(const BipartiteCsr& adj, const Matrix& dout,
                          std::span<const float> inv_deg) = 0;

  // --- Split-phase protocol (communication–computation overlap) ----------
  // A layer returning true from supports_phased() implements the phase
  // methods below. The forward is split into F1 (halo-independent compute,
  // driven in destination-row chunks) plus an *incremental* halo fold: the
  // trainer calls forward_inner_begin and forward_halo_begin once, then
  // alternates forward_inner_chunk with forward_halo_fold — folds in
  // fixed peer order, in every schedule — and forward_halo_finish when
  // every chunk ran and every peer folded. A fold may land before, between
  // or after any F1 chunk: implementations must keep the fold target
  // disjoint from the chunk target (SAGE accumulates halo sums in a
  // separate buffer combined at finish; GAT's halo rows are naturally
  // disjoint from its inner rows), so the result is a pure function of
  // (chunk partition of [0, n_dst)) ∪ (peer fold order) — and since chunks
  // are row-independent and the peer order is pinned, bit-identical for
  // every chunk size and every schedule. Streaming mode feeds slabs the
  // moment they land (buffering out-of-order arrivals until their turn),
  // bulk/blocking feed them after a wait_all. backward_halo +
  // backward_inner + backward_params split backward: the halo-feature
  // gradients come out first (they must hit the wire), the inner-gradient
  // block second (it can be computed while the remote contributions
  // travel), and the parameter gradients last — nothing reads them before
  // the epoch-end allreduce, so the trainer defers backward_params(l)
  // into layer l−1's exchange window (the cross-layer backward pipeline);
  // the backward fold (scatter-add of peer contributions) lives in the
  // trainer and follows the same fixed-peer-order rule.

  [[nodiscard]] virtual bool supports_phased() const { return false; }

  /// Phase F1 setup: cache the locally-owned source block ((n_dst, d_in) —
  /// inner sources of the trainer layout) and size the partial state. No
  /// per-row work happens here; the chunks do it. `inner_feats` must stay
  /// valid until the last forward_inner_chunk returns (implementations
  /// may keep a reference instead of copying).
  virtual void forward_inner_begin(const BipartiteCsr& adj,
                                   const Matrix& inner_feats, bool training);

  /// Phase F1 chunk: run the halo-independent compute for destination rows
  /// [row0, row1). The trainer covers [0, n_dst) with disjoint ascending
  /// ranges; between chunks it may poll the completion set and fold peers.
  /// Row-independent by contract, so the chunking never changes results.
  virtual void forward_inner_chunk(const BipartiteCsr& adj, NodeId row0,
                                   NodeId row1);


  /// Phase F2a: receive the epoch's halo fold state. `inc` is the
  /// slot→dst reverse incidence of `adj`, built by the caller once per
  /// epoch (every layer of an epoch shares one compacted adjacency) and
  /// kept alive until the epoch's last fold. Called once per layer
  /// forward, after forward_inner and before the first fold; part of the
  /// in-flight compute window.
  virtual void forward_halo_begin(const BipartiteCsr& adj,
                                  const HaloIncidence& inc);

  /// Phase F2b: fold one peer's halo slab — rows.size() == slots.size() *
  /// d_in, row t is halo slot slots[t], already 1/p-scaled by the caller.
  /// Must be called in ascending peer order (deterministic reduction).
  virtual void forward_halo_fold(const BipartiteCsr& adj,
                                 std::span<const NodeId> slots,
                                 std::span<const float> rows);

  /// Phase F2c: every peer folded — finish the layer ((n_dst, d_out)).
  [[nodiscard]] virtual Matrix forward_halo_finish(
      const BipartiteCsr& adj, std::span<const float> inv_deg);

  /// Phase B1: parameter gradients plus the halo-source input gradients
  /// ((n_src - n_dst, d_in)) — everything the backward exchange sends.
  [[nodiscard]] virtual Matrix backward_halo(const BipartiteCsr& adj,
                                             const Matrix& dout,
                                             std::span<const float> inv_deg);

  /// Phase B2: the inner-source input gradients ((n_dst, d_in)), computed
  /// from state cached by backward_halo. Must not touch the parameter
  /// gradients — those belong to backward_params.
  [[nodiscard]] virtual Matrix backward_inner(const BipartiteCsr& adj,
                                              std::span<const float> inv_deg);

  /// Phase B3: accumulate the parameter gradients (dW, db, …) from state
  /// cached by backward_halo/backward_inner. Called exactly once per
  /// backward, but possibly *late*: the trainer defers layer l's call into
  /// layer l−1's exchange window (and runs the last one after layer 0's
  /// backward), always before the gradient allreduce. Cached state must
  /// therefore survive until the next forward. Default is a no-op so a
  /// custom phased layer may keep computing its parameter gradients inside
  /// backward_inner and simply not split.
  virtual void backward_params(const BipartiteCsr& adj);

  [[nodiscard]] virtual std::vector<Matrix*> params() = 0;
  [[nodiscard]] virtual std::vector<Matrix*> grads() = 0;
  void zero_grads();

  /// Serving mode (docs/ARCHITECTURE.md §10): forward-only execution. The
  /// forward fp instruction stream is unchanged — outputs stay bit-identical
  /// to a training=false forward — but the layer skips the pure-backward
  /// caches (activation masks, the concat/feature caches backward_params
  /// reads) and releases its gradient buffers. One-way in practice: after
  /// switching, backward() must not be called until the next training
  /// forward rebuilds the caches.
  void set_inference(bool on) {
    inference_ = on;
    if (on) release_training_state();
  }
  [[nodiscard]] bool inference_mode() const { return inference_; }

  [[nodiscard]] std::int64_t d_in() const { return d_in_; }
  [[nodiscard]] std::int64_t d_out() const { return d_out_; }

  /// Total parameter count (for the allreduce buffer).
  [[nodiscard]] std::int64_t num_params();

 protected:
  Layer(std::int64_t d_in, std::int64_t d_out) : d_in_(d_in), d_out_(d_out) {}
  /// Free backward-only state (gradients, masks, backward caches) on entry
  /// to inference mode. Must not touch anything the forward reads.
  virtual void release_training_state() {}
  std::int64_t d_in_;
  std::int64_t d_out_;
  bool inference_ = false;
  /// Phased implementations report each phase entry here (checked builds
  /// verify the protocol; release builds compile the calls away).
  PhaseChecker phase_check_;
};

/// Flatten all gradients of a layer stack into one buffer (the paper's
/// single AllReduce per iteration) and scatter a buffer back into weights.
[[nodiscard]] std::vector<float> flatten_grads(
    const std::vector<std::unique_ptr<Layer>>& layers);
void apply_flat_grads(std::span<const float> flat,
                      const std::vector<std::unique_ptr<Layer>>& layers);

} // namespace bnsgcn::nn
