// Serving path (docs/ARCHITECTURE.md §10): train once per config, snapshot
// the weights, then answer a fixed 64-query stream through the forward-only
// engine, swept over partition counts x batch sizes x transports. Batching
// is the first-order lever: one full-graph forward answers a whole batch,
// so per-batch latency is nearly flat in batch size and QPS grows ~linearly
// with it.
//
// Enforced gates (nonzero exit on violation, '!!'-marked):
//  - batching pays: at >= 4 partitions, batch=32 serves at >= 2x the QPS
//    of batch=1 on the same config (the ISSUE's acceptance bar);
//  - transports agree: when --transport names a socket backend, its
//    queries, predictions and logits are bit-identical to the mailbox
//    serve of the same config;
//  - every sweep point answers the full 64-query stream.
// Every row lands in the JSON artifact with its RunConfig + ServeConfig,
// so any point replays from the artifact alone via api::serve.

#include "common.hpp"

#include <bit>
#include <cstdint>
#include <vector>

#include "api/serve.hpp"

namespace {

using namespace bnsgcn;

int g_failures = 0;

void require(bool ok, const char* what) {
  if (!ok) {
    std::printf("  !! %s\n", what);
    ++g_failures;
  }
}

bool logits_equal(const std::vector<float>& a, const std::vector<float>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint32_t>(a[i]) != std::bit_cast<std::uint32_t>(b[i]))
      return false;
  }
  return true;
}

SyntheticSpec serve_spec(double scale) {
  SyntheticSpec spec;
  spec.name = "serve-bench";
  spec.n = static_cast<NodeId>(3000 * scale);
  spec.m = static_cast<EdgeId>(30000 * scale);
  spec.communities = 8;
  spec.num_classes = 8;
  spec.feat_dim = 64;
  spec.p_intra = 0.88;
  spec.feature_noise = 1.0;
  spec.seed = 20260807;
  return spec;
}

api::RunConfig base_config(const SyntheticSpec& spec) {
  api::RunConfig cfg;
  cfg.method = api::Method::kBns;
  cfg.dataset.custom = spec; // replay-self-contained rows
  cfg.trainer.num_layers = 2;
  cfg.trainer.hidden = 16;
  cfg.trainer.epochs = 6;
  cfg.trainer.eval_every = 0;
  cfg.trainer.seed = 17;
  cfg.trainer.sample_rate = 1.0f;
  cfg.comm.overlap = core::OverlapMode::kStream;
  cfg.comm.cache_mb = 4; // serving regime: identical boundary rows per batch
  return cfg;
}

} // namespace

int main(int argc, char** argv) {
  using namespace bnsgcn;
  const auto opts = api::parse_bench_args(argc, argv);
  bench::print_banner("Serve",
                      "forward-only serving: p50/p99 latency and QPS across "
                      "partitions x batch sizes x transports");

  const SyntheticSpec spec = serve_spec(opts.scale);
  const Dataset ds = make_synthetic(spec);
  std::printf("graph: n=%d avg_deg=%.1f feat_dim=%lld hidden=16  "
              "(64 queries per sweep point)\n",
              ds.num_nodes(), ds.graph.average_degree(),
              static_cast<long long>(ds.feat_dim()));

  api::RunConfig base = base_config(spec);
  base.trainer.epochs = opts.epochs_or(6);
  base.trainer.threads = opts.threads;

  const std::vector<int> parts =
      opts.parts.empty() ? std::vector<int>{2, 4, 8} : opts.parts;
  const int kBatches[] = {1, 8, 32};
  constexpr int kTotalQueries = 64;

  json::Value rows = json::Value::array();
  const auto record = [&](const std::string& label, const api::RunConfig& cfg,
                          const api::ServeConfig& scfg,
                          const api::ServeReport& report) {
    json::Value row = json::Value::object();
    row.set("label", label);
    row.set("config", api::to_json(cfg));
    row.set("serve_config", api::to_json(scfg));
    row.set("report", api::to_json(report));
    rows.push_back(std::move(row));
  };

  std::printf("\n%-28s %10s %10s %10s %9s %9s\n", "config", "p50 ms",
              "p99 ms", "qps", "comm ms", "hit rate");

  for (const int m : parts) {
    base.partition.nparts = m;
    api::PartitionSpec pspec = base.partition;
    const auto part = api::cached_partition(ds.graph, pspec);

    double qps_b1 = 0.0, qps_b32 = 0.0;
    for (const int batch : kBatches) {
      api::ServeConfig scfg;
      scfg.batch_size = batch;
      scfg.num_batches = kTotalQueries / batch;
      scfg.seed = 2026;
      scfg.record_logits = true;

      auto cfg = base;
      cfg.comm.transport = comm::TransportKind::kMailbox;
      const std::string name = bench::label("m=%d batch=%d", m, batch);
      const api::ServeReport mbox = api::serve(ds, *part, cfg, scfg);
      record(name + " mailbox", cfg, scfg, mbox);
      require(mbox.total_queries() == kTotalQueries,
              "sweep point dropped queries");
      if (batch == 1) qps_b1 = mbox.qps();
      if (batch == 32) qps_b32 = mbox.qps();

      // Mean per-batch exchange time: simulated (cost model) on the
      // mailbox, measured on sockets — printed as-is, not as a share of
      // wall time, since simulated and wall clocks are incommensurate.
      double comm = 0.0;
      for (const auto& b : mbox.batches) comm += b.comm_s;
      const double comm_ms =
          mbox.batches.empty()
              ? 0.0
              : 1e3 * comm / static_cast<double>(mbox.batches.size());
      std::printf("%-28s %10.3f %10.3f %10.1f %9.3f %8.1f%%\n",
                  (name + " mailbox").c_str(), 1e3 * mbox.p50_latency_s(),
                  1e3 * mbox.p99_latency_s(), mbox.qps(), comm_ms,
                  100.0 * mbox.cache_hit_rate());

      if (opts.transport != comm::TransportKind::kMailbox) {
        cfg.comm.transport = opts.transport;
        const api::ServeReport sock = api::serve(ds, *part, cfg, scfg);
        record(name + " socket", cfg, scfg, sock);
        // Gate: the serving fabric is invisible to the answers.
        require(sock.queries == mbox.queries,
                "socket serve answered different queries than mailbox");
        require(sock.predictions == mbox.predictions,
                "socket predictions diverge from mailbox");
        require(logits_equal(sock.logits, mbox.logits),
                "socket logits diverge bitwise from mailbox");
        std::printf("%-28s %10.3f %10.3f %10.1f %9s %8.1f%%\n",
                    (name + " socket").c_str(), 1e3 * sock.p50_latency_s(),
                    1e3 * sock.p99_latency_s(), sock.qps(), "-",
                    100.0 * sock.cache_hit_rate());
      }
    }

    // Gate: the batching lever actually pays once the graph is spread
    // wide enough that per-batch fixed costs (halo exchange, barriers)
    // dominate a single-query forward.
    if (m >= 4)
      require(qps_b32 >= 2.0 * qps_b1,
              "batch=32 did not reach 2x the QPS of batch=1");
    std::printf("m=%-3d batching speedup: qps(b=32)/qps(b=1) = %.1fx\n", m,
                qps_b1 > 0.0 ? qps_b32 / qps_b1 : 0.0);
  }

  if (!opts.json_path.empty()) {
    json::Value doc = json::Value::object();
    doc.set("artifact", "Serve");
    doc.set("scale", opts.scale);
    doc.set("runs", std::move(rows));
    json::write_file(opts.json_path, doc);
    std::printf("\nwrote JSON artifact: %s\n", opts.json_path.c_str());
  }

  if (g_failures > 0) {
    std::printf("\n%d gate(s) failed\n", g_failures);
    return 1;
  }
  std::printf("\nall gates passed\n");
  return 0;
}
