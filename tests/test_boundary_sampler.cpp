#include <gtest/gtest.h>

#include <thread>

#include "common/check.hpp"
#include "core/boundary_sampler.hpp"
#include "graph/generators.hpp"
#include "nn/layer.hpp"

namespace bnsgcn {
namespace {

using core::BoundarySampler;
using core::build_local_graphs;
using core::EpochPlan;
using core::SamplingVariant;

std::vector<core::LocalGraph> two_part_graph(NodeId n, EdgeId m,
                                             std::uint64_t seed,
                                             Partitioning* part_out) {
  Rng rng(seed);
  const Csr g = gen::erdos_renyi(n, m, rng);
  auto part = random_partition(n, 2, rng);
  auto lgs = build_local_graphs(g, part);
  if (part_out != nullptr) *part_out = std::move(part);
  return lgs;
}

/// Run one sampler per rank concurrently; returns each rank's plan.
std::vector<EpochPlan> sample_together(
    std::vector<BoundarySampler>& samplers, comm::Fabric& fabric, int tag) {
  std::vector<EpochPlan> plans(samplers.size());
  std::vector<std::thread> threads;
  for (std::size_t r = 0; r < samplers.size(); ++r) {
    threads.emplace_back([&, r] {
      plans[r] = samplers[r].sample_epoch(
          fabric.endpoint(static_cast<PartId>(r)), tag);
    });
  }
  for (auto& t : threads) t.join();
  return plans;
}

TEST(BoundarySampler, FullPlanMatchesLocalGraph) {
  const auto lgs = two_part_graph(300, 2000, 1, nullptr);
  BoundarySampler s(lgs[0], {.variant = SamplingVariant::kBns, .rate = 1.0f});
  const EpochPlan plan = s.full_plan();
  EXPECT_EQ(plan.n_kept_halo, lgs[0].n_halo());
  EXPECT_EQ(plan.adj.num_edges(), lgs[0].adj.num_edges());
  EXPECT_EQ(plan.send_rows, lgs[0].send_sets);
  EXPECT_FLOAT_EQ(plan.halo_scale, 1.0f);
  EXPECT_EQ(plan.dropped_edges, 0);
}

TEST(BoundarySampler, OutOfRangeRateIsRejectedBeforePlannerConstruction) {
  // Regression: the delegating constructor used to build the planner from
  // opts.rate *before* the range check ran, so an invalid rate reached
  // make_planner (whose 1/rate scaling assumes [0, 1]). The check must
  // fire first — construction throws and no planner ever sees the value.
  const auto lgs = two_part_graph(200, 1200, 9, nullptr);
  using Options = BoundarySampler::Options;
  EXPECT_THROW(
      BoundarySampler(lgs[0],
                      Options{.variant = SamplingVariant::kBns, .rate = 1.5f}),
      CheckError);
  EXPECT_THROW(
      BoundarySampler(lgs[0], Options{.variant = SamplingVariant::kBns,
                                      .rate = -0.25f}),
      CheckError);
  // Boundary values of the valid range still construct.
  EXPECT_NO_THROW(BoundarySampler(
      lgs[0], Options{.variant = SamplingVariant::kBns, .rate = 0.0f}));
  EXPECT_NO_THROW(BoundarySampler(
      lgs[0], Options{.variant = SamplingVariant::kBns, .rate = 1.0f}));
}

TEST(BoundarySampler, EmptyPlanDropsEverything) {
  const auto lgs = two_part_graph(300, 2000, 2, nullptr);
  BoundarySampler s(lgs[0], {.variant = SamplingVariant::kBns, .rate = 0.0f});
  const EpochPlan plan = s.empty_plan();
  EXPECT_EQ(plan.n_kept_halo, 0);
  for (const auto& rows : plan.recv_slots) EXPECT_TRUE(rows.empty());
  // Only inner-inner edges survive.
  for (const NodeId u : plan.adj.nbrs) EXPECT_LT(u, lgs[0].n_inner());
}

TEST(BoundarySampler, NegotiatedPlansAreConsistent) {
  const auto lgs = two_part_graph(600, 5000, 3, nullptr);
  comm::Fabric fabric(2);
  std::vector<BoundarySampler> samplers;
  samplers.emplace_back(
      lgs[0], BoundarySampler::Options{.variant = SamplingVariant::kBns,
                                       .rate = 0.3f,
                                       .seed = 10});
  samplers.emplace_back(
      lgs[1], BoundarySampler::Options{.variant = SamplingVariant::kBns,
                                       .rate = 0.3f,
                                       .seed = 11});
  for (int epoch = 0; epoch < 5; ++epoch) {
    const auto plans = sample_together(samplers, fabric, epoch);
    // What 0 sends to 1 must match what 1 expects from 0 (and vice versa).
    EXPECT_EQ(plans[0].send_rows[1].size(), plans[1].recv_slots[0].size());
    EXPECT_EQ(plans[1].send_rows[0].size(), plans[0].recv_slots[1].size());
    for (const auto& plan : plans) {
      plan.adj.validate();
      EXPECT_EQ(plan.adj.n_src,
                plan.adj.n_dst + plan.n_kept_halo);
      EXPECT_NEAR(plan.halo_scale, 1.0f / 0.3f, 1e-5f);
    }
  }
}

TEST(BoundarySampler, KeptFractionApproachesP) {
  const auto lgs = two_part_graph(2000, 30000, 4, nullptr);
  comm::Fabric fabric(2);
  const float p = 0.25f;
  std::vector<BoundarySampler> samplers;
  for (PartId r = 0; r < 2; ++r)
    samplers.emplace_back(
        lgs[static_cast<std::size_t>(r)],
        BoundarySampler::Options{.variant = SamplingVariant::kBns,
                                 .rate = p,
                                 .seed = 20ull + static_cast<std::uint64_t>(r)});
  double kept = 0.0, total = 0.0;
  for (int epoch = 0; epoch < 20; ++epoch) {
    const auto plans = sample_together(samplers, fabric, epoch);
    for (std::size_t r = 0; r < 2; ++r) {
      kept += plans[r].n_kept_halo;
      total += lgs[r].n_halo();
    }
  }
  EXPECT_NEAR(kept / total, p, 0.02);
}

TEST(BoundarySampler, SampleVariesAcrossEpochs) {
  const auto lgs = two_part_graph(500, 4000, 5, nullptr);
  comm::Fabric fabric(2);
  std::vector<BoundarySampler> samplers;
  for (PartId r = 0; r < 2; ++r)
    samplers.emplace_back(
        lgs[static_cast<std::size_t>(r)],
        BoundarySampler::Options{.variant = SamplingVariant::kBns,
                                 .rate = 0.5f,
                                 .seed = 30ull + static_cast<std::uint64_t>(r)});
  const auto p1 = sample_together(samplers, fabric, 0);
  const auto p2 = sample_together(samplers, fabric, 1);
  // Random selection changes from epoch to epoch (Section 3.2).
  EXPECT_NE(p1[0].recv_slots, p2[0].recv_slots);
}

TEST(BoundarySampler, BesKeepsHaloNodesWithAnyKeptEdge) {
  const auto lgs = two_part_graph(500, 6000, 6, nullptr);
  comm::Fabric fabric(2);
  std::vector<BoundarySampler> samplers;
  for (PartId r = 0; r < 2; ++r)
    samplers.emplace_back(
        lgs[static_cast<std::size_t>(r)],
        BoundarySampler::Options{.variant = SamplingVariant::kBoundaryEdge,
                                 .rate = 0.5f,
                                 .seed = 40ull + static_cast<std::uint64_t>(r)});
  const auto plans = sample_together(samplers, fabric, 0);
  for (std::size_t r = 0; r < 2; ++r) {
    const auto& plan = plans[r];
    EXPECT_GT(plan.dropped_edges, 0);
    // Edge weights on surviving boundary edges are 1/q; inner edges are 1.
    ASSERT_FALSE(plan.adj.edge_scale.empty());
    const NodeId n_in = lgs[r].n_inner();
    for (std::size_t e = 0; e < plan.adj.nbrs.size(); ++e) {
      if (plan.adj.nbrs[e] < n_in) {
        EXPECT_FLOAT_EQ(plan.adj.edge_scale[e], 1.0f);
      } else {
        EXPECT_NEAR(plan.adj.edge_scale[e], 2.0f, 1e-5f);
      }
    }
    // Every kept halo slot has at least one incident edge.
    std::vector<int> incident(static_cast<std::size_t>(plan.n_kept_halo), 0);
    for (const NodeId u : plan.adj.nbrs)
      if (u >= n_in) ++incident[static_cast<std::size_t>(u - n_in)];
    for (const int c : incident) EXPECT_GT(c, 0);
  }
}

TEST(BoundarySampler, BesDropsFewerHaloNodesThanBnsAtMatchedEdgeDrop) {
  // The Table 9 mechanism: dropping boundary *edges* barely shrinks the
  // boundary *node* set, because several edges share one boundary node.
  const auto lgs = two_part_graph(1500, 30000, 7, nullptr);
  comm::Fabric fabric(2);
  const float q = 0.5f;
  std::vector<BoundarySampler> bes, bns;
  for (PartId r = 0; r < 2; ++r) {
    bes.emplace_back(
        lgs[static_cast<std::size_t>(r)],
        BoundarySampler::Options{.variant = SamplingVariant::kBoundaryEdge,
                                 .rate = q,
                                 .seed = 50ull + static_cast<std::uint64_t>(r)});
    bns.emplace_back(
        lgs[static_cast<std::size_t>(r)],
        BoundarySampler::Options{.variant = SamplingVariant::kBns,
                                 .rate = q,
                                 .seed = 60ull + static_cast<std::uint64_t>(r)});
  }
  const auto plans_bes = sample_together(bes, fabric, 0);
  const auto plans_bns = sample_together(bns, fabric, 1);
  // At the same rate, BES keeps far more boundary nodes than BNS keeps.
  EXPECT_GT(plans_bes[0].n_kept_halo,
            static_cast<NodeId>(1.3 * plans_bns[0].n_kept_halo));
}

TEST(BoundarySampler, DropEdgeScalesAllEdges) {
  const auto lgs = two_part_graph(400, 4000, 8, nullptr);
  comm::Fabric fabric(2);
  std::vector<BoundarySampler> samplers;
  for (PartId r = 0; r < 2; ++r)
    samplers.emplace_back(
        lgs[static_cast<std::size_t>(r)],
        BoundarySampler::Options{.variant = SamplingVariant::kDropEdge,
                                 .rate = 0.8f,
                                 .seed = 70ull + static_cast<std::uint64_t>(r)});
  const auto plans = sample_together(samplers, fabric, 0);
  for (const auto& plan : plans) {
    ASSERT_FALSE(plan.adj.edge_scale.empty());
    for (const float w : plan.adj.edge_scale)
      EXPECT_NEAR(w, 1.25f, 1e-5f);
    EXPECT_GT(plan.dropped_edges, 0);
  }
}

TEST(BoundarySampler, UnbiasedAggregationEstimate) {
  // E[ẑ] == z under BNS with 1/p feature scaling: simulate the two-rank
  // exchange directly and average many epochs.
  Partitioning part;
  Rng rng(99);
  const Csr g = gen::erdos_renyi(200, 1200, rng);
  part = random_partition(g.n, 2, rng);
  const auto lgs = build_local_graphs(g, part);
  Matrix x(g.n, 3);
  x.randomize_gaussian(rng, 1.0f);

  // Exact aggregation for rank 0's inner nodes.
  const auto& lg = lgs[0];
  Matrix x_src_full(lg.adj.n_src, 3);
  for (NodeId i = 0; i < lg.n_inner(); ++i)
    for (int c = 0; c < 3; ++c)
      x_src_full.at(i, c) =
          x.at(lg.inner_global[static_cast<std::size_t>(i)], c);
  for (NodeId h = 0; h < lg.n_halo(); ++h)
    for (int c = 0; c < 3; ++c)
      x_src_full.at(lg.n_inner() + h, c) =
          x.at(lg.halo_global[static_cast<std::size_t>(h)], c);
  Matrix z_exact;
  nn::mean_aggregate(lg.adj, x_src_full, lg.inv_full_degree, z_exact);

  const float p = 0.4f;
  comm::Fabric fabric(2);
  std::vector<BoundarySampler> samplers;
  for (PartId r = 0; r < 2; ++r)
    samplers.emplace_back(
        lgs[static_cast<std::size_t>(r)],
        BoundarySampler::Options{.variant = SamplingVariant::kBns,
                                 .rate = p,
                                 .seed = 80ull + static_cast<std::uint64_t>(r)});

  Matrix z_mean(z_exact.rows(), z_exact.cols());
  constexpr int kTrials = 3000;
  for (int t = 0; t < kTrials; ++t) {
    const auto plans = sample_together(samplers, fabric, t);
    const auto& plan = plans[0];
    Matrix feats(lg.n_inner() + plan.n_kept_halo, 3);
    for (NodeId i = 0; i < lg.n_inner(); ++i)
      for (int c = 0; c < 3; ++c) feats.at(i, c) = x_src_full.at(i, c);
    // Fill kept halo slots (scaled by 1/p), reading "remote" features
    // directly — the fabric payload path is exercised by the trainer tests.
    for (NodeId slot = 0; slot < plan.n_kept_halo; ++slot) {
      const NodeId halo_idx =
          plan.kept_halo_idx[static_cast<std::size_t>(slot)];
      for (int c = 0; c < 3; ++c)
        feats.at(lg.n_inner() + slot, c) =
            plan.halo_scale *
            x.at(lg.halo_global[static_cast<std::size_t>(halo_idx)], c);
    }
    Matrix z_hat;
    nn::mean_aggregate(plan.adj, feats, lg.inv_full_degree, z_hat);
    for (std::int64_t i = 0; i < z_hat.size(); ++i)
      z_mean.data()[i] += z_hat.data()[i] / kTrials;
  }
  // Mean over trials approaches the exact aggregation (CLT tolerance).
  double max_err = 0.0;
  for (std::int64_t i = 0; i < z_exact.size(); ++i)
    max_err = std::max(max_err,
                       std::abs(static_cast<double>(z_mean.data()[i]) -
                                z_exact.data()[i]));
  EXPECT_LT(max_err, 0.12);
}

} // namespace
} // namespace bnsgcn
