// Fixture: raw clock reads outside common/stopwatch.
#include <chrono>

namespace fixture {

double now_s() {
  const auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

double wall_s() {
  // lint: allow(raw-clock) — logging timestamp, never feeds numeric state.
  const auto t = std::chrono::system_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

} // namespace fixture
