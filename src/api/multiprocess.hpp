#pragma once

#include <functional>
#include <string>

#include "api/run.hpp"

namespace bnsgcn::api {

/// One rank's body under the forked runtime: runs against that rank's
/// socket fabric and returns the JSON payload to ship back to the parent
/// (only rank 0's return value is read; other ranks return an empty
/// string). Everything the body captures was built before the fork and is
/// inherited copy-on-write.
using RankPayloadFn = std::function<std::string(comm::Fabric&, PartId)>;

/// Shared fork/pipe scaffolding of the multi-process runtimes (training
/// and serving): bootstrap a socket group, fork one process per rank, run
/// `rank_fn` in each child over its fabric, stream rank 0's payload back
/// over a pipe, reap every child and name the failed ranks. The parent's
/// read loop is partial-read-safe (payloads routinely exceed PIPE_BUF) and
/// treats read errors other than EINTR as fatal — a failed read used to
/// masquerade as EOF and surface as a bogus "produced no report".
[[nodiscard]] std::string run_ranks_piped(comm::TransportKind kind,
                                          PartId nranks,
                                          const comm::CostModel& cost,
                                          const RankPayloadFn& rank_fn);

/// Multi-process BNS-GCN runtime: fork one OS process per partition, each
/// running the unchanged core::BnsTrainer rank loop over a socket fabric
/// (cfg.comm.transport selects UDS or TCP; see comm/process_group.hpp for
/// the bootstrap). The trainer — dataset, partitioning, local graphs — is
/// built before forking, so children inherit it copy-on-write and nothing
/// is serialized on the way in; rank 0 streams its aggregated RunReport
/// back over a pipe as JSON (doubles round-trip bit-exactly at %.17g).
///
/// Losses and byte counts are bit-identical to the in-process mailbox run
/// of the same config; comm/overlap/tail/reduce times are measured
/// wall-clock instead of simulated (EpochBreakdown::timing == kMeasured).
///
/// Throws if any rank exits nonzero (the failing rank's message goes to
/// stderr; peers unwind via the fabric's shutdown path rather than
/// hanging).
[[nodiscard]] RunReport run_multiprocess(const Dataset& ds,
                                         const Partitioning& part,
                                         const RunConfig& cfg);

} // namespace bnsgcn::api
