#include <gtest/gtest.h>

#include <vector>

#include "common/alias_table.hpp"
#include "common/check.hpp"

namespace bnsgcn {
namespace {

TEST(AliasTable, UniformWeights) {
  AliasTable table(std::vector<double>{1, 1, 1, 1});
  Rng rng(1);
  std::vector<int> counts(4, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) ++counts[static_cast<std::size_t>(table.sample(rng))];
  for (const int c : counts)
    EXPECT_NEAR(static_cast<double>(c) / kN, 0.25, 0.01);
}

TEST(AliasTable, SkewedWeights) {
  AliasTable table(std::vector<double>{8, 1, 1});
  Rng rng(2);
  std::vector<int> counts(3, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) ++counts[static_cast<std::size_t>(table.sample(rng))];
  EXPECT_NEAR(static_cast<double>(counts[0]) / kN, 0.8, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1]) / kN, 0.1, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / kN, 0.1, 0.01);
}

TEST(AliasTable, ZeroWeightNeverSampled) {
  AliasTable table(std::vector<double>{1, 0, 1});
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) EXPECT_NE(table.sample(rng), 1);
}

TEST(AliasTable, SingleElement) {
  AliasTable table(std::vector<double>{3.5});
  Rng rng(4);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table.sample(rng), 0);
}

TEST(AliasTable, NormalizedProbabilities) {
  AliasTable table(std::vector<double>{2, 3, 5});
  EXPECT_DOUBLE_EQ(table.probability(0), 0.2);
  EXPECT_DOUBLE_EQ(table.probability(1), 0.3);
  EXPECT_DOUBLE_EQ(table.probability(2), 0.5);
}

TEST(AliasTable, RejectsAllZero) {
  EXPECT_THROW(AliasTable(std::vector<double>{0, 0}), CheckError);
}

TEST(AliasTable, RejectsNegative) {
  EXPECT_THROW(AliasTable(std::vector<double>{1, -1}), CheckError);
}

TEST(AliasTable, LargeTableStatistics) {
  // Power-law weights: verify high-weight indices dominate proportionally.
  std::vector<double> w(1000);
  double total = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = 1.0 / static_cast<double>(i + 1);
    total += w[i];
  }
  AliasTable table(w);
  Rng rng(5);
  std::int64_t first = 0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i)
    if (table.sample(rng) == 0) ++first;
  EXPECT_NEAR(static_cast<double>(first) / kN, 1.0 / total, 0.01);
}

} // namespace
} // namespace bnsgcn
