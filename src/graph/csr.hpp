#pragma once

#include <span>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace bnsgcn {

/// Compressed sparse row adjacency. Undirected graphs are stored as two
/// directed arcs. Neighbor lists are sorted and de-duplicated by the builder.
struct Csr {
  NodeId n = 0;
  std::vector<EdgeId> offsets; // size n+1
  std::vector<NodeId> nbrs;    // size offsets[n]

  [[nodiscard]] EdgeId num_arcs() const {
    return offsets.empty() ? 0 : offsets.back();
  }

  [[nodiscard]] NodeId degree(NodeId v) const {
    return static_cast<NodeId>(offsets[static_cast<std::size_t>(v) + 1] -
                               offsets[static_cast<std::size_t>(v)]);
  }

  [[nodiscard]] std::span<const NodeId> neighbors(NodeId v) const {
    return {nbrs.data() + offsets[static_cast<std::size_t>(v)],
            static_cast<std::size_t>(degree(v))};
  }

  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

  [[nodiscard]] double average_degree() const {
    return n == 0 ? 0.0
                  : static_cast<double>(num_arcs()) / static_cast<double>(n);
  }

  /// Structural invariants: sorted unique neighbor lists, ids in range,
  /// monotone offsets. Used by tests and by the builder in debug paths.
  void validate() const;
};

/// Edge-list accumulator that finalizes into Csr. Duplicate edges and
/// (optionally) self loops are removed; the graph can be symmetrised.
class CooBuilder {
 public:
  explicit CooBuilder(NodeId n) : n_(n) { BNSGCN_CHECK(n >= 0); }

  void add_edge(NodeId u, NodeId v);
  void reserve(std::size_t edges) { edges_.reserve(edges); }

  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }
  [[nodiscard]] NodeId num_nodes() const { return n_; }

  struct Options {
    bool symmetrize = true;   // add the reverse arc of every edge
    bool drop_self_loops = true;
  };

  /// Sort + dedup + build. The builder is left empty afterwards.
  [[nodiscard]] Csr build(const Options& opts);
  [[nodiscard]] Csr build() { return build(Options{}); }

 private:
  NodeId n_;
  std::vector<std::pair<NodeId, NodeId>> edges_;
};

/// Induced subgraph over `nodes` (global ids, any order). Returns the local
/// CSR plus the local→global map implied by `nodes`'s ordering; `global_to
/// _local` gives the inverse (-1 for nodes outside the set).
struct InducedSubgraph {
  Csr adj;
  std::vector<NodeId> local_to_global;
};
[[nodiscard]] InducedSubgraph induced_subgraph(const Csr& g,
                                               std::span<const NodeId> nodes);

} // namespace bnsgcn
