#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace bnsgcn::core {

/// Outcome of one position of a cache step's request list.
enum class CacheAction : std::uint8_t {
  kHit = 0,        // receiver already holds the row: not sent
  kMissStore = 1,  // sent; the receiver stores (or refreshes) it
  kMissSend = 2,   // sent; not stored (no capacity, eviction not warranted)
};

/// One exchange's classification: per request position, whether the row
/// travels and where the receiver keeps it. `slot` is the store row for
/// kHit/kMissStore and -1 for kMissSend. hits + misses == positions.size().
struct CacheStep {
  std::vector<CacheAction> action;
  std::vector<NodeId> slot;
  std::int64_t hits = 0;
  std::int64_t misses = 0;
};

/// Frequency-ordered directory of which boundary rows the remote end of one
/// (peer, layer) channel already holds — the FGNN-style feature cache
/// applied to the halo exchange (docs/ARCHITECTURE.md §9).
///
/// The directory is a pure deterministic function of the step sequence:
/// sender and receiver feed it the identical structural-position lists the
/// sampler already negotiates (EpochPlan::send_pos / recv_pos), so both
/// sides agree on every hit/miss/eviction with ZERO extra control traffic.
/// Because steps happen at post time, the state is independent of arrival
/// order, thread count and overlap mode — the schedule-fuzz cache axis
/// pins exactly that.
///
/// Eviction: capacity-bounded, least-frequently-requested first (ties
/// broken by position; a tie never evicts, so a marginal newcomer cannot
/// thrash a resident row). Rows requested in the current step are pinned —
/// a slot being read this exchange is never reused by it.
class HaloCacheDir {
 public:
  explicit HaloCacheDir(NodeId capacity_rows = 0)
      : capacity_(capacity_rows > 0 ? capacity_rows : 0) {}

  /// Classify one exchange's request list (strictly increasing structural
  /// positions). `max_age` bounds staleness for cached rows: a row stored
  /// at epoch e hits through epoch e + max_age and is refreshed (resent
  /// and restored) after; max_age < 0 means values never go stale
  /// (layer-0 input features are epoch-invariant).
  [[nodiscard]] CacheStep step(std::span<const NodeId> positions, int epoch,
                               int max_age);

  [[nodiscard]] NodeId capacity() const { return capacity_; }
  [[nodiscard]] NodeId size() const {
    return static_cast<NodeId>(entries_.size());
  }

 private:
  struct Entry {
    NodeId slot = 0;
    int stored_epoch = 0;
    std::int64_t last_step = 0;  // pin against same-step eviction
  };

  NodeId capacity_ = 0;
  std::int64_t step_id_ = 0;
  // Ordered containers only: iteration order is part of the cross-rank
  // lockstep contract (the determinism lint's unordered-container rule
  // polices exactly this path).
  std::map<NodeId, Entry> entries_;      // cached position -> entry
  std::map<NodeId, std::int64_t> freq_;  // every requested position
  std::set<std::pair<std::int64_t, NodeId>> order_;  // (freq, pos), cached
};

} // namespace bnsgcn::core
