// Figure 6: peak memory reduction of BNS-GCN vs unsampled training (p=1),
// per Eq. 4 with the actually-sampled halo sizes.
// Expected shape: reduction grows with more partitions (bigger boundary
// share) and with smaller p; denser graphs save more (paper: up to 58% on
// Reddit at 8 parts, 27% on products at 10 parts).

#include "common.hpp"

namespace {

using namespace bnsgcn;

void run_dataset(const char* title, const Dataset& ds,
                 core::TrainerConfig cfg, const std::vector<PartId>& parts) {
  std::printf("\n--- %s ---\n", title);
  std::printf("%-8s", "parts");
  for (const float p : {0.5f, 0.1f, 0.01f}) std::printf("   p=%-6.2f", p);
  std::printf("  (memory reduction vs p=1)\n");
  cfg.epochs = 4;
  for (const PartId m : parts) {
    const auto part = metis_like(ds.graph, m);
    std::printf("%-8d", m);
    for (const float p : {0.5f, 0.1f, 0.01f}) {
      auto c = cfg;
      c.sample_rate = p;
      const auto r = core::BnsTrainer(ds, part, c).train();
      std::printf("   %7.1f%%", 100.0 * r.memory.reduction_vs_full());
    }
    std::printf("\n");
  }
}

} // namespace

int main() {
  using namespace bnsgcn;
  bench::print_banner("Figure 6", "memory usage reduction vs p (Eq. 4)");
  const double s = bench::bench_scale();
  {
    const Dataset ds = make_synthetic(reddit_like(0.5 * s));
    run_dataset("Reddit-like (dense)", ds, bench::reddit_config(), {2, 4, 8});
  }
  {
    const Dataset ds = make_synthetic(products_like(0.4 * s));
    run_dataset("ogbn-products-like (sparse)", ds, bench::products_config(),
                {5, 8, 10});
  }
  std::printf("\npaper shape check: reduction grows with #partitions; denser "
              "graph saves more.\n");
  return 0;
}
