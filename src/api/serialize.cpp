#include "api/serialize.hpp"

namespace bnsgcn::api {

json::Value to_json(const core::EpochBreakdown& e) {
  json::Value v = json::Value::object();
  v.set("compute_s", e.compute_s);
  v.set("comm_s", e.comm_s);
  v.set("reduce_s", e.reduce_s);
  v.set("sample_s", e.sample_s);
  v.set("swap_s", e.swap_s);
  v.set("overlap_s", e.overlap_s);
  v.set("comm_tail_s", e.comm_tail_s);
  v.set("feature_bytes", e.feature_bytes);
  v.set("grad_bytes", e.grad_bytes);
  v.set("control_bytes", e.control_bytes);
  // Written only when a halo cache ran (any counter nonzero); absent keeps
  // every pre-existing artifact byte-identical.
  if (e.cache_hit_rows != 0 || e.cache_miss_rows != 0 || e.bytes_saved != 0) {
    v.set("cache_hit_rows", e.cache_hit_rows);
    v.set("cache_miss_rows", e.cache_miss_rows);
    v.set("bytes_saved", e.bytes_saved);
  }
  // Written only for measured (socket-fabric) runs; absent means simulated,
  // which keeps every pre-existing artifact byte-identical.
  if (e.timing == comm::TimingSource::kMeasured)
    v.set("timing_source", "measured");
  return v;
}

core::EpochBreakdown breakdown_from_json(const json::Value& v) {
  core::EpochBreakdown e;
  e.compute_s = v.at("compute_s").as_double();
  e.comm_s = v.at("comm_s").as_double();
  e.reduce_s = v.at("reduce_s").as_double();
  e.sample_s = v.at("sample_s").as_double();
  e.swap_s = v.at("swap_s").as_double();
  // Absent in artifacts written before these fields existed.
  if (const auto* o = v.get("overlap_s")) e.overlap_s = o->as_double();
  if (const auto* t = v.get("comm_tail_s")) e.comm_tail_s = t->as_double();
  if (const auto* ts = v.get("timing_source")) {
    const std::string s = ts->as_string();
    BNSGCN_CHECK_MSG(s == "measured" || s == "simulated",
                     "unknown timing_source: " + s);
    e.timing = s == "measured" ? comm::TimingSource::kMeasured
                               : comm::TimingSource::kSimulated;
  }
  e.feature_bytes = v.at("feature_bytes").as_int64();
  e.grad_bytes = v.at("grad_bytes").as_int64();
  e.control_bytes = v.at("control_bytes").as_int64();
  // Absent in artifacts written before the halo cache (and in uncached
  // runs): the zero defaults stand.
  if (const auto* h = v.get("cache_hit_rows")) e.cache_hit_rows = h->as_int64();
  if (const auto* m = v.get("cache_miss_rows"))
    e.cache_miss_rows = m->as_int64();
  if (const auto* s = v.get("bytes_saved")) e.bytes_saved = s->as_int64();
  return e;
}

json::Value to_json(const core::EvalPoint& p) {
  json::Value v = json::Value::object();
  v.set("epoch", p.epoch);
  v.set("val", p.val);
  v.set("test", p.test);
  v.set("train_loss", p.train_loss);
  return v;
}

core::EvalPoint eval_point_from_json(const json::Value& v) {
  core::EvalPoint p;
  p.epoch = static_cast<int>(v.at("epoch").as_int64());
  p.val = v.at("val").as_double();
  p.test = v.at("test").as_double();
  p.train_loss = v.at("train_loss").as_double();
  return p;
}

json::Value to_json(const core::MemoryReport& m) {
  json::Value v = json::Value::object();
  json::Value model = json::Value::array();
  for (const double b : m.model_bytes) model.push_back(b);
  json::Value full = json::Value::array();
  for (const std::int64_t b : m.full_bytes) full.push_back(b);
  v.set("model_bytes", std::move(model));
  v.set("full_bytes", std::move(full));
  return v;
}

core::MemoryReport memory_from_json(const json::Value& v) {
  core::MemoryReport m;
  for (const auto& b : v.at("model_bytes").items())
    m.model_bytes.push_back(b.as_double());
  for (const auto& b : v.at("full_bytes").items())
    m.full_bytes.push_back(b.as_int64());
  return m;
}

json::Value to_json(const RunReport& r) {
  json::Value v = json::Value::object();
  v.set("method", r.method);
  v.set("dataset", r.dataset);
  json::Value loss = json::Value::array();
  for (const double l : r.train_loss) loss.push_back(l);
  v.set("train_loss", std::move(loss));
  json::Value curve = json::Value::array();
  for (const auto& p : r.curve) curve.push_back(to_json(p));
  v.set("curve", std::move(curve));
  v.set("final_val", r.final_val);
  v.set("final_test", r.final_test);
  json::Value epochs = json::Value::array();
  for (const auto& e : r.epochs) epochs.push_back(to_json(e));
  v.set("epochs", std::move(epochs));
  v.set("memory", to_json(r.memory));
  v.set("wall_time_s", r.wall_time_s);
  // Headline timing provenance (mirrors the per-epoch flags): written only
  // for measured runs so pre-existing artifacts stay byte-identical.
  if (!r.epochs.empty() &&
      r.epochs.front().timing == comm::TimingSource::kMeasured)
    v.set("timing_source", "measured");
  json::Value pc = json::Value::object();
  pc.set("hits", r.partition_cache.hits);
  pc.set("disk_hits", r.partition_cache.disk_hits);
  pc.set("misses", r.partition_cache.misses);
  pc.set("evictions", r.partition_cache.evictions);
  v.set("partition_cache", std::move(pc));
  // Derived headline numbers, for consumers that only want the summary.
  json::Value derived = json::Value::object();
  derived.set("throughput_eps", r.throughput_eps());
  derived.set("sampler_overhead", r.sampler_overhead());
  derived.set("epoch_time_s", r.epoch_time_s());
  derived.set("total_train_s", r.total_train_s());
  derived.set("overlap_saved_s", r.overlap_saved_s());
  derived.set("overlap_fraction", r.overlap_fraction());
  // Halo-cache headline, only when a cache ran (keeps old artifacts
  // byte-identical).
  if (r.cache_hit_rows() != 0 || r.cache_miss_rows() != 0) {
    derived.set("cache_hit_rows", r.cache_hit_rows());
    derived.set("cache_miss_rows", r.cache_miss_rows());
    derived.set("cache_bytes_saved", r.cache_bytes_saved());
    derived.set("cache_hit_rate", r.cache_hit_rate());
  }
  v.set("derived", std::move(derived));
  return v;
}

RunReport run_report_from_json(const json::Value& v) {
  RunReport r;
  r.method = v.at("method").as_string();
  r.dataset = v.at("dataset").as_string();
  for (const auto& l : v.at("train_loss").items())
    r.train_loss.push_back(l.as_double());
  for (const auto& p : v.at("curve").items())
    r.curve.push_back(eval_point_from_json(p));
  r.final_val = v.at("final_val").as_double();
  r.final_test = v.at("final_test").as_double();
  for (const auto& e : v.at("epochs").items())
    r.epochs.push_back(breakdown_from_json(e));
  r.memory = memory_from_json(v.at("memory"));
  r.wall_time_s = v.at("wall_time_s").as_double();
  // Absent in artifacts written before the partition cache existed.
  if (const auto* pc = v.get("partition_cache")) {
    r.partition_cache.hits = pc->at("hits").as_int64();
    r.partition_cache.disk_hits = pc->at("disk_hits").as_int64();
    r.partition_cache.misses = pc->at("misses").as_int64();
    r.partition_cache.evictions = pc->at("evictions").as_int64();
  }
  // "derived" is intentionally not read back: it is recomputed from the
  // stored fields by the accessors.
  return r;
}

std::string to_json_string(const RunReport& r, int indent) {
  return to_json(r).dump(indent);
}

RunReport run_report_from_json_string(std::string_view text) {
  return run_report_from_json(json::Value::parse(text));
}

// ---------------------------------------------------------------------------
// RunConfig (de)serialization. Enums travel as their canonical short
// strings; readers accept missing keys (C++ defaults apply) so configs
// written against an older schema, or hand-written minimal ones, load.
// ---------------------------------------------------------------------------

namespace {

const char* model_name(core::ModelKind m) {
  return m == core::ModelKind::kGat ? "gat" : "sage";
}

core::ModelKind model_from_name(const std::string& s) {
  if (s == "sage") return core::ModelKind::kSage;
  if (s == "gat") return core::ModelKind::kGat;
  BNSGCN_CHECK_MSG(false, "unknown model kind: " + s);
  return core::ModelKind::kSage;
}

const char* variant_name(core::SamplingVariant v) {
  switch (v) {
    case core::SamplingVariant::kBns: return "bns";
    case core::SamplingVariant::kBoundaryEdge: return "boundary-edge";
    case core::SamplingVariant::kDropEdge: return "drop-edge";
  }
  return "bns";
}

core::SamplingVariant variant_from_name(const std::string& s) {
  if (s == "bns") return core::SamplingVariant::kBns;
  if (s == "boundary-edge") return core::SamplingVariant::kBoundaryEdge;
  if (s == "drop-edge") return core::SamplingVariant::kDropEdge;
  BNSGCN_CHECK_MSG(false, "unknown sampling variant: " + s);
  return core::SamplingVariant::kBns;
}

const char* overlap_mode_name(core::OverlapMode m) {
  switch (m) {
    case core::OverlapMode::kBlocking: return "blocking";
    case core::OverlapMode::kBulk: return "bulk";
    case core::OverlapMode::kStream: return "stream";
  }
  return "blocking";
}

/// Reads both the current string spelling and the PR 2 artifact schema,
/// where the overlap knob was a bool (true meant the bulk pipeline).
core::OverlapMode overlap_mode_from_json(const json::Value& f) {
  if (f.kind() == json::Value::Kind::kBool)
    return f.as_bool() ? core::OverlapMode::kBulk
                       : core::OverlapMode::kBlocking;
  const std::string s = f.as_string();
  if (s == "blocking") return core::OverlapMode::kBlocking;
  if (s == "bulk") return core::OverlapMode::kBulk;
  if (s == "stream") return core::OverlapMode::kStream;
  BNSGCN_CHECK_MSG(false, "unknown overlap mode: " + s);
  return core::OverlapMode::kBlocking;
}

const char* partition_kind_name(PartitionSpec::Kind k) {
  switch (k) {
    case PartitionSpec::Kind::kMetis: return "metis";
    case PartitionSpec::Kind::kRandom: return "random";
    case PartitionSpec::Kind::kHash: return "hash";
    case PartitionSpec::Kind::kBfs: return "bfs";
  }
  return "metis";
}

PartitionSpec::Kind partition_kind_from_name(const std::string& s) {
  if (s == "metis") return PartitionSpec::Kind::kMetis;
  if (s == "random") return PartitionSpec::Kind::kRandom;
  if (s == "hash") return PartitionSpec::Kind::kHash;
  if (s == "bfs") return PartitionSpec::Kind::kBfs;
  BNSGCN_CHECK_MSG(false, "unknown partition kind: " + s);
  return PartitionSpec::Kind::kMetis;
}

json::Value synthetic_to_json(const SyntheticSpec& s) {
  json::Value v = json::Value::object();
  v.set("name", s.name);
  v.set("n", static_cast<std::int64_t>(s.n));
  v.set("m", static_cast<std::int64_t>(s.m));
  v.set("communities", s.communities);
  v.set("num_classes", s.num_classes);
  v.set("feat_dim", s.feat_dim);
  v.set("p_intra", s.p_intra);
  v.set("degree_skew", s.degree_skew);
  v.set("feature_noise", s.feature_noise);
  v.set("feature_signal", s.feature_signal);
  v.set("label_noise", s.label_noise);
  v.set("multilabel", s.multilabel);
  v.set("labels_per_node", s.labels_per_node);
  v.set("train_frac", s.train_frac);
  v.set("val_frac", s.val_frac);
  v.set("seed", static_cast<std::int64_t>(s.seed));
  return v;
}

/// Read `key` into `out` when present (absent keys keep the default).
template <typename T, typename Reader>
void read_if(const json::Value& v, const char* key, T& out, Reader read) {
  if (const auto* f = v.get(key)) out = read(*f);
}

const auto as_d = [](const json::Value& f) { return f.as_double(); };
const auto as_f = [](const json::Value& f) {
  return static_cast<float>(f.as_double());
};
const auto as_i = [](const json::Value& f) {
  return static_cast<int>(f.as_int64());
};
const auto as_b = [](const json::Value& f) { return f.as_bool(); };
const auto as_s = [](const json::Value& f) { return f.as_string(); };
const auto as_u64 = [](const json::Value& f) {
  return static_cast<std::uint64_t>(f.as_int64());
};

SyntheticSpec synthetic_from_json(const json::Value& v) {
  SyntheticSpec s;
  read_if(v, "name", s.name, as_s);
  read_if(v, "n", s.n, [](const json::Value& f) {
    return static_cast<NodeId>(f.as_int64());
  });
  read_if(v, "m", s.m, [](const json::Value& f) {
    return static_cast<EdgeId>(f.as_int64());
  });
  read_if(v, "communities", s.communities, as_i);
  read_if(v, "num_classes", s.num_classes, as_i);
  read_if(v, "feat_dim", s.feat_dim, [](const json::Value& f) {
    return f.as_int64();
  });
  read_if(v, "p_intra", s.p_intra, as_d);
  read_if(v, "degree_skew", s.degree_skew, as_d);
  read_if(v, "feature_noise", s.feature_noise, as_d);
  read_if(v, "feature_signal", s.feature_signal, as_d);
  read_if(v, "label_noise", s.label_noise, as_d);
  read_if(v, "multilabel", s.multilabel, as_b);
  read_if(v, "labels_per_node", s.labels_per_node, as_i);
  read_if(v, "train_frac", s.train_frac, as_d);
  read_if(v, "val_frac", s.val_frac, as_d);
  read_if(v, "seed", s.seed, as_u64);
  return s;
}

json::Value trainer_to_json(const core::TrainerConfig& t) {
  json::Value v = json::Value::object();
  v.set("num_layers", t.num_layers);
  v.set("hidden", t.hidden);
  v.set("model", model_name(t.model));
  v.set("gat_heads", t.gat_heads);
  v.set("dropout", static_cast<double>(t.dropout));
  v.set("lr", static_cast<double>(t.lr));
  v.set("epochs", t.epochs);
  v.set("sample_rate", static_cast<double>(t.sample_rate));
  v.set("variant", variant_name(t.variant));
  v.set("unbiased_scaling", t.unbiased_scaling);
  v.set("eval_every", t.eval_every);
  v.set("seed", static_cast<std::int64_t>(t.seed));
  json::Value cost = json::Value::object();
  cost.set("latency_s", t.cost.latency_s);
  cost.set("bytes_per_s", t.cost.bytes_per_s);
  v.set("cost", std::move(cost));
  v.set("simulate_host_swap", t.simulate_host_swap);
  v.set("overlap", overlap_mode_name(t.overlap));
  v.set("inner_chunk_rows", static_cast<std::int64_t>(t.inner_chunk_rows));
  v.set("threads", t.threads);
  // Halo-cache knobs: written only when non-default, so configs predating
  // them (and uncached ones) round-trip byte-identical. cache_staleness is
  // keyed on its own value, not on cache_mb — gating it on the budget
  // dropped a staleness set without a budget, so the round-tripped config
  // silently lost the knob and a later cache_mb enable changed semantics.
  if (t.cache_mb > 0) v.set("cache_mb", t.cache_mb);
  if (t.cache_mb > 0 || t.cache_staleness != 0)
    v.set("cache_staleness", t.cache_staleness);
  // The per-epoch observer is a process-local callback, and the
  // fabric_shuffle_seed / threads_oversubscribe test-only knobs: not
  // serialized.
  return v;
}

core::TrainerConfig trainer_from_json(const json::Value& v) {
  core::TrainerConfig t;
  read_if(v, "num_layers", t.num_layers, as_i);
  read_if(v, "hidden", t.hidden, [](const json::Value& f) {
    return f.as_int64();
  });
  if (const auto* f = v.get("model")) t.model = model_from_name(f->as_string());
  read_if(v, "gat_heads", t.gat_heads, as_i);
  read_if(v, "dropout", t.dropout, as_f);
  read_if(v, "lr", t.lr, as_f);
  read_if(v, "epochs", t.epochs, as_i);
  read_if(v, "sample_rate", t.sample_rate, as_f);
  if (const auto* f = v.get("variant"))
    t.variant = variant_from_name(f->as_string());
  read_if(v, "unbiased_scaling", t.unbiased_scaling, as_b);
  read_if(v, "eval_every", t.eval_every, as_i);
  read_if(v, "seed", t.seed, as_u64);
  if (const auto* c = v.get("cost")) {
    read_if(*c, "latency_s", t.cost.latency_s, as_d);
    read_if(*c, "bytes_per_s", t.cost.bytes_per_s, as_d);
  }
  read_if(v, "simulate_host_swap", t.simulate_host_swap, as_b);
  read_if(v, "overlap", t.overlap, overlap_mode_from_json);
  read_if(v, "inner_chunk_rows", t.inner_chunk_rows,
          [](const json::Value& f) {
            return static_cast<NodeId>(f.as_int64());
          });
  // Absent in pre-threads artifacts → the field default of 1 (serial).
  read_if(v, "threads", t.threads, as_i);
  // Absent before the halo cache (and in uncached configs) → disabled.
  read_if(v, "cache_mb", t.cache_mb, [](const json::Value& f) {
    return f.as_int64();
  });
  read_if(v, "cache_staleness", t.cache_staleness, as_i);
  return t;
}

json::Value minibatch_to_json(const baselines::MinibatchConfig& mb) {
  json::Value v = json::Value::object();
  v.set("lr", static_cast<double>(mb.lr));
  v.set("batch_size", static_cast<std::int64_t>(mb.batch_size));
  v.set("batches_per_epoch", mb.batches_per_epoch);
  v.set("fanout", mb.fanout);
  v.set("layer_budget", static_cast<std::int64_t>(mb.layer_budget));
  v.set("num_clusters", mb.num_clusters);
  v.set("clusters_per_batch", mb.clusters_per_batch);
  v.set("saint_budget", static_cast<std::int64_t>(mb.saint_budget));
  return v;
}

baselines::MinibatchConfig minibatch_from_json(const json::Value& v) {
  baselines::MinibatchConfig mb;
  const auto as_node = [](const json::Value& f) {
    return static_cast<NodeId>(f.as_int64());
  };
  read_if(v, "lr", mb.lr, as_f);
  read_if(v, "batch_size", mb.batch_size, as_node);
  read_if(v, "batches_per_epoch", mb.batches_per_epoch, as_i);
  read_if(v, "fanout", mb.fanout, as_i);
  read_if(v, "layer_budget", mb.layer_budget, as_node);
  read_if(v, "num_clusters", mb.num_clusters, as_i);
  read_if(v, "clusters_per_batch", mb.clusters_per_batch, as_i);
  read_if(v, "saint_budget", mb.saint_budget, as_node);
  return mb;
}

} // namespace

json::Value to_json(const RunConfig& cfg) {
  json::Value v = json::Value::object();
  // Methods travel by registry name (stable across enum reordering);
  // custom methods already are names and need not be registered to
  // serialize.
  v.set("method", cfg.method == Method::kCustom ? cfg.custom_method
                                                : method_info(cfg.method).name);

  json::Value ds = json::Value::object();
  ds.set("preset", cfg.dataset.preset);
  ds.set("scale", cfg.dataset.scale);
  if (cfg.dataset.custom)
    ds.set("custom", synthetic_to_json(*cfg.dataset.custom));
  v.set("dataset", std::move(ds));

  json::Value part = json::Value::object();
  part.set("kind", partition_kind_name(cfg.partition.kind));
  part.set("nparts", static_cast<std::int64_t>(cfg.partition.nparts));
  part.set("seed", static_cast<std::int64_t>(cfg.partition.seed));
  v.set("partition", std::move(part));

  v.set("trainer", trainer_to_json(cfg.trainer));

  json::Value comm = json::Value::object();
  comm.set("overlap", overlap_mode_name(cfg.comm.overlap));
  comm.set("inner_chunk_rows",
           static_cast<std::int64_t>(cfg.comm.inner_chunk_rows));
  comm.set("transport", comm::transport_kind_name(cfg.comm.transport));
  // Cache knobs only when non-default (back-compat byte-identity, as
  // above) — cache_staleness round-trips on its own value, not cache_mb's.
  if (cfg.comm.cache_mb > 0) comm.set("cache_mb", cfg.comm.cache_mb);
  if (cfg.comm.cache_mb > 0 || cfg.comm.cache_staleness != 0)
    comm.set("cache_staleness", cfg.comm.cache_staleness);
  v.set("comm", std::move(comm));

  v.set("minibatch", minibatch_to_json(cfg.minibatch));
  v.set("cagnet_c", cfg.cagnet_c);
  return v;
}

RunConfig run_config_from_json(const json::Value& v) {
  RunConfig cfg;
  if (const auto* m = v.get("method")) {
    const std::string name = m->as_string();
    const MethodInfo* info = find_method(name);
    if (info != nullptr && info->method != Method::kCustom) {
      cfg.method = info->method;
    } else {
      // Custom (or not-yet-registered) method: resolved by name at run().
      cfg.method = Method::kCustom;
      cfg.custom_method = name;
    }
  }
  if (const auto* ds = v.get("dataset")) {
    read_if(*ds, "preset", cfg.dataset.preset, as_s);
    read_if(*ds, "scale", cfg.dataset.scale, as_d);
    if (const auto* c = ds->get("custom"))
      cfg.dataset.custom = synthetic_from_json(*c);
  }
  if (const auto* p = v.get("partition")) {
    if (const auto* k = p->get("kind"))
      cfg.partition.kind = partition_kind_from_name(k->as_string());
    read_if(*p, "nparts", cfg.partition.nparts, [](const json::Value& f) {
      return static_cast<PartId>(f.as_int64());
    });
    read_if(*p, "seed", cfg.partition.seed, as_u64);
  }
  if (const auto* t = v.get("trainer")) cfg.trainer = trainer_from_json(*t);
  if (const auto* c = v.get("comm")) {
    read_if(*c, "overlap", cfg.comm.overlap, overlap_mode_from_json);
    read_if(*c, "inner_chunk_rows", cfg.comm.inner_chunk_rows,
            [](const json::Value& f) {
              return static_cast<NodeId>(f.as_int64());
            });
    // Absent in configs written before socket transports existed: mailbox.
    read_if(*c, "transport", cfg.comm.transport, [](const json::Value& f) {
      return comm::transport_kind_from_name(f.as_string());
    });
    // Absent before the halo cache → disabled.
    read_if(*c, "cache_mb", cfg.comm.cache_mb, [](const json::Value& f) {
      return f.as_int64();
    });
    read_if(*c, "cache_staleness", cfg.comm.cache_staleness, as_i);
  }
  if (const auto* mb = v.get("minibatch"))
    cfg.minibatch = minibatch_from_json(*mb);
  read_if(v, "cagnet_c", cfg.cagnet_c, as_i);
  return cfg;
}

std::string to_json_string(const RunConfig& cfg, int indent) {
  return to_json(cfg).dump(indent);
}

RunConfig run_config_from_json_string(std::string_view text) {
  return run_config_from_json(json::Value::parse(text));
}

} // namespace bnsgcn::api
