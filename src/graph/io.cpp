#include "graph/io.hpp"

#include <cstdint>
#include <fstream>

#include "common/binary_io.hpp"
#include "common/check.hpp"

namespace bnsgcn {

namespace {

using io::read_pod;
using io::read_vec;
using io::write_pod;
using io::write_vec;

constexpr std::uint32_t kCsrMagic = 0x42475243;     // "CRGB"
constexpr std::uint32_t kDatasetMagic = 0x42475244; // "DRGB"
constexpr std::uint32_t kVersion = 1;

void write_matrix(std::ofstream& os, const Matrix& m) {
  write_pod(os, m.rows());
  write_pod(os, m.cols());
  os.write(reinterpret_cast<const char*>(m.data()),
           static_cast<std::streamsize>(m.size() * sizeof(float)));
}

Matrix read_matrix(std::ifstream& is) {
  const auto rows = read_pod<std::int64_t>(is);
  const auto cols = read_pod<std::int64_t>(is);
  BNSGCN_CHECK(rows >= 0 && cols >= 0);
  Matrix m(rows, cols);
  is.read(reinterpret_cast<char*>(m.data()),
          static_cast<std::streamsize>(m.size() * sizeof(float)));
  BNSGCN_CHECK_MSG(static_cast<bool>(is), "truncated file");
  return m;
}

void write_csr_body(std::ofstream& os, const Csr& g) {
  write_pod(os, g.n);
  write_vec(os, g.offsets);
  write_vec(os, g.nbrs);
}

Csr read_csr_body(std::ifstream& is) {
  Csr g;
  g.n = read_pod<NodeId>(is);
  g.offsets = read_vec<EdgeId>(is);
  g.nbrs = read_vec<NodeId>(is);
  g.validate();
  return g;
}

} // namespace

void save_csr(const Csr& g, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  BNSGCN_CHECK_MSG(static_cast<bool>(os), "cannot open " + path);
  write_pod(os, kCsrMagic);
  write_pod(os, kVersion);
  write_csr_body(os, g);
  BNSGCN_CHECK_MSG(static_cast<bool>(os), "write failed: " + path);
}

Csr load_csr(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  BNSGCN_CHECK_MSG(static_cast<bool>(is), "cannot open " + path);
  BNSGCN_CHECK_MSG(read_pod<std::uint32_t>(is) == kCsrMagic, "bad magic");
  BNSGCN_CHECK_MSG(read_pod<std::uint32_t>(is) == kVersion, "bad version");
  return read_csr_body(is);
}

void save_dataset(const Dataset& ds, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  BNSGCN_CHECK_MSG(static_cast<bool>(os), "cannot open " + path);
  write_pod(os, kDatasetMagic);
  write_pod(os, kVersion);
  write_vec(os, std::vector<char>(ds.name.begin(), ds.name.end()));
  write_csr_body(os, ds.graph);
  write_matrix(os, ds.features);
  write_pod(os, ds.num_classes);
  write_pod(os, static_cast<std::uint8_t>(ds.multilabel ? 1 : 0));
  write_vec(os, ds.labels);
  write_matrix(os, ds.multilabels);
  write_vec(os, ds.train_nodes);
  write_vec(os, ds.val_nodes);
  write_vec(os, ds.test_nodes);
  BNSGCN_CHECK_MSG(static_cast<bool>(os), "write failed: " + path);
}

Dataset load_dataset(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  BNSGCN_CHECK_MSG(static_cast<bool>(is), "cannot open " + path);
  BNSGCN_CHECK_MSG(read_pod<std::uint32_t>(is) == kDatasetMagic, "bad magic");
  BNSGCN_CHECK_MSG(read_pod<std::uint32_t>(is) == kVersion, "bad version");
  Dataset ds;
  const auto name = read_vec<char>(is);
  ds.name.assign(name.begin(), name.end());
  ds.graph = read_csr_body(is);
  ds.features = read_matrix(is);
  ds.num_classes = read_pod<int>(is);
  ds.multilabel = read_pod<std::uint8_t>(is) != 0;
  ds.labels = read_vec<int>(is);
  ds.multilabels = read_matrix(is);
  ds.train_nodes = read_vec<NodeId>(is);
  ds.val_nodes = read_vec<NodeId>(is);
  ds.test_nodes = read_vec<NodeId>(is);
  ds.validate();
  return ds;
}

} // namespace bnsgcn
