#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "api/report.hpp"
#include "core/trainer.hpp"
#include "graph/dataset.hpp"
#include "nn/layer.hpp"

namespace bnsgcn::baselines {

/// Sampler-specific knobs of the minibatch baselines (Section 2 families).
/// The shared model/protocol knobs (layers, hidden width, dropout, epochs,
/// eval cadence, seed) come from core::TrainerConfig so there is a single
/// source of truth; `lr` stays here because the minibatch methods use their
/// own learning-rate scale (per-batch Adam steps).
struct MinibatchConfig {
  float lr = 0.01f;            // per-batch Adam learning rate

  NodeId batch_size = 1024;    // seed nodes per minibatch
  int batches_per_epoch = 8;   // minibatch steps per epoch

  int fanout = 10;             // GraphSAGE neighbor-sampling fanout
  NodeId layer_budget = 512;   // FastGCN/LADIES per-layer sample size
  int num_clusters = 32;       // ClusterGCN METIS clusters
  int clusters_per_batch = 2;
  NodeId saint_budget = 2000;  // GraphSAINT node budget per subgraph
};

/// Whole-graph adjacency in Layer form (n_dst == n_src == n, identity node
/// order so "self features first" holds trivially).
struct FullGraphContext {
  nn::BipartiteCsr adj;
  std::vector<float> inv_deg;
};
[[nodiscard]] FullGraphContext make_full_context(const Csr& g);

/// Full-graph inference with the given layers (dropout off); returns
/// {val metric, test metric} — accuracy or micro-F1 per the dataset.
[[nodiscard]] std::pair<double, double> evaluate_full(
    const Dataset& ds, const FullGraphContext& ctx,
    std::vector<std::unique_ptr<nn::Layer>>& layers);

/// One minibatch in layered (message-flow) form: level 0 holds the input
/// nodes, level L the output nodes; every level's node list starts with the
/// next level's destinations so Layer's "self rows first" layout holds.
/// Subgraph methods (ClusterGCN / GraphSAINT) use the degenerate form where
/// every level is the same node set.
struct Batch {
  std::vector<nn::BipartiteCsr> adjs;      // L entries (level l → l+1)
  std::vector<std::vector<float>> inv_deg; // L entries
  std::vector<NodeId> input_nodes;         // level-0 global ids
  std::vector<NodeId> output_nodes;        // level-L global ids
  std::vector<NodeId> loss_rows;           // rows of output carrying loss
};

/// Shared minibatch training loop: draws `batches_per_epoch` batches per
/// epoch from `next_batch`, trains with Adam, and evaluates by full-graph
/// inference (the standard protocol for sampling-based methods). The
/// report's per-epoch breakdown splits measured wall time into compute_s
/// and sample_s; `cfg.observer` streams each finished epoch.
[[nodiscard]] api::RunReport run_minibatch_training(
    const Dataset& ds, const core::TrainerConfig& cfg,
    const MinibatchConfig& mb, const std::function<Batch(Rng&)>& next_batch);

/// Single-process full-graph training (no partitioning, no sampling): the
/// test oracle for BnsTrainer(p=1) and the "full-graph accuracy" reference.
[[nodiscard]] api::RunReport train_full_graph(const Dataset& ds,
                                              const core::TrainerConfig& cfg);

/// GraphSAGE neighbor sampling (Hamilton et al. 2017).
[[nodiscard]] api::RunReport train_neighbor_sampling(
    const Dataset& ds, const core::TrainerConfig& cfg,
    const MinibatchConfig& mb);

/// Layer sampling: FastGCN (global candidate pool) or LADIES (pool
/// restricted to the current layer's neighbor set), importance-weighted.
[[nodiscard]] api::RunReport train_layer_sampling(
    const Dataset& ds, const core::TrainerConfig& cfg,
    const MinibatchConfig& mb, bool ladies);

/// ClusterGCN (Chiang et al. 2019): METIS clusters, random cluster unions.
[[nodiscard]] api::RunReport train_cluster_gcn(const Dataset& ds,
                                               const core::TrainerConfig& cfg,
                                               const MinibatchConfig& mb);

/// GraphSAINT node sampler (Zeng et al. 2020), simplified: degree-weighted
/// node budget, induced subgraph, loss on contained train nodes.
[[nodiscard]] api::RunReport train_graph_saint(const Dataset& ds,
                                               const core::TrainerConfig& cfg,
                                               const MinibatchConfig& mb);

} // namespace bnsgcn::baselines
