#pragma once

#include <string>
#include <vector>

#include "comm/socket_transport.hpp"
#include "common/types.hpp"

namespace bnsgcn::comm {

/// A same-host socket group, ready for P ranks to join: every rank's
/// listener is already bound and listening, so connects cannot race the
/// spawn order. UDS paths live in a fresh private directory under
/// $TMPDIR; TCP listeners bind ephemeral loopback ports (no fixed port
/// numbers — hermetic under parallel CI).
struct LocalGroup {
  SocketEndpoints endpoints;
  std::vector<int> listen_fds; // one per rank, in rank order
  std::string uds_dir;         // empty for tcp
};

/// Bind listeners for `nranks` ranks. kind must be kUds or kTcp.
[[nodiscard]] LocalGroup make_local_group(TransportKind kind, PartId nranks);

/// Close any listeners still open and remove the UDS directory. Safe to
/// call after the ranks have taken ownership of their listen fds (pass
/// `fds_taken = true` to leave fds alone).
void cleanup_local_group(LocalGroup& group, bool fds_taken);

} // namespace bnsgcn::comm
