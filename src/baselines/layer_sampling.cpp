#include <unordered_map>
#include <unordered_set>

#include "baselines/minibatch.hpp"

namespace bnsgcn::baselines {

namespace {

std::vector<NodeId> draw_seeds(const Dataset& ds, NodeId batch_size,
                               Rng& rng) {
  const auto n_train = static_cast<NodeId>(ds.train_nodes.size());
  const NodeId k = std::min(batch_size, n_train);
  std::vector<NodeId> seeds;
  seeds.reserve(static_cast<std::size_t>(k));
  for (const NodeId idx : rng.sample_without_replacement(n_train, k))
    seeds.push_back(ds.train_nodes[static_cast<std::size_t>(idx)]);
  return seeds;
}

} // namespace

api::RunReport train_layer_sampling(const Dataset& ds,
                                    const core::TrainerConfig& cfg,
                                    const MinibatchConfig& mb, bool ladies) {
  const Csr& g = ds.graph;

  const auto next_batch = [&, ladies](Rng& rng) {
    Batch batch;
    batch.output_nodes = draw_seeds(ds, mb.batch_size, rng);
    batch.adjs.resize(static_cast<std::size_t>(cfg.num_layers));
    batch.inv_deg.resize(static_cast<std::size_t>(cfg.num_layers));

    std::vector<NodeId> dsts = batch.output_nodes;
    for (int l = cfg.num_layers - 1; l >= 0; --l) {
      // Candidate pool: LADIES restricts to the neighbor set of the current
      // destinations; FastGCN samples from the whole graph. Inclusion is
      // Bernoulli(budget/|pool|) with inverse-probability edge weights, the
      // importance-sampled unbiased estimator of Eq. 1.
      std::vector<NodeId> pool;
      if (ladies) {
        std::unordered_set<NodeId> seen;
        for (const NodeId v : dsts)
          for (const NodeId u : g.neighbors(v))
            if (seen.insert(u).second) pool.push_back(u);
      } else {
        pool.resize(static_cast<std::size_t>(g.n));
        for (NodeId v = 0; v < g.n; ++v)
          pool[static_cast<std::size_t>(v)] = v;
      }
      const double pi =
          pool.empty()
              ? 1.0
              : std::min(1.0, static_cast<double>(mb.layer_budget) /
                                  static_cast<double>(pool.size()));
      std::unordered_set<NodeId> kept;
      for (const NodeId u : pool)
        if (rng.next_bool(pi)) kept.insert(u);

      std::vector<NodeId> srcs = dsts;
      std::unordered_map<NodeId, NodeId> local;
      for (std::size_t i = 0; i < srcs.size(); ++i)
        local.emplace(srcs[i], static_cast<NodeId>(i));

      auto& adj = batch.adjs[static_cast<std::size_t>(l)];
      auto& inv = batch.inv_deg[static_cast<std::size_t>(l)];
      adj.n_dst = static_cast<NodeId>(dsts.size());
      adj.offsets.assign(dsts.size() + 1, 0);
      inv.assign(dsts.size(), 0.0f);
      const auto w = static_cast<float>(1.0 / pi);
      for (std::size_t i = 0; i < dsts.size(); ++i) {
        const auto nb = g.neighbors(dsts[i]);
        for (const NodeId u : nb) {
          if (!kept.contains(u)) continue;
          auto [it, inserted] =
              local.emplace(u, static_cast<NodeId>(srcs.size()));
          if (inserted) srcs.push_back(u);
          adj.nbrs.push_back(it->second);
          adj.edge_scale.push_back(w);
        }
        adj.offsets[i + 1] = static_cast<EdgeId>(adj.nbrs.size());
        // Normalize by the FULL degree: the 1/pi edge weights make the sum
        // an unbiased estimate of the full-neighborhood sum.
        if (!nb.empty()) inv[i] = 1.0f / static_cast<float>(nb.size());
      }
      adj.n_src = static_cast<NodeId>(srcs.size());
      dsts = std::move(srcs);
    }
    batch.input_nodes = std::move(dsts);
    batch.loss_rows.resize(batch.output_nodes.size());
    for (std::size_t i = 0; i < batch.loss_rows.size(); ++i)
      batch.loss_rows[i] = static_cast<NodeId>(i);
    return batch;
  };

  auto report = run_minibatch_training(ds, cfg, mb, next_batch);
  report.method = ladies ? "ladies" : "fastgcn";
  return report;
}

} // namespace bnsgcn::baselines
