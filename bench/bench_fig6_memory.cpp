// Figure 6: peak memory reduction of BNS-GCN vs unsampled training (p=1),
// per Eq. 4 with the actually-sampled halo sizes.
// Expected shape: reduction grows with more partitions (bigger boundary
// share) and with smaller p; denser graphs save more (paper: up to 58% on
// Reddit at 8 parts, 27% on products at 10 parts).

#include "common.hpp"

namespace {

using namespace bnsgcn;

void run_dataset(const char* title, const char* preset, double scale,
                 const std::vector<PartId>& parts,
                 const api::BenchOptions& opts, bench::ReportSink& sink) {
  const auto pr = bench::load_preset(preset, scale, opts);
  std::printf("\n--- %s ---\n", title);
  std::printf("%-8s", "parts");
  for (const float p : {0.5f, 0.1f, 0.01f}) std::printf("   p=%-6.2f", p);
  std::printf("  (memory reduction vs p=1)\n");
  api::RunConfig rcfg = pr.config(api::Method::kBns);
  rcfg.trainer.epochs = opts.epochs_or(4);
  for (const PartId m : parts) {
    rcfg.partition.nparts = m; // partitioned once, cached across the p-sweep
    std::printf("%-8d", m);
    for (const float p : {0.5f, 0.1f, 0.01f}) {
      rcfg.trainer.sample_rate = p;
      const auto& r = sink.add(bench::label("%s m=%d p=%.2f", preset, m, p),
                               rcfg, api::run(pr.ds, rcfg));
      std::printf("   %7.1f%%", 100.0 * r.memory.reduction_vs_full());
    }
    std::printf("\n");
  }
}

} // namespace

int main(int argc, char** argv) {
  using namespace bnsgcn;
  const auto opts = api::parse_bench_args(argc, argv);
  bench::print_banner("Figure 6", "memory usage reduction vs p (Eq. 4)");
  bench::ReportSink sink("Figure 6", opts);
  const double s = opts.scale;
  run_dataset("Reddit-like (dense)", "reddit", 0.5 * s, {2, 4, 8}, opts,
              sink);
  run_dataset("ogbn-products-like (sparse)", "products", 0.4 * s, {5, 8, 10},
              opts, sink);
  std::printf("\npaper shape check: reduction grows with #partitions; denser "
              "graph saves more.\n");
  return 0;
}
