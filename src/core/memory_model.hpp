#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace bnsgcn::core {

/// The paper's Eq. 4 memory model for a GraphSAGE layer with a mean
/// aggregator: Mem^(ℓ)(G_i) = (3·n_in + n_bd) · d^(ℓ)  (in elements; we
/// report bytes at fp32). The three n_in terms are the input features, the
/// aggregated features and the stored activations for backward; the n_bd
/// term is the received boundary-feature block. BNS replaces n_bd with the
/// sampled count, giving the Fig. 6 / Fig. 8 reductions.
struct MemoryModel {
  /// Bytes for one layer at input dimension d.
  [[nodiscard]] static std::int64_t layer_bytes(NodeId n_inner,
                                                NodeId n_boundary,
                                                std::int64_t d) {
    return (3 * static_cast<std::int64_t>(n_inner) +
            static_cast<std::int64_t>(n_boundary)) *
           d * static_cast<std::int64_t>(sizeof(float));
  }

  /// Bytes across a layer stack; `dims` holds each layer's input dimension
  /// (feature dim, hidden, ..., hidden).
  [[nodiscard]] static std::int64_t epoch_bytes(
      NodeId n_inner, NodeId n_boundary, std::span<const std::int64_t> dims) {
    std::int64_t total = 0;
    for (const std::int64_t d : dims)
      total += layer_bytes(n_inner, n_boundary, d);
    return total;
  }
};

/// Per-rank memory measurements for one training run.
struct MemoryReport {
  /// Eq. 4 with the *sampled* halo count, averaged over epochs.
  std::vector<double> model_bytes;
  /// Eq. 4 with the full halo (p = 1 requirement).
  std::vector<std::int64_t> full_bytes;

  [[nodiscard]] double max_model_bytes() const;
  [[nodiscard]] std::int64_t max_full_bytes() const;
  /// Fig. 6 quantity: 1 - max_p(mem) / max_p(mem at p=1).
  [[nodiscard]] double reduction_vs_full() const;
};

} // namespace bnsgcn::core
