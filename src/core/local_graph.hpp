#pragma once

#include <vector>

#include "nn/layer.hpp"
#include "partition/partitioning.hpp"

namespace bnsgcn::core {

/// A partition's view of the graph for partition-parallel training
/// (Section 3.1, Figure 2):
///  - inner nodes: owned by this partition, local ids [0, n_inner),
///  - boundary (halo) nodes: remote nodes some inner node aggregates from,
///    local ids [n_inner, n_inner + n_halo),
///  - adjacency rows for inner nodes over that local id space,
///  - send/recv sets: send_sets[j] lists our inner nodes that partition j
///    needs (S_{i,j} of Algorithm 1); halo nodes owned by j are listed in
///    recv order that matches j's send_sets for us positionally (both sides
///    sort by global id, making the exchange self-synchronizing).
struct LocalGraph {
  PartId part_id = 0;
  PartId nparts = 1;

  std::vector<NodeId> inner_global;  // sorted global ids
  std::vector<NodeId> halo_global;   // sorted global ids
  std::vector<PartId> halo_owner;    // owner partition per halo node

  nn::BipartiteCsr adj;              // n_dst = n_inner, n_src = n_inner+n_halo
  std::vector<float> inv_full_degree;// 1/deg over the FULL neighbor set

  std::vector<std::vector<NodeId>> send_sets; // per peer: local inner ids
  std::vector<std::vector<NodeId>> recv_halo; // per peer: halo indices
                                              // (0-based into halo arrays)

  [[nodiscard]] NodeId n_inner() const {
    return static_cast<NodeId>(inner_global.size());
  }
  [[nodiscard]] NodeId n_halo() const {
    return static_cast<NodeId>(halo_global.size());
  }

  /// Cross-partition invariants are checked by tests via this helper:
  /// internal shape consistency only (send/recv symmetry needs both sides).
  void validate() const;
};

/// Build every partition's LocalGraph from the global graph. O(|E|).
[[nodiscard]] std::vector<LocalGraph> build_local_graphs(
    const Csr& g, const Partitioning& part);

/// Slice per-node data (features / labels) into per-partition blocks in
/// inner-local order.
[[nodiscard]] Matrix slice_rows(const Matrix& global,
                                std::span<const NodeId> global_ids);

/// Map a global node list (e.g. train split) to local inner row ids of one
/// partition; nodes owned elsewhere are skipped.
[[nodiscard]] std::vector<NodeId> local_rows_of(
    const LocalGraph& lg, std::span<const NodeId> global_nodes);

} // namespace bnsgcn::core
