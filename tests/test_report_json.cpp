#include <gtest/gtest.h>

#include "api/run.hpp"
#include "api/serialize.hpp"
#include "common/check.hpp"
#include "common/json.hpp"

namespace bnsgcn {
namespace {

api::RunReport sample_report() {
  api::RunReport r;
  r.method = "bns";
  r.dataset = "reddit-like \"scaled\"";  // exercises string escaping
  r.train_loss = {1.51234567890123, 0.75, 0.3333333333333333};
  r.curve.push_back({.epoch = 2, .val = 0.81, .test = 0.79,
                     .train_loss = 0.75});
  r.curve.push_back({.epoch = 3, .val = 0.9, .test = 0.88,
                     .train_loss = 0.3333333333333333});
  r.final_val = 0.9;
  r.final_test = 0.88;
  core::EpochBreakdown e;
  e.compute_s = 0.125;
  e.comm_s = 0.0625;
  e.reduce_s = 1e-9;
  e.sample_s = 0.001953125;
  e.swap_s = 0.0;
  e.overlap_s = 0.015625;
  e.comm_tail_s = 0.0078125;
  e.feature_bytes = 123456789012345;  // > 2^32, < 2^53
  e.grad_bytes = 4096;
  e.control_bytes = 17;
  r.epochs = {e, e, e};
  r.memory.model_bytes = {1.5e6, 2.25e6};
  r.memory.full_bytes = {2000000, 3000000};
  r.wall_time_s = 0.4375;
  r.partition_cache = {.hits = 3, .disk_hits = 1, .misses = 2,
                       .evictions = 1};
  return r;
}

void expect_reports_equal(const api::RunReport& a, const api::RunReport& b) {
  EXPECT_EQ(a.method, b.method);
  EXPECT_EQ(a.dataset, b.dataset);
  EXPECT_EQ(a.train_loss, b.train_loss);
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_EQ(a.curve[i].epoch, b.curve[i].epoch);
    EXPECT_EQ(a.curve[i].val, b.curve[i].val);
    EXPECT_EQ(a.curve[i].test, b.curve[i].test);
    EXPECT_EQ(a.curve[i].train_loss, b.curve[i].train_loss);
  }
  EXPECT_EQ(a.final_val, b.final_val);
  EXPECT_EQ(a.final_test, b.final_test);
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (std::size_t i = 0; i < a.epochs.size(); ++i) {
    EXPECT_EQ(a.epochs[i].compute_s, b.epochs[i].compute_s);
    EXPECT_EQ(a.epochs[i].comm_s, b.epochs[i].comm_s);
    EXPECT_EQ(a.epochs[i].reduce_s, b.epochs[i].reduce_s);
    EXPECT_EQ(a.epochs[i].sample_s, b.epochs[i].sample_s);
    EXPECT_EQ(a.epochs[i].swap_s, b.epochs[i].swap_s);
    EXPECT_EQ(a.epochs[i].overlap_s, b.epochs[i].overlap_s);
    EXPECT_EQ(a.epochs[i].comm_tail_s, b.epochs[i].comm_tail_s);
    EXPECT_EQ(a.epochs[i].feature_bytes, b.epochs[i].feature_bytes);
    EXPECT_EQ(a.epochs[i].grad_bytes, b.epochs[i].grad_bytes);
    EXPECT_EQ(a.epochs[i].control_bytes, b.epochs[i].control_bytes);
  }
  EXPECT_EQ(a.memory.model_bytes, b.memory.model_bytes);
  EXPECT_EQ(a.memory.full_bytes, b.memory.full_bytes);
  EXPECT_EQ(a.wall_time_s, b.wall_time_s);
  EXPECT_EQ(a.partition_cache, b.partition_cache);
}

TEST(ReportJson, RoundTripIsExact) {
  const api::RunReport original = sample_report();
  const std::string text = api::to_json_string(original);
  const api::RunReport parsed = api::run_report_from_json_string(text);
  expect_reports_equal(original, parsed);
  // Derived quantities recompute identically from the parsed fields.
  EXPECT_EQ(original.throughput_eps(), parsed.throughput_eps());
  EXPECT_EQ(original.sampler_overhead(), parsed.sampler_overhead());
}

TEST(ReportJson, RoundTripOfRealRun) {
  api::RunConfig cfg;
  SyntheticSpec spec;
  spec.n = 500;
  spec.m = 4000;
  spec.communities = 4;
  spec.num_classes = 4;
  spec.feat_dim = 8;
  spec.seed = 21;
  cfg.dataset.custom = spec;
  cfg.partition.nparts = 2;
  cfg.trainer.num_layers = 2;
  cfg.trainer.hidden = 16;
  cfg.trainer.epochs = 4;
  cfg.trainer.sample_rate = 0.5f;
  cfg.trainer.eval_every = 2;
  const api::RunReport r = api::run(cfg);
  const api::RunReport parsed =
      api::run_report_from_json_string(api::to_json_string(r));
  expect_reports_equal(r, parsed);
}

TEST(ReportJson, CompactAndPrettyParseTheSame) {
  const api::RunReport original = sample_report();
  const auto compact =
      api::run_report_from_json_string(api::to_json_string(original, -1));
  const auto pretty =
      api::run_report_from_json_string(api::to_json_string(original, 4));
  expect_reports_equal(compact, pretty);
}

TEST(ReportJson, DerivedBlockPresent) {
  const json::Value v = api::to_json(sample_report());
  const json::Value* derived = v.get("derived");
  ASSERT_NE(derived, nullptr);
  EXPECT_GT(derived->at("throughput_eps").as_double(), 0.0);
  EXPECT_GT(derived->at("total_train_s").as_double(), 0.0);
}

TEST(ReportJson, PreOverlapArtifactsStillParse) {
  // Artifacts written before EpochBreakdown::overlap_s existed have no such
  // key; the reader must default it to 0 rather than throw.
  json::Value v = api::to_json(sample_report());
  json::Value epochs = json::Value::array();
  for (std::size_t i = 0; i < v.at("epochs").size(); ++i) {
    json::Value e = json::Value::object();
    for (const auto& [key, val] : v.at("epochs")[i].members())
      if (key != "overlap_s") e.set(key, val);
    epochs.push_back(std::move(e));
  }
  v.set("epochs", std::move(epochs));
  const api::RunReport parsed = api::run_report_from_json(v);
  for (const auto& e : parsed.epochs) EXPECT_EQ(e.overlap_s, 0.0);
}

TEST(ReportJson, PrePartitionCacheArtifactsStillParse) {
  // Artifacts written before the partition cache existed have no
  // "partition_cache" object; the reader defaults the counters to zero.
  json::Value v = api::to_json(sample_report());
  json::Value stripped = json::Value::object();
  for (const auto& [key, val] : v.members())
    if (key != "partition_cache") stripped.set(key, val);
  const api::RunReport parsed = api::run_report_from_json(stripped);
  EXPECT_EQ(parsed.partition_cache, api::PartitionCacheStats{});
}

// ---------------------------------------------------------------------------
// RunConfig (de)serialization.
// ---------------------------------------------------------------------------

api::RunConfig sample_config() {
  api::RunConfig cfg;
  cfg.method = api::Method::kBns;
  cfg.dataset.preset = "reddit";
  cfg.dataset.scale = 0.75;
  SyntheticSpec custom;
  custom.name = "custom \"shape\"";
  custom.n = 1234;
  custom.m = 45678;
  custom.communities = 7;
  custom.num_classes = 5;
  custom.feat_dim = 24;
  custom.p_intra = 0.875;
  custom.degree_skew = 1.75;
  custom.feature_noise = 1.25;
  custom.feature_signal = 0.5;
  custom.label_noise = 0.0625;
  custom.multilabel = true;
  custom.labels_per_node = 4;
  custom.train_frac = 0.5;
  custom.val_frac = 0.25;
  custom.seed = 99;
  cfg.dataset.custom = custom;
  cfg.partition.kind = api::PartitionSpec::Kind::kBfs;
  cfg.partition.nparts = 6;
  cfg.partition.seed = 17;
  cfg.trainer.num_layers = 4;
  cfg.trainer.hidden = 96;
  cfg.trainer.model = core::ModelKind::kGat;
  cfg.trainer.gat_heads = 3;
  cfg.trainer.dropout = 0.25f;
  cfg.trainer.lr = 0.0078125f;
  cfg.trainer.epochs = 42;
  cfg.trainer.sample_rate = 0.125f;
  cfg.trainer.variant = core::SamplingVariant::kBoundaryEdge;
  cfg.trainer.unbiased_scaling = false;
  cfg.trainer.eval_every = 7;
  cfg.trainer.seed = 1234567;
  cfg.trainer.cost.latency_s = 2.5e-5;
  cfg.trainer.cost.bytes_per_s = 3.0e7;
  cfg.trainer.simulate_host_swap = true;
  cfg.trainer.overlap = core::OverlapMode::kStream;
  cfg.trainer.inner_chunk_rows = 96;
  cfg.trainer.threads = 6;
  cfg.comm.overlap = core::OverlapMode::kBulk;
  cfg.comm.inner_chunk_rows = 48;
  cfg.minibatch.lr = 0.5f;
  cfg.minibatch.batch_size = 777;
  cfg.minibatch.batches_per_epoch = 3;
  cfg.minibatch.fanout = 15;
  cfg.minibatch.layer_budget = 321;
  cfg.minibatch.num_clusters = 12;
  cfg.minibatch.clusters_per_batch = 5;
  cfg.minibatch.saint_budget = 888;
  cfg.cagnet_c = 2;
  return cfg;
}

void expect_configs_equal(const api::RunConfig& a, const api::RunConfig& b) {
  EXPECT_EQ(a.method, b.method);
  EXPECT_EQ(a.custom_method, b.custom_method);
  EXPECT_EQ(a.dataset.preset, b.dataset.preset);
  EXPECT_EQ(a.dataset.scale, b.dataset.scale);
  ASSERT_EQ(a.dataset.custom.has_value(), b.dataset.custom.has_value());
  if (a.dataset.custom) {
    const auto& x = *a.dataset.custom;
    const auto& y = *b.dataset.custom;
    EXPECT_EQ(x.name, y.name);
    EXPECT_EQ(x.n, y.n);
    EXPECT_EQ(x.m, y.m);
    EXPECT_EQ(x.communities, y.communities);
    EXPECT_EQ(x.num_classes, y.num_classes);
    EXPECT_EQ(x.feat_dim, y.feat_dim);
    EXPECT_EQ(x.p_intra, y.p_intra);
    EXPECT_EQ(x.degree_skew, y.degree_skew);
    EXPECT_EQ(x.feature_noise, y.feature_noise);
    EXPECT_EQ(x.feature_signal, y.feature_signal);
    EXPECT_EQ(x.label_noise, y.label_noise);
    EXPECT_EQ(x.multilabel, y.multilabel);
    EXPECT_EQ(x.labels_per_node, y.labels_per_node);
    EXPECT_EQ(x.train_frac, y.train_frac);
    EXPECT_EQ(x.val_frac, y.val_frac);
    EXPECT_EQ(x.seed, y.seed);
  }
  EXPECT_EQ(a.partition.kind, b.partition.kind);
  EXPECT_EQ(a.partition.nparts, b.partition.nparts);
  EXPECT_EQ(a.partition.seed, b.partition.seed);
  EXPECT_EQ(a.trainer.num_layers, b.trainer.num_layers);
  EXPECT_EQ(a.trainer.hidden, b.trainer.hidden);
  EXPECT_EQ(a.trainer.model, b.trainer.model);
  EXPECT_EQ(a.trainer.gat_heads, b.trainer.gat_heads);
  EXPECT_EQ(a.trainer.dropout, b.trainer.dropout);
  EXPECT_EQ(a.trainer.lr, b.trainer.lr);
  EXPECT_EQ(a.trainer.epochs, b.trainer.epochs);
  EXPECT_EQ(a.trainer.sample_rate, b.trainer.sample_rate);
  EXPECT_EQ(a.trainer.variant, b.trainer.variant);
  EXPECT_EQ(a.trainer.unbiased_scaling, b.trainer.unbiased_scaling);
  EXPECT_EQ(a.trainer.eval_every, b.trainer.eval_every);
  EXPECT_EQ(a.trainer.seed, b.trainer.seed);
  EXPECT_EQ(a.trainer.cost.latency_s, b.trainer.cost.latency_s);
  EXPECT_EQ(a.trainer.cost.bytes_per_s, b.trainer.cost.bytes_per_s);
  EXPECT_EQ(a.trainer.simulate_host_swap, b.trainer.simulate_host_swap);
  EXPECT_EQ(a.trainer.overlap, b.trainer.overlap);
  EXPECT_EQ(a.trainer.inner_chunk_rows, b.trainer.inner_chunk_rows);
  EXPECT_EQ(a.trainer.threads, b.trainer.threads);
  EXPECT_EQ(a.trainer.cache_mb, b.trainer.cache_mb);
  EXPECT_EQ(a.trainer.cache_staleness, b.trainer.cache_staleness);
  EXPECT_EQ(a.comm.overlap, b.comm.overlap);
  EXPECT_EQ(a.comm.inner_chunk_rows, b.comm.inner_chunk_rows);
  EXPECT_EQ(a.comm.cache_mb, b.comm.cache_mb);
  EXPECT_EQ(a.comm.cache_staleness, b.comm.cache_staleness);
  EXPECT_EQ(a.minibatch.lr, b.minibatch.lr);
  EXPECT_EQ(a.minibatch.batch_size, b.minibatch.batch_size);
  EXPECT_EQ(a.minibatch.batches_per_epoch, b.minibatch.batches_per_epoch);
  EXPECT_EQ(a.minibatch.fanout, b.minibatch.fanout);
  EXPECT_EQ(a.minibatch.layer_budget, b.minibatch.layer_budget);
  EXPECT_EQ(a.minibatch.num_clusters, b.minibatch.num_clusters);
  EXPECT_EQ(a.minibatch.clusters_per_batch, b.minibatch.clusters_per_batch);
  EXPECT_EQ(a.minibatch.saint_budget, b.minibatch.saint_budget);
  EXPECT_EQ(a.cagnet_c, b.cagnet_c);
}

TEST(ConfigJson, RoundTripIsExact) {
  const api::RunConfig original = sample_config();
  const api::RunConfig parsed =
      api::run_config_from_json_string(api::to_json_string(original));
  expect_configs_equal(original, parsed);
}

TEST(ConfigJson, DefaultsRoundTrip) {
  const api::RunConfig parsed =
      api::run_config_from_json_string(api::to_json_string(api::RunConfig{}));
  expect_configs_equal(api::RunConfig{}, parsed);
}

TEST(ConfigJson, MinimalDocumentKeepsDefaults) {
  // Hand-written configs spell out only what they change.
  const api::RunConfig cfg = api::run_config_from_json_string(
      R"({"method": "graph-saint", "trainer": {"epochs": 3}})");
  EXPECT_EQ(cfg.method, api::Method::kGraphSaint);
  EXPECT_EQ(cfg.trainer.epochs, 3);
  const api::RunConfig defaults;
  EXPECT_EQ(cfg.trainer.hidden, defaults.trainer.hidden);
  EXPECT_EQ(cfg.partition.nparts, defaults.partition.nparts);
  EXPECT_EQ(cfg.comm.overlap, defaults.comm.overlap);
}

TEST(ConfigJson, UnregisteredMethodNameBecomesCustom) {
  const api::RunConfig cfg = api::run_config_from_json_string(
      R"({"method": "my-experimental-method"})");
  EXPECT_EQ(cfg.method, api::Method::kCustom);
  EXPECT_EQ(cfg.custom_method, "my-experimental-method");
  EXPECT_THROW((void)api::resolve_method(cfg), CheckError);
}

TEST(ConfigJson, OverlapModeRoundTripsEveryValue) {
  for (const auto mode :
       {core::OverlapMode::kBlocking, core::OverlapMode::kBulk,
        core::OverlapMode::kStream}) {
    api::RunConfig cfg;
    cfg.comm.overlap = mode;
    cfg.trainer.overlap = mode;
    const api::RunConfig parsed =
        api::run_config_from_json_string(api::to_json_string(cfg));
    EXPECT_EQ(parsed.comm.overlap, mode);
    EXPECT_EQ(parsed.trainer.overlap, mode);
  }
}

TEST(ConfigJson, ChunkKnobAbsentKeepsUnchunkedDefault) {
  // Artifacts written before the chunked inner phase have no
  // inner_chunk_rows key in either block: both sides must stay 0.
  const api::RunConfig cfg = api::run_config_from_json_string(
      R"({"comm": {"overlap": "stream"}, "trainer": {"epochs": 2}})");
  EXPECT_EQ(cfg.comm.inner_chunk_rows, 0);
  EXPECT_EQ(cfg.trainer.inner_chunk_rows, 0);
}

TEST(ConfigJson, ThreadsKnobRoundTripsAndAbsentMeansSerial) {
  // The kernel thread-pool knob serializes as trainer.threads; artifacts
  // written before the pool landed have no such key and must load as the
  // serial default (1). The test-only oversubscribe bypass never
  // serializes.
  api::RunConfig cfg;
  cfg.trainer.threads = 4;
  cfg.trainer.threads_oversubscribe = true;
  const std::string doc = api::to_json_string(cfg);
  EXPECT_EQ(doc.find("threads_oversubscribe"), std::string::npos);
  const api::RunConfig parsed = api::run_config_from_json_string(doc);
  EXPECT_EQ(parsed.trainer.threads, 4);
  EXPECT_FALSE(parsed.trainer.threads_oversubscribe);
  const api::RunConfig legacy = api::run_config_from_json_string(
      R"({"trainer": {"epochs": 2, "inner_chunk_rows": 8}})");
  EXPECT_EQ(legacy.trainer.threads, 1);
}

TEST(ConfigJson, CacheStalenessSurvivesRoundTripWithoutCacheMb) {
  // Regression: the writer gated cache_staleness on cache_mb > 0, so a
  // config staging staleness ahead of enabling the cache (cache_mb == 0,
  // cache_staleness != 0) silently lost the staleness on round-trip —
  // replaying the artifact with the cache turned on then ran a different
  // (always-fresh) policy than the original config described.
  api::RunConfig cfg;
  cfg.comm.cache_staleness = 3;
  cfg.trainer.cache_staleness = 5;
  const api::RunConfig parsed =
      api::run_config_from_json_string(api::to_json_string(cfg));
  EXPECT_EQ(parsed.comm.cache_mb, 0);
  EXPECT_EQ(parsed.comm.cache_staleness, 3);
  EXPECT_EQ(parsed.trainer.cache_mb, 0);
  EXPECT_EQ(parsed.trainer.cache_staleness, 5);

  // And with the cache enabled both knobs still round-trip.
  cfg.comm.cache_mb = 8;
  cfg.trainer.cache_mb = 16;
  const api::RunConfig enabled =
      api::run_config_from_json_string(api::to_json_string(cfg));
  expect_configs_equal(cfg, enabled);
}

TEST(ConfigJson, LegacyOverlapBoolStillParses) {
  // PR 2/3 artifacts serialized the knob as a bool: true was the (then
  // only) bulk pipeline, false was blocking. Both spellings must keep
  // loading, in both the comm block and the trainer block.
  const api::RunConfig on = api::run_config_from_json_string(
      R"({"comm": {"overlap": true}, "trainer": {"overlap": true}})");
  EXPECT_EQ(on.comm.overlap, core::OverlapMode::kBulk);
  EXPECT_EQ(on.trainer.overlap, core::OverlapMode::kBulk);
  const api::RunConfig off = api::run_config_from_json_string(
      R"({"comm": {"overlap": false}, "trainer": {"overlap": false}})");
  EXPECT_EQ(off.comm.overlap, core::OverlapMode::kBlocking);
  EXPECT_EQ(off.trainer.overlap, core::OverlapMode::kBlocking);
}

TEST(ConfigJson, OverlapModeStringsParse) {
  const api::RunConfig cfg = api::run_config_from_json_string(
      R"({"comm": {"overlap": "stream"}, "trainer": {"overlap": "bulk"}})");
  EXPECT_EQ(cfg.comm.overlap, core::OverlapMode::kStream);
  EXPECT_EQ(cfg.trainer.overlap, core::OverlapMode::kBulk);
  EXPECT_THROW((void)api::run_config_from_json_string(
                   R"({"comm": {"overlap": "warp"}})"),
               CheckError);
}

TEST(ReportJson, PreTailArtifactsStillParse) {
  // Artifacts written before EpochBreakdown::comm_tail_s existed have no
  // such key; the reader must default it to 0 rather than throw.
  json::Value v = api::to_json(sample_report());
  json::Value epochs = json::Value::array();
  for (std::size_t i = 0; i < v.at("epochs").size(); ++i) {
    json::Value e = json::Value::object();
    for (const auto& [key, val] : v.at("epochs")[i].members())
      if (key != "comm_tail_s") e.set(key, val);
    epochs.push_back(std::move(e));
  }
  v.set("epochs", std::move(epochs));
  const api::RunReport parsed = api::run_report_from_json(v);
  for (const auto& e : parsed.epochs) EXPECT_EQ(e.comm_tail_s, 0.0);
}

TEST(ConfigJson, ReplayReproducesARunExactly) {
  // The artifact promise: a config serialized next to a report replays to
  // the identical run (observer aside, everything that matters round-trips).
  api::RunConfig cfg;
  SyntheticSpec spec;
  spec.n = 600;
  spec.m = 5000;
  spec.communities = 4;
  spec.num_classes = 4;
  spec.feat_dim = 8;
  spec.seed = 33;
  cfg.dataset.custom = spec;
  cfg.partition.nparts = 3;
  cfg.trainer.num_layers = 2;
  cfg.trainer.hidden = 16;
  cfg.trainer.epochs = 4;
  cfg.trainer.sample_rate = 0.5f;
  cfg.comm.overlap = core::OverlapMode::kStream;

  const api::RunReport first = api::run(cfg);
  const api::RunConfig replayed =
      api::run_config_from_json_string(api::to_json_string(cfg));
  const api::RunReport second = api::run(replayed);
  EXPECT_EQ(first.train_loss, second.train_loss);
  EXPECT_EQ(first.final_val, second.final_val);
  EXPECT_EQ(first.final_test, second.final_test);
}

TEST(Json, ParserRejectsGarbage) {
  EXPECT_THROW(json::Value::parse("{\"a\": }"), CheckError);
  EXPECT_THROW(json::Value::parse("[1, 2"), CheckError);
  EXPECT_THROW(json::Value::parse("{} trailing"), CheckError);
  EXPECT_THROW(json::Value::parse("nul"), CheckError);
}

TEST(Json, EscapesRoundTrip) {
  json::Value v = json::Value::object();
  v.set("k", "line\nbreak\ttab \"quote\" back\\slash \x01 control");
  const json::Value parsed = json::Value::parse(v.dump());
  EXPECT_EQ(parsed.at("k").as_string(), v.at("k").as_string());
}

} // namespace
} // namespace bnsgcn
