#!/usr/bin/env bash
# Tier-1 verify: docs link check, then configure, build everything
# (library, 21 benches, 4 examples, 27 test binaries) and run the full
# test suite — including test_overlap, the blocking-vs-overlapped
# bit-parity gate of the async fabric (run once more by name so a
# regression there is called out explicitly).
set -euo pipefail

cd "$(dirname "$0")/.."

./ci/check_docs_links.sh

GENERATOR=()
if command -v ninja >/dev/null 2>&1; then
  GENERATOR=(-G Ninja)
fi

cmake -B build -S . "${GENERATOR[@]}"
cmake --build build -j
ctest --test-dir build --output-on-failure -j "$(nproc)"
ctest --test-dir build --output-on-failure -R test_overlap
