// Table 12: the boundary-node sampler's overhead (sampling time / epoch
// time) across p and partition counts, against the per-batch samplers of
// the minibatch methods.
// Expected shape: BNS overhead is 0% at p∈{0,1} and a few percent
// otherwise; minibatch samplers burn ~20%+ of training time.

#include "baselines/minibatch.hpp"

#include "common.hpp"

int main() {
  using namespace bnsgcn;
  bench::print_banner("Table 12", "sampling overhead (% of training time)");

  const Dataset ds = make_synthetic(reddit_like(0.4 * bench::bench_scale()));
  auto cfg = bench::reddit_config();
  cfg.epochs = 8;

  std::printf("minibatch samplers (sampling / total wall time):\n");
  baselines::BaselineConfig bcfg;
  bcfg.num_layers = cfg.num_layers;
  bcfg.hidden = cfg.hidden;
  bcfg.epochs = 5;
  bcfg.seed = 3;
  bcfg.batch_size = std::max<NodeId>(256, ds.num_nodes() / 12);
  bcfg.batches_per_epoch = 6;
  std::printf("  %-22s %6.1f%%\n", "Node (GraphSAGE)",
              100.0 * baselines::train_neighbor_sampling(ds, bcfg)
                          .sampler_overhead());
  std::printf("  %-22s %6.1f%%\n", "Layer (LADIES)",
              100.0 * baselines::train_layer_sampling(ds, bcfg, true)
                          .sampler_overhead());
  std::printf("  %-22s %6.1f%%\n", "Subgraph (GraphSAINT)",
              100.0 * baselines::train_graph_saint(ds, bcfg)
                          .sampler_overhead());

  std::printf("\nBNS-GCN sampler (sampling / simulated epoch time):\n");
  std::printf("  %-8s", "p \\ m");
  for (const PartId m : {2, 4, 8}) std::printf(" %8d", m);
  std::printf("\n");
  for (const float p : {1.0f, 0.1f, 0.01f, 0.0f}) {
    std::printf("  %-8.2f", p);
    for (const PartId m : {2, 4, 8}) {
      const auto part = metis_like(ds.graph, m);
      auto c = cfg;
      c.sample_rate = p;
      const auto r = core::BnsTrainer(ds, part, c).train();
      std::printf(" %7.1f%%", 100.0 * r.sampler_overhead());
    }
    std::printf("\n");
  }
  std::printf("\npaper shape check: BNS 0%% at p=1/p=0, 0-7%% otherwise; "
              "minibatch samplers ~20%%+.\n");
  return 0;
}
