#include "core/trainer.hpp"

#include <algorithm>
#include <exception>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>

#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"
#include "core/halo_exchange.hpp"
#include "nn/adam.hpp"
#include "nn/gat_layer.hpp"
#include "nn/loss.hpp"
#include "nn/sage_layer.hpp"
#include "tensor/ops.hpp"

namespace bnsgcn::core {

namespace {

using comm::TrafficClass;

/// Layer input dimensions of the configured stack (for Eq. 4).
std::vector<std::int64_t> layer_input_dims(const TrainerConfig& cfg,
                                           std::int64_t feat_dim) {
  std::vector<std::int64_t> dims;
  dims.push_back(feat_dim);
  for (int l = 1; l < cfg.num_layers; ++l) dims.push_back(cfg.hidden);
  return dims;
}

} // namespace

std::vector<std::unique_ptr<nn::Layer>> build_model(const TrainerConfig& cfg,
                                                    std::int64_t feat_dim,
                                                    int num_classes,
                                                    PartId rank) {
  // Every rank seeds an identical stream so replicated weights start equal;
  // dropout streams are split per (rank, layer) so masks are independent.
  Rng init_rng(cfg.seed);
  Rng dropout_base(cfg.seed ^ 0x5EEDFACEULL);
  std::vector<std::unique_ptr<nn::Layer>> layers;
  for (int l = 0; l < cfg.num_layers; ++l) {
    const std::int64_t d_in = (l == 0) ? feat_dim : cfg.hidden;
    const std::int64_t d_out =
        (l == cfg.num_layers - 1) ? num_classes : cfg.hidden;
    const bool last = (l == cfg.num_layers - 1);
    if (cfg.model == ModelKind::kSage) {
      auto layer = std::make_unique<nn::SageLayer>(
          d_in, d_out,
          nn::SageLayer::Options{.relu = !last,
                                 .dropout = last ? 0.0f : cfg.dropout},
          init_rng);
      layer->set_dropout_rng(dropout_base.split(
          static_cast<std::uint64_t>(rank) * 131 + static_cast<std::uint64_t>(l)));
      layers.push_back(std::move(layer));
    } else {
      auto layer = std::make_unique<nn::GatLayer>(
          d_in, d_out,
          nn::GatLayer::Options{.heads = last ? 1 : cfg.gat_heads,
                                .relu = !last,
                                .dropout = last ? 0.0f : cfg.dropout},
          init_rng);
      layer->set_dropout_rng(dropout_base.split(
          static_cast<std::uint64_t>(rank) * 131 + static_cast<std::uint64_t>(l)));
      layers.push_back(std::move(layer));
    }
  }
  return layers;
}

namespace {

/// Delta of two traffic snapshots.
comm::RankStats diff_stats(const comm::RankStats& now,
                           const comm::RankStats& before) {
  comm::RankStats d;
  for (int c = 0; c < static_cast<int>(TrafficClass::kCount); ++c) {
    d.tx_bytes[c] = now.tx_bytes[c] - before.tx_bytes[c];
    d.rx_bytes[c] = now.rx_bytes[c] - before.rx_bytes[c];
    d.tx_msgs[c] = now.tx_msgs[c] - before.tx_msgs[c];
    d.rx_msgs[c] = now.rx_msgs[c] - before.rx_msgs[c];
  }
  return d;
}

/// Per-rank training state and logic. One instance per rank — a thread on
/// the mailbox fabric, a whole OS process on a socket fabric. Cross-rank
/// reductions all go through the endpoint's collectives (no shared
/// memory), so the same code runs unchanged in both runtimes.
class RankWorker {
 public:
  RankWorker(const Dataset& ds, const TrainerConfig& cfg,
             const LocalGraph& lg, comm::Endpoint& ep, TrainResult& result)
      : ds_(ds), cfg_(cfg), lg_(lg), ep_(ep), result_(result),
        measured_(ep.timing() == comm::TimingSource::kMeasured) {
    // The constructor runs on the rank's own thread (a std::thread under
    // train(), the forked process's main thread under train_rank), so the
    // thread-local kernel budget set here covers every op this rank runs.
    common::set_ops_threads(
        cfg_.threads_oversubscribe
            ? cfg_.threads
            : common::clamp_rank_threads(cfg_.threads, ep_.nranks()));
    const NodeId n_in = lg_.n_inner();
    x_local_ = slice_rows(ds.features, lg_.inner_global);
    if (ds.multilabel) {
      targets_local_ = slice_rows(ds.multilabels, lg_.inner_global);
    } else {
      labels_local_.resize(static_cast<std::size_t>(n_in));
      for (NodeId i = 0; i < n_in; ++i)
        labels_local_[static_cast<std::size_t>(i)] =
            ds.labels[static_cast<std::size_t>(
                lg_.inner_global[static_cast<std::size_t>(i)])];
    }
    train_rows_ = local_rows_of(lg_, ds.train_nodes);
    val_rows_ = local_rows_of(lg_, ds.val_nodes);
    test_rows_ = local_rows_of(lg_, ds.test_nodes);

    layers_ = build_model(cfg_, ds.feat_dim(), ds.num_classes, ep_.rank());
    // The split-phase schedule is the only training path when every layer
    // supports it — SAGE and GAT both do (GAT's attention waits for the
    // finish call, but its per-head linear transforms phase-split); a
    // custom layer without split support falls back to the assembled
    // exchange.
    use_phased_ = std::all_of(
        layers_.begin(), layers_.end(),
        [](const auto& l) { return l->supports_phased(); });
    std::vector<Matrix*> params, grads;
    for (auto& l : layers_) {
      for (Matrix* p : l->params()) params.push_back(p);
      for (Matrix* g : l->grads()) grads.push_back(g);
    }
    adam_.emplace(std::move(params), std::move(grads),
                  nn::Adam::Options{.lr = cfg_.lr});

    BoundarySampler::Options so;
    so.variant = cfg_.variant;
    so.rate = cfg_.sample_rate;
    // GAT renormalizes attention over the kept neighbors — no 1/p scaling.
    so.unbiased_scaling =
        cfg_.unbiased_scaling && cfg_.model == ModelKind::kSage;
    so.seed = Rng(cfg_.seed ^ 0xB01DFACEULL)
                  .split(static_cast<std::uint64_t>(ep_.rank()))
                  .next_u64();
    sampler_.emplace(lg_, so);
    full_plan_ = sampler_->full_plan();

    // The boundary-exchange engine (post/fold pair, fold driver, halo
    // cache) is shared verbatim with the serving path — see
    // core/halo_exchange.hpp.
    hx_.emplace(ep_, HaloExchanger::Options{.cost = cfg_.cost,
                                            .cache_mb = cfg_.cache_mb,
                                            .cache_staleness =
                                                cfg_.cache_staleness,
                                            .num_layers = cfg_.num_layers,
                                            .feat_dim = ds.feat_dim(),
                                            .hidden = cfg_.hidden});

    const float n_train_global = static_cast<float>(ds.train_nodes.size());
    inv_total_ = ds.multilabel
                     ? 1.0f / (n_train_global *
                               static_cast<float>(ds.num_classes))
                     : 1.0f / n_train_global;
  }

  void run() {
    if (ep_.rank() == 0) {
      result_.train_loss.reserve(static_cast<std::size_t>(cfg_.epochs));
      result_.epochs.reserve(static_cast<std::size_t>(cfg_.epochs));
    }
    // Stats are written only by their own rank (tx at post, rx at receive
    // completion), so the snapshot needs no cross-rank ordering.
    snap_ = ep_.stats();

    for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
      const double loss = run_train_epoch(epoch);
      if (ep_.rank() == 0) result_.train_loss.push_back(loss);

      const bool last = (epoch == cfg_.epochs - 1);
      bool evaluated = false;
      if (last || (cfg_.eval_every > 0 && (epoch + 1) % cfg_.eval_every == 0)) {
        evaluated = true;
        const auto [val, test] = evaluate();
        // Exclude evaluation traffic from the next epoch's breakdown. All
        // of this rank's eval receives completed inside evaluate() (its
        // exchanges are blocking), so a bare re-snapshot suffices.
        snap_ = ep_.stats();
        if (ep_.rank() == 0) {
          result_.curve.push_back(
              {.epoch = epoch + 1, .val = val, .test = test,
               .train_loss = loss});
          if (last) {
            result_.final_val = val;
            result_.final_test = test;
          }
        }
      }
      // Stream the finished epoch to the observer. Only rank 0 calls it
      // (other ranks may already be training the next epoch), so the
      // callback needs no cross-rank synchronization.
      if (ep_.rank() == 0 && cfg_.observer) {
        EpochSnapshot snap;
        snap.epoch = epoch + 1;
        snap.train_loss = loss;
        snap.breakdown = result_.epochs.back();
        snap.eval = evaluated ? &result_.curve.back() : nullptr;
        cfg_.observer(snap);
      }
    }

    // Serving hook (api::serve): rank 0 snapshots the trained parameters
    // after the last epoch. Weights are replicated and kept in sync by the
    // gradient allreduce, so one rank's copy is every rank's copy — and
    // they are bit-identical across transports and overlap modes, so a
    // snapshot trained on the mailbox serves on any fabric.
    if (ep_.rank() == 0 && cfg_.capture_weights) {
      cfg_.capture_weights->params.clear();
      for (auto& l : layers_)
        for (Matrix* p : l->params())
          cfg_.capture_weights->params.push_back(*p);
    }
  }

 private:
  int next_tag() { return tag_seq_++; }


  /// ROC proxy: stage a layer activation block through the host, paying
  /// PCIe-class traffic in both directions.
  void host_swap(const Matrix& block) {
    swap_staging_ = block; // real copy, as ROC pays a real transfer
    auto& st = ep_.stats();
    st.tx_bytes[static_cast<int>(TrafficClass::kSwap)] += block.bytes();
    st.rx_bytes[static_cast<int>(TrafficClass::kSwap)] += block.bytes();
    ++st.tx_msgs[static_cast<int>(TrafficClass::kSwap)];
    ++st.rx_msgs[static_cast<int>(TrafficClass::kSwap)];
  }

  double run_train_epoch(int epoch) {
    // Snapshots chain across epochs: a fast peer may begin its next epoch's
    // sends before this rank reads a fresh snapshot, so "now" is never read
    // at epoch *start* — each delta runs from the previous epoch's end.
    const comm::RankStats before = snap_;
    Accumulator compute_acc, sample_acc;
    // Halo-cache epoch context: the directories age entries by epoch
    // index, and the per-epoch counters reset here and ride the breakdown
    // allgather below.
    hx_->begin_epoch(epoch);

    // ---- Sampling (Algorithm 1 lines 4-7) -----------------------------
    EpochPlan sampled_plan;
    const EpochPlan* plan_ptr = nullptr;
    {
      ScopedTimer t(sample_acc);
      if (cfg_.variant == SamplingVariant::kBns && cfg_.sample_rate >= 1.0f) {
        plan_ptr = &full_plan_; // vanilla partition parallelism: no overhead
      } else if (cfg_.variant == SamplingVariant::kBns &&
                 cfg_.sample_rate <= 0.0f) {
        sampled_plan = sampler_->empty_plan();
        plan_ptr = &sampled_plan;
      } else {
        sampled_plan = sampler_->sample_epoch(ep_, next_tag());
        plan_ptr = &sampled_plan;
      }
    }
    const EpochPlan& plan = *plan_ptr;
    kept_halo_accum_ += plan.n_kept_halo;
    ++epochs_run_;

    // Test-only fault injection (TrainerConfig::fail_rank): die before the
    // first forward exchange, leaving peers blocked on sends that will
    // never come — the fabric's shutdown path must unwind them.
    if (epoch == 0 && cfg_.fail_rank == ep_.rank())
      throw std::runtime_error("injected failure: rank " +
                               std::to_string(ep_.rank()));

    // ---- Forward (Algorithm 1 lines 8-11) -----------------------------
    // Phased path (SAGE and GAT): post the exchange, run the
    // halo-independent phase in row chunks while rows are in flight —
    // polling the completion set between chunks, so in stream mode peer
    // folds interleave mid-F1 — then drain the remaining peers through
    // the fold driver. Blocking waits right after posting, bulk waits at
    // drain time, stream polls. Identical instruction stream in all
    // three; only the waits (and therefore the overlap window) move.
    const OverlapMode mode = cfg_.overlap;
    const bool stream = mode == OverlapMode::kStream;
    const int L = cfg_.num_layers;
    double overlap_acc = 0.0;
    double tail_acc = 0.0;
    // Measured counterparts (socket fabrics): per-exchange wall-clock span
    // and the blocked share of it, folded into the breakdown instead of
    // the cost-model projections when ep_.timing() is kMeasured.
    double meas_comm = 0.0, meas_overlap = 0.0, meas_tail = 0.0;
    // Every layer of the epoch folds through the same compacted adjacency,
    // so the slot→dst reverse incidence is built once — inside layer 0's
    // in-flight window — and handed to each layer's phase F2a.
    nn::HaloIncidence halo_inc;
    std::vector<Matrix> h(static_cast<std::size_t>(L) + 1);
    h[0] = x_local_;
    for (int l = 0; l < L; ++l) {
      const int tag = next_tag();
      auto& layer = *layers_[static_cast<std::size_t>(l)];
      if (use_phased_) {
        Matrix& h_in = h[static_cast<std::size_t>(l)];
        PendingExchange px = hx_->post_forward(h_in, plan, tag, l);
        tail_acc += px.tail_s;
        if (mode == OverlapMode::kBlocking) {
          Stopwatch w;
          px.recvs.wait_all();
          px.wait_s += w.elapsed_s();
          px.meas_span_s = px.clock.elapsed_s();
        }
        if (cfg_.simulate_host_swap) host_swap(h_in);
        // The in-flight window is accumulated phase by phase (not wall
        // time across the loop) so interleaved fold work is not counted
        // twice — the driver tracks the fold share separately.
        Accumulator window_acc;
        {
          ScopedTimer t(compute_acc);
          ScopedTimer w(window_acc);
          layer.forward_inner_begin(plan.adj, h_in, /*training=*/true);
          if (l == 0) halo_inc.build(plan.adj, plan.adj.n_dst);
          layer.forward_halo_begin(plan.adj, halo_inc);
        }
        FoldDriver fold(px, stream);
        auto apply = hx_->make_forward_fold(px, plan, layer, plan.halo_scale,
                                            h_in.cols());
        const NodeId n_dst = plan.adj.n_dst;
        const NodeId step =
            cfg_.inner_chunk_rows > 0 ? cfg_.inner_chunk_rows : n_dst;
        for (NodeId r0 = 0; r0 < n_dst; r0 += step) {
          const NodeId r1 = std::min<NodeId>(r0 + step, n_dst);
          {
            ScopedTimer t(compute_acc);
            ScopedTimer w(window_acc);
            layer.forward_inner_chunk(plan.adj, r0, r1);
          }
          fold.poll(apply, compute_acc);
        }
        fold.drain(apply, compute_acc);
        if (mode != OverlapMode::kBlocking)
          overlap_acc +=
              std::min(px.sim_s, window_acc.seconds() + fold.window_s());
        meas_comm += px.meas_span_s;
        meas_tail += px.meas_span_s;
        meas_overlap +=
            std::clamp(px.meas_span_s - px.wait_s, 0.0, px.meas_span_s);
        {
          ScopedTimer t(compute_acc);
          h[static_cast<std::size_t>(l) + 1] =
              layer.forward_halo_finish(plan.adj, lg_.inv_full_degree);
        }
      } else {
        Matrix feats =
            hx_->exchange_forward(h[static_cast<std::size_t>(l)],
                                  lg_.n_inner(), plan, plan.halo_scale, tag, l);
        if (cfg_.simulate_host_swap) host_swap(h[static_cast<std::size_t>(l)]);
        ScopedTimer t(compute_acc);
        h[static_cast<std::size_t>(l) + 1] = layer.forward(
            plan.adj, feats, lg_.inv_full_degree, /*training=*/true);
      }
      if (cfg_.simulate_host_swap)
        host_swap(h[static_cast<std::size_t>(l) + 1]);
    }

    // ---- Loss (line 12) ------------------------------------------------
    Matrix dlogits;
    double local_loss = 0.0;
    {
      ScopedTimer t(compute_acc);
      const Matrix& logits = h[static_cast<std::size_t>(L)];
      local_loss =
          ds_.multilabel
              ? nn::sigmoid_bce(logits, targets_local_, train_rows_,
                                inv_total_, dlogits)
              : nn::softmax_xent(logits, labels_local_, train_rows_,
                                 inv_total_, dlogits);
    }

    // ---- Backward (line 13) ---------------------------------------------
    // Cross-layer pipeline: layer l's parameter-gradient phase (B3 —
    // nothing reads dW/db before the epoch-end allreduce) is deferred out
    // of its own exchange window and executed while layer l−1's exchange
    // is in flight, so backward work of one layer hides the wire time of
    // the next. The deferral happens in every mode (the values cannot
    // change — each layer's accumulators are disjoint), so all three
    // schedules keep executing the identical fp instruction stream; only
    // stream/bulk credit the extra in-flight window.
    for (auto& l : layers_) l->zero_grads();
    Matrix grad = std::move(dlogits);
    int deferred_params = -1; // layer with its B3 phase still pending
    for (int l = L - 1; l >= 0; --l) {
      auto& layer = *layers_[static_cast<std::size_t>(l)];
      if (l == 0) {
        // Input-feature gradients are not needed; run the plain backward
        // for the parameter gradients only, then settle the last deferred
        // B3 (no exchange is left to hide it behind).
        ScopedTimer t(compute_acc);
        (void)layer.backward(plan.adj, grad, lg_.inv_full_degree);
        if (deferred_params >= 0) {
          layers_[static_cast<std::size_t>(deferred_params)]->backward_params(
              plan.adj);
          deferred_params = -1;
        }
        break;
      }
      const int tag = next_tag();
      if (use_phased_) {
        // The halo-gradient rows leave for their owners first; the
        // inner-gradient block — and the layer above's deferred
        // parameter gradients — are computed while they (and the peers'
        // contributions to our rows) are on the wire, then each peer's
        // contribution is scatter-added as it lands (fixed peer order).
        Matrix dhalo;
        {
          ScopedTimer t(compute_acc);
          dhalo = layer.backward_halo(plan.adj, grad, lg_.inv_full_degree);
        }
        PendingExchange px = hx_->post_backward(dhalo, /*halo_row0=*/0, plan,
                                                plan.halo_scale, tag);
        tail_acc += px.tail_s;
        if (mode == OverlapMode::kBlocking) {
          Stopwatch w;
          px.recvs.wait_all();
          px.wait_s += w.elapsed_s();
          px.meas_span_s = px.clock.elapsed_s();
        }
        Accumulator window_acc;
        Matrix dinner;
        {
          ScopedTimer t(compute_acc);
          ScopedTimer w(window_acc);
          dinner = layer.backward_inner(plan.adj, lg_.inv_full_degree);
        }
        FoldDriver fold(px, stream);
        auto apply = hx_->make_backward_fold(px, plan, dinner);
        fold.poll(apply, compute_acc);
        if (deferred_params >= 0) {
          ScopedTimer t(compute_acc);
          ScopedTimer w(window_acc);
          layers_[static_cast<std::size_t>(deferred_params)]->backward_params(
              plan.adj);
        }
        deferred_params = l;
        fold.drain(apply, compute_acc);
        if (mode != OverlapMode::kBlocking)
          overlap_acc +=
              std::min(px.sim_s, window_acc.seconds() + fold.window_s());
        meas_comm += px.meas_span_s;
        meas_tail += px.meas_span_s;
        meas_overlap +=
            std::clamp(px.meas_span_s - px.wait_s, 0.0, px.meas_span_s);
        grad = std::move(dinner);
      } else {
        Matrix dfeats;
        {
          ScopedTimer t(compute_acc);
          dfeats = layer.backward(plan.adj, grad, lg_.inv_full_degree);
        }
        grad = hx_->exchange_backward(dfeats, lg_.n_inner(), plan,
                                      plan.halo_scale, tag);
      }
    }

    // ---- Gradient allreduce + update (lines 14-15) ----------------------
    const comm::RankStats before_reduce = ep_.stats();
    auto flat = nn::flatten_grads(layers_);
    Stopwatch reduce_sw;
    ep_.allreduce_sum(flat, TrafficClass::kGradient);
    const double reduce_meas_s = reduce_sw.elapsed_s();
    nn::apply_flat_grads(flat, layers_);
    {
      ScopedTimer t(compute_acc);
      adam_->step();
    }

    const double loss_total = ep_.allreduce_sum_scalar(local_loss);

    // ---- Per-epoch accounting -------------------------------------------
    const comm::RankStats after = ep_.stats();
    snap_ = after;
    const comm::RankStats delta = diff_stats(after, before);
    const comm::RankStats delta_reduce = diff_stats(after, before_reduce);
    double comm_s, overlap_s, tail_s, reduce_s;
    if (measured_) {
      comm_s = meas_comm;
      // Clamped so the documented overlap_s <= comm_s invariant holds.
      overlap_s = std::min(meas_overlap, comm_s);
      tail_s = meas_tail;
      reduce_s = reduce_meas_s;
    } else {
      comm_s = delta.sim_seconds(TrafficClass::kFeature, cfg_.cost);
      // Per-exchange hidden time, clamped so the documented overlap_s <=
      // comm_s invariant holds even when the per-exchange max(tx, rx)
      // sums above the epoch-level max.
      overlap_s = std::min(overlap_acc, comm_s);
      tail_s = tail_acc;
      reduce_s = delta_reduce.sim_seconds(TrafficClass::kGradient, cfg_.cost);
    }
    // The breakdown reduction rides an (unaccounted) allgather instead of
    // shared-memory scratch, so it works across OS processes. Byte counts
    // travel as doubles: per-epoch volumes are integers far below 2^53,
    // so the round trip is exact.
    const std::vector<double> local = {
        compute_acc.seconds(),
        sample_acc.seconds(),
        comm_s,
        overlap_s,
        tail_s,
        reduce_s,
        delta.sim_seconds(TrafficClass::kSwap, cfg_.cost),
        static_cast<double>(
            delta.rx_bytes[static_cast<int>(TrafficClass::kFeature)]),
        static_cast<double>(
            delta.rx_bytes[static_cast<int>(TrafficClass::kGradient)]),
        static_cast<double>(
            delta.rx_bytes[static_cast<int>(TrafficClass::kControl)]),
        static_cast<double>(hx_->cache_hits()),
        static_cast<double>(hx_->cache_misses()),
        static_cast<double>(hx_->bytes_saved())};
    const auto slots = ep_.allgather_doubles(local);
    if (ep_.rank() == 0) {
      EpochBreakdown eb;
      eb.timing = measured_ ? comm::TimingSource::kMeasured
                            : comm::TimingSource::kSimulated;
      const PartId m = ep_.nranks();
      // Bulk-synchronous convention: costs take the max over ranks (the
      // slowest rank gates the epoch); the overlap saving takes the min so
      // the reported hidden time is one every rank actually achieved.
      eb.overlap_s = slots[0][3];
      double feature_rx = 0.0, grad_rx = 0.0, control_rx = 0.0;
      double cache_hits = 0.0, cache_misses = 0.0, saved = 0.0;
      for (PartId i = 0; i < m; ++i) {
        const auto& s = slots[static_cast<std::size_t>(i)];
        eb.compute_s = std::max(eb.compute_s, s[0]);
        eb.sample_s = std::max(eb.sample_s, s[1]);
        eb.comm_s = std::max(eb.comm_s, s[2]);
        eb.overlap_s = std::min(eb.overlap_s, s[3]);
        eb.comm_tail_s = std::max(eb.comm_tail_s, s[4]);
        eb.reduce_s = std::max(eb.reduce_s, s[5]);
        eb.swap_s = std::max(eb.swap_s, s[6]);
        feature_rx += s[7];
        grad_rx += s[8];
        control_rx += s[9];
        cache_hits += s[10];
        cache_misses += s[11];
        saved += s[12];
      }
      eb.feature_bytes = static_cast<std::int64_t>(feature_rx);
      eb.grad_bytes = static_cast<std::int64_t>(grad_rx);
      eb.control_bytes = static_cast<std::int64_t>(control_rx);
      eb.cache_hit_rows = static_cast<std::int64_t>(cache_hits);
      eb.cache_miss_rows = static_cast<std::int64_t>(cache_misses);
      eb.bytes_saved = static_cast<std::int64_t>(saved);
      result_.epochs.push_back(eb);
    }
    return loss_total;
  }

  /// Full-exchange, no-dropout forward; distributed metric reduction.
  std::pair<double, double> evaluate() {
    const int L = cfg_.num_layers;
    Matrix h = x_local_;
    for (int l = 0; l < L; ++l) {
      const int tag = next_tag();
      Matrix feats = hx_->exchange_forward(h, lg_.n_inner(), full_plan_, 1.0f,
                                           tag, /*layer=*/-1);
      h = layers_[static_cast<std::size_t>(l)]->forward(
          full_plan_.adj, feats, lg_.inv_full_degree, /*training=*/false);
    }
    if (ds_.multilabel) {
      const auto v = nn::f1_counts(h, targets_local_, val_rows_);
      const auto t = nn::f1_counts(h, targets_local_, test_rows_);
      const double vtp = ep_.allreduce_sum_scalar(static_cast<double>(v.tp));
      const double vfp = ep_.allreduce_sum_scalar(static_cast<double>(v.fp));
      const double vfn = ep_.allreduce_sum_scalar(static_cast<double>(v.fn));
      const double ttp = ep_.allreduce_sum_scalar(static_cast<double>(t.tp));
      const double tfp = ep_.allreduce_sum_scalar(static_cast<double>(t.fp));
      const double tfn = ep_.allreduce_sum_scalar(static_cast<double>(t.fn));
      const auto f1 = [](double tp, double fp, double fn) {
        const double denom = 2 * tp + fp + fn;
        return denom == 0.0 ? 0.0 : 2.0 * tp / denom;
      };
      return {f1(vtp, vfp, vfn), f1(ttp, tfp, tfn)};
    }
    const auto [vc, vt] = nn::accuracy_counts(h, labels_local_, val_rows_);
    const auto [tc, tt] = nn::accuracy_counts(h, labels_local_, test_rows_);
    const double val_correct = ep_.allreduce_sum_scalar(static_cast<double>(vc));
    const double val_total = ep_.allreduce_sum_scalar(static_cast<double>(vt));
    const double test_correct = ep_.allreduce_sum_scalar(static_cast<double>(tc));
    const double test_total = ep_.allreduce_sum_scalar(static_cast<double>(tt));
    return {val_total > 0 ? val_correct / val_total : 0.0,
            test_total > 0 ? test_correct / test_total : 0.0};
  }

  const Dataset& ds_;
  const TrainerConfig& cfg_;
  const LocalGraph& lg_;
  comm::Endpoint& ep_;
  TrainResult& result_;
  bool measured_; // ep_.timing() == kMeasured (socket fabrics)

  Matrix x_local_;
  std::vector<int> labels_local_;
  Matrix targets_local_;
  std::vector<NodeId> train_rows_, val_rows_, test_rows_;
  std::vector<std::unique_ptr<nn::Layer>> layers_;
  std::optional<nn::Adam> adam_;
  std::optional<BoundarySampler> sampler_;
  EpochPlan full_plan_;
  std::optional<HaloExchanger> hx_; // shared boundary-exchange engine
  Matrix swap_staging_;
  bool use_phased_ = false;
  float inv_total_ = 1.0f;
  int tag_seq_ = 0;
  double kept_halo_accum_ = 0.0;
  int epochs_run_ = 0;
  comm::RankStats snap_;

 public:
  [[nodiscard]] double mean_kept_halo() const {
    return epochs_run_ > 0 ? kept_halo_accum_ / epochs_run_ : 0.0;
  }
};

} // namespace

EpochBreakdown mean_breakdown(std::span<const EpochBreakdown> epochs) {
  EpochBreakdown mean;
  if (epochs.empty()) return mean;
  for (const auto& e : epochs) {
    mean.compute_s += e.compute_s;
    mean.comm_s += e.comm_s;
    mean.reduce_s += e.reduce_s;
    mean.sample_s += e.sample_s;
    mean.swap_s += e.swap_s;
    mean.overlap_s += e.overlap_s;
    mean.comm_tail_s += e.comm_tail_s;
    mean.feature_bytes += e.feature_bytes;
    mean.grad_bytes += e.grad_bytes;
    mean.control_bytes += e.control_bytes;
    mean.cache_hit_rows += e.cache_hit_rows;
    mean.cache_miss_rows += e.cache_miss_rows;
    mean.bytes_saved += e.bytes_saved;
  }
  const auto n = static_cast<double>(epochs.size());
  mean.compute_s /= n;
  mean.comm_s /= n;
  mean.reduce_s /= n;
  mean.sample_s /= n;
  mean.swap_s /= n;
  mean.overlap_s /= n;
  mean.comm_tail_s /= n;
  mean.feature_bytes = static_cast<std::int64_t>(mean.feature_bytes / n);
  mean.grad_bytes = static_cast<std::int64_t>(mean.grad_bytes / n);
  mean.control_bytes = static_cast<std::int64_t>(mean.control_bytes / n);
  mean.cache_hit_rows = static_cast<std::int64_t>(mean.cache_hit_rows / n);
  mean.cache_miss_rows = static_cast<std::int64_t>(mean.cache_miss_rows / n);
  mean.bytes_saved = static_cast<std::int64_t>(mean.bytes_saved / n);
  return mean;
}

double sampler_overhead(std::span<const EpochBreakdown> epochs) {
  const auto mean = mean_breakdown(epochs);
  const double total = mean.total_s();
  return total > 0.0 ? mean.sample_s / total : 0.0;
}

double throughput_eps(std::span<const EpochBreakdown> epochs) {
  const double t = mean_breakdown(epochs).total_s();
  return t > 0.0 ? 1.0 / t : 0.0;
}

BnsTrainer::BnsTrainer(const Dataset& ds, const Partitioning& part,
                       TrainerConfig cfg)
    : ds_(ds), cfg_(cfg), part_(part) {
  BNSGCN_CHECK(cfg.num_layers >= 1);
  BNSGCN_CHECK(cfg.sample_rate >= 0.0f && cfg.sample_rate <= 1.0f);
  BNSGCN_CHECK(cfg.inner_chunk_rows >= 0);
  local_graphs_ = build_local_graphs(ds.graph, part_);
}

void BnsTrainer::finalize_rank(comm::Endpoint& ep, double mean_kept_halo,
                               TrainResult& result) const {
  // Memory report (Eq. 4): per rank, at the mean sampled halo and at full.
  // The kept-halo means travel over the fabric (every rank enters the
  // allgather; rank 0 builds the report), so the path is identical whether
  // the ranks are threads or processes.
  const auto kept = ep.allgather_doubles({mean_kept_halo});
  if (ep.rank() != 0) return;
  const PartId m = ep.nranks();
  const auto dims = layer_input_dims(cfg_, ds_.feat_dim());
  result.memory.model_bytes.assign(static_cast<std::size_t>(m), 0.0);
  result.memory.full_bytes.assign(static_cast<std::size_t>(m), 0);
  for (PartId r = 0; r < m; ++r) {
    const auto& lg = local_graphs_[static_cast<std::size_t>(r)];
    double model = 0.0;
    for (const std::int64_t d : dims) {
      model += (3.0 * lg.n_inner() + kept[static_cast<std::size_t>(r)][0]) *
               static_cast<double>(d) * static_cast<double>(sizeof(float));
    }
    result.memory.model_bytes[static_cast<std::size_t>(r)] = model;
    result.memory.full_bytes[static_cast<std::size_t>(r)] =
        MemoryModel::epoch_bytes(lg.n_inner(), lg.n_halo(), dims);
  }
}

TrainResult BnsTrainer::train_rank(comm::Fabric& fabric, PartId rank) {
  BNSGCN_CHECK(rank >= 0 && rank < part_.nparts &&
               fabric.nranks() == part_.nparts);
  TrainResult result;
  Stopwatch wall;
  RankWorker worker(ds_, cfg_, local_graphs_[static_cast<std::size_t>(rank)],
                    fabric.endpoint(rank), result);
  worker.run();
  finalize_rank(fabric.endpoint(rank), worker.mean_kept_halo(), result);
  result.wall_time_s = wall.elapsed_s();
  return result;
}

TrainResult BnsTrainer::train() {
  const PartId m = part_.nparts;
  comm::Fabric fabric(m, cfg_.cost);
  if (cfg_.fabric_shuffle_seed != 0)
    fabric.enable_delivery_shuffle(cfg_.fabric_shuffle_seed);
  TrainResult result;

  Stopwatch wall;
  // lint: allow(raw-thread) — rank runtime, one OS thread per simulated rank;
  // kernel-level parallelism inside each rank still goes through the pool.
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(m));
  threads.reserve(static_cast<std::size_t>(m));
  for (PartId r = 0; r < m; ++r) {
    threads.emplace_back([&, r] {
      try {
        RankWorker worker(ds_, cfg_,
                          local_graphs_[static_cast<std::size_t>(r)],
                          fabric.endpoint(r), result);
        worker.run();
        finalize_rank(fabric.endpoint(r), worker.mean_kept_halo(), result);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        // Tear the fabric down so peers blocked on this rank unwind with
        // ShutdownError instead of hanging (deadlock-free failure).
        fabric.shutdown(r);
      }
    });
  }
  for (auto& t : threads) t.join();
  // Rethrow the root cause: a ShutdownError is collateral of some other
  // rank's failure, so prefer any non-shutdown exception.
  std::exception_ptr first, root;
  for (const auto& e : errors) {
    if (!e) continue;
    if (!first) first = e;
    if (!root) {
      try {
        std::rethrow_exception(e);
      } catch (const comm::ShutdownError&) {
      } catch (...) {
        root = e;
      }
    }
  }
  if (root) std::rethrow_exception(root);
  if (first) std::rethrow_exception(first);
  result.wall_time_s = wall.elapsed_s();
  return result;
}

} // namespace bnsgcn::core
