#include <gtest/gtest.h>

#include "graph/csr.hpp"

namespace bnsgcn {
namespace {

TEST(CooBuilder, BuildsSymmetricGraph) {
  CooBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  const Csr g = b.build();
  g.validate();
  EXPECT_EQ(g.n, 4);
  EXPECT_EQ(g.num_arcs(), 4); // 2 undirected edges
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(2, 1));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.degree(1), 2);
  EXPECT_EQ(g.degree(3), 0);
}

TEST(CooBuilder, DeduplicatesEdges) {
  CooBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(0, 1);
  b.add_edge(1, 0);
  const Csr g = b.build();
  EXPECT_EQ(g.num_arcs(), 2);
}

TEST(CooBuilder, DropsSelfLoopsByDefault) {
  CooBuilder b(3);
  b.add_edge(1, 1);
  b.add_edge(0, 2);
  const Csr g = b.build();
  EXPECT_FALSE(g.has_edge(1, 1));
  EXPECT_EQ(g.num_arcs(), 2);
}

TEST(CooBuilder, KeepsSelfLoopsWhenAsked) {
  CooBuilder b(3);
  b.add_edge(1, 1);
  const Csr g = b.build({.symmetrize = true, .drop_self_loops = false});
  EXPECT_TRUE(g.has_edge(1, 1));
  EXPECT_EQ(g.num_arcs(), 1); // self loop stored once
}

TEST(CooBuilder, DirectedMode) {
  CooBuilder b(3);
  b.add_edge(0, 1);
  const Csr g = b.build({.symmetrize = false, .drop_self_loops = true});
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
}

TEST(CooBuilder, RejectsOutOfRange) {
  CooBuilder b(2);
  EXPECT_THROW(b.add_edge(0, 2), CheckError);
  EXPECT_THROW(b.add_edge(-1, 0), CheckError);
}

TEST(Csr, NeighborsSorted) {
  CooBuilder b(5);
  b.add_edge(2, 4);
  b.add_edge(2, 0);
  b.add_edge(2, 3);
  const Csr g = b.build();
  const auto nb = g.neighbors(2);
  ASSERT_EQ(nb.size(), 3u);
  EXPECT_EQ(nb[0], 0);
  EXPECT_EQ(nb[1], 3);
  EXPECT_EQ(nb[2], 4);
}

TEST(Csr, AverageDegree) {
  CooBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const Csr g = b.build();
  EXPECT_DOUBLE_EQ(g.average_degree(), 1.0);
}

TEST(InducedSubgraph, BasicTriangle) {
  CooBuilder b(5);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  b.add_edge(2, 3);
  b.add_edge(3, 4);
  const Csr g = b.build();
  const std::vector<NodeId> keep{0, 1, 2};
  const auto sub = induced_subgraph(g, keep);
  sub.adj.validate();
  EXPECT_EQ(sub.adj.n, 3);
  EXPECT_EQ(sub.adj.num_arcs(), 6); // triangle
  EXPECT_EQ(sub.local_to_global[0], 0);
}

TEST(InducedSubgraph, RemapsIdsWithArbitraryOrder) {
  CooBuilder b(4);
  b.add_edge(1, 3);
  const Csr g = b.build();
  const std::vector<NodeId> keep{3, 1}; // reversed order
  const auto sub = induced_subgraph(g, keep);
  sub.adj.validate();
  EXPECT_EQ(sub.adj.n, 2);
  EXPECT_TRUE(sub.adj.has_edge(0, 1)); // local 0=global 3, local 1=global 1
  EXPECT_EQ(sub.local_to_global[0], 3);
  EXPECT_EQ(sub.local_to_global[1], 1);
}

TEST(InducedSubgraph, ExcludesOutsideEdges) {
  CooBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  const Csr g = b.build();
  const std::vector<NodeId> keep{0, 1};
  const auto sub = induced_subgraph(g, keep);
  EXPECT_EQ(sub.adj.num_arcs(), 2); // only 0-1 survives
}

TEST(InducedSubgraph, DuplicateNodesRejected) {
  CooBuilder b(3);
  b.add_edge(0, 1);
  const Csr g = b.build();
  const std::vector<NodeId> keep{1, 1};
  EXPECT_THROW(induced_subgraph(g, keep), CheckError);
}

} // namespace
} // namespace bnsgcn
