// lint: allow(pragma-once) — fixture: annotated legacy include-guard style.
#ifndef BNSGCN_TESTS_LINT_FIXTURES_LEGACY_OK_HPP
#define BNSGCN_TESTS_LINT_FIXTURES_LEGACY_OK_HPP
#include <string>

using namespace std; // lint: allow(using-namespace-std) — fixture.

inline string whisper(const string& s) { return s + "..."; }

#endif
