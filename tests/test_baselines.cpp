#include <gtest/gtest.h>

#include "baselines/minibatch.hpp"
#include "graph/dataset.hpp"

namespace bnsgcn {
namespace {

Dataset easy_dataset(std::uint64_t seed = 3) {
  SyntheticSpec spec;
  spec.n = 1200;
  spec.m = 14000;
  spec.communities = 6;
  spec.num_classes = 6;
  spec.feat_dim = 16;
  spec.p_intra = 0.92;
  spec.feature_noise = 1.2;
  spec.seed = seed;
  return make_synthetic(spec);
}

baselines::BaselineConfig fast_config() {
  baselines::BaselineConfig cfg;
  cfg.num_layers = 2;
  cfg.hidden = 32;
  cfg.lr = 0.01f;
  cfg.epochs = 25;
  cfg.batches_per_epoch = 4;
  cfg.batch_size = 256;
  cfg.seed = 9;
  return cfg;
}

TEST(FullGraph, ConvergesOnEasyDataset) {
  const Dataset ds = easy_dataset();
  core::TrainerConfig cfg;
  cfg.num_layers = 2;
  cfg.hidden = 32;
  cfg.epochs = 30;
  cfg.lr = 0.01f;
  cfg.seed = 1;
  const auto result = baselines::train_full_graph(ds, cfg);
  EXPECT_GT(result.final_test, 0.75);
  EXPECT_LT(result.train_loss.back(), result.train_loss.front());
}

TEST(NeighborSampling, Converges) {
  const Dataset ds = easy_dataset(5);
  const auto result = baselines::train_neighbor_sampling(ds, fast_config());
  EXPECT_GT(result.final_test, 0.55);
  EXPECT_GT(result.sample_time_s, 0.0);
}

TEST(LayerSampling, FastGcnConverges) {
  const Dataset ds = easy_dataset(7);
  auto cfg = fast_config();
  cfg.layer_budget = 600;
  const auto result = baselines::train_layer_sampling(ds, cfg, false);
  EXPECT_GT(result.final_test, 0.45);
}

TEST(LayerSampling, LadiesConverges) {
  const Dataset ds = easy_dataset(7);
  auto cfg = fast_config();
  cfg.layer_budget = 600;
  const auto result = baselines::train_layer_sampling(ds, cfg, true);
  EXPECT_GT(result.final_test, 0.5);
}

TEST(LayerSampling, LadiesBeatsOrMatchesFastGcnLoss) {
  // Same budget: restricting the pool to the neighbor set cannot hurt the
  // estimator (Table 2 ordering), which shows up as faster loss descent.
  const Dataset ds = easy_dataset(11);
  auto cfg = fast_config();
  cfg.epochs = 15;
  cfg.layer_budget = 300;
  const auto fast = baselines::train_layer_sampling(ds, cfg, false);
  const auto ladies = baselines::train_layer_sampling(ds, cfg, true);
  EXPECT_LE(ladies.train_loss.back(), fast.train_loss.back() * 1.3);
}

TEST(ClusterGcn, Converges) {
  const Dataset ds = easy_dataset(13);
  auto cfg = fast_config();
  cfg.num_clusters = 12;
  cfg.clusters_per_batch = 3;
  const auto result = baselines::train_cluster_gcn(ds, cfg);
  EXPECT_GT(result.final_test, 0.55);
}

TEST(GraphSaint, Converges) {
  const Dataset ds = easy_dataset(17);
  auto cfg = fast_config();
  cfg.saint_budget = 500;
  const auto result = baselines::train_graph_saint(ds, cfg);
  EXPECT_GT(result.final_test, 0.5);
}

TEST(Baselines, MultilabelSupport) {
  SyntheticSpec spec;
  spec.n = 800;
  spec.m = 6000;
  spec.communities = 8;
  spec.num_classes = 8;
  spec.feat_dim = 16;
  spec.multilabel = true;
  spec.seed = 19;
  const Dataset ds = make_synthetic(spec);
  auto cfg = fast_config();
  cfg.epochs = 20;
  const auto result = baselines::train_neighbor_sampling(ds, cfg);
  EXPECT_GT(result.final_test, 0.3);
}

TEST(Baselines, TimersPopulated) {
  const Dataset ds = easy_dataset(23);
  auto cfg = fast_config();
  cfg.epochs = 5;
  const auto result = baselines::train_graph_saint(ds, cfg);
  EXPECT_GT(result.wall_time_s, 0.0);
  EXPECT_GT(result.epoch_time_s, 0.0);
  EXPECT_GE(result.sampler_overhead(), 0.0);
  EXPECT_LE(result.sampler_overhead(), 1.0);
}

} // namespace
} // namespace bnsgcn
