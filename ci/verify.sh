#!/usr/bin/env bash
# Tier-1 verify: docs link check, then configure, build everything
# (library, benches, examples, test binaries) and run the full test
# suite — including test_overlap, the blocking-vs-overlapped bit-parity
# gate of the async fabric (run once more by name so a regression there
# is called out explicitly) — then the artifact replay gate.
set -euo pipefail

cd "$(dirname "$0")/.."

./ci/check_docs_links.sh

GENERATOR=()
if command -v ninja >/dev/null 2>&1; then
  GENERATOR=(-G Ninja)
fi

cmake -B build -S . "${GENERATOR[@]}"
cmake --build build -j
ctest --test-dir build --output-on-failure -j "$(nproc)"
ctest --test-dir build --output-on-failure -R test_overlap

# Replay gate: every artifact row records its RunConfig; re-running one
# must reproduce the recorded deterministic metrics exactly
# (docs/BENCHMARKS.md "JSON artifact schema"). Record a small sweep, then
# replay its first row in a fresh process.
REPLAY_ARTIFACT=build/replay_gate_artifact.json
rm -f "$REPLAY_ARTIFACT"
./build/bench/bench_table13_choice_p --scale 0.2 --epochs 3 \
  --json "$REPLAY_ARTIFACT" > /dev/null
./build/bench/bench_replay "$REPLAY_ARTIFACT" --rows 1
