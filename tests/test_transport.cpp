// Socket transport unit tests: frame codec round-trips (any byte split),
// real UDS/TCP rank groups driven from threads (one SocketTransport per
// rank, exactly the shape of the multi-process runtime minus the fork),
// out-of-order tag completion through RequestSet, large payloads that
// force partial writes through the nonblocking send queues, and the
// deadlock-free shutdown contract (a dead peer surfaces ShutdownError on
// survivors instead of a hang). Cross-process parity with the mailbox is
// pinned separately in tests/test_multiprocess.cpp.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <functional>
#include <thread>
#include <vector>

#include "comm/fabric.hpp"
#include "comm/process_group.hpp"
#include "comm/socket_transport.hpp"
#include "common/check.hpp"

namespace bnsgcn {
namespace {

using comm::CostModel;
using comm::Fabric;
using comm::Frame;
using comm::FrameDecoder;
using comm::FrameKind;
using comm::TrafficClass;
using comm::TransportKind;
using comm::Wire;

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

Frame make_frame(FrameKind kind, int tag, std::size_t nbytes) {
  Frame f;
  f.kind = kind;
  f.tag = tag;
  f.payload.resize(nbytes);
  for (std::size_t i = 0; i < nbytes; ++i)
    f.payload[i] = static_cast<std::uint8_t>((i * 7 + 13) & 0xFF);
  return f;
}

TEST(FrameCodec, RoundTripAllKinds) {
  const Frame frames[] = {
      make_frame(FrameKind::kFloats, 42, 12),
      make_frame(FrameKind::kIds, -3, 8),
      make_frame(FrameKind::kDoubles, 0, 24),
      make_frame(FrameKind::kEmpty, 7, 0),
  };
  FrameDecoder dec;
  for (const Frame& f : frames) {
    const auto bytes = comm::encode_frame(f);
    ASSERT_EQ(bytes.size(), comm::kFrameHeaderBytes + f.payload.size());
    dec.feed(bytes.data(), bytes.size());
    Frame out;
    ASSERT_TRUE(dec.pop(out));
    EXPECT_EQ(out.kind, f.kind);
    EXPECT_EQ(out.tag, f.tag);
    EXPECT_EQ(out.payload, f.payload);
    Frame none;
    EXPECT_FALSE(dec.pop(none)); // stream fully consumed
  }
}

TEST(FrameCodec, ByteAtATimeFeed) {
  // The decoder must assemble frames from any split — down to one byte at
  // a time — and report "need more" everywhere short of a full frame.
  const Frame f = make_frame(FrameKind::kFloats, 1234, 40);
  const auto bytes = comm::encode_frame(f);
  FrameDecoder dec;
  Frame out;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    dec.feed(&bytes[i], 1);
    EXPECT_FALSE(dec.pop(out)) << "frame popped " << bytes.size() - 1 - i
                               << " byte(s) early";
  }
  dec.feed(&bytes[bytes.size() - 1], 1);
  ASSERT_TRUE(dec.pop(out));
  EXPECT_EQ(out.tag, f.tag);
  EXPECT_EQ(out.payload, f.payload);
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(FrameCodec, BackToBackFramesSplitMidHeader) {
  // Two frames in one stream, fed in chunks that straddle the header of
  // the second frame.
  const Frame a = make_frame(FrameKind::kIds, 5, 16);
  const Frame b = make_frame(FrameKind::kFloats, 6, 4);
  auto stream = comm::encode_frame(a);
  const auto tail = comm::encode_frame(b);
  stream.insert(stream.end(), tail.begin(), tail.end());

  FrameDecoder dec;
  // First chunk ends 3 bytes into frame b's header.
  const std::size_t cut = comm::kFrameHeaderBytes + a.payload.size() + 3;
  dec.feed(stream.data(), cut);
  Frame out;
  ASSERT_TRUE(dec.pop(out));
  EXPECT_EQ(out.payload, a.payload);
  EXPECT_FALSE(dec.pop(out));
  dec.feed(stream.data() + cut, stream.size() - cut);
  ASSERT_TRUE(dec.pop(out));
  EXPECT_EQ(out.tag, b.tag);
  EXPECT_EQ(out.payload, b.payload);
}

TEST(FrameCodec, CorruptMagicThrows) {
  Frame f = make_frame(FrameKind::kFloats, 0, 4);
  auto bytes = comm::encode_frame(f);
  bytes[0] ^= 0xFF;
  FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  Frame out;
  EXPECT_THROW((void)dec.pop(out), CheckError);
}

TEST(FrameCodec, WireConversionRoundTrips) {
  Wire floats{.tag = 9, .hold = 0, .kind = comm::WireKind::kFloats,
              .floats = {1.5f, -2.0f, 3.25f}, .ids = {}};
  Wire got = comm::frame_to_wire(comm::wire_to_frame(floats));
  EXPECT_EQ(got.tag, 9);
  EXPECT_EQ(got.kind, comm::WireKind::kFloats);
  EXPECT_EQ(got.floats, floats.floats);

  Wire ids{.tag = -7, .hold = 0, .kind = comm::WireKind::kIds, .floats = {},
           .ids = {10, 20, 30}};
  got = comm::frame_to_wire(comm::wire_to_frame(ids));
  EXPECT_EQ(got.tag, -7);
  EXPECT_EQ(got.kind, comm::WireKind::kIds);
  EXPECT_EQ(got.ids, ids.ids);

  Wire empty{.tag = 3, .hold = 0, .kind = comm::WireKind::kFloats,
             .floats = {}, .ids = {}};
  got = comm::frame_to_wire(comm::wire_to_frame(empty));
  EXPECT_EQ(got.tag, 3);
  EXPECT_TRUE(got.floats.empty());
  EXPECT_TRUE(got.ids.empty());

  // The halo-delta frame is the only kind carrying both vectors: the index
  // list of present rows plus their features must survive the round trip
  // together, including the empty all-hits message.
  Wire delta{.tag = 42, .hold = 0, .kind = comm::WireKind::kHaloDelta,
             .floats = {0.5f, 1.5f, 2.5f, 3.5f}, .ids = {1, 3}};
  got = comm::frame_to_wire(comm::wire_to_frame(delta));
  EXPECT_EQ(got.tag, 42);
  EXPECT_EQ(got.kind, comm::WireKind::kHaloDelta);
  EXPECT_EQ(got.ids, delta.ids);
  EXPECT_EQ(got.floats, delta.floats);

  Wire all_hits{.tag = 5, .hold = 0, .kind = comm::WireKind::kHaloDelta,
                .floats = {}, .ids = {}};
  got = comm::frame_to_wire(comm::wire_to_frame(all_hits));
  EXPECT_EQ(got.kind, comm::WireKind::kHaloDelta);
  EXPECT_TRUE(got.ids.empty());
  EXPECT_TRUE(got.floats.empty());
}

// ---------------------------------------------------------------------------
// Socket groups (threads standing in for the rank processes)
// ---------------------------------------------------------------------------

/// Build a socket group and run fn(endpoint) on one thread per rank, each
/// thread owning its own SocketTransport+Fabric (the process shape, minus
/// the fork). Rethrows the first rank's exception after joining.
void run_socket_ranks(TransportKind kind, PartId nranks,
                      const std::function<void(comm::Endpoint&)>& fn) {
  auto group = comm::make_local_group(kind, nranks);
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));
  std::vector<std::thread> threads;
  for (PartId r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      try {
        Fabric fabric(std::make_unique<comm::SocketTransport>(
                          r, group.endpoints, group.listen_fds[r]),
                      CostModel::pcie3_x16());
        fn(fabric.endpoint(r));
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  comm::cleanup_local_group(group, /*fds_taken=*/true);
  for (const auto& e : errors)
    if (e) std::rethrow_exception(e);
}

TEST(SocketTransport, UdsPointToPointDelivers) {
  run_socket_ranks(TransportKind::kUds, 2, [](comm::Endpoint& ep) {
    if (ep.rank() == 0) {
      ep.send_floats(1, 7, {1.0f, 2.0f, 3.0f}, TrafficClass::kFeature);
      ep.send_ids(1, 8, {40, 50}, TrafficClass::kControl);
    } else {
      const auto f = ep.recv_floats(0, 7, TrafficClass::kFeature);
      EXPECT_EQ(f, (std::vector<float>{1.0f, 2.0f, 3.0f}));
      const auto ids = ep.recv_ids(0, 8, TrafficClass::kControl);
      EXPECT_EQ(ids, (std::vector<NodeId>{40, 50}));
    }
  });
}

TEST(SocketTransport, UdsOutOfOrderTagsThroughRequestSet) {
  // Sends land in one order, receives posted in another; the per-peer
  // inbox must tag-match every request and RequestSet must report each
  // completion exactly once.
  run_socket_ranks(TransportKind::kUds, 2, [](comm::Endpoint& ep) {
    if (ep.rank() == 0) {
      for (const int tag : {12, 10, 11})
        ep.send_floats(1, tag, {static_cast<float>(tag)},
                       TrafficClass::kFeature);
      ep.barrier();
    } else {
      comm::RequestSet set;
      for (const int tag : {10, 11, 12})
        (void)set.add(ep.irecv_floats(0, tag, TrafficClass::kFeature));
      std::vector<std::size_t> done;
      while (!set.all_done()) (void)set.wait_any(done);
      std::sort(done.begin(), done.end());
      EXPECT_EQ(done, (std::vector<std::size_t>{0, 1, 2}));
      for (std::size_t i = 0; i < 3; ++i)
        EXPECT_FLOAT_EQ(set.at(i).take_floats()[0],
                        static_cast<float>(10 + i));
      ep.barrier();
    }
  });
}

TEST(SocketTransport, UdsLargePayloadPartialWrites) {
  // A payload far beyond any socket buffer: the nonblocking send queue
  // must drain it across many partial writes while the receiver reads
  // partial frames, and the bytes must arrive intact and accounted.
  static constexpr std::size_t kFloats = 1 << 20; // 4 MiB
  run_socket_ranks(TransportKind::kUds, 2, [](comm::Endpoint& ep) {
    if (ep.rank() == 0) {
      std::vector<float> big(kFloats);
      for (std::size_t i = 0; i < big.size(); ++i)
        big[i] = static_cast<float>(i % 977);
      ep.send_floats(1, 0, std::move(big), TrafficClass::kFeature);
      ep.barrier();
    } else {
      const auto got = ep.recv_floats(0, 0, TrafficClass::kFeature);
      ASSERT_EQ(got.size(), kFloats);
      for (std::size_t i = 0; i < got.size(); i += 4096)
        ASSERT_FLOAT_EQ(got[i], static_cast<float>(i % 977));
      EXPECT_EQ(
          ep.stats().rx_bytes[static_cast<int>(TrafficClass::kFeature)],
          static_cast<std::int64_t>(kFloats * sizeof(float)));
      ep.barrier();
    }
  });
}

TEST(SocketTransport, UdsCollectivesMatchMailboxSemantics) {
  constexpr PartId kRanks = 4;
  run_socket_ranks(TransportKind::kUds, kRanks, [](comm::Endpoint& ep) {
    // allreduce_sum: every rank ends with the same vector sum.
    std::vector<float> data{static_cast<float>(ep.rank()),
                            static_cast<float>(ep.rank() * 10)};
    ep.allreduce_sum(data);
    EXPECT_FLOAT_EQ(data[0], 0 + 1 + 2 + 3);
    EXPECT_FLOAT_EQ(data[1], 10 * (0 + 1 + 2 + 3));
    // Scalar collectives.
    EXPECT_DOUBLE_EQ(ep.allreduce_sum_scalar(ep.rank() + 1.0), 10.0);
    EXPECT_DOUBLE_EQ(ep.allreduce_max_scalar(ep.rank() * 2.0), 6.0);
    // allgather_ids, indexed by rank.
    std::vector<NodeId> mine(static_cast<std::size_t>(ep.rank()) + 1,
                             ep.rank());
    const auto all = ep.allgather_ids(mine);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(kRanks));
    for (PartId r = 0; r < kRanks; ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(r)].size(),
                static_cast<std::size_t>(r) + 1);
      for (const NodeId v : all[static_cast<std::size_t>(r)])
        EXPECT_EQ(v, r);
    }
    // allgather_doubles, indexed by rank.
    const auto sl = ep.allgather_doubles({ep.rank() * 1.5, 7.0});
    ASSERT_EQ(sl.size(), static_cast<std::size_t>(kRanks));
    for (PartId r = 0; r < kRanks; ++r) {
      EXPECT_DOUBLE_EQ(sl[static_cast<std::size_t>(r)][0], r * 1.5);
      EXPECT_DOUBLE_EQ(sl[static_cast<std::size_t>(r)][1], 7.0);
    }
    // Repeated rounds must not cross (the reserved collective-tag
    // sequence advances in lockstep).
    for (int round = 0; round < 8; ++round) {
      std::vector<float> v{static_cast<float>(round + ep.rank())};
      ep.allreduce_sum(v);
      EXPECT_FLOAT_EQ(v[0], 4.0f * round + 6.0f);
      ep.barrier();
    }
  });
}

TEST(SocketTransport, TcpLoopbackDelivers) {
  run_socket_ranks(TransportKind::kTcp, 2, [](comm::Endpoint& ep) {
    if (ep.rank() == 0) {
      ep.send_floats(1, 1, {5.0f, 6.0f}, TrafficClass::kFeature);
      const double sum = ep.allreduce_sum_scalar(1.0);
      EXPECT_DOUBLE_EQ(sum, 3.0);
    } else {
      EXPECT_EQ(ep.recv_floats(0, 1, TrafficClass::kFeature),
                (std::vector<float>{5.0f, 6.0f}));
      const double sum = ep.allreduce_sum_scalar(2.0);
      EXPECT_DOUBLE_EQ(sum, 3.0);
    }
  });
}

TEST(SocketTransport, PeerDisconnectSurfacesShutdownError) {
  // Rank 1 tears its transport down while rank 0 is blocked waiting on a
  // message that will never come. Rank 0 must unwind with ShutdownError —
  // not hang, not crash. This is the fabric's deadlock-free shutdown
  // contract; the process-level version (a dead rank's exit closing its
  // sockets) exercises the identical eof path.
  auto group = comm::make_local_group(TransportKind::kUds, 2);
  std::exception_ptr survivor_error;
  std::thread t0([&] {
    try {
      Fabric fabric(std::make_unique<comm::SocketTransport>(
                        0, group.endpoints, group.listen_fds[0]),
                    CostModel::pcie3_x16());
      // Blocks until rank 1's close lands as eof.
      (void)fabric.endpoint(0).recv_floats(1, 0, TrafficClass::kFeature);
    } catch (...) {
      survivor_error = std::current_exception();
    }
  });
  std::thread t1([&] {
    // Connect, then vanish without sending: transport dtor closes the
    // sockets (the graceful path a failing rank's unwind takes).
    Fabric fabric(std::make_unique<comm::SocketTransport>(
                      1, group.endpoints, group.listen_fds[1]),
                  CostModel::pcie3_x16());
    fabric.shutdown(1);
  });
  t0.join();
  t1.join();
  comm::cleanup_local_group(group, /*fds_taken=*/true);
  ASSERT_TRUE(survivor_error != nullptr)
      << "survivor returned instead of unwinding";
  EXPECT_THROW(std::rethrow_exception(survivor_error), comm::ShutdownError);
}

} // namespace
} // namespace bnsgcn
