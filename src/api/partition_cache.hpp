#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "api/partition_spec.hpp"
#include "graph/fingerprint.hpp"

namespace bnsgcn::api {

/// Partition cache (ROADMAP follow-up to the API PR). The paper's pipeline
/// partitions once and trains many epochs (Algorithm 1; Table 12 amortizes
/// the partitioning cost), but sweep-style benches call api::run per table
/// cell and were re-running the multilevel partitioner every time. The
/// cache keys a computed Partitioning by (graph fingerprint, full
/// PartitionSpec) so repeated runs over the same graph+spec do zero
/// partitioning work, and an optional on-disk store extends that across
/// processes — every bench artifact replays without re-partitioning.
/// Design notes: docs/ARCHITECTURE.md §5.

struct PartitionCacheConfig {
  /// Off → every lookup computes fresh and nothing is stored (the
  /// measure-the-partitioner escape hatch).
  bool enabled = true;
  /// In-memory LRU entry bound. Each entry is one owner array (4 bytes per
  /// node), so the default holds even papers-scale partitionings cheaply.
  std::size_t capacity = 8;
  /// Directory for the on-disk store ("" → memory-only). Created on first
  /// write; files are "<key>.part" (partition/io.hpp format).
  std::string disk_dir;
};

/// Cache counters. A get() increments exactly one of hits / disk_hits /
/// misses; evictions counts LRU drops (memory only — disk entries are
/// never reclaimed). Doubles as the per-lookup outcome (`get`'s `delta`
/// out-parameter), which is what RunReport carries.
struct PartitionCacheStats {
  std::int64_t hits = 0;       // served from memory
  std::int64_t disk_hits = 0;  // loaded from the on-disk store
  std::int64_t misses = 0;     // computed fresh
  std::int64_t evictions = 0;

  friend bool operator==(const PartitionCacheStats&,
                         const PartitionCacheStats&) = default;
};

/// Version of the partitioner algorithms' *output*: bump whenever any
/// partitioner (metis_like, random, hash, bfs) changes what it produces
/// for the same (graph, spec). It participates in the cache key, so a
/// kept --part-cache directory re-keys across the change instead of
/// silently serving partitions the current code can no longer produce.
/// (kFingerprintVersion guards the hash function, partition/io.cpp's
/// version guards the file format; this guards partitioner content.)
inline constexpr std::uint32_t kPartitionerVersion = 1;

class PartitionCache {
 public:
  explicit PartitionCache(PartitionCacheConfig cfg = {});

  /// The partitioning for (graph, spec): from memory, else from disk, else
  /// computed via make_partition and stored. The returned object is
  /// immutable and shared — it stays valid after eviction. Cached entries
  /// are bit-identical to a fresh make_partition (they *are* its output;
  /// the disk round-trip is raw little-endian arrays).
  ///
  /// When `delta` is non-null it receives exactly this lookup's outcome
  /// (one of hits/disk_hits/misses set to 1, plus any eviction it caused).
  /// Unlike diffing stats() around the call, it cannot absorb concurrent
  /// lookups' counters.
  [[nodiscard]] std::shared_ptr<const Partitioning> get(
      const Csr& graph, const PartitionSpec& spec,
      PartitionCacheStats* delta = nullptr);

  [[nodiscard]] PartitionCacheStats stats() const;
  [[nodiscard]] const PartitionCacheConfig& config() const { return cfg_; }

  /// Drop every in-memory entry and zero the counters (disk untouched).
  void clear();

  /// Replace the configuration; implies clear(). This is how the global
  /// cache is pointed at a disk store or disabled mid-process.
  void reconfigure(PartitionCacheConfig cfg);

  /// The cache key / disk-store basename for (fingerprint, spec):
  /// "<fp-hex>-v<kPartitionerVersion>-<kind>-<nparts>-<seed>". The seed
  /// is canonicalized to 0 for kHash (hash_partition ignores it), so a
  /// seed sweep over kHash hits one entry instead of duplicating it.
  [[nodiscard]] static std::string key_string(const GraphFingerprint& fp,
                                              const PartitionSpec& spec);

 private:
  using Entry = std::pair<std::string, std::shared_ptr<const Partitioning>>;

  [[nodiscard]] std::string disk_path(const std::string& key) const;
  /// Returns true when the insert evicted the coldest entry. Re-inserting
  /// a resident key (two threads racing the same miss) replaces the value
  /// in place instead of corrupting the LRU with a duplicate node.
  bool insert(const std::string& key,
              std::shared_ptr<const Partitioning> part);

  mutable std::mutex mu_;
  PartitionCacheConfig cfg_;
  PartitionCacheStats stats_;
  std::list<Entry> lru_;  // front = most recently used
  // lint: allow(unordered-container) — key→iterator lookup only; eviction
  // order comes from lru_, the map is never iterated.
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
};

/// The process-global cache consulted by api::run. Configure it before the
/// first run (e.g. to point at a disk store); configuring clears it.
[[nodiscard]] PartitionCache& partition_cache();
void configure_partition_cache(PartitionCacheConfig cfg);

/// Convenience: partition_cache().get(graph, spec) — for callers that need
/// the Partitioning object itself (benches computing PartitionStats)
/// while still sharing the cache with api::run.
[[nodiscard]] std::shared_ptr<const Partitioning> cached_partition(
    const Csr& graph, const PartitionSpec& spec);

} // namespace bnsgcn::api
