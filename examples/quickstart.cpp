// Quickstart: generate a small clustered graph, partition it, and train a
// 2-layer GraphSAGE model with BNS-GCN (boundary sampling rate p = 0.1).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/trainer.hpp"
#include "graph/dataset.hpp"
#include "partition/metis_like.hpp"

int main() {
  using namespace bnsgcn;

  // 1. A dataset: 5k nodes, 8 communities, features that correlate with
  //    the label (swap in your own Dataset for real data).
  SyntheticSpec spec;
  spec.n = 5000;
  spec.m = 60000;
  spec.communities = 8;
  spec.num_classes = 8;
  spec.feat_dim = 32;
  spec.seed = 42;
  const Dataset ds = make_synthetic(spec);
  std::printf("dataset: %d nodes, %lld arcs, %d classes\n", ds.num_nodes(),
              static_cast<long long>(ds.graph.num_arcs()), ds.num_classes);

  // 2. Partition with the METIS-like min-communication-volume partitioner.
  const Partitioning part = metis_like(ds.graph, /*nparts=*/4);

  // 3. Configure BNS-GCN: 2-layer GraphSAGE, boundary sampling p = 0.1.
  core::TrainerConfig cfg;
  cfg.num_layers = 2;
  cfg.hidden = 64;
  cfg.dropout = 0.3f;
  cfg.lr = 0.01f;
  cfg.epochs = 60;
  cfg.sample_rate = 0.1f;
  cfg.eval_every = 20;

  // 4. Train (one thread per partition, in-process fabric).
  core::BnsTrainer trainer(ds, part, cfg);
  const core::TrainResult result = trainer.train();

  for (const auto& point : result.curve) {
    std::printf("epoch %3d  loss %.4f  val %.2f%%  test %.2f%%\n",
                point.epoch, point.train_loss, 100.0 * point.val,
                100.0 * point.test);
  }
  const auto epoch = result.mean_epoch();
  std::printf("\nfinal test accuracy: %.2f%%\n", 100.0 * result.final_test);
  std::printf("mean epoch: compute %.4fs, comm %.4fs (sim), reduce %.4fs "
              "(sim), sample %.4fs\n",
              epoch.compute_s, epoch.comm_s, epoch.reduce_s, epoch.sample_s);
  std::printf("feature traffic per epoch: %.2f MB\n",
              static_cast<double>(epoch.feature_bytes) / (1024.0 * 1024.0));
  return 0;
}
