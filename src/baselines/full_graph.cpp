#include "common/stopwatch.hpp"
#include "baselines/minibatch.hpp"
#include "nn/adam.hpp"
#include "nn/loss.hpp"

namespace bnsgcn::baselines {

api::RunReport train_full_graph(const Dataset& ds,
                                const core::TrainerConfig& cfg) {
  const FullGraphContext ctx = make_full_context(ds.graph);
  auto layers = core::build_model(cfg, ds.feat_dim(), ds.num_classes,
                                  /*rank=*/0);
  std::vector<Matrix*> params, grads;
  for (auto& l : layers) {
    for (Matrix* p : l->params()) params.push_back(p);
    for (Matrix* g : l->grads()) grads.push_back(g);
  }
  nn::Adam adam(std::move(params), std::move(grads), {.lr = cfg.lr});

  const float inv_total =
      ds.multilabel
          ? 1.0f / (static_cast<float>(ds.train_nodes.size()) *
                    static_cast<float>(ds.num_classes))
          : 1.0f / static_cast<float>(ds.train_nodes.size());

  api::RunReport result;
  result.method = "full-graph";
  result.dataset = ds.name;
  Stopwatch wall;
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    Stopwatch epoch_wall;
    // Forward over the whole graph (the m=1 special case of Algorithm 1).
    std::vector<Matrix> h(layers.size() + 1);
    h[0] = ds.features;
    for (std::size_t l = 0; l < layers.size(); ++l)
      h[l + 1] = layers[l]->forward(ctx.adj, h[l], ctx.inv_deg,
                                    /*training=*/true);

    Matrix dlogits;
    const double loss =
        ds.multilabel
            ? nn::sigmoid_bce(h.back(), ds.multilabels, ds.train_nodes,
                              inv_total, dlogits)
            : nn::softmax_xent(h.back(), ds.labels, ds.train_nodes, inv_total,
                               dlogits);
    result.train_loss.push_back(loss);

    for (auto& l : layers) l->zero_grads();
    Matrix grad = std::move(dlogits);
    for (std::size_t l = layers.size(); l-- > 0;) {
      Matrix dfeats = layers[l]->backward(ctx.adj, grad, ctx.inv_deg);
      if (l == 0) break;
      grad = std::move(dfeats);
    }
    adam.step();

    core::EpochBreakdown eb;
    eb.compute_s = epoch_wall.elapsed_s();
    result.epochs.push_back(eb);

    const bool last = (epoch == cfg.epochs - 1);
    bool evaluated = false;
    if (last || (cfg.eval_every > 0 && (epoch + 1) % cfg.eval_every == 0)) {
      evaluated = true;
      const auto [val, test] = evaluate_full(ds, ctx, layers);
      result.curve.push_back(
          {.epoch = epoch + 1, .val = val, .test = test, .train_loss = loss});
      if (last) {
        result.final_val = val;
        result.final_test = test;
      }
    }
    if (cfg.observer) {
      core::EpochSnapshot snap;
      snap.epoch = epoch + 1;
      snap.train_loss = loss;
      snap.breakdown = eb;
      snap.eval = evaluated ? &result.curve.back() : nullptr;
      cfg.observer(snap);
    }
  }
  result.wall_time_s = wall.elapsed_s();
  return result;
}

} // namespace bnsgcn::baselines
