#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"
#include "partition/metis_like.hpp"
#include "partition/stats.hpp"

namespace bnsgcn {
namespace {

TEST(PartitionStats, HandComputedExample) {
  // Path 0-1-2-3 split as {0,1} | {2,3}.
  CooBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  const Csr g = b.build();
  Partitioning p;
  p.nparts = 2;
  p.owner = {0, 0, 1, 1};
  const auto st = compute_stats(g, p);
  EXPECT_EQ(st.inner_count[0], 2);
  EXPECT_EQ(st.inner_count[1], 2);
  // Part 0 needs node 2 (neighbor of 1); part 1 needs node 1.
  EXPECT_EQ(st.boundary_count[0], 1);
  EXPECT_EQ(st.boundary_count[1], 1);
  EXPECT_EQ(st.edge_cut, 1);
  EXPECT_EQ(st.total_volume, 2);
  // Node 1 sends to part 1; node 2 sends to part 0.
  EXPECT_EQ(st.send_volume[0], 1);
  EXPECT_EQ(st.send_volume[1], 1);
}

TEST(PartitionStats, Equation3Identity) {
  // Total volume == sum of boundary counts == sum of send volumes (Eq. 3).
  Rng rng(1);
  const Csr g = gen::erdos_renyi(2000, 16000, rng);
  const auto p = random_partition(g.n, 8, rng);
  const auto st = compute_stats(g, p);
  EdgeId bd_sum = 0, send_sum = 0;
  for (const NodeId c : st.boundary_count) bd_sum += c;
  for (const EdgeId v : st.send_volume) send_sum += v;
  EXPECT_EQ(st.total_volume, bd_sum);
  EXPECT_EQ(st.total_volume, send_sum);
}

TEST(PartitionStats, DVCappedByPartsMinusOne) {
  // Send volume counts (node, remote part) pairs: for m parts each node
  // contributes at most m-1.
  Rng rng(2);
  const Csr g = gen::erdos_renyi(500, 8000, rng);
  const auto p = random_partition(g.n, 4, rng);
  const auto st = compute_stats(g, p);
  for (PartId i = 0; i < 4; ++i) {
    EXPECT_LE(st.send_volume[static_cast<std::size_t>(i)],
              static_cast<EdgeId>(st.inner_count[static_cast<std::size_t>(i)]) * 3);
  }
}

TEST(PartitionStats, BoundaryCountBelowInnerTotal) {
  Rng rng(3);
  const Csr g = gen::erdos_renyi(1000, 4000, rng);
  const auto p = random_partition(g.n, 5, rng);
  const auto st = compute_stats(g, p);
  for (PartId i = 0; i < 5; ++i) {
    // A partition's boundary set can't exceed the nodes outside it.
    EXPECT_LE(st.boundary_count[static_cast<std::size_t>(i)],
              g.n - st.inner_count[static_cast<std::size_t>(i)]);
  }
}

TEST(PartitionStats, RandomPartitionHasMoreBoundary) {
  // The Table 8 contrast: random partitioning yields far more boundary
  // nodes than a locality-aware partitioner on a clustered graph.
  Rng rng(4);
  gen::PlantedPartitionParams pp;
  pp.n = 3000;
  pp.m = 30000;
  pp.communities = 8;
  pp.p_intra = 0.92;
  const auto planted = gen::planted_partition(pp, rng);
  const auto st_metis =
      compute_stats(planted.graph, metis_like(planted.graph, 8));
  const auto st_rand =
      compute_stats(planted.graph, random_partition(planted.graph.n, 8, rng));
  EXPECT_LT(st_metis.total_volume * 2, st_rand.total_volume);
}

TEST(PartitionStats, RatiosAndPrinting) {
  Rng rng(5);
  const Csr g = gen::erdos_renyi(400, 3000, rng);
  const auto p = random_partition(g.n, 4, rng);
  const auto st = compute_stats(g, p);
  EXPECT_GT(st.max_ratio(), 0.0);
  EXPECT_LE(st.mean_ratio(), st.max_ratio() + 1e-12);
  std::ostringstream os;
  print_stats(os, st);
  EXPECT_NE(os.str().find("# Boundary Nodes"), std::string::npos);
  EXPECT_NE(os.str().find("Eq. 3"), std::string::npos);
}

TEST(PartitionStats, IsolatedPartitionHasZeroBoundary) {
  // Two disconnected cliques split exactly along components.
  CooBuilder b(8);
  for (NodeId u = 0; u < 4; ++u)
    for (NodeId v = u + 1; v < 4; ++v) b.add_edge(u, v);
  for (NodeId u = 4; u < 8; ++u)
    for (NodeId v = u + 1; v < 8; ++v) b.add_edge(u, v);
  const Csr g = b.build();
  Partitioning p;
  p.nparts = 2;
  p.owner = {0, 0, 0, 0, 1, 1, 1, 1};
  const auto st = compute_stats(g, p);
  EXPECT_EQ(st.total_volume, 0);
  EXPECT_EQ(st.edge_cut, 0);
  EXPECT_EQ(st.boundary_count[0], 0);
  EXPECT_EQ(st.boundary_count[1], 0);
}

} // namespace
} // namespace bnsgcn
