#include "api/run.hpp"

#include <algorithm>

#include "api/multiprocess.hpp"
#include "api/partition_cache.hpp"
#include "common/check.hpp"
#include "core/proxies.hpp"
#include "partition/metis_like.hpp"

namespace bnsgcn::api {

Partitioning make_partition(const Csr& graph, const PartitionSpec& spec) {
  BNSGCN_CHECK_MSG(spec.nparts >= 1, "partition spec needs nparts >= 1");
  switch (spec.kind) {
    case PartitionSpec::Kind::kMetis: {
      // The spec seed must reach the partitioner: dropping it here made
      // every kMetis spec collapse onto MetisLikeOptions' fixed default,
      // so seed sweeps silently reused one partition (and the cache key,
      // which includes the seed, would have lied about what was computed).
      MetisLikeOptions opts;
      opts.seed = spec.seed;
      return metis_like(graph, spec.nparts, opts);
    }
    case PartitionSpec::Kind::kRandom: {
      Rng rng(spec.seed);
      return random_partition(graph.n, spec.nparts, rng);
    }
    case PartitionSpec::Kind::kHash:
      return hash_partition(graph.n, spec.nparts);
    case PartitionSpec::Kind::kBfs: {
      Rng rng(spec.seed);
      return bfs_partition(graph, spec.nparts, rng);
    }
  }
  BNSGCN_CHECK_MSG(false, "unknown partition kind");
  return {};
}

namespace {

RunReport finish(RunReport report, const MethodInfo& info,
                 const Dataset& ds) {
  if (report.method.empty()) report.method = info.name;
  if (report.dataset.empty()) report.dataset = ds.name;
  return report;
}

std::deque<MethodInfo>& mutable_registry() {
  static std::deque<MethodInfo> registry = [] {
    std::deque<MethodInfo> r;
    r.push_back({Method::kBns, "bns", "BNS-GCN", /*needs_partition=*/true,
                 [](const Dataset& ds, const Partitioning* part,
                    const RunConfig& cfg) {
                   // A socket transport spawns one OS process per rank
                   // (api/multiprocess.hpp); the mailbox trains in-process.
                   if (cfg.comm.transport != comm::TransportKind::kMailbox)
                     return run_multiprocess(ds, *part, cfg);
                   return RunReport::from_train_result(
                       core::BnsTrainer(ds, *part, engine_config(cfg))
                           .train(),
                       "bns", ds.name);
                 }});
    r.push_back({Method::kRocProxy, "roc-proxy", "ROC (swap proxy)",
                 /*needs_partition=*/true,
                 [](const Dataset& ds, const Partitioning* part,
                    const RunConfig& cfg) {
                   return RunReport::from_train_result(
                       core::run_roc_proxy(ds, *part, engine_config(cfg)),
                       "roc-proxy", ds.name);
                 }});
    r.push_back({Method::kCagnetProxy, "cagnet-proxy", "CAGNET proxy",
                 /*needs_partition=*/true,
                 [](const Dataset& ds, const Partitioning* part,
                    const RunConfig& cfg) {
                   return RunReport::from_train_result(
                       core::run_cagnet_proxy(ds, *part, engine_config(cfg),
                                              cfg.cagnet_c),
                       "cagnet-proxy", ds.name);
                 }});
    r.push_back({Method::kFullGraph, "full-graph", "Full-graph (1 process)",
                 /*needs_partition=*/false,
                 [](const Dataset& ds, const Partitioning*,
                    const RunConfig& cfg) {
                   return baselines::train_full_graph(ds, cfg.trainer);
                 }});
    r.push_back({Method::kNeighborSampling, "graphsage",
                 "GraphSAGE (neighbor)", /*needs_partition=*/false,
                 [](const Dataset& ds, const Partitioning*,
                    const RunConfig& cfg) {
                   return baselines::train_neighbor_sampling(ds, cfg.trainer,
                                                             cfg.minibatch);
                 }});
    r.push_back({Method::kFastGcn, "fastgcn", "FastGCN (layer)",
                 /*needs_partition=*/false,
                 [](const Dataset& ds, const Partitioning*,
                    const RunConfig& cfg) {
                   return baselines::train_layer_sampling(
                       ds, cfg.trainer, cfg.minibatch, /*ladies=*/false);
                 }});
    r.push_back({Method::kLadies, "ladies", "LADIES (layer)",
                 /*needs_partition=*/false,
                 [](const Dataset& ds, const Partitioning*,
                    const RunConfig& cfg) {
                   return baselines::train_layer_sampling(
                       ds, cfg.trainer, cfg.minibatch, /*ladies=*/true);
                 }});
    r.push_back({Method::kClusterGcn, "cluster-gcn", "ClusterGCN (subgraph)",
                 /*needs_partition=*/false,
                 [](const Dataset& ds, const Partitioning*,
                    const RunConfig& cfg) {
                   return baselines::train_cluster_gcn(ds, cfg.trainer,
                                                       cfg.minibatch);
                 }});
    r.push_back({Method::kGraphSaint, "graph-saint", "GraphSAINT (subgraph)",
                 /*needs_partition=*/false,
                 [](const Dataset& ds, const Partitioning*,
                    const RunConfig& cfg) {
                   return baselines::train_graph_saint(ds, cfg.trainer,
                                                       cfg.minibatch);
                 }});
    return r;
  }();
  return registry;
}

} // namespace

// The two overlap spellings combine by taking the more aggressive schedule
// (modes are ordered blocking < bulk < stream), so either knob alone works.
core::TrainerConfig engine_config(const RunConfig& cfg) {
  core::TrainerConfig tcfg = cfg.trainer;
  tcfg.overlap = std::max(cfg.comm.overlap, cfg.trainer.overlap);
  // The api-level chunk spelling wins when set; otherwise the engine-level
  // value (possibly 0 = unchunked) stands.
  if (cfg.comm.inner_chunk_rows > 0)
    tcfg.inner_chunk_rows = cfg.comm.inner_chunk_rows;
  // Halo-cache knobs live on the comm spec (they shape the fabric traffic);
  // the api-level spelling wins whenever it enables the cache.
  if (cfg.comm.cache_mb > 0) {
    tcfg.cache_mb = cfg.comm.cache_mb;
    tcfg.cache_staleness = cfg.comm.cache_staleness;
  }
  return tcfg;
}

const std::deque<MethodInfo>& method_registry() {
  return mutable_registry();
}

const MethodInfo& method_info(Method method) {
  BNSGCN_CHECK_MSG(method != Method::kCustom,
                   "kCustom resolves by name; use find_method");
  for (const auto& info : mutable_registry())
    if (info.method == method) return info;
  BNSGCN_CHECK_MSG(false, "method not registered");
  return mutable_registry().front();
}

const MethodInfo* find_method(std::string_view name) {
  for (const auto& info : mutable_registry())
    if (info.name == name) return &info;
  return nullptr;
}

void register_method(MethodInfo info) {
  BNSGCN_CHECK_MSG(!info.name.empty(), "method needs a name");
  BNSGCN_CHECK_MSG(info.runner != nullptr, "method needs a runner");
  BNSGCN_CHECK_MSG(find_method(info.name) == nullptr,
                   "method already registered: " + info.name);
  mutable_registry().push_back(std::move(info));
}

const MethodInfo& resolve_method(const RunConfig& cfg) {
  if (cfg.method != Method::kCustom) return method_info(cfg.method);
  const MethodInfo* info = find_method(cfg.custom_method);
  BNSGCN_CHECK_MSG(info != nullptr,
                   "unknown method: " + cfg.custom_method);
  return *info;
}

RunReport run(const Dataset& ds, const Partitioning& part,
              const RunConfig& cfg) {
  const MethodInfo& info = resolve_method(cfg);
  return finish(info.runner(ds, &part, cfg), info, ds);
}

RunReport run(const Dataset& ds, const RunConfig& cfg) {
  const MethodInfo& info = resolve_method(cfg);
  if (!info.needs_partition)
    return finish(info.runner(ds, nullptr, cfg), info, ds);
  PartitionCacheStats lookup;
  const std::shared_ptr<const Partitioning> part =
      partition_cache().get(ds.graph, cfg.partition, &lookup);
  RunReport report = finish(info.runner(ds, part.get(), cfg), info, ds);
  report.partition_cache = lookup;
  return report;
}

RunReport run(const RunConfig& cfg) {
  const Dataset ds = make_dataset(cfg.dataset);
  return run(ds, cfg);
}

} // namespace bnsgcn::api
