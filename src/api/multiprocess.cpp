#include "api/multiprocess.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/serialize.hpp"
#include "comm/process_group.hpp"
#include "comm/socket_transport.hpp"
#include "common/check.hpp"

namespace bnsgcn::api {

namespace {

void write_fully(int fd, const std::string& payload) {
  std::size_t off = 0;
  while (off < payload.size()) {
    const ssize_t n =
        ::write(fd, payload.data() + off, payload.size() - off);
    if (n < 0) {
      BNSGCN_CHECK_MSG(errno == EINTR, "report pipe write failed");
      continue;
    }
    off += static_cast<std::size_t>(n);
  }
}

} // namespace

std::string run_ranks_piped(comm::TransportKind kind, PartId nranks,
                            const comm::CostModel& cost,
                            const RankPayloadFn& rank_fn) {
  BNSGCN_CHECK_MSG(kind != comm::TransportKind::kMailbox,
                   "multi-process runs need a socket transport (uds or tcp)");
  const PartId m = nranks;

  // Every rank's listener is bound and listening before the first fork, so
  // connects cannot race the spawn order.
  comm::LocalGroup group = comm::make_local_group(kind, m);

  int pipefd[2];
  BNSGCN_CHECK_MSG(::pipe(pipefd) == 0, "pipe failed");

  // Flush stdio before forking so buffered output is not emitted twice.
  std::fflush(nullptr);

  std::vector<pid_t> pids(static_cast<std::size_t>(m), -1);
  for (PartId r = 0; r < m; ++r) {
    const pid_t pid = ::fork();
    BNSGCN_CHECK_MSG(pid >= 0, "fork failed");
    if (pid == 0) {
      // ---- child: rank r -------------------------------------------------
      ::close(pipefd[0]);
      for (PartId j = 0; j < m; ++j)
        if (j != r) ::close(group.listen_fds[static_cast<std::size_t>(j)]);
      int exit_code = 0;
      try {
        comm::Fabric fabric(
            std::make_unique<comm::SocketTransport>(
                r, group.endpoints,
                group.listen_fds[static_cast<std::size_t>(r)]),
            cost);
        const std::string payload = rank_fn(fabric, r);
        if (r == 0) write_fully(pipefd[1], payload);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "[bnsgcn rank %d] %s\n", static_cast<int>(r),
                     e.what());
        exit_code = 1;
      } catch (...) {
        std::fprintf(stderr, "[bnsgcn rank %d] unknown error\n",
                     static_cast<int>(r));
        exit_code = 1;
      }
      ::close(pipefd[1]);
      std::fflush(nullptr);
      ::_exit(exit_code);
    }
    pids[static_cast<std::size_t>(r)] = pid;
  }

  // ---- parent ----------------------------------------------------------
  ::close(pipefd[1]);
  // The children carry their own copies of the listener fds; drop ours.
  // The UDS paths stay on disk until after waitpid — late ranks dial them
  // while their fabric bootstraps.
  for (int& fd : group.listen_fds) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }

  // Reports larger than PIPE_BUF arrive in several chunks, so the loop
  // reads to EOF; only EOF ends it. A non-EINTR read error is recorded and
  // raised after the children are reaped — silently treating it as EOF
  // truncated the payload and misreported the failure as a missing report.
  std::string payload;
  int read_err = 0;
  char buf[65536];
  for (;;) {
    const ssize_t n = ::read(pipefd[0], buf, sizeof buf);
    if (n > 0) {
      payload.append(buf, static_cast<std::size_t>(n));
    } else if (n == 0) {
      break;
    } else if (errno == EINTR) {
      continue;
    } else {
      read_err = errno;
      break;
    }
  }
  ::close(pipefd[0]);

  std::vector<PartId> failed;
  for (PartId r = 0; r < m; ++r) {
    int status = 0;
    pid_t w;
    do {
      w = ::waitpid(pids[static_cast<std::size_t>(r)], &status, 0);
    } while (w < 0 && errno == EINTR);
    const bool ok = w == pids[static_cast<std::size_t>(r)] &&
                    WIFEXITED(status) && WEXITSTATUS(status) == 0;
    if (!ok) failed.push_back(r);
  }
  comm::cleanup_local_group(group, /*fds_taken=*/true);

  std::string failed_msg = "multi-process run failed on rank(s):";
  for (const PartId r : failed) {
    failed_msg += ' ';
    failed_msg += std::to_string(r);
  }
  BNSGCN_CHECK_MSG(failed.empty(), failed_msg);
  BNSGCN_CHECK_MSG(read_err == 0,
                   "report pipe read failed: " +
                       std::string(std::strerror(read_err)));
  BNSGCN_CHECK_MSG(!payload.empty(), "rank 0 produced no report");
  return payload;
}

RunReport run_multiprocess(const Dataset& ds, const Partitioning& part,
                           const RunConfig& cfg) {
  const core::TrainerConfig tcfg = engine_config(cfg);

  // Build the trainer — local graphs included — before forking: children
  // inherit every read-only structure copy-on-write, so nothing crosses a
  // serialization boundary on the way in.
  core::BnsTrainer trainer(ds, part, tcfg);

  const std::string payload = run_ranks_piped(
      cfg.comm.transport, part.nparts, tcfg.cost,
      [&](comm::Fabric& fabric, PartId r) {
        core::TrainResult result = trainer.train_rank(fabric, r);
        if (r != 0) return std::string();
        return to_json_string(RunReport::from_train_result(
            std::move(result), "bns", ds.name));
      });

  RunReport report = run_report_from_json_string(payload);
  if (report.method.empty()) report.method = "bns";
  if (report.dataset.empty()) report.dataset = ds.name;
  return report;
}

} // namespace bnsgcn::api
