#include "tensor/matrix.hpp"

#include <algorithm>

namespace bnsgcn {

MemoryTracker& MemoryTracker::instance() {
  static MemoryTracker tracker;
  return tracker;
}

void MemoryTracker::on_alloc(std::int64_t bytes) {
  const std::int64_t now = live_.fetch_add(bytes) + bytes;
  std::int64_t prev = peak_.load();
  while (now > prev && !peak_.compare_exchange_weak(prev, now)) {
  }
}

void MemoryTracker::on_free(std::int64_t bytes) { live_.fetch_sub(bytes); }

void MemoryTracker::reset_peak() { peak_.store(live_.load()); }

Matrix::Matrix(std::int64_t rows, std::int64_t cols) : Matrix(rows, cols, 0.0f) {}

Matrix::Matrix(std::int64_t rows, std::int64_t cols, float fill)
    : rows_(rows), cols_(cols),
      data_(static_cast<std::size_t>(rows * cols), fill) {
  BNSGCN_CHECK(rows >= 0 && cols >= 0);
  track_alloc();
}

Matrix::Matrix(std::initializer_list<std::initializer_list<float>> rows) {
  rows_ = static_cast<std::int64_t>(rows.size());
  cols_ = rows_ == 0 ? 0 : static_cast<std::int64_t>(rows.begin()->size());
  data_.reserve(static_cast<std::size_t>(rows_ * cols_));
  for (const auto& r : rows) {
    BNSGCN_CHECK_MSG(static_cast<std::int64_t>(r.size()) == cols_,
                     "ragged initializer");
    data_.insert(data_.end(), r.begin(), r.end());
  }
  track_alloc();
}

Matrix::Matrix(const Matrix& other)
    : rows_(other.rows_), cols_(other.cols_), data_(other.data_) {
  track_alloc();
}

Matrix& Matrix::operator=(const Matrix& other) {
  if (this == &other) return *this;
  track_free();
  rows_ = other.rows_;
  cols_ = other.cols_;
  data_ = other.data_;
  track_alloc();
  return *this;
}

Matrix::Matrix(Matrix&& other) noexcept
    : rows_(other.rows_), cols_(other.cols_), data_(std::move(other.data_)) {
  other.rows_ = 0;
  other.cols_ = 0;
}

Matrix& Matrix::operator=(Matrix&& other) noexcept {
  if (this == &other) return *this;
  track_free();
  rows_ = other.rows_;
  cols_ = other.cols_;
  data_ = std::move(other.data_);
  other.rows_ = 0;
  other.cols_ = 0;
  return *this;
}

Matrix::~Matrix() { track_free(); }

void Matrix::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::reshape(std::int64_t rows, std::int64_t cols) {
  BNSGCN_CHECK(rows * cols == size());
  rows_ = rows;
  cols_ = cols;
}

void Matrix::resize(std::int64_t rows, std::int64_t cols) {
  BNSGCN_CHECK(rows >= 0 && cols >= 0);
  track_free();
  rows_ = rows;
  cols_ = cols;
  data_.assign(static_cast<std::size_t>(rows * cols), 0.0f);
  track_alloc();
}

void Matrix::randomize_gaussian(Rng& rng, float stddev) {
  for (auto& v : data_) v = static_cast<float>(rng.next_gaussian()) * stddev;
}

void Matrix::track_alloc() {
  MemoryTracker::instance().on_alloc(
      static_cast<std::int64_t>(data_.capacity() * sizeof(float)));
}

void Matrix::track_free() {
  MemoryTracker::instance().on_free(
      static_cast<std::int64_t>(data_.capacity() * sizeof(float)));
}

} // namespace bnsgcn
