#include "common/thread_pool.hpp"

#include <pthread.h>

#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.hpp"

namespace bnsgcn::common {

namespace {

thread_local bool t_on_worker = false;
thread_local int t_ops_threads = 1;

} // namespace

// One parallel_for in flight. Workers pull the current job, claim blocks
// from its cursor, and count themselves out via `active`; the caller waits
// on `done` until every helper that signed up has drained.
struct Job {
  std::int64_t n = 0;
  std::int64_t block = 1;
  std::atomic<std::int64_t> cursor{0};
  std::atomic<int> active{0};
  const std::function<void(std::int64_t, std::int64_t)>* body = nullptr;
  std::exception_ptr error;             // first only; guarded by error_mu
  std::mutex error_mu;

  void run_blocks() {
    for (;;) {
      const std::int64_t i0 = cursor.fetch_add(block, std::memory_order_relaxed);
      if (i0 >= n) return;
      const std::int64_t i1 = i0 + block < n ? i0 + block : n;
      try {
        (*body)(i0, i1);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!error) error = std::current_exception();
        // Keep draining: sibling blocks may still be writing and the
        // caller must not observe a half-finished region after rethrow.
      }
    }
  }
};

struct ThreadPool::Impl {
  std::mutex mu;
  std::condition_variable wake;        // workers wait here for a job
  std::condition_variable done;        // callers wait here for helpers
  Job* job = nullptr;                  // current job, or nullptr when idle
  std::uint64_t job_serial = 0;        // bumped per job so workers never rejoin one
  bool shutdown = false;
  int spawned = 0;
  std::vector<std::thread> threads;

  void worker_loop() {
    t_on_worker = true;
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
      wake.wait(lock, [&] { return shutdown || (job && job_serial != seen); });
      if (shutdown) return;
      Job* j = job;
      seen = job_serial;
      j->active.fetch_add(1, std::memory_order_relaxed);
      lock.unlock();
      j->run_blocks();
      lock.lock();
      if (j->active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        done.notify_all();
      }
    }
  }

  void ensure_workers(int want) {
    // Caller holds mu.
    while (spawned < want && spawned < kMaxWorkers) {
      threads.emplace_back([this] { worker_loop(); });
      ++spawned;
    }
  }
};

namespace {

// The global pool pointer. Intentionally leaked at process exit (kernel
// calls can race static destruction order); pthread_atfork abandons it in
// forked children — the parent's worker threads don't exist there, so the
// child's first parallel kernel lazily builds a fresh pool.
std::atomic<ThreadPool*> g_pool{nullptr};
std::mutex g_pool_mu;

void atfork_child() {
  // Plain abandon, no frees: the child owns only the calling thread; any
  // mutex/condvar state in the old Impl may be mid-operation and must
  // never be touched again.
  g_pool.store(nullptr, std::memory_order_release);
  t_on_worker = false;
}

} // namespace

ThreadPool::ThreadPool() : impl_(new Impl) {}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->shutdown = true;
  }
  impl_->wake.notify_all();
  for (std::thread& t : impl_->threads) t.join();
  delete impl_;
}

ThreadPool& ThreadPool::instance() {
  ThreadPool* p = g_pool.load(std::memory_order_acquire);
  if (p) return *p;
  std::lock_guard<std::mutex> lock(g_pool_mu);
  p = g_pool.load(std::memory_order_acquire);
  if (!p) {
    static bool registered = [] {
      ::pthread_atfork(nullptr, nullptr, &atfork_child);
      return true;
    }();
    (void)registered;
    p = new ThreadPool();
    g_pool.store(p, std::memory_order_release);
  }
  return *p;
}

int ThreadPool::workers() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->spawned;
}

int ThreadPool::hardware_budget() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

bool ThreadPool::on_worker_thread() { return t_on_worker; }

void ThreadPool::parallel_for(
    std::int64_t n, std::int64_t block, int threads,
    const std::function<void(std::int64_t, std::int64_t)>& body) {
  BNSGCN_CHECK(n >= 0 && block >= 1);
  if (n == 0) return;
  if (threads <= 1 || n <= block || t_on_worker) {
    for (std::int64_t i0 = 0; i0 < n; i0 += block)
      body(i0, i0 + block < n ? i0 + block : n);
    return;
  }
  Job job;
  job.n = n;
  job.block = block;
  job.body = &body;
  {
    std::unique_lock<std::mutex> lock(impl_->mu);
    impl_->ensure_workers(threads - 1);
    impl_->job = &job;
    ++impl_->job_serial;
    impl_->wake.notify_all();
  }
  // The caller is one of the lanes: it races the workers for blocks, so a
  // parallel_for never blocks waiting for a worker to become free.
  job.run_blocks();
  {
    std::unique_lock<std::mutex> lock(impl_->mu);
    impl_->job = nullptr; // late workers see job==nullptr and keep waiting
    impl_->done.wait(lock, [&] {
      return job.active.load(std::memory_order_acquire) == 0;
    });
  }
  if (job.error) std::rethrow_exception(job.error);
}

int ops_threads() { return t_ops_threads; }

void set_ops_threads(int k) { t_ops_threads = k < 1 ? 1 : k; }

int clamp_rank_threads(int requested, int nranks, int hardware) {
  if (requested < 1) requested = 1;
  if (nranks < 1) nranks = 1;
  if (hardware <= 0) hardware = ThreadPool::hardware_budget();
  const int per_rank = hardware / nranks;
  const int cap = per_rank < 1 ? 1 : per_rank;
  return requested < cap ? requested : cap;
}

} // namespace bnsgcn::common
