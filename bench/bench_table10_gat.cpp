// Table 10: epoch-time speedup of BNS-GCN on a 2-layer GAT (10 partitions).
// Expected shape: sampling helps GAT too (58%-106% speedups in the paper),
// less dramatically than GraphSAGE because attention adds compute.

#include "common.hpp"

namespace {

using namespace bnsgcn;

void run_dataset(const char* title, const char* preset, double scale,
                 std::uint64_t seed, const api::BenchOptions& opts,
                 bench::ReportSink& sink) {
  const auto pr = bench::load_preset(preset, scale, opts);
  api::RunConfig rcfg;
  rcfg.method = api::Method::kBns;
  rcfg.dataset = pr.spec;
  rcfg.partition.nparts = 10; // partitioned once, cached across p
  rcfg.trainer.model = core::ModelKind::kGat;
  rcfg.trainer.gat_heads = 2;
  rcfg.trainer.num_layers = 2;
  rcfg.trainer.hidden = 32;
  rcfg.trainer.epochs = opts.epochs_or(5);
  rcfg.trainer.seed = seed;

  std::printf("\n--- %s ---\n", title);
  double base = 0.0;
  for (const float p : {1.0f, 0.1f, 0.01f, 0.0f}) {
    rcfg.trainer.sample_rate = p;
    // run_streamed: live per-epoch progress (TTY only) + the recorded,
    // replayable artifact row (the progress line erases itself before the
    // result line below prints).
    const auto r = sink.run_streamed(bench::label("%s gat p=%.2f", preset, p),
                                     pr.ds, rcfg);
    const double t = r.mean_epoch().total_s();
    if (p == 1.0f) base = t;
    std::printf("BNS-GAT (p=%-4.2f)  epoch %8.4fs   speedup %5.2fx\n", p, t,
                base / t);
  }
}

} // namespace

int main(int argc, char** argv) {
  using namespace bnsgcn;
  const auto opts = api::parse_bench_args(argc, argv);
  bench::print_banner("Table 10", "GAT epoch-time speedup under BNS");
  bench::ReportSink sink("Table 10", opts);
  const double s = opts.scale;
  run_dataset("Reddit-like", "reddit", 0.25 * s, 1, opts, sink);
  run_dataset("ogbn-products-like", "products", 0.2 * s, 2, opts, sink);
  run_dataset("Yelp-like", "yelp", 0.25 * s, 3, opts, sink);
  std::printf("\npaper shape check: speedups grow as p shrinks; ~1.5-2.2x "
              "from p=1 to p=0.\n");
  return 0;
}
