#include <gtest/gtest.h>

#include "graph/dataset.hpp"
#include "graph/generators.hpp"
#include "partition/metis_like.hpp"
#include "partition/stats.hpp"

namespace bnsgcn {
namespace {

TEST(MetisLike, ValidOnRandomGraph) {
  Rng rng(1);
  const Csr g = gen::erdos_renyi(2000, 10000, rng);
  const auto p = metis_like(g, 4);
  p.validate();
  EXPECT_EQ(p.nparts, 4);
}

TEST(MetisLike, RespectsBalance) {
  Rng rng(2);
  const Csr g = gen::erdos_renyi(4000, 20000, rng);
  MetisLikeOptions opts;
  opts.balance_eps = 0.05;
  const auto p = metis_like(g, 8, opts);
  const auto members = p.members();
  const auto cap = static_cast<NodeId>((4000.0 / 8) * 1.10); // small slack
  for (const auto& part : members)
    EXPECT_LE(static_cast<NodeId>(part.size()), cap);
}

TEST(MetisLike, RecoversPlantedCommunities) {
  // On a strongly clustered graph the partitioner should cut far fewer
  // edges than a random assignment.
  Rng rng(3);
  gen::PlantedPartitionParams pp;
  pp.n = 4000;
  pp.m = 40000;
  pp.communities = 8;
  pp.p_intra = 0.95;
  const auto planted = gen::planted_partition(pp, rng);

  const auto metis = metis_like(planted.graph, 8);
  const auto random = random_partition(planted.graph.n, 8, rng);
  const auto st_m = compute_stats(planted.graph, metis);
  const auto st_r = compute_stats(planted.graph, random);
  EXPECT_LT(st_m.edge_cut * 3, st_r.edge_cut);
  EXPECT_LT(st_m.total_volume * 2, st_r.total_volume);
}

TEST(MetisLike, SinglePartition) {
  Rng rng(4);
  const Csr g = gen::erdos_renyi(100, 400, rng);
  const auto p = metis_like(g, 1);
  p.validate();
  for (const PartId o : p.owner) EXPECT_EQ(o, 0);
}

TEST(MetisLike, GridBisectionIsClean) {
  // Bisecting a 32x32 grid optimally cuts 32 edges; accept up to 3x.
  const Csr g = gen::grid(32, 32);
  const auto p = metis_like(g, 2);
  const auto st = compute_stats(g, p);
  EXPECT_LE(st.edge_cut, 96);
}

TEST(MetisLike, DeterministicForSeed) {
  Rng rng(5);
  const Csr g = gen::erdos_renyi(1000, 6000, rng);
  MetisLikeOptions opts;
  opts.seed = 77;
  const auto a = metis_like(g, 4, opts);
  const auto b = metis_like(g, 4, opts);
  EXPECT_EQ(a.owner, b.owner);
}

TEST(MetisLike, HandlesStarGraph) {
  // Degenerate topology for matching-based coarsening.
  const Csr g = gen::star(500);
  const auto p = metis_like(g, 4);
  p.validate();
}

TEST(MetisLike, HandlesDisconnectedGraph) {
  CooBuilder b(100);
  for (NodeId v = 0; v + 1 < 50; ++v) b.add_edge(v, v + 1);
  for (NodeId v = 50; v + 1 < 100; ++v) b.add_edge(v, v + 1);
  const Csr g = b.build();
  const auto p = metis_like(g, 2);
  p.validate();
  const auto st = compute_stats(g, p);
  EXPECT_LE(st.edge_cut, 2); // two chains: clean split possible
}

class MetisSweep
    : public ::testing::TestWithParam<std::tuple<PartId, double>> {};

TEST_P(MetisSweep, ValidAcrossPartsAndIntraProbability) {
  const auto [m, p_intra] = GetParam();
  Rng rng(6);
  gen::PlantedPartitionParams pp;
  pp.n = 1500;
  pp.m = 12000;
  pp.communities = 6;
  pp.p_intra = p_intra;
  const auto planted = gen::planted_partition(pp, rng);
  const auto part = metis_like(planted.graph, m);
  part.validate();
  // Balance within 1.15x of ideal.
  const auto members = part.members();
  for (const auto& mem : members)
    EXPECT_LE(static_cast<double>(mem.size()), 1500.0 / m * 1.15 + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MetisSweep,
    ::testing::Combine(::testing::Values(2, 4, 10),
                       ::testing::Values(0.5, 0.8, 0.95)));

} // namespace
} // namespace bnsgcn
