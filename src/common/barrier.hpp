#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <stdexcept>

namespace bnsgcn {

/// Thrown from arrive_and_wait() once the barrier has been poisoned: a
/// party died and will never arrive, so waiting would deadlock.
class BarrierPoisoned : public std::runtime_error {
 public:
  BarrierPoisoned() : std::runtime_error("barrier poisoned") {}
};

/// Reusable N-party barrier (generation-counted).
///
/// std::barrier exists in C++20 but its completion-function typing makes it
/// awkward to store in containers; this minimal variant is sufficient and
/// lets the fabric own one barrier per logical sync point.
class Barrier {
 public:
  explicit Barrier(std::size_t parties);

  /// Blocks until all parties arrive. Returns true for exactly one caller
  /// per generation (the "serial" thread), mirroring pthread_barrier.
  /// Throws BarrierPoisoned (now and forever) once poison() was called.
  bool arrive_and_wait();

  /// Mark the barrier dead and wake every waiter with BarrierPoisoned.
  /// Called by a party that is unwinding with an error; irreversible.
  void poison();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::size_t parties_;
  std::size_t waiting_ = 0;
  std::size_t generation_ = 0;
  bool poisoned_ = false;
};

} // namespace bnsgcn
