#include "baselines/minibatch.hpp"
#include "common/alias_table.hpp"

namespace bnsgcn::baselines {

// Defined in cluster_gcn.cpp (shared induced-subgraph batch builder).
Batch make_subgraph_batch(const Dataset& ds, std::vector<NodeId> nodes,
                          int num_layers);

api::RunReport train_graph_saint(const Dataset& ds,
                                 const core::TrainerConfig& cfg,
                                 const MinibatchConfig& mb) {
  // GraphSAINT node sampler: inclusion probability proportional to degree.
  std::vector<double> weights(static_cast<std::size_t>(ds.num_nodes()));
  for (NodeId v = 0; v < ds.num_nodes(); ++v)
    weights[static_cast<std::size_t>(v)] =
        static_cast<double>(ds.graph.degree(v)) + 1.0;
  const AliasTable sampler(weights);

  const auto next_batch = [&](Rng& rng) {
    std::vector<char> taken(static_cast<std::size_t>(ds.num_nodes()), 0);
    std::vector<NodeId> nodes;
    nodes.reserve(static_cast<std::size_t>(mb.saint_budget));
    // Draw with replacement, keep distinct nodes, stop at the budget or
    // after a bounded number of draws (heavy-tailed graphs resample hubs).
    const std::int64_t max_draws =
        static_cast<std::int64_t>(mb.saint_budget) * 4;
    for (std::int64_t t = 0;
         t < max_draws &&
         nodes.size() < static_cast<std::size_t>(mb.saint_budget);
         ++t) {
      const NodeId v = sampler.sample(rng);
      if (!taken[static_cast<std::size_t>(v)]) {
        taken[static_cast<std::size_t>(v)] = 1;
        nodes.push_back(v);
      }
    }
    return make_subgraph_batch(ds, std::move(nodes), cfg.num_layers);
  };

  auto report = run_minibatch_training(ds, cfg, mb, next_batch);
  report.method = "graph-saint";
  return report;
}

} // namespace bnsgcn::baselines
