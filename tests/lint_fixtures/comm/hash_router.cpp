// Fixture: unordered containers in an ordering-sensitive path (comm/).
#include <unordered_map>
#include <unordered_set>

namespace fixture {

void route() {
  std::unordered_map<int, int> pending;
  (void)pending;
  // lint: allow(unordered-container) — membership probe only, never iterated.
  std::unordered_set<int> seen;
  (void)seen;
}

} // namespace fixture
