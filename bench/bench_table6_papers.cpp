// Table 6: epoch-time breakdown for the papers100M-class run: 192
// partitions over 32 machines (multi-machine interconnect model).
// Expected shape: at p=1 communication is ~99% of the epoch; p=0.01 cuts
// total epoch time by ~99%.

#include "common.hpp"

int main() {
  using namespace bnsgcn;
  bench::print_banner("Table 6",
                      "papers100M-like epoch breakdown, 192 partitions");

  const Dataset ds = make_synthetic(papers_like(bench::bench_scale()));
  auto cfg = bench::papers_config();
  cfg.epochs = 3;
  cfg.cost = comm::CostModel::scaled_multi_machine();

  const auto part = metis_like(ds.graph, 192);

  std::printf("%-18s %12s %12s %12s %12s\n", "method", "total(s)", "comp(s)",
              "comm(s)", "reduce(s)");
  double total_p1 = 0.0;
  for (const float p : {1.0f, 0.1f, 0.01f}) {
    auto c = cfg;
    c.sample_rate = p;
    const auto r = core::BnsTrainer(ds, part, c).train();
    const auto e = r.mean_epoch();
    if (p == 1.0f) total_p1 = e.total_s();
    std::printf("BNS-GCN (p=%-4.2f)%2s %12.4f %12.4f %12.4f %12.4f\n", p, "",
                e.total_s(), e.compute_s, e.comm_s, e.reduce_s);
  }
  {
    auto c = cfg;
    c.sample_rate = 0.01f;
    const auto r = core::BnsTrainer(ds, part, c).train();
    std::printf("\np=0.01 cuts epoch time by %.1f%% vs p=1 "
                "(paper: 99%%)\n",
                100.0 * (1.0 - r.mean_epoch().total_s() / total_p1));
  }
  return 0;
}
