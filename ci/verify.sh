#!/usr/bin/env bash
# Tier-1 verify: docs link check, then configure, build everything
# (library, benches, examples, test binaries) and run the full test
# suite — including test_overlap, the blocking/bulk/stream three-way
# bit-parity gate of the async fabric (run once more by name so a
# regression there is called out explicitly) — then a stream-mode
# bench_overlap smoke and the artifact replay gate.
set -euo pipefail

cd "$(dirname "$0")/.."

./ci/check_docs_links.sh

GENERATOR=()
if command -v ninja >/dev/null 2>&1; then
  GENERATOR=(-G Ninja)
fi

cmake -B build -S . "${GENERATOR[@]}"
cmake --build build -j
ctest --test-dir build --output-on-failure -j "$(nproc)"
ctest --test-dir build --output-on-failure -R test_overlap

# Stream-mode smoke: bench_overlap runs all three schedules on every
# Fig. 4 config and exits non-zero when losses diverge across modes or
# the stream schedule hides measurably less than bulk at >= 8 partitions —
# the stream mode cannot silently regress to blocking. Output stays in
# the log: the '!!' lines name the violating dataset/row on failure.
./build/bench/bench_overlap --scale 0.25 --epochs 3

# Replay gate: every artifact row records its RunConfig; re-running one
# must reproduce the recorded deterministic metrics exactly
# (docs/BENCHMARKS.md "JSON artifact schema"). Record a small sweep, then
# replay its first row in a fresh process.
REPLAY_ARTIFACT=build/replay_gate_artifact.json
rm -f "$REPLAY_ARTIFACT"
./build/bench/bench_table13_choice_p --scale 0.2 --epochs 3 \
  --json "$REPLAY_ARTIFACT" > /dev/null
./build/bench/bench_replay "$REPLAY_ARTIFACT" --rows 1
