#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "comm/transport.hpp"
#include "common/barrier.hpp"

namespace bnsgcn::comm {

/// In-process mailbox transport over `nranks` logical ranks (one thread
/// each): the deterministic test double. Sends are eager deposits into an
/// unbounded per-pair queue (like an eager-protocol MPI send); collectives
/// run over shared contribution slots and a two-phase barrier. Substitutes
/// for Gloo/NCCL; see DESIGN.md §1.
class MailboxTransport final : public Transport {
 public:
  explicit MailboxTransport(PartId nranks);

  [[nodiscard]] PartId nranks() const override { return nranks_; }
  [[nodiscard]] bool serves(PartId rank) const override {
    return rank >= 0 && rank < nranks_;
  }
  [[nodiscard]] TimingSource timing() const override {
    return TimingSource::kSimulated;
  }

  void send(PartId from, PartId to, Wire msg) override;
  bool try_recv(PartId rank, PartId from, int tag, Wire& out) override;
  [[nodiscard]] Wire recv(PartId rank, PartId from, int tag) override;

  void barrier(PartId rank) override;
  void allreduce_sum(PartId rank, std::span<float> data) override;
  [[nodiscard]] double allreduce_sum_scalar(PartId rank,
                                            double value) override;
  [[nodiscard]] double allreduce_max_scalar(PartId rank,
                                            double value) override;
  [[nodiscard]] std::vector<std::vector<NodeId>> allgather_ids(
      PartId rank, std::vector<NodeId> ids) override;
  [[nodiscard]] std::vector<std::vector<double>> allgather_doubles(
      PartId rank, const std::vector<double>& vals) override;

  void shutdown(PartId rank) override;

  /// Test-only arrival-order shuffle: every message deposited after this
  /// call is held back for a seeded-pseudorandom number of *nonblocking*
  /// probes (0..max_hold-1) — each failed try_recv pass over its mailbox
  /// decrements the hold — so the completion order a RequestSet observes
  /// is scrambled relative to the deposit order. Blocking receives ignore
  /// holds entirely, so nothing can deadlock and blocking-mode schedules
  /// are unaffected. Byte accounting is untouched (it lives above the
  /// transport, at receive completion). This exists for the schedule-fuzz
  /// harness: training results must be bit-exact under any arrival order,
  /// because the consumers buffer arrivals and apply them in fixed peer
  /// order. Call before the rank threads start.
  void enable_delivery_shuffle(std::uint64_t seed, int max_hold) override;

 private:
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Wire> queue;
  };

  Mailbox& mailbox(PartId from, PartId to) {
    return *mailboxes_[static_cast<std::size_t>(from) *
                           static_cast<std::size_t>(nranks_) +
                       static_cast<std::size_t>(to)];
  }
  /// Hold count of a deposited message under the shuffle (0 when the
  /// shuffle is off). A pure function of (seed, from, to, tag) — stable
  /// message identity, not a deposit counter — so the holds a given seed
  /// produces are independent of thread scheduling and a failing fuzz
  /// draw replays with the identical arrival perturbation.
  [[nodiscard]] int hold_of(PartId from, PartId to, int tag) const;
  void check_alive() const;

  PartId nranks_;
  bool shuffle_ = false;
  std::uint64_t shuffle_seed_ = 0;
  int shuffle_max_hold_ = 0;
  std::atomic<bool> stopped_{false};
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;

  // Collective scratch: per-rank contribution slots + two-phase barrier.
  Barrier barrier_;
  std::vector<std::vector<float>> reduce_slots_;
  std::vector<double> scalar_slots_;
  std::vector<std::vector<NodeId>> gather_slots_;
  std::vector<std::vector<double>> dgather_slots_;
};

} // namespace bnsgcn::comm
