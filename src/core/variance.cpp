#include "core/variance.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace bnsgcn::core {

namespace {

/// Exact mean aggregation z_v for the target nodes.
Matrix exact_aggregation(const Csr& g, const Matrix& x,
                         std::span<const NodeId> targets) {
  const std::int64_t d = x.cols();
  Matrix z(static_cast<std::int64_t>(targets.size()), d);
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const NodeId v = targets[i];
    float* o = z.data() + static_cast<std::int64_t>(i) * d;
    const auto nb = g.neighbors(v);
    if (nb.empty()) continue;
    for (const NodeId u : nb) {
      const float* s = x.data() + static_cast<std::int64_t>(u) * d;
      for (std::int64_t c = 0; c < d; ++c) o[c] += s[c];
    }
    const float inv = 1.0f / static_cast<float>(nb.size());
    for (std::int64_t c = 0; c < d; ++c) o[c] *= inv;
  }
  return z;
}

double frob_sq_diff(const Matrix& a, const Matrix& b) {
  double acc = 0.0;
  for (std::int64_t i = 0; i < a.size(); ++i) {
    const double diff = static_cast<double>(a.data()[i]) - b.data()[i];
    acc += diff * diff;
  }
  return acc;
}

} // namespace

VarianceReport measure_variance(const Csr& g, const Matrix& x,
                                const Partitioning& part, PartId part_id,
                                float p, int trials, std::uint64_t seed) {
  BNSGCN_CHECK(p > 0.0f && p <= 1.0f);
  BNSGCN_CHECK(trials > 0);
  Rng rng(seed);
  const std::int64_t d = x.cols();

  // Target set V_i, boundary set B_i, neighbor set N_i.
  std::vector<NodeId> targets;
  for (NodeId v = 0; v < g.n; ++v)
    if (part.owner[static_cast<std::size_t>(v)] == part_id)
      targets.push_back(v);
  std::vector<char> in_part(static_cast<std::size_t>(g.n), 0);
  for (const NodeId v : targets) in_part[static_cast<std::size_t>(v)] = 1;

  std::vector<NodeId> boundary;  // remote sources
  std::vector<NodeId> neighbors; // all sources (N_i)
  {
    std::vector<char> seen(static_cast<std::size_t>(g.n), 0);
    for (const NodeId v : targets) {
      for (const NodeId u : g.neighbors(v)) {
        if (seen[static_cast<std::size_t>(u)]) continue;
        seen[static_cast<std::size_t>(u)] = 1;
        neighbors.push_back(u);
        if (!in_part[static_cast<std::size_t>(u)]) boundary.push_back(u);
      }
    }
  }
  std::vector<char> is_boundary(static_cast<std::size_t>(g.n), 0);
  for (const NodeId u : boundary) is_boundary[static_cast<std::size_t>(u)] = 1;

  const Matrix z_exact = exact_aggregation(g, x, targets);
  const auto n_targets = static_cast<double>(targets.size());

  VarianceReport rep;
  rep.boundary_size = static_cast<NodeId>(boundary.size());
  rep.neighbor_size = static_cast<NodeId>(neighbors.size());
  rep.global_size = g.n;
  rep.budget = std::max<NodeId>(
      1, static_cast<NodeId>(std::lround(p * static_cast<double>(boundary.size()))));
  const auto s = static_cast<double>(rep.budget);

  Matrix z_hat(z_exact.rows(), z_exact.cols());

  // ---- BNS: Bernoulli(p) over the boundary, inner sources exact ---------
  {
    std::vector<char> kept(static_cast<std::size_t>(g.n), 0);
    double acc = 0.0;
    for (int t = 0; t < trials; ++t) {
      for (const NodeId u : boundary)
        kept[static_cast<std::size_t>(u)] = rng.next_bool(p) ? 1 : 0;
      z_hat.zero();
      for (std::size_t i = 0; i < targets.size(); ++i) {
        const NodeId v = targets[i];
        const auto nb = g.neighbors(v);
        if (nb.empty()) continue;
        float* o = z_hat.data() + static_cast<std::int64_t>(i) * d;
        for (const NodeId u : nb) {
          const float* sx = x.data() + static_cast<std::int64_t>(u) * d;
          if (!is_boundary[static_cast<std::size_t>(u)]) {
            for (std::int64_t c = 0; c < d; ++c) o[c] += sx[c];
          } else if (kept[static_cast<std::size_t>(u)]) {
            const float w = 1.0f / p;
            for (std::int64_t c = 0; c < d; ++c) o[c] += w * sx[c];
          }
        }
        const float inv = 1.0f / static_cast<float>(nb.size());
        for (std::int64_t c = 0; c < d; ++c) o[c] *= inv;
      }
      acc += frob_sq_diff(z_hat, z_exact);
    }
    rep.bns = acc / trials / n_targets;
  }

  // ---- Layer sampling (LADIES-like over N_i, FastGCN-like over V) -------
  const auto layer_sampled_variance = [&](const std::vector<NodeId>& pool) {
    const double pi = std::min(1.0, s / static_cast<double>(pool.size()));
    std::vector<char> kept(static_cast<std::size_t>(g.n), 0);
    double acc = 0.0;
    for (int t = 0; t < trials; ++t) {
      for (const NodeId u : pool)
        kept[static_cast<std::size_t>(u)] = rng.next_bool(pi) ? 1 : 0;
      z_hat.zero();
      for (std::size_t i = 0; i < targets.size(); ++i) {
        const NodeId v = targets[i];
        const auto nb = g.neighbors(v);
        if (nb.empty()) continue;
        float* o = z_hat.data() + static_cast<std::int64_t>(i) * d;
        const float w = static_cast<float>(1.0 / pi);
        for (const NodeId u : nb) {
          if (!kept[static_cast<std::size_t>(u)]) continue;
          const float* sx = x.data() + static_cast<std::int64_t>(u) * d;
          for (std::int64_t c = 0; c < d; ++c) o[c] += w * sx[c];
        }
        const float inv = 1.0f / static_cast<float>(nb.size());
        for (std::int64_t c = 0; c < d; ++c) o[c] *= inv;
      }
      acc += frob_sq_diff(z_hat, z_exact);
      for (const NodeId u : pool) kept[static_cast<std::size_t>(u)] = 0;
    }
    return acc / trials / n_targets;
  };
  rep.ladies_like = layer_sampled_variance(neighbors);
  {
    std::vector<NodeId> all(static_cast<std::size_t>(g.n));
    for (NodeId v = 0; v < g.n; ++v) all[static_cast<std::size_t>(v)] = v;
    rep.fastgcn_like = layer_sampled_variance(all);
  }

  // ---- GraphSAGE-like neighbor sampling ---------------------------------
  {
    const auto fanout = std::max<std::int64_t>(
        1, std::llround(s / std::max(1.0, n_targets)));
    double acc = 0.0;
    for (int t = 0; t < trials; ++t) {
      z_hat.zero();
      for (std::size_t i = 0; i < targets.size(); ++i) {
        const NodeId v = targets[i];
        const auto nb = g.neighbors(v);
        if (nb.empty()) continue;
        float* o = z_hat.data() + static_cast<std::int64_t>(i) * d;
        for (std::int64_t k = 0; k < fanout; ++k) {
          const NodeId u = nb[static_cast<std::size_t>(
              rng.next_below(nb.size()))];
          const float* sx = x.data() + static_cast<std::int64_t>(u) * d;
          for (std::int64_t c = 0; c < d; ++c) o[c] += sx[c];
        }
        const float inv = 1.0f / static_cast<float>(fanout);
        for (std::int64_t c = 0; c < d; ++c) o[c] *= inv;
      }
      acc += frob_sq_diff(z_hat, z_exact);
    }
    rep.sage_like = acc / trials / n_targets;
  }
  return rep;
}

} // namespace bnsgcn::core
