#pragma once

#include <string>
#include <string_view>

#include "api/report.hpp"
#include "api/run.hpp"
#include "common/json.hpp"

namespace bnsgcn::api {

/// Machine-readable form of a run. Field-complete: from_json(to_json(r))
/// reproduces every stored field exactly (doubles are emitted with
/// round-trip precision), which tests/test_report_json.cpp pins.
[[nodiscard]] json::Value to_json(const core::EpochBreakdown& e);
[[nodiscard]] json::Value to_json(const core::EvalPoint& p);
[[nodiscard]] json::Value to_json(const core::MemoryReport& m);
[[nodiscard]] json::Value to_json(const RunReport& r);

[[nodiscard]] core::EpochBreakdown breakdown_from_json(const json::Value& v);
[[nodiscard]] core::EvalPoint eval_point_from_json(const json::Value& v);
[[nodiscard]] core::MemoryReport memory_from_json(const json::Value& v);
[[nodiscard]] RunReport run_report_from_json(const json::Value& v);

/// Machine-readable form of a RunConfig, so artifacts can record the exact
/// configuration that produced each report and runs can be replayed from a
/// file. Every field except the (non-serializable) per-epoch observer
/// round-trips; on read, absent keys keep their C++ defaults, so config
/// files only spell out what they change. Schema: docs/BENCHMARKS.md.
[[nodiscard]] json::Value to_json(const RunConfig& cfg);
[[nodiscard]] RunConfig run_config_from_json(const json::Value& v);

/// String convenience wrappers.
[[nodiscard]] std::string to_json_string(const RunReport& r, int indent = 2);
[[nodiscard]] RunReport run_report_from_json_string(std::string_view text);
[[nodiscard]] std::string to_json_string(const RunConfig& cfg,
                                         int indent = 2);
[[nodiscard]] RunConfig run_config_from_json_string(std::string_view text);

} // namespace bnsgcn::api
