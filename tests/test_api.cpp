#include <gtest/gtest.h>

#include "api/cli.hpp"
#include "api/presets.hpp"
#include "api/run.hpp"
#include "common/check.hpp"
#include "partition/metis_like.hpp"

namespace bnsgcn {
namespace {

Dataset easy_dataset(std::uint64_t seed = 11) {
  SyntheticSpec spec;
  spec.name = "api-test";
  spec.n = 1200;
  spec.m = 14000;
  spec.communities = 6;
  spec.num_classes = 6;
  spec.feat_dim = 16;
  spec.p_intra = 0.92;
  spec.feature_noise = 1.2;
  spec.seed = seed;
  return make_synthetic(spec);
}

core::TrainerConfig small_trainer() {
  core::TrainerConfig cfg;
  cfg.num_layers = 2;
  cfg.hidden = 32;
  cfg.epochs = 10;
  cfg.seed = 7;
  cfg.sample_rate = 0.5f;
  return cfg;
}

TEST(ApiRun, BnsParityWithLegacyTrainerIsBitExact) {
  // The acceptance anchor of the api layer: run(kBns) is a thin wrapper
  // over BnsTrainer, so for a fixed seed the loss sequence, eval curve and
  // byte counts must match the direct engine call exactly.
  const Dataset ds = easy_dataset();
  const auto part = metis_like(ds.graph, 4);
  auto trainer_cfg = small_trainer();
  trainer_cfg.eval_every = 5;

  const core::TrainResult legacy =
      core::BnsTrainer(ds, part, trainer_cfg).train();

  api::RunConfig cfg;
  cfg.method = api::Method::kBns;
  cfg.trainer = trainer_cfg;
  const api::RunReport report = api::run(ds, part, cfg);

  ASSERT_EQ(report.train_loss.size(), legacy.train_loss.size());
  for (std::size_t i = 0; i < legacy.train_loss.size(); ++i)
    EXPECT_EQ(report.train_loss[i], legacy.train_loss[i]) << "epoch " << i;
  EXPECT_EQ(report.final_val, legacy.final_val);
  EXPECT_EQ(report.final_test, legacy.final_test);
  ASSERT_EQ(report.curve.size(), legacy.curve.size());
  for (std::size_t i = 0; i < legacy.curve.size(); ++i) {
    EXPECT_EQ(report.curve[i].val, legacy.curve[i].val);
    EXPECT_EQ(report.curve[i].test, legacy.curve[i].test);
  }
  ASSERT_EQ(report.epochs.size(), legacy.epochs.size());
  for (std::size_t i = 0; i < legacy.epochs.size(); ++i) {
    // Simulated/traffic components are deterministic; measured compute
    // time is scheduling noise and deliberately not compared.
    EXPECT_EQ(report.epochs[i].feature_bytes, legacy.epochs[i].feature_bytes);
    EXPECT_EQ(report.epochs[i].grad_bytes, legacy.epochs[i].grad_bytes);
    EXPECT_EQ(report.epochs[i].comm_s, legacy.epochs[i].comm_s);
    EXPECT_EQ(report.epochs[i].reduce_s, legacy.epochs[i].reduce_s);
  }
  EXPECT_EQ(report.memory.model_bytes, legacy.memory.model_bytes);
  EXPECT_EQ(report.memory.full_bytes, legacy.memory.full_bytes);
  EXPECT_EQ(report.method, "bns");
  EXPECT_EQ(report.dataset, ds.name);
}

TEST(ApiRun, RegistryCoversEveryBuiltinMethod) {
  const auto& registry = api::method_registry();
  ASSERT_GE(registry.size(), 9u);
  for (const api::Method m :
       {api::Method::kBns, api::Method::kRocProxy, api::Method::kCagnetProxy,
        api::Method::kFullGraph, api::Method::kNeighborSampling,
        api::Method::kFastGcn, api::Method::kLadies, api::Method::kClusterGcn,
        api::Method::kGraphSaint}) {
    const auto& info = api::method_info(m);
    EXPECT_FALSE(info.name.empty());
    EXPECT_FALSE(info.display.empty());
    EXPECT_TRUE(info.runner != nullptr);
    EXPECT_EQ(api::find_method(info.name), &info);
  }
  EXPECT_EQ(api::find_method("no-such-method"), nullptr);
}

TEST(ApiRun, EveryBuiltinMethodRunsEndToEnd) {
  const Dataset ds = easy_dataset(13);
  api::RunConfig cfg;
  cfg.trainer = small_trainer();
  cfg.trainer.epochs = 3;
  cfg.partition.nparts = 3;
  cfg.minibatch.batch_size = 256;
  cfg.minibatch.batches_per_epoch = 2;
  cfg.minibatch.num_clusters = 8;
  for (const auto& info : api::method_registry()) {
    cfg.method = info.method;
    const api::RunReport r = api::run(ds, cfg);
    EXPECT_EQ(r.method, info.name);
    EXPECT_EQ(r.num_epochs(), 3) << info.name;
    EXPECT_EQ(r.epochs.size(), 3u) << info.name;
    // Every built-in method tracks losses — including the CAGNET proxy
    // since its loss path landed (ROADMAP follow-up).
    ASSERT_EQ(r.train_loss.size(), 3u) << info.name;
    EXPECT_GT(r.train_loss.front(), 0.0) << info.name;
  }
}

TEST(ApiRun, CustomMethodRegistration) {
  api::MethodInfo info;
  info.name = "test-constant";
  info.display = "constant report (test)";
  info.runner = [](const Dataset& ds, const Partitioning*,
                   const api::RunConfig&) {
    api::RunReport r;
    r.dataset = ds.name;
    r.final_test = 0.42;
    return r;
  };
  api::register_method(info);
  api::RunConfig cfg;
  cfg.method = api::Method::kCustom;
  cfg.custom_method = "test-constant";
  const api::RunReport r = api::run(easy_dataset(17), cfg);
  EXPECT_EQ(r.final_test, 0.42);
  EXPECT_EQ(r.method, "test-constant");
  // Duplicate registration is rejected.
  EXPECT_THROW(api::register_method(info), CheckError);
}

TEST(ApiRun, UnknownCustomMethodThrows) {
  api::RunConfig cfg;
  cfg.method = api::Method::kCustom;
  cfg.custom_method = "does-not-exist";
  EXPECT_THROW((void)api::run(easy_dataset(19), cfg), CheckError);
}

TEST(ApiRun, ObserverStreamsBnsEpochs) {
  const Dataset ds = easy_dataset(23);
  api::RunConfig cfg;
  cfg.method = api::Method::kBns;
  cfg.trainer = small_trainer();
  cfg.trainer.epochs = 6;
  cfg.trainer.eval_every = 2;
  cfg.partition.nparts = 2;
  std::vector<core::EpochSnapshot> seen;
  int evals = 0;
  cfg.trainer.observer = [&](const core::EpochSnapshot& snap) {
    seen.push_back(snap);
    if (snap.eval != nullptr) ++evals;
  };
  const api::RunReport r = api::run(ds, cfg);
  ASSERT_EQ(seen.size(), 6u);
  for (int e = 0; e < 6; ++e) {
    EXPECT_EQ(seen[static_cast<std::size_t>(e)].epoch, e + 1);
    EXPECT_EQ(seen[static_cast<std::size_t>(e)].train_loss,
              r.train_loss[static_cast<std::size_t>(e)]);
  }
  EXPECT_EQ(evals, 3);  // epochs 2, 4, 6
}

TEST(ApiPresets, RegistryAndSpecs) {
  ASSERT_GE(api::dataset_registry().size(), 4u);
  for (const char* name : {"reddit", "products", "yelp", "papers"}) {
    const auto* preset = api::find_dataset(name);
    ASSERT_NE(preset, nullptr) << name;
    EXPECT_GE(preset->trainer.num_layers, 3) << name;
  }
  EXPECT_EQ(api::find_dataset("imaginary"), nullptr);
  EXPECT_THROW((void)api::preset_trainer_config("imaginary"), CheckError);

  api::DatasetSpec spec;
  spec.preset = "products";
  spec.scale = 0.1;
  const Dataset ds = api::make_dataset(spec);
  EXPECT_GT(ds.num_nodes(), 0);
  EXPECT_FALSE(ds.multilabel);
  spec.preset = "yelp";
  EXPECT_TRUE(api::make_dataset(spec).multilabel);
}

TEST(ApiPartition, SpecsProduceValidPartitionings) {
  const Dataset ds = easy_dataset(29);
  for (const auto kind :
       {api::PartitionSpec::Kind::kMetis, api::PartitionSpec::Kind::kRandom,
        api::PartitionSpec::Kind::kHash, api::PartitionSpec::Kind::kBfs}) {
    api::PartitionSpec spec;
    spec.kind = kind;
    spec.nparts = 4;
    const Partitioning part = api::make_partition(ds.graph, spec);
    part.validate();
    EXPECT_EQ(part.nparts, 4);
    EXPECT_EQ(part.num_nodes(), ds.num_nodes());
  }
}

TEST(ApiPartition, MetisSpecSeedReachesThePartitioner) {
  // Regression: make_partition used to drop PartitionSpec::seed for kMetis
  // (always calling metis_like with default options), so seed sweeps
  // silently reused one partition and the cache key would have lied.
  const Dataset ds = easy_dataset(31);
  api::PartitionSpec spec;
  spec.kind = api::PartitionSpec::Kind::kMetis;
  spec.nparts = 4;
  spec.seed = 1;
  const Partitioning a = api::make_partition(ds.graph, spec);
  spec.seed = 2;
  const Partitioning b = api::make_partition(ds.graph, spec);
  EXPECT_NE(a.owner, b.owner); // different seeds → different partitions
  // And the spec seed maps onto MetisLikeOptions::seed exactly.
  MetisLikeOptions opts;
  opts.seed = 2;
  EXPECT_EQ(b.owner, metis_like(ds.graph, 4, opts).owner);
}

TEST(ApiCli, ParsesAllFlags) {
  std::string error;
  const auto opts = api::try_parse_bench_args(
      {"--scale", "2.5", "--epochs", "7", "--json", "/tmp/out.json",
       "--part-cache", "/tmp/part-cache"},
      error);
  ASSERT_TRUE(opts.has_value()) << error;
  EXPECT_DOUBLE_EQ(opts->scale, 2.5);
  EXPECT_EQ(opts->epochs_or(99), 7);
  EXPECT_EQ(opts->json_path, "/tmp/out.json");
  EXPECT_EQ(opts->part_cache_dir, "/tmp/part-cache");
}

TEST(ApiCli, DefaultsAndErrors) {
  std::string error;
  const auto defaults = api::try_parse_bench_args({}, error);
  ASSERT_TRUE(defaults.has_value());
  EXPECT_DOUBLE_EQ(defaults->scale, 1.0);
  EXPECT_EQ(defaults->epochs_or(42), 42);
  EXPECT_TRUE(defaults->json_path.empty());

  EXPECT_FALSE(api::try_parse_bench_args({"--scale"}, error).has_value());
  EXPECT_FALSE(
      api::try_parse_bench_args({"--scale", "-1"}, error).has_value());
  EXPECT_FALSE(
      api::try_parse_bench_args({"--epochs", "zero"}, error).has_value());
  EXPECT_FALSE(api::try_parse_bench_args({"--bogus"}, error).has_value());
  EXPECT_FALSE(api::try_parse_bench_args({"--part-cache"}, error).has_value());
  EXPECT_FALSE(
      api::try_parse_bench_args({"--part-cache", ""}, error).has_value());
  EXPECT_FALSE(api::try_parse_bench_args({"--help"}, error).has_value());
  EXPECT_EQ(error, "help");
}

} // namespace
} // namespace bnsgcn
