#include "comm/process_group.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/check.hpp"

namespace bnsgcn::comm {

namespace {

std::string make_uds_dir() {
  const char* tmp = std::getenv("TMPDIR");
  std::string base = (tmp != nullptr && *tmp != '\0') ? tmp : "/tmp";
  if (base.back() == '/') base.pop_back();
  // sun_path is ~108 bytes; leave room for "/r<rank>.sock". A pathological
  // $TMPDIR falls back to /tmp rather than failing bind with ENAMETOOLONG.
  if (base.size() > 80) base = "/tmp";
  std::string tmpl = base + "/bnsgcn-uds-XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  BNSGCN_CHECK_MSG(::mkdtemp(buf.data()) != nullptr,
                   "mkdtemp failed for uds sockets");
  return std::string(buf.data());
}

int bind_uds_listener(const std::string& path, int backlog) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  BNSGCN_CHECK(fd >= 0);
  sockaddr_un sa{};
  sa.sun_family = AF_UNIX;
  BNSGCN_CHECK_MSG(path.size() < sizeof(sa.sun_path),
                   "uds path too long: " + path);
  std::strncpy(sa.sun_path, path.c_str(), sizeof(sa.sun_path) - 1);
  BNSGCN_CHECK_MSG(
      ::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) == 0,
      "bind failed for " + path + ": " + std::strerror(errno));
  BNSGCN_CHECK(::listen(fd, backlog) == 0);
  return fd;
}

int bind_tcp_listener(std::uint16_t* port_out, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  BNSGCN_CHECK(fd >= 0);
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  sa.sin_port = 0; // ephemeral: the kernel picks a free port
  BNSGCN_CHECK_MSG(
      ::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) == 0,
      std::string("tcp bind failed: ") + std::strerror(errno));
  BNSGCN_CHECK(::listen(fd, backlog) == 0);
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  BNSGCN_CHECK(::getsockname(fd, reinterpret_cast<sockaddr*>(&bound),
                             &len) == 0);
  *port_out = ntohs(bound.sin_port);
  return fd;
}

} // namespace

LocalGroup make_local_group(TransportKind kind, PartId nranks) {
  BNSGCN_CHECK(kind == TransportKind::kUds || kind == TransportKind::kTcp);
  BNSGCN_CHECK(nranks >= 1);
  LocalGroup group;
  group.endpoints.kind = kind;
  group.endpoints.addrs.resize(static_cast<std::size_t>(nranks));
  group.listen_fds.resize(static_cast<std::size_t>(nranks), -1);
  const int backlog = static_cast<int>(nranks) + 1;
  if (kind == TransportKind::kUds) {
    group.uds_dir = make_uds_dir();
    for (PartId r = 0; r < nranks; ++r) {
      const std::string path =
          group.uds_dir + "/r" + std::to_string(r) + ".sock";
      group.endpoints.addrs[static_cast<std::size_t>(r)] = path;
      group.listen_fds[static_cast<std::size_t>(r)] =
          bind_uds_listener(path, backlog);
    }
  } else {
    for (PartId r = 0; r < nranks; ++r) {
      std::uint16_t port = 0;
      group.listen_fds[static_cast<std::size_t>(r)] =
          bind_tcp_listener(&port, backlog);
      group.endpoints.addrs[static_cast<std::size_t>(r)] =
          "127.0.0.1:" + std::to_string(port);
    }
  }
  return group;
}

void cleanup_local_group(LocalGroup& group, bool fds_taken) {
  if (!fds_taken) {
    for (int& fd : group.listen_fds) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
  } else {
    for (int& fd : group.listen_fds) fd = -1;
  }
  if (group.endpoints.kind == TransportKind::kUds && !group.uds_dir.empty()) {
    for (const auto& path : group.endpoints.addrs) ::unlink(path.c_str());
    ::rmdir(group.uds_dir.c_str());
    group.uds_dir.clear();
  }
}

} // namespace bnsgcn::comm
