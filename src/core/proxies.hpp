#pragma once

#include "core/trainer.hpp"

namespace bnsgcn::core {

/// Throughput-shape proxies for the Fig. 4 baselines. Both run real
/// compute and move real bytes through the fabric; only wall-clock →
/// simulated-time conversion comes from the CostModel (DESIGN.md §1).

/// ROC-style training (Fig. 1b): vanilla partition parallelism whose layer
/// activations are additionally staged through a host "PCIe" swap channel.
/// Implemented as BnsTrainer(p=1) with host-swap traffic enabled.
[[nodiscard]] TrainResult run_roc_proxy(const Dataset& ds,
                                        const Partitioning& part,
                                        TrainerConfig cfg);

/// CAGNET-style 1.5D broadcast training (Fig. 1c): each layer broadcasts
/// every rank's inner-feature block to all ranks (volume (m-1)·n_i·d per
/// rank per layer, forward and backward), then aggregates against the full
/// feature matrix. `c` is CAGNET's replication factor: the broadcast is
/// split across c communication planes, dividing its serialized time
/// (modeled; c=1 is fully faithful).
[[nodiscard]] TrainResult run_cagnet_proxy(const Dataset& ds,
                                           const Partitioning& part,
                                           TrainerConfig cfg, int c);

} // namespace bnsgcn::core
