#include "partition/metis_like.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

#include "common/check.hpp"

namespace bnsgcn {

namespace {

/// Weighted graph used at the coarse levels. Node weights count collapsed
/// original nodes; edge weights count collapsed original edges.
struct WGraph {
  NodeId n = 0;
  std::vector<EdgeId> offsets;
  std::vector<NodeId> nbrs;
  std::vector<EdgeId> eweights;
  std::vector<NodeId> nweights;

  [[nodiscard]] std::span<const NodeId> neighbors(NodeId v) const {
    return {nbrs.data() + offsets[static_cast<std::size_t>(v)],
            static_cast<std::size_t>(offsets[static_cast<std::size_t>(v) + 1] -
                                     offsets[static_cast<std::size_t>(v)])};
  }
  [[nodiscard]] std::span<const EdgeId> edge_weights(NodeId v) const {
    return {eweights.data() + offsets[static_cast<std::size_t>(v)],
            static_cast<std::size_t>(offsets[static_cast<std::size_t>(v) + 1] -
                                     offsets[static_cast<std::size_t>(v)])};
  }
};

WGraph lift(const Csr& g) {
  WGraph w;
  w.n = g.n;
  w.offsets = g.offsets;
  w.nbrs = g.nbrs;
  w.eweights.assign(g.nbrs.size(), 1);
  w.nweights.assign(static_cast<std::size_t>(g.n), 1);
  return w;
}

/// One level of randomized heavy-edge matching. Returns the coarse graph and
/// the fine→coarse projection map.
struct CoarseLevel {
  WGraph graph;
  std::vector<NodeId> fine_to_coarse;
};

CoarseLevel coarsen_once(const WGraph& g, Rng& rng) {
  std::vector<NodeId> match(static_cast<std::size_t>(g.n), -1);
  std::vector<NodeId> order(static_cast<std::size_t>(g.n));
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);

  for (const NodeId v : order) {
    if (match[static_cast<std::size_t>(v)] != -1) continue;
    NodeId best = -1;
    EdgeId best_w = -1;
    const auto nb = g.neighbors(v);
    const auto ew = g.edge_weights(v);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      const NodeId u = nb[i];
      if (u == v || match[static_cast<std::size_t>(u)] != -1) continue;
      if (ew[i] > best_w) {
        best_w = ew[i];
        best = u;
      }
    }
    if (best == -1) {
      match[static_cast<std::size_t>(v)] = v; // stays single
    } else {
      match[static_cast<std::size_t>(v)] = best;
      match[static_cast<std::size_t>(best)] = v;
    }
  }

  CoarseLevel level;
  level.fine_to_coarse.assign(static_cast<std::size_t>(g.n), -1);
  NodeId nc = 0;
  for (NodeId v = 0; v < g.n; ++v) {
    if (level.fine_to_coarse[static_cast<std::size_t>(v)] != -1) continue;
    const NodeId u = match[static_cast<std::size_t>(v)];
    level.fine_to_coarse[static_cast<std::size_t>(v)] = nc;
    if (u != v) level.fine_to_coarse[static_cast<std::size_t>(u)] = nc;
    ++nc;
  }

  // Aggregate edges of the coarse graph.
  WGraph& cg = level.graph;
  cg.n = nc;
  cg.nweights.assign(static_cast<std::size_t>(nc), 0);
  for (NodeId v = 0; v < g.n; ++v) {
    cg.nweights[static_cast<std::size_t>(
        level.fine_to_coarse[static_cast<std::size_t>(v)])] +=
        g.nweights[static_cast<std::size_t>(v)];
  }

  // Collapse parallel edges with a per-node sort-and-merge. An unordered_map
  // here would hand the coarse CSR a hash-dependent neighbor order, and every
  // downstream pass (gain sweeps, refinement tie-breaks) observes that order —
  // the coarse graph must come out identical on every platform and run.
  std::vector<std::vector<std::pair<NodeId, EdgeId>>> adj(
      static_cast<std::size_t>(nc));
  for (NodeId v = 0; v < g.n; ++v) {
    const NodeId cv = level.fine_to_coarse[static_cast<std::size_t>(v)];
    const auto nb = g.neighbors(v);
    const auto ew = g.edge_weights(v);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      const NodeId cu = level.fine_to_coarse[static_cast<std::size_t>(nb[i])];
      if (cu == cv) continue;
      adj[static_cast<std::size_t>(cv)].emplace_back(cu, ew[i]);
    }
  }
  for (NodeId v = 0; v < nc; ++v) {
    auto& edges = adj[static_cast<std::size_t>(v)];
    std::sort(edges.begin(), edges.end());
    std::size_t out = 0;
    for (std::size_t i = 0; i < edges.size();) {
      std::size_t j = i;
      EdgeId w = 0;
      while (j < edges.size() && edges[j].first == edges[i].first)
        w += edges[j++].second;
      edges[out++] = {edges[i].first, w};
      i = j;
    }
    edges.resize(out);
  }
  cg.offsets.assign(static_cast<std::size_t>(nc) + 1, 0);
  for (NodeId v = 0; v < nc; ++v)
    cg.offsets[static_cast<std::size_t>(v) + 1] =
        cg.offsets[static_cast<std::size_t>(v)] +
        static_cast<EdgeId>(adj[static_cast<std::size_t>(v)].size());
  cg.nbrs.resize(static_cast<std::size_t>(cg.offsets.back()));
  cg.eweights.resize(static_cast<std::size_t>(cg.offsets.back()));
  for (NodeId v = 0; v < nc; ++v) {
    auto cursor = static_cast<std::size_t>(cg.offsets[static_cast<std::size_t>(v)]);
    for (const auto& [u, w] : adj[static_cast<std::size_t>(v)]) {
      cg.nbrs[cursor] = u;
      cg.eweights[cursor] = w;
      ++cursor;
    }
  }
  return level;
}

/// Communication volume of an owner assignment over a weighted graph,
/// counting collapsed node weights (Eq. 3 on the original graph).
EdgeId comm_volume(const WGraph& g, const std::vector<PartId>& owner,
                   PartId nparts) {
  EdgeId vol = 0;
  std::vector<PartId> seen(static_cast<std::size_t>(nparts), -1);
  for (NodeId v = 0; v < g.n; ++v) {
    const PartId pv = owner[static_cast<std::size_t>(v)];
    int distinct = 0;
    for (const NodeId u : g.neighbors(v)) {
      const PartId pu = owner[static_cast<std::size_t>(u)];
      if (pu != pv && seen[static_cast<std::size_t>(pu)] != v) {
        seen[static_cast<std::size_t>(pu)] = static_cast<PartId>(v);
        ++distinct;
      }
    }
    vol += static_cast<EdgeId>(distinct) *
           g.nweights[static_cast<std::size_t>(v)];
  }
  return vol;
}

/// Greedy seeded growing on the coarsest graph.
std::vector<PartId> grow_initial(const WGraph& g, PartId nparts,
                                 NodeId weight_cap, Rng& rng) {
  std::vector<PartId> owner(static_cast<std::size_t>(g.n), -1);
  std::vector<NodeId> load(static_cast<std::size_t>(nparts), 0);
  std::vector<NodeId> order(static_cast<std::size_t>(g.n));
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  std::size_t cursor = 0;

  for (PartId part = 0; part < nparts; ++part) {
    std::vector<NodeId> frontier;
    while (load[static_cast<std::size_t>(part)] < weight_cap) {
      NodeId v = -1;
      // Prefer frontier nodes (keeps parts connected); fall back to the
      // global order for new seeds.
      while (!frontier.empty()) {
        const NodeId cand = frontier.back();
        frontier.pop_back();
        if (owner[static_cast<std::size_t>(cand)] == -1) {
          v = cand;
          break;
        }
      }
      if (v == -1) {
        while (cursor < order.size() &&
               owner[static_cast<std::size_t>(order[cursor])] != -1)
          ++cursor;
        if (cursor == order.size()) break;
        v = order[cursor];
      }
      owner[static_cast<std::size_t>(v)] = part;
      load[static_cast<std::size_t>(part)] +=
          g.nweights[static_cast<std::size_t>(v)];
      for (const NodeId u : g.neighbors(v)) {
        if (owner[static_cast<std::size_t>(u)] == -1) frontier.push_back(u);
      }
    }
  }
  for (NodeId v = 0; v < g.n; ++v) {
    if (owner[static_cast<std::size_t>(v)] == -1) {
      const auto lightest = static_cast<PartId>(
          std::min_element(load.begin(), load.end()) - load.begin());
      owner[static_cast<std::size_t>(v)] = lightest;
      load[static_cast<std::size_t>(lightest)] +=
          g.nweights[static_cast<std::size_t>(v)];
    }
  }
  return owner;
}

/// Greedy boundary refinement: move nodes to the adjacent part with maximal
/// positive cut gain, respecting the weight cap. Several randomized sweeps.
void refine(const WGraph& g, std::vector<PartId>& owner, PartId nparts,
            NodeId weight_cap, int passes, Rng& rng) {
  std::vector<NodeId> load(static_cast<std::size_t>(nparts), 0);
  for (NodeId v = 0; v < g.n; ++v)
    load[static_cast<std::size_t>(owner[static_cast<std::size_t>(v)])] +=
        g.nweights[static_cast<std::size_t>(v)];

  std::vector<NodeId> order(static_cast<std::size_t>(g.n));
  std::iota(order.begin(), order.end(), 0);
  std::vector<EdgeId> part_weight(static_cast<std::size_t>(nparts));

  for (int pass = 0; pass < passes; ++pass) {
    rng.shuffle(order);
    bool moved = false;
    for (const NodeId v : order) {
      const PartId pv = owner[static_cast<std::size_t>(v)];
      const auto nb = g.neighbors(v);
      if (nb.empty()) continue;
      std::fill(part_weight.begin(), part_weight.end(), 0);
      const auto ew = g.edge_weights(v);
      bool boundary = false;
      for (std::size_t i = 0; i < nb.size(); ++i) {
        const PartId pu = owner[static_cast<std::size_t>(nb[i])];
        part_weight[static_cast<std::size_t>(pu)] += ew[i];
        if (pu != pv) boundary = true;
      }
      if (!boundary) continue;
      const EdgeId internal = part_weight[static_cast<std::size_t>(pv)];
      PartId best = pv;
      EdgeId best_gain = 0;
      for (PartId q = 0; q < nparts; ++q) {
        if (q == pv || part_weight[static_cast<std::size_t>(q)] == 0) continue;
        const EdgeId gain = part_weight[static_cast<std::size_t>(q)] - internal;
        const bool fits = load[static_cast<std::size_t>(q)] +
                              g.nweights[static_cast<std::size_t>(v)] <=
                          weight_cap;
        if (fits && gain > best_gain) {
          best_gain = gain;
          best = q;
        }
      }
      if (best != pv) {
        load[static_cast<std::size_t>(pv)] -=
            g.nweights[static_cast<std::size_t>(v)];
        load[static_cast<std::size_t>(best)] +=
            g.nweights[static_cast<std::size_t>(v)];
        owner[static_cast<std::size_t>(v)] = best;
        moved = true;
      }
    }
    if (!moved) break;
  }
}

} // namespace

Partitioning metis_like(const Csr& g, PartId nparts,
                        const MetisLikeOptions& opts) {
  BNSGCN_CHECK(g.n >= nparts && nparts >= 1);
  Rng rng(opts.seed);

  if (nparts == 1) {
    Partitioning p;
    p.nparts = 1;
    p.owner.assign(static_cast<std::size_t>(g.n), 0);
    return p;
  }

  // --- Coarsening phase -----------------------------------------------
  std::vector<CoarseLevel> levels;
  WGraph current = lift(g);
  const NodeId target = std::max<NodeId>(nparts * opts.coarsen_target, 256);
  while (current.n > target) {
    CoarseLevel level = coarsen_once(current, rng);
    // Matching stalls on star-like graphs; stop if reduction is too small.
    if (level.graph.n > current.n * 9 / 10) break;
    current = level.graph;
    levels.push_back(std::move(level));
    // `current` must stay valid for projection; keep a copy in the level.
    levels.back().graph = current;
  }

  // --- Initial partitioning on the coarsest graph ----------------------
  const NodeId total_weight = g.n;
  const auto weight_cap = static_cast<NodeId>(
      static_cast<double>((total_weight + nparts - 1) / nparts) *
      (1.0 + opts.balance_eps));

  const WGraph& coarsest = levels.empty() ? current : levels.back().graph;
  std::vector<PartId> owner;
  EdgeId best_vol = -1;
  constexpr int kInitialTries = 4;
  for (int attempt = 0; attempt < kInitialTries; ++attempt) {
    auto cand = grow_initial(coarsest, nparts, weight_cap, rng);
    refine(coarsest, cand, nparts, weight_cap, opts.refine_passes, rng);
    const EdgeId vol = comm_volume(coarsest, cand, nparts);
    if (best_vol < 0 || vol < best_vol) {
      best_vol = vol;
      owner = std::move(cand);
    }
  }

  // --- Uncoarsening + per-level refinement -----------------------------
  for (auto it = levels.rbegin(); it != levels.rend(); ++it) {
    const bool is_finest_level = (std::next(it) == levels.rend());
    const WGraph fine =
        is_finest_level ? lift(g) : std::next(it)->graph;
    std::vector<PartId> fine_owner(static_cast<std::size_t>(fine.n));
    for (NodeId v = 0; v < fine.n; ++v) {
      fine_owner[static_cast<std::size_t>(v)] = owner[static_cast<std::size_t>(
          it->fine_to_coarse[static_cast<std::size_t>(v)])];
    }
    refine(fine, fine_owner, nparts, weight_cap, opts.refine_passes, rng);
    owner = std::move(fine_owner);
  }
  if (levels.empty()) {
    // Graph was already small enough: owner is over g directly.
    refine(lift(g), owner, nparts, weight_cap, opts.refine_passes, rng);
  }

  Partitioning p;
  p.nparts = nparts;
  p.owner = std::move(owner);

  // Guarantee non-empty partitions (can occur on tiny/degenerate graphs).
  std::vector<NodeId> count(static_cast<std::size_t>(nparts), 0);
  for (const PartId q : p.owner) ++count[static_cast<std::size_t>(q)];
  for (PartId q = 0; q < nparts; ++q) {
    if (count[static_cast<std::size_t>(q)] == 0) {
      const auto heaviest = static_cast<PartId>(
          std::max_element(count.begin(), count.end()) - count.begin());
      for (NodeId v = 0; v < g.n; ++v) {
        if (p.owner[static_cast<std::size_t>(v)] == heaviest) {
          p.owner[static_cast<std::size_t>(v)] = q;
          --count[static_cast<std::size_t>(heaviest)];
          ++count[static_cast<std::size_t>(q)];
          break;
        }
      }
    }
  }
  return p;
}

} // namespace bnsgcn
