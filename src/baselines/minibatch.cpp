#include "baselines/minibatch.hpp"

#include "common/stopwatch.hpp"
#include "nn/adam.hpp"
#include "nn/loss.hpp"
#include "tensor/ops.hpp"

namespace bnsgcn::baselines {

FullGraphContext make_full_context(const Csr& g) {
  FullGraphContext ctx;
  ctx.adj.n_dst = g.n;
  ctx.adj.n_src = g.n;
  ctx.adj.offsets = g.offsets;
  ctx.adj.nbrs = g.nbrs;
  ctx.inv_deg.resize(static_cast<std::size_t>(g.n));
  for (NodeId v = 0; v < g.n; ++v) {
    ctx.inv_deg[static_cast<std::size_t>(v)] =
        g.degree(v) > 0 ? 1.0f / static_cast<float>(g.degree(v)) : 0.0f;
  }
  return ctx;
}

std::pair<double, double> evaluate_full(
    const Dataset& ds, const FullGraphContext& ctx,
    std::vector<std::unique_ptr<nn::Layer>>& layers) {
  Matrix h = ds.features;
  for (auto& layer : layers)
    h = layer->forward(ctx.adj, h, ctx.inv_deg, /*training=*/false);
  if (ds.multilabel) {
    const auto v = nn::f1_counts(h, ds.multilabels, ds.val_nodes);
    const auto t = nn::f1_counts(h, ds.multilabels, ds.test_nodes);
    return {v.micro_f1(), t.micro_f1()};
  }
  const auto [vc, vt] = nn::accuracy_counts(h, ds.labels, ds.val_nodes);
  const auto [tc, tt] = nn::accuracy_counts(h, ds.labels, ds.test_nodes);
  return {vt > 0 ? static_cast<double>(vc) / static_cast<double>(vt) : 0.0,
          tt > 0 ? static_cast<double>(tc) / static_cast<double>(tt) : 0.0};
}

api::RunReport run_minibatch_training(
    const Dataset& ds, const core::TrainerConfig& cfg,
    const MinibatchConfig& mb, const std::function<Batch(Rng&)>& next_batch) {
  // The exact model definition every other method uses.
  auto layers = core::build_model(cfg, ds.feat_dim(), ds.num_classes, 0);
  std::vector<Matrix*> params, grads;
  for (auto& l : layers) {
    for (Matrix* p : l->params()) params.push_back(p);
    for (Matrix* g : l->grads()) grads.push_back(g);
  }
  nn::Adam adam(std::move(params), std::move(grads), {.lr = mb.lr});
  const FullGraphContext full_ctx = make_full_context(ds.graph);

  Rng rng(cfg.seed ^ 0xBA5E1155ULL);
  api::RunReport result;
  result.dataset = ds.name;
  Stopwatch wall;

  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    Stopwatch epoch_wall;
    Accumulator sample_acc;
    double epoch_loss = 0.0;
    int counted = 0;
    for (int b = 0; b < mb.batches_per_epoch; ++b) {
      Batch batch;
      {
        ScopedTimer t(sample_acc);
        batch = next_batch(rng);
      }
      if (batch.loss_rows.empty()) continue;
      BNSGCN_CHECK(batch.adjs.size() ==
                   static_cast<std::size_t>(cfg.num_layers));

      Matrix h;
      ops::gather_rows(ds.features, batch.input_nodes, h);
      for (std::size_t l = 0; l < layers.size(); ++l)
        h = layers[l]->forward(batch.adjs[l], h, batch.inv_deg[l],
                               /*training=*/true);

      // Per-batch targets, gathered in output-row order.
      Matrix dlogits;
      double loss = 0.0;
      if (ds.multilabel) {
        Matrix targets;
        ops::gather_rows(ds.multilabels, batch.output_nodes, targets);
        const float inv = 1.0f / (static_cast<float>(batch.loss_rows.size()) *
                                  static_cast<float>(ds.num_classes));
        loss = nn::sigmoid_bce(h, targets, batch.loss_rows, inv, dlogits);
      } else {
        std::vector<int> labels(batch.output_nodes.size());
        for (std::size_t i = 0; i < labels.size(); ++i)
          labels[i] = ds.labels[static_cast<std::size_t>(
              batch.output_nodes[i])];
        const float inv = 1.0f / static_cast<float>(batch.loss_rows.size());
        loss = nn::softmax_xent(h, labels, batch.loss_rows, inv, dlogits);
      }
      epoch_loss += loss;
      ++counted;

      for (auto& l : layers) l->zero_grads();
      Matrix grad = std::move(dlogits);
      for (std::size_t l = layers.size(); l-- > 0;) {
        Matrix dfeats =
            layers[l]->backward(batch.adjs[l], grad, batch.inv_deg[l]);
        if (l == 0) break;
        grad = std::move(dfeats);
      }
      adam.step();
    }
    result.train_loss.push_back(counted > 0 ? epoch_loss / counted : 0.0);

    // Single-process wall time split into sampler vs everything else; the
    // comm fields stay zero (no fabric involved).
    core::EpochBreakdown eb;
    eb.sample_s = sample_acc.seconds();
    eb.compute_s = std::max(0.0, epoch_wall.elapsed_s() - eb.sample_s);
    result.epochs.push_back(eb);

    const bool last = (epoch == cfg.epochs - 1);
    bool evaluated = false;
    if (last || (cfg.eval_every > 0 && (epoch + 1) % cfg.eval_every == 0)) {
      evaluated = true;
      const auto [val, test] = evaluate_full(ds, full_ctx, layers);
      result.curve.push_back({.epoch = epoch + 1, .val = val, .test = test,
                              .train_loss = result.train_loss.back()});
      if (last) {
        result.final_val = val;
        result.final_test = test;
      }
    }
    if (cfg.observer) {
      core::EpochSnapshot snap;
      snap.epoch = epoch + 1;
      snap.train_loss = result.train_loss.back();
      snap.breakdown = eb;
      snap.eval = evaluated ? &result.curve.back() : nullptr;
      cfg.observer(snap);
    }
  }
  result.wall_time_s = wall.elapsed_s();
  return result;
}

} // namespace bnsgcn::baselines
