#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.hpp"

namespace bnsgcn {
namespace {

TEST(Generators, ErdosRenyiBasics) {
  Rng rng(1);
  const Csr g = gen::erdos_renyi(1000, 5000, rng);
  g.validate();
  EXPECT_EQ(g.n, 1000);
  // Dedup may remove a few duplicate pairs; stays close to 2*m arcs.
  EXPECT_GT(g.num_arcs(), 9000);
  EXPECT_LE(g.num_arcs(), 10000);
}

TEST(Generators, RmatIsSkewed) {
  Rng rng(2);
  const Csr g = gen::rmat(4096, 40000, rng);
  g.validate();
  NodeId max_deg = 0;
  for (NodeId v = 0; v < g.n; ++v) max_deg = std::max(max_deg, g.degree(v));
  const double avg = g.average_degree();
  // Hub degree should far exceed the average for RMAT's default skew.
  EXPECT_GT(static_cast<double>(max_deg), 10.0 * avg);
}

TEST(Generators, BarabasiAlbertDegreeSum) {
  Rng rng(3);
  const Csr g = gen::barabasi_albert(2000, 3, rng);
  g.validate();
  EXPECT_EQ(g.n, 2000);
  // Each new node adds ~3 edges (minus occasional self-hit skips).
  EXPECT_GT(g.num_arcs(), 2 * 3 * 1900);
}

TEST(Generators, PlantedPartitionCommunityStructure) {
  Rng rng(4);
  gen::PlantedPartitionParams p;
  p.n = 4000;
  p.m = 40000;
  p.communities = 8;
  p.p_intra = 0.9;
  const auto planted = gen::planted_partition(p, rng);
  planted.graph.validate();
  ASSERT_EQ(static_cast<NodeId>(planted.community.size()), p.n);

  // Measured intra-community edge fraction should be close to p_intra.
  EdgeId intra = 0, total = 0;
  for (NodeId v = 0; v < planted.graph.n; ++v) {
    for (const NodeId u : planted.graph.neighbors(v)) {
      if (u < v) continue;
      ++total;
      if (planted.community[static_cast<std::size_t>(u)] ==
          planted.community[static_cast<std::size_t>(v)])
        ++intra;
    }
  }
  const double frac = static_cast<double>(intra) / static_cast<double>(total);
  EXPECT_NEAR(frac, 0.9, 0.03);
}

TEST(Generators, PlantedPartitionDegreeSkew) {
  Rng rng(5);
  gen::PlantedPartitionParams p;
  p.n = 4000;
  p.m = 60000;
  p.skew = 1.8;
  const auto planted = gen::planted_partition(p, rng);
  NodeId max_deg = 0;
  for (NodeId v = 0; v < planted.graph.n; ++v)
    max_deg = std::max(max_deg, planted.graph.degree(v));
  EXPECT_GT(static_cast<double>(max_deg),
            5.0 * planted.graph.average_degree());
}

TEST(Generators, PlantedPartitionCommunityBalance) {
  Rng rng(6);
  gen::PlantedPartitionParams p;
  p.n = 1000;
  p.m = 5000;
  p.communities = 10;
  const auto planted = gen::planted_partition(p, rng);
  std::vector<int> counts(10, 0);
  for (const int c : planted.community) ++counts[static_cast<std::size_t>(c)];
  for (const int c : counts) EXPECT_EQ(c, 100);
}

TEST(Generators, Ring) {
  const Csr g = gen::ring(10);
  g.validate();
  for (NodeId v = 0; v < 10; ++v) EXPECT_EQ(g.degree(v), 2);
}

TEST(Generators, Star) {
  const Csr g = gen::star(10);
  g.validate();
  EXPECT_EQ(g.degree(0), 9);
  for (NodeId v = 1; v < 10; ++v) EXPECT_EQ(g.degree(v), 1);
}

TEST(Generators, Grid) {
  const Csr g = gen::grid(3, 4);
  g.validate();
  EXPECT_EQ(g.n, 12);
  EXPECT_EQ(g.degree(0), 2);  // corner
  EXPECT_EQ(g.degree(1), 3);  // edge
  EXPECT_EQ(g.degree(5), 4);  // interior
}

TEST(Generators, Deterministic) {
  Rng a(7), b(7);
  const Csr g1 = gen::rmat(512, 2000, a);
  const Csr g2 = gen::rmat(512, 2000, b);
  EXPECT_EQ(g1.nbrs, g2.nbrs);
  EXPECT_EQ(g1.offsets, g2.offsets);
}

} // namespace
} // namespace bnsgcn
