#include "core/memory_model.hpp"

#include <algorithm>

namespace bnsgcn::core {

double MemoryReport::max_model_bytes() const {
  double mx = 0.0;
  for (const double b : model_bytes) mx = std::max(mx, b);
  return mx;
}

std::int64_t MemoryReport::max_full_bytes() const {
  std::int64_t mx = 0;
  for (const std::int64_t b : full_bytes) mx = std::max(mx, b);
  return mx;
}

double MemoryReport::reduction_vs_full() const {
  const auto full = static_cast<double>(max_full_bytes());
  if (full <= 0.0) return 0.0;
  return 1.0 - max_model_bytes() / full;
}

} // namespace bnsgcn::core
