#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/barrier.hpp"

namespace bnsgcn {
namespace {

TEST(Barrier, SingleParty) {
  Barrier b(1);
  EXPECT_TRUE(b.arrive_and_wait());
  EXPECT_TRUE(b.arrive_and_wait());
}

TEST(Barrier, AllThreadsProceedTogether) {
  constexpr int kThreads = 8;
  constexpr int kRounds = 50;
  Barrier barrier(kThreads);
  std::atomic<int> phase_count{0};
  std::atomic<bool> violation{false};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        phase_count.fetch_add(1);
        barrier.arrive_and_wait();
        // After the barrier every thread must observe all arrivals.
        if (phase_count.load() < (round + 1) * kThreads) violation = true;
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(phase_count.load(), kThreads * kRounds);
}

TEST(Barrier, ExactlyOneSerialThreadPerGeneration) {
  constexpr int kThreads = 6;
  constexpr int kRounds = 100;
  Barrier barrier(kThreads);
  std::atomic<int> serial_count{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        if (barrier.arrive_and_wait()) serial_count.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(serial_count.load(), kRounds);
}

} // namespace
} // namespace bnsgcn
