#include "comm/cost_model.hpp"

#include <limits>

namespace bnsgcn::comm {

CostModel CostModel::pcie3_x16() {
  // Effective host-mediated GPU<->GPU bandwidth on PCIe3 x16 is well below
  // the 16 GB/s line rate once protocol overhead and the double hop are
  // paid; 8 GB/s with ~20us software latency matches Gloo-on-PCIe numbers.
  return {.latency_s = 20e-6, .bytes_per_s = 8.0e9};
}

CostModel CostModel::multi_machine() {
  // The papers100M testbed communicates across 32 machines; per-pair
  // effective bandwidth on a shared 10-25GbE class fabric is ~1 GB/s.
  return {.latency_s = 50e-6, .bytes_per_s = 1.0e9};
}

CostModel CostModel::infinite() {
  return {.latency_s = 0.0,
          .bytes_per_s = std::numeric_limits<double>::infinity()};
}

CostModel CostModel::scaled_pcie3() {
  // 8 GB/s / ~500 (GPU-to-CPU compute ratio) ≈ 16 MB/s. Latency is kept
  // near wall-clock scale (it does not shrink with compute speed).
  return {.latency_s = 100e-6, .bytes_per_s = 16.0e6};
}

CostModel CostModel::scaled_multi_machine() {
  // 1 GB/s effective inter-machine bandwidth, same ~500x normalization.
  return {.latency_s = 250e-6, .bytes_per_s = 2.0e6};
}

} // namespace bnsgcn::comm
