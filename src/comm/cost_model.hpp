#pragma once

#include <cstdint>

namespace bnsgcn::comm {

/// Analytic interconnect model: time = latency + bytes / bandwidth.
///
/// The repo runs all "ranks" as threads of one process, so physical message
/// time is a memcpy; the paper's experiments, however, are bottlenecked by
/// PCIe/Ethernet. Byte counts are measured exactly by the fabric and this
/// model converts them into simulated seconds for the throughput/breakdown
/// benches (Figs. 4–5, Table 6). See DESIGN.md §1.
struct CostModel {
  double latency_s = 10e-6;        // per message
  double bytes_per_s = 12.0e9;     // PCIe3 x16 effective ~12 GB/s

  [[nodiscard]] double message_time(std::int64_t bytes) const {
    return latency_s + static_cast<double>(bytes) / bytes_per_s;
  }

  /// Ring allreduce on `bytes` across `nranks`: 2*(n-1)/n of the payload
  /// crosses each link, in 2*(n-1) latency-bound steps.
  [[nodiscard]] double allreduce_time(std::int64_t bytes, int nranks) const {
    if (nranks <= 1) return 0.0;
    const double payload =
        2.0 * static_cast<double>(nranks - 1) / static_cast<double>(nranks) *
        static_cast<double>(bytes);
    return 2.0 * (nranks - 1) * latency_s + payload / bytes_per_s;
  }

  /// Presets mirroring the paper's testbeds at face value.
  static CostModel pcie3_x16();    // single machine, 10×2080Ti over PCIe3
  static CostModel multi_machine();// 32-machine cluster interconnect
  static CostModel infinite();     // no simulated comm cost (ablation)

  /// Compute-normalized presets (the bench defaults). A CPU rank here
  /// computes ~500x slower than the paper's 2080Ti, so an interconnect at
  /// face-value bandwidth would make compute look dominant and destroy the
  /// paper's compute:communication ratios. These presets divide bandwidth
  /// by the same factor, preserving every ratio-based result (breakdown
  /// percentages, relative throughputs, crossovers). See DESIGN.md §1.
  static CostModel scaled_pcie3();
  static CostModel scaled_multi_machine();
};

} // namespace bnsgcn::comm
