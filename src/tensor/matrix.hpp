#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace bnsgcn {

/// Process-wide accounting of live Matrix bytes. The memory experiments
/// (Fig. 6 / Fig. 8 / Eq. 4) read the high-water mark of this counter per
/// training region instead of relying on malloc introspection.
class MemoryTracker {
 public:
  static MemoryTracker& instance();

  void on_alloc(std::int64_t bytes);
  void on_free(std::int64_t bytes);

  [[nodiscard]] std::int64_t live_bytes() const { return live_.load(); }
  [[nodiscard]] std::int64_t peak_bytes() const { return peak_.load(); }

  /// Resets the peak to the current live value (start of a measured region).
  void reset_peak();

 private:
  std::atomic<std::int64_t> live_{0};
  std::atomic<std::int64_t> peak_{0};
};

/// Dense row-major float32 matrix. The single tensor type of this repo:
/// node-feature blocks, weights, gradients and logits are all Matrix.
///
/// Semantics follow the C++ Core Guidelines for a regular type: deep copy,
/// cheap move, value comparison helpers live in ops.hpp.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::int64_t rows, std::int64_t cols);
  Matrix(std::int64_t rows, std::int64_t cols, float fill);
  /// Row-major literal, e.g. Matrix({{1,2},{3,4}}).
  Matrix(std::initializer_list<std::initializer_list<float>> rows);

  Matrix(const Matrix& other);
  Matrix& operator=(const Matrix& other);
  Matrix(Matrix&& other) noexcept;
  Matrix& operator=(Matrix&& other) noexcept;
  ~Matrix();

  [[nodiscard]] std::int64_t rows() const { return rows_; }
  [[nodiscard]] std::int64_t cols() const { return cols_; }
  [[nodiscard]] std::int64_t size() const { return rows_ * cols_; }
  [[nodiscard]] std::int64_t bytes() const {
    return size() * static_cast<std::int64_t>(sizeof(float));
  }
  [[nodiscard]] bool empty() const { return size() == 0; }

  [[nodiscard]] float* data() { return data_.data(); }
  [[nodiscard]] const float* data() const { return data_.data(); }

  [[nodiscard]] float& at(std::int64_t r, std::int64_t c) {
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }
  [[nodiscard]] float at(std::int64_t r, std::int64_t c) const {
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }

  [[nodiscard]] std::span<float> row(std::int64_t r) {
    return {data() + r * cols_, static_cast<std::size_t>(cols_)};
  }
  [[nodiscard]] std::span<const float> row(std::int64_t r) const {
    return {data() + r * cols_, static_cast<std::size_t>(cols_)};
  }

  [[nodiscard]] std::span<float> flat() {
    return {data(), static_cast<std::size_t>(size())};
  }
  [[nodiscard]] std::span<const float> flat() const {
    return {data(), static_cast<std::size_t>(size())};
  }

  void fill(float value);
  void zero() { fill(0.0f); }

  /// Reshape preserving the element count.
  void reshape(std::int64_t rows, std::int64_t cols);

  /// Resize discarding contents (tracked by MemoryTracker).
  void resize(std::int64_t rows, std::int64_t cols);

  /// Gaussian init with given stddev (Glorot-style helpers in ops.hpp).
  void randomize_gaussian(Rng& rng, float stddev);

 private:
  void track_alloc();
  void track_free();

  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::vector<float> data_;
};

} // namespace bnsgcn
