#include "graph/dataset.hpp"

#include <algorithm>
#include <cmath>

#include "graph/generators.hpp"

namespace bnsgcn {

void Dataset::validate() const {
  graph.validate();
  BNSGCN_CHECK(features.rows() == graph.n);
  if (multilabel) {
    BNSGCN_CHECK(multilabels.rows() == graph.n);
    BNSGCN_CHECK(multilabels.cols() == num_classes);
    BNSGCN_CHECK(labels.empty());
  } else {
    BNSGCN_CHECK(static_cast<NodeId>(labels.size()) == graph.n);
    for (const int y : labels) BNSGCN_CHECK(y >= 0 && y < num_classes);
  }
  std::vector<char> seen(static_cast<std::size_t>(graph.n), 0);
  auto mark = [&](const std::vector<NodeId>& split) {
    for (const NodeId v : split) {
      BNSGCN_CHECK(v >= 0 && v < graph.n);
      BNSGCN_CHECK_MSG(!seen[static_cast<std::size_t>(v)],
                       "overlapping train/val/test splits");
      seen[static_cast<std::size_t>(v)] = 1;
    }
  };
  mark(train_nodes);
  mark(val_nodes);
  mark(test_nodes);
}

Dataset make_synthetic(const SyntheticSpec& spec) {
  BNSGCN_CHECK(spec.num_classes >= 2);
  BNSGCN_CHECK(spec.communities >= spec.num_classes);
  Rng rng(spec.seed);

  gen::PlantedPartitionParams pp;
  pp.n = spec.n;
  pp.m = spec.m;
  pp.communities = spec.communities;
  pp.p_intra = spec.p_intra;
  pp.skew = spec.degree_skew;
  auto planted = gen::planted_partition(pp, rng);

  Dataset ds;
  ds.name = spec.name;
  ds.graph = std::move(planted.graph);
  ds.num_classes = spec.num_classes;
  ds.multilabel = spec.multilabel;

  // Class of a community: round-robin so several communities can share a
  // class (communities >= classes keeps intra-class mixing realistic).
  const auto class_of = [&](int community) {
    return community % spec.num_classes;
  };

  // Class mean feature vectors.
  std::vector<Matrix> mu;
  mu.reserve(static_cast<std::size_t>(spec.num_classes));
  for (int c = 0; c < spec.num_classes; ++c) {
    Matrix m(1, spec.feat_dim);
    m.randomize_gaussian(rng, static_cast<float>(spec.feature_signal));
    mu.push_back(std::move(m));
  }

  ds.features.resize(spec.n, spec.feat_dim);
  if (spec.multilabel) {
    ds.multilabels.resize(spec.n, spec.num_classes);
  } else {
    ds.labels.resize(static_cast<std::size_t>(spec.n));
  }

  for (NodeId v = 0; v < spec.n; ++v) {
    int cls = class_of(planted.community[static_cast<std::size_t>(v)]);
    if (rng.next_bool(spec.label_noise)) {
      cls = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(spec.num_classes)));
    }
    float* feat = ds.features.data() + static_cast<std::int64_t>(v) * spec.feat_dim;
    const float* base = mu[static_cast<std::size_t>(cls)].data();
    for (std::int64_t d = 0; d < spec.feat_dim; ++d) {
      feat[d] = base[d] + static_cast<float>(rng.next_gaussian() *
                                             spec.feature_noise);
    }
    if (spec.multilabel) {
      // Primary label always on; extra labels drawn near the community id so
      // label co-occurrence has structure (as in Yelp business categories).
      float* row = ds.multilabels.data() +
                   static_cast<std::int64_t>(v) * spec.num_classes;
      row[cls] = 1.0f;
      const double extra_rate =
          static_cast<double>(spec.labels_per_node - 1) / spec.num_classes;
      for (int c = 0; c < spec.num_classes; ++c) {
        if (c != cls && rng.next_bool(extra_rate)) row[c] = 1.0f;
      }
    } else {
      ds.labels[static_cast<std::size_t>(v)] = cls;
    }
  }

  // Uniform random split.
  std::vector<NodeId> order(static_cast<std::size_t>(spec.n));
  for (NodeId v = 0; v < spec.n; ++v) order[static_cast<std::size_t>(v)] = v;
  rng.shuffle(order);
  const auto n_train = static_cast<std::size_t>(spec.train_frac * spec.n);
  const auto n_val = static_cast<std::size_t>(spec.val_frac * spec.n);
  ds.train_nodes.assign(order.begin(),
                        order.begin() + static_cast<std::ptrdiff_t>(n_train));
  ds.val_nodes.assign(order.begin() + static_cast<std::ptrdiff_t>(n_train),
                      order.begin() +
                          static_cast<std::ptrdiff_t>(n_train + n_val));
  ds.test_nodes.assign(order.begin() +
                           static_cast<std::ptrdiff_t>(n_train + n_val),
                       order.end());
  std::sort(ds.train_nodes.begin(), ds.train_nodes.end());
  std::sort(ds.val_nodes.begin(), ds.val_nodes.end());
  std::sort(ds.test_nodes.begin(), ds.test_nodes.end());
  ds.validate();
  return ds;
}

// ---------------------------------------------------------------------------
// Presets: node/edge counts are the paper's graphs scaled to CPU budgets,
// keeping each graph's *relative* density (Reddit avg deg ~100 here vs 489
// in the paper; products sparse; yelp sparse multilabel). Feature widths and
// class counts match Table 3.
// ---------------------------------------------------------------------------

SyntheticSpec reddit_like(double scale) {
  SyntheticSpec s;
  s.name = "reddit-like";
  s.n = static_cast<NodeId>(24'000 * scale);
  s.m = static_cast<EdgeId>(1'200'000 * scale);
  s.communities = 41;
  s.num_classes = 41;
  s.feat_dim = 128; // paper: 602; reduced with the rest of the scale
  s.p_intra = 0.88;
  s.degree_skew = 2.0;
  // Noise scaled so raw features alone are weakly separable (LDA SNR ~3):
  // neighbor aggregation must do the denoising, as on the real datasets.
  // This is what makes dropping boundary information costly (p=0 rows of
  // Tables 4/7).
  s.feature_noise = 6.5;
  s.train_frac = 0.66;
  s.val_frac = 0.10;
  s.seed = 41;
  return s;
}

SyntheticSpec products_like(double scale) {
  SyntheticSpec s;
  s.name = "products-like";
  s.n = static_cast<NodeId>(60'000 * scale);
  s.m = static_cast<EdgeId>(1'560'000 * scale); // avg degree ~52 (paper 50.5)
  s.communities = 47;
  s.num_classes = 47;
  s.feat_dim = 100;
  s.p_intra = 0.85;
  s.degree_skew = 1.8;
  s.feature_noise = 5.5; // weakly separable raw features (see reddit_like)
  // ogbn-products: tiny train split (8%) — the overfitting study (Fig. 7)
  // depends on this.
  s.train_frac = 0.08;
  s.val_frac = 0.02;
  s.seed = 47;
  return s;
}

SyntheticSpec yelp_like(double scale) {
  SyntheticSpec s;
  s.name = "yelp-like";
  s.n = static_cast<NodeId>(36'000 * scale);
  s.m = static_cast<EdgeId>(360'000 * scale); // sparse (paper avg deg ~10)
  s.communities = 50;
  s.num_classes = 50; // paper: 100 label dims
  s.feat_dim = 64;
  s.p_intra = 0.85;
  s.degree_skew = 2.2;
  s.feature_noise = 2.0; // sparse graph (deg ~10): little neighbor
                         // denoising available, so keep features cleaner
  s.multilabel = true;
  s.labels_per_node = 3;
  s.train_frac = 0.75;
  s.val_frac = 0.10;
  s.seed = 100;
  return s;
}

SyntheticSpec papers_like(double scale) {
  SyntheticSpec s;
  s.name = "papers-like";
  s.n = static_cast<NodeId>(96'000 * scale);
  s.m = static_cast<EdgeId>(1'400'000 * scale);
  s.communities = 172;
  s.num_classes = 172;
  s.feat_dim = 128;
  s.p_intra = 0.82;
  s.degree_skew = 1.9;
  s.feature_noise = 5.0; // weakly separable raw features (see reddit_like)
  s.train_frac = 0.78;
  s.val_frac = 0.08;
  s.seed = 172;
  return s;
}

} // namespace bnsgcn
