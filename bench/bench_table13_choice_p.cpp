// Table 13 (Appendix E): test accuracy for sampling rates between 0.1 and
// 1.0 — the "choice of p" study.
// Expected shape: flat (±0.3) across 0.1..1.0, with a slight edge for small
// p from the regularization effect; p=0.1 is the sweet spot once its
// communication savings are counted.

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace bnsgcn;
  const auto opts = api::parse_bench_args(argc, argv);
  bench::print_banner("Table 13", "accuracy across p in [0.1, 1.0]");
  bench::ReportSink sink("Table 13", opts);
  const double s = opts.scale;

  struct Row {
    std::string name;
    const char* preset;
    bench::PresetRun run;
    PartId parts;
  };
  std::vector<Row> rows;
  rows.push_back({"Reddit-like (2 parts)", "reddit",
                  bench::load_preset("reddit", 0.3 * s, opts), 2});
  rows.push_back({"products-like (5 parts)", "products",
                  bench::load_preset("products", 0.2 * s, opts), 5});

  std::printf("%-26s", "dataset \\ p");
  for (const float p : {0.1f, 0.3f, 0.5f, 0.8f, 1.0f})
    std::printf(" %8.1f", p);
  std::printf("\n");
  for (auto& row : rows) {
    api::RunConfig rcfg = row.run.config(api::Method::kBns);
    rcfg.partition.nparts = row.parts; // partitioned once, cached across p
    rcfg.trainer.epochs = opts.epochs_or(100);
    // run_streamed: live per-epoch progress (TTY only) + the recorded,
    // replayable artifact row. The progress line rewrites in place, so the
    // table row prints after the sweep instead of column by column.
    std::vector<double> test_pct;
    for (const float p : {0.1f, 0.3f, 0.5f, 0.8f, 1.0f}) {
      rcfg.trainer.sample_rate = p;
      const auto r = sink.run_streamed(
          bench::label("%s p=%.1f", row.preset, p), row.run.ds, rcfg);
      test_pct.push_back(100.0 * r.final_test);
    }
    std::printf("%-26s", row.name.c_str());
    for (const double v : test_pct) std::printf(" %8.2f", v);
    std::printf("\n");
  }
  std::printf("\npaper shape check: scores flat across p (within a few "
              "tenths), so pick small p for efficiency.\n");
  return 0;
}
