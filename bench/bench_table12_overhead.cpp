// Table 12: the boundary-node sampler's overhead (sampling time / epoch
// time) across p and partition counts, against the per-batch samplers of
// the minibatch methods.
// Expected shape: BNS overhead is 0% at p∈{0,1} and a few percent
// otherwise; minibatch samplers burn ~20%+ of training time.

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace bnsgcn;
  const auto opts = api::parse_bench_args(argc, argv);
  bench::print_banner("Table 12", "sampling overhead (% of training time)");
  bench::ReportSink sink("Table 12", opts);

  const auto pr = bench::load_preset("reddit", 0.4 * opts.scale, opts);
  const Dataset& ds = pr.ds;

  std::printf("minibatch samplers (sampling / total wall time):\n");
  api::RunConfig bcfg = pr.config();
  bcfg.trainer.epochs = opts.epochs_or(5);
  bcfg.trainer.seed = 3;
  bcfg.minibatch.batch_size = std::max<NodeId>(256, ds.num_nodes() / 12);
  bcfg.minibatch.batches_per_epoch = 6;
  const auto overhead_row = [&](const char* name, api::Method m) {
    bcfg.method = m;
    const auto r = sink.add(
        bench::label("reddit %s", api::method_info(m).name.c_str()), bcfg,
        api::run(ds, bcfg));
    std::printf("  %-22s %6.1f%%\n", name, 100.0 * r.sampler_overhead());
  };
  overhead_row("Node (GraphSAGE)", api::Method::kNeighborSampling);
  overhead_row("Layer (LADIES)", api::Method::kLadies);
  overhead_row("Subgraph (GraphSAINT)", api::Method::kGraphSaint);

  std::printf("\nBNS-GCN sampler (sampling / simulated epoch time):\n");
  std::printf("  %-8s", "p \\ m");
  for (const PartId m : {2, 4, 8}) std::printf(" %8d", m);
  std::printf("\n");
  api::RunConfig rcfg = pr.config(api::Method::kBns);
  rcfg.trainer.epochs = opts.epochs_or(8);
  // Each m recurs in all four p-rows; the cache partitions it once.
  for (const float p : {1.0f, 0.1f, 0.01f, 0.0f}) {
    std::printf("  %-8.2f", p);
    for (const PartId m : {2, 4, 8}) {
      rcfg.partition.nparts = m;
      rcfg.trainer.sample_rate = p;
      const auto r = sink.add(bench::label("reddit bns m=%d p=%.2f", m, p),
                              rcfg, api::run(ds, rcfg));
      std::printf(" %7.1f%%", 100.0 * r.sampler_overhead());
    }
    std::printf("\n");
  }
  std::printf("\npaper shape check: BNS 0%% at p=1/p=0, 0-7%% otherwise; "
              "minibatch samplers ~20%%+.\n");
  return 0;
}
