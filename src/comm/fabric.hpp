#pragma once

#include <array>
#include <memory>
#include <span>
#include <vector>

#include "comm/cost_model.hpp"
#include "comm/transport.hpp"
#include "common/types.hpp"

namespace bnsgcn::comm {

/// Accounting category for traffic. The epoch breakdown (Fig. 5 / Table 6)
/// separates boundary-feature exchange from gradient allreduce; the ROC and
/// CAGNET proxies use their own classes so their extra traffic is visible.
enum class TrafficClass : int {
  kFeature = 0,   // boundary node features / feature gradients
  kGradient = 1,  // model-gradient allreduce
  kControl = 2,   // sampled-index broadcast and other metadata
  kSwap = 3,      // ROC proxy: CPU<->GPU partition swaps
  kBroadcast = 4, // CAGNET proxy: dense feature broadcast
  kCount = 5
};

/// Per-rank traffic counters (bytes and messages per class, tx and rx).
struct RankStats {
  std::array<std::int64_t, static_cast<int>(TrafficClass::kCount)> tx_bytes{};
  std::array<std::int64_t, static_cast<int>(TrafficClass::kCount)> rx_bytes{};
  std::array<std::int64_t, static_cast<int>(TrafficClass::kCount)> tx_msgs{};
  std::array<std::int64_t, static_cast<int>(TrafficClass::kCount)> rx_msgs{};

  void reset() { *this = RankStats{}; }

  [[nodiscard]] std::int64_t total_tx_bytes() const;
  [[nodiscard]] std::int64_t total_rx_bytes() const;

  /// Simulated seconds to move this traffic under `cost`, assuming full
  /// duplex (send/recv overlap → max of the two directions).
  [[nodiscard]] double sim_seconds(TrafficClass cls,
                                   const CostModel& cost) const;
};

class Fabric;
class Request;

/// A rank's handle into the fabric. Blocking calls must be made from the
/// thread owning the rank; the i-prefixed calls return a Request that the
/// same thread later completes with wait()/test(). Collectives must be
/// entered by every rank (standard MPI-style contract).
///
/// All byte accounting lives here, above the transport: tx is counted when
/// a send is posted, rx when a receive *completes* on the receiving rank.
/// Each rank therefore only ever writes its own counters, whatever backend
/// carries the bytes — and identical schedules account identical traffic
/// on every backend.
class Endpoint {
 public:
  [[nodiscard]] PartId rank() const { return rank_; }
  [[nodiscard]] PartId nranks() const;
  /// Simulated (mailbox) or measured wall-clock (sockets) timing.
  [[nodiscard]] TimingSource timing() const;

  /// Tagged point-to-point. Payloads are moved through the transport
  /// backend (in-process mailbox or a socket).
  void send_floats(PartId to, int tag, std::vector<float> payload,
                   TrafficClass cls);
  [[nodiscard]] std::vector<float> recv_floats(PartId from, int tag,
                                               TrafficClass cls);
  void send_ids(PartId to, int tag, std::vector<NodeId> payload,
                TrafficClass cls);
  [[nodiscard]] std::vector<NodeId> recv_ids(PartId from, int tag,
                                             TrafficClass cls);

  /// Nonblocking point-to-point. isend hands the payload to the backend
  /// and completes immediately (mailboxes are unbounded and socket sends
  /// queue locally, like an eager-protocol MPI send); irecv posts a
  /// receive that completes when a matching message is delivered.
  /// Complete with Request::wait()/test() or comm::wait_all.
  [[nodiscard]] Request isend_floats(PartId to, int tag,
                                     std::vector<float> payload,
                                     TrafficClass cls);
  [[nodiscard]] Request isend_ids(PartId to, int tag,
                                  std::vector<NodeId> payload,
                                  TrafficClass cls);
  /// Halo-cache delta frame (WireKind::kHaloDelta): the index list of the
  /// rows actually present plus those rows' features. Both vectors are
  /// accounted under `cls` — the index list is real overhead the cache
  /// pays, so it must show up in the same traffic class it saves from.
  [[nodiscard]] Request isend_halo(PartId to, int tag,
                                   std::vector<NodeId> present,
                                   std::vector<float> rows, TrafficClass cls);
  [[nodiscard]] Request irecv_floats(PartId from, int tag, TrafficClass cls);
  [[nodiscard]] Request irecv_ids(PartId from, int tag, TrafficClass cls);

  /// Per-endpoint float-buffer pool: the trainer's per-peer staging
  /// vectors are acquired here instead of allocated fresh every exchange,
  /// and consumed wire payloads are released back after folding. On the
  /// mailbox fabric the buffers circulate between rank pools (a released
  /// receive buffer becomes a later send's staging), so steady-state
  /// epochs allocate nothing. acquire resizes to exactly `n` and makes no
  /// content guarantee — callers overwrite every element.
  [[nodiscard]] std::vector<float> acquire_floats(std::size_t n);
  void release_floats(std::vector<float> buf);
  struct PoolStats {
    std::int64_t hits = 0;    // acquires served from the pool
    std::int64_t misses = 0;  // acquires that had to allocate
  };
  [[nodiscard]] const PoolStats& pool_stats() const { return pool_stats_; }

  /// Collectives.
  void barrier();
  /// In-place sum across ranks; every rank ends with the same data.
  void allreduce_sum(std::span<float> data,
                     TrafficClass cls = TrafficClass::kGradient);
  [[nodiscard]] double allreduce_sum_scalar(double value);
  [[nodiscard]] double allreduce_max_scalar(double value);
  /// Gather every rank's id list; result[r] is rank r's contribution.
  [[nodiscard]] std::vector<std::vector<NodeId>> allgather_ids(
      std::vector<NodeId> ids, TrafficClass cls = TrafficClass::kControl);
  /// Gather every rank's metric vector; result[r] is rank r's values.
  /// Deliberately unaccounted: this carries the epoch-breakdown reduction
  /// (formerly shared-memory scratch), which must not perturb the traffic
  /// counters it reports.
  [[nodiscard]] std::vector<std::vector<double>> allgather_doubles(
      std::vector<double> vals);

  [[nodiscard]] RankStats& stats() { return stats_; }
  [[nodiscard]] const RankStats& stats() const { return stats_; }

 private:
  friend class Fabric;
  friend class Request;
  Endpoint(Fabric& fabric, PartId rank) : fabric_(fabric), rank_(rank) {}

  Transport& transport();
  void account_rx(TrafficClass cls, const Wire& msg);

  Fabric& fabric_;
  PartId rank_;
  RankStats stats_;
  std::vector<std::vector<float>> float_pool_;  // owner-thread only
  PoolStats pool_stats_;
};

/// Communication fabric over `nranks` logical ranks: per-rank Endpoints
/// (stats + accounting) in front of a pluggable Transport backend. The
/// default backend is the in-process mailbox (one thread per rank); the
/// socket backends carry one rank per OS process. See DESIGN.md §1.
class Fabric {
 public:
  /// In-process mailbox fabric (the deterministic test double).
  explicit Fabric(PartId nranks, CostModel cost = CostModel::pcie3_x16());
  /// Fabric over an explicit backend (e.g. SocketTransport).
  Fabric(std::unique_ptr<Transport> transport, CostModel cost);

  [[nodiscard]] PartId nranks() const { return transport_->nranks(); }
  [[nodiscard]] Endpoint& endpoint(PartId rank);
  [[nodiscard]] const CostModel& cost_model() const { return cost_; }
  [[nodiscard]] TimingSource timing() const { return transport_->timing(); }
  [[nodiscard]] Transport& transport() { return *transport_; }

  /// Sum of a traffic class's rx bytes over all ranks (global volume;
  /// only the ranks this process serves contribute).
  [[nodiscard]] std::int64_t total_rx_bytes(TrafficClass cls) const;
  void reset_stats();

  /// Tear the fabric down from `rank`'s side so peers blocked on it
  /// unwind with ShutdownError instead of hanging. Called by a failing
  /// rank's error path; idempotent.
  void shutdown(PartId rank) { transport_->shutdown(rank); }

  /// Test-only arrival-order shuffle (mailbox backend only); see
  /// MailboxTransport::enable_delivery_shuffle. Call before the rank
  /// threads start.
  void enable_delivery_shuffle(std::uint64_t seed, int max_hold = 8);

 private:
  friend class Endpoint;

  std::unique_ptr<Transport> transport_;
  CostModel cost_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
};

/// Handle to a nonblocking operation. Sends are complete on creation
/// (eager deposit); receives complete when the matching message is taken
/// out of the backend by test()/wait(). Movable, non-copyable; must be
/// completed (or destroyed) by the thread owning the posting endpoint.
///
/// Payload buffers are double-buffered across the exchange: the in-flight
/// bytes live in the backend (mailbox message / socket frame) while the
/// consumer keeps computing on its own matrices; wait() moves the message
/// into the request's private slot, and take_floats()/take_ids() move it
/// out again into the fold destination. The network-side and compute-side
/// buffers are therefore never the same memory, which is what lets the
/// trainer fold a finished exchange while the next one's deposits are
/// already arriving.
class Request {
 public:
  Request() = default;
  Request(Request&&) = default;
  Request& operator=(Request&&) = default;
  Request(const Request&) = delete;
  Request& operator=(const Request&) = delete;

  /// True when the operation has completed (sends: always).
  [[nodiscard]] bool done() const { return state_ == nullptr || state_->done; }
  /// Nonblocking completion probe; returns done().
  bool test();
  /// Block until complete.
  void wait();
  /// Move the received payload out (wait()s first if still pending).
  [[nodiscard]] std::vector<float> take_floats();
  [[nodiscard]] std::vector<NodeId> take_ids();
  /// Move the whole message out — for kHaloDelta frames, whose index list
  /// and rows are consumed together.
  [[nodiscard]] Wire take_payload();

 private:
  friend class Endpoint;
  struct State {
    Endpoint* owner = nullptr;  // null for completed sends
    PartId from = 0;
    int tag = 0;
    TrafficClass cls = TrafficClass::kFeature;
    bool done = false;
    Wire payload;
  };
  explicit Request(std::unique_ptr<State> state) : state_(std::move(state)) {}
  std::unique_ptr<State> state_;
};

/// Complete every request in the span (MPI_Waitall). Payloads stay stored
/// in the requests for take_floats()/take_ids().
void wait_all(std::span<Request> requests);

/// Completion set over a batch of requests: wait_any-style progress built
/// on Request::test(). The streaming halo pipeline posts one irecv per
/// peer, then drains the set as messages land instead of blocking on a
/// single MPI_Waitall barrier — poll() is one nonblocking progress pass,
/// wait_any() blocks until at least one pending request completes.
///
/// Completion indices are reported exactly once, in arrival order within a
/// pass; the caller owns any ordering policy on top (the trainer buffers
/// arrivals and applies them in fixed peer order for determinism).
class RequestSet {
 public:
  RequestSet() = default;
  RequestSet(RequestSet&&) = default;
  RequestSet& operator=(RequestSet&&) = default;
  RequestSet(const RequestSet&) = delete;
  RequestSet& operator=(const RequestSet&) = delete;

  /// Append a request; returns its index within the set.
  std::size_t add(Request req);

  [[nodiscard]] std::size_t size() const { return requests_.size(); }
  /// Requests not yet observed complete by poll()/wait_any()/wait_all().
  [[nodiscard]] std::size_t pending() const { return pending_; }
  [[nodiscard]] bool all_done() const { return pending_ == 0; }

  /// One nonblocking progress pass: test() every pending request, append
  /// the indices that completed during this pass to `completed` (arrival
  /// scan order). Returns how many completed this pass.
  std::size_t poll(std::vector<std::size_t>& completed);

  /// Block until at least one pending request completes (poll loop with a
  /// cooperative yield — the fabric has no multi-mailbox condvar). Appends
  /// the newly completed indices; returns the count. No-op returning 0
  /// when nothing is pending.
  std::size_t wait_any(std::vector<std::size_t>& completed);

  /// Complete everything still pending (MPI_Waitall over the remainder).
  void wait_all();

  /// Access a member request (e.g. to take_floats() after completion).
  [[nodiscard]] Request& at(std::size_t i) { return requests_.at(i); }

 private:
  std::vector<Request> requests_;
  std::vector<char> reported_;  // index already handed to the caller
  std::size_t pending_ = 0;
};

} // namespace bnsgcn::comm
