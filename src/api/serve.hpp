#pragma once

#include <algorithm>
#include <string>
#include <string_view>
#include <vector>

#include "api/run.hpp"
#include "common/json.hpp"
#include "core/inference.hpp"

namespace bnsgcn::api {

/// Serving knobs of api::serve — the config-file spelling of
/// core::ServeOptions. JSON keys: batch_size, num_batches, seed,
/// record_logits (fail_rank is test-only, not serialized).
struct ServeConfig {
  int batch_size = 32;
  int num_batches = 8;
  std::uint64_t seed = 1;
  /// Keep the raw logits rows in the report (the determinism tests'
  /// bitwise oracle; floats round-trip the JSON artifact exactly).
  bool record_logits = false;
  /// Test-only: forwarded to core::ServeOptions::fail_rank. Not serialized.
  int fail_rank = -1;
};

/// The result of api::serve: training provenance plus the per-batch
/// latency/traffic rows and the answered queries. Mirrors RunReport's
/// conventions — stored fields round-trip the JSON artifact exactly, the
/// headline numbers are derived accessors recomputed on read.
struct ServeReport {
  std::string method;   // always "bns" today
  std::string dataset;

  int batch_size = 0;
  int num_batches = 0;
  int num_classes = 0;
  std::vector<core::ServeBatchStats> batches;
  std::vector<NodeId> queries;     // global ids, flat across batches
  std::vector<int> predictions;    // argmax class per query
  std::vector<float> logits;       // queries × num_classes; empty unless
                                   // ServeConfig::record_logits
  double train_wall_s = 0.0;  // wall time of the weight-producing training
  double serve_wall_s = 0.0;  // wall time of the serve loop (rank 0)
  comm::TimingSource timing = comm::TimingSource::kSimulated;

  [[nodiscard]] int total_queries() const {
    return static_cast<int>(queries.size());
  }
  /// Nearest-rank percentile over the per-batch latencies (p in [0,1]).
  [[nodiscard]] double latency_percentile_s(double p) const {
    if (batches.empty()) return 0.0;
    std::vector<double> lat;
    lat.reserve(batches.size());
    for (const auto& b : batches) lat.push_back(b.latency_s);
    std::sort(lat.begin(), lat.end());
    const auto n = static_cast<double>(lat.size());
    auto idx = static_cast<std::size_t>(p * n);
    if (idx > 0) --idx;
    if (idx >= lat.size()) idx = lat.size() - 1;
    return lat[idx];
  }
  [[nodiscard]] double p50_latency_s() const {
    return latency_percentile_s(0.50);
  }
  [[nodiscard]] double p99_latency_s() const {
    return latency_percentile_s(0.99);
  }
  /// Served queries per second of request-handling time (sum of batch
  /// latencies): the batching lever's headline — one full-graph forward
  /// answers the whole batch, so QPS grows with batch size.
  [[nodiscard]] double qps() const {
    double busy = 0.0;
    for (const auto& b : batches) busy += b.latency_s;
    return busy > 0.0 ? static_cast<double>(total_queries()) / busy : 0.0;
  }
  /// Halo-cache totals over the request stream (RunReport conventions).
  [[nodiscard]] std::int64_t cache_hit_rows() const {
    std::int64_t n = 0;
    for (const auto& b : batches) n += b.cache_hit_rows;
    return n;
  }
  [[nodiscard]] std::int64_t cache_miss_rows() const {
    std::int64_t n = 0;
    for (const auto& b : batches) n += b.cache_miss_rows;
    return n;
  }
  [[nodiscard]] std::int64_t cache_bytes_saved() const {
    std::int64_t n = 0;
    for (const auto& b : batches) n += b.bytes_saved;
    return n;
  }
  [[nodiscard]] double cache_hit_rate() const {
    const std::int64_t total = cache_hit_rows() + cache_miss_rows();
    return total > 0 ? static_cast<double>(cache_hit_rows()) /
                           static_cast<double>(total)
                     : 0.0;
  }
};

/// Train cfg end to end (always on the in-process mailbox — trained
/// weights are bit-identical across transports, so the snapshot serves on
/// any fabric), snapshot the weights, then answer scfg's query batches
/// over the live partitioned graph with the forward-only engine
/// (core::InferenceEngine). cfg.comm.transport picks the serving fabric:
/// mailbox serves in-process, uds/tcp serve one OS process per rank
/// through the shared piped-rank runtime. Only Method::kBns serves.
[[nodiscard]] ServeReport serve(const RunConfig& cfg, const ServeConfig& scfg);

/// Same, over a prebuilt dataset (partition built per cfg.partition through
/// the process-global cache).
[[nodiscard]] ServeReport serve(const Dataset& ds, const RunConfig& cfg,
                                const ServeConfig& scfg);

/// Same, over a prebuilt dataset and partitioning.
[[nodiscard]] ServeReport serve(const Dataset& ds, const Partitioning& part,
                                const RunConfig& cfg,
                                const ServeConfig& scfg);

/// ServeConfig / ServeReport (de)serialization, RunConfig conventions:
/// field-complete round-trip, absent keys keep the C++ defaults.
[[nodiscard]] json::Value to_json(const ServeConfig& scfg);
[[nodiscard]] ServeConfig serve_config_from_json(const json::Value& v);
[[nodiscard]] json::Value to_json(const ServeReport& r);
[[nodiscard]] ServeReport serve_report_from_json(const json::Value& v);
[[nodiscard]] std::string to_json_string(const ServeConfig& scfg,
                                         int indent = 2);
[[nodiscard]] ServeConfig serve_config_from_json_string(std::string_view text);
[[nodiscard]] std::string to_json_string(const ServeReport& r,
                                         int indent = 2);
[[nodiscard]] ServeReport serve_report_from_json_string(std::string_view text);

} // namespace bnsgcn::api
