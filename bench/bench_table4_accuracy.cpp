// Table 4: test accuracy (Reddit-like, products-like) and test micro-F1
// (Yelp-like) of BNS-GCN across sampling rates p and partition counts,
// against the sampling-based baselines.
// Expected shape: p=1 matches or beats every sampler; p=0.1/0.01 matches or
// slightly beats p=1; p=0 is clearly worst; all stable across #partitions.

#include "baselines/minibatch.hpp"

#include "common.hpp"

namespace {

using namespace bnsgcn;

void run_dataset(const char* title, const Dataset& ds,
                 core::TrainerConfig cfg, const std::vector<PartId>& parts) {
  std::printf("\n--- %s ---\n", title);

  // Sampling-based baselines (single process, minibatch).
  baselines::BaselineConfig bcfg;
  bcfg.num_layers = cfg.num_layers;
  bcfg.hidden = cfg.hidden;
  bcfg.dropout = cfg.dropout;
  bcfg.lr = 0.01f;
  bcfg.epochs = cfg.epochs;
  bcfg.seed = cfg.seed;
  bcfg.batch_size = std::max<NodeId>(256, ds.num_nodes() / 20);
  bcfg.batches_per_epoch = 4;

  std::printf("%-28s %8s\n", "sampling-based method", "score%");
  const auto brow = [&](const char* name, const baselines::BaselineResult& r) {
    std::printf("%-28s %8.2f\n", name, 100.0 * r.final_test);
  };
  brow("GraphSAGE (neighbor)", baselines::train_neighbor_sampling(ds, bcfg));
  brow("FastGCN (layer)", baselines::train_layer_sampling(ds, bcfg, false));
  brow("LADIES (layer)", baselines::train_layer_sampling(ds, bcfg, true));
  brow("ClusterGCN (subgraph)", baselines::train_cluster_gcn(ds, bcfg));
  brow("GraphSAINT (subgraph)", baselines::train_graph_saint(ds, bcfg));

  std::printf("\n%-28s", "BNS-GCN \\ #partitions");
  for (const PartId m : parts) std::printf(" %8d", m);
  std::printf("\n");
  for (const float p : {1.0f, 0.1f, 0.01f, 0.0f}) {
    std::printf("BNS-GCN (p=%-4.2f)%12s", p, "");
    for (const PartId m : parts) {
      const auto part = metis_like(ds.graph, m);
      auto c = cfg;
      c.sample_rate = p;
      const auto r = core::BnsTrainer(ds, part, c).train();
      std::printf(" %8.2f", 100.0 * r.final_test);
    }
    std::printf("\n");
  }
}

} // namespace

int main() {
  using namespace bnsgcn;
  bench::print_banner("Table 4", "test accuracy / micro-F1 across p and partitions");
  const double s = bench::bench_scale();

  {
    const Dataset ds = make_synthetic(reddit_like(0.3 * s));
    auto cfg = bench::reddit_config();
    cfg.epochs = 100;
    run_dataset("Reddit-like (accuracy)", ds, cfg, {2, 4, 8});
  }
  {
    const Dataset ds = make_synthetic(products_like(0.2 * s));
    auto cfg = bench::products_config();
    cfg.epochs = 100;
    run_dataset("ogbn-products-like (accuracy)", ds, cfg, {5, 8, 10});
  }
  {
    const Dataset ds = make_synthetic(yelp_like(0.3 * s));
    auto cfg = bench::yelp_config();
    cfg.epochs = 100;
    run_dataset("Yelp-like (micro-F1)", ds, cfg, {3, 6, 10});
  }
  std::printf("\npaper shape check: BNS p>0 within ±0.3 of p=1; p=0 worst;\n"
              "full-graph training >= all sampling baselines.\n");
  return 0;
}
