#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <thread>
#include <vector>

#include "comm/fabric.hpp"

namespace bnsgcn {
namespace {

using comm::CostModel;
using comm::Fabric;
using comm::TrafficClass;

/// Run fn(rank_endpoint) on one thread per rank and join.
template <typename Fn>
void run_ranks(Fabric& fabric, Fn fn) {
  std::vector<std::thread> threads;
  for (PartId r = 0; r < fabric.nranks(); ++r) {
    threads.emplace_back([&fabric, r, &fn] { fn(fabric.endpoint(r)); });
  }
  for (auto& t : threads) t.join();
}

TEST(Fabric, PointToPointDelivers) {
  Fabric fabric(2);
  run_ranks(fabric, [](comm::Endpoint& ep) {
    if (ep.rank() == 0) {
      ep.send_floats(1, /*tag=*/7, {1.0f, 2.0f, 3.0f}, TrafficClass::kFeature);
    } else {
      const auto payload = ep.recv_floats(0, 7, TrafficClass::kFeature);
      ASSERT_EQ(payload.size(), 3u);
      EXPECT_FLOAT_EQ(payload[1], 2.0f);
    }
  });
}

TEST(Fabric, TagMatchingOutOfOrder) {
  Fabric fabric(2);
  run_ranks(fabric, [](comm::Endpoint& ep) {
    if (ep.rank() == 0) {
      ep.send_floats(1, 1, {1.0f}, TrafficClass::kFeature);
      ep.send_floats(1, 2, {2.0f}, TrafficClass::kFeature);
    } else {
      // Receive tag 2 first even though tag 1 was sent first.
      const auto second = ep.recv_floats(0, 2, TrafficClass::kFeature);
      const auto first = ep.recv_floats(0, 1, TrafficClass::kFeature);
      EXPECT_FLOAT_EQ(second[0], 2.0f);
      EXPECT_FLOAT_EQ(first[0], 1.0f);
    }
  });
}

TEST(Fabric, IdPayloads) {
  Fabric fabric(3);
  run_ranks(fabric, [](comm::Endpoint& ep) {
    if (ep.rank() == 0) {
      ep.send_ids(1, 0, {5, 6, 7}, TrafficClass::kControl);
      ep.send_ids(2, 0, {8}, TrafficClass::kControl);
    } else {
      const auto ids = ep.recv_ids(0, 0, TrafficClass::kControl);
      if (ep.rank() == 1) {
        EXPECT_EQ(ids, (std::vector<NodeId>{5, 6, 7}));
      } else {
        EXPECT_EQ(ids, (std::vector<NodeId>{8}));
      }
    }
  });
}

TEST(Fabric, AllreduceSum) {
  constexpr PartId kRanks = 5;
  Fabric fabric(kRanks);
  run_ranks(fabric, [](comm::Endpoint& ep) {
    std::vector<float> data{static_cast<float>(ep.rank()),
                            static_cast<float>(ep.rank() * 10)};
    ep.allreduce_sum(data);
    EXPECT_FLOAT_EQ(data[0], 0 + 1 + 2 + 3 + 4);
    EXPECT_FLOAT_EQ(data[1], 10 * (0 + 1 + 2 + 3 + 4));
  });
}

TEST(Fabric, AllreduceRepeatedRounds) {
  // Back-to-back collectives must not corrupt each other.
  constexpr PartId kRanks = 4;
  Fabric fabric(kRanks);
  run_ranks(fabric, [](comm::Endpoint& ep) {
    for (int round = 0; round < 20; ++round) {
      std::vector<float> data{static_cast<float>(round + ep.rank())};
      ep.allreduce_sum(data);
      EXPECT_FLOAT_EQ(data[0], 4.0f * round + 6.0f);
    }
  });
}

TEST(Fabric, AllreduceScalars) {
  Fabric fabric(3);
  run_ranks(fabric, [](comm::Endpoint& ep) {
    const double sum = ep.allreduce_sum_scalar(ep.rank() + 1.0);
    EXPECT_DOUBLE_EQ(sum, 6.0);
    const double mx = ep.allreduce_max_scalar(ep.rank() * 2.0);
    EXPECT_DOUBLE_EQ(mx, 4.0);
  });
}

TEST(Fabric, AllgatherIds) {
  Fabric fabric(3);
  run_ranks(fabric, [](comm::Endpoint& ep) {
    std::vector<NodeId> mine(static_cast<std::size_t>(ep.rank()) + 1,
                             ep.rank());
    const auto all = ep.allgather_ids(mine);
    ASSERT_EQ(all.size(), 3u);
    for (PartId r = 0; r < 3; ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(r)].size(),
                static_cast<std::size_t>(r) + 1);
      for (const NodeId v : all[static_cast<std::size_t>(r)]) EXPECT_EQ(v, r);
    }
  });
}

TEST(Fabric, ByteAccounting) {
  Fabric fabric(2);
  run_ranks(fabric, [](comm::Endpoint& ep) {
    if (ep.rank() == 0) {
      ep.send_floats(1, 0, std::vector<float>(100, 1.0f),
                     TrafficClass::kFeature);
    } else {
      (void)ep.recv_floats(0, 0, TrafficClass::kFeature);
    }
    ep.barrier();
  });
  const auto& tx = fabric.endpoint(0).stats();
  const auto& rx = fabric.endpoint(1).stats();
  EXPECT_EQ(tx.tx_bytes[static_cast<int>(TrafficClass::kFeature)], 400);
  EXPECT_EQ(rx.rx_bytes[static_cast<int>(TrafficClass::kFeature)], 400);
  EXPECT_EQ(fabric.total_rx_bytes(TrafficClass::kFeature), 400);
}

TEST(Fabric, StatsResetClears) {
  Fabric fabric(2);
  run_ranks(fabric, [](comm::Endpoint& ep) {
    if (ep.rank() == 0)
      ep.send_floats(1, 0, {1.0f}, TrafficClass::kFeature);
    else
      (void)ep.recv_floats(0, 0, TrafficClass::kFeature);
  });
  fabric.reset_stats();
  EXPECT_EQ(fabric.total_rx_bytes(TrafficClass::kFeature), 0);
}

TEST(CostModel, MessageTime) {
  const CostModel m{.latency_s = 1e-6, .bytes_per_s = 1e9};
  EXPECT_NEAR(m.message_time(1'000'000), 1e-6 + 1e-3, 1e-9);
}

TEST(CostModel, AllreduceRingScaling) {
  const CostModel m{.latency_s = 0.0, .bytes_per_s = 1e9};
  // 2 ranks: exactly one payload crosses the wire per direction.
  EXPECT_NEAR(m.allreduce_time(1e9, 2), 1.0, 1e-9);
  // Many ranks: approaches 2x payload.
  EXPECT_NEAR(m.allreduce_time(1e9, 100), 1.98, 1e-9);
  EXPECT_DOUBLE_EQ(m.allreduce_time(12345, 1), 0.0);
}

TEST(CostModel, SimSecondsUsesMaxOfDirections) {
  comm::RankStats st;
  st.tx_bytes[0] = 8'000'000'000LL; // 1s at 8GB/s
  st.rx_bytes[0] = 0;
  const auto cost = CostModel{.latency_s = 0.0, .bytes_per_s = 8e9};
  EXPECT_NEAR(st.sim_seconds(TrafficClass::kFeature, cost), 1.0, 1e-9);
  st.rx_bytes[0] = 16'000'000'000LL; // rx dominates now
  EXPECT_NEAR(st.sim_seconds(TrafficClass::kFeature, cost), 2.0, 1e-9);
}

TEST(Fabric, IsendIrecvDelivers) {
  Fabric fabric(2);
  run_ranks(fabric, [](comm::Endpoint& ep) {
    if (ep.rank() == 0) {
      auto req = ep.isend_floats(1, 3, {4.0f, 5.0f}, TrafficClass::kFeature);
      EXPECT_TRUE(req.done()); // eager deposit: sends complete on posting
      req.wait();
    } else {
      auto req = ep.irecv_floats(0, 3, TrafficClass::kFeature);
      const auto payload = req.take_floats(); // waits internally
      ASSERT_EQ(payload.size(), 2u);
      EXPECT_FLOAT_EQ(payload[1], 5.0f);
    }
  });
}

TEST(Fabric, IrecvOutOfOrderTagDelivery) {
  // Receives posted in the opposite order of the sends; tag matching must
  // route each payload to its request regardless of arrival order.
  Fabric fabric(2);
  run_ranks(fabric, [](comm::Endpoint& ep) {
    if (ep.rank() == 0) {
      ep.send_floats(1, 10, {10.0f}, TrafficClass::kFeature);
      ep.send_floats(1, 11, {11.0f}, TrafficClass::kFeature);
      ep.send_floats(1, 12, {12.0f}, TrafficClass::kFeature);
    } else {
      std::vector<comm::Request> reqs;
      for (const int tag : {12, 10, 11})
        reqs.push_back(ep.irecv_floats(0, tag, TrafficClass::kFeature));
      comm::wait_all(reqs);
      EXPECT_FLOAT_EQ(reqs[0].take_floats()[0], 12.0f);
      EXPECT_FLOAT_EQ(reqs[1].take_floats()[0], 10.0f);
      EXPECT_FLOAT_EQ(reqs[2].take_floats()[0], 11.0f);
    }
  });
}

TEST(Fabric, RequestTestPollsWithoutBlocking) {
  Fabric fabric(2);
  run_ranks(fabric, [](comm::Endpoint& ep) {
    if (ep.rank() == 0) {
      ep.barrier(); // hold the send until rank 1 has probed emptiness
      ep.send_ids(1, 0, {42}, TrafficClass::kControl);
    } else {
      auto req = ep.irecv_ids(0, 0, TrafficClass::kControl);
      EXPECT_FALSE(req.test()); // nothing sent yet: must not block
      EXPECT_FALSE(req.done());
      ep.barrier();
      req.wait();
      EXPECT_TRUE(req.done());
      EXPECT_EQ(req.take_ids(), (std::vector<NodeId>{42}));
    }
  });
}

TEST(Fabric, WaitAllUnderConcurrentRanks) {
  // Every rank exchanges with every other rank over several rounds with
  // all receives posted up front — the all-to-all shape of the trainer's
  // pipelined boundary exchange, at 8 concurrent ranks.
  constexpr PartId kRanks = 8;
  constexpr int kRounds = 5;
  Fabric fabric(kRanks);
  run_ranks(fabric, [](comm::Endpoint& ep) {
    const PartId n = ep.nranks();
    for (int round = 0; round < kRounds; ++round) {
      std::vector<comm::Request> reqs;
      std::vector<PartId> peer_of;
      // Post all receives first (reversed peer order), then the sends.
      for (PartId j = n - 1; j >= 0; --j) {
        if (j == ep.rank()) continue;
        reqs.push_back(ep.irecv_floats(j, round, TrafficClass::kFeature));
        peer_of.push_back(j);
      }
      for (PartId j = 0; j < n; ++j) {
        if (j == ep.rank()) continue;
        (void)ep.isend_floats(
            j, round, {static_cast<float>(ep.rank() * 100 + round)},
            TrafficClass::kFeature);
      }
      comm::wait_all(reqs);
      for (std::size_t k = 0; k < reqs.size(); ++k) {
        const auto payload = reqs[k].take_floats();
        ASSERT_EQ(payload.size(), 1u);
        EXPECT_FLOAT_EQ(payload[0],
                        static_cast<float>(peer_of[k] * 100 + round));
      }
    }
  });
}

TEST(Fabric, AsyncAccountingMatchesBlocking) {
  // isend/irecv must account bytes exactly like send/recv.
  Fabric fabric(2);
  run_ranks(fabric, [](comm::Endpoint& ep) {
    if (ep.rank() == 0) {
      (void)ep.isend_floats(1, 0, std::vector<float>(64, 1.0f),
                            TrafficClass::kFeature);
    } else {
      auto req = ep.irecv_floats(0, 0, TrafficClass::kFeature);
      (void)req.take_floats();
    }
    ep.barrier();
  });
  EXPECT_EQ(fabric.endpoint(0).stats().tx_bytes[static_cast<int>(
                TrafficClass::kFeature)],
            256);
  EXPECT_EQ(fabric.total_rx_bytes(TrafficClass::kFeature), 256);
}

TEST(RequestSet, PollReportsEachCompletionExactlyOnce) {
  Fabric fabric(2);
  run_ranks(fabric, [](comm::Endpoint& ep) {
    if (ep.rank() == 0) {
      ep.barrier(); // let rank 1 probe the empty set first
      ep.send_floats(1, 0, {1.0f}, TrafficClass::kFeature);
      ep.send_floats(1, 1, {2.0f}, TrafficClass::kFeature);
      ep.barrier();
    } else {
      comm::RequestSet set;
      EXPECT_EQ(set.add(ep.irecv_floats(0, 0, TrafficClass::kFeature)), 0u);
      EXPECT_EQ(set.add(ep.irecv_floats(0, 1, TrafficClass::kFeature)), 1u);
      EXPECT_EQ(set.size(), 2u);
      EXPECT_EQ(set.pending(), 2u);
      std::vector<std::size_t> done;
      EXPECT_EQ(set.poll(done), 0u); // nothing sent yet: must not block
      EXPECT_TRUE(done.empty());
      ep.barrier();
      // Drain with wait_any until both land; indices must appear exactly
      // once across all passes.
      while (!set.all_done()) (void)set.wait_any(done);
      std::sort(done.begin(), done.end());
      EXPECT_EQ(done, (std::vector<std::size_t>{0, 1}));
      EXPECT_EQ(set.pending(), 0u);
      EXPECT_EQ(set.poll(done), 0u); // completed requests never re-report
      EXPECT_FLOAT_EQ(set.at(0).take_floats()[0], 1.0f);
      EXPECT_FLOAT_EQ(set.at(1).take_floats()[0], 2.0f);
      ep.barrier();
    }
  });
}

TEST(RequestSet, WaitAllCompletesTheRemainder) {
  Fabric fabric(2);
  run_ranks(fabric, [](comm::Endpoint& ep) {
    if (ep.rank() == 0) {
      for (int tag = 0; tag < 3; ++tag)
        ep.send_floats(1, tag, {static_cast<float>(tag)},
                       TrafficClass::kFeature);
    } else {
      comm::RequestSet set;
      for (int tag = 0; tag < 3; ++tag)
        (void)set.add(ep.irecv_floats(0, tag, TrafficClass::kFeature));
      set.wait_all();
      EXPECT_TRUE(set.all_done());
      std::vector<std::size_t> done;
      EXPECT_EQ(set.poll(done), 0u); // wait_all already accounted for them
      for (std::size_t i = 0; i < 3; ++i)
        EXPECT_FLOAT_EQ(set.at(i).take_floats()[0], static_cast<float>(i));
    }
  });
}

TEST(RequestSet, EmptySetIsTriviallyDone) {
  // Zero requests: every operation must be a no-op, not a hang — the
  // trainer hits this on ranks whose sampled plan keeps no halo (p=0, or
  // an isolated partition).
  comm::RequestSet set;
  EXPECT_EQ(set.size(), 0u);
  EXPECT_EQ(set.pending(), 0u);
  EXPECT_TRUE(set.all_done());
  std::vector<std::size_t> done;
  EXPECT_EQ(set.poll(done), 0u);
  EXPECT_EQ(set.wait_any(done), 0u); // must return, not block
  set.wait_all();
  EXPECT_TRUE(done.empty());
}

TEST(RequestSet, WaitAnyAfterExhaustionReturnsImmediately) {
  // Once every member completed, further wait_any calls must return 0
  // without blocking (a buggy loop re-entering wait_any after the last
  // fold would otherwise deadlock) and report no duplicate indices.
  Fabric fabric(2);
  run_ranks(fabric, [](comm::Endpoint& ep) {
    if (ep.rank() == 0) {
      ep.send_floats(1, 0, {1.0f}, TrafficClass::kFeature);
      ep.send_floats(1, 1, {2.0f}, TrafficClass::kFeature);
    } else {
      comm::RequestSet set;
      (void)set.add(ep.irecv_floats(0, 0, TrafficClass::kFeature));
      (void)set.add(ep.irecv_floats(0, 1, TrafficClass::kFeature));
      std::vector<std::size_t> done;
      while (!set.all_done()) (void)set.wait_any(done);
      ASSERT_EQ(done.size(), 2u);
      for (int repeat = 0; repeat < 3; ++repeat) {
        EXPECT_EQ(set.wait_any(done), 0u);
        EXPECT_EQ(set.poll(done), 0u);
      }
      EXPECT_EQ(done.size(), 2u); // no re-reports
      set.wait_all();             // idempotent on the exhausted set
      EXPECT_EQ(set.pending(), 0u);
    }
  });
}

TEST(RequestSet, PollDuringPartialCompletionAccountsBytesExactly) {
  // Three posted receives, deliveries staggered one at a time: after each
  // delivery a poll must report exactly that one new completion, and the
  // receiver-side byte counters must show exactly the delivered slabs —
  // pending irecvs contribute nothing.
  constexpr int kFloats = 10;
  const auto slab_bytes = static_cast<std::int64_t>(kFloats * sizeof(float));
  Fabric fabric(2);
  run_ranks(fabric, [&](comm::Endpoint& ep) {
    if (ep.rank() == 0) {
      for (int tag = 0; tag < 3; ++tag) {
        ep.barrier(); // rank 1 probed the current state
        ep.send_floats(1, tag, std::vector<float>(kFloats, 1.0f),
                       TrafficClass::kFeature);
        ep.barrier(); // delivery visible before the next probe
      }
      ep.barrier();
    } else {
      comm::RequestSet set;
      for (int tag = 0; tag < 3; ++tag)
        (void)set.add(ep.irecv_floats(0, tag, TrafficClass::kFeature));
      std::vector<std::size_t> done;
      for (int k = 0; k < 3; ++k) {
        EXPECT_EQ(set.poll(done), 0u) << "nothing new before delivery " << k;
        ep.barrier();
        ep.barrier();
        done.clear();
        EXPECT_EQ(set.poll(done), 1u);
        EXPECT_EQ(done, (std::vector<std::size_t>{static_cast<std::size_t>(k)}));
        EXPECT_EQ(set.pending(), static_cast<std::size_t>(2 - k));
        EXPECT_EQ(ep.stats().rx_bytes[static_cast<int>(TrafficClass::kFeature)],
                  slab_bytes * (k + 1));
        EXPECT_EQ(ep.stats().rx_msgs[static_cast<int>(TrafficClass::kFeature)],
                  k + 1);
      }
      for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(set.at(i).take_floats().size(),
                  static_cast<std::size_t>(kFloats));
      ep.barrier();
    }
  });
  EXPECT_EQ(fabric.total_rx_bytes(TrafficClass::kFeature), slab_bytes * 3);
}

TEST(Fabric, DeliveryShuffleHoldsProbesButNotBlockingTakes) {
  // The test-only arrival shuffle defers nonblocking probes for a bounded
  // number of passes and never touches blocking receives or the byte
  // accounting.
  Fabric fabric(2);
  fabric.enable_delivery_shuffle(/*seed=*/12345, /*max_hold=*/4);
  run_ranks(fabric, [](comm::Endpoint& ep) {
    if (ep.rank() == 0) {
      ep.send_floats(1, 0, {1.0f, 2.0f}, TrafficClass::kFeature);
      ep.send_floats(1, 1, {3.0f}, TrafficClass::kFeature);
      ep.barrier();
    } else {
      ep.barrier(); // both messages deposited
      // Nonblocking path: at most max_hold failed probes, then delivery.
      auto req = ep.irecv_floats(0, 0, TrafficClass::kFeature);
      int probes = 0;
      while (!req.test()) {
        ASSERT_LE(++probes, 4) << "hold must expire within max_hold probes";
      }
      EXPECT_EQ(req.take_floats(), (std::vector<float>{1.0f, 2.0f}));
      // Blocking path: delivers immediately regardless of any hold.
      EXPECT_EQ(ep.recv_floats(0, 1, TrafficClass::kFeature),
                (std::vector<float>{3.0f}));
    }
  });
  EXPECT_EQ(fabric.total_rx_bytes(TrafficClass::kFeature),
            static_cast<std::int64_t>(3 * sizeof(float)));
}

TEST(Fabric, StreamingSlabStressAcrossManyRanks) {
  // The streaming fold's wire pattern at full stress: every rank sends
  // every other rank several tagged slabs in a rank-dependent (scrambled)
  // order while concurrently polling a RequestSet over interleaved irecvs
  // posted in yet another order. No slab may be lost, duplicated, or
  // routed to the wrong request, and the byte accounting must add up
  // exactly — out-of-order tagged delivery is what the deterministic
  // fold's buffer-then-apply rule relies on.
  constexpr PartId kRanks = 5;
  constexpr int kRounds = 4;   // "layers": one exchange per round
  constexpr int kSlabFloats = 7;
  Fabric fabric(kRanks);
  run_ranks(fabric, [](comm::Endpoint& ep) {
    const PartId n = ep.nranks();
    const PartId me = ep.rank();
    for (int round = 0; round < kRounds; ++round) {
      // Tags encode (round, sender) so concurrent rounds cannot cross.
      const auto tag_of = [round](PartId sender) {
        return round * 64 + static_cast<int>(sender);
      };
      comm::RequestSet set;
      std::vector<PartId> peer_of;
      // Post receives in a rank-rotated order (every rank different).
      for (PartId off = 1; off < n; ++off) {
        const PartId peer = (me + off) % n;
        peer_of.push_back(peer);
        (void)set.add(ep.irecv_floats(peer, tag_of(peer),
                                      TrafficClass::kFeature));
      }
      // Sends interleave with polling; order rotates the other way.
      std::vector<std::size_t> done;
      for (PartId off = 1; off < n; ++off) {
        const PartId to = (me + n - off) % n;
        std::vector<float> slab(kSlabFloats);
        for (int c = 0; c < kSlabFloats; ++c)
          slab[static_cast<std::size_t>(c)] =
              static_cast<float>(me * 1000 + round * 100 + c);
        (void)ep.isend_floats(to, tag_of(me), std::move(slab),
                              TrafficClass::kFeature);
        (void)set.poll(done); // make progress mid-send, test() path
      }
      while (!set.all_done()) (void)set.wait_any(done);
      // Exactly one completion per peer, none duplicated.
      std::sort(done.begin(), done.end());
      ASSERT_EQ(done.size(), static_cast<std::size_t>(n - 1));
      for (std::size_t k = 0; k < done.size(); ++k) EXPECT_EQ(done[k], k);
      // Every slab intact and from the right peer.
      for (std::size_t k = 0; k < peer_of.size(); ++k) {
        const auto payload = set.at(k).take_floats();
        ASSERT_EQ(payload.size(), static_cast<std::size_t>(kSlabFloats));
        for (int c = 0; c < kSlabFloats; ++c)
          EXPECT_FLOAT_EQ(payload[static_cast<std::size_t>(c)],
                          static_cast<float>(peer_of[k] * 1000 + round * 100 +
                                             c));
      }
    }
    ep.barrier();
  });
  // Byte accounting: every rank sent and received (n-1) slabs per round.
  const auto slab_bytes =
      static_cast<std::int64_t>(kSlabFloats * sizeof(float));
  const std::int64_t expect_per_rank =
      slab_bytes * (kRanks - 1) * kRounds;
  for (PartId r = 0; r < kRanks; ++r) {
    const auto& st = fabric.endpoint(r).stats();
    EXPECT_EQ(st.tx_bytes[static_cast<int>(TrafficClass::kFeature)],
              expect_per_rank);
    EXPECT_EQ(st.rx_bytes[static_cast<int>(TrafficClass::kFeature)],
              expect_per_rank);
    EXPECT_EQ(st.rx_msgs[static_cast<int>(TrafficClass::kFeature)],
              (kRanks - 1) * kRounds);
  }
  EXPECT_EQ(fabric.total_rx_bytes(TrafficClass::kFeature),
            expect_per_rank * kRanks);
}

TEST(Fabric, ManyRanksStress) {
  constexpr PartId kRanks = 12;
  Fabric fabric(kRanks);
  run_ranks(fabric, [](comm::Endpoint& ep) {
    // Ring exchange repeated: each rank sends to (r+1)%n, receives from
    // (r-1+n)%n, then allreduces a checksum.
    const PartId n = ep.nranks();
    const PartId next = (ep.rank() + 1) % n;
    const PartId prev = (ep.rank() + n - 1) % n;
    double checksum = 0.0;
    for (int round = 0; round < 10; ++round) {
      ep.send_floats(next, round, {static_cast<float>(ep.rank())},
                     TrafficClass::kFeature);
      const auto got = ep.recv_floats(prev, round, TrafficClass::kFeature);
      checksum += got[0];
    }
    const double total = ep.allreduce_sum_scalar(checksum);
    // Each round moves the full 0+..+n-1 around: 10 rounds * n*(n-1)/2.
    EXPECT_DOUBLE_EQ(total, 10.0 * n * (n - 1) / 2.0);
  });
}

} // namespace
} // namespace bnsgcn
