#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace bnsgcn {

/// xoshiro256** — fast, high-quality 64-bit PRNG.
///
/// Used everywhere instead of <random> engines so that results are
/// reproducible across standard libraries (libstdc++ / libc++ disagree on
/// distribution implementations). All distribution helpers below are
/// implemented from first principles for the same reason.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, n). n must be > 0.
  std::uint64_t next_below(std::uint64_t n);

  /// Uniform float64 in [0, 1).
  double next_double();

  /// Uniform float32 in [0, 1).
  float next_float();

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool next_bool(double p);

  /// Standard normal via Box-Muller (cached second value).
  double next_gaussian();

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Sample k distinct values from [0, n) (k <= n). Returns sorted ids.
  std::vector<NodeId> sample_without_replacement(NodeId n, NodeId k);

  /// Derive an independent stream (e.g. one per rank) deterministically.
  Rng split(std::uint64_t stream_id) const;

 private:
  std::uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

} // namespace bnsgcn
