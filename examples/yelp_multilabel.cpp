// Multi-label business categorization on a Yelp-like graph: sparse graph,
// 50 binary labels per node, sigmoid-BCE training, micro-F1 evaluation —
// exercising the multi-label path of the public API end to end.

#include <cstdio>

#include "core/trainer.hpp"
#include "graph/dataset.hpp"
#include "partition/metis_like.hpp"

int main() {
  using namespace bnsgcn;

  const Dataset ds = make_synthetic(yelp_like(0.3));
  std::printf("Yelp-like: %d nodes, %lld arcs, %d label dimensions "
              "(multi-label)\n\n",
              ds.num_nodes(), static_cast<long long>(ds.graph.num_arcs()),
              ds.num_classes);

  const Partitioning part = metis_like(ds.graph, 6);

  core::TrainerConfig cfg;
  cfg.num_layers = 4; // paper's Yelp model: 4 layers
  cfg.hidden = 64;
  cfg.dropout = 0.1f;
  cfg.lr = 0.01f;
  cfg.epochs = 100;
  cfg.sample_rate = 0.1f;
  cfg.eval_every = 20;

  core::BnsTrainer trainer(ds, part, cfg);
  const auto result = trainer.train();
  for (const auto& point : result.curve)
    std::printf("epoch %3d  loss %.5f  val F1 %.2f%%  test F1 %.2f%%\n",
                point.epoch, point.train_loss, 100.0 * point.val,
                100.0 * point.test);
  std::printf("\nfinal test micro-F1: %.2f%% at p=%.2f with 6 partitions\n",
              100.0 * result.final_test, cfg.sample_rate);
  return 0;
}
