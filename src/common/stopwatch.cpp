#include "common/stopwatch.hpp"

// Header-only in practice; this translation unit exists so the library has a
// stable archive member and to keep the target layout uniform.
namespace bnsgcn {} // namespace bnsgcn
