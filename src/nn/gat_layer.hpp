#pragma once

#include "nn/layer.hpp"

namespace bnsgcn::nn {

/// Graph attention layer (Veličković et al. 2017), used by the paper's
/// Table 10 to show BNS-GCN generalizes beyond GraphSAGE.
///
/// Per head: e_vu = LeakyReLU(a_srcᵀ W h_u + a_dstᵀ W h_v) over u ∈ N(v)∪{v},
/// α = softmax(e), out_v = Σ_u α_vu W h_u; heads are concatenated.
///
/// Under boundary-node sampling the softmax renormalizes over the kept
/// neighbors, so no 1/p correction is applied (the estimator is the standard
/// subsampled-attention one; `inv_deg` is ignored).
class GatLayer final : public Layer {
 public:
  struct Options {
    int heads = 1;
    bool relu = true;      // activation on the concatenated output
    float dropout = 0.0f;
    float leaky_slope = 0.2f;
  };

  /// d_out must be divisible by heads; each head produces d_out/heads dims.
  GatLayer(std::int64_t d_in, std::int64_t d_out, const Options& opts,
           Rng& rng);

  Matrix forward(const BipartiteCsr& adj, const Matrix& feats,
                 std::span<const float> inv_deg, bool training) override;
  Matrix backward(const BipartiteCsr& adj, const Matrix& dout,
                  std::span<const float> inv_deg) override;

  std::vector<Matrix*> params() override;
  std::vector<Matrix*> grads() override;

  void set_dropout_rng(Rng rng) { dropout_rng_ = rng; }

 private:
  struct Head {
    Matrix w;      // (d_in, d_head)
    Matrix a_src;  // (d_head, 1)
    Matrix a_dst;  // (d_head, 1)
    Matrix dw, da_src, da_dst;

    // caches
    Matrix wh;                  // (n_src, d_head)
    std::vector<float> alpha;   // per (dst, nbr∪self) entry
    std::vector<float> slope;   // LeakyReLU derivative per entry
    std::vector<float> s_src;   // n_src
    std::vector<float> s_dst;   // n_dst
  };

  /// Entry offset of dst v in the per-edge arrays (each dst owns deg+1
  /// slots, self last).
  [[nodiscard]] static std::size_t entry_offset(const BipartiteCsr& adj,
                                                NodeId v) {
    return static_cast<std::size_t>(
        adj.offsets[static_cast<std::size_t>(v)] + v);
  }

  Options opts_;
  std::int64_t d_head_;
  std::vector<Head> heads_;
  Rng dropout_rng_;

  Matrix feats_cache_;
  Matrix relu_mask_;
  Matrix dropout_mask_;
  bool cached_training_ = false;
};

} // namespace bnsgcn::nn
