// Table 6: epoch-time breakdown for the papers100M-class run: 192
// partitions over 32 machines (multi-machine interconnect model).
// Expected shape: at p=1 communication is ~99% of the epoch; p=0.01 cuts
// total epoch time by ~99%.

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace bnsgcn;
  const auto opts = api::parse_bench_args(argc, argv);
  bench::print_banner("Table 6",
                      "papers100M-like epoch breakdown, 192 partitions");
  bench::ReportSink sink("Table 6", opts);

  const auto pr = bench::load_preset("papers", opts.scale, opts);
  api::RunConfig rcfg = pr.config(api::Method::kBns);
  rcfg.partition.nparts = 192; // partitioned once, cached across p
  rcfg.trainer.epochs = opts.epochs_or(3);
  rcfg.trainer.cost = comm::CostModel::scaled_multi_machine();

  std::printf("%-18s %12s %12s %12s %12s\n", "method", "total(s)", "comp(s)",
              "comm(s)", "reduce(s)");
  double total_p1 = 0.0, total_p001 = 0.0;
  for (const float p : {1.0f, 0.1f, 0.01f}) {
    rcfg.trainer.sample_rate = p;
    const auto& r = sink.add(bench::label("papers m=192 p=%.2f", p), rcfg,
                             api::run(pr.ds, rcfg));
    const auto e = r.mean_epoch();
    if (p == 1.0f) total_p1 = e.total_s();
    if (p == 0.01f) total_p001 = e.total_s();
    std::printf("BNS-GCN (p=%-4.2f)%2s %12.4f %12.4f %12.4f %12.4f\n", p, "",
                e.total_s(), e.compute_s, e.comm_s, e.reduce_s);
  }
  std::printf("\np=0.01 cuts epoch time by %.1f%% vs p=1 (paper: 99%%)\n",
              100.0 * (1.0 - total_p001 / total_p1));
  return 0;
}
