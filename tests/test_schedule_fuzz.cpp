// Schedule-fuzz harness: randomized bit-exact parity across the whole
// execution-schedule space. With three overlap modes × F1 chunking ×
// cross-layer backward deferral × arbitrary peer-arrival orders × kernel
// thread-pool lane counts, the
// execution paths multiply far beyond what hand-enumerated cases cover;
// this harness draws random points of that space from a seeded RNG and
// asserts each one trains bit-identically to the blocking, unchunked,
// unshuffled baseline — losses, eval scores and byte counts all exact
// (gradients are pinned transitively: any gradient divergence moves the
// Adam trajectory and shows up in the next epoch's loss bits).
//
// Every failure prints the draw's reproducing seed and full config line;
// re-running with BNSGCN_FUZZ_SEED=<seed> BNSGCN_FUZZ_ITERS=1 (or
// --fuzz-seed=<seed> --fuzz-iters=1) replays exactly that draw.
//
// Knobs (CLI wins over environment, both optional):
//   --fuzz-iters=N / BNSGCN_FUZZ_ITERS  randomized draws (default 6)
//   --fuzz-seed=S  / BNSGCN_FUZZ_SEED   sweep seed (default 20260729)

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "core/trainer.hpp"
#include "graph/dataset.hpp"
#include "partition/metis_like.hpp"

namespace bnsgcn {
namespace {

using core::BnsTrainer;
using core::ModelKind;
using core::OverlapMode;
using core::SamplingVariant;
using core::TrainerConfig;
using core::TrainResult;

struct FuzzOptions {
  std::uint64_t seed = 20260729;
  int iters = 6;
};

FuzzOptions g_fuzz; // set by main() below, before RUN_ALL_TESTS

/// One drawn point of the schedule space.
struct Draw {
  std::uint64_t seed = 0; // reproduces this draw alone
  PartId nparts = 2;
  ModelKind model = ModelKind::kSage;
  OverlapMode mode = OverlapMode::kBlocking;
  NodeId chunk = 0;
  std::uint64_t shuffle = 0;
  float sample_rate = 1.0f;
  SamplingVariant variant = SamplingVariant::kBns;
  int num_layers = 2;
  std::uint64_t model_seed = 7;
  int threads = 1;
  std::int64_t cache_mb = 0;
  int cache_staleness = 0;

  [[nodiscard]] std::string describe() const {
    char buf[320];
    std::snprintf(
        buf, sizeof(buf),
        "seed=%llu nparts=%d model=%s mode=%s chunk=%d shuffle=%llu "
        "p=%.2f variant=%d layers=%d model_seed=%llu threads=%d "
        "cache_mb=%lld staleness=%d",
        static_cast<unsigned long long>(seed), nparts,
        model == ModelKind::kGat ? "gat" : "sage",
        mode == OverlapMode::kBlocking
            ? "blocking"
            : (mode == OverlapMode::kBulk ? "bulk" : "stream"),
        chunk, static_cast<unsigned long long>(shuffle), sample_rate,
        static_cast<int>(variant), num_layers,
        static_cast<unsigned long long>(model_seed), threads,
        static_cast<long long>(cache_mb), cache_staleness);
    return buf;
  }
};

Draw draw_from_seed(std::uint64_t seed) {
  Rng rng(seed);
  Draw d;
  d.seed = seed;
  d.nparts = static_cast<PartId>(rng.next_int(2, 8));
  d.model = rng.next_bool(0.5) ? ModelKind::kGat : ModelKind::kSage;
  d.mode = rng.next_bool(0.5) ? OverlapMode::kStream : OverlapMode::kBulk;
  // Chunk sizes from pathological (1 row) through typical to
  // larger-than-the-partition (one chunk after all); 0 = unchunked.
  const NodeId chunks[] = {0, 1, 3, 17, 64, 100000};
  d.chunk = chunks[rng.next_below(6)];
  // Arrival shuffle only perturbs nonblocking probes, i.e. the stream
  // poll loop; draw it for every mode anyway — it must be harmless.
  d.shuffle = rng.next_u64() | 1; // nonzero
  const float rates[] = {0.3f, 0.7f, 1.0f};
  d.sample_rate = rates[rng.next_below(3)];
  const double vr = rng.next_double();
  d.variant = vr < 0.70 ? SamplingVariant::kBns
              : vr < 0.85 ? SamplingVariant::kDropEdge
                          : SamplingVariant::kBoundaryEdge;
  d.num_layers = static_cast<int>(rng.next_int(2, 3));
  d.model_seed = rng.next_int(1, 1000);
  // Kernel thread-pool lanes per rank, a fourth schedule axis: pool ×
  // overlap-mode × chunk-size × arrival-order must stay bit-exact vs the
  // single-threaded blocking baseline. Drawn past the core count on
  // purpose (with the hardware clamp bypassed below) so lanes genuinely
  // interleave even on a one-core CI box.
  const int thread_counts[] = {1, 2, 3, 4};
  d.threads = thread_counts[rng.next_below(4)];
  // Halo-cache axis (docs/ARCHITECTURE.md §9): size 0 (off) half the time,
  // else a small/large budget; staleness 0 (exact, layer-0 only) biased,
  // with positive bounds exercising the deeper-layer refresh schedule.
  // Both sides of a parity pair run the SAME cache config — the property
  // under test is schedule-invariance of the cache decisions themselves.
  const std::int64_t cache_sizes[] = {0, 0, 1, 4};
  d.cache_mb = cache_sizes[rng.next_below(4)];
  const int stalenesses[] = {0, 0, 1, 2};
  d.cache_staleness = stalenesses[rng.next_below(4)];
  return d;
}

const Dataset& fuzz_dataset() {
  static const Dataset ds = [] {
    SyntheticSpec spec;
    spec.name = "schedule-fuzz";
    spec.n = 700;
    spec.m = 6000;
    spec.communities = 6;
    spec.num_classes = 6;
    spec.feat_dim = 12;
    spec.p_intra = 0.9;
    spec.feature_noise = 1.2;
    spec.seed = 4242;
    return make_synthetic(spec);
  }();
  return ds;
}

const Partitioning& fuzz_partition(PartId nparts) {
  static std::map<PartId, Partitioning> cache;
  auto it = cache.find(nparts);
  if (it == cache.end())
    it = cache.emplace(nparts, metis_like(fuzz_dataset().graph, nparts)).first;
  return it->second;
}

TrainerConfig config_of(const Draw& d) {
  TrainerConfig cfg;
  cfg.num_layers = d.num_layers;
  cfg.hidden = 16;
  cfg.model = d.model;
  cfg.gat_heads = d.model == ModelKind::kGat ? 2 : 1;
  cfg.dropout = 0.25f; // exercises the RNG schedule across paths
  cfg.epochs = 3;
  cfg.eval_every = 2;
  cfg.seed = d.model_seed;
  cfg.sample_rate = d.sample_rate;
  cfg.variant = d.variant;
  cfg.overlap = d.mode;
  cfg.inner_chunk_rows = d.chunk;
  cfg.fabric_shuffle_seed = d.shuffle;
  cfg.threads = d.threads;
  // Run the drawn lane count as-is even where nparts × threads exceeds the
  // machine: the point is schedule coverage, not speed.
  cfg.threads_oversubscribe = true;
  cfg.cache_mb = d.cache_mb;
  cfg.cache_staleness = d.cache_staleness;
  return cfg;
}

bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// Bit-exact comparison of a variant run against its blocking baseline.
/// Everything deterministic must match exactly; on the first divergence
/// the draw's reproducing line is emitted through ADD_FAILURE.
void expect_parity(const TrainResult& base, const TrainResult& got,
                   const Draw& d) {
  const auto fail = [&d](const std::string& what) {
    ADD_FAILURE() << "schedule divergence (" << what
                  << ") — reproduce with: " << d.describe();
  };
  if (base.train_loss.size() != got.train_loss.size())
    return fail("epoch count");
  for (std::size_t e = 0; e < base.train_loss.size(); ++e) {
    if (!bits_equal(base.train_loss[e], got.train_loss[e]))
      return fail("train_loss epoch " + std::to_string(e));
  }
  if (!bits_equal(base.final_val, got.final_val)) return fail("final_val");
  if (!bits_equal(base.final_test, got.final_test)) return fail("final_test");
  if (base.curve.size() != got.curve.size()) return fail("curve length");
  for (std::size_t i = 0; i < base.curve.size(); ++i) {
    if (!bits_equal(base.curve[i].val, got.curve[i].val) ||
        !bits_equal(base.curve[i].test, got.curve[i].test))
      return fail("curve point " + std::to_string(i));
  }
  if (base.epochs.size() != got.epochs.size()) return fail("breakdown count");
  for (std::size_t i = 0; i < base.epochs.size(); ++i) {
    if (base.epochs[i].feature_bytes != got.epochs[i].feature_bytes)
      return fail("feature_bytes epoch " + std::to_string(i));
    if (!bits_equal(base.epochs[i].comm_s, got.epochs[i].comm_s))
      return fail("comm_s epoch " + std::to_string(i));
    // The per-peer tail is a pure function of the sampled exchange sets.
    if (!bits_equal(base.epochs[i].comm_tail_s, got.epochs[i].comm_tail_s))
      return fail("comm_tail_s epoch " + std::to_string(i));
    // Cache decisions step at post time from structural position lists, so
    // hit/miss/saved counters must be schedule-invariant too.
    if (base.epochs[i].cache_hit_rows != got.epochs[i].cache_hit_rows)
      return fail("cache_hit_rows epoch " + std::to_string(i));
    if (base.epochs[i].bytes_saved != got.epochs[i].bytes_saved)
      return fail("bytes_saved epoch " + std::to_string(i));
  }
}

/// Loss-only bit parity: used to pin a staleness-0 cached run against the
/// same draw with the cache off (bytes legitimately differ there).
void expect_loss_parity(const TrainResult& base, const TrainResult& got,
                        const Draw& d) {
  const auto fail = [&d](const std::string& what) {
    ADD_FAILURE() << "cache-vs-uncached divergence (" << what
                  << ") — reproduce with: " << d.describe();
  };
  if (base.train_loss.size() != got.train_loss.size())
    return fail("epoch count");
  for (std::size_t e = 0; e < base.train_loss.size(); ++e) {
    if (!bits_equal(base.train_loss[e], got.train_loss[e]))
      return fail("train_loss epoch " + std::to_string(e));
  }
  if (!bits_equal(base.final_val, got.final_val)) return fail("final_val");
  if (!bits_equal(base.final_test, got.final_test)) return fail("final_test");
}

TrainResult run_draw(const Draw& d, bool baseline) {
  TrainerConfig cfg = config_of(d);
  if (baseline) {
    cfg.overlap = OverlapMode::kBlocking;
    cfg.inner_chunk_rows = 0;
    cfg.fabric_shuffle_seed = 0;
    cfg.threads = 1;
  }
  return BnsTrainer(fuzz_dataset(), fuzz_partition(d.nparts), cfg).train();
}

TEST(ScheduleFuzz, RandomizedSweep) {
  Rng sweep(g_fuzz.seed);
  for (int iter = 0; iter < g_fuzz.iters; ++iter) {
    const Draw d = draw_from_seed(sweep.next_u64());
    SCOPED_TRACE("iter " + std::to_string(iter) + ": " + d.describe());
    const TrainResult base = run_draw(d, /*baseline=*/true);
    const TrainResult got = run_draw(d, /*baseline=*/false);
    expect_parity(base, got, d);
    // Exact cache (staleness 0): additionally pin the cached baseline's
    // losses against the identical run with the cache off — the cache must
    // be invisible to the numerics, not merely schedule-invariant.
    if (d.cache_mb > 0 && d.cache_staleness == 0) {
      Draw plain = d;
      plain.cache_mb = 0;
      const TrainResult uncached = run_draw(plain, /*baseline=*/true);
      expect_loss_parity(uncached, base, d);
    }
  }
}

TEST(ScheduleFuzz, PinnedCornerMatrix) {
  // A deterministic mini-matrix that always runs regardless of the sweep
  // knobs: both models × both pipelined modes × an off-by-one chunk and a
  // larger-than-partition chunk, under a fixed arrival shuffle, at a
  // partition count where every rank has several peers.
  for (const ModelKind model : {ModelKind::kSage, ModelKind::kGat}) {
    Draw d;
    d.seed = 1; // describe() placeholder; the fields below pin the draw
    d.nparts = 4;
    d.model = model;
    d.sample_rate = 0.5f;
    d.num_layers = 3;
    d.model_seed = 11;
    const TrainResult base = run_draw(d, /*baseline=*/true);
    for (const OverlapMode mode :
         {OverlapMode::kBulk, OverlapMode::kStream}) {
      for (const NodeId chunk : {1, 37, 1 << 20}) {
        d.mode = mode;
        d.chunk = chunk;
        d.shuffle = 0xFADEDBEEFULL;
        d.threads = chunk == 37 ? 3 : 2; // pool always on in the corners
        SCOPED_TRACE(d.describe());
        const TrainResult got = run_draw(d, /*baseline=*/false);
        expect_parity(base, got, d);
      }
    }
  }
}

TEST(ScheduleFuzz, CachedCornerMatrix) {
  // Deterministic cache corners that always run: an exact (staleness-0)
  // cache under both pipelined modes and a mid-layer chunk, pinned against
  // the cached blocking baseline (full parity, counters included) AND the
  // uncached blocking run (loss bits — the cache must not touch numerics).
  Draw d;
  d.seed = 2;
  d.nparts = 4;
  d.model = ModelKind::kSage;
  d.sample_rate = 0.5f;
  d.num_layers = 2;
  d.model_seed = 13;
  d.cache_mb = 2;
  d.cache_staleness = 0;
  const TrainResult base = run_draw(d, /*baseline=*/true);
  Draw plain = d;
  plain.cache_mb = 0;
  const TrainResult uncached = run_draw(plain, /*baseline=*/true);
  expect_loss_parity(uncached, base, d);
  for (const OverlapMode mode : {OverlapMode::kBulk, OverlapMode::kStream}) {
    for (const NodeId chunk : {0, 37}) {
      d.mode = mode;
      d.chunk = chunk;
      d.shuffle = 0xFADEDBEEFULL;
      d.threads = 2;
      SCOPED_TRACE(d.describe());
      const TrainResult got = run_draw(d, /*baseline=*/false);
      expect_parity(base, got, d);
    }
  }
}

TEST(ScheduleFuzz, ShuffledArrivalsAloneAreHarmless) {
  // The delivery shuffle must be a pure arrival-order perturbation: even
  // the *blocking* schedule (which never probes) and the bulk wait_all
  // path train bit-identically under it.
  Draw d;
  d.nparts = 5;
  d.model = ModelKind::kSage;
  d.sample_rate = 0.7f;
  d.num_layers = 2;
  d.model_seed = 23;
  const TrainResult base = run_draw(d, /*baseline=*/true);
  for (const OverlapMode mode : {OverlapMode::kBlocking, OverlapMode::kBulk,
                                 OverlapMode::kStream}) {
    d.mode = mode;
    d.chunk = 0;
    d.shuffle = 99991;
    d.threads = 4;
    SCOPED_TRACE(d.describe());
    const TrainResult got = run_draw(d, /*baseline=*/false);
    expect_parity(base, got, d);
  }
}

} // namespace
} // namespace bnsgcn

/// Custom main: the fuzz knobs ride on the gtest command line (and the
/// environment, for runners that cannot pass flags through). Defining our
/// own main simply outcompetes gtest_main's at link time.
int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  if (const char* s = std::getenv("BNSGCN_FUZZ_SEED"))
    bnsgcn::g_fuzz.seed = std::strtoull(s, nullptr, 10);
  if (const char* s = std::getenv("BNSGCN_FUZZ_ITERS"))
    bnsgcn::g_fuzz.iters = static_cast<int>(std::strtol(s, nullptr, 10));
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--fuzz-seed=", 12) == 0)
      bnsgcn::g_fuzz.seed = std::strtoull(argv[i] + 12, nullptr, 10);
    else if (std::strncmp(argv[i], "--fuzz-iters=", 13) == 0)
      bnsgcn::g_fuzz.iters =
          static_cast<int>(std::strtol(argv[i] + 13, nullptr, 10));
  }
  return RUN_ALL_TESTS();
}
