#pragma once

#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "comm/fabric.hpp"
#include "core/boundary_sampler.hpp"
#include "core/local_graph.hpp"
#include "core/memory_model.hpp"
#include "graph/dataset.hpp"

namespace bnsgcn::core {

enum class ModelKind { kSage, kGat };

/// Per-epoch timing/traffic breakdown (Fig. 5 / Table 6 quantities).
/// Times are bulk-synchronous: max over ranks per phase. `compute_s` is
/// measured wall time of the local math; comm/reduce/swap are simulated
/// from exact byte counts via the CostModel (DESIGN.md §1).
struct EpochBreakdown {
  double compute_s = 0.0;
  double comm_s = 0.0;    // boundary feature/gradient exchange
  double reduce_s = 0.0;  // model-gradient allreduce
  double sample_s = 0.0;  // sampler: draw + index negotiation + compaction
  double swap_s = 0.0;    // ROC proxy only
  /// Exchange time hidden behind the inner-only compute phases when
  /// communication–computation overlap is on (TrainerConfig::overlap):
  /// per exchange, min(simulated transfer time, measured in-flight
  /// compute), summed over the epoch's forward+backward exchanges and
  /// taken as the min over ranks (a conservative lower bound on what the
  /// pipeline hides). Always 0 in blocking mode, and never exceeds comm_s.
  double overlap_s = 0.0;
  std::int64_t feature_bytes = 0; // global rx over all ranks
  std::int64_t grad_bytes = 0;
  std::int64_t control_bytes = 0;

  [[nodiscard]] double total_s() const {
    return compute_s + (comm_s - overlap_s) + reduce_s + sample_s + swap_s;
  }
};

struct EvalPoint {
  int epoch = 0;
  double val = 0.0;  // accuracy or micro-F1 (dataset-dependent)
  double test = 0.0;
  double train_loss = 0.0;
};

/// Streamed to the configured observer after every finished epoch, so
/// callers (the api layer, benches) can emit rows live instead of
/// post-processing a result. `eval` is set only on epochs that evaluated.
struct EpochSnapshot {
  int epoch = 0;  // 1-based epoch that just finished
  double train_loss = 0.0;
  EpochBreakdown breakdown;
  const EvalPoint* eval = nullptr;  // valid for the callback's duration only
};

/// Invoked from the training loop (rank 0's thread under BnsTrainer) once
/// per epoch, in epoch order. Must not block on other ranks.
using EpochObserver = std::function<void(const EpochSnapshot&)>;

/// Derived run metrics, shared by every result type (core::TrainResult and
/// api::RunReport) so the definitions exist exactly once.
[[nodiscard]] EpochBreakdown mean_breakdown(
    std::span<const EpochBreakdown> epochs);
/// Table 12 quantity: mean sampler time / mean total epoch time.
[[nodiscard]] double sampler_overhead(std::span<const EpochBreakdown> epochs);
/// Fig. 4 quantity under the cost model: epochs per simulated second.
[[nodiscard]] double throughput_eps(std::span<const EpochBreakdown> epochs);

/// Configuration of a partition-parallel training run (Algorithm 1).
struct TrainerConfig {
  int num_layers = 2;
  std::int64_t hidden = 64;
  ModelKind model = ModelKind::kSage;
  int gat_heads = 1;
  float dropout = 0.0f;
  float lr = 0.01f;
  int epochs = 100;

  /// Boundary sampling: p for kBns (p=1 → vanilla partition parallelism,
  /// p=0 → fully isolated training), edge keep-rate q for the ablations.
  float sample_rate = 1.0f;
  SamplingVariant variant = SamplingVariant::kBns;
  /// 1/p (or 1/q) unbiased rescaling of sampled contributions.
  bool unbiased_scaling = true;

  /// Evaluate val/test every k epochs (0 = final epoch only). Evaluation
  /// always uses the full, unsampled exchange.
  int eval_every = 0;

  std::uint64_t seed = 1;
  /// Compute-normalized PCIe model by default (see CostModel::scaled_pcie3).
  comm::CostModel cost = comm::CostModel::scaled_pcie3();

  /// Overlap the boundary exchanges with the inner-only halves of each
  /// layer (docs/ARCHITECTURE.md §4): sends/receives are posted first, the
  /// halo-independent compute runs while they are in flight, and the halo
  /// contributions are folded in afterwards. Training results are
  /// bit-identical to blocking mode — both modes execute the same split
  /// fp schedule; the knob only moves the wait — so the effect is purely
  /// EpochBreakdown::overlap_s lowering the simulated epoch time. Layers
  /// without split support (GAT: attention needs all neighbors at once)
  /// and the CAGNET proxy (dense broadcast has no halo-free portion) fall
  /// back to blocking; the knob is safe for every method.
  bool overlap = false;

  /// ROC proxy: stage each layer's inner activations through a host swap
  /// channel (kSwap traffic), reproducing Fig. 1(b)'s CPU-GPU swaps.
  bool simulate_host_swap = false;

  /// Optional per-epoch callback (see EpochSnapshot).
  EpochObserver observer;
};

struct TrainResult {
  std::vector<double> train_loss;          // one per epoch (global mean)
  std::vector<EvalPoint> curve;            // eval_every snapshots
  double final_val = 0.0;
  double final_test = 0.0;
  std::vector<EpochBreakdown> epochs;
  MemoryReport memory;
  double wall_time_s = 0.0;

  [[nodiscard]] EpochBreakdown mean_epoch() const {
    return mean_breakdown(epochs);
  }
  [[nodiscard]] double sampler_overhead() const {
    return core::sampler_overhead(epochs);
  }
  [[nodiscard]] double throughput_eps() const {
    return core::throughput_eps(epochs);
  }
};

/// Construct the configured layer stack (replicated per rank; all ranks and
/// the single-process oracle build bit-identical initial weights for a given
/// seed). Exposed so the baselines share the exact model definition.
[[nodiscard]] std::vector<std::unique_ptr<nn::Layer>> build_model(
    const TrainerConfig& cfg, std::int64_t feat_dim, int num_classes,
    PartId rank);

/// BNS-GCN: partition-parallel full-graph training with random boundary-node
/// sampling (the paper's core contribution, Algorithm 1). Runs one thread
/// per partition over an in-process Fabric.
class BnsTrainer {
 public:
  BnsTrainer(const Dataset& ds, const Partitioning& part, TrainerConfig cfg);

  [[nodiscard]] TrainResult train();

  [[nodiscard]] const std::vector<LocalGraph>& local_graphs() const {
    return local_graphs_;
  }

 private:
  const Dataset& ds_;
  TrainerConfig cfg_;
  Partitioning part_;
  std::vector<LocalGraph> local_graphs_;
};

} // namespace bnsgcn::core
