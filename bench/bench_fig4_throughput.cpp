// Figure 4: full-graph training throughput (epochs/s) of BNS-GCN at
// p ∈ {1, 0.1, 0.01} vs the ROC and CAGNET (c=1,2) proxies, across
// partition counts, under the PCIe-class interconnect model.
// Expected shape: BNS-GCN(p=0.01) ≫ BNS-GCN(p=1) > CAGNET ≈ ROC; the gap
// widens with more partitions because boundary sets grow.

#include "common.hpp"

namespace {

using namespace bnsgcn;

void run_dataset(const char* title, const char* preset, double scale,
                 const std::vector<PartId>& parts,
                 const api::BenchOptions& opts, bench::ReportSink& sink) {
  const auto pr = bench::load_preset(preset, scale, opts);
  const Dataset& ds = pr.ds;
  std::printf("\n--- %s (n=%d, avg deg %.1f) ---\n", title, ds.num_nodes(),
              ds.graph.average_degree());
  std::printf("%-22s", "method \\ #partitions");
  for (const PartId m : parts) std::printf(" %10d", m);
  std::printf("\n");

  api::RunConfig rcfg = pr.config();
  rcfg.trainer.epochs = opts.epochs_or(5); // throughput measurement only
  // Each m is partitioned once (first method to reach it) and served from
  // the partition cache for the other five rows of the column.
  const auto row = [&](const std::string& name, const api::RunConfig& base) {
    // run_streamed: live per-epoch progress (TTY only) + the recorded,
    // replayable artifact row. The progress line rewrites in place, so the
    // table row prints after the sweep instead of column by column.
    std::vector<double> eps;
    for (const PartId m : parts) {
      auto cfg = base;
      cfg.partition.nparts = m;
      const auto& r = sink.run_streamed(
          bench::label("%s %s m=%d", preset, name.c_str(), m), ds, cfg);
      eps.push_back(r.throughput_eps());
    }
    std::printf("%-22s", name.c_str());
    for (const double v : eps) std::printf(" %10.2f", v);
    std::printf("  epochs/s\n");
  };

  auto c = rcfg;
  c.method = api::Method::kRocProxy;
  row("ROC (swap proxy)", c);
  c.method = api::Method::kCagnetProxy;
  c.cagnet_c = 1;
  row("CAGNET proxy (c=1)", c);
  c.cagnet_c = 2;
  row("CAGNET proxy (c=2)", c);
  c = rcfg;
  c.method = api::Method::kBns;
  for (const float p : {1.0f, 0.1f, 0.01f}) {
    c.trainer.sample_rate = p;
    row(bench::label("BNS-GCN (p=%.2f)", p), c);
  }
}

} // namespace

int main(int argc, char** argv) {
  using namespace bnsgcn;
  const auto opts = api::parse_bench_args(argc, argv);
  bench::print_banner("Figure 4", "throughput vs #partitions (simulated PCIe)");
  bench::ReportSink sink("Figure 4", opts);
  const double s = opts.scale;

  run_dataset("Reddit-like", "reddit", 0.5 * s, {2, 4, 8}, opts, sink);
  run_dataset("ogbn-products-like", "products", 0.4 * s, {5, 8, 10}, opts,
              sink);
  run_dataset("Yelp-like", "yelp", 0.5 * s, {3, 6, 10}, opts, sink);
  std::printf("\npaper shape check: BNS(p=0.01) is ~9-16x ROC and ~9-14x "
              "CAGNET(c=2) on Reddit; p<1 scales with partitions.\n");
  return 0;
}
