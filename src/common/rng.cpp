#include "common/rng.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace bnsgcn {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

/// splitmix64 — used for seeding xoshiro state from a single word.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

} // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // xoshiro must not start at the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t n) {
  BNSGCN_CHECK(n > 0);
  // Lemire's nearly-divisionless bounded sampling with rejection.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

float Rng::next_float() {
  return static_cast<float>(next_u64() >> 40) * 0x1.0p-24f;
}

bool Rng::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::next_gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 1e-300);
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

std::int64_t Rng::next_int(std::int64_t lo, std::int64_t hi) {
  BNSGCN_CHECK(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

std::vector<NodeId> Rng::sample_without_replacement(NodeId n, NodeId k) {
  BNSGCN_CHECK(k >= 0 && k <= n);
  // Floyd's algorithm would need a hash set; for the sizes used here a
  // partial Fisher-Yates over an index vector is simpler and O(n).
  std::vector<NodeId> idx(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) idx[static_cast<std::size_t>(i)] = i;
  for (NodeId i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        next_below(static_cast<std::uint64_t>(n - i)) + i);
    std::swap(idx[static_cast<std::size_t>(i)], idx[j]);
  }
  idx.resize(static_cast<std::size_t>(k));
  std::sort(idx.begin(), idx.end());
  return idx;
}

Rng Rng::split(std::uint64_t stream_id) const {
  // Mix the current state with the stream id; streams are independent for
  // practical purposes (distinct splitmix64 seeds).
  std::uint64_t mixed = s_[0] ^ (stream_id * 0xD1342543DE82EF95ULL + 0x632BE59BD9B4E019ULL);
  return Rng(mixed);
}

} // namespace bnsgcn
