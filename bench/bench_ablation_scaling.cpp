// Ablation (DESIGN.md §3): the 1/p unbiased rescaling of received boundary
// features (Algorithm 1's "replace H with H/p"). The estimator trade-off:
// scaling keeps E[ẑ] = z but multiplies each surviving boundary feature by
// 1/p, so its variance grows as boundary survivors get scarce. On this
// repo's graphs the boundary/inner ratio is 6-10 (vs the paper's 0.4-5.5)
// and degrees are ~10x smaller, so at p=0.01 a node often keeps 0-2
// boundary neighbors weighted 100x — unbiased but high-variance — while
// the *unscaled* variant degrades gracefully (it is mere neighborhood
// dropout, biased toward the partition interior). At moderate p both are
// equivalent. The paper's Appendix E recommendation of p≈0.1 is where the
// unbiased estimator is strictly safe.

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace bnsgcn;
  const auto opts = api::parse_bench_args(argc, argv);
  bench::print_banner("Ablation", "unbiased 1/p feature rescaling");
  bench::ReportSink sink("Ablation: 1/p rescaling", opts);

  const auto pr = bench::load_preset("products", 0.2 * opts.scale, opts);
  api::RunConfig rcfg = pr.config(api::Method::kBns);
  rcfg.partition.nparts = 8;
  rcfg.trainer.epochs = opts.epochs_or(100);

  std::printf("%-10s %16s %16s\n", "p", "scaled acc %", "unscaled acc %");
  for (const float p : {0.5f, 0.1f, 0.05f, 0.01f}) {
    rcfg.trainer.sample_rate = p;
    rcfg.trainer.unbiased_scaling = true;
    const double scaled =
        100.0 * sink.add(bench::label("products scaled p=%.2f", p), rcfg,
                         api::run(pr.ds, rcfg))
                    .final_test;
    rcfg.trainer.unbiased_scaling = false;
    const double unscaled =
        100.0 * sink.add(bench::label("products unscaled p=%.2f", p), rcfg,
                         api::run(pr.ds, rcfg))
                    .final_test;
    std::printf("%-10.2f %16.2f %16.2f\n", p, scaled, unscaled);
  }
  std::printf("\nexpected shape: identical at moderate p; at p<=0.05 the "
              "1/p variance penalizes the scaled\nestimator on these "
              "low-degree graphs (see header comment), so use p>=0.1 with "
              "scaling.\n");
  return 0;
}
