#include "partition/partitioning.hpp"

#include <algorithm>
#include <deque>

#include "common/check.hpp"

namespace bnsgcn {

std::vector<std::vector<NodeId>> Partitioning::members() const {
  std::vector<std::vector<NodeId>> out(static_cast<std::size_t>(nparts));
  for (NodeId v = 0; v < num_nodes(); ++v)
    out[static_cast<std::size_t>(owner[static_cast<std::size_t>(v)])]
        .push_back(v);
  return out;
}

void Partitioning::validate() const {
  BNSGCN_CHECK(nparts >= 1);
  std::vector<NodeId> count(static_cast<std::size_t>(nparts), 0);
  for (const PartId p : owner) {
    BNSGCN_CHECK(p >= 0 && p < nparts);
    ++count[static_cast<std::size_t>(p)];
  }
  for (const NodeId c : count)
    BNSGCN_CHECK_MSG(c > 0, "empty partition");
}

Partitioning random_partition(NodeId n, PartId nparts, Rng& rng) {
  BNSGCN_CHECK(n >= nparts && nparts >= 1);
  Partitioning p;
  p.nparts = nparts;
  p.owner.resize(static_cast<std::size_t>(n));
  // Shuffled round-robin: uniformly random membership with exactly balanced
  // sizes (matches how DGL's random partition keeps parts equal).
  std::vector<NodeId> order(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) order[static_cast<std::size_t>(v)] = v;
  rng.shuffle(order);
  for (NodeId i = 0; i < n; ++i) {
    p.owner[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] =
        static_cast<PartId>(i % nparts);
  }
  return p;
}

Partitioning hash_partition(NodeId n, PartId nparts) {
  BNSGCN_CHECK(n >= nparts && nparts >= 1);
  Partitioning p;
  p.nparts = nparts;
  p.owner.resize(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    // Fibonacci hashing: spreads contiguous ids across parts.
    const std::uint64_t h =
        static_cast<std::uint64_t>(v) * 0x9E3779B97F4A7C15ULL;
    p.owner[static_cast<std::size_t>(v)] =
        static_cast<PartId>(h % static_cast<std::uint64_t>(nparts));
  }
  // Hashing cannot leave a part empty for reasonable n/nparts, but the
  // contract requires it: patch any empty part with a steal.
  std::vector<NodeId> count(static_cast<std::size_t>(nparts), 0);
  for (const PartId q : p.owner) ++count[static_cast<std::size_t>(q)];
  for (PartId q = 0; q < nparts; ++q) {
    if (count[static_cast<std::size_t>(q)] == 0) {
      for (NodeId v = 0; v < n; ++v) {
        auto& o = p.owner[static_cast<std::size_t>(v)];
        if (count[static_cast<std::size_t>(o)] > 1) {
          --count[static_cast<std::size_t>(o)];
          o = q;
          ++count[static_cast<std::size_t>(q)];
          break;
        }
      }
    }
  }
  return p;
}

Partitioning bfs_partition(const Csr& g, PartId nparts, Rng& rng) {
  BNSGCN_CHECK(g.n >= nparts && nparts >= 1);
  Partitioning p;
  p.nparts = nparts;
  p.owner.assign(static_cast<std::size_t>(g.n), -1);
  const NodeId cap = (g.n + nparts - 1) / nparts;

  std::vector<NodeId> order(static_cast<std::size_t>(g.n));
  for (NodeId v = 0; v < g.n; ++v) order[static_cast<std::size_t>(v)] = v;
  rng.shuffle(order);
  std::size_t cursor = 0;

  for (PartId part = 0; part < nparts; ++part) {
    NodeId filled = 0;
    std::deque<NodeId> frontier;
    while (filled < cap) {
      if (frontier.empty()) {
        while (cursor < order.size() &&
               p.owner[static_cast<std::size_t>(order[cursor])] != -1)
          ++cursor;
        if (cursor == order.size()) break;
        frontier.push_back(order[cursor]);
      }
      const NodeId v = frontier.front();
      frontier.pop_front();
      if (p.owner[static_cast<std::size_t>(v)] != -1) continue;
      p.owner[static_cast<std::size_t>(v)] = part;
      ++filled;
      for (const NodeId u : g.neighbors(v)) {
        if (p.owner[static_cast<std::size_t>(u)] == -1) frontier.push_back(u);
      }
    }
  }
  // Any stragglers (disconnected remnants) go to the lightest part.
  std::vector<NodeId> count(static_cast<std::size_t>(nparts), 0);
  for (const PartId q : p.owner)
    if (q >= 0) ++count[static_cast<std::size_t>(q)];
  for (NodeId v = 0; v < g.n; ++v) {
    auto& o = p.owner[static_cast<std::size_t>(v)];
    if (o == -1) {
      const auto lightest = static_cast<PartId>(
          std::min_element(count.begin(), count.end()) - count.begin());
      o = lightest;
      ++count[static_cast<std::size_t>(lightest)];
    }
  }
  return p;
}

} // namespace bnsgcn
