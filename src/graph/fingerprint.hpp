#pragma once

#include <cstdint>
#include <string>

#include "graph/csr.hpp"

namespace bnsgcn {

/// 128-bit structural fingerprint of a Csr graph: a fast, deterministic
/// hash over (n, offsets, nbrs). Two graphs with the same fingerprint are
/// treated as structurally identical by the partition cache; any mutation
/// of the adjacency (added/removed arc, renumbered node) changes it.
///
/// The value is stable across processes and runs (pure function of the
/// arrays, no pointers or ASLR involved), which is what lets an on-disk
/// partition store be keyed by it. It is *not* stable across changes to
/// the hash function itself — bump kFingerprintVersion when the mixing
/// changes so stale disk entries key differently instead of colliding.
struct GraphFingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const GraphFingerprint&,
                         const GraphFingerprint&) = default;

  /// 32 lowercase hex chars (hi then lo) — filename-safe.
  [[nodiscard]] std::string hex() const;
};

inline constexpr std::uint32_t kFingerprintVersion = 1;

/// Hash the graph's structure. O(n + m), word-at-a-time mixing; far
/// cheaper than any partitioner, so callers can fingerprint on every
/// cache lookup instead of tracking graph identity themselves.
[[nodiscard]] GraphFingerprint fingerprint(const Csr& g);

} // namespace bnsgcn
